// frontier_study: which defense should I deploy, and what does it cost?
// The paper evaluates two countermeasure points (CIT, VIT); real
// deployments pick from a FRONTIER — full padding, budgeted padding under a
// hard overhead cap, idle-stop (on/off) padding, and adaptive-gap padding
// that reacts to the gateway queue. This study runs every operating point
// through the full attack pipeline (one simulation per point, sharded) and
// prints the measured overhead-vs-detectability Pareto table, with the
// budget ladder's monotonicity checked: a larger padding budget must never
// make the adversary's job easier.
//
// Run: ./frontier_study [--n 400] [--windows 40] [--seed 20030324]
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/frontier.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace linkpad;

namespace {

/// The study's operating points: the paper's two defenses plus the
/// payload-reactive frontier policies. The budget ladder's position inside
/// the list is returned so the monotone check can slice it back out.
struct StudyPolicies {
  std::vector<std::shared_ptr<const sim::TimerPolicy>> all;
  std::size_t ladder_begin = 0;
  std::size_t ladder_size = 0;
};

StudyPolicies study_policies() {
  StudyPolicies p;
  p.all.push_back(core::make_cit());
  p.all.push_back(core::make_vit(500e-6));
  p.ladder_begin = p.all.size();
  // Peak payload is 40 pps against a 100 pps timer: budgets below ~90
  // dummies/sec cannot cover the low-rate class, the last rung is full
  // padding.
  for (const auto& policy : core::budget_ladder({0.0, 40.0, 70.0, 85.0, 100.0})) {
    p.all.push_back(policy);
  }
  p.ladder_size = p.all.size() - p.ladder_begin;
  p.all.push_back(core::make_onoff(/*hangover=*/20e-3));
  p.all.push_back(core::make_onoff(/*hangover=*/200e-3));
  p.all.push_back(core::make_adaptive(/*base_gap=*/25e-3, /*gain=*/1.0,
                                      /*min_gap=*/2.5e-3));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("frontier_study",
                       "overhead vs detectability across defense policies");
  args.add_int("--n", 400, "adversary window size (PIATs per window)");
  args.add_int("--windows", 40, "train/test windows per class");
  args.add_int("--seed", 20030324, "root RNG seed");
  if (!args.parse(argc, argv)) return 1;

  const auto policies = study_policies();

  core::FrontierSpec spec;
  spec.scenario = core::lab_zero_cross(core::make_cit());
  spec.policies = policies.all;
  spec.plan.adversary.window_size = static_cast<std::size_t>(args.integer("--n"));
  spec.plan.train_windows = static_cast<std::size_t>(args.integer("--windows"));
  spec.plan.test_windows = spec.plan.train_windows;
  spec.seed = static_cast<std::uint64_t>(args.integer("--seed"));

  core::SweepOptions options;
  options.progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r  %zu/%zu policies...", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };
  const auto frontier = core::run_frontier(spec, core::sim_backend(), options);

  std::printf("defense frontier, lab zero-cross, n = %zu, %zu windows:\n\n",
              spec.plan.adversary.window_size, spec.plan.train_windows);
  util::TextTable table({"policy", "wire kbps", "overhead kbps", "dummy %",
                         "delay p95 ms", "detection", "pareto"});
  for (const auto& point : frontier.points) {
    table.add_row({point.policy, util::fmt(point.wire_bps / 1e3, 1),
                   util::fmt(point.overhead_bps / 1e3, 1),
                   util::fmt(100.0 * point.dummy_fraction, 1),
                   util::fmt(1e3 * point.delay_p95, 2),
                   util::fmt(point.detection_rate, 4),
                   point.pareto_efficient ? "*" : ""});
  }
  std::cout << table.to_string() << '\n';

  // The budget ladder's contract: detection never rises with budget.
  std::vector<core::FrontierPoint> ladder(
      frontier.points.begin() +
          static_cast<std::ptrdiff_t>(policies.ladder_begin),
      frontier.points.begin() +
          static_cast<std::ptrdiff_t>(policies.ladder_begin +
                                      policies.ladder_size));
  // Tolerance of two test-window flips: the rates are Monte-Carlo
  // estimates over 2 · test_windows windows each.
  const double tolerance = 1.0 / static_cast<double>(spec.plan.test_windows);
  const bool monotone =
      core::detection_monotone_nonincreasing(ladder, tolerance);
  std::printf("budget ladder monotone (detection non-increasing in budget, "
              "tolerance %.4f): %s\n",
              tolerance, monotone ? "yes" : "VIOLATED");

  std::printf(
      "\nReading the frontier: every partial budget below full coverage\n"
      "leaves the adversary at or near certainty — the wire rate itself\n"
      "betrays the payload class — while full padding only shrinks the\n"
      "leak to the paper's timing channel. Idle-stop padding buys large\n"
      "overhead savings but detection stays trivial, and the adaptive gap\n"
      "trades a bounded queue for a payload-correlated gap process. The\n"
      "Pareto column marks the points a deployment should choose from.\n");
  return monotone ? 0 : 1;
}
