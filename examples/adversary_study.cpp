// adversary_study: a walkthrough of the attack of paper Sec 3.3, showing
// each intermediate artifact the adversary produces:
//   1. off-line training — replicate the system, capture PIATs per rate,
//      reduce windows to feature values, fit Gaussian-KDE densities;
//   2. the decision rule — print the fitted f(s|omega_l), f(s|omega_h)
//      around the threshold d of Fig 2;
//   3. run-time classification — confusion matrix and detection rate,
//      against the closed-form prediction.
//
// Run: ./adversary_study [--feature variance|entropy|mean] [--n 1000]
#include <cstdio>
#include <iostream>

#include "analysis/theory.hpp"
#include "classify/adversary.hpp"
#include "core/experiment.hpp"
#include "core/scenarios.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"

using namespace linkpad;

namespace {

classify::FeatureKind parse_feature(const std::string& name) {
  if (name == "mean") return classify::FeatureKind::kSampleMean;
  if (name == "variance") return classify::FeatureKind::kSampleVariance;
  if (name == "entropy") return classify::FeatureKind::kSampleEntropy;
  throw std::invalid_argument("unknown feature: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("adversary_study",
                       "step-by-step Bayes traffic-analysis attack");
  args.add_option("--feature", "variance", "mean | variance | entropy");
  args.add_option("--n", "1000", "PIAT window size");
  args.add_option("--windows", "150", "training/test windows per class");
  args.add_option("--seed", "42", "root RNG seed");
  if (!args.parse(argc, argv)) return 1;

  const auto feature = parse_feature(args.str("--feature"));
  const auto n = static_cast<std::size_t>(args.integer("--n"));
  const auto windows = static_cast<std::size_t>(args.integer("--windows"));
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed"));

  core::ExperimentSpec spec;
  spec.scenario = core::lab_zero_cross(core::make_cit());
  spec.adversary.feature = feature;
  spec.adversary.window_size = n;
  spec.train_windows = windows;
  spec.test_windows = windows;
  spec.seed = seed;

  std::printf("=== Off-line training ===\n");
  std::printf("Replicating the padded system at 10 pps and 40 pps,\n");
  std::printf("capturing %zu windows x %zu PIATs per class...\n\n", windows, n);

  const std::size_t piats = windows * n;
  std::vector<std::vector<double>> train = {
      core::generate_class_stream(spec, 0, piats, 1),
      core::generate_class_stream(spec, 1, piats, 1)};
  std::vector<std::vector<double>> test = {
      core::generate_class_stream(spec, 0, piats, 2),
      core::generate_class_stream(spec, 1, piats, 2)};

  classify::Adversary adversary(spec.adversary);
  adversary.train(train);

  // Show the fitted class-conditional feature densities (Fig 2).
  const auto& f_low = adversary.training_features()[0];
  const auto& f_high = adversary.training_features()[1];
  const auto sum_low = stats::summarize(f_low);
  const auto sum_high = stats::summarize(f_high);
  std::printf("feature '%s' over windows of n = %zu:\n",
              classify::feature_name(feature).c_str(), n);
  std::printf("  class omega_l (10 pps): mean %.6g  std %.4g\n", sum_low.mean,
              sum_low.stddev);
  std::printf("  class omega_h (40 pps): mean %.6g  std %.4g\n", sum_high.mean,
              sum_high.stddev);

  const double lo = std::min(sum_low.min, sum_high.min);
  const double hi = std::max(sum_low.max, sum_high.max);
  std::vector<double> grid, pdf_l, pdf_h;
  for (int i = 0; i <= 80; ++i) {
    const double s = lo + (hi - lo) * i / 80.0;
    grid.push_back(s);
    pdf_l.push_back(adversary.classifier().density(0).pdf(s));
    pdf_h.push_back(adversary.classifier().density(1).pdf(s));
  }
  util::PlotOptions plot;
  plot.y_label = "f(s|omega) — KDE-fitted class-conditional densities (Fig 2)";
  plot.x_label = "feature value s";
  std::cout << '\n'
            << util::render_plot({util::Series{"omega_l", grid, pdf_l},
                                  util::Series{"omega_h", grid, pdf_h}},
                                 plot);

  if (const auto d = adversary.classifier().decision_threshold()) {
    std::printf("\nBayes decision threshold d = %.6g  (s <= d -> omega_l)\n",
                *d);
  } else {
    std::printf("\n(no single decision threshold — densities cross twice)\n");
  }

  std::printf("\n=== Run-time classification ===\n");
  const auto cm = adversary.evaluate(test);
  std::cout << cm.to_string();
  const double v = cm.detection_rate();
  const double r_hat = analysis::estimate_variance_ratio(train[0], train[1]);
  std::printf("\nempirical detection rate v = %.4f  (r_hat = %.4f)\n", v, r_hat);

  switch (feature) {
    case classify::FeatureKind::kSampleMean:
      std::printf("Theorem 1 (exact form): %.4f\n",
                  analysis::detection_rate_mean_exact(r_hat));
      break;
    case classify::FeatureKind::kSampleVariance:
      std::printf("Theorem 2: %.4f   CLT law: %.4f\n",
                  analysis::detection_rate_variance(r_hat, double(n)),
                  analysis::detection_rate_variance_clt(r_hat, double(n)));
      break;
    case classify::FeatureKind::kSampleEntropy:
      std::printf("Theorem 3: %.4f   CLT law: %.4f\n",
                  analysis::detection_rate_entropy(r_hat, double(n)),
                  analysis::detection_rate_entropy_clt(r_hat, double(n)));
      break;
    default:
      break;
  }
  return 0;
}
