// adversary_study: a walkthrough of the attack of paper Sec 3.3, showing
// each intermediate artifact the adversary produces — now as ONE streaming
// pass of the capture through a multi-feature DetectorBank:
//   1. off-line training — replicate the system, stream PIATs per rate into
//      every feature's window accumulator, fit Gaussian-KDE densities;
//   2. the decision rule — print the fitted f(s|omega_l), f(s|omega_h)
//      around the threshold d of Fig 2 for the selected feature;
//   3. run-time classification — per-feature confusion matrices and
//      detection rates from the same single capture, against the
//      closed-form predictions.
//
// Run: ./adversary_study [--feature variance|entropy|mean|mad|iqr] [--n 1000]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/theory.hpp"
#include "classify/detector_bank.hpp"
#include "core/experiment.hpp"
#include "core/scenarios.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"

using namespace linkpad;

namespace {

classify::FeatureKind parse_feature(const std::string& name) {
  if (name == "mean") return classify::FeatureKind::kSampleMean;
  if (name == "variance") return classify::FeatureKind::kSampleVariance;
  if (name == "entropy") return classify::FeatureKind::kSampleEntropy;
  if (name == "mad") return classify::FeatureKind::kMedianAbsDeviation;
  if (name == "iqr") return classify::FeatureKind::kInterquartileRange;
  throw std::invalid_argument("unknown feature: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("adversary_study",
                       "step-by-step Bayes traffic-analysis attack");
  args.add_option("--feature", "variance",
                  "density plot focus: mean | variance | entropy | mad | iqr");
  args.add_option("--n", "1000", "PIAT window size");
  args.add_option("--windows", "150", "training/test windows per class");
  args.add_option("--seed", "42", "root RNG seed");
  if (!args.parse(argc, argv)) return 1;

  const auto focus = parse_feature(args.str("--feature"));
  const auto n = static_cast<std::size_t>(args.integer("--n"));
  const auto windows = static_cast<std::size_t>(args.integer("--windows"));
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed"));

  const auto scenario = core::lab_zero_cross(core::make_cit());
  const auto& backend = core::sim_backend();
  const std::size_t piats = windows * n;
  constexpr std::size_t kBatch = 8192;

  // Focus feature first, every other statistic rides the same pass.
  std::vector<classify::FeatureKind> features = {focus};
  for (const auto kind :
       {classify::FeatureKind::kSampleMean,
        classify::FeatureKind::kSampleVariance,
        classify::FeatureKind::kSampleEntropy,
        classify::FeatureKind::kMedianAbsDeviation,
        classify::FeatureKind::kInterquartileRange}) {
    if (kind != focus) features.push_back(kind);
  }

  classify::AdversaryConfig base;
  base.window_size = n;

  // Feature detectors first, then the two streaming change-point
  // detectors (CUSUM + adaptive-EWMA) riding the SAME capture pass. Both
  // calibrate their thresholds to a 5% false-alarm rate by Monte-Carlo
  // ARL0 replay of their training pools.
  std::vector<classify::DetectorSpec> specs;
  for (const auto kind : features) {
    classify::DetectorSpec ds;
    ds.adversary = base;
    ds.adversary.feature = kind;
    specs.push_back(std::move(ds));
  }
  for (const auto kind :
       {classify::CpdKind::kCusum, classify::CpdKind::kAdaptiveEwma}) {
    classify::DetectorSpec ds;
    ds.adversary = base;
    ds.cpd.emplace();
    ds.cpd->kind = kind;
    ds.cpd->target_far = 0.05;
    ds.cpd->horizon = 2000;
    ds.cpd->trials = 200;
    ds.cpd->calibration_seed = core::derive_point_seed(seed, 3);
    specs.push_back(std::move(ds));
  }
  classify::DetectorBank bank(std::move(specs), /*num_classes=*/2);

  std::printf("=== Off-line training ===\n");
  std::printf("Replicating the padded system at 10 pps and 40 pps,\n");
  std::printf("streaming %zu windows x %zu PIATs per class through %zu "
              "detectors...\n\n",
              windows, n, bank.size());

  // The entropy detector selects its bin width from pooled training
  // moments, so the (replayable) training streams are walked twice; no
  // pass ever materializes more than one batch.
  if (bank.needs_prepass()) {
    for (std::size_t c = 0; c < 2; ++c) {
      core::stream_batches(backend, scenario, c, seed, /*salt=*/1, piats,
                           kBatch, [&](std::span<const double> batch) {
                             bank.consume_prepass(batch);
                           });
    }
    bank.finish_prepass();
  }
  stats::RunningStats train_stats[2];
  for (std::size_t c = 0; c < 2; ++c) {
    core::stream_batches(backend, scenario, c, seed, /*salt=*/1, piats, kBatch,
                         [&](std::span<const double> batch) {
                           bank.consume_training(c, batch);
                           for (double x : batch) train_stats[c].add(x);
                         });
  }
  bank.train();

  // Show the fitted class-conditional feature densities (Fig 2) for the
  // focus feature (detector 0).
  const auto& detector = bank.detector(0);
  const auto sum_low = stats::summarize(detector.training_features()[0]);
  const auto sum_high = stats::summarize(detector.training_features()[1]);
  std::printf("feature '%s' over windows of n = %zu:\n",
              detector.name().c_str(), n);
  std::printf("  class omega_l (10 pps): mean %.6g  std %.4g\n", sum_low.mean,
              sum_low.stddev);
  std::printf("  class omega_h (40 pps): mean %.6g  std %.4g\n", sum_high.mean,
              sum_high.stddev);

  const double lo = std::min(sum_low.min, sum_high.min);
  const double hi = std::max(sum_low.max, sum_high.max);
  std::vector<double> grid, pdf_l, pdf_h;
  for (int i = 0; i <= 80; ++i) {
    const double s = lo + (hi - lo) * i / 80.0;
    grid.push_back(s);
    pdf_l.push_back(detector.classifier().density(0).pdf(s));
    pdf_h.push_back(detector.classifier().density(1).pdf(s));
  }
  util::PlotOptions plot;
  plot.y_label = "f(s|omega) — KDE-fitted class-conditional densities (Fig 2)";
  plot.x_label = "feature value s";
  std::cout << '\n'
            << util::render_plot({util::Series{"omega_l", grid, pdf_l},
                                  util::Series{"omega_h", grid, pdf_h}},
                                 plot);

  if (const auto d = detector.classifier().decision_threshold()) {
    std::printf("\nBayes decision threshold d = %.6g  (s <= d -> omega_l)\n",
                *d);
  } else {
    std::printf("\n(no single decision threshold — densities cross twice)\n");
  }

  std::printf("\n=== Run-time classification ===\n");
  // Checkpoints: the single test pass below also answers "how long must
  // the adversary watch" — outcomes at geometric observation budgets are
  // snapshotted as the capture streams through (prefix replay at the
  // detector level; no re-capture, no re-classification).
  std::vector<std::size_t> budgets;
  for (std::size_t budget = n; budget < piats; budget *= 4) {
    budgets.push_back(budget);
  }
  budgets.push_back(piats);
  bank.arm_checkpoints(budgets);
  for (std::size_t c = 0; c < 2; ++c) {
    core::stream_batches(backend, scenario, c, seed, /*salt=*/2, piats, kBatch,
                         [&](std::span<const double> batch) {
                           bank.consume_test(c, batch);
                         });
  }
  std::cout << detector.confusion().to_string();

  std::printf("\ndetection rate vs observed PIATs per class (feature '%s'):\n",
              detector.name().c_str());
  std::printf("  %12s %10s %10s\n", "PIATs", "windows", "rate");
  for (const std::size_t budget : budgets) {
    const auto confusion = bank.evaluate_at(budget).front();
    std::printf("  %12zu %10llu %10.4f\n", budget,
                static_cast<unsigned long long>(confusion.total()),
                confusion.detection_rate());
  }

  const double r_hat = analysis::variance_ratio(train_stats[0].variance(),
                                                train_stats[1].variance());
  std::printf("\nall detectors, one capture (r_hat = %.4f):\n", r_hat);
  std::printf("  %-16s %10s %10s\n", "feature", "empirical", "theory");
  for (std::size_t i = 0; i < features.size(); ++i) {
    const auto& det = bank.detector(i);
    double theory = 0.0;
    bool has_theory = true;
    switch (det.spec().adversary.feature) {
      case classify::FeatureKind::kSampleMean:
        theory = analysis::detection_rate_mean_exact(r_hat);
        break;
      case classify::FeatureKind::kSampleVariance:
        theory = analysis::detection_rate_variance(r_hat, double(n));
        break;
      case classify::FeatureKind::kSampleEntropy:
        theory = analysis::detection_rate_entropy(r_hat, double(n));
        break;
      default:
        has_theory = false;  // extension features: no closed form
        break;
    }
    if (has_theory) {
      std::printf("  %-16s %10.4f %10.4f\n", det.name().c_str(),
                  det.detection_rate(), theory);
    } else {
      std::printf("  %-16s %10.4f %10s\n", det.name().c_str(),
                  det.detection_rate(), "-");
    }
  }

  std::printf("\n=== Streaming change-point detectors ===\n");
  std::printf("Per-PIAT sequential attack on the same capture: each scheme\n");
  std::printf("scores every packet and alarms when its statistic crosses the\n");
  std::printf("ARL0-calibrated threshold (target 5%% false-alarm rate).\n\n");
  std::printf("  %-14s %10s %9s %12s %12s\n", "scheme", "threshold",
              "detected", "n@detect", "false alarms");
  for (std::size_t j = features.size(); j < bank.size(); ++j) {
    const auto out = bank.detector(j).cpd_outcome();
    std::printf("  %-14s %10.4f %9s %12zu %12zu\n",
                classify::cpd_kind_name(out.kind).c_str(), out.threshold,
                out.ttd.detected ? "yes" : "no", out.ttd.n_at_detection,
                out.ttd.false_alarms);
  }

  std::printf("\ntime-to-detection vs observed PIATs per class:\n");
  std::printf("  %12s", "PIATs");
  for (std::size_t j = features.size(); j < bank.size(); ++j) {
    std::printf(" %14s",
                bank.detector(j).name().c_str());
  }
  std::printf("\n");
  for (const std::size_t budget : budgets) {
    std::printf("  %12zu", budget);
    for (std::size_t j = features.size(); j < bank.size(); ++j) {
      const auto out = bank.detector(j).cpd_outcome_at(budget);
      if (out.ttd.detected) {
        std::printf(" %14zu", out.ttd.n_at_detection);
      } else {
        std::printf(" %14s", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}
