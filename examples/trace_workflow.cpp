// trace_workflow: capture once, analyze offline — the workflow the paper's
// Agilent analyzer dumps supported. Records padded-stream PIAT traces from
// the simulated testbed to disk (CSV + binary), reloads them in a separate
// "analysis" phase, and runs the adversary on the reloaded data. Useful
// when the capture is expensive (long WAN runs) and the analysis is
// iterated many times.
//
// Run: ./trace_workflow [--dir /tmp] [--piats 60000]
#include <cstdio>
#include <filesystem>

#include "classify/adversary.hpp"
#include "core/experiment.hpp"
#include "core/scenarios.hpp"
#include "core/trace_io.hpp"
#include "util/cli.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  util::ArgParser args("trace_workflow",
                       "capture PIAT traces to disk, analyze offline");
  args.add_option("--dir", "/tmp/linkpad_traces", "output directory");
  args.add_option("--piats", "60000", "PIATs captured per class");
  args.add_option("--seed", "31", "root RNG seed");
  if (!args.parse(argc, argv)) return 1;

  const std::string dir = args.str("--dir");
  const auto piats = static_cast<std::size_t>(args.integer("--piats"));
  std::filesystem::create_directories(dir);

  // --- Capture phase: dump one trace per payload rate.
  std::printf("[capture] zero-cross lab, CIT, %zu PIATs per class -> %s\n",
              piats, dir.c_str());
  core::ExperimentSpec spec;
  spec.scenario = core::lab_zero_cross(core::make_cit());
  spec.seed = static_cast<std::uint64_t>(args.integer("--seed"));

  const std::vector<std::string> names = {"rate10pps", "rate40pps"};
  for (std::size_t c = 0; c < 2; ++c) {
    core::Trace trace;
    trace.description = spec.scenario.name + " class " + names[c];
    trace.piats = core::generate_class_stream(spec, c, piats, 1);
    core::save_trace_binary(dir + "/" + names[c] + ".lpt", trace);
    core::save_trace_csv(dir + "/" + names[c] + ".csv", trace);
    std::printf("[capture]   %s: %zu PIATs (%s)\n", names[c].c_str(),
                trace.piats.size(), trace.description.c_str());
  }

  // --- Analysis phase: pretend this is a different process/day.
  std::printf("\n[analyze] reloading binary traces and training the adversary\n");
  std::vector<std::vector<double>> streams;
  for (const auto& name : names) {
    auto trace = core::load_trace_binary(dir + "/" + name + ".lpt");
    std::printf("[analyze]   %s: %zu PIATs, \"%s\"\n", name.c_str(),
                trace.piats.size(), trace.description.c_str());
    streams.push_back(std::move(trace.piats));
  }

  // Split each reloaded stream in half: train on the front, test the back.
  std::vector<std::vector<double>> train, test;
  for (auto& s : streams) {
    const std::size_t half = s.size() / 2;
    train.emplace_back(s.begin(), s.begin() + half);
    test.emplace_back(s.begin() + half, s.end());
  }

  classify::AdversaryConfig cfg;
  cfg.feature = classify::FeatureKind::kSampleEntropy;
  cfg.window_size = 1000;
  classify::Adversary adversary(cfg);
  adversary.train(train);
  std::printf("\n[analyze] entropy adversary at n = %zu: detection rate %.4f\n",
              cfg.window_size, adversary.detection_rate(test));
  std::printf("Traces remain under %s for further offline runs.\n", dir.c_str());
  return 0;
}
