// population_shard: one population campaign split across PROCESSES.
//
// The thread-pool engine scales a population run to the cores of one
// machine; this driver scales it to N independent worker processes (same
// box or N boxes sharing a filesystem) without giving up a single bit of
// determinism. Worker i computes the chunks with id ≡ i (mod N) of the
// (flows, grain) partition, checkpoints each completed chunk to its shard
// file (atomic rewrite, so SIGKILL at any instant loses at most the chunk
// in flight), and the merge step reassembles all shards and finalizes —
// byte-for-byte the result the single-process run prints.
//
// Worker:    ./population_shard --shard 2/8 --emit-shard s2.shard [--resume]
// Merge:     ./population_shard --merge s0.shard,...,s7.shard --out merged.json
// Reference: ./population_shard --run --out single.json
//
// The spec knobs (--flows/--windows/--sigma/--seed/--grain) must be
// identical across every worker and the merge is self-checking beyond
// that: shard headers carry the campaign parameters, and merging shards
// of different campaigns or an incomplete chunk cover is an error, not a
// quietly wrong number.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/population.hpp"
#include "core/scenarios.hpp"
#include "core/shard_io.hpp"
#include "util/cli.hpp"

using namespace linkpad;

namespace {

core::PopulationSpec make_spec(const util::ArgParser& args) {
  const auto windows = static_cast<std::size_t>(args.integer("--windows"));
  const double sigma = args.num("--sigma") * 1e-6;

  core::PopulationSpec spec;
  spec.experiment.scenario = core::lab_cross_traffic(
      sigma > 0 ? core::make_vit(sigma) : core::make_cit(), 0.1);
  spec.experiment.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.adversary.window_size = 400;
  spec.experiment.sample_size_axis = {100, 400};
  spec.experiment.train_windows = windows;
  spec.experiment.test_windows = windows;
  spec.flows = static_cast<std::size_t>(args.integer("--flows"));
  spec.seed = static_cast<std::uint64_t>(args.integer("--seed"));
  spec.keep_per_flow = !args.flag("--drop-per-flow");
  return spec;
}

core::SweepOptions make_options(const util::ArgParser& args) {
  core::SweepOptions options;
  options.threads = static_cast<std::size_t>(args.integer("--threads"));
  options.grain = static_cast<std::size_t>(args.integer("--grain"));
  return options;
}

bool write_text_file(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "population_shard: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

std::vector<std::string> split_paths(const std::string& list) {
  std::vector<std::string> paths;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) paths.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("population_shard",
                       "sharded population campaign: worker / merge / reference");
  args.add_option("--shard", "",
                  "worker mode: this worker's share as i/N (e.g. 2/8)");
  args.add_option("--emit-shard", "",
                  "worker mode: shard checkpoint file (atomically rewritten "
                  "after every completed chunk)");
  args.add_flag("--resume",
                "worker mode: reuse completed chunks already in --emit-shard");
  args.add_option("--merge", "",
                  "merge mode: comma-separated shard files to finalize");
  args.add_flag("--run", "reference mode: single-process run of the campaign");
  args.add_option("--out", "-",
                  "result JSON destination for --merge/--run (- = stdout)");
  args.add_option("--flows", "64", "concurrent padded flows M");
  args.add_option("--windows", "4", "train/test windows per class at n_max");
  args.add_option("--sigma", "0",
                  "VIT timer std-dev in microseconds (0 = CIT)");
  args.add_option("--seed", "7", "root RNG seed");
  args.add_option("--grain", "0", "chunk grain (0 = flow-count default)");
  args.add_option("--threads", "0", "worker threads (0 = hardware)");
  args.add_flag("--drop-per-flow",
                "aggregate-only run (omits per-flow rates from the JSON)");
  if (!args.parse(argc, argv)) return 1;

  try {
    const std::string merge_list = args.str("--merge");
    if (!merge_list.empty()) {
      const auto paths = split_paths(merge_list);
      const core::PopulationResult merged = core::merge_shard_files(paths);
      return write_text_file(args.str("--out"),
                             core::population_result_json(merged))
                 ? 0
                 : 1;
    }

    const std::string shard_arg = args.str("--shard");
    if (!shard_arg.empty()) {
      std::size_t index = 0;
      std::size_t count = 0;
      if (std::sscanf(shard_arg.c_str(), "%zu/%zu", &index, &count) != 2 ||
          count == 0 || index >= count) {
        std::fprintf(stderr,
                     "population_shard: --shard wants i/N with i < N, got %s\n",
                     shard_arg.c_str());
        return 1;
      }
      const std::string emit = args.str("--emit-shard");
      if (emit.empty()) {
        std::fprintf(stderr, "population_shard: worker mode needs --emit-shard\n");
        return 1;
      }
      core::SweepOptions options = make_options(args);
      options.shard_index = index;
      options.shard_count = count;
      core::ShardRunOptions durability;
      durability.checkpoint_path = emit;
      durability.resume = args.flag("--resume");
      const core::PopulationShard shard = core::run_population_shard(
          make_spec(args), core::sim_backend(), options, durability);
      std::fprintf(stderr, "population_shard: shard %zu/%zu done (%zu chunks) -> %s\n",
                   index, count, shard.chunks.size(), emit.c_str());
      return 0;
    }

    if (args.flag("--run")) {
      core::PopulationEngine engine(core::sim_backend(), make_options(args));
      const core::PopulationResult result = engine.run(make_spec(args));
      return write_text_file(args.str("--out"),
                             core::population_result_json(result))
                 ? 0
                 : 1;
    }
  } catch (const std::exception& err) {
    std::fprintf(stderr, "population_shard: %s\n", err.what());
    return 1;
  }

  std::fprintf(stderr, "population_shard: pick a mode: --shard i/N, --merge, or --run\n%s",
               args.help().c_str());
  return 1;
}
