// population_shard: one population campaign split across PROCESSES.
//
// The thread-pool engine scales a population run to the cores of one
// machine; this driver scales it to N independent worker processes (same
// box or N boxes sharing a filesystem) without giving up a single bit of
// determinism. Worker i computes the chunks with id ≡ i (mod N) of the
// (flows, grain) partition, checkpoints each completed chunk to its shard
// file (atomic rewrite, so SIGKILL at any instant loses at most the chunk
// in flight), and the merge step reassembles all shards and finalizes —
// byte-for-byte the result the single-process run prints.
//
// Worker:    ./population_shard --shard 2/8 --emit-shard s2.shard [--resume]
// Merge:     ./population_shard --merge s0.shard,...,s7.shard --out merged.json
// Reference: ./population_shard --run --out single.json
//
// Sampled campaigns (DESIGN.md §2.11): --sample m executes only stratum
// --round of a seed-derived m-of-M subset while contention stays at the
// full --flows; the JSON then carries concentration-bound estimates. The
// sampled fields are part of the campaign identity, so every worker and
// the merge must agree on them like any other spec knob.
//
// The spec knobs (--flows/--windows/--sigma/--seed/--grain/--sample/
// --round) must be identical across every worker and the merge is
// self-checking beyond that: shard headers carry the campaign parameters,
// and merging shards of different campaigns or an incomplete chunk cover
// is an error, not a quietly wrong number.
//
// --progress emits heartbeat lines on stderr — machine-parseable, at most
// ~1/second — from the flow-level progress callback, which the engine
// invokes OUTSIDE every lock (the chunk counters are atomics bumped under
// the checkpoint lock; the formatting and write happen lock-free):
//   population_shard: progress shard=0/2 chunks=3/11 flows=96/334 eta_s=12.4
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/population.hpp"
#include "core/scenarios.hpp"
#include "core/shard_io.hpp"
#include "util/cli.hpp"

using namespace linkpad;

namespace {

core::PopulationSpec make_spec(const util::ArgParser& args) {
  const auto windows = static_cast<std::size_t>(args.integer("--windows"));
  const double sigma = args.num("--sigma") * 1e-6;

  core::PopulationSpec spec;
  spec.experiment.scenario = core::lab_cross_traffic(
      sigma > 0 ? core::make_vit(sigma) : core::make_cit(), 0.1);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.plan.adversary.window_size = 400;
  spec.experiment.sample_size_axis = {100, 400};
  spec.experiment.plan.train_windows = windows;
  spec.experiment.plan.test_windows = windows;
  spec.flows = static_cast<std::size_t>(args.integer("--flows"));
  spec.sample_flows = static_cast<std::size_t>(args.integer("--sample"));
  spec.sample_round = static_cast<std::size_t>(args.integer("--round"));
  spec.seed = static_cast<std::uint64_t>(args.integer("--seed"));
  spec.keep_per_flow = !args.flag("--drop-per-flow");
  return spec;
}

core::SweepOptions make_options(const util::ArgParser& args) {
  core::SweepOptions options;
  options.threads = static_cast<std::size_t>(args.integer("--threads"));
  options.grain = static_cast<std::size_t>(args.integer("--grain"));
  return options;
}

/// Throttled stderr heartbeats for multi-hour campaigns. The chunk
/// counters are written under the engine's chunk lock (cheap atomic
/// stores); emit() runs from SweepOptions::progress — outside every lock —
/// so a slow pipe can never stall a checkpoint.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t shard_index, std::size_t shard_count)
      : shard_index_(shard_index),
        shard_count_(shard_count),
        start_(std::chrono::steady_clock::now()) {}

  void set_chunks(std::size_t done, std::size_t total) {
    chunks_done_.store(done, std::memory_order_relaxed);
    chunks_total_.store(total, std::memory_order_relaxed);
  }

  void emit(std::size_t flows_done, std::size_t flows_total) {
    using namespace std::chrono;
    const auto now = steady_clock::now();
    const long long ms = duration_cast<milliseconds>(now - start_).count();
    long long last = last_emit_ms_.load(std::memory_order_relaxed);
    const bool final_flow = flows_done == flows_total;
    if (!final_flow && ms - last < 1000) return;  // ≤ ~1 line/second
    if (!last_emit_ms_.compare_exchange_strong(last, ms)) return;
    const double elapsed_s = static_cast<double>(ms) / 1000.0;
    const double eta_s =
        flows_done == 0
            ? 0.0
            : elapsed_s * static_cast<double>(flows_total - flows_done) /
                  static_cast<double>(flows_done);
    std::fprintf(stderr,
                 "population_shard: progress shard=%zu/%zu chunks=%zu/%zu "
                 "flows=%zu/%zu eta_s=%.1f\n",
                 shard_index_, shard_count_,
                 chunks_done_.load(std::memory_order_relaxed),
                 chunks_total_.load(std::memory_order_relaxed), flows_done,
                 flows_total, eta_s);
    std::fflush(stderr);
  }

 private:
  std::size_t shard_index_;
  std::size_t shard_count_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> chunks_done_{0};
  std::atomic<std::size_t> chunks_total_{0};
  std::atomic<long long> last_emit_ms_{-1000000};
};

bool write_text_file(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "population_shard: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

std::vector<std::string> split_paths(const std::string& list) {
  std::vector<std::string> paths;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) paths.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("population_shard",
                       "sharded population campaign: worker / merge / reference");
  args.add_option("--shard", "",
                  "worker mode: this worker's share as i/N (e.g. 2/8)");
  args.add_option("--emit-shard", "",
                  "worker mode: shard checkpoint file (atomically rewritten "
                  "after every completed chunk)");
  args.add_flag("--resume",
                "worker mode: reuse completed chunks already in --emit-shard");
  args.add_option("--merge", "",
                  "merge mode: comma-separated shard files to finalize");
  args.add_flag("--run", "reference mode: single-process run of the campaign");
  args.add_option("--out", "-",
                  "result JSON destination for --merge/--run (- = stdout)");
  args.add_int("--flows", 64, "concurrent padded flows M");
  args.add_int("--sample", 0,
                  "sampled mode: simulate only m seed-derived flows of M "
                  "(0 = exhaustive); contention stays at M");
  args.add_int("--round", 0,
                  "sampled mode: which disjoint stratum of the permutation");
  args.add_int("--windows", 4, "train/test windows per class at n_max");
  args.add_num("--sigma", 0,
                  "VIT timer std-dev in microseconds (0 = CIT)");
  args.add_int("--seed", 7, "root RNG seed");
  args.add_int("--grain", 0, "chunk grain (0 = flow-count default)");
  args.add_int("--threads", 0, "worker threads (0 = hardware)");
  args.add_flag("--drop-per-flow",
                "aggregate-only run (omits per-flow rates from the JSON)");
  args.add_flag("--progress",
                "heartbeat lines on stderr (chunks done/total, ETA)");
  if (!args.parse(argc, argv)) return 1;

  try {
    const std::string merge_list = args.str("--merge");
    if (!merge_list.empty()) {
      const auto paths = split_paths(merge_list);
      const core::PopulationResult merged = core::merge_shard_files(paths);
      return write_text_file(args.str("--out"),
                             core::population_result_json(merged))
                 ? 0
                 : 1;
    }

    const std::string shard_arg = args.str("--shard");
    if (!shard_arg.empty()) {
      std::size_t index = 0;
      std::size_t count = 0;
      if (std::sscanf(shard_arg.c_str(), "%zu/%zu", &index, &count) != 2 ||
          count == 0 || index >= count) {
        std::fprintf(stderr,
                     "population_shard: --shard wants i/N with i < N, got %s\n",
                     shard_arg.c_str());
        return 1;
      }
      const std::string emit = args.str("--emit-shard");
      if (emit.empty()) {
        std::fprintf(stderr, "population_shard: worker mode needs --emit-shard\n");
        return 1;
      }
      core::SweepOptions options = make_options(args);
      options.shard_index = index;
      options.shard_count = count;
      core::ShardRunOptions durability;
      durability.checkpoint_path = emit;
      durability.resume = args.flag("--resume");
      ProgressMeter meter(index, count);
      if (args.flag("--progress")) {
        durability.chunk_progress = [&meter](std::size_t done,
                                             std::size_t total) {
          meter.set_chunks(done, total);
        };
        options.progress = [&meter](std::size_t done, std::size_t total) {
          meter.emit(done, total);
        };
      }
      const core::PopulationShard shard = core::run_population_shard(
          make_spec(args), core::sim_backend(), options, durability);
      std::fprintf(stderr, "population_shard: shard %zu/%zu done (%zu chunks) -> %s\n",
                   index, count, shard.chunks.size(), emit.c_str());
      return 0;
    }

    if (args.flag("--run")) {
      core::SweepOptions options = make_options(args);
      ProgressMeter meter(0, 1);
      if (args.flag("--progress")) {
        options.progress = [&meter](std::size_t done, std::size_t total) {
          meter.emit(done, total);
        };
      }
      core::PopulationEngine engine(core::sim_backend(), options);
      const core::PopulationResult result = engine.run(make_spec(args));
      return write_text_file(args.str("--out"),
                             core::population_result_json(result))
                 ? 0
                 : 1;
    }
  } catch (const std::exception& err) {
    std::fprintf(stderr, "population_shard: %s\n", err.what());
    return 1;
  }

  std::fprintf(stderr, "population_shard: pick a mode: --shard i/N, --merge, or --run\n%s",
               args.help().c_str());
  return 1;
}
