// live_loopback: the padding gateway on REAL OS timers and UDP sockets,
// served through the same PiatSource interface as the simulator.
//
// The engine layer makes the backend a plug: the identical scenario object
// is opened once against the live backend (real scheduler wake-up latency
// takes the role of delta_gw, measured across loopback UDP) and once
// against the simulated backend, and the same code consumes both streams.
// Watch your own machine's jitter become the CIT leak, then watch VIT
// drown it — exactly the paper's Sec 5.1 structure.
//
// Run: ./live_loopback [--tau-ms 2] [--piats 1500]
#include <cstdio>

#include "core/live_backend.hpp"
#include "core/piat_source.hpp"
#include "core/scenarios.hpp"
#include "stats/descriptive.hpp"
#include "util/cli.hpp"

using namespace linkpad;

namespace {

stats::Summary capture(const core::ExperimentBackend& backend,
                       const core::Scenario& scenario, std::size_t piats,
                       const char* label) {
  auto source = backend.open(scenario, /*class_index=*/0, /*seed=*/1,
                             /*salt=*/1);
  std::vector<double> series;
  series.reserve(piats);
  const std::size_t got = source->collect(piats, series);
  if (got == 0) {
    std::printf("  %-12s (no PIATs captured)\n", label);
    return {};
  }
  const auto summary = stats::summarize(series);
  std::printf("  %-12s %6zu PIATs: mean %.3f ms, std %8.1f us, "
              "min %.3f ms, max %.3f ms\n",
              label, got, summary.mean * 1e3, summary.stddev * 1e6,
              summary.min * 1e3, summary.max * 1e3);
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("live_loopback",
                       "real-time padding gateway over loopback UDP");
  args.add_option("--tau-ms", "2", "timer mean interval in milliseconds");
  args.add_option("--piats", "1500", "PIATs to capture per run");
  if (!args.parse(argc, argv)) return 1;

  const double tau = args.num("--tau-ms") * 1e-3;
  const auto piats = static_cast<std::size_t>(args.integer("--piats"));

  // The paper's scenario objects, scaled so the live runs finish quickly:
  // the live backend maps policy tau/sigma onto the real clock.
  core::LiveBackendOptions live_options;
  live_options.tau_scale = tau / core::constants::kTau;
  const auto live = core::make_live_backend(live_options);

  const auto cit = core::lab_zero_cross(core::make_cit());
  const auto vit = core::lab_zero_cross(
      core::make_vit(/*sigma=*/core::constants::kTau / 2.0));

  std::printf("Live loopback padding testbed (tau = %.1f ms, %zu PIATs/run)\n",
              tau * 1e3, piats);
  std::printf("Backends: '%s' vs '%s' through one PiatSource interface.\n\n",
              live->name().c_str(), core::sim_backend().name().c_str());

  std::printf("[1] CIT gateway\n");
  const auto live_cit = capture(*live, cit, piats, "live:");
  const auto sim_cit = capture(core::sim_backend(), cit, piats, "sim:");

  std::printf("\n[2] VIT gateway (sigma_T = tau/2)\n");
  const auto live_vit = capture(*live, vit, piats, "live:");
  const auto sim_vit = capture(core::sim_backend(), vit, piats, "sim:");

  if (live_cit.variance > 0.0 && live_vit.variance > 0.0) {
    std::printf("\nVar(PIAT) VIT / CIT = %.1fx live (%.1fx simulated) — the "
                "VIT spread dwarfs\nthe host's own jitter, which is precisely "
                "why the adversary's variance\nratio r collapses to 1.\n",
                live_vit.variance / live_cit.variance,
                sim_vit.variance / sim_cit.variance);
    std::printf("The live CIT std-dev above IS your machine's scheduler "
                "jitter: on the\npaper's TimeSys RT gateway it was ~10 us; "
                "whatever it is here, it leaks\nthe same way.\n");
  }
  return 0;
}
