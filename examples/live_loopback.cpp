// live_loopback: the padding gateway on REAL OS timers and UDP sockets.
//
// Sends a padded stream across the loopback interface with CIT and then
// VIT timers, measuring PIATs at a receiving sniffer thread with monotonic
// timestamps — the physical experiment of the paper scaled to one host.
// Real scheduler wake-up latency takes the role of delta_gw; you can watch
// your own machine's jitter become the CIT leak.
//
// Run: ./live_loopback [--tau-ms 2] [--packets 1500]
#include <cstdio>

#include "live/live_testbed.hpp"
#include "stats/descriptive.hpp"
#include "util/cli.hpp"

using namespace linkpad;

namespace {

void report(const char* label, const live::LiveResult& result,
            const live::LiveGatewayConfig& cfg) {
  std::printf("%s\n", label);
  std::printf("  sent %llu packets (%llu payload, %llu dummy), received %llu\n",
              static_cast<unsigned long long>(cfg.packet_count),
              static_cast<unsigned long long>(result.gateway.payload_sent),
              static_cast<unsigned long long>(result.gateway.dummy_sent),
              static_cast<unsigned long long>(result.received));
  if (result.piats.empty()) {
    std::printf("  (no PIATs captured)\n");
    return;
  }
  std::printf("  PIAT: mean %.3f ms, std %.1f us, min %.3f ms, max %.3f ms\n",
              result.piat_summary.mean * 1e3, result.piat_summary.stddev * 1e6,
              result.piat_summary.min * 1e3, result.piat_summary.max * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("live_loopback",
                       "real-time padding gateway over loopback UDP");
  args.add_option("--tau-ms", "2", "timer mean interval in milliseconds");
  args.add_option("--packets", "1500", "wire packets per run");
  args.add_option("--payload-pps", "120", "payload packet rate");
  if (!args.parse(argc, argv)) return 1;

  live::LiveGatewayConfig cfg;
  cfg.tau = args.num("--tau-ms") * 1e-3;
  cfg.packet_count = static_cast<std::size_t>(args.integer("--packets"));
  cfg.payload_rate = args.num("--payload-pps");

  std::printf("Live loopback padding testbed (tau = %.1f ms, %zu packets)\n\n",
              cfg.tau * 1e3, cfg.packet_count);

  std::printf("[1] CIT run...\n");
  const auto cit = live::run_live_experiment(cfg);
  report("CIT:", cit, cfg);

  live::LiveGatewayConfig vit_cfg = cfg;
  vit_cfg.sigma_timer = cfg.tau / 2.0;
  std::printf("\n[2] VIT run (sigma_T = %.1f ms)...\n", vit_cfg.sigma_timer * 1e3);
  const auto vit = live::run_live_experiment(vit_cfg);
  report("VIT:", vit, vit_cfg);

  if (!cit.piats.empty() && !vit.piats.empty()) {
    const double ratio =
        vit.piat_summary.variance / cit.piat_summary.variance;
    std::printf("\nVar(PIAT) VIT / CIT = %.1fx — the VIT spread dwarfs the "
                "host's own jitter,\nwhich is precisely why the adversary's "
                "variance ratio r collapses to 1.\n",
                ratio);
    std::printf("The CIT std-dev above IS your machine's scheduler jitter: "
                "on the paper's\nTimeSys RT gateway it was ~10 us; whatever "
                "it is here, it leaks the same way.\n");
  }
  return 0;
}
