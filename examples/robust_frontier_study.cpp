// robust_frontier_study: what does the frontier look like when the
// attacker fights back? frontier_study scores every defense against the
// paper's FIXED adversary; here each policy point first gets its own
// best-response attacker — tuned by seeded successive halving over a
// feature × window × detector-family search space on a held-out selection
// seed — and the Pareto table is re-scored against the tuned attacker on
// the ordinary scoring seed. The printed table shows, per policy, the
// fixed-bank rate (bit-identical to run_frontier), the tuned rate (never
// lower), the gain re-tuning bought, and the weapon the attacker picked.
//
// Run: ./robust_frontier_study [--n 200] [--windows 12] [--seed 20030324]
//                              [--edf] [--json]
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/robust_frontier.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  util::ArgParser args("robust_frontier_study",
                       "re-score the defense frontier against a per-policy "
                       "best-response adversary");
  args.add_int("--n", 200, "fixed-bank window size (PIATs per window)");
  args.add_int("--windows", 12, "train/test windows per class");
  args.add_int("--seed", 20030324, "root RNG seed");
  args.add_flag("--edf", "add EDF (KS/CvM) candidates to the search space");
  args.add_flag("--json", "also print the canonical hex-double JSON record");
  if (!args.parse(argc, argv)) return 1;

  core::RobustFrontierSpec spec;
  spec.frontier.scenario = core::lab_zero_cross(core::make_cit());
  // The golden budget ladder (peak payload 40 pps vs the 100 pps timer)
  // plus the idle-stop point the fixed adversary already reads trivially.
  spec.frontier.policies =
      core::budget_ladder({0.0, 40.0, 70.0, 85.0, 100.0});
  spec.frontier.policies.push_back(core::make_onoff(/*hangover=*/20e-3));
  spec.frontier.plan.adversary.window_size =
      static_cast<std::size_t>(args.integer("--n"));
  spec.frontier.plan.train_windows =
      static_cast<std::size_t>(args.integer("--windows"));
  spec.frontier.plan.test_windows = spec.frontier.plan.train_windows;
  spec.frontier.seed = static_cast<std::uint64_t>(args.integer("--seed"));
  // The attacker's menu: every scalar feature at three window sizes
  // (optionally the EDF family too — stronger but much slower to train).
  spec.space.window_sizes = {100, 200, 400};
  if (args.flag("--edf")) {
    spec.space.edf_distances = {classify::EdfDistance::kKolmogorovSmirnov,
                                classify::EdfDistance::kCramerVonMises};
  }

  core::SweepOptions options;
  options.progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r  %zu/%zu points...", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };
  const auto robust =
      core::run_robust_frontier(spec, core::sim_backend(), options);

  std::printf(
      "robust defense frontier, lab zero-cross, fixed bank n = %zu, "
      "%zu windows,\n%zu attacker candidates per point:\n\n",
      spec.frontier.plan.adversary.window_size,
      spec.frontier.plan.train_windows, spec.space.size());
  util::TextTable table({"policy", "overhead kbps", "fixed det",
                         "tuned det", "gain", "tuned attacker", "pareto"});
  for (const auto& point : robust.points) {
    table.add_row({point.policy, util::fmt(point.overhead_bps / 1e3, 1),
                   util::fmt(point.fixed_detection, 4),
                   util::fmt(point.tuned_detection, 4),
                   util::fmt(point.tuned_gain(), 4), point.winner_label,
                   point.pareto_efficient ? "*" : ""});
  }
  std::cout << table.to_string() << '\n';

  // The golden contracts the study itself enforces:
  //  1. tuned ≥ fixed on every point (the attacker keeps the fixed bank);
  //  2. the budget ladder stays monotone under the TUNED rates — more
  //     padding budget must not help even a re-tuned adversary.
  bool tuned_at_least_fixed = true;
  for (const auto& point : robust.points) {
    tuned_at_least_fixed =
        tuned_at_least_fixed && point.tuned_detection >= point.fixed_detection;
  }
  std::vector<core::FrontierPoint> ladder;
  for (std::size_t i = 0; i + 1 < robust.points.size(); ++i) {
    core::FrontierPoint rung;
    rung.detection_rate = robust.points[i].tuned_detection;
    ladder.push_back(rung);
  }
  const double tolerance =
      1.0 / static_cast<double>(spec.frontier.plan.test_windows);
  const bool monotone =
      core::detection_monotone_nonincreasing(ladder, tolerance);
  std::printf("tuned ≥ fixed on every point: %s\n",
              tuned_at_least_fixed ? "yes" : "VIOLATED");
  std::printf(
      "budget ladder monotone under tuned rates (tolerance %.4f): %s\n",
      tolerance, monotone ? "yes" : "VIOLATED");

  if (args.flag("--json")) {
    std::printf("\n%s\n", core::robust_frontier_json(robust).c_str());
  }

  std::printf(
      "\nReading the robust frontier: partial budgets were already at\n"
      "certainty, so re-tuning buys the attacker nothing there — the gain\n"
      "concentrates exactly where the defense was winning. Full padding's\n"
      "margin under the fixed bank overstates the deployed margin by the\n"
      "gain column: budget the defense against the tuned rate, not the\n"
      "paper's fixed adversary.\n");
  return tuned_at_least_fixed && monotone ? 0 : 1;
}
