// population_study: the paper's Sec 6 deployment guidelines at population
// scale. A provider pads M user flows onto one shared lab path; the
// adversary taps EVERY flow and runs the strongest single-flow attack on
// each. Single-flow curves answer "can flow X be detected" — a deployment
// review needs the population answer: what fraction of users leak at a
// given capture budget, how bad is the worst flow, and how long until the
// FIRST user is exposed.
//
// Built on core::PopulationEngine: flows shard across the thread pool,
// every flow gets its own DetectorBank pipeline, and the whole
// detection-vs-n axis rides each flow's single capture (prefix replay).
//
// --sample m adds the sampled-mode comparison (DESIGN.md §2.11): an
// adaptive run_sampled_until campaign taps strata of m flows out of the
// same M until the detected-fraction error bar closes to --half-width,
// printed against the exhaustive truth — the intervals contain it.
//
// Run: ./population_study [--flows 100] [--windows 10] [--sigma 500]
//                         [--sample 25 --half-width 0.15]
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/population.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace linkpad;

namespace {

core::PopulationSpec study_spec(std::shared_ptr<const sim::TimerPolicy> policy,
                                std::size_t flows, std::size_t windows,
                                std::uint64_t seed);

core::PopulationResult run_study(std::shared_ptr<const sim::TimerPolicy> policy,
                                 std::size_t flows, std::size_t windows,
                                 std::uint64_t seed) {
  const core::PopulationSpec spec =
      study_spec(std::move(policy), flows, windows, seed);

  core::SweepOptions options;
  options.progress = [](std::size_t done, std::size_t total) {
    if (done % 25 == 0 || done == total) {
      std::fprintf(stderr, "\r  %zu/%zu flows...", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    }
  };
  return core::PopulationEngine(core::sim_backend(), options).run(spec);
}

void print_population(const char* title, const core::PopulationResult& result,
                      double threshold) {
  std::printf("%s (%zu flows, detection threshold %.2f):\n\n", title,
              result.flows(), threshold);
  util::TextTable table({"n", "detected", "mean", "median", "p95", "worst flow",
                         "worst rate"});
  for (const auto& point : result.by_sample_size) {
    table.add_row({std::to_string(point.sample_size),
                   util::fmt(point.detected_fraction, 3),
                   util::fmt(point.mean_rate, 4),
                   util::fmt(point.quantiles.median, 4),
                   util::fmt(point.quantiles.p95, 4),
                   std::to_string(point.worst_flow),
                   util::fmt(point.max_rate, 4)});
  }
  std::cout << table.to_string();
  if (result.first_detection_n) {
    std::printf("first user exposed at n = %zu (%.1f s of capture)\n\n",
                *result.first_detection_n, *result.time_to_first_detection);
  } else {
    std::printf("no user reaches the threshold on this axis\n\n");
  }
}

core::PopulationSpec study_spec(std::shared_ptr<const sim::TimerPolicy> policy,
                                std::size_t flows, std::size_t windows,
                                std::uint64_t seed) {
  core::PopulationSpec spec;
  spec.experiment.scenario = core::lab_cross_traffic(std::move(policy), 0.1);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.plan.extra_features = {classify::FeatureKind::kSampleEntropy};
  spec.experiment.sample_size_axis = {100, 300, 1000};
  spec.experiment.plan.adversary.window_size = 1000;
  spec.experiment.plan.train_windows = windows;
  spec.experiment.plan.test_windows = windows;
  spec.flows = flows;
  spec.seed = seed;
  return spec;
}

/// Sampled vs exhaustive: the adaptive driver's Wilson intervals printed
/// against the exhaustive truth at the same contention. A 95% interval
/// misses ~1 row in 20 by design (an unlucky stratum is a property of the
/// seed, not a bug); the coverage guarantee is over seeds, and the
/// 200-trial harness in tests/core/sampling_test.cpp checks it.
void print_sampled_comparison(const core::PopulationResult& exhaustive,
                              const core::PopulationResult& sampled) {
  std::printf("sampled campaign: %zu of %zu flows simulated (%.0f%% of the "
              "work):\n\n",
              sampled.flows(), sampled.sampled_from,
              100.0 * static_cast<double>(sampled.flows()) /
                  static_cast<double>(sampled.sampled_from));
  util::TextTable table({"n", "detected (sampled)", "95% interval",
                         "detected (exact)", "covered"});
  for (std::size_t i = 0; i < sampled.estimates.size(); ++i) {
    const auto& est = sampled.estimates[i].detected_fraction;
    const double exact = exhaustive.by_sample_size[i].detected_fraction;
    const bool covered = est.lo <= exact && exact <= est.hi;
    table.add_row({std::to_string(sampled.estimates[i].sample_size),
                   util::fmt(est.point, 3),
                   "[" + util::fmt(est.lo, 3) + ", " + util::fmt(est.hi, 3) +
                       "]",
                   util::fmt(exact, 3), covered ? "yes" : "NO"});
  }
  std::cout << table.to_string();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("population_study",
                       "padding a user population: who leaks, and how fast");
  args.add_int("--flows", 100, "concurrent padded flows M");
  args.add_int("--windows", 10, "train/test windows per class at n_max");
  args.add_num("--sigma", 500, "VIT timer std-dev in microseconds");
  args.add_int("--seed", 31, "root RNG seed");
  args.add_int("--sample", 0,
                  "sampled-mode stratum size m (0 = skip the sampled demo)");
  args.add_num("--half-width", 0.15,
                  "target detected-fraction half-width for the sampled demo");
  if (!args.parse(argc, argv)) return 1;

  const auto flows = static_cast<std::size_t>(args.integer("--flows"));
  const auto windows = static_cast<std::size_t>(args.integer("--windows"));
  const double sigma = args.num("--sigma") * 1e-6;
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed"));

  // One naming accessor for every surface: tables, benches and JSON records
  // all label a policy by TimerPolicy::name(), never by an ad-hoc string.
  const auto cit_policy = core::make_cit();
  const auto vit_policy = core::make_vit(sigma);
  std::fprintf(stderr, "%s population:\n", cit_policy->name().c_str());
  const auto cit = run_study(cit_policy, flows, windows,
                             core::derive_point_seed(seed, 0));
  std::fprintf(stderr, "%s population:\n", vit_policy->name().c_str());
  const auto vit = run_study(vit_policy, flows, windows,
                             core::derive_point_seed(seed, 1));

  print_population(cit_policy->name().c_str(), cit,
                   core::PopulationSpec{}.detection_threshold);
  print_population(vit_policy->name().c_str(), vit,
                   core::PopulationSpec{}.detection_threshold);

  const auto sample = static_cast<std::size_t>(args.integer("--sample"));
  if (sample > 0 && sample <= flows) {
    core::AdaptiveSamplingOptions adaptive;
    adaptive.round_flows = sample;
    adaptive.target_half_width = args.num("--half-width");
    const auto sampled = core::run_sampled_until(
        study_spec(cit_policy, flows, windows,
                   core::derive_point_seed(seed, 0)),
        adaptive);
    print_sampled_comparison(cit, sampled);
  }

  std::printf("Security is a worst-case business at population scale too: a\n"
              "deployment is only as private as its WORST flow. CIT exposes\n"
              "a first user within seconds of capture; VIT (sigma = %.0f us)\n"
              "buys every flow far more time at identical bandwidth, and a\n"
              "larger --sigma pushes first exposure off the axis entirely\n"
              "(the paper's Sec 6 design rule, population form).\n",
              sigma * 1e6);
  return 0;
}
