// campus_vs_wan: where may I still deploy CIT? A deployment study over a
// simulated day on both of the paper's remote environments (Sec 5.3),
// reporting detection rate per time slot plus the day's worst case — the
// number a security engineer actually cares about.
//
// Run: ./campus_vs_wan [--slots 8] [--windows 100]
#include <cstdio>
#include <iostream>

#include "core/figures.hpp"
#include "core/scenarios.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  util::ArgParser args("campus_vs_wan",
                       "CIT exposure across a day: campus vs WAN tap");
  args.add_option("--slots", "8", "time slots across the 24h day");
  args.add_option("--windows", "100", "train/test windows per class");
  args.add_option("--seed", "23", "root RNG seed");
  if (!args.parse(argc, argv)) return 1;

  const auto slots = static_cast<std::size_t>(args.integer("--slots"));
  const auto windows = static_cast<std::size_t>(args.integer("--windows"));
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed"));

  util::TextTable table({"hour", "campus util", "campus detection",
                         "wan util", "wan detection"});
  std::vector<double> hours, campus_v, wan_v;
  double campus_worst = 0.0, wan_worst = 0.0;

  for (std::size_t i = 0; i < slots; ++i) {
    const double hour = 24.0 * static_cast<double>(i) / slots;
    const auto campus_rates = core::detection_rates_on_scenario(
        core::campus(core::make_cit(), hour),
        {classify::FeatureKind::kSampleEntropy}, 1000, windows, windows,
        seed + i);
    const auto wan_rates = core::detection_rates_on_scenario(
        core::wan(core::make_cit(), hour),
        {classify::FeatureKind::kSampleEntropy}, 1000, windows, windows,
        seed + 100 + i);

    hours.push_back(hour);
    campus_v.push_back(campus_rates[0]);
    wan_v.push_back(wan_rates[0]);
    campus_worst = std::max(campus_worst, campus_rates[0]);
    wan_worst = std::max(wan_worst, wan_rates[0]);

    table.add_row({util::fmt(hour, 1),
                   util::fmt(core::campus_profile().utilization_at(hour), 3),
                   util::fmt(campus_rates[0], 4),
                   util::fmt(core::wan_profile().utilization_at(hour), 3),
                   util::fmt(wan_rates[0], 4)});
  }

  std::printf("CIT padding, entropy adversary at n = 1000, across a day:\n\n");
  std::cout << table.to_string() << '\n';

  util::PlotOptions plot;
  plot.x_label = "hour of day";
  plot.y_label = "detection rate";
  plot.y_fixed = true;
  plot.y_min = 0.4;
  plot.y_max = 1.0;
  std::cout << util::render_plot({util::Series{"campus", hours, campus_v},
                                  util::Series{"wan", hours, wan_v}},
                                 plot);

  std::printf("\nWorst-case over the day: campus %.3f, wan %.3f.\n",
              campus_worst, wan_worst);
  std::printf("Security is a worst-case business: both exceed coin-flipping,\n"
              "so CIT is unsafe in either deployment — the quiet 2 AM Internet\n"
              "is exactly when the remote adversary does best (paper Sec 5.3).\n");
  return 0;
}
