// campus_vs_wan: where may I still deploy CIT? A deployment study over a
// simulated day on both of the paper's remote environments (Sec 5.3),
// reporting detection rate per time slot plus the day's worst case — the
// number a security engineer actually cares about.
//
// Built on the engine layer: each environment is one SweepGrid over the
// diurnal-phase axis, sharded across the thread pool by SweepRunner with
// live progress reporting.
//
// Run: ./campus_vs_wan [--slots 8] [--windows 100]
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/scenarios.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace linkpad;

namespace {

std::vector<double> day_slots(std::size_t slots) {
  std::vector<double> hours;
  for (std::size_t i = 0; i < slots; ++i) {
    hours.push_back(24.0 * static_cast<double>(i) / static_cast<double>(slots));
  }
  return hours;
}

std::vector<double> detection_over_day(
    core::SweepGrid::Environment env,
    std::shared_ptr<const sim::TimerPolicy> policy,
    const std::vector<double>& hours, std::size_t windows,
    std::uint64_t seed) {
  core::SweepGrid grid;
  grid.environment = env;
  grid.policies = {std::move(policy)};
  grid.hours = hours;
  grid.plan.set_features({classify::FeatureKind::kSampleEntropy});
  grid.plan.adversary.window_size = 1000;
  grid.plan.train_windows = windows;
  grid.plan.test_windows = windows;
  grid.seed = seed;

  core::SweepOptions options;
  options.progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r  %zu/%zu time slots...", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  const auto report =
      core::SweepRunner(core::sim_backend(), options).run(grid.expand());
  std::vector<double> rates;
  for (const auto& r : report.results) rates.push_back(r.detection_rate);
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("campus_vs_wan",
                       "CIT exposure across a day: campus vs WAN tap");
  args.add_option("--slots", "8", "time slots across the 24h day");
  args.add_option("--windows", "100", "train/test windows per class");
  args.add_option("--seed", "23", "root RNG seed");
  if (!args.parse(argc, argv)) return 1;

  const auto slots = static_cast<std::size_t>(args.integer("--slots"));
  const auto windows = static_cast<std::size_t>(args.integer("--windows"));
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed"));

  const auto hours = day_slots(slots);
  // The deployed defense under study; its name() labels every output below
  // (the one naming accessor all surfaces share).
  const auto policy = core::make_cit();
  // Each environment's sweep is its own point of the root seed: derive,
  // never offset (naive `seed + k` collides streams across sweeps once
  // their grids interleave — see core::derive_point_seed).
  std::fprintf(stderr, "campus sweep:\n");
  const auto campus_v =
      detection_over_day(core::SweepGrid::Environment::kCampus, policy, hours,
                         windows, core::derive_point_seed(seed, 0));
  std::fprintf(stderr, "wan sweep:\n");
  const auto wan_v =
      detection_over_day(core::SweepGrid::Environment::kWan, policy, hours,
                         windows, core::derive_point_seed(seed, 1));

  util::TextTable table({"hour", "campus util", "campus detection",
                         "wan util", "wan detection"});
  double campus_worst = 0.0, wan_worst = 0.0;
  for (std::size_t i = 0; i < hours.size(); ++i) {
    campus_worst = std::max(campus_worst, campus_v[i]);
    wan_worst = std::max(wan_worst, wan_v[i]);
    table.add_row({util::fmt(hours[i], 1),
                   util::fmt(core::campus_profile().utilization_at(hours[i]), 3),
                   util::fmt(campus_v[i], 4),
                   util::fmt(core::wan_profile().utilization_at(hours[i]), 3),
                   util::fmt(wan_v[i], 4)});
  }

  std::printf("%s padding, entropy adversary at n = 1000, across a day:\n\n",
              policy->name().c_str());
  std::cout << table.to_string() << '\n';

  util::PlotOptions plot;
  plot.x_label = "hour of day";
  plot.y_label = "detection rate";
  plot.y_fixed = true;
  plot.y_min = 0.4;
  plot.y_max = 1.0;
  std::cout << util::render_plot({util::Series{"campus", hours, campus_v},
                                  util::Series{"wan", hours, wan_v}},
                                 plot);

  std::printf("\nWorst-case over the day: campus %.3f, wan %.3f.\n",
              campus_worst, wan_worst);
  std::printf("Security is a worst-case business: both exceed coin-flipping,\n"
              "so CIT is unsafe in either deployment — the quiet 2 AM Internet\n"
              "is exactly when the remote adversary does best (paper Sec 5.3).\n");
  return 0;
}
