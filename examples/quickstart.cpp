// Quickstart: the paper's headline result in ~80 lines.
//
// 1. Build the zero-cross-traffic lab system with CIT padding (timer mean
//    10 ms) and measure the padded stream at 10 pps vs 40 pps payload.
// 2. Attack it with the Bayes adversary (sample variance & entropy at
//    n = 1000): CIT leaks — detection rate is near 100%.
// 3. Switch the gateway to VIT (sigma_T = 100 us): detection collapses to
//    coin-flipping, at identical bandwidth cost.
//
// Run: ./quickstart [--seed 7]
#include <cstdio>

#include "analysis/theory.hpp"
#include "core/experiment.hpp"
#include "core/piat_model.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"

using namespace linkpad;

namespace {

void attack(const core::Scenario& scenario, std::uint64_t seed) {
  for (const auto feature : {classify::FeatureKind::kSampleMean,
                             classify::FeatureKind::kSampleVariance,
                             classify::FeatureKind::kSampleEntropy}) {
    core::ExperimentSpec spec;
    spec.scenario = scenario;
    spec.plan.adversary.feature = feature;
    spec.plan.adversary.window_size = 1000;
    spec.plan.train_windows = 120;
    spec.plan.test_windows = 120;
    spec.seed = seed;
    const auto result = core::run_experiment(spec);
    std::printf("  %-16s detection rate %5.1f%%  (theory %5.1f%%, r_hat %.3f)\n",
                classify::feature_name(feature).c_str(),
                100.0 * result.detection_rate,
                result.predicted ? 100.0 * *result.predicted : 0.0,
                result.r_hat);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("quickstart", "CIT leaks, VIT does not — the paper in one run");
  args.add_option("--seed", "7", "root RNG seed");
  if (!args.parse(argc, argv)) return 1;
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed"));

  std::printf("Link padding vs traffic analysis (Fu et al., ICPP 2003)\n");
  std::printf("Payload rates to hide: 10 pps vs 40 pps; timer mean 10 ms.\n\n");

  const auto cit = core::lab_zero_cross(core::make_cit());
  const auto vc = core::predict_components(cit.config_for(0), cit.config_for(1));
  std::printf("[1] CIT gateway, tap at GW1 (adversary's best case)\n");
  std::printf("    predicted PIAT variance ratio r = %.3f\n", vc.ratio());
  attack(cit, seed);

  std::printf("\n[2] Same system, VIT gateway (sigma_T = 100 us)\n");
  using namespace units;
  const auto vit = core::lab_zero_cross(core::make_vit(100.0_us));
  const auto vc2 = core::predict_components(vit.config_for(0), vit.config_for(1));
  std::printf("    predicted PIAT variance ratio r = %.6f\n", vc2.ratio());
  attack(vit, seed);

  std::printf("\nSame mean rate on the wire in both cases — VIT costs no extra\n"
              "bandwidth; it only randomizes WHEN the timer fires.\n");
  return 0;
}
