// vit_design: the paper's design-guideline workflow, end to end.
//
// A security engineer wants the padded link to leak at most v_max against
// an adversary who can capture up to n_max PIATs of one payload epoch:
//   1. measure the deployed gateway's jitter components at both rates,
//   2. solve for the smallest admissible variance ratio r* and the
//      VIT spread sigma_T that achieves it,
//   3. deploy and VERIFY by re-running the strongest attack.
//
// Run: ./vit_design [--vmax 0.55] [--nmax 5000]
#include <cstdio>

#include "analysis/guidelines.hpp"
#include "core/experiment.hpp"
#include "core/piat_model.hpp"
#include "core/scenarios.hpp"
#include "util/cli.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  util::ArgParser args("vit_design",
                       "configure VIT padding for a target detection bound");
  args.add_option("--vmax", "0.55", "tolerated detection rate (0.5..1)");
  args.add_option("--nmax", "5000", "adversary's largest credible sample");
  args.add_option("--seed", "11", "root RNG seed");
  if (!args.parse(argc, argv)) return 1;

  const double v_max = args.num("--vmax");
  const double n_max = args.num("--nmax");
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed"));

  // --- Step 1: measure the system under CIT.
  std::printf("[1] Measuring gateway jitter components under CIT...\n");
  const auto cit = core::lab_zero_cross(core::make_cit());
  const auto mc =
      core::measure_components(cit.config_for(0), cit.config_for(1), 200000, seed);
  std::printf("    Var(PIAT | 10pps) = %.2f us^2, Var(PIAT | 40pps) = %.2f us^2\n",
              mc.sigma2_low * 1e12, mc.sigma2_high * 1e12);
  std::printf("    measured ratio r_CIT = %.4f\n\n", mc.ratio);

  // --- Step 2: run the design procedure.
  analysis::DesignInputs in;
  in.sigma2_gw_low = mc.sigma2_low;   // tap at GW1: all noise is gateway noise
  in.sigma2_gw_high = mc.sigma2_high;
  in.sigma2_net = 0.0;                // design for the worst case (local tap)
  in.n_max = n_max;
  in.v_max = v_max;
  in.tau = core::constants::kTau;
  in.payload_peak = core::constants::kRateHigh;
  const auto rec = analysis::design_padding_system(in);

  std::printf("[2] Design for v <= %.2f at n <= %.0f:\n", v_max, n_max);
  std::printf("    required ratio r* = %.6f\n", rec.required_ratio);
  std::printf("    recommended sigma_T = %.2f us  (%s)\n",
              rec.sigma_timer * 1e6,
              rec.sigma_timer > 0.0 ? "VIT" : "CIT suffices");
  std::printf("    predicted rates at n_max: mean %.3f, variance %.3f, entropy %.3f\n",
              rec.v_mean, rec.v_variance, rec.v_entropy);
  std::printf("    cost: wire %.0f pps, dummy fraction %.0f%%, mean payload "
              "delay %.1f ms\n\n",
              rec.wire_rate, 100.0 * rec.dummy_fraction,
              rec.mean_queueing_delay * 1e3);
  std::printf("    rationale: %s\n\n", rec.rationale.c_str());

  // --- Step 3: verify empirically with the strongest studied features.
  // Both features ride ONE experiment (DetectorBank pass) on one capture;
  // the verification capture is its own derived point of the root seed —
  // never a naive `seed + 1` offset, which collides with adjacent sweeps
  // (see core::derive_point_seed).
  std::printf("[3] Verifying against the empirical adversary (n = %.0f)...\n",
              n_max);
  core::ExperimentSpec spec;
  spec.scenario = core::lab_zero_cross(rec.sigma_timer > 0.0
                                           ? core::make_vit(rec.sigma_timer)
                                           : core::make_cit());
  spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.plan.extra_features = {classify::FeatureKind::kSampleEntropy};
  spec.plan.adversary.window_size = static_cast<std::size_t>(n_max);
  spec.plan.train_windows = 50;
  spec.plan.test_windows = 50;
  spec.seed = core::derive_point_seed(seed, 1);
  const auto result = core::run_experiment(spec);
  for (const auto& outcome : result.per_feature) {
    std::printf("    %-16s measured detection %.4f  (target <= %.2f)\n",
                classify::feature_name(outcome.feature).c_str(),
                outcome.detection_rate, v_max);
  }
  std::printf("\nDone: the configured sigma_T holds the leak at the designed "
              "bound, at zero\nextra bandwidth relative to CIT.\n");
  return 0;
}
