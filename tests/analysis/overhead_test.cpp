#include "analysis/overhead.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/check.hpp"

namespace linkpad::analysis {
namespace {

TEST(PaddingCost, PaperOperatingPoint) {
  // tau = 10 ms, payload peak 40 pps, 1000-B wire packets.
  const auto cost = padding_cost(10e-3, 40.0, 1000);
  EXPECT_DOUBLE_EQ(cost.wire_rate, 100.0);
  EXPECT_NEAR(cost.dummy_fraction, 0.6, 1e-12);
  EXPECT_NEAR(cost.wire_bandwidth_bps, 800e3, 1e-6);
  EXPECT_NEAR(cost.overhead_bps, 480e3, 1e-6);
  EXPECT_DOUBLE_EQ(cost.mean_payload_delay, 5e-3);
  EXPECT_DOUBLE_EQ(cost.worst_payload_delay, 10e-3);
}

TEST(PaddingCost, FasterTimerTradesBandwidthForLatency) {
  const auto slow = padding_cost(20e-3, 40.0, 1000);
  const auto fast = padding_cost(2e-3, 40.0, 1000);
  EXPECT_GT(fast.overhead_bps, slow.overhead_bps);
  EXPECT_LT(fast.mean_payload_delay, slow.mean_payload_delay);
}

TEST(PaddingCost, RejectsUndersizedTimer) {
  EXPECT_THROW(padding_cost(0.1, 40.0, 1000), std::invalid_argument);
}

TEST(PaddingCost, ZeroPayloadIsAllDummies) {
  const auto cost = padding_cost(10e-3, 0.0, 1000);
  EXPECT_DOUBLE_EQ(cost.dummy_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cost.overhead_bps, cost.wire_bandwidth_bps);
}

DesignInputs tradeoff_inputs() {
  DesignInputs in;
  in.sigma2_gw_low = 80e-12;
  in.sigma2_gw_high = 105e-12;
  in.n_max = 1e5;
  in.v_max = 0.55;
  in.payload_peak = 40.0;
  return in;
}

TEST(PaddingTradeoff, ProducesOnePointPerTau) {
  const std::vector<Seconds> taus = {5e-3, 10e-3, 20e-3};
  const auto points = padding_tradeoff(tradeoff_inputs(), taus, 1000);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].tau, taus[i]);
  }
}

TEST(PaddingTradeoff, EveryPointMeetsTheLeakBound) {
  const auto points =
      padding_tradeoff(tradeoff_inputs(), {5e-3, 10e-3, 20e-3}, 1000);
  for (const auto& p : points) {
    EXPECT_LE(p.design.v_variance, 0.55 + 1e-6);
    EXPECT_LE(p.design.v_entropy, 0.55 + 1e-6);
    EXPECT_GT(p.design.sigma_timer, 0.0);  // this gateway needs VIT
  }
}

TEST(PaddingTradeoff, OverheadAndDelayMoveOppositely) {
  const auto points =
      padding_tradeoff(tradeoff_inputs(), {2.5e-3, 10e-3, 25e-3}, 1000);
  EXPECT_GT(points.front().cost.overhead_bps, points.back().cost.overhead_bps);
  EXPECT_LT(points.front().cost.mean_payload_delay,
            points.back().cost.mean_payload_delay);
}

TEST(PaddingTradeoff, EmptySweepRejected) {
  EXPECT_THROW(padding_tradeoff(tradeoff_inputs(), {}, 1000),
               linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::analysis
