#include "analysis/overhead.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/check.hpp"

namespace linkpad::analysis {
namespace {

TEST(PaddingCost, PaperOperatingPoint) {
  // tau = 10 ms, payload peak 40 pps, 1000-B wire packets.
  const auto cost = padding_cost(10e-3, 40.0, 1000);
  EXPECT_DOUBLE_EQ(cost.wire_rate, 100.0);
  EXPECT_NEAR(cost.dummy_fraction, 0.6, 1e-12);
  EXPECT_NEAR(cost.wire_bandwidth_bps, 800e3, 1e-6);
  EXPECT_NEAR(cost.overhead_bps, 480e3, 1e-6);
  EXPECT_DOUBLE_EQ(cost.mean_payload_delay, 5e-3);
  EXPECT_DOUBLE_EQ(cost.worst_payload_delay, 10e-3);
}

TEST(PaddingCost, FasterTimerTradesBandwidthForLatency) {
  const auto slow = padding_cost(20e-3, 40.0, 1000);
  const auto fast = padding_cost(2e-3, 40.0, 1000);
  EXPECT_GT(fast.overhead_bps, slow.overhead_bps);
  EXPECT_LT(fast.mean_payload_delay, slow.mean_payload_delay);
}

TEST(PaddingCost, RejectsUndersizedTimer) {
  EXPECT_THROW(padding_cost(0.1, 40.0, 1000), std::invalid_argument);
}

TEST(PaddingCost, ZeroPayloadIsAllDummies) {
  const auto cost = padding_cost(10e-3, 0.0, 1000);
  EXPECT_DOUBLE_EQ(cost.dummy_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cost.overhead_bps, cost.wire_bandwidth_bps);
}

DesignInputs tradeoff_inputs() {
  DesignInputs in;
  in.sigma2_gw_low = 80e-12;
  in.sigma2_gw_high = 105e-12;
  in.n_max = 1e5;
  in.v_max = 0.55;
  in.payload_peak = 40.0;
  return in;
}

TEST(PaddingTradeoff, ProducesOnePointPerTau) {
  const std::vector<Seconds> taus = {5e-3, 10e-3, 20e-3};
  const auto points = padding_tradeoff(tradeoff_inputs(), taus, 1000);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].tau, taus[i]);
  }
}

TEST(PaddingTradeoff, EveryPointMeetsTheLeakBound) {
  const auto points =
      padding_tradeoff(tradeoff_inputs(), {5e-3, 10e-3, 20e-3}, 1000);
  for (const auto& p : points) {
    EXPECT_LE(p.design.v_variance, 0.55 + 1e-6);
    EXPECT_LE(p.design.v_entropy, 0.55 + 1e-6);
    EXPECT_GT(p.design.sigma_timer, 0.0);  // this gateway needs VIT
  }
}

TEST(PaddingTradeoff, OverheadAndDelayMoveOppositely) {
  const auto points =
      padding_tradeoff(tradeoff_inputs(), {2.5e-3, 10e-3, 25e-3}, 1000);
  EXPECT_GT(points.front().cost.overhead_bps, points.back().cost.overhead_bps);
  EXPECT_LT(points.front().cost.mean_payload_delay,
            points.back().cost.mean_payload_delay);
}

TEST(PaddingTradeoff, EmptySweepRejected) {
  EXPECT_THROW(padding_tradeoff(tradeoff_inputs(), {}, 1000),
               linkpad::ContractViolation);
}

// ------------------------------------------------ defense-frontier hooks

TEST(BudgetedPaddingCost, LargeBudgetRecoversFullPadding) {
  const auto full = padding_cost(10e-3, 40.0, 1000);
  const auto budgeted = budgeted_padding_cost(10e-3, 40.0, 1e6, 1000);
  EXPECT_DOUBLE_EQ(budgeted.wire_rate, full.wire_rate);
  EXPECT_DOUBLE_EQ(budgeted.overhead_bps, full.overhead_bps);
  EXPECT_DOUBLE_EQ(budgeted.dummy_fraction, full.dummy_fraction);
}

TEST(BudgetedPaddingCost, ZeroBudgetIsABareWire) {
  const auto cost = budgeted_padding_cost(10e-3, 40.0, 0.0, 1000);
  EXPECT_DOUBLE_EQ(cost.wire_rate, 40.0);
  EXPECT_DOUBLE_EQ(cost.overhead_bps, 0.0);
  EXPECT_DOUBLE_EQ(cost.dummy_fraction, 0.0);
  // The timer still delays payload: that cost is budget-independent.
  EXPECT_DOUBLE_EQ(cost.mean_payload_delay, 5e-3);
}

TEST(BudgetedPaddingCost, BudgetCapsAtTheTimersFreeSlots) {
  // 100 pps timer, 40 pps payload: at most 60 dummies/sec fit.
  const auto cost = budgeted_padding_cost(10e-3, 40.0, 80.0, 1000);
  EXPECT_DOUBLE_EQ(cost.wire_rate, 100.0);
  EXPECT_NEAR(cost.overhead_bps, 60.0 * 8000.0, 1e-9);
}

TEST(BudgetedPaddingCost, OverheadMonotoneInBudget) {
  double previous = -1.0;
  for (const double budget : {0.0, 10.0, 30.0, 60.0, 90.0, 200.0}) {
    const auto cost = budgeted_padding_cost(10e-3, 40.0, budget, 1000);
    EXPECT_GE(cost.overhead_bps, previous);
    previous = cost.overhead_bps;
  }
}

TEST(BudgetedPaddingCost, RejectsUndersizedTimer) {
  EXPECT_THROW(budgeted_padding_cost(0.1, 40.0, 10.0, 1000),
               std::invalid_argument);
}

TEST(ParetoFront, KeepsExactlyTheUndominatedPoints) {
  // (overhead, detection): minimize both.
  const std::vector<std::pair<double, double>> points = {
      {0.0, 1.00},   // cheapest → efficient
      {100.0, 0.90}, // efficient
      {150.0, 0.95}, // dominated by (100, 0.90)
      {200.0, 0.60}, // efficient
      {250.0, 0.60}, // dominated (same detection, dearer)
      {300.0, 0.50}, // efficient
  };
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3, 5}));
}

TEST(ParetoFront, DuplicatePointsAllSurvive) {
  const std::vector<std::pair<double, double>> points = {
      {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  EXPECT_EQ(pareto_front(points), (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoFront, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}).empty());
  const std::vector<std::pair<double, double>> one = {{5.0, 0.5}};
  EXPECT_EQ(pareto_front(one), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace linkpad::analysis
