#include "analysis/integrate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace linkpad::analysis {
namespace {

TEST(Integrate, PolynomialsAreExact) {
  // Simpson is exact for cubics.
  EXPECT_NEAR(integrate([](double x) { return x * x * x; }, 0.0, 2.0), 4.0,
              1e-12);
  EXPECT_NEAR(integrate([](double x) { return 3.0 * x * x; }, -1.0, 1.0), 2.0,
              1e-12);
}

TEST(Integrate, Exponential) {
  EXPECT_NEAR(integrate([](double x) { return std::exp(x); }, 0.0, 1.0),
              M_E - 1.0, 1e-10);
}

TEST(Integrate, GaussianMassOverWideRange) {
  const double mass = integrate(
      [](double x) { return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI); },
      -10.0, 10.0, 1e-12);
  EXPECT_NEAR(mass, 1.0, 1e-10);
}

TEST(Integrate, HandlesKinkedIntegrand) {
  // |x| over [-1, 2]: 0.5 + 2 = 2.5; the kink forces adaptivity.
  EXPECT_NEAR(integrate([](double x) { return std::abs(x); }, -1.0, 2.0), 2.5,
              1e-9);
}

TEST(Integrate, MaxOfTwoDensitiesIsStable) {
  // The Bayes detection integrand shape: max of two scaled gaussians.
  auto f = [](double x) {
    const double a = std::exp(-0.5 * x * x);
    const double b = 0.5 * std::exp(-0.5 * (x - 1.0) * (x - 1.0) / 4.0);
    return std::max(a, b);
  };
  const double v1 = integrate(f, -20.0, 20.0, 1e-10);
  const double v2 = integrate(f, -20.0, 20.0, 1e-6);
  EXPECT_NEAR(v1, v2, 1e-5);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 3.0, 3.0), 0.0);
}

TEST(Integrate, ReversedBoundsViolateContract) {
  EXPECT_THROW(integrate([](double) { return 1.0; }, 1.0, 0.0),
               linkpad::ContractViolation);
}

TEST(Integrate, SineOverFullPeriodIsZero) {
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0,
                        2.0 * M_PI),
              0.0, 1e-10);
}

}  // namespace
}  // namespace linkpad::analysis
