#include "analysis/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace linkpad::analysis {
namespace {

TEST(FindRoot, LinearFunction) {
  EXPECT_NEAR(find_root([](double x) { return 2.0 * x - 3.0; }, 0.0, 10.0),
              1.5, 1e-12);
}

TEST(FindRoot, CubicWithOneRootInBracket) {
  EXPECT_NEAR(find_root([](double x) { return x * x * x - 8.0; }, 0.0, 5.0),
              2.0, 1e-10);
}

TEST(FindRoot, TranscendentalEquation) {
  // x = cos(x) near 0.739085.
  EXPECT_NEAR(find_root([](double x) { return x - std::cos(x); }, 0.0, 1.0),
              0.7390851332151607, 1e-10);
}

TEST(FindRoot, RootAtBracketEndpoints) {
  EXPECT_DOUBLE_EQ(find_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(find_root([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(FindRoot, SameSignBracketThrows) {
  EXPECT_THROW(find_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(FindRoot, SteepFunction) {
  EXPECT_NEAR(
      find_root([](double x) { return std::expm1(50.0 * (x - 0.3)); }, 0.0, 1.0),
      0.3, 1e-9);
}

TEST(FindRootExpanding, GrowsUpperBoundUntilSignChange) {
  // Root at 1e6, starting bracket tiny.
  EXPECT_NEAR(find_root_expanding([](double x) { return x - 1e6; }, 0.0, 1.0),
              1e6, 1e-3);
}

TEST(FindRootExpanding, ThrowsWhenNoRootBelowLimit) {
  EXPECT_THROW(find_root_expanding([](double) { return -1.0; }, 0.0, 1.0,
                                   1e-12, 1e6),
               std::invalid_argument);
}

TEST(FindRootExpanding, ImmediateRootAtLowerBound) {
  EXPECT_DOUBLE_EQ(find_root_expanding([](double x) { return x; }, 0.0, 1.0),
                   0.0);
}

}  // namespace
}  // namespace linkpad::analysis
