// Tests of the paper's closed forms (Theorems 1–3) and the generic Bayes
// machinery, including cross-checks between independent implementations:
// closed form vs numeric quadrature vs Monte Carlo.
#include "analysis/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/special_math.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::analysis {
namespace {

using classify::FeatureKind;

TEST(VarianceComponents, RatioFormula) {
  VarianceComponents vc;
  vc.sigma2_timer = 4.0;
  vc.sigma2_net = 1.0;
  vc.sigma2_gw_low = 1.0;
  vc.sigma2_gw_high = 3.0;
  EXPECT_DOUBLE_EQ(vc.ratio(), 8.0 / 6.0);
}

TEST(VarianceComponents, LargeTimerVarianceDrivesRatioToOne) {
  VarianceComponents vc;
  vc.sigma2_gw_low = 1.0;
  vc.sigma2_gw_high = 2.0;
  vc.sigma2_timer = 1e9;
  EXPECT_NEAR(vc.ratio(), 1.0, 1e-8);
}

TEST(Theorem1, UnitRatioIsCoinFlip) {
  EXPECT_DOUBLE_EQ(detection_rate_mean_exact(1.0), 0.5);
  EXPECT_DOUBLE_EQ(detection_rate_mean_paper(1.0), 0.5);
}

TEST(Theorem1, ExactRateMatchesNumericBayesIntegral) {
  for (double r : {1.5, 3.0, 10.0}) {
    const stats::Normal f0(0.0, 1.0);
    const stats::Normal f1(0.0, std::sqrt(r));
    const double numeric = bayes_detection_numeric(
        [&](double x) { return f0.pdf(x); },
        [&](double x) { return f1.pdf(x); }, 0.5, 0.5, -40.0, 40.0);
    EXPECT_NEAR(detection_rate_mean_exact(r), numeric, 1e-6) << r;
  }
}

TEST(Theorem1, PaperApproximationTracksExact) {
  for (double r : {1.2, 2.0, 5.0, 20.0, 100.0}) {
    EXPECT_NEAR(detection_rate_mean_paper(r), detection_rate_mean_exact(r),
                0.07)
        << r;
  }
}

TEST(Theorem1, InvariantUnderRatioInversion) {
  EXPECT_DOUBLE_EQ(detection_rate_mean_exact(4.0),
                   detection_rate_mean_exact(0.25));
}

class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, AllRatesWithinBoundsAndMonotoneInR) {
  const double r = GetParam();
  const double eps = 1e-4;
  for (auto fn : {detection_rate_mean_exact, detection_rate_mean_paper}) {
    const double v = fn(r);
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 1.0);
    EXPECT_LE(fn(r), fn(r * (1.0 + eps)) + 1e-12);  // non-decreasing
  }
  for (double n : {100.0, 1000.0}) {
    const double vv = detection_rate_variance(r, n);
    const double ve = detection_rate_entropy(r, n);
    EXPECT_GE(vv, 0.5);
    EXPECT_LE(vv, 1.0);
    EXPECT_GE(ve, 0.5);
    EXPECT_LE(ve, 1.0);
    EXPECT_LE(vv, detection_rate_variance(r * (1.0 + eps), n) + 1e-12);
    EXPECT_LE(ve, detection_rate_entropy(r * (1.0 + eps), n) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(1.0001, 1.01, 1.1, 1.3, 1.5, 2.0,
                                           4.0, 10.0, 100.0));

TEST(Theorem2, IncreasingInSampleSize) {
  const double r = 1.3;
  double prev = 0.0;
  for (double n : {10.0, 100.0, 300.0, 1000.0, 1e4, 1e6}) {
    const double v = detection_rate_variance(r, n);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(prev, 1.0, 1e-4);  // n -> inf gives 100%
}

TEST(Theorem2, ClampsAtHalfForSmallSamples) {
  EXPECT_DOUBLE_EQ(detection_rate_variance(1.01, 5.0), 0.5);
}

TEST(Theorem2, ConstantMatchesHandComputedValue) {
  // r = 1.3: C_Y = 0.5/(1 - ln(1.3)/0.3)^2 + 0.5/((1.3/0.3)·ln(1.3) - 1)^2
  const double lr = std::log(1.3);
  const double expected =
      0.5 / std::pow(1.0 - lr / 0.3, 2) + 0.5 / std::pow(1.3 / 0.3 * lr - 1.0, 2);
  EXPECT_NEAR(variance_feature_constant(1.3), expected, 1e-12);
}

TEST(Theorem3, IncreasingInSampleSize) {
  const double r = 1.3;
  EXPECT_LT(detection_rate_entropy(r, 100.0), detection_rate_entropy(r, 1000.0));
}

TEST(Theorem3, ConstantDivergesAsRApproachesOne) {
  EXPECT_GT(entropy_feature_constant(1.0001), entropy_feature_constant(1.3));
  EXPECT_TRUE(std::isinf(entropy_feature_constant(1.0)));
}

TEST(Theorems, VarianceAndEntropyConstantsComparable) {
  // The two features have similar asymptotic efficiency: constants within
  // a small factor of each other across realistic ratios.
  for (double r : {1.1, 1.3, 2.0}) {
    const double cy = variance_feature_constant(r);
    const double ch = entropy_feature_constant(r);
    EXPECT_GT(cy / ch, 0.3) << r;
    EXPECT_LT(cy / ch, 3.0) << r;
  }
}

TEST(SampleSize, InverseConsistencyWithTheorems) {
  for (double r : {1.05, 1.3, 2.0}) {
    for (double p : {0.9, 0.99}) {
      const double n_var =
          sample_size_for_detection(FeatureKind::kSampleVariance, r, p);
      EXPECT_NEAR(detection_rate_variance(r, n_var), p, 1e-9);
      const double n_ent =
          sample_size_for_detection(FeatureKind::kSampleEntropy, r, p);
      EXPECT_NEAR(detection_rate_entropy(r, n_ent), p, 1e-9);
    }
  }
}

TEST(SampleSize, MeanFeatureCannotBeHelpedBySampling) {
  // r = 1.3 gives mean-feature rate ~0.53 < 0.99 at ANY n.
  EXPECT_TRUE(std::isinf(
      sample_size_for_detection(FeatureKind::kSampleMean, 1.3, 0.99)));
  // ... but a trivially low target is met immediately.
  EXPECT_EQ(sample_size_for_detection(FeatureKind::kSampleMean, 1.3, 0.51),
            2.0);
}

TEST(SampleSize, Paper1e11AnchorAtOneMillisecond) {
  // DESIGN.md calibration: sigma_gw,h^2 - sigma_gw,l^2 ~ 25 us^2; at
  // sigma_T = 1 ms, n(99%) must exceed 1e11 (paper Sec 5.1.1, Fig 5b).
  VarianceComponents vc;
  vc.sigma2_timer = 1e-6;          // (1 ms)^2
  vc.sigma2_gw_low = 80e-12;       // 80 us^2
  vc.sigma2_gw_high = 105e-12;     // 105 us^2
  const double r = vc.ratio();
  EXPECT_GT(sample_size_for_detection(FeatureKind::kSampleEntropy, r, 0.99),
            1e11);
  EXPECT_GT(sample_size_for_detection(FeatureKind::kSampleVariance, r, 0.99),
            1e11);
}

TEST(SampleSize, GrowsLikeSigmaTFourth) {
  VarianceComponents vc;
  vc.sigma2_gw_low = 80e-12;
  vc.sigma2_gw_high = 105e-12;
  vc.sigma2_timer = 1e-8;  // (100 us)^2
  const double n1 =
      sample_size_for_detection(FeatureKind::kSampleEntropy, vc.ratio(), 0.99);
  vc.sigma2_timer = 1e-6;  // (1 ms)^2: sigma_T x10
  const double n2 =
      sample_size_for_detection(FeatureKind::kSampleEntropy, vc.ratio(), 0.99);
  EXPECT_NEAR(n2 / n1, 1e4, 0.15e4);  // ~ sigma_T^4 scaling
}

TEST(BayesGaussians, SymmetricEqualVarianceCase) {
  // Means d apart, same sigma: v = Phi(d / (2 sigma)).
  const stats::Normal f0(0.0, 1.0);
  const stats::Normal f1(2.0, 1.0);
  EXPECT_NEAR(bayes_detection_gaussians(f0, f1, 0.5, 0.5),
              stats::normal_cdf(1.0), 1e-12);
}

TEST(BayesGaussians, IdenticalDensitiesGiveLargerPrior) {
  const stats::Normal f(0.0, 1.0);
  EXPECT_DOUBLE_EQ(bayes_detection_gaussians(f, f, 0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(bayes_detection_gaussians(f, f, 0.8, 0.2), 0.8);
}

TEST(BayesGaussians, MatchesNumericIntegralInGeneralCase) {
  const stats::Normal f0(1.0, 0.7);
  const stats::Normal f1(2.0, 1.9);
  for (double p0 : {0.5, 0.3}) {
    const double closed = bayes_detection_gaussians(f0, f1, p0, 1.0 - p0);
    const double numeric = bayes_detection_numeric(
        [&](double x) { return f0.pdf(x); },
        [&](double x) { return f1.pdf(x); }, p0, 1.0 - p0, -30.0, 30.0);
    EXPECT_NEAR(closed, numeric, 1e-6) << p0;
  }
}

TEST(BayesGaussians, MatchesMonteCarlo) {
  const stats::Normal f0(0.0, 1.0);
  const stats::Normal f1(1.5, 2.0);
  const double closed = bayes_detection_gaussians(f0, f1, 0.5, 0.5);

  util::Xoshiro256pp rng(123);
  int correct = 0;
  const int trials = 400000;
  auto decide = [&](double x) {
    return 0.5 * f0.pdf(x) >= 0.5 * f1.pdf(x) ? 0 : 1;
  };
  for (int i = 0; i < trials; ++i) {
    if (i % 2 == 0) {
      if (decide(f0.sample(rng)) == 0) ++correct;
    } else {
      if (decide(f1.sample(rng)) == 1) ++correct;
    }
  }
  EXPECT_NEAR(static_cast<double>(correct) / trials, closed, 0.005);
}

TEST(EstimateVarianceRatio, RecoversTrueRatio) {
  util::Xoshiro256pp rng(7);
  const stats::Normal low(0.0, 1.0);
  const stats::Normal high(0.0, 2.0);  // r = 4
  std::vector<double> a(100000), b(100000);
  for (auto& x : a) x = low.sample(rng);
  for (auto& x : b) x = high.sample(rng);
  EXPECT_NEAR(estimate_variance_ratio(a, b), 4.0, 0.1);
  // Swapped arguments still report >= 1.
  EXPECT_NEAR(estimate_variance_ratio(b, a), 4.0, 0.1);
}

TEST(FeatureSamplingLaw, MeanLawShrinksWithN) {
  const auto law100 = feature_sampling_law(FeatureKind::kSampleMean, 0.01,
                                           1e-10, 100.0);
  const auto law1000 = feature_sampling_law(FeatureKind::kSampleMean, 0.01,
                                            1e-10, 1000.0);
  EXPECT_DOUBLE_EQ(law100.mean(), 0.01);
  EXPECT_GT(law100.sigma(), law1000.sigma());
}

TEST(FeatureSamplingLaw, VarianceLawCentredOnTrueVariance) {
  const auto law = feature_sampling_law(FeatureKind::kSampleVariance, 0.0,
                                        2.5e-9, 500.0);
  EXPECT_DOUBLE_EQ(law.mean(), 2.5e-9);
  EXPECT_NEAR(law.sigma(), std::sqrt(2.0 * 2.5e-9 * 2.5e-9 / 499.0), 1e-15);
}

TEST(PredictedDetectionRate, MeanIndependentOfNOthersNot) {
  const double mu = 0.01, s2l = 1e-10, s2h = 1.3e-10;
  const double vm1 =
      predicted_detection_rate(FeatureKind::kSampleMean, mu, s2l, s2h, 100.0);
  const double vm2 =
      predicted_detection_rate(FeatureKind::kSampleMean, mu, s2l, s2h, 10000.0);
  EXPECT_NEAR(vm1, vm2, 1e-9);

  const double vv1 = predicted_detection_rate(FeatureKind::kSampleVariance,
                                              mu, s2l, s2h, 100.0);
  const double vv2 = predicted_detection_rate(FeatureKind::kSampleVariance,
                                              mu, s2l, s2h, 10000.0);
  EXPECT_GT(vv2, vv1 + 0.1);
}

TEST(PredictedDetectionRate, AgreesWithTheorem2Roughly) {
  // Two independent routes to the same quantity (CLT feature law vs the
  // paper's bound-style constant) should land in the same neighbourhood.
  const double r = 1.3;
  const double n = 1000.0;
  const double clt = predicted_detection_rate(FeatureKind::kSampleVariance,
                                              0.01, 1e-10, 1.3e-10, n);
  const double thm = detection_rate_variance(r, n);
  EXPECT_NEAR(clt, thm, 0.06);
}

}  // namespace
}  // namespace linkpad::analysis
