#include "analysis/guidelines.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/check.hpp"

namespace linkpad::analysis {
namespace {

DesignInputs lab_inputs() {
  DesignInputs in;
  in.sigma2_gw_low = 80e-12;    // calibrated lab gateway (80 us^2)
  in.sigma2_gw_high = 105e-12;  // 105 us^2 -> r_CIT ~ 1.31
  in.sigma2_net = 0.0;
  in.n_max = 1e5;
  in.v_max = 0.55;
  in.tau = 10e-3;
  in.payload_peak = 40.0;
  return in;
}

TEST(RequiredRatio, TighterTargetNeedsSmallerRatio) {
  EXPECT_LT(required_ratio_for(1e5, 0.51), required_ratio_for(1e5, 0.7));
}

TEST(RequiredRatio, BiggerAdversarySampleNeedsSmallerRatio) {
  EXPECT_LT(required_ratio_for(1e7, 0.55), required_ratio_for(1e3, 0.55));
}

TEST(RequiredRatio, MeetsTheTargetByConstruction) {
  const double n = 1e5, v = 0.55;
  const double r = required_ratio_for(n, v);
  EXPECT_LE(detection_rate_variance(r, n), v + 1e-6);
  EXPECT_LE(detection_rate_entropy(r, n), v + 1e-6);
  EXPECT_LE(detection_rate_mean_exact(r), v + 1e-6);
}

TEST(Design, LabSystemNeedsVit) {
  const auto rec = design_padding_system(lab_inputs());
  EXPECT_GT(rec.sigma_timer, 0.0);
  EXPECT_LE(rec.v_variance, 0.55 + 1e-6);
  EXPECT_LE(rec.v_entropy, 0.55 + 1e-6);
  EXPECT_LE(rec.v_mean, 0.55 + 1e-6);
  EXPECT_NE(rec.rationale.find("VIT"), std::string::npos);
}

TEST(Design, AchievedRatioHitsRequirementExactly) {
  const auto in = lab_inputs();
  const auto rec = design_padding_system(in);
  const double achieved =
      (rec.sigma_timer * rec.sigma_timer + in.sigma2_gw_high) /
      (rec.sigma_timer * rec.sigma_timer + in.sigma2_gw_low);
  EXPECT_NEAR(achieved, rec.required_ratio, 1e-9);
}

TEST(Design, AlreadyQuietSystemKeepsCit) {
  auto in = lab_inputs();
  in.sigma2_gw_high = in.sigma2_gw_low * 1.000001;  // nearly no leak
  const auto rec = design_padding_system(in);
  EXPECT_DOUBLE_EQ(rec.sigma_timer, 0.0);
  EXPECT_NE(rec.rationale.find("CIT"), std::string::npos);
}

TEST(Design, NetworkNoiseReducesRequiredSigmaT) {
  auto quiet_net = lab_inputs();
  auto noisy_net = lab_inputs();
  noisy_net.sigma2_net = 200e-12;
  const auto a = design_padding_system(quiet_net);
  const auto b = design_padding_system(noisy_net);
  EXPECT_LT(b.sigma_timer, a.sigma_timer);
}

TEST(Design, StrongerAdversaryNeedsMoreSigmaT) {
  auto weak = lab_inputs();
  weak.n_max = 1e4;
  auto strong = lab_inputs();
  strong.n_max = 1e8;
  EXPECT_GT(design_padding_system(strong).sigma_timer,
            design_padding_system(weak).sigma_timer);
}

TEST(Design, ReportsPaddingCost) {
  const auto rec = design_padding_system(lab_inputs());
  EXPECT_DOUBLE_EQ(rec.wire_rate, 100.0);
  EXPECT_NEAR(rec.dummy_fraction, 0.6, 1e-12);
  EXPECT_NEAR(rec.mean_queueing_delay, 5e-3, 1e-12);
}

TEST(Design, RejectsUnreachableTarget) {
  auto in = lab_inputs();
  in.v_max = 0.5;  // random-guessing floor cannot be undercut
  EXPECT_THROW(design_padding_system(in), linkpad::ContractViolation);
}

TEST(Design, RejectsTimerTooSlowForPayload) {
  auto in = lab_inputs();
  in.tau = 0.1;  // 10 pps wire < 40 pps payload
  EXPECT_THROW(design_padding_system(in), std::invalid_argument);
}

}  // namespace
}  // namespace linkpad::analysis
