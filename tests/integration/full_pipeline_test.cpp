// Integration tests: the complete paper pipeline — simulated testbed ->
// capture -> offline training -> runtime classification -> detection rate
// vs theory — plus the system-level security invariants that make link
// padding meaningful in the first place.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/guidelines.hpp"
#include "analysis/theory.hpp"
#include "classify/adversary.hpp"
#include "core/experiment.hpp"
#include "core/piat_model.hpp"
#include "core/scenarios.hpp"
#include "sim/testbed.hpp"
#include "util/rng.hpp"

namespace linkpad {
namespace {

TEST(FullPipeline, PerfectSecrecyInvariantOnObservableRate) {
  // Whatever the payload does, the WIRE looks identical in rate and mean
  // spacing. Only second-order timing statistics can leak.
  const auto scenario = core::lab_zero_cross(core::make_cit());
  std::vector<double> means, rates;
  for (std::size_t c = 0; c < 2; ++c) {
    util::RngFactory f(11);
    auto rng = f.make(c);
    sim::Testbed bed(scenario.config_for(c), rng);
    const auto piats = bed.collect_piats(20000);
    means.push_back(stats::mean(piats));
    const auto& gs = bed.gateway_stats();
    rates.push_back(static_cast<double>(gs.payload_out + gs.dummy_out));
  }
  EXPECT_NEAR(means[0], means[1], 3e-6);
  EXPECT_NEAR(rates[0], rates[1], rates[0] * 0.01);
}

TEST(FullPipeline, CitFailsVitSurvivesEndToEnd) {
  // The paper's conclusion in one test, at n = 700.
  auto run = [](std::shared_ptr<const sim::TimerPolicy> policy) {
    core::ExperimentSpec spec;
    spec.scenario = core::lab_zero_cross(std::move(policy));
    spec.plan.adversary.feature = classify::FeatureKind::kSampleEntropy;
    spec.plan.adversary.window_size = 700;
    spec.plan.train_windows = 60;
    spec.plan.test_windows = 60;
    spec.seed = 3;
    return core::run_experiment(spec).detection_rate;
  };
  const double v_cit = run(core::make_cit());
  const double v_vit = run(core::make_vit(200e-6));
  EXPECT_GT(v_cit, 0.85);
  EXPECT_LT(v_vit, 0.62);
}

TEST(FullPipeline, TheoryPredictsExperimentAcrossSampleSizes) {
  // Fig 4(b)'s claim: the closed forms track the measured rates.
  for (std::size_t n : {300u, 900u}) {
    core::ExperimentSpec spec;
    spec.scenario = core::lab_zero_cross(core::make_cit());
    spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
    spec.plan.adversary.window_size = n;
    spec.plan.train_windows = 70;
    spec.plan.test_windows = 70;
    spec.seed = 5;
    const auto r = core::run_experiment(spec);
    ASSERT_TRUE(r.predicted.has_value());
    EXPECT_NEAR(r.detection_rate, *r.predicted, 0.12) << "n = " << n;
  }
}

TEST(FullPipeline, DesignGuidelineSurvivesEmpiricalAttack) {
  // Close the loop: measure the system, run the design procedure, deploy
  // the recommended sigma_T, attack again — detection must be near the
  // designed bound.
  const auto cit = core::lab_zero_cross(core::make_cit());
  const auto vc = core::predict_components(cit.config_for(0), cit.config_for(1));

  analysis::DesignInputs in;
  in.sigma2_gw_low = vc.sigma2_gw_low;
  in.sigma2_gw_high = vc.sigma2_gw_high;
  in.sigma2_net = vc.sigma2_net;
  in.n_max = 800.0;
  in.v_max = 0.56;
  const auto rec = analysis::design_padding_system(in);
  ASSERT_GT(rec.sigma_timer, 0.0);

  core::ExperimentSpec spec;
  spec.scenario = core::lab_zero_cross(core::make_vit(rec.sigma_timer));
  spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.plan.adversary.window_size = 800;
  spec.plan.train_windows = 60;
  spec.plan.test_windows = 60;
  spec.seed = 7;
  const auto result = core::run_experiment(spec);
  EXPECT_LT(result.detection_rate, in.v_max + 0.08);
}

TEST(FullPipeline, RemoteTapWeakensTheAdversary) {
  // Fig 6 / Fig 8 mechanism: the same attack through a congested path
  // yields a lower detection rate than at the gateway's doorstep.
  auto run = [](core::Scenario scenario) {
    core::ExperimentSpec spec;
    spec.scenario = std::move(scenario);
    spec.plan.adversary.feature = classify::FeatureKind::kSampleEntropy;
    spec.plan.adversary.window_size = 700;
    spec.plan.train_windows = 50;
    spec.plan.test_windows = 50;
    spec.seed = 9;
    return core::run_experiment(spec).detection_rate;
  };
  const double at_gateway = run(core::lab_zero_cross(core::make_cit()));
  const double behind_congestion =
      run(core::lab_cross_traffic(core::make_cit(), 0.45));
  EXPECT_GT(at_gateway, behind_congestion);
}

TEST(FullPipeline, PayloadProcessShapeDoesNotChangeTheStory) {
  // Theorems only depend on arrival counts per interval; swapping CBR for
  // Poisson payload must preserve the qualitative result.
  for (auto kind : {sim::PayloadKind::kCbr, sim::PayloadKind::kPoisson}) {
    core::ExperimentSpec spec;
    spec.scenario = core::lab_zero_cross(core::make_cit());
    spec.scenario.base.payload_kind = kind;
    spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
    spec.plan.adversary.window_size = 700;
    spec.plan.train_windows = 50;
    spec.plan.test_windows = 50;
    spec.seed = 13;
    EXPECT_GT(core::run_experiment(spec).detection_rate, 0.8);
  }
}

TEST(FullPipeline, QosAccountingMatchesPaddingTheory) {
  // NetCamo-style QoS check: payload delay through GW1 stays bounded by
  // one timer interval at the paper's load levels.
  const auto scenario = core::lab_zero_cross(core::make_cit());
  util::RngFactory f(17);
  auto rng = f.make(0);
  sim::Testbed bed(scenario.config_for(1), rng);  // 40 pps (heaviest)
  bed.collect_piats(20000);
  const auto& delay = bed.gateway_stats().queueing_delay;
  ASSERT_GT(delay.count(), 100u);
  EXPECT_LT(delay.mean(), 10e-3);
  EXPECT_LT(delay.max(), 15e-3);
  EXPECT_EQ(bed.gateway_stats().dropped, 0u);
}

}  // namespace
}  // namespace linkpad
