// Cross-module property sweeps (TEST_P): invariants that must hold across
// parameter ranges, not just at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/theory.hpp"
#include "classify/adversary.hpp"
#include "core/experiment.hpp"
#include "core/piat_model.hpp"
#include "core/scenarios.hpp"
#include "sim/testbed.hpp"
#include "util/rng.hpp"

namespace linkpad {
namespace {

// ---------------------------------------------------------------------
// Determinism: identical spec + seed => identical result, across seeds and
// scenario kinds (the foundation of every figure's reproducibility).

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(DeterminismSweep, ExperimentIsAPureFunctionOfSpec) {
  const auto [seed, scenario_kind] = GetParam();
  core::ExperimentSpec spec;
  switch (scenario_kind) {
    case 0: spec.scenario = core::lab_zero_cross(core::make_cit()); break;
    case 1: spec.scenario = core::lab_zero_cross(core::make_vit(30e-6)); break;
    default: spec.scenario = core::lab_cross_traffic(core::make_cit(), 0.3);
  }
  spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.plan.adversary.window_size = 300;
  spec.plan.train_windows = 25;
  spec.plan.test_windows = 25;
  spec.seed = seed;

  const auto a = core::run_experiment(spec);
  const auto b = core::run_experiment(spec);
  EXPECT_DOUBLE_EQ(a.detection_rate, b.detection_rate);
  EXPECT_DOUBLE_EQ(a.r_hat, b.r_hat);
  EXPECT_DOUBLE_EQ(a.piat_var_low, b.piat_var_low);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScenarios, DeterminismSweep,
    ::testing::Combine(::testing::Values(1u, 42u, 20030324u),
                       ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------
// Perfect-secrecy invariant: across every scenario preset, the first-order
// observables of the wire (rate, PIAT mean) are payload-independent.

class SecrecyInvariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(SecrecyInvariantSweep, WireLooksIdenticalAcrossPayloadRates) {
  core::Scenario scenario;
  switch (GetParam()) {
    case 0: scenario = core::lab_zero_cross(core::make_cit()); break;
    case 1: scenario = core::lab_cross_traffic(core::make_cit(), 0.4); break;
    case 2: scenario = core::campus(core::make_cit(), 14.0); break;
    default: scenario = core::wan(core::make_cit(), 14.0);
  }
  double means[2];
  for (std::size_t c = 0; c < 2; ++c) {
    util::RngFactory factory(5);
    auto rng = factory.make(c);
    sim::Testbed bed(scenario.config_for(c), rng);
    means[c] = stats::mean(bed.collect_piats(8000));
  }
  EXPECT_NEAR(means[0], means[1], 8e-6) << scenario.name;
  EXPECT_NEAR(means[0], core::constants::kTau, 5e-5) << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SecrecyInvariantSweep,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------
// Monotone protection: increasing sigma_T can only lower (never raise)
// the PREDICTED variance ratio and detection rates of the whole system.

class SigmaMonotoneSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmaMonotoneSweep, MoreTimerSpreadNeverHurts) {
  const double sigma = GetParam();
  const auto base = core::lab_zero_cross(core::make_vit(sigma));
  const auto more = core::lab_zero_cross(core::make_vit(sigma * 2.0));
  const auto r_base =
      core::predict_components(base.config_for(0), base.config_for(1)).ratio();
  const auto r_more =
      core::predict_components(more.config_for(0), more.config_for(1)).ratio();
  EXPECT_LE(r_more, r_base + 1e-12);
  for (double n : {200.0, 2000.0}) {
    EXPECT_LE(analysis::detection_rate_variance_clt(r_more, n),
              analysis::detection_rate_variance_clt(r_base, n) + 1e-9);
    EXPECT_LE(analysis::detection_rate_entropy(r_more, n),
              analysis::detection_rate_entropy(r_base, n) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SigmaMonotoneSweep,
                         ::testing::Values(2e-6, 10e-6, 50e-6, 200e-6));

// ---------------------------------------------------------------------
// Theory consistency: across the (r, n) plane the CLT law dominates the
// clamped theorem estimate whenever the theorem clamps, and both live in
// [0.5, 1].

class TheoryPlaneSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TheoryPlaneSweep, CltAndTheoremFormsAreConsistent) {
  const auto [r, n] = GetParam();
  const double thm_v = analysis::detection_rate_variance(r, n);
  const double clt_v = analysis::detection_rate_variance_clt(r, n);
  const double thm_h = analysis::detection_rate_entropy(r, n);
  const double clt_h = analysis::detection_rate_entropy_clt(r, n);
  for (double v : {thm_v, clt_v, thm_h, clt_h}) {
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 1.0);
  }
  // When the theorem is clamped at 0.5 the CLT form must dominate it.
  if (thm_v == 0.5) EXPECT_GE(clt_v, thm_v);
  if (thm_h == 0.5) EXPECT_GE(clt_h, thm_h);
  // Both CLT forms increase with n.
  EXPECT_LE(clt_v, analysis::detection_rate_variance_clt(r, n * 4.0) + 1e-9);
  EXPECT_LE(clt_h, analysis::detection_rate_entropy_clt(r, n * 4.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Plane, TheoryPlaneSweep,
    ::testing::Combine(::testing::Values(1.01, 1.1, 1.3, 2.0, 5.0),
                       ::testing::Values(50.0, 500.0, 5000.0)));

// ---------------------------------------------------------------------
// Thread-count independence: a sweep executed via the pool must equal the
// same sweep executed serially (counter-based RNG substreams).

TEST(ParallelReproducibility, SweepEqualsSerialExecution) {
  std::vector<core::ExperimentSpec> specs;
  for (int i = 0; i < 4; ++i) {
    core::ExperimentSpec spec;
    spec.scenario = core::lab_zero_cross(core::make_cit());
    spec.plan.adversary.feature = classify::FeatureKind::kSampleEntropy;
    spec.plan.adversary.window_size = 250;
    spec.plan.train_windows = 20;
    spec.plan.test_windows = 20;
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    specs.push_back(std::move(spec));
  }
  const auto parallel = core::run_sweep(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto serial = core::run_experiment(specs[i]);
    EXPECT_DOUBLE_EQ(parallel[i].detection_rate, serial.detection_rate) << i;
    EXPECT_DOUBLE_EQ(parallel[i].r_hat, serial.r_hat) << i;
  }
}

}  // namespace
}  // namespace linkpad
