#include "sim/diurnal.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace linkpad::sim {
namespace {

TEST(DiurnalProfile, PeakAtPeakHour) {
  DiurnalProfile p(0.05, 0.4, 15.0, 5.0);
  EXPECT_NEAR(p.utilization_at(15.0), 0.4, 1e-12);
  for (double h = 0.0; h < 24.0; h += 0.5) {
    EXPECT_LE(p.utilization_at(h), 0.4 + 1e-12);
  }
}

TEST(DiurnalProfile, TroughOppositeOfPeak) {
  DiurnalProfile p(0.05, 0.4, 15.0, 5.0);
  // 12 hours from the peak the bump is minimal.
  EXPECT_NEAR(p.utilization_at(3.0), 0.05, 0.03);
  EXPECT_LT(p.utilization_at(3.0), p.utilization_at(12.0));
}

TEST(DiurnalProfile, WrapsAroundMidnightContinuously) {
  DiurnalProfile p(0.1, 0.5, 23.0, 3.0);
  EXPECT_NEAR(p.utilization_at(23.9), p.utilization_at(-0.1 + 24.0), 1e-12);
  // 1 hour either side of the 23:00 peak must be symmetric.
  EXPECT_NEAR(p.utilization_at(22.0), p.utilization_at(24.0), 1e-12);
}

TEST(DiurnalProfile, ScaleAveragesToOne) {
  DiurnalProfile p(0.05, 0.4, 15.0, 5.0);
  double acc = 0.0;
  const int steps = 24 * 4;
  for (int i = 0; i < steps; ++i) acc += p.scale_at(i / 4.0);
  EXPECT_NEAR(acc / steps, 1.0, 1e-9);
}

TEST(DiurnalProfile, MonotoneBetweenTroughAndPeak) {
  DiurnalProfile p(0.05, 0.4, 15.0, 5.0);
  double prev = p.utilization_at(4.0);
  for (double h = 5.0; h <= 15.0; h += 1.0) {
    const double u = p.utilization_at(h);
    EXPECT_GE(u, prev - 1e-12) << h;
    prev = u;
  }
}

TEST(DiurnalProfile, InvalidParamsRejected) {
  EXPECT_THROW(DiurnalProfile(0.5, 0.4), linkpad::ContractViolation);
  EXPECT_THROW(DiurnalProfile(-0.1, 0.4), linkpad::ContractViolation);
  EXPECT_THROW(DiurnalProfile(0.1, 1.0), linkpad::ContractViolation);
  EXPECT_THROW(DiurnalProfile(0.1, 0.4, 25.0), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::sim
