#include "sim/jitter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

TEST(GatewayJitterModel, DelaysAreNonNegative) {
  GatewayJitterModel model(JitterParams{});
  util::Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_GE(model.emission_delay(rng, i % 3), 0.0);
  }
}

TEST(GatewayJitterModel, MoreArrivalsMeanMoreDelay) {
  GatewayJitterModel model(JitterParams{});
  util::Rng rng(2);
  stats::RunningStats none, many;
  for (int i = 0; i < 100000; ++i) {
    none.add(model.emission_delay(rng, 0));
    many.add(model.emission_delay(rng, 3));
  }
  EXPECT_GT(many.mean(), none.mean());
  EXPECT_GT(many.variance(), none.variance());
}

TEST(GatewayJitterModel, MarginalVarianceMatchesBernoulliFormula) {
  JitterParams p;
  p.sigma_context_switch = 10e-6;
  p.sigma_irq_block = 6.4e-6;
  GatewayJitterModel model(p);
  // Simulate Bernoulli(a) arrivals and compare Var(delta) with the formula.
  const double a = 0.4;
  util::Rng rng(3);
  stats::RunningStats rs;
  for (int i = 0; i < 400000; ++i) {
    const unsigned arrivals = rng.uniform01() < a ? 1 : 0;
    rs.add(model.emission_delay(rng, arrivals));
  }
  EXPECT_NEAR(rs.variance(), model.delay_variance(a),
              0.03 * model.delay_variance(a));
}

TEST(GatewayJitterModel, EffectivePiatVarianceFormula) {
  JitterParams p;
  p.sigma_context_switch = 10e-6;
  p.sigma_irq_block = 6.4e-6;
  GatewayJitterModel model(p);
  const double cs_var = 100e-12 * (1.0 - 2.0 / M_PI);
  const double a = 0.4;
  EXPECT_NEAR(model.effective_piat_variance(a),
              2.0 * (cs_var + a * 6.4e-6 * 6.4e-6), 1e-18);
}

TEST(GatewayJitterModel, EffectiveVarianceIncreasesWithRate) {
  GatewayJitterModel model(JitterParams{});
  EXPECT_GT(model.effective_piat_variance(0.4),
            model.effective_piat_variance(0.1));
}

TEST(GatewayJitterModel, CleanHostHasNegligibleJitter) {
  GatewayJitterModel model(JitterParams::none());
  util::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(model.emission_delay(rng, 2), 1e-9);
  }
}

TEST(GatewayJitterModel, ZeroSigmaRejected) {
  JitterParams p;
  p.sigma_context_switch = 0.0;
  EXPECT_THROW(GatewayJitterModel{p}, linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::sim
