#include "sim/source.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

struct Collector : PacketSink {
  std::vector<Seconds> times;
  std::vector<PacketId> ids;
  void on_packet(const Packet& p, Seconds now) override {
    times.push_back(now);
    ids.push_back(p.id);
    EXPECT_EQ(p.kind, PacketKind::kPayload);
    EXPECT_EQ(p.flow, FlowId::kMonitored);
  }
};

TEST(CbrSource, EmitsAtExactRate) {
  Simulation sim;
  util::Xoshiro256pp rng(1);
  CbrSource src(40.0, 512, /*random_phase=*/false);
  Collector sink;
  src.start(sim, sink, rng);
  sim.run_until(10.0);
  // 40 pps for 10 s, first packet at t=0 (the t=10.0 packet may fall on
  // either side of the boundary due to accumulated floating-point steps).
  EXPECT_GE(sink.times.size(), 400u);
  EXPECT_LE(sink.times.size(), 401u);
  for (std::size_t i = 1; i < sink.times.size(); ++i) {
    EXPECT_NEAR(sink.times[i] - sink.times[i - 1], 0.025, 1e-9);
  }
}

TEST(CbrSource, RandomPhaseStaysWithinOnePeriod) {
  Simulation sim;
  util::Xoshiro256pp rng(2);
  CbrSource src(10.0, 512);
  Collector sink;
  src.start(sim, sink, rng);
  sim.run_until(1.0);
  ASSERT_FALSE(sink.times.empty());
  EXPECT_LT(sink.times.front(), 0.1);
}

TEST(CbrSource, IdsAreSequential) {
  Simulation sim;
  util::Xoshiro256pp rng(3);
  CbrSource src(100.0, 100, false);
  Collector sink;
  src.start(sim, sink, rng);
  sim.run_until(0.5);
  for (std::size_t i = 0; i < sink.ids.size(); ++i) {
    EXPECT_EQ(sink.ids[i], i);
  }
}

TEST(PoissonSource, LongRunRateConverges) {
  Simulation sim;
  util::Xoshiro256pp rng(4);
  PoissonSource src(50.0, 512);
  Collector sink;
  src.start(sim, sink, rng);
  sim.run_until(200.0);
  const double rate = static_cast<double>(sink.times.size()) / 200.0;
  EXPECT_NEAR(rate, 50.0, 1.5);
}

TEST(PoissonSource, InterArrivalsAreExponential) {
  Simulation sim;
  util::Xoshiro256pp rng(5);
  PoissonSource src(100.0, 512);
  Collector sink;
  src.start(sim, sink, rng);
  sim.run_until(300.0);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < sink.times.size(); ++i) {
    gaps.push_back(sink.times[i] - sink.times[i - 1]);
  }
  // Exponential: mean = std-dev = 1/rate.
  EXPECT_NEAR(stats::mean(gaps), 0.01, 5e-4);
  EXPECT_NEAR(stats::sample_stddev(gaps), 0.01, 7e-4);
}

TEST(OnOffSource, MeanRateMatchesDutyCycle) {
  Simulation sim;
  util::Xoshiro256pp rng(6);
  OnOffSource src(80.0, 0.5, 0.5, 512);
  EXPECT_DOUBLE_EQ(src.mean_rate(), 40.0);
  Collector sink;
  src.start(sim, sink, rng);
  sim.run_until(400.0);
  const double rate = static_cast<double>(sink.times.size()) / 400.0;
  EXPECT_NEAR(rate, 40.0, 5.0);  // bursty source: rate std over 400 s is ~2
}

TEST(OnOffSource, ProducesBursts) {
  Simulation sim;
  util::Xoshiro256pp rng(7);
  OnOffSource src(200.0, 0.2, 0.8, 512);
  Collector sink;
  src.start(sim, sink, rng);
  sim.run_until(100.0);
  // Burstiness: inter-arrival variance far above Poisson at the same mean.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < sink.times.size(); ++i) {
    gaps.push_back(sink.times[i] - sink.times[i - 1]);
  }
  const double mean_gap = stats::mean(gaps);
  const double cv2 = stats::sample_variance(gaps) / (mean_gap * mean_gap);
  EXPECT_GT(cv2, 2.0);  // Poisson would give ~1
}

TEST(Sources, FactoriesProduceCorrectRates) {
  EXPECT_DOUBLE_EQ(make_cbr(10.0, 512)->mean_rate(), 10.0);
  EXPECT_DOUBLE_EQ(make_poisson(40.0, 512)->mean_rate(), 40.0);
}

}  // namespace
}  // namespace linkpad::sim
