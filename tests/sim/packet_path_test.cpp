// Packet-level end-to-end testbed tests, including the cross-engine
// fidelity check: the analytic (PK-channel) Testbed and the packet-level
// testbed must produce statistically indistinguishable PIAT streams.
#include "sim/packet_path.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

TestbedConfig config_with_hop(double rho) {
  TestbedConfig cfg;
  cfg.policy = std::make_shared<ConstantIntervalTimer>(10e-3);
  cfg.payload_rate = 40.0;
  if (rho >= 0.0) {
    HopConfig hop;
    hop.name = "hop";
    hop.bandwidth_bps = 500e6;
    hop.cross_utilization = rho;
    hop.cross_packet_bytes = 1500;
    cfg.hops_before_tap = {hop};
  }
  return cfg;
}

TEST(PacketLevelTestbed, CollectsRequestedCount) {
  auto cfg = config_with_hop(0.2);
  util::Xoshiro256pp rng(1);
  PacketLevelTestbed bed(cfg, rng);
  EXPECT_EQ(bed.collect_piats(500).size(), 500u);
  EXPECT_EQ(bed.hop_count(), 1u);
  EXPECT_GT(bed.events_processed(), 500u);
}

TEST(PacketLevelTestbed, NoHopsEqualsGatewayOutput) {
  TestbedConfig cfg;
  cfg.policy = std::make_shared<ConstantIntervalTimer>(10e-3);
  cfg.payload_rate = 40.0;
  util::Xoshiro256pp rng(2);
  PacketLevelTestbed bed(cfg, rng);
  const auto piats = bed.collect_piats(5000);
  EXPECT_NEAR(stats::mean(piats), 10e-3, 1e-5);
}

TEST(PacketLevelTestbed, DeterministicBySeed) {
  auto cfg = config_with_hop(0.3);
  util::Xoshiro256pp a(7), b(7);
  PacketLevelTestbed bed_a(cfg, a), bed_b(cfg, b);
  EXPECT_EQ(bed_a.collect_piats(300), bed_b.collect_piats(300));
}

TEST(PacketLevelTestbed, CrossTrafficIncreasesVariance) {
  util::Xoshiro256pp r1(3), r2(3);
  auto quiet_cfg = config_with_hop(0.0);
  auto busy_cfg = config_with_hop(0.5);
  PacketLevelTestbed quiet(quiet_cfg, r1);
  PacketLevelTestbed busy(busy_cfg, r2);
  const auto q = quiet.collect_piats(15000);
  const auto b = busy.collect_piats(15000);
  EXPECT_GT(stats::sample_variance(b), 1.5 * stats::sample_variance(q));
  EXPECT_NEAR(stats::mean(b), stats::mean(q), 2e-5);
}

// --- the fidelity contract between the two engines ---

class EngineFidelity : public ::testing::TestWithParam<double> {};

TEST_P(EngineFidelity, PiatMomentsAgreeAcrossEngines) {
  const double rho = GetParam();
  const auto cfg = config_with_hop(rho);
  const std::size_t count = 60000;

  util::Xoshiro256pp rng_a(11);
  Testbed analytic(cfg, rng_a);
  const auto pa = analytic.collect_piats(count);

  util::Xoshiro256pp rng_p(12);
  PacketLevelTestbed packet(cfg, rng_p);
  const auto pp = packet.collect_piats(count);

  const auto sa = stats::summarize(pa);
  const auto sp = stats::summarize(pp);
  EXPECT_NEAR(sa.mean, sp.mean, 2e-6) << "rho " << rho;
  // Variances within 10%: the analytic channel is a sampling shortcut of
  // the same queueing process, not a different model.
  EXPECT_NEAR(sa.variance, sp.variance, 0.1 * sp.variance) << "rho " << rho;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, EngineFidelity,
                         ::testing::Values(0.1, 0.4));

}  // namespace
}  // namespace linkpad::sim
