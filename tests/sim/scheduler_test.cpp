#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace linkpad::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, SimultaneousEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(2.0000001, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_in(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, StopHaltsProcessing) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulation, SchedulingInThePastViolatesContract) {
  Simulation sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), linkpad::ContractViolation);
  EXPECT_THROW(sim.schedule_in(-0.5, [] {}), linkpad::ContractViolation);
}

TEST(Simulation, ScheduleInIsRelativeToNow) {
  Simulation sim;
  double fired_at = 0.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(Simulation, RunUntilResumesCorrectly) {
  Simulation sim;
  std::vector<double> stamps;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&stamps, &sim] { stamps.push_back(sim.now()); });
  }
  sim.run_until(4.0);
  EXPECT_EQ(stamps.size(), 4u);
  sim.run_until(10.0);
  EXPECT_EQ(stamps.size(), 10u);
}

}  // namespace
}  // namespace linkpad::sim
