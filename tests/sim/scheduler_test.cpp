#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "util/check.hpp"

namespace linkpad::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, SimultaneousEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(2.0000001, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_in(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, StopHaltsProcessing) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulation, SchedulingInThePastViolatesContract) {
  Simulation sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), linkpad::ContractViolation);
  EXPECT_THROW(sim.schedule_in(-0.5, [] {}), linkpad::ContractViolation);
}

TEST(Simulation, ScheduleInIsRelativeToNow) {
  Simulation sim;
  double fired_at = 0.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(Simulation, RunUntilResumesCorrectly) {
  Simulation sim;
  std::vector<double> stamps;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&stamps, &sim] { stamps.push_back(sim.now()); });
  }
  sim.run_until(4.0);
  EXPECT_EQ(stamps.size(), 4u);
  sim.run_until(10.0);
  EXPECT_EQ(stamps.size(), 10u);
}

namespace {

/// Records its firing order into a shared log.
class RecordingTask final : public TimerTask {
 public:
  RecordingTask(int id, std::vector<int>& log) : id_(id), log_(&log) {}
  void on_timer(Seconds /*now*/) override { log_->push_back(id_); }

 private:
  int id_;
  std::vector<int>* log_;
};

}  // namespace

TEST(Simulation, TimerTasksRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  RecordingTask a(3, order), b(1, order), c(2, order);
  sim.schedule_timer_at(3.0, a);
  sim.schedule_timer_at(1.0, b);
  sim.schedule_timer_at(2.0, c);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, SimultaneousTimersAndCallbacksKeepFifoOrder) {
  // FIFO tie-breaking must hold ACROSS the two scheduling paths: timers and
  // closures scheduled at the same instant run in submission order.
  Simulation sim;
  std::vector<int> order;
  RecordingTask t0(0, order), t2(2, order), t5(5, order);
  sim.schedule_timer_at(1.0, t0);
  sim.schedule_at(1.0, [&order] { order.push_back(1); });
  sim.schedule_timer_at(1.0, t2);
  sim.schedule_at(1.0, [&order] { order.push_back(3); });
  sim.schedule_at(1.0, [&order] { order.push_back(4); });
  sim.schedule_timer_at(1.0, t5);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Simulation, TimerTasksRespectRunUntilBoundary) {
  Simulation sim;
  std::vector<int> order;
  RecordingTask a(1, order), b(2, order);
  sim.schedule_timer_at(1.0, a);
  sim.schedule_timer_at(2.5, b);
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_FALSE(sim.empty());
  sim.run_until(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulation, SelfReschedulingTimerTask) {
  Simulation sim;
  class Periodic final : public TimerTask {
   public:
    explicit Periodic(Simulation& sim) : sim_(sim) {}
    void on_timer(Seconds /*now*/) override {
      if (++fires < 100) sim_.schedule_timer_in(0.5, *this);
    }
    int fires = 0;

   private:
    Simulation& sim_;
  } task{sim};

  sim.schedule_timer_in(0.5, task);
  sim.run();
  EXPECT_EQ(task.fires, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);

  // One pending entry at a time: no pool slot is ever needed.
  EXPECT_EQ(sim.callback_pool_slots(), 0u);
}

TEST(Simulation, CallbackPoolSlotsAreRecycled) {
  Simulation sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 10000) sim.schedule_in(1e-3, tick);
  };
  sim.schedule_in(1e-3, tick);
  sim.run();
  EXPECT_EQ(fired, 10000);
  // A sequential chain recycles one slot; the slab must not grow per event.
  EXPECT_LE(sim.callback_pool_slots(), 2u);
}

TEST(Simulation, OversizedClosuresStillWork) {
  Simulation sim;
  // 128 bytes of captured state: past the inline buffer, boxed on the heap.
  std::array<double, 16> big{};
  big[7] = 42.0;
  double seen = 0.0;
  sim.schedule_at(1.0, [big, &seen] { seen = big[7]; });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Simulation, SchedulingTimerInThePastViolatesContract) {
  Simulation sim;
  std::vector<int> order;
  RecordingTask task(1, order);
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_timer_at(1.0, task), linkpad::ContractViolation);
  EXPECT_THROW(sim.schedule_timer_in(-0.5, task), linkpad::ContractViolation);
}

TEST(Simulation, StopHaltsTimerProcessing) {
  Simulation sim;
  std::vector<int> order;
  RecordingTask a(1, order), b(2, order);
  sim.schedule_timer_at(1.0, a);
  sim.schedule_at(1.5, [&sim] { sim.stop(); });
  sim.schedule_timer_at(2.0, b);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_FALSE(sim.empty());
}

}  // namespace
}  // namespace linkpad::sim
