#include "sim/gateway.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/source.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

struct WireTap : PacketSink {
  std::vector<Seconds> times;
  std::uint64_t payload = 0;
  std::uint64_t dummy = 0;
  void on_packet(const Packet& p, Seconds now) override {
    times.push_back(now);
    if (p.kind == PacketKind::kPayload) ++payload;
    if (p.kind == PacketKind::kDummy) ++dummy;
    EXPECT_EQ(p.size_bytes, 1000);  // constant wire size
  }
  [[nodiscard]] std::vector<double> piats() const {
    std::vector<double> out;
    for (std::size_t i = 1; i < times.size(); ++i) {
      out.push_back(times[i] - times[i - 1]);
    }
    return out;
  }
};

struct Harness {
  Simulation sim;
  util::Xoshiro256pp rng;
  WireTap tap;
  std::unique_ptr<CbrSource> source;
  std::unique_ptr<PaddingGateway> gateway;

  Harness(double payload_rate, const JitterParams& jitter, std::uint64_t seed,
          double tau = 10e-3)
      : rng(seed) {
    gateway = std::make_unique<PaddingGateway>(
        sim, std::make_unique<ConstantIntervalTimer>(tau), jitter, rng, tap,
        1000);
    source = std::make_unique<CbrSource>(payload_rate, 512);
    source->start(sim, *gateway, rng);
    gateway->start();
  }
};

TEST(PaddingGateway, WireRateIsConstantRegardlessOfPayloadRate) {
  // The perfect-secrecy property: 100 pps on the wire at BOTH payload rates.
  for (double rate : {10.0, 40.0}) {
    Harness h(rate, JitterParams{}, 42);
    h.sim.run_until(50.0);
    const auto wire = static_cast<double>(h.tap.times.size()) / 50.0;
    EXPECT_NEAR(wire, 100.0, 0.5) << "payload rate " << rate;
  }
}

TEST(PaddingGateway, DummyFractionComplementsPayload) {
  Harness h(40.0, JitterParams{}, 7);
  h.sim.run_until(100.0);
  const double total = static_cast<double>(h.tap.payload + h.tap.dummy);
  EXPECT_NEAR(static_cast<double>(h.tap.payload) / total, 0.4, 0.01);
  EXPECT_NEAR(static_cast<double>(h.tap.dummy) / total, 0.6, 0.01);
}

TEST(PaddingGateway, EveryPayloadPacketIsEventuallyForwarded) {
  Harness h(40.0, JitterParams{}, 8);
  h.sim.run_until(100.0);
  const auto& gs = h.gateway->stats();
  // All accepted payload is either out or still queued (queue stays small
  // since payload rate < wire rate).
  EXPECT_EQ(gs.dropped, 0u);
  EXPECT_GE(gs.payload_out + 2, gs.payload_in - 2);
  EXPECT_EQ(h.tap.payload, gs.payload_out);
}

TEST(PaddingGateway, PiatMeanEqualsTauAtBothRates) {
  // Paper Sec 4.2 assumption, validated by their Fig 4(a): padded PIAT mean
  // does not depend on the payload rate.
  std::vector<double> means;
  for (double rate : {10.0, 40.0}) {
    Harness h(rate, JitterParams{}, 11);
    h.sim.run_until(200.0);
    means.push_back(stats::mean(h.tap.piats()));
  }
  EXPECT_NEAR(means[0], 10e-3, 5e-6);
  EXPECT_NEAR(means[1], 10e-3, 5e-6);
  EXPECT_NEAR(means[0], means[1], 5e-6);
}

TEST(PaddingGateway, PiatVarianceGrowsWithPayloadRate) {
  // The leak: Var(PIAT | 40pps) > Var(PIAT | 10pps) under CIT.
  std::vector<double> vars;
  for (double rate : {10.0, 40.0}) {
    Harness h(rate, JitterParams{}, 13);
    h.sim.run_until(2000.0);
    vars.push_back(stats::sample_variance(h.tap.piats()));
  }
  EXPECT_GT(vars[1], vars[0] * 1.15);
}

TEST(PaddingGateway, PiatVarianceMatchesEffectiveModel) {
  JitterParams jp;  // defaults
  GatewayJitterModel model(jp);
  for (double rate : {10.0, 40.0}) {
    Harness h(rate, jp, 17);
    h.sim.run_until(4000.0);
    const double measured = stats::sample_variance(h.tap.piats());
    const double predicted = model.effective_piat_variance(rate * 10e-3);
    EXPECT_NEAR(measured, predicted, 0.06 * predicted) << "rate " << rate;
  }
}

TEST(PaddingGateway, QueueingDelayBoundedByTimerInterval) {
  Harness h(40.0, JitterParams{}, 19);
  h.sim.run_until(100.0);
  const auto& delay = h.gateway->stats().queueing_delay;
  ASSERT_GT(delay.count(), 0u);
  // With payload rate < wire rate the queue never builds: the wait is at
  // most ~one timer interval (plus jitter).
  EXPECT_LT(delay.max(), 10e-3 * 1.5);
  EXPECT_GT(delay.mean(), 0.0);
}

TEST(PaddingGateway, DropsWhenQueueCapacityExceeded) {
  Simulation sim;
  util::Xoshiro256pp rng(23);
  WireTap tap;
  // Timer slower than payload: 10 pps wire, 40 pps payload, tiny queue.
  PaddingGateway gw(sim, std::make_unique<ConstantIntervalTimer>(0.1),
                    JitterParams{}, rng, tap, 1000, /*queue_capacity=*/4);
  CbrSource src(40.0, 512);
  src.start(sim, gw, rng);
  gw.start();
  sim.run_until(20.0);
  EXPECT_GT(gw.stats().dropped, 0u);
}

TEST(PaddingGateway, DeterministicAcrossRuns) {
  auto run = [] {
    Harness h(40.0, JitterParams{}, 99);
    h.sim.run_until(10.0);
    return h.tap.times;
  };
  EXPECT_EQ(run(), run());
}

TEST(PaddingGateway, WireRateAccessor) {
  Simulation sim;
  util::Xoshiro256pp rng(1);
  WireTap tap;
  PaddingGateway gw(sim, std::make_unique<ConstantIntervalTimer>(10e-3),
                    JitterParams{}, rng, tap, 1000);
  EXPECT_DOUBLE_EQ(gw.wire_rate(), 100.0);
}

TEST(PaddingGateway, OverheadAccountingMatchesByHandCounts) {
  // The counting sink (WireTap) is the by-hand truth: every byte the stats
  // claim must be a packet the tap saw, split payload/dummy the same way.
  Harness h(40.0, JitterParams{}, 31);
  h.sim.run_until(50.0);
  const auto& gs = h.gateway->stats();
  EXPECT_EQ(gs.payload_bytes, gs.payload_out * 1000u);
  EXPECT_EQ(gs.padding_bytes, gs.dummy_out * 1000u);
  // The tap may lag the stats by the (µs-scale) emissions still in flight
  // at the horizon — never by more.
  EXPECT_LE(h.tap.payload, gs.payload_out);
  EXPECT_GE(h.tap.payload + 2, gs.payload_out);
  EXPECT_LE(h.tap.dummy, gs.dummy_out);
  EXPECT_GE(h.tap.dummy + 2, gs.dummy_out);
  EXPECT_EQ(gs.suppressed_fires, 0u);  // CIT always pads
  EXPECT_EQ(gs.timer_fires, gs.payload_out + gs.dummy_out);
  // Delay percentiles ordered and inside the observed range.
  ASSERT_GT(gs.queueing_delay.count(), 0u);
  EXPECT_LE(gs.delay_p50.value(), gs.delay_p95.value());
  EXPECT_LE(gs.delay_p95.value(), gs.delay_p99.value());
  EXPECT_LE(gs.delay_p99.value(), gs.queueing_delay.max() + 1e-12);
}

TEST(PaddingGateway, ZeroBudgetPolicySuppressesEveryDummy) {
  Simulation sim;
  util::Xoshiro256pp rng(37);
  WireTap tap;
  PaddingGateway gw(sim,
                    std::make_unique<TokenBucketTimer>(
                        std::make_unique<ConstantIntervalTimer>(10e-3),
                        /*dummy_budget_per_sec=*/0.0, /*burst=*/0.0),
                    JitterParams{}, rng, tap, 1000);
  CbrSource src(10.0, 512);
  src.start(sim, gw, rng);
  gw.start();
  sim.run_until(50.0);
  const auto& gs = gw.stats();
  // The wire carries ONLY payload: every empty-queue fire was suppressed.
  EXPECT_EQ(tap.dummy, 0u);
  EXPECT_EQ(gs.dummy_out, 0u);
  EXPECT_EQ(gs.padding_bytes, 0u);
  EXPECT_GT(gs.suppressed_fires, 0u);
  EXPECT_EQ(gs.timer_fires, gs.payload_out + gs.suppressed_fires);
  EXPECT_LE(tap.payload, gs.payload_out);
  EXPECT_GE(tap.payload + 2, gs.payload_out);
  EXPECT_NEAR(static_cast<double>(tap.payload) / 50.0, 10.0, 0.5);
}

TEST(PaddingGateway, BudgetedDummiesRespectTheCapOnTheWire) {
  constexpr double kBudget = 20.0;
  constexpr double kBurst = 5.0;
  constexpr Seconds kHorizon = 50.0;
  Simulation sim;
  util::Xoshiro256pp rng(41);
  WireTap tap;
  PaddingGateway gw(sim,
                    std::make_unique<TokenBucketTimer>(
                        std::make_unique<ConstantIntervalTimer>(10e-3),
                        kBudget, kBurst),
                    JitterParams{}, rng, tap, 1000);
  CbrSource src(10.0, 512);
  src.start(sim, gw, rng);
  gw.start();
  sim.run_until(kHorizon);
  EXPECT_LE(static_cast<double>(tap.dummy), kBurst + kBudget * kHorizon);
  // And the budget is actually used, not just respected.
  EXPECT_GT(tap.dummy, 0u);
}

TEST(PaddingGateway, OnOffGatewayIsSilentWithoutPayload) {
  Simulation sim;
  util::Xoshiro256pp rng(43);
  WireTap tap;
  PaddingGateway gw(sim,
                    std::make_unique<OnOffTimer>(
                        std::make_unique<ConstantIntervalTimer>(10e-3),
                        /*hangover=*/50e-3),
                    JitterParams{}, rng, tap, 1000);
  // No source at all: an idle protected subnet must put NOTHING on the wire.
  gw.start();
  sim.run_until(10.0);
  EXPECT_TRUE(tap.times.empty());
  EXPECT_EQ(gw.stats().suppressed_fires, gw.stats().timer_fires);
  EXPECT_GT(gw.stats().timer_fires, 900u);
}

}  // namespace
}  // namespace linkpad::sim
