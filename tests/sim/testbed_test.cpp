#include "sim/testbed.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

TestbedConfig base_config() {
  TestbedConfig cfg;
  cfg.policy = std::make_shared<ConstantIntervalTimer>(10e-3);
  cfg.payload_rate = 40.0;
  return cfg;
}

TEST(Testbed, CollectsRequestedPiatCount) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(1);
  Testbed bed(cfg, rng);
  const auto piats = bed.collect_piats(500);
  EXPECT_EQ(piats.size(), 500u);
}

TEST(Testbed, PiatMeanNearTau) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(2);
  const auto piats = collect_piats(cfg, rng, 5000);
  EXPECT_NEAR(stats::mean(piats), 10e-3, 1e-5);
}

TEST(Testbed, DeterministicForSameSeed) {
  auto cfg = base_config();
  util::Xoshiro256pp a(7), b(7);
  EXPECT_EQ(collect_piats(cfg, a, 300), collect_piats(cfg, b, 300));
}

TEST(Testbed, DifferentSeedsDiffer) {
  auto cfg = base_config();
  util::Xoshiro256pp a(7), b(8);
  EXPECT_NE(collect_piats(cfg, a, 300), collect_piats(cfg, b, 300));
}

TEST(Testbed, RepeatedCollectsContinueTheStream) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(9);
  Testbed bed(cfg, rng);
  const auto first = bed.collect_piats(200);
  const auto second = bed.collect_piats(200);
  EXPECT_EQ(second.size(), 200u);
  EXPECT_NE(first, second);  // time moved on
}

TEST(Testbed, HopsAddNetworkNoise) {
  auto clean_cfg = base_config();
  util::Xoshiro256pp rng1(11);
  const auto clean = collect_piats(clean_cfg, rng1, 20000);

  auto noisy_cfg = base_config();
  HopConfig hop;
  hop.bandwidth_bps = 1e9;
  hop.cross_utilization = 0.5;
  hop.cross_packet_bytes = 1000;
  noisy_cfg.hops_before_tap = {hop};
  util::Xoshiro256pp rng2(11);
  const auto noisy = collect_piats(noisy_cfg, rng2, 20000);

  EXPECT_GT(stats::sample_variance(noisy), stats::sample_variance(clean) * 1.3);
  // Network noise cannot shift the mean rate.
  EXPECT_NEAR(stats::mean(noisy), stats::mean(clean), 1e-5);
}

TEST(Testbed, VitIncreasesVarianceNotMean) {
  auto cit_cfg = base_config();
  util::Xoshiro256pp rng1(13);
  const auto cit = collect_piats(cit_cfg, rng1, 20000);

  auto vit_cfg = base_config();
  vit_cfg.policy = std::make_shared<NormalIntervalTimer>(10e-3, 500e-6);
  util::Xoshiro256pp rng2(13);
  const auto vit = collect_piats(vit_cfg, rng2, 20000);

  EXPECT_NEAR(stats::mean(vit), stats::mean(cit), 1e-4);
  EXPECT_GT(stats::sample_variance(vit), 100.0 * stats::sample_variance(cit));
}

TEST(Testbed, PoissonPayloadWorks) {
  auto cfg = base_config();
  cfg.payload_kind = PayloadKind::kPoisson;
  util::Xoshiro256pp rng(15);
  const auto piats = collect_piats(cfg, rng, 2000);
  EXPECT_EQ(piats.size(), 2000u);
  EXPECT_NEAR(stats::mean(piats), 10e-3, 5e-5);
}

TEST(Testbed, GatewayStatsAccessible) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(17);
  Testbed bed(cfg, rng);
  bed.collect_piats(1000);
  const auto& gs = bed.gateway_stats();
  EXPECT_GT(gs.timer_fires, 1000u);
  EXPECT_GT(gs.payload_out, 0u);
  EXPECT_GT(gs.dummy_out, 0u);
}

TEST(Testbed, MissingPolicyRejected) {
  TestbedConfig cfg;
  cfg.policy = nullptr;
  util::Xoshiro256pp rng(19);
  EXPECT_THROW(Testbed(cfg, rng), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::sim
