#include "sim/testbed.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

TestbedConfig base_config() {
  TestbedConfig cfg;
  cfg.policy = std::make_shared<ConstantIntervalTimer>(10e-3);
  cfg.payload_rate = 40.0;
  return cfg;
}

TEST(Testbed, CollectsRequestedPiatCount) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(1);
  Testbed bed(cfg, rng);
  const auto piats = bed.collect_piats(500);
  EXPECT_EQ(piats.size(), 500u);
}

TEST(Testbed, PiatMeanNearTau) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(2);
  const auto piats = collect_piats(cfg, rng, 5000);
  EXPECT_NEAR(stats::mean(piats), 10e-3, 1e-5);
}

TEST(Testbed, DeterministicForSameSeed) {
  auto cfg = base_config();
  util::Xoshiro256pp a(7), b(7);
  EXPECT_EQ(collect_piats(cfg, a, 300), collect_piats(cfg, b, 300));
}

TEST(Testbed, DifferentSeedsDiffer) {
  auto cfg = base_config();
  util::Xoshiro256pp a(7), b(8);
  EXPECT_NE(collect_piats(cfg, a, 300), collect_piats(cfg, b, 300));
}

TEST(Testbed, RepeatedCollectsContinueTheStream) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(9);
  Testbed bed(cfg, rng);
  const auto first = bed.collect_piats(200);
  const auto second = bed.collect_piats(200);
  EXPECT_EQ(second.size(), 200u);
  EXPECT_NE(first, second);  // time moved on
}

TEST(Testbed, HopsAddNetworkNoise) {
  auto clean_cfg = base_config();
  util::Xoshiro256pp rng1(11);
  const auto clean = collect_piats(clean_cfg, rng1, 20000);

  auto noisy_cfg = base_config();
  HopConfig hop;
  hop.bandwidth_bps = 1e9;
  hop.cross_utilization = 0.5;
  hop.cross_packet_bytes = 1000;
  noisy_cfg.hops_before_tap = {hop};
  util::Xoshiro256pp rng2(11);
  const auto noisy = collect_piats(noisy_cfg, rng2, 20000);

  EXPECT_GT(stats::sample_variance(noisy), stats::sample_variance(clean) * 1.3);
  // Network noise cannot shift the mean rate.
  EXPECT_NEAR(stats::mean(noisy), stats::mean(clean), 1e-5);
}

TEST(Testbed, VitIncreasesVarianceNotMean) {
  auto cit_cfg = base_config();
  util::Xoshiro256pp rng1(13);
  const auto cit = collect_piats(cit_cfg, rng1, 20000);

  auto vit_cfg = base_config();
  vit_cfg.policy = std::make_shared<NormalIntervalTimer>(10e-3, 500e-6);
  util::Xoshiro256pp rng2(13);
  const auto vit = collect_piats(vit_cfg, rng2, 20000);

  EXPECT_NEAR(stats::mean(vit), stats::mean(cit), 1e-4);
  EXPECT_GT(stats::sample_variance(vit), 100.0 * stats::sample_variance(cit));
}

TEST(Testbed, PoissonPayloadWorks) {
  auto cfg = base_config();
  cfg.payload_kind = PayloadKind::kPoisson;
  util::Xoshiro256pp rng(15);
  const auto piats = collect_piats(cfg, rng, 2000);
  EXPECT_EQ(piats.size(), 2000u);
  EXPECT_NEAR(stats::mean(piats), 10e-3, 5e-5);
}

TEST(Testbed, GatewayStatsAccessible) {
  auto cfg = base_config();
  util::Xoshiro256pp rng(17);
  Testbed bed(cfg, rng);
  bed.collect_piats(1000);
  const auto& gs = bed.gateway_stats();
  EXPECT_GT(gs.timer_fires, 1000u);
  EXPECT_GT(gs.payload_out, 0u);
  EXPECT_GT(gs.dummy_out, 0u);
}

TEST(Testbed, MissingPolicyRejected) {
  TestbedConfig cfg;
  cfg.policy = nullptr;
  util::Xoshiro256pp rng(19);
  EXPECT_THROW(Testbed(cfg, rng), linkpad::ContractViolation);
}

TEST(PopulationMultiplex, PaddedWireRateIsPolicyTimesWireBytes) {
  auto cfg = base_config();  // tau = 10 ms, wire_bytes = 1000
  EXPECT_DOUBLE_EQ(padded_wire_rate_bps(cfg), 8.0 * 1000.0 / 10e-3);
  // Payload rate is irrelevant: the timer paces the wire.
  cfg.payload_rate = 10.0;
  EXPECT_DOUBLE_EQ(padded_wire_rate_bps(cfg), 8.0 * 1000.0 / 10e-3);
  cfg.wire_bytes = 500;
  EXPECT_DOUBLE_EQ(padded_wire_rate_bps(cfg), 8.0 * 500.0 / 10e-3);
}

TEST(PopulationMultiplex, CrossLoadRaisesEveryHopAndClamps) {
  auto cfg = base_config();
  HopConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.cross_utilization = 0.2;
  HopConfig slow;
  slow.bandwidth_bps = 10e6;
  slow.cross_utilization = 0.1;
  HopConfig hot;  // already configured above the cap: left unchanged
  hot.bandwidth_bps = 1e9;
  hot.cross_utilization = 0.97;
  cfg.hops_before_tap = {fast, slow, hot};

  add_cross_load(cfg, /*extra_bps=*/100e6, /*max_utilization=*/0.95);
  EXPECT_DOUBLE_EQ(cfg.hops_before_tap[0].cross_utilization, 0.3);
  EXPECT_DOUBLE_EQ(cfg.hops_before_tap[1].cross_utilization, 0.95);  // clamp
  EXPECT_DOUBLE_EQ(cfg.hops_before_tap[2].cross_utilization, 0.97);  // kept

  // Zero extra load is the identity, and a loaded config still simulates
  // (the clamp keeps every M/G/1 hop strictly stable).
  add_cross_load(cfg, 0.0);
  EXPECT_DOUBLE_EQ(cfg.hops_before_tap[0].cross_utilization, 0.3);
  util::Xoshiro256pp rng(23);
  EXPECT_EQ(collect_piats(cfg, rng, 200).size(), 200u);

  EXPECT_THROW(add_cross_load(cfg, -1.0), linkpad::ContractViolation);
  EXPECT_THROW(add_cross_load(cfg, 1.0, 1.5), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::sim
