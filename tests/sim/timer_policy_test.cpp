#include "sim/timer_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

TEST(ConstantIntervalTimer, AlwaysReturnsTau) {
  ConstantIntervalTimer cit(0.01);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(cit.next_interval(rng), 0.01);
  EXPECT_DOUBLE_EQ(cit.mean_interval(), 0.01);
  EXPECT_DOUBLE_EQ(cit.interval_variance(), 0.0);
}

TEST(NormalIntervalTimer, MomentsMatchConfiguration) {
  NormalIntervalTimer vit(10e-3, 100e-6);
  util::Rng rng(2);
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(vit.next_interval(rng));
  EXPECT_NEAR(rs.mean(), vit.mean_interval(), 2e-6);
  EXPECT_NEAR(rs.variance(), vit.interval_variance(), 2e-10);
  // Truncation is negligible at sigma = tau/100, so mean ~ tau.
  EXPECT_NEAR(vit.mean_interval(), 10e-3, 1e-7);
}

TEST(NormalIntervalTimer, IntervalsNeverBelowFloor) {
  // Large sigma: truncation must bite instead of emitting negatives.
  NormalIntervalTimer vit(10e-3, 8e-3);
  util::Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_GE(vit.next_interval(rng), 10e-3 / 100.0);
  }
}

TEST(NormalIntervalTimer, TruncationShiftsMeanUp) {
  NormalIntervalTimer vit(10e-3, 8e-3);
  EXPECT_GT(vit.mean_interval(), 10e-3);
  EXPECT_LT(vit.interval_variance(), 8e-3 * 8e-3);
}

TEST(NormalIntervalTimer, InvalidParamsRejected) {
  EXPECT_THROW(NormalIntervalTimer(0.0, 1e-3), linkpad::ContractViolation);
  EXPECT_THROW(NormalIntervalTimer(1e-2, 0.0), linkpad::ContractViolation);
  EXPECT_THROW(NormalIntervalTimer(1e-2, 1e-3, 2e-2),
               linkpad::ContractViolation);
}

TEST(UniformIntervalTimer, VarianceFormula) {
  UniformIntervalTimer vit(10e-3, 1e-3);
  EXPECT_NEAR(vit.interval_variance(), (2e-3) * (2e-3) / 12.0, 1e-15);
  util::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double t = vit.next_interval(rng);
    ASSERT_GE(t, 9e-3);
    ASSERT_LT(t, 11e-3);
  }
}

TEST(ShiftedExponentialTimer, MomentsMatch) {
  ShiftedExponentialTimer vit(8e-3, 2e-3);
  EXPECT_DOUBLE_EQ(vit.mean_interval(), 10e-3);
  EXPECT_DOUBLE_EQ(vit.interval_variance(), 4e-6);
  util::Rng rng(5);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) {
    const double t = vit.next_interval(rng);
    ASSERT_GE(t, 8e-3);
    rs.add(t);
  }
  EXPECT_NEAR(rs.mean(), 10e-3, 3e-5);
}

TEST(TimerPolicy, ClonesAreIndependentButIdenticallyDistributed) {
  NormalIntervalTimer original(10e-3, 1e-3);
  auto clone = original.clone();
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  // Same seed, same policy parameters => identical sequences.
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(original.next_interval(rng_a),
                     clone->next_interval(rng_b));
  }
}

TEST(TimerPolicy, NamesIdentifyPolicies) {
  EXPECT_NE(ConstantIntervalTimer(1e-2).name().find("CIT"), std::string::npos);
  EXPECT_NE(NormalIntervalTimer(1e-2, 1e-4).name().find("VIT-normal"),
            std::string::npos);
  EXPECT_NE(UniformIntervalTimer(1e-2, 1e-4).name().find("VIT-uniform"),
            std::string::npos);
}

// Property sweep: equal-variance policies report equal interval_variance.
class VitVarianceEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(VitVarianceEquivalence, DistributionsMatchTargetVariance) {
  const double sigma = GetParam();
  NormalIntervalTimer normal(10e-3, sigma, 1e-6);
  UniformIntervalTimer uniform(10e-3, sigma * std::sqrt(3.0));
  ShiftedExponentialTimer shifted(10e-3 - sigma, sigma);
  EXPECT_NEAR(uniform.interval_variance(), sigma * sigma, 1e-15);
  EXPECT_NEAR(shifted.interval_variance(), sigma * sigma, 1e-15);
  // Normal is truncated, so allow a tolerance.
  EXPECT_NEAR(normal.interval_variance(), sigma * sigma,
              0.05 * sigma * sigma);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, VitVarianceEquivalence,
                         ::testing::Values(10e-6, 100e-6, 1e-3));

}  // namespace
}  // namespace linkpad::sim
