#include "sim/timer_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

TEST(ConstantIntervalTimer, AlwaysReturnsTau) {
  ConstantIntervalTimer cit(0.01);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(cit.next_interval(rng), 0.01);
  EXPECT_DOUBLE_EQ(cit.mean_interval(), 0.01);
  EXPECT_DOUBLE_EQ(cit.interval_variance(), 0.0);
}

TEST(NormalIntervalTimer, MomentsMatchConfiguration) {
  NormalIntervalTimer vit(10e-3, 100e-6);
  util::Rng rng(2);
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(vit.next_interval(rng));
  EXPECT_NEAR(rs.mean(), vit.mean_interval(), 2e-6);
  EXPECT_NEAR(rs.variance(), vit.interval_variance(), 2e-10);
  // Truncation is negligible at sigma = tau/100, so mean ~ tau.
  EXPECT_NEAR(vit.mean_interval(), 10e-3, 1e-7);
}

TEST(NormalIntervalTimer, IntervalsNeverBelowFloor) {
  // Large sigma: truncation must bite instead of emitting negatives.
  NormalIntervalTimer vit(10e-3, 8e-3);
  util::Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_GE(vit.next_interval(rng), 10e-3 / 100.0);
  }
}

TEST(NormalIntervalTimer, TruncationShiftsMeanUp) {
  NormalIntervalTimer vit(10e-3, 8e-3);
  EXPECT_GT(vit.mean_interval(), 10e-3);
  EXPECT_LT(vit.interval_variance(), 8e-3 * 8e-3);
}

TEST(NormalIntervalTimer, InvalidParamsRejected) {
  EXPECT_THROW(NormalIntervalTimer(0.0, 1e-3), linkpad::ContractViolation);
  EXPECT_THROW(NormalIntervalTimer(1e-2, 0.0), linkpad::ContractViolation);
  EXPECT_THROW(NormalIntervalTimer(1e-2, 1e-3, 2e-2),
               linkpad::ContractViolation);
}

TEST(UniformIntervalTimer, VarianceFormula) {
  UniformIntervalTimer vit(10e-3, 1e-3);
  EXPECT_NEAR(vit.interval_variance(), (2e-3) * (2e-3) / 12.0, 1e-15);
  util::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double t = vit.next_interval(rng);
    ASSERT_GE(t, 9e-3);
    ASSERT_LT(t, 11e-3);
  }
}

TEST(ShiftedExponentialTimer, MomentsMatch) {
  ShiftedExponentialTimer vit(8e-3, 2e-3);
  EXPECT_DOUBLE_EQ(vit.mean_interval(), 10e-3);
  EXPECT_DOUBLE_EQ(vit.interval_variance(), 4e-6);
  util::Rng rng(5);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) {
    const double t = vit.next_interval(rng);
    ASSERT_GE(t, 8e-3);
    rs.add(t);
  }
  EXPECT_NEAR(rs.mean(), 10e-3, 3e-5);
}

TEST(TimerPolicy, ClonesAreIndependentButIdenticallyDistributed) {
  NormalIntervalTimer original(10e-3, 1e-3);
  auto clone = original.clone();
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  // Same seed, same policy parameters => identical sequences.
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(original.next_interval(rng_a),
                     clone->next_interval(rng_b));
  }
}

TEST(TimerPolicy, NamesIdentifyPolicies) {
  EXPECT_NE(ConstantIntervalTimer(1e-2).name().find("CIT"), std::string::npos);
  EXPECT_NE(NormalIntervalTimer(1e-2, 1e-4).name().find("VIT-normal"),
            std::string::npos);
  EXPECT_NE(UniformIntervalTimer(1e-2, 1e-4).name().find("VIT-uniform"),
            std::string::npos);
}

// ----------------------------------------- payload-reactive policies

GatewayFeedback feedback_at(Seconds now, unsigned arrivals = 0,
                            std::size_t depth = 0) {
  GatewayFeedback fb;
  fb.now = now;
  fb.arrivals_since_fire = arrivals;
  fb.queue_depth = depth;
  return fb;
}

TEST(OnOffTimer, StartsIdleAndPadsOnlyWithinHangover) {
  OnOffTimer policy(std::make_unique<ConstantIntervalTimer>(10e-3),
                    /*hangover=*/50e-3);
  // Fresh policy: no payload ever seen, so no padding.
  EXPECT_FALSE(policy.spend_dummy(feedback_at(0.0)));
  EXPECT_FALSE(policy.spend_dummy(feedback_at(1.0)));

  // Activity in the current interval pads immediately, even before observe.
  EXPECT_TRUE(policy.spend_dummy(feedback_at(1.0, /*arrivals=*/1)));

  // Observed activity at t = 1 keeps the pad on through the hangover...
  auto fb = feedback_at(1.0, /*arrivals=*/1);
  policy.observe(fb);
  EXPECT_TRUE(policy.spend_dummy(feedback_at(1.04)));
  // ...and off again past it.
  EXPECT_FALSE(policy.spend_dummy(feedback_at(1.051)));

  // A forwarded payload packet also counts as activity.
  auto forwarded = feedback_at(2.0);
  forwarded.emitted_payload = true;
  policy.observe(forwarded);
  EXPECT_TRUE(policy.spend_dummy(feedback_at(2.05)));
}

TEST(OnOffTimer, PacesLikeItsBaseAndReportsReactive) {
  OnOffTimer policy(std::make_unique<ConstantIntervalTimer>(10e-3), 50e-3);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.next_interval(rng), 10e-3);
  EXPECT_DOUBLE_EQ(policy.mean_interval(), 10e-3);
  EXPECT_DOUBLE_EQ(policy.interval_variance(), 0.0);
  EXPECT_TRUE(policy.payload_reactive());
  EXPECT_NE(policy.name().find("onoff"), std::string::npos);
  EXPECT_NE(policy.name().find("CIT"), std::string::npos);
}

TEST(OnOffTimer, CloneResetsActivityState) {
  OnOffTimer policy(std::make_unique<ConstantIntervalTimer>(10e-3), 50e-3);
  auto fb = feedback_at(1.0, 1);
  policy.observe(fb);
  EXPECT_TRUE(policy.spend_dummy(feedback_at(1.01)));
  auto clone = policy.clone();
  // The clone starts idle: it must not inherit the original's clock.
  EXPECT_FALSE(clone->spend_dummy(feedback_at(1.01)));
}

TEST(TokenBucketTimer, PositiveBudgetWithSubUnitBurstRejected) {
  // burst < 1 with a positive budget can never spend a token: the silent
  // never-pads trap is a contract violation, not a valid configuration.
  EXPECT_THROW(TokenBucketTimer(std::make_unique<ConstantIntervalTimer>(1e-2),
                                /*dummy_budget_per_sec=*/100.0,
                                /*burst=*/0.5),
               linkpad::ContractViolation);
  // Zero budget may carry any burst (including none): explicit no-padding.
  EXPECT_NO_THROW(TokenBucketTimer(
      std::make_unique<ConstantIntervalTimer>(1e-2), 0.0, 0.5));
}

TEST(TokenBucketTimer, SpendsBurstThenRefillsAtBudgetRate) {
  TokenBucketTimer policy(std::make_unique<ConstantIntervalTimer>(10e-3),
                          /*dummy_budget_per_sec=*/10.0, /*burst=*/2.0);
  // Full bucket at t = 0: two dummies, then empty.
  EXPECT_TRUE(policy.spend_dummy(feedback_at(0.0)));
  EXPECT_TRUE(policy.spend_dummy(feedback_at(0.0)));
  EXPECT_FALSE(policy.spend_dummy(feedback_at(0.0)));
  // 0.1 s at 10 tokens/s refills exactly one.
  EXPECT_TRUE(policy.spend_dummy(feedback_at(0.1)));
  EXPECT_FALSE(policy.spend_dummy(feedback_at(0.1)));
}

TEST(TokenBucketTimer, ZeroBudgetZeroBurstNeverPads) {
  TokenBucketTimer policy(std::make_unique<ConstantIntervalTimer>(10e-3), 0.0,
                          0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(policy.spend_dummy(feedback_at(static_cast<double>(i))));
  }
}

TEST(TokenBucketTimer, CloneStartsWithAFullBucket) {
  TokenBucketTimer policy(std::make_unique<ConstantIntervalTimer>(10e-3), 1.0,
                          1.0);
  EXPECT_TRUE(policy.spend_dummy(feedback_at(0.0)));
  EXPECT_FALSE(policy.spend_dummy(feedback_at(0.0)));
  auto clone = policy.clone();
  EXPECT_TRUE(clone->spend_dummy(feedback_at(0.0)));
  EXPECT_TRUE(policy.payload_reactive());
  EXPECT_NE(policy.name().find("budget"), std::string::npos);
}

/// The budget property the frontier is built on: over ANY horizon, granted
/// dummies never exceed burst + rate·elapsed — driven with 200 seeded
/// random fire streams (random fire spacing, random idle/busy pattern).
TEST(TokenBucketTimer, EmittedPaddingNeverExceedsBudgetOn200RandomStreams) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    util::Rng rng(seed);
    // Valid configurations only: a positive budget requires burst >= 1
    // (constructor contract); ~10% of streams exercise the zero-budget
    // case, whose cap is the initial burst alone.
    const double rate =
        rng.uniform(0.0, 1.0) < 0.1 ? 0.0 : rng.uniform(0.1, 120.0);
    const double burst =
        rate == 0.0 ? rng.uniform(0.0, 8.0) : rng.uniform(1.0, 8.0);
    TokenBucketTimer policy(std::make_unique<ConstantIntervalTimer>(10e-3),
                            rate, burst);
    Seconds now = 0.0;
    std::uint64_t granted = 0;
    for (int fire = 0; fire < 500; ++fire) {
      now += rng.uniform(1e-4, 30e-3);  // random fire spacing
      // Random link state; the bucket must hold regardless.
      const bool queue_empty = rng.uniform(0.0, 1.0) < 0.7;
      if (!queue_empty) continue;  // payload fire: no dummy decision
      if (policy.spend_dummy(feedback_at(now))) ++granted;
      const double cap = burst + rate * now;
      ASSERT_LE(static_cast<double>(granted), cap + 1e-9)
          << "seed " << seed << " fire " << fire;
    }
  }
}

TEST(AdaptiveGapTimer, GapShrinksWithQueueDepthAndClampsAtMin) {
  AdaptiveGapTimer policy(/*base_gap=*/20e-3, /*gain=*/1.0,
                          /*min_gap=*/2e-3);
  util::Rng rng(2);
  // Empty queue: base gap.
  EXPECT_DOUBLE_EQ(policy.next_interval(rng), 20e-3);
  policy.observe(feedback_at(0.0, 0, /*depth=*/1));
  EXPECT_DOUBLE_EQ(policy.next_interval(rng), 10e-3);
  policy.observe(feedback_at(0.0, 0, /*depth=*/3));
  EXPECT_DOUBLE_EQ(policy.next_interval(rng), 5e-3);
  policy.observe(feedback_at(0.0, 0, /*depth=*/1000));
  EXPECT_DOUBLE_EQ(policy.next_interval(rng), 2e-3);  // clamped
  EXPECT_TRUE(policy.payload_reactive());
  EXPECT_NE(policy.name().find("adaptive-gap"), std::string::npos);
}

TEST(AdaptiveGapTimer, CloneResetsQueueView) {
  AdaptiveGapTimer policy(20e-3, 1.0, 2e-3);
  policy.observe(feedback_at(0.0, 0, 3));
  auto clone = policy.clone();
  util::Rng rng(3);
  EXPECT_DOUBLE_EQ(clone->next_interval(rng), 20e-3);
  EXPECT_DOUBLE_EQ(policy.next_interval(rng), 5e-3);
}

TEST(ReactiveDecorators, ComposeInEitherOrder) {
  // Budget(OnOff(...)): observe must reach the inner activity clock, so a
  // funded bucket still refuses to pad an idle subnet and pads near
  // activity.
  TokenBucketTimer budget_outside(
      std::make_unique<OnOffTimer>(
          std::make_unique<ConstantIntervalTimer>(10e-3), /*hangover=*/50e-3),
      /*dummy_budget_per_sec=*/100.0, /*burst=*/5.0);
  EXPECT_FALSE(budget_outside.spend_dummy(feedback_at(1.0)));  // idle
  auto activity = feedback_at(2.0, /*arrivals=*/1);
  budget_outside.observe(activity);
  EXPECT_TRUE(budget_outside.spend_dummy(feedback_at(2.01)));

  // OnOff(Budget(...)): dummies granted during activity must still spend
  // tokens — the hard overhead cap survives the wrapper.
  OnOffTimer onoff_outside(
      std::make_unique<TokenBucketTimer>(
          std::make_unique<ConstantIntervalTimer>(10e-3), /*budget=*/0.0,
          /*burst=*/1.0),
      /*hangover=*/50e-3);
  // One token in the bucket: the first active fire spends it, the second
  // is refused even though the pad is "on".
  EXPECT_TRUE(onoff_outside.spend_dummy(feedback_at(0.0, /*arrivals=*/1)));
  EXPECT_FALSE(onoff_outside.spend_dummy(feedback_at(0.0, /*arrivals=*/1)));
}

TEST(TimerPolicy, PaperPoliciesAreNotPayloadReactive) {
  EXPECT_FALSE(ConstantIntervalTimer(1e-2).payload_reactive());
  EXPECT_FALSE(NormalIntervalTimer(1e-2, 1e-4).payload_reactive());
  EXPECT_FALSE(UniformIntervalTimer(1e-2, 1e-4).payload_reactive());
  EXPECT_FALSE(ShiftedExponentialTimer(8e-3, 2e-3).payload_reactive());
  // And their default seam always pads — the paper's behaviour.
  ConstantIntervalTimer cit(1e-2);
  EXPECT_TRUE(cit.spend_dummy(feedback_at(0.0)));
}

// Property sweep: equal-variance policies report equal interval_variance.
class VitVarianceEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(VitVarianceEquivalence, DistributionsMatchTargetVariance) {
  const double sigma = GetParam();
  NormalIntervalTimer normal(10e-3, sigma, 1e-6);
  UniformIntervalTimer uniform(10e-3, sigma * std::sqrt(3.0));
  ShiftedExponentialTimer shifted(10e-3 - sigma, sigma);
  EXPECT_NEAR(uniform.interval_variance(), sigma * sigma, 1e-15);
  EXPECT_NEAR(shifted.interval_variance(), sigma * sigma, 1e-15);
  // Normal is truncated, so allow a tolerance.
  EXPECT_NEAR(normal.interval_variance(), sigma * sigma,
              0.05 * sigma * sigma);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, VitVarianceEquivalence,
                         ::testing::Values(10e-6, 100e-6, 1e-3));

}  // namespace
}  // namespace linkpad::sim
