#include "sim/hop.hpp"

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

HopConfig test_hop(double rho) {
  HopConfig cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.cross_utilization = rho;
  cfg.cross_packet_bytes = 1000;
  cfg.propagation_delay = 50e-6;
  return cfg;
}

TEST(HopChannel, ZeroUtilizationIsDeterministic) {
  HopChannel hop(test_hop(0.0), 1000);
  util::Rng rng(1);
  // service = 8 us, prop = 50 us
  const double depart = hop.traverse(1.0, rng);
  EXPECT_NEAR(depart, 1.0 + 8e-6 + 50e-6, 1e-12);
}

TEST(HopChannel, DeparturesAreMonotone) {
  HopChannel hop(test_hop(0.6), 1000);
  util::Rng rng(2);
  double prev = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = hop.traverse(i * 0.001, rng);  // 1 ms spacing
    ASSERT_GT(d, prev);  // FIFO: no reordering within the monitored flow
    prev = d;
  }
}

TEST(HopChannel, DelayNeverBelowServicePlusPropagation) {
  HopChannel hop(test_hop(0.5), 1000);
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double arrival = i * 0.01;
    const double depart = hop.traverse(arrival, rng);
    // Tolerance covers double rounding when adding ~60 us to ~100 s.
    ASSERT_GE(depart - arrival, 8e-6 + 50e-6 - 5e-11);
  }
}

TEST(HopChannel, WaitVarianceMatchesSamplerTheory) {
  HopChannel hop(test_hop(0.4), 1000);
  util::Rng rng(4);
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    const double arrival = i * 0.01;
    rs.add(hop.traverse(arrival, rng) - arrival - 8e-6 - 50e-6);
  }
  EXPECT_NEAR(rs.variance(), hop.wait_variance(),
              0.05 * hop.wait_variance());
}

TEST(HopChannel, SetUtilizationChangesNoise) {
  HopChannel hop(test_hop(0.1), 1000);
  const double before = hop.wait_variance();
  hop.set_cross_utilization(0.6);
  EXPECT_GT(hop.wait_variance(), before);
}

TEST(PathModel, ChainsDelaysAcrossHops) {
  std::vector<HopConfig> hops = {test_hop(0.0), test_hop(0.0), test_hop(0.0)};
  PathModel path(hops, 1000);
  util::Rng rng(5);
  const double arrival = path.traverse(2.0, rng);
  EXPECT_NEAR(arrival, 2.0 + 3.0 * (8e-6 + 50e-6), 1e-12);
}

TEST(PathModel, TotalWaitVarianceIsSumOfHops) {
  std::vector<HopConfig> hops = {test_hop(0.3), test_hop(0.5)};
  PathModel path(hops, 1000);
  HopChannel h1(test_hop(0.3), 1000);
  HopChannel h2(test_hop(0.5), 1000);
  EXPECT_NEAR(path.total_wait_variance(),
              h1.wait_variance() + h2.wait_variance(), 1e-20);
}

TEST(PathModel, ScaleUtilizationAffectsAllHops) {
  std::vector<HopConfig> hops = {test_hop(0.2), test_hop(0.4)};
  PathModel path(hops, 1000);
  const double before = path.total_wait_variance();
  path.scale_utilization(2.0);
  EXPECT_GT(path.total_wait_variance(), before);
  path.scale_utilization(1.0);
  EXPECT_NEAR(path.total_wait_variance(), before, 1e-20);
}

TEST(PathModel, ScaleClampsBelowSaturation) {
  std::vector<HopConfig> hops = {test_hop(0.5)};
  PathModel path(hops, 1000);
  path.scale_utilization(10.0);  // would be rho = 5: must clamp < 1
  EXPECT_LT(path.hop(0).config().cross_utilization, 1.0);
}

TEST(PathModel, EmptyPathIsIdentity) {
  PathModel path({}, 1000);
  util::Rng rng(6);
  EXPECT_DOUBLE_EQ(path.traverse(3.5, rng), 3.5);
  EXPECT_DOUBLE_EQ(path.total_wait_variance(), 0.0);
}

TEST(HopChannel, InvalidConfigRejected) {
  HopConfig bad = test_hop(1.0);
  EXPECT_THROW(HopChannel(bad, 1000), linkpad::ContractViolation);
  HopConfig bad2 = test_hop(0.2);
  bad2.bandwidth_bps = 0.0;
  EXPECT_THROW(HopChannel(bad2, 1000), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::sim
