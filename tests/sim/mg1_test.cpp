#include "sim/mg1.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

TEST(Mg1WaitSampler, ZeroUtilizationNeverWaits) {
  Mg1WaitSampler s(0.0, 10e-6, ServiceModel::kDeterministic);
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(s.sample(rng), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_wait(), 0.0);
  EXPECT_DOUBLE_EQ(s.wait_variance(), 0.0);
}

TEST(Mg1WaitSampler, IdleProbabilityIsOneMinusRho) {
  Mg1WaitSampler s(0.3, 10e-6, ServiceModel::kDeterministic);
  util::Rng rng(2);
  int zero = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (s.sample(rng) == 0.0) ++zero;
  }
  EXPECT_NEAR(static_cast<double>(zero) / n, 0.7, 0.01);
}

TEST(Mg1WaitSampler, MeanMatchesPollaczekKhinchineMD1) {
  // M/D/1: E[W] = rho*S / (2(1-rho)).
  const double s_time = 8e-6;
  for (double rho : {0.2, 0.5}) {
    Mg1WaitSampler s(rho, s_time, ServiceModel::kDeterministic);
    EXPECT_NEAR(s.mean_wait(), rho * s_time / (2.0 * (1.0 - rho)), 1e-15);
  }
}

TEST(Mg1WaitSampler, MeanMatchesPollaczekKhinchineMM1) {
  // M/M/1: E[W] = rho*S / (1-rho).
  const double s_time = 8e-6;
  const double rho = 0.4;
  Mg1WaitSampler s(rho, s_time, ServiceModel::kExponential);
  EXPECT_NEAR(s.mean_wait(), rho * s_time / (1.0 - rho), 1e-15);
}

struct Mg1Case {
  double rho;
  ServiceModel model;
};

class Mg1MomentSweep
    : public ::testing::TestWithParam<std::tuple<double, ServiceModel>> {};

TEST_P(Mg1MomentSweep, SampleMomentsMatchClosedForms) {
  const auto [rho, model] = GetParam();
  const double service = 10e-6;
  Mg1WaitSampler s(rho, service, model);
  util::Rng rng(42);
  stats::RunningStats rs;
  const int n = 400000;
  for (int i = 0; i < n; ++i) rs.add(s.sample(rng));
  EXPECT_NEAR(rs.mean(), s.mean_wait(), 0.02 * s.mean_wait() + 1e-9);
  EXPECT_NEAR(rs.variance(), s.wait_variance(),
              0.05 * s.wait_variance() + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    RhoAndService, Mg1MomentSweep,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7),
                       ::testing::Values(ServiceModel::kDeterministic,
                                         ServiceModel::kExponential,
                                         ServiceModel::kTrimodal)));

TEST(Mg1WaitSampler, VarianceIncreasesWithRho) {
  const double service = 10e-6;
  double prev = -1.0;
  for (double rho : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    Mg1WaitSampler s(rho, service, ServiceModel::kDeterministic);
    EXPECT_GT(s.wait_variance(), prev);
    prev = s.wait_variance();
  }
}

TEST(Mg1WaitSampler, HeavierServiceTailsWait) {
  // At the same rho and E[S], exponential service waits longer than
  // deterministic (E[S²] doubles).
  Mg1WaitSampler det(0.4, 10e-6, ServiceModel::kDeterministic);
  Mg1WaitSampler expo(0.4, 10e-6, ServiceModel::kExponential);
  EXPECT_GT(expo.mean_wait(), det.mean_wait());
  EXPECT_GT(expo.wait_variance(), det.wait_variance());
}

TEST(Mg1WaitSampler, SetRhoUpdatesMoments) {
  Mg1WaitSampler s(0.1, 10e-6, ServiceModel::kDeterministic);
  const double before = s.wait_variance();
  s.set_rho(0.5);
  EXPECT_GT(s.wait_variance(), before);
  EXPECT_DOUBLE_EQ(s.rho(), 0.5);
}

TEST(Mg1WaitSampler, InvalidParamsRejected) {
  EXPECT_THROW(Mg1WaitSampler(1.0, 1e-6, ServiceModel::kDeterministic),
               linkpad::ContractViolation);
  EXPECT_THROW(Mg1WaitSampler(-0.1, 1e-6, ServiceModel::kDeterministic),
               linkpad::ContractViolation);
  EXPECT_THROW(Mg1WaitSampler(0.5, 0.0, ServiceModel::kDeterministic),
               linkpad::ContractViolation);
}

TEST(TrimodalMix, MeanBytesMatchesWeights) {
  EXPECT_NEAR(TrimodalMix::mean_bytes(), 0.5 * 40 + 0.3 * 576 + 0.2 * 1500,
              1e-12);
}

}  // namespace
}  // namespace linkpad::sim
