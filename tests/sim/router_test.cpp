// Packet-level router tests, including the KEY validation of this repo's
// simulation shortcut: the analytic M/G/1 stationary-wait sampler
// (Mg1WaitSampler) must agree with the fully simulated packet-level router
// for the monitored stream's queueing delays.
#include "sim/router.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/mg1.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {
namespace {

struct Catcher : PacketSink {
  std::vector<Seconds> times;
  std::vector<PacketId> ids;
  void on_packet(const Packet& p, Seconds now) override {
    times.push_back(now);
    ids.push_back(p.id);
  }
};

Packet monitored_packet(PacketId id, int bytes = 1000) {
  Packet p;
  p.id = id;
  p.kind = PacketKind::kDummy;
  p.flow = FlowId::kMonitored;
  p.size_bytes = bytes;
  return p;
}

TEST(Router, ForwardsMonitoredTrafficInOrder) {
  Simulation sim;
  Catcher out;
  Router router(sim, "r", 1e9, out);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * 0.001, [&router, &sim, i] {
      router.on_packet(monitored_packet(i), sim.now());
    });
  }
  sim.run();
  ASSERT_EQ(out.ids.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(out.ids[i], i);
}

TEST(Router, ServiceTimeMatchesBandwidth) {
  Simulation sim;
  Catcher out;
  Router router(sim, "r", 1e8, out);  // 100 Mbit/s
  sim.schedule_at(1.0, [&] { router.on_packet(monitored_packet(0, 1250), sim.now()); });
  sim.run();
  // 1250 B = 10000 bits at 1e8 bps = 100 us.
  ASSERT_EQ(out.times.size(), 1u);
  EXPECT_NEAR(out.times[0], 1.0 + 100e-6, 1e-12);
}

TEST(Router, CrossTrafficIsServedButNotForwarded) {
  Simulation sim;
  Catcher out;
  Router router(sim, "r", 1e9, out);
  Packet cross;
  cross.flow = FlowId::kCrossHop;
  cross.kind = PacketKind::kCross;
  cross.size_bytes = 500;
  sim.schedule_at(0.0, [&] { router.on_packet(cross, sim.now()); });
  sim.run();
  EXPECT_EQ(out.times.size(), 0u);
  EXPECT_EQ(router.serviced(), 1u);
}

TEST(Router, QueueCapacityDropsExcess) {
  Simulation sim;
  Catcher out;
  Router router(sim, "r", 1e3, out, /*queue_capacity=*/2);  // very slow link
  sim.schedule_at(0.0, [&] {
    for (int i = 0; i < 10; ++i) router.on_packet(monitored_packet(i), sim.now());
  });
  sim.run_until(1.0);
  EXPECT_GT(router.dropped(), 0u);
}

TEST(Router, BusyLinkDelaysSecondPacket) {
  Simulation sim;
  Catcher out;
  Router router(sim, "r", 1e8, out);
  sim.schedule_at(0.0, [&] {
    router.on_packet(monitored_packet(0, 1250), sim.now());
    router.on_packet(monitored_packet(1, 1250), sim.now());
  });
  sim.run();
  ASSERT_EQ(out.times.size(), 2u);
  EXPECT_NEAR(out.times[1] - out.times[0], 100e-6, 1e-12);
}

// ---- The validation experiment: analytic PK sampler vs packet-level DES --

struct WaitProbe {
  double mean = 0.0;
  double variance = 0.0;
};

WaitProbe measure_packet_level_wait(double rho, double bandwidth,
                                    int cross_bytes, std::uint64_t seed) {
  Simulation sim;
  util::Xoshiro256pp rng(seed);
  Catcher out;
  Router router(sim, "r", bandwidth, out);

  const double cross_service = cross_bytes * 8.0 / bandwidth;
  const double cross_rate = rho / cross_service;
  CrossTrafficProcess cross(sim, router, cross_rate, cross_bytes, rng);
  cross.start();

  // Monitored probes arrive every 10 ms (like the padded stream).
  const int probes = 40000;
  for (int i = 0; i < probes; ++i) {
    sim.schedule_at(0.5 + i * 0.01, [&router, &sim, i] {
      router.on_packet(monitored_packet(i), sim.now());
    });
  }
  sim.run_until(0.5 + probes * 0.01 + 1.0);

  WaitProbe probe;
  probe.mean = router.monitored_wait().mean();
  probe.variance = router.monitored_wait().variance();
  return probe;
}

class AnalyticVsPacketLevel : public ::testing::TestWithParam<double> {};

TEST_P(AnalyticVsPacketLevel, StationaryWaitMomentsAgree) {
  const double rho = GetParam();
  const double bandwidth = 1e9;
  const int cross_bytes = 1000;

  const auto measured =
      measure_packet_level_wait(rho, bandwidth, cross_bytes, 77);
  Mg1WaitSampler analytic(rho, cross_bytes * 8.0 / bandwidth,
                          ServiceModel::kDeterministic);

  EXPECT_NEAR(measured.mean, analytic.mean_wait(),
              0.05 * analytic.mean_wait() + 3e-8)
      << "rho " << rho;
  EXPECT_NEAR(measured.variance, analytic.wait_variance(),
              0.10 * analytic.wait_variance() + 1e-14)
      << "rho " << rho;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, AnalyticVsPacketLevel,
                         ::testing::Values(0.1, 0.3, 0.5));

}  // namespace
}  // namespace linkpad::sim
