#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace linkpad::util {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test parser");
  p.add_flag("--quick", "fast mode");
  p.add_option("--sigma", "1.5", "a number");
  p.add_option("--count", "42", "an integer");
  p.add_option("--name", "default", "a string");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_FALSE(p.flag("--quick"));
  EXPECT_DOUBLE_EQ(p.num("--sigma"), 1.5);
  EXPECT_EQ(p.integer("--count"), 42);
  EXPECT_EQ(p.str("--name"), "default");
}

TEST(ArgParser, ParsesSpaceSeparatedValues) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--sigma", "2.75", "--name", "abc"}));
  EXPECT_DOUBLE_EQ(p.num("--sigma"), 2.75);
  EXPECT_EQ(p.str("--name"), "abc");
}

TEST(ArgParser, ParsesEqualsSyntax) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--count=7"}));
  EXPECT_EQ(p.integer("--count"), 7);
}

TEST(ArgParser, FlagPresenceSetsTrue) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--quick"}));
  EXPECT_TRUE(p.flag("--quick"));
}

TEST(ArgParser, RejectsUnknownArgument) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--bogus"}));
}

TEST(ArgParser, RejectsMissingValue) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--sigma"}));
}

TEST(ArgParser, RejectsValueOnFlag) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--quick=yes"}));
}

TEST(ArgParser, HelpReturnsFalse) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--help"}));
}

TEST(ArgParser, NonNumericValueThrowsOnAccess) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--sigma", "abc"}));
  EXPECT_THROW(p.num("--sigma"), std::invalid_argument);
}

TEST(ArgParser, UndeclaredOptionAccessThrows) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.str("--nope"), std::invalid_argument);
}

TEST(ArgParser, HelpTextMentionsAllOptions) {
  auto p = make_parser();
  const auto text = p.help();
  EXPECT_NE(text.find("--quick"), std::string::npos);
  EXPECT_NE(text.find("--sigma"), std::string::npos);
  EXPECT_NE(text.find("--count"), std::string::npos);
}

TEST(ParseDoubleList, SplitsOnCommas) {
  const auto xs = parse_double_list("1,2.5,10");
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 1.0);
  EXPECT_DOUBLE_EQ(xs[1], 2.5);
  EXPECT_DOUBLE_EQ(xs[2], 10.0);
}

TEST(ParseDoubleList, IgnoresEmptySegments) {
  const auto xs = parse_double_list("1,,2,");
  ASSERT_EQ(xs.size(), 2u);
}

}  // namespace
}  // namespace linkpad::util
