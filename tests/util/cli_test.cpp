#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace linkpad::util {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test parser");
  p.add_flag("--quick", "fast mode");
  p.add_option("--sigma", "1.5", "a number");
  p.add_option("--count", "42", "an integer");
  p.add_option("--name", "default", "a string");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_FALSE(p.flag("--quick"));
  EXPECT_DOUBLE_EQ(p.num("--sigma"), 1.5);
  EXPECT_EQ(p.integer("--count"), 42);
  EXPECT_EQ(p.str("--name"), "default");
}

TEST(ArgParser, ParsesSpaceSeparatedValues) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--sigma", "2.75", "--name", "abc"}));
  EXPECT_DOUBLE_EQ(p.num("--sigma"), 2.75);
  EXPECT_EQ(p.str("--name"), "abc");
}

TEST(ArgParser, ParsesEqualsSyntax) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--count=7"}));
  EXPECT_EQ(p.integer("--count"), 7);
}

TEST(ArgParser, FlagPresenceSetsTrue) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--quick"}));
  EXPECT_TRUE(p.flag("--quick"));
}

TEST(ArgParser, RejectsUnknownArgument) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--bogus"}));
}

TEST(ArgParser, RejectsMissingValue) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--sigma"}));
}

TEST(ArgParser, RejectsValueOnFlag) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--quick=yes"}));
}

TEST(ArgParser, HelpReturnsFalse) {
  auto p = make_parser();
  EXPECT_FALSE(parse(p, {"--help"}));
}

TEST(ArgParser, NonNumericValueThrowsOnAccess) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {"--sigma", "abc"}));
  EXPECT_THROW(p.num("--sigma"), std::invalid_argument);
}

TEST(ArgParser, UndeclaredOptionAccessThrows) {
  auto p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.str("--nope"), std::invalid_argument);
}

TEST(ArgParser, HelpTextMentionsAllOptions) {
  auto p = make_parser();
  const auto text = p.help();
  EXPECT_NE(text.find("--quick"), std::string::npos);
  EXPECT_NE(text.find("--sigma"), std::string::npos);
  EXPECT_NE(text.find("--count"), std::string::npos);
}

ArgParser make_typed_parser() {
  ArgParser p("prog", "typed test parser");
  p.add_int("--count", 42, "an integer");
  p.add_num("--sigma", 1.5, "a number");
  return p;
}

TEST(ArgParserTyped, TypedDefaultsApplyAndParse) {
  auto p = make_typed_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.integer("--count"), 42);
  EXPECT_DOUBLE_EQ(p.num("--sigma"), 1.5);
  ASSERT_TRUE(parse(p, {"--count", "-7", "--sigma=2.75"}));
  EXPECT_EQ(p.integer("--count"), -7);
  EXPECT_DOUBLE_EQ(p.num("--sigma"), 2.75);
}

TEST(ArgParserTyped, BadValuesFailAtParseTimeNotOnAccess) {
  // Typed options reject the bad token while argv is being consumed —
  // the run never starts with a typo'd parameter.
  auto p = make_typed_parser();
  EXPECT_FALSE(parse(p, {"--count", "abc"}));
  auto q = make_typed_parser();
  EXPECT_FALSE(parse(q, {"--count", "12x"}));
  auto r = make_typed_parser();
  EXPECT_FALSE(parse(r, {"--sigma=fast"}));
  // A float is not an integer.
  auto s = make_typed_parser();
  EXPECT_FALSE(parse(s, {"--count", "1.5"}));
  // But an integer is a fine number, and scientific notation parses.
  auto t = make_typed_parser();
  EXPECT_TRUE(parse(t, {"--sigma", "3"}));
  EXPECT_DOUBLE_EQ(t.num("--sigma"), 3.0);
  auto u = make_typed_parser();
  EXPECT_TRUE(parse(u, {"--sigma", "1e-3"}));
  EXPECT_DOUBLE_EQ(u.num("--sigma"), 1e-3);
}

TEST(ArgParserTyped, HelpShowsTypedDefaults) {
  const auto text = make_typed_parser().help();
  EXPECT_NE(text.find("<int = 42>"), std::string::npos);
  EXPECT_NE(text.find("<num = 1.5>"), std::string::npos);
}

TEST(ParseDoubleList, SplitsOnCommas) {
  const auto xs = parse_double_list("1,2.5,10");
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 1.0);
  EXPECT_DOUBLE_EQ(xs[1], 2.5);
  EXPECT_DOUBLE_EQ(xs[2], 10.0);
}

TEST(ParseDoubleList, IgnoresEmptySegments) {
  const auto xs = parse_double_list("1,,2,");
  ASSERT_EQ(xs.size(), 2u);
}

}  // namespace
}  // namespace linkpad::util
