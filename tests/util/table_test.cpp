#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace linkpad::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"10", "20"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"v"});
  t.add_numeric_row({0.123456}, 3);
  EXPECT_NE(t.to_string().find("0.123"), std::string::npos);
}

TEST(TextTable, CsvOutputHasCommasAndNewlines) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TextTable, ColumnsAlignAcrossRows) {
  TextTable t({"name", "v"});
  t.add_row({"short", "1"});
  t.add_row({"much-longer-name", "2"});
  const auto s = t.to_string();
  // Both data rows must place the second column at the same offset.
  const auto line1_start = s.find("short");
  const auto line2_start = s.find("much-longer-name");
  const auto col1 = s.find('1', line1_start) - line1_start;
  const auto col2 = s.find('2', line2_start) - line2_start;
  EXPECT_EQ(col1, col2);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
}

TEST(FmtSci, ScientificNotation) {
  const auto s = fmt_sci(4.2e11, 1);
  EXPECT_NE(s.find("e+11"), std::string::npos);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

}  // namespace
}  // namespace linkpad::util
