#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace linkpad::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, HandlesZeroItems) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, GrainLargerThanNRunsInline) {
  std::vector<int> hits(10, 0);
  parallel_for(10, [&](std::size_t i) { hits[i]++; }, /*grain=*/100);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, CollectsResultsInOrder) {
  auto out = parallel_map<int>(1000, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelFor, ResultIndependentOfGrain) {
  const std::size_t n = 5000;
  std::vector<double> a(n), b(n);
  parallel_for(n, [&](std::size_t i) { a[i] = static_cast<double>(i) * 0.5; }, 1);
  parallel_for(n, [&](std::size_t i) { b[i] = static_cast<double>(i) * 0.5; }, 128);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace linkpad::util
