#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace linkpad::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, HandlesZeroItems) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, GrainLargerThanNRunsInline) {
  std::vector<int> hits(10, 0);
  parallel_for(10, [&](std::size_t i) { hits[i]++; }, /*grain=*/100);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, CollectsResultsInOrder) {
  auto out = parallel_map<int>(1000, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelFor, ResultIndependentOfGrain) {
  const std::size_t n = 5000;
  std::vector<double> a(n), b(n);
  parallel_for(n, [&](std::size_t i) { a[i] = static_cast<double>(i) * 0.5; }, 1);
  parallel_for(n, [&](std::size_t i) { b[i] = static_cast<double>(i) * 0.5; }, 128);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, NestedDispatchRunsInlineInsteadOfDeadlocking) {
  // A parallel_for issued from inside a task of the SAME pool must run
  // inline on that worker — waiting on the pool would deadlock because the
  // outer task itself still counts as in flight.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 4, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_worker_thread());
    parallel_for(pool, 16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

// ------------------------------------------------------ chunked dispatch

TEST(ParallelForChunks, CoversEveryIndexOnceAtAnyGrain) {
  ThreadPool pool(3);
  // Grain boundaries: grain 1, a grain that divides n, one that leaves a
  // ragged tail, one equal to n, and one past it.
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                              std::size_t{65}}) {
    for (const std::size_t grain :
         {std::size_t{1}, std::size_t{3}, std::size_t{16}, n, n + 9}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for_chunks(pool, n, grain,
                          [&](std::size_t, std::size_t begin, std::size_t end) {
                            ASSERT_LE(end, n);
                            // Chunks are grain-aligned: the partition derives
                            // from (n, grain) alone, never the pool.
                            EXPECT_EQ(begin % grain, 0u);
                            for (std::size_t i = begin; i < end; ++i) {
                              hits[i].fetch_add(1);
                            }
                          });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain;
      }
    }
  }
}

TEST(ParallelForChunks, SlotIdsStayBelowChunkSlots) {
  ThreadPool pool(4);
  const std::size_t n = 100, grain = 7;
  const std::size_t slots = chunk_slots(pool, n, grain);
  std::atomic<std::size_t> max_slot{0};
  parallel_for_chunks(pool, n, grain,
                      [&](std::size_t slot, std::size_t, std::size_t) {
                        std::size_t seen = max_slot.load();
                        while (slot > seen &&
                               !max_slot.compare_exchange_weak(seen, slot)) {
                        }
                      });
  EXPECT_LT(max_slot.load(), slots);
}

TEST(ParallelForChunks, PerSlotScratchSurvivesAcrossChunks) {
  // The point of the chunked shape: slot-indexed scratch is touched by one
  // task only, so per-chunk partial sums need no synchronization and their
  // total is exact.
  ThreadPool pool(4);
  const std::size_t n = 1000, grain = 9;
  std::vector<std::uint64_t> partial(chunk_slots(pool, n, grain), 0);
  parallel_for_chunks(pool, n, grain,
                      [&](std::size_t slot, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          partial[slot] += i;
                        }
                      });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), std::uint64_t{0}),
            static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelForChunks, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_for_chunks(pool, 100, 4,
                          [](std::size_t, std::size_t begin, std::size_t) {
                            if (begin == 56) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
}

TEST(ParallelForChunks, NestedDispatchRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(60);
  parallel_for_chunks(pool, 3, 1, [&](std::size_t, std::size_t outer,
                                      std::size_t) {
    parallel_for_chunks(pool, 20, 4,
                        [&](std::size_t slot, std::size_t begin,
                            std::size_t end) {
                          EXPECT_EQ(slot, 0u);  // inline fallback: one slot
                          for (std::size_t i = begin; i < end; ++i) {
                            hits[outer * 20 + i].fetch_add(1);
                          }
                        });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForChunks, HandlesZeroItems) {
  ThreadPool pool(2);
  parallel_for_chunks(pool, 0, 8,
                      [](std::size_t, std::size_t, std::size_t) {
                        FAIL() << "body must not run";
                      });
}

// ----------------------------------------------------------- tree_reduce

TEST(TreeReduce, MatchesSerialLeftFoldForConcatenation) {
  // Adjacent-pair merging keeps element order, so reducing strings by
  // concatenation must reproduce the in-order join at every size — the
  // property the population reduction's ordered chunk merges rely on.
  for (std::size_t n = 1; n <= 9; ++n) {
    std::vector<std::string> items;
    std::string expected;
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(std::string(1, static_cast<char>('a' + i)));
      expected += items.back();
    }
    const std::string reduced = tree_reduce(
        std::move(items),
        [](std::string& left, std::string& right) { left += right; });
    EXPECT_EQ(reduced, expected) << n;
  }
}

TEST(TreeReduce, FixedShapeIsDeterministic) {
  // The merge ORDER (tree shape) is a pure function of the item count:
  // tagging each merge must give the same trace on every run.
  auto trace = [] {
    std::vector<std::string> items = {"0", "1", "2", "3", "4"};
    std::vector<std::string> log;
    (void)tree_reduce(std::move(items),
                      [&](std::string& left, std::string& right) {
                        log.push_back(left + "+" + right);
                        left += right;
                      });
    return log;
  };
  const auto first = trace();
  EXPECT_EQ(first, trace());
  // Five leaves: (0+1)(2+3) carry 4, then (01+23), then (0123+4).
  const std::vector<std::string> expected = {"0+1", "2+3", "01+23", "0123+4"};
  EXPECT_EQ(first, expected);
}

TEST(TreeReduce, RejectsEmptyInput) {
  EXPECT_THROW(tree_reduce(std::vector<int>{}, [](int& a, int& b) { a += b; }),
               linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::util
