#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace linkpad::util {
namespace {

TEST(AsciiPlot, RendersSingleSeries) {
  Series s{"line", {0, 1, 2, 3}, {0, 1, 4, 9}};
  PlotOptions opt;
  const auto out = render_plot({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("line"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesYieldsPlaceholder) {
  const auto out = render_plot({}, PlotOptions{});
  EXPECT_EQ(out, "(empty plot)\n");
}

TEST(AsciiPlot, TwoSeriesUseDistinctGlyphs) {
  Series a{"a", {0, 1}, {0, 1}};
  Series b{"b", {0, 1}, {1, 0}};
  const auto out = render_plot({a, b}, PlotOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiPlot, LogAxesHandlePositiveData) {
  Series s{"exp", {1, 10, 100, 1000}, {1e2, 1e5, 1e8, 1e11}};
  PlotOptions opt;
  opt.log_x = true;
  opt.log_y = true;
  const auto out = render_plot({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, FixedYRangeApplies) {
  Series s{"flat", {0, 1}, {0.5, 0.5}};
  PlotOptions opt;
  opt.y_fixed = true;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  const auto out = render_plot({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, RejectsTinyCanvas) {
  PlotOptions opt;
  opt.width = 4;
  opt.height = 1;
  EXPECT_THROW(render_plot({}, opt), ContractViolation);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  Series s{"c", {1, 1, 1}, {2, 2, 2}};
  const auto out = render_plot({s}, PlotOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, LabelsAppearInOutput) {
  Series s{"s", {0, 1}, {0, 1}};
  PlotOptions opt;
  opt.x_label = "the-x-axis";
  opt.y_label = "the-y-axis";
  const auto out = render_plot({s}, opt);
  EXPECT_NE(out.find("the-x-axis"), std::string::npos);
  EXPECT_NE(out.find("the-y-axis"), std::string::npos);
}

}  // namespace
}  // namespace linkpad::util
