#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace linkpad::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, MixIsStateless) {
  EXPECT_EQ(SplitMix64::mix(123), SplitMix64::mix(123));
  EXPECT_NE(SplitMix64::mix(123), SplitMix64::mix(124));
}

TEST(Xoshiro256pp, ReproducibleBySeed) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, Uniform01InHalfOpenRange) {
  Xoshiro256pp rng(11);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256pp, Uniform01MeanAndVariance) {
  Xoshiro256pp rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Xoshiro256pp, UniformRangeRespectsBounds) {
  Xoshiro256pp rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Xoshiro256pp, JumpProducesDisjointStream) {
  Xoshiro256pp a(29);
  Xoshiro256pp b(29);
  b.jump();
  // After a jump, the two engines should not produce the same values.
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngFactory, SameStreamSameSequence) {
  RngFactory f(99);
  auto a = f.make(5);
  auto b = f.make(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngFactory, DifferentStreamsDiffer) {
  RngFactory f(99);
  auto a = f.make(5);
  auto b = f.make(6);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngFactory, TwoLevelStreamsAreIndependentOfOrder) {
  RngFactory f(7);
  auto a1 = f.make(3, 4);
  auto a2 = f.make(3, 4);
  EXPECT_EQ(a1(), a2());
  auto b = f.make(4, 3);
  auto c = f.make(3, 4);
  // (3,4) and (4,3) must map to different streams.
  EXPECT_NE(b(), c());
}

TEST(RngFactory, AdjacentStreamsLookUncorrelated) {
  // First outputs across adjacent stream ids should not repeat.
  RngFactory f(1234);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 1000; ++s) firsts.insert(f.make(s)());
  EXPECT_EQ(firsts.size(), 1000u);
}

}  // namespace
}  // namespace linkpad::util
