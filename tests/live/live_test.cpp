// Live loopback tests: real sockets, real timers, real scheduler noise.
// Assertions are deliberately loose — the host's jitter is not under our
// control — but the STRUCTURAL properties of a padding gateway must hold.
// Set LINKPAD_SKIP_LIVE=1 to skip (e.g. sandboxes without loopback).
#include "live/live_testbed.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "live/udp_channel.hpp"

namespace linkpad::live {
namespace {

bool live_disabled() {
  const char* env = std::getenv("LINKPAD_SKIP_LIVE");
  return env != nullptr && env[0] == '1';
}

#define SKIP_IF_DISABLED()                              \
  do {                                                  \
    if (live_disabled()) GTEST_SKIP() << "LINKPAD_SKIP_LIVE=1"; \
  } while (false)

TEST(UdpChannel, LoopbackSendReceive) {
  SKIP_IF_DISABLED();
  auto rx = UdpSocket::bind_loopback();
  auto tx = UdpSocket::connect_loopback(rx.port());
  const std::array<std::byte, 4> payload = {std::byte{1}, std::byte{2},
                                            std::byte{3}, std::byte{4}};
  tx.send(payload);
  std::array<std::byte, 64> buffer{};
  const auto got = rx.recv(buffer, std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 4u);
  EXPECT_EQ(buffer[2], std::byte{3});
}

TEST(UdpChannel, RecvTimesOutWhenSilent) {
  SKIP_IF_DISABLED();
  auto rx = UdpSocket::bind_loopback();
  std::array<std::byte, 16> buffer{};
  const auto got = rx.recv(buffer, std::chrono::milliseconds(50));
  EXPECT_FALSE(got.has_value());
}

TEST(LiveTestbed, CitRunDeliversPackets) {
  SKIP_IF_DISABLED();
  LiveGatewayConfig cfg;
  cfg.tau = 1e-3;
  cfg.payload_rate = 200.0;
  cfg.packet_count = 600;
  const auto result = run_live_experiment(cfg, 30000);

  // Loopback UDP rarely drops, but allow a small margin.
  EXPECT_GE(result.received, cfg.packet_count * 95 / 100);
  EXPECT_EQ(result.gateway.payload_sent + result.gateway.dummy_sent,
            cfg.packet_count);
  EXPECT_GT(result.gateway.payload_sent, 0u);
  EXPECT_GT(result.gateway.dummy_sent, 0u);
}

TEST(LiveTestbed, PiatMeanTracksTimerInterval) {
  SKIP_IF_DISABLED();
  LiveGatewayConfig cfg;
  cfg.tau = 2e-3;
  cfg.payload_rate = 100.0;
  cfg.packet_count = 500;
  const auto result = run_live_experiment(cfg, 30000);
  ASSERT_GT(result.piats.size(), 100u);
  // Within 30%: schedulers overshoot sleeps, never undershoot long-run rate
  // by much.
  EXPECT_NEAR(result.piat_summary.mean, 2e-3, 0.6e-3);
}

TEST(LiveTestbed, VitSpreadsPiatsWiderThanCit) {
  SKIP_IF_DISABLED();
  // Container hosts overshoot sleep_until() by up to ~1 ms, so the CIT
  // baseline already carries large jitter; the VIT spread must dominate it
  // clearly, hence tau = 6 ms with sigma_T = 3 ms (Var(T) = 9e-6 s²).
  LiveGatewayConfig cit;
  cit.tau = 6e-3;
  cit.payload_rate = 100.0;
  cit.packet_count = 300;
  const auto cit_result = run_live_experiment(cit, 30000);

  LiveGatewayConfig vit = cit;
  vit.sigma_timer = 3e-3;
  const auto vit_result = run_live_experiment(vit, 30000);

  ASSERT_GT(cit_result.piats.size(), 100u);
  ASSERT_GT(vit_result.piats.size(), 100u);
  EXPECT_GT(vit_result.piat_summary.variance,
            2.0 * cit_result.piat_summary.variance);
}

TEST(LiveTestbed, PayloadAccountingConsistent) {
  SKIP_IF_DISABLED();
  LiveGatewayConfig cfg;
  cfg.tau = 1e-3;
  cfg.payload_rate = 500.0;  // half the wire rate of 1000 pps
  cfg.packet_count = 1000;
  const auto result = run_live_experiment(cfg, 30000);
  const double frac = static_cast<double>(result.gateway.payload_sent) /
                      static_cast<double>(cfg.packet_count);
  EXPECT_NEAR(frac, 0.5, 0.15);
}

}  // namespace
}  // namespace linkpad::live
