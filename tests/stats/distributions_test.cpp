#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::stats {
namespace {

template <typename Dist>
Summary sample_summary(const Dist& dist, int n, std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  RunningStats rs;
  for (int i = 0; i < n; ++i) rs.add(dist.sample(rng));
  Summary s;
  s.count = rs.count();
  s.mean = rs.mean();
  s.variance = rs.variance();
  s.min = rs.min();
  s.max = rs.max();
  s.skewness = rs.skewness();
  return s;
}

TEST(Normal, PdfCdfKnownValues) {
  Normal d(0.0, 1.0);
  EXPECT_NEAR(d.pdf(0.0), 0.39894228, 1e-7);
  EXPECT_NEAR(d.cdf(0.0), 0.5, 1e-12);
  Normal d2(3.0, 2.0);
  EXPECT_NEAR(d2.cdf(3.0), 0.5, 1e-12);
  EXPECT_NEAR(d2.cdf(5.0), 0.8413447, 1e-6);
}

TEST(Normal, LogPdfConsistentWithPdf) {
  Normal d(1.0, 0.3);
  for (double x : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(std::exp(d.log_pdf(x)), d.pdf(x), 1e-12);
  }
}

TEST(Normal, QuantileInvertsCdf) {
  Normal d(-2.0, 4.0);
  for (double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-10);
  }
}

TEST(Normal, SampleMomentsMatch) {
  const auto s = sample_summary(Normal(5.0, 3.0), 200000, 1);
  EXPECT_NEAR(s.mean, 5.0, 0.05);
  EXPECT_NEAR(s.variance, 9.0, 0.15);
  EXPECT_NEAR(s.skewness, 0.0, 0.05);
}

TEST(HalfNormal, MomentsMatchClosedForms) {
  const double sigma = 2.0;
  HalfNormal d(sigma);
  EXPECT_NEAR(d.mean(), sigma * std::sqrt(2.0 / M_PI), 1e-12);
  EXPECT_NEAR(d.variance(), sigma * sigma * (1.0 - 2.0 / M_PI), 1e-12);
  const auto s = sample_summary(d, 200000, 2);
  EXPECT_NEAR(s.mean, d.mean(), 0.02);
  EXPECT_NEAR(s.variance, d.variance(), 0.05);
  EXPECT_GE(s.min, 0.0);
}

TEST(HalfNormal, PdfZeroBelowZero) {
  HalfNormal d(1.0);
  EXPECT_DOUBLE_EQ(d.pdf(-0.1), 0.0);
  EXPECT_NEAR(d.pdf(0.0), std::sqrt(2.0 / M_PI), 1e-12);
}

TEST(TruncatedNormal, SamplesRespectLowerBound) {
  TruncatedNormal d(1.0, 2.0, 0.5);
  util::Xoshiro256pp rng(3);
  for (int i = 0; i < 20000; ++i) ASSERT_GE(d.sample(rng), 0.5);
}

TEST(TruncatedNormal, MomentsMatchClosedForm) {
  TruncatedNormal d(10.0, 5.0, 8.0);
  const auto s = sample_summary(d, 300000, 4);
  EXPECT_NEAR(s.mean, d.mean(), 0.03);
  EXPECT_NEAR(s.variance, d.variance(), 0.2);
}

TEST(TruncatedNormal, NegligibleTruncationMatchesNormal) {
  // Lower bound 10 sigma below the mean: behaves like a plain normal.
  TruncatedNormal d(10e-3, 100e-6, 10e-3 - 1.0);
  EXPECT_NEAR(d.mean(), 10e-3, 1e-9);
  EXPECT_NEAR(d.variance(), 1e-8, 1e-12);
  const auto s = sample_summary(d, 100000, 5);
  EXPECT_NEAR(s.mean, 10e-3, 2e-6);
}

TEST(TruncatedNormal, DeepTruncationStillCorrect) {
  // Mean far BELOW the bound: all mass in the upper tail.
  TruncatedNormal d(0.0, 1.0, 3.0);
  const auto s = sample_summary(d, 100000, 6);
  EXPECT_GE(s.min, 3.0);
  EXPECT_NEAR(s.mean, d.mean(), 0.02);
  // Tail mean of N(0,1) above 3 is phi(3)/Q(3) ~ 3.2831
  EXPECT_NEAR(d.mean(), 3.2831, 0.001);
}

TEST(Exponential, MomentsAndMemorylessCdf) {
  Exponential d(0.5);
  EXPECT_NEAR(d.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  const auto s = sample_summary(d, 200000, 7);
  EXPECT_NEAR(s.mean, 0.5, 0.01);
  EXPECT_NEAR(s.variance, 0.25, 0.01);
  EXPECT_GE(s.min, 0.0);
}

TEST(Uniform, MomentsAndSupport) {
  Uniform d(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_NEAR(d.variance(), 16.0 / 12.0, 1e-12);
  const auto s = sample_summary(d, 100000, 8);
  EXPECT_NEAR(s.mean, 4.0, 0.02);
  EXPECT_GE(s.min, 2.0);
  EXPECT_LT(s.max, 6.0);
}

TEST(Pareto, TailIsHeavy) {
  Pareto d(1.0, 1.5);
  EXPECT_NEAR(d.mean(), 3.0, 1e-12);
  const auto s = sample_summary(d, 400000, 9);
  EXPECT_NEAR(s.mean, 3.0, 0.2);
  EXPECT_GE(s.min, 1.0);
  EXPECT_GT(s.max, 50.0);  // heavy tail produces extreme values
}

TEST(Poisson, SmallLambdaMoments) {
  util::Xoshiro256pp rng(10);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    rs.add(static_cast<double>(sample_poisson(rng, 3.0)));
  }
  EXPECT_NEAR(rs.mean(), 3.0, 0.03);
  EXPECT_NEAR(rs.variance(), 3.0, 0.06);
}

TEST(Poisson, LargeLambdaMoments) {
  util::Xoshiro256pp rng(11);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) {
    rs.add(static_cast<double>(sample_poisson(rng, 200.0)));
  }
  EXPECT_NEAR(rs.mean(), 200.0, 0.5);
  EXPECT_NEAR(rs.variance(), 200.0, 5.0);
}

TEST(Poisson, ZeroLambdaIsZero) {
  util::Xoshiro256pp rng(12);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

TEST(ChiSquared, PdfIntegratesToCdf) {
  ChiSquared d(4.0);
  // Riemann sum of pdf over [0, 8] vs cdf(8).
  double mass = 0.0;
  const int steps = 8000;
  for (int i = 0; i < steps; ++i) {
    mass += d.pdf((i + 0.5) * 8.0 / steps) * 8.0 / steps;
  }
  EXPECT_NEAR(mass, d.cdf(8.0), 1e-5);
}

TEST(ChiSquared, MeanVariance) {
  ChiSquared d(7.0);
  EXPECT_DOUBLE_EQ(d.mean(), 7.0);
  EXPECT_DOUBLE_EQ(d.variance(), 14.0);
}

TEST(Distributions, InvalidParametersRejected) {
  EXPECT_THROW(Normal(0.0, 0.0), ContractViolation);
  EXPECT_THROW(HalfNormal(-1.0), ContractViolation);
  EXPECT_THROW(Exponential(0.0), ContractViolation);
  EXPECT_THROW(Uniform(1.0, 1.0), ContractViolation);
  EXPECT_THROW(Pareto(0.0, 1.0), ContractViolation);
  EXPECT_THROW(ChiSquared(0.0), ContractViolation);
}

TEST(StandardNormal, SamplerMomentsMatch) {
  util::Xoshiro256pp rng(13);
  RunningStats rs;
  for (int i = 0; i < 300000; ++i) rs.add(sample_standard_normal(rng));
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.variance(), 1.0, 0.02);
  EXPECT_NEAR(rs.excess_kurtosis(), 0.0, 0.05);
}


namespace ziggurat_acceptance {

/// Two-sample KS distance between sorted samples (local helper; the stats
/// EDF header is exercised elsewhere).
double ks_sorted(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    const double fa = double(i) / a.size();
    const double fb = double(j) / b.size();
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

}  // namespace ziggurat_acceptance

TEST(Ziggurat, NormalMatchesPolarByKsAndMoments) {
  constexpr int kN = 100000;
  util::Xoshiro256pp rng_a(71), rng_b(72);
  std::vector<double> zig(kN), polar(kN);
  RunningStats rs;
  for (int i = 0; i < kN; ++i) {
    zig[i] = sample_standard_normal_ziggurat(rng_a);
    polar[i] = sample_standard_normal(rng_b);
    rs.add(zig[i]);
  }
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.variance(), 1.0, 0.03);
  EXPECT_NEAR(rs.skewness(), 0.0, 0.05);
  EXPECT_NEAR(rs.excess_kurtosis(), 0.0, 0.1);
  // Two-sample KS at alpha = 0.001: c * sqrt(2/n) with c = 1.95.
  const double crit = 1.95 * std::sqrt(2.0 / kN);
  EXPECT_LT(ziggurat_acceptance::ks_sorted(zig, polar), crit);
}

TEST(Ziggurat, ExponentialMatchesInverseCdfByKsAndMoments) {
  constexpr int kN = 100000;
  util::Xoshiro256pp rng_a(81), rng_b(82);
  const Exponential reference(1.0);
  std::vector<double> zig(kN), inv(kN);
  RunningStats rs;
  for (int i = 0; i < kN; ++i) {
    zig[i] = sample_standard_exponential_ziggurat(rng_a);
    inv[i] = reference.sample(rng_b);
    rs.add(zig[i]);
    ASSERT_GE(zig[i], 0.0);
  }
  EXPECT_NEAR(rs.mean(), 1.0, 0.02);
  EXPECT_NEAR(rs.variance(), 1.0, 0.05);
  const double crit = 1.95 * std::sqrt(2.0 / kN);
  EXPECT_LT(ziggurat_acceptance::ks_sorted(zig, inv), crit);
}

TEST(Ziggurat, FlagSwitchesSamplersAndRestoresBitReproducibility) {
  ASSERT_FALSE(ziggurat_sampling());  // default OFF: figures reproducible

  util::Xoshiro256pp before(5);
  std::vector<double> reference(64);
  for (auto& x : reference) x = sample_standard_normal(before);

  set_ziggurat_sampling(true);
  EXPECT_TRUE(ziggurat_sampling());
  util::Xoshiro256pp zig_rng(5), direct_rng(5);
  for (int i = 0; i < 64; ++i) {
    // Dispatched and direct draws agree exactly while the flag is on.
    EXPECT_EQ(sample_standard_normal(zig_rng),
              sample_standard_normal_ziggurat(direct_rng));
  }
  // Exponential::sample dispatches too (consumes a different draw count).
  util::Xoshiro256pp exp_rng(6);
  const double zig_exp = Exponential(2.0).sample(exp_rng);
  EXPECT_GE(zig_exp, 0.0);
  set_ziggurat_sampling(false);

  // Back to the reference path: bit-identical to the pre-toggle sequence.
  util::Xoshiro256pp after(5);
  for (const double want : reference) {
    EXPECT_EQ(sample_standard_normal(after), want);
  }
}

}  // namespace
}  // namespace linkpad::stats
