#include "stats/kde.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::stats {
namespace {

std::vector<double> normal_sample(double mu, double sigma, int n,
                                  std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  Normal dist(mu, sigma);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(GaussianKde, IntegratesToOne) {
  const auto xs = normal_sample(0.0, 1.0, 2000, 3);
  GaussianKde kde(xs);
  // Trapezoid over ±8 sigma.
  double mass = 0.0;
  const double lo = -8.0, hi = 8.0;
  const int steps = 4000;
  const double dx = (hi - lo) / steps;
  for (int i = 0; i <= steps; ++i) {
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    mass += w * kde.pdf(lo + i * dx) * dx;
  }
  EXPECT_NEAR(mass, 1.0, 1e-3);
}

TEST(GaussianKde, RecoversNormalDensity) {
  const auto xs = normal_sample(2.0, 0.5, 20000, 5);
  GaussianKde kde(xs);
  Normal truth(2.0, 0.5);
  for (double x : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    EXPECT_NEAR(kde.pdf(x), truth.pdf(x), 0.05) << x;
  }
}

TEST(GaussianKde, SilvermanBandwidthMatchesFormula) {
  const auto xs = normal_sample(0.0, 1.0, 1000, 7);
  const double h = select_bandwidth(xs, BandwidthRule::kSilverman);
  // 0.9 * min(sd, iqr/1.34) * n^{-1/5}; with normal data both ≈ sigma.
  EXPECT_GT(h, 0.9 * 0.8 * std::pow(1000.0, -0.2));
  EXPECT_LT(h, 0.9 * 1.2 * std::pow(1000.0, -0.2));
}

TEST(GaussianKde, ScottBandwidthLargerThanSilvermanOnNormal) {
  const auto xs = normal_sample(0.0, 1.0, 1000, 9);
  EXPECT_GT(select_bandwidth(xs, BandwidthRule::kScott),
            select_bandwidth(xs, BandwidthRule::kSilverman));
}

TEST(GaussianKde, FixedBandwidthIsUsedVerbatim) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  GaussianKde kde(xs, BandwidthRule::kFixed, 0.37);
  EXPECT_DOUBLE_EQ(kde.bandwidth(), 0.37);
}

TEST(GaussianKde, FixedRuleRequiresPositiveBandwidth) {
  const std::vector<double> xs = {0.0, 1.0};
  EXPECT_THROW(GaussianKde(xs, BandwidthRule::kFixed, 0.0), ContractViolation);
}

TEST(GaussianKde, DegenerateConstantSampleStaysFinite) {
  const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
  GaussianKde kde(xs);
  EXPECT_GT(kde.pdf(5.0), 0.0);
  EXPECT_TRUE(std::isfinite(kde.pdf(5.0)));
}

TEST(GaussianKde, LogPdfFiniteFarFromData) {
  const auto xs = normal_sample(0.0, 1.0, 100, 11);
  GaussianKde kde(xs);
  const double lp = kde.log_pdf(1000.0);
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_LT(lp, kde.log_pdf(0.0));
}

TEST(GaussianKde, LogPdfOrdersByDistanceOutsideSupport) {
  const auto xs = normal_sample(0.0, 0.1, 200, 13);
  GaussianKde kde(xs);
  EXPECT_GT(kde.log_pdf(50.0), kde.log_pdf(100.0));
}

TEST(GaussianKde, GridEvaluationMatchesPointwise) {
  const auto xs = normal_sample(0.0, 1.0, 500, 15);
  GaussianKde kde(xs);
  const auto grid = kde.evaluate_grid(-2.0, 2.0, 9);
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_DOUBLE_EQ(grid.front().first, -2.0);
  EXPECT_DOUBLE_EQ(grid.back().first, 2.0);
  for (const auto& [x, y] : grid) EXPECT_DOUBLE_EQ(y, kde.pdf(x));
}

TEST(GaussianKde, EmptySampleRejected) {
  const std::vector<double> empty;
  EXPECT_THROW(GaussianKde{empty}, ContractViolation);
}

class KdeBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(KdeBandwidthSweep, MassStaysNormalizedAcrossBandwidths) {
  const auto xs = normal_sample(0.0, 1.0, 500, 21);
  GaussianKde kde(xs, BandwidthRule::kFixed, GetParam());
  double mass = 0.0;
  const double lo = -12.0, hi = 12.0;
  const int steps = 6000;
  const double dx = (hi - lo) / steps;
  for (int i = 0; i <= steps; ++i) {
    mass += kde.pdf(lo + i * dx) * dx;
  }
  EXPECT_NEAR(mass, 1.0, 5e-3) << "bandwidth " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, KdeBandwidthSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0));


TEST(KdeGrid, SlidingSweepMatchesPdfBitwise) {
  // evaluate_grid's single sliding-window sweep must reproduce pdf() at
  // every grid point exactly — including grids that extend far outside the
  // data so the kernel window is empty at the edges.
  const auto data = normal_sample(0.0, 1.0, 4000, 31);
  for (const auto rule : {BandwidthRule::kSilverman, BandwidthRule::kScott}) {
    const GaussianKde kde(data, rule);
    const double lo = -8.0;
    const double hi = 8.0;
    const auto grid = kde.evaluate_grid(lo, hi, 913);
    ASSERT_EQ(grid.size(), 913u);
    for (const auto& [x, y] : grid) {
      EXPECT_EQ(y, kde.pdf(x)) << "x = " << x;
    }
  }
}

TEST(KdeGrid, TinyGridAndClusteredDataMatchPdf) {
  // Duplicate-heavy data stresses the window-edge advancement (many equal
  // values sit exactly on lower/upper bound boundaries).
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(1.0);
  for (int i = 0; i < 200; ++i) data.push_back(2.0);
  const GaussianKde kde(data);
  const auto grid = kde.evaluate_grid(0.5, 2.5, 2);
  for (const auto& [x, y] : grid) {
    EXPECT_EQ(y, kde.pdf(x)) << "x = " << x;
  }
}

}  // namespace
}  // namespace linkpad::stats
