#include "stats/histogram.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace linkpad::stats {
namespace {

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderAndOverflowTracked) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, DensityIntegratesToOneInRange) {
  Histogram h(0.0, 1.0, 20);
  for (int i = 0; i < 1000; ++i) h.add((i % 100) / 100.0);
  double mass = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) mass += h.density(b) * h.bin_width();
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Histogram, FromDataCoversEveryPoint) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto h = Histogram::from_data(xs, 5);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), xs.size());
}

TEST(Histogram, FromDataHandlesConstantSample) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  const auto h = Histogram::from_data(xs, 4);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(Histogram, BinCenterIsMidpoint) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, InvalidConstructionRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, MergeEqualsSequentialAdds) {
  // Dense merge is exact: integer counts make merge(a, b) equal feeding
  // a's and b's samples into one histogram, including the out-of-range
  // tallies.
  util::Rng rng(17);
  std::vector<double> first(500), second(300);
  for (auto& x : first) x = rng.uniform(-1.0, 11.0);
  for (auto& x : second) x = rng.uniform(-1.0, 11.0);

  Histogram a(0.0, 10.0, 16), b(0.0, 10.0, 16), combined(0.0, 10.0, 16);
  a.add_all(first);
  b.add_all(second);
  a.merge(b);
  combined.add_all(first);
  combined.add_all(second);

  EXPECT_EQ(a.total(), combined.total());
  EXPECT_EQ(a.underflow(), combined.underflow());
  EXPECT_EQ(a.overflow(), combined.overflow());
  EXPECT_EQ(a.counts(), combined.counts());
}

TEST(Histogram, MergeRejectsShapeMismatch) {
  Histogram a(0.0, 10.0, 16);
  Histogram range(0.0, 9.0, 16);
  Histogram bins(0.0, 10.0, 8);
  EXPECT_THROW(a.merge(range), ContractViolation);
  EXPECT_THROW(a.merge(bins), ContractViolation);
}

TEST(SparseHistogram, BinsAnchoredAtZero) {
  SparseHistogram h(1.0);
  h.add(0.5);    // bin 0
  h.add(1.5);    // bin 1
  h.add(-0.5);   // bin -1
  h.add(0.7);    // bin 0
  ASSERT_EQ(h.occupied_bins(), 3u);
  EXPECT_EQ(h.cells().at(0), 2u);
  EXPECT_EQ(h.cells().at(1), 1u);
  EXPECT_EQ(h.cells().at(-1), 1u);
}

TEST(SparseHistogram, OutliersGetOwnDistantBins) {
  SparseHistogram h(0.001);
  h.add(0.0100);
  h.add(0.0101);
  h.add(5.0);  // far outlier must not be clamped
  EXPECT_EQ(h.occupied_bins(), 2u);
  EXPECT_EQ(h.cells().at(5000), 1u);
}

TEST(SparseHistogram, TotalMatchesAdds) {
  SparseHistogram h(0.5);
  const std::vector<double> xs = {0.1, 0.2, 0.3, 1.7, 2.9};
  h.add_all(xs);
  EXPECT_EQ(h.total(), xs.size());
}

TEST(SparseHistogram, RejectsNonPositiveWidth) {
  EXPECT_THROW(SparseHistogram(0.0), ContractViolation);
  EXPECT_THROW(SparseHistogram(-1.0), ContractViolation);
}

TEST(SparseHistogram, MergeEqualsSequentialAdds) {
  const std::vector<double> first = {0.1, 0.2, 1.7, -0.4};
  const std::vector<double> second = {0.15, 2.9, 1.7};

  SparseHistogram a(0.5), b(0.5), combined(0.5);
  a.add_all(first);
  b.add_all(second);
  a.merge(b);
  combined.add_all(first);
  combined.add_all(second);

  EXPECT_EQ(a.total(), combined.total());
  ASSERT_EQ(a.occupied_bins(), combined.occupied_bins());
  EXPECT_EQ(a.cells(), combined.cells());
}

TEST(SparseHistogram, MergeRejectsWidthMismatch) {
  SparseHistogram a(0.5), b(0.25);
  EXPECT_THROW(a.merge(b), ContractViolation);
}


TEST(SparseHistogram, ForkResumesExactly) {
  util::Xoshiro256pp rng(23);
  SparseHistogram uninterrupted(0.25);
  SparseHistogram prefix(0.25);
  std::vector<double> tail;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(-20.0, 20.0);
    uninterrupted.add(x);
    if (i < 2000) {
      prefix.add(x);
    } else {
      tail.push_back(x);
    }
  }
  SparseHistogram fork = prefix.fork();
  fork.add_all(tail);
  EXPECT_EQ(fork.total(), uninterrupted.total());
  EXPECT_EQ(fork.cells(), uninterrupted.cells());
  EXPECT_EQ(prefix.total(), 2000u);  // source untouched
}

TEST(SparseHistogram, AddCellTalliesLikeRepeatedAdds) {
  SparseHistogram by_adds(0.5);
  by_adds.add(0.6);
  by_adds.add(0.7);
  by_adds.add(-1.2);

  SparseHistogram by_cells(0.5);
  by_cells.add_cell(1, 2);
  by_cells.add_cell(-3, 1);
  by_cells.add_cell(5, 0);  // no-op
  EXPECT_EQ(by_cells.cells(), by_adds.cells());
  EXPECT_EQ(by_cells.total(), by_adds.total());
}

TEST(Histogram, FromStateRebuildsExactly) {
  util::Rng rng(404);
  Histogram original(-2.0, 3.0, 16);
  for (int i = 0; i < 500; ++i) original.add(rng.uniform(-3.0, 4.0));
  ASSERT_GT(original.underflow(), 0u);
  ASSERT_GT(original.overflow(), 0u);

  const Histogram rebuilt = Histogram::from_state(
      original.lo(), original.hi(), original.counts(), original.underflow(),
      original.overflow());
  EXPECT_EQ(rebuilt.counts(), original.counts());
  EXPECT_EQ(rebuilt.underflow(), original.underflow());
  EXPECT_EQ(rebuilt.overflow(), original.overflow());
  EXPECT_EQ(rebuilt.total(), original.total());  // recomputed from counts
  EXPECT_EQ(rebuilt.bin_width(), original.bin_width());
  for (std::size_t i = 0; i < original.bins(); ++i) {
    EXPECT_EQ(rebuilt.density(i), original.density(i));
  }
}

TEST(SparseHistogram, FromCellsRebuildsExactly) {
  util::Rng rng(405);
  SparseHistogram original(0.25);
  for (int i = 0; i < 300; ++i) original.add(rng.uniform(-10.0, 10.0));

  std::vector<std::pair<std::int64_t, std::uint64_t>> cells(
      original.cells().begin(), original.cells().end());
  const SparseHistogram rebuilt =
      SparseHistogram::from_cells(original.bin_width(), cells);
  EXPECT_EQ(rebuilt.cells(), original.cells());
  EXPECT_EQ(rebuilt.total(), original.total());
  EXPECT_EQ(rebuilt.bin_width(), original.bin_width());
}

}  // namespace
}  // namespace linkpad::stats
