// stats/concentration: the finite-sample bounds the sampled population mode
// reports. Checked here as pure math — closed-form anchor values, monotone
// shrinkage in n, clamping, and degenerate inputs. The statistical coverage
// claim (measured coverage >= nominal against brute-force exhaustive truth)
// lives in tests/core/sampling_test.cpp where real populations exist.
#include "stats/concentration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace linkpad::stats {
namespace {

// ---------------------------------------------------------------- Wilson

TEST(Wilson, ContainsTheSampleProportion) {
  const auto ci = wilson_interval(30, 100, 0.95);
  EXPECT_DOUBLE_EQ(ci.point, 0.3);
  EXPECT_LT(ci.lo, 0.3);
  EXPECT_GT(ci.hi, 0.3);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(Wilson, MatchesTheTextbookValueAt30Of100) {
  // Wilson 95% for p̂ = 0.3, n = 100: [0.2189, 0.3958] (z = 1.95996...).
  const auto ci = wilson_interval(30, 100, 0.95);
  EXPECT_NEAR(ci.lo, 0.21895, 5e-5);
  EXPECT_NEAR(ci.hi, 0.39585, 5e-5);
}

TEST(Wilson, ExtremeProportionsStayInsideTheUnitInterval) {
  const auto none = wilson_interval(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(none.point, 0.0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_GT(none.hi, 0.0);  // zero successes still admit a nonzero rate
  const auto all = wilson_interval(20, 20, 0.95);
  EXPECT_DOUBLE_EQ(all.point, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(Wilson, WidthShrinksWithTrialsAndGrowsWithConfidence) {
  const double w100 = wilson_interval(30, 100, 0.95).half_width();
  const double w1000 = wilson_interval(300, 1000, 0.95).half_width();
  EXPECT_LT(w1000, w100);
  const double w99 = wilson_interval(30, 100, 0.99).half_width();
  EXPECT_GT(w99, w100);
}

TEST(Wilson, RejectsDegenerateInputs) {
  EXPECT_THROW((void)wilson_interval(1, 0, 0.95), ContractViolation);
  EXPECT_THROW((void)wilson_interval(5, 4, 0.95), ContractViolation);
  EXPECT_THROW((void)wilson_interval(1, 10, 0.0), ContractViolation);
  EXPECT_THROW((void)wilson_interval(1, 10, 1.0), ContractViolation);
}

// -------------------------------------------------------------- Hoeffding

TEST(Hoeffding, ClosedFormEpsilon) {
  // ε = R sqrt(ln(2/δ)/(2n)): R = 1, δ = 0.05, n = 50.
  const double expected = std::sqrt(std::log(2.0 / 0.05) / (2.0 * 50.0));
  EXPECT_DOUBLE_EQ(hoeffding_epsilon(50, 1.0, 0.95), expected);
  // Scales linearly in the range.
  EXPECT_DOUBLE_EQ(hoeffding_epsilon(50, 2.0, 0.95), 2.0 * expected);
}

TEST(Hoeffding, IntervalClampsToTheKnownBounds) {
  const auto ci = hoeffding_interval(0.02, 10, 0.0, 1.0, 0.95);
  EXPECT_DOUBLE_EQ(ci.point, 0.02);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);  // 0.02 - ε < 0 clamps
  EXPECT_GT(ci.hi, 0.02);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(Hoeffding, EpsilonShrinksAtRootNRate) {
  const double e100 = hoeffding_epsilon(100, 1.0, 0.95);
  const double e400 = hoeffding_epsilon(400, 1.0, 0.95);
  EXPECT_NEAR(e400, e100 / 2.0, 1e-12);
}

// -------------------------------------------------------------- Bernstein

TEST(Bernstein, TighterThanHoeffdingWhenVarianceIsSmall) {
  // Maurer-Pontil beats Hoeffding once V << R^2/4; dummy fractions under a
  // common policy concentrate like this.
  const double hoeff = hoeffding_epsilon(200, 1.0, 0.95);
  const double bern = bernstein_epsilon(1e-4, 200, 1.0, 0.95);
  EXPECT_LT(bern, hoeff);
}

TEST(Bernstein, FallsBackToTheFullRangeWithoutAVariance) {
  // n = 1 has no sample variance: the bound degrades to the trivial range.
  EXPECT_DOUBLE_EQ(bernstein_epsilon(0.0, 1, 1.0, 0.95), 1.0);
  EXPECT_DOUBLE_EQ(bernstein_epsilon(0.0, 1, 2.5, 0.95), 2.5);
  EXPECT_THROW((void)bernstein_epsilon(0.0, 0, 1.0, 0.95), ContractViolation);
}

TEST(Bernstein, ClosedFormEpsilon) {
  const double v = 0.01;
  const std::size_t n = 100;
  const double log_term = std::log(2.0 / 0.05);
  const double expected = std::sqrt(2.0 * v * log_term / n) +
                          7.0 * log_term / (3.0 * (n - 1.0));
  EXPECT_DOUBLE_EQ(bernstein_epsilon(v, n, 1.0, 0.95), expected);
}

TEST(Bernstein, IntervalClampsToTheKnownBounds) {
  const auto ci = bernstein_interval(0.98, 0.2, 5, 0.0, 1.0, 0.95);
  EXPECT_LE(ci.hi, 1.0);
  EXPECT_GE(ci.lo, 0.0);
}

// -------------------------------------------------------------------- DKW

TEST(Dkw, ClosedFormEpsilon) {
  const double expected = std::sqrt(std::log(2.0 / 0.05) / (2.0 * 250.0));
  EXPECT_DOUBLE_EQ(dkw_epsilon(250, 0.95), expected);
}

TEST(Dkw, MatchesHoeffdingOnTheUnitRange) {
  // The DKW band half-width IS the Hoeffding epsilon at range 1 — both are
  // sqrt(ln(2/δ)/(2n)). Keeping them equal is a cross-check on both.
  EXPECT_DOUBLE_EQ(dkw_epsilon(77, 0.9), hoeffding_epsilon(77, 1.0, 0.9));
}

TEST(Dkw, RejectsDegenerateInputs) {
  EXPECT_THROW((void)dkw_epsilon(0, 0.95), ContractViolation);
  EXPECT_THROW((void)dkw_epsilon(10, -0.5), ContractViolation);
}

}  // namespace
}  // namespace linkpad::stats
