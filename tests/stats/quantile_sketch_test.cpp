#include "stats/quantile_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Normal dist(10e-3, 10e-6);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

TEST(P2Quantile, ExactForFiveOrFewerSamples) {
  P2Quantile median(0.5);
  const std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    median.add(xs[i]);
    std::vector<double> prefix(xs.begin(), xs.begin() + i + 1);
    EXPECT_DOUBLE_EQ(median.value(), exact_quantile(prefix, 0.5)) << i;
  }
}

TEST(P2Quantile, TracksNormalQuantilesWithinDocumentedTolerance) {
  const auto xs = normal_sample(20000, 11);
  const double spread = exact_quantile(xs, 0.75) - exact_quantile(xs, 0.25);
  for (const double q : {0.25, 0.5, 0.75, 0.9}) {
    P2Quantile sketch(q);
    for (double x : xs) sketch.add(x);
    EXPECT_EQ(sketch.count(), xs.size());
    // quantile_sketch.hpp documents ~1% relative accuracy; assert a few
    // percent of the IQR so the test has margin without being vacuous.
    EXPECT_NEAR(sketch.value(), exact_quantile(xs, q), 0.05 * spread) << q;
  }
}

TEST(P2Quantile, TracksSkewedDataWithinTolerance) {
  util::Rng rng(12);
  Exponential dist(10e-3);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = dist.sample(rng);
  const double exact = exact_quantile(xs, 0.5);
  P2Quantile sketch(0.5);
  for (double x : xs) sketch.add(x);
  EXPECT_NEAR(sketch.value(), exact, 0.05 * exact);
}

TEST(P2Quantile, ResetForgetsSamplesButKeepsTarget) {
  P2Quantile sketch(0.25);
  for (double x : normal_sample(1000, 13)) sketch.add(x);
  sketch.reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(), 0.25);
  sketch.add(7.0);
  EXPECT_DOUBLE_EQ(sketch.value(), 7.0);
}

TEST(P2Quantile, RejectsDegenerateTargets) {
  EXPECT_THROW(P2Quantile(0.0), linkpad::ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), linkpad::ContractViolation);
  EXPECT_THROW(P2Quantile(0.5).value(), linkpad::ContractViolation);
}


TEST(P2Quantile, ForkResumesBitIdentically) {
  // Checkpoint contract: fork mid-stream, feed BOTH the same suffix, and
  // they stay exactly equal — while adds to the fork never touch the
  // original.
  const auto xs = normal_sample(5000, 99);
  P2Quantile original(0.5);
  for (std::size_t i = 0; i < 1234; ++i) original.add(xs[i]);

  P2Quantile fork = original.fork();
  EXPECT_EQ(fork.count(), original.count());
  EXPECT_EQ(fork.value(), original.value());

  const double before = original.value();
  P2Quantile scratch = original.fork();
  for (std::size_t i = 1234; i < xs.size(); ++i) scratch.add(xs[i]);
  EXPECT_EQ(original.value(), before);  // fork consumption is independent

  for (std::size_t i = 1234; i < xs.size(); ++i) {
    original.add(xs[i]);
    fork.add(xs[i]);
  }
  EXPECT_EQ(original.count(), fork.count());
  EXPECT_EQ(original.value(), fork.value());
  EXPECT_EQ(scratch.value(), original.value());
}

// ---------------------------------------------------------------- merging

TEST(P2QuantileMerge, ExactWhileCombinedCountAtMostFive) {
  // merge(a, b) == feed(a ∥ b) whenever the combined count still fits the
  // raw-sample phase — every split of a ≤5-sample stream must agree with
  // the serially fed sketch exactly.
  const std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  for (std::size_t split = 0; split <= xs.size(); ++split) {
    P2Quantile serial(0.5), left(0.5), right(0.5);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      serial.add(xs[i]);
      (i < split ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), serial.count()) << split;
    EXPECT_DOUBLE_EQ(left.value(), serial.value()) << split;
  }
}

TEST(P2QuantileMerge, EmptySidesAreIdentities) {
  P2Quantile fed(0.25);
  for (double x : normal_sample(500, 21)) fed.add(x);

  P2Quantile left = fed.fork();
  left.merge(P2Quantile(0.25));  // empty right: no-op
  EXPECT_EQ(left.count(), fed.count());
  EXPECT_EQ(left.value(), fed.value());

  P2Quantile empty(0.25);
  empty.merge(fed);  // empty left: adopt the right side wholesale
  EXPECT_EQ(empty.count(), fed.count());
  EXPECT_EQ(empty.value(), fed.value());
}

TEST(P2QuantileMerge, RejectsMismatchedTargets) {
  P2Quantile a(0.25), b(0.75);
  EXPECT_THROW(a.merge(b), linkpad::ContractViolation);
}

TEST(P2QuantileMerge, RawSamplesFoldIntoSummarizedSketchBothWays) {
  // One summarized side (> 5 samples) plus one raw side (≤ 5): the raw
  // samples replay exactly, so both merge orders track the serially fed
  // sketch within the documented tolerance.
  const auto xs = normal_sample(4000, 31);
  const double spread = exact_quantile(xs, 0.75) - exact_quantile(xs, 0.25);
  P2Quantile serial(0.5), big(0.5), small(0.5);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    serial.add(xs[i]);
    (i + 4 < xs.size() ? big : small).add(xs[i]);
  }
  P2Quantile big_into_small = small.fork();
  big_into_small.merge(big);
  P2Quantile small_into_big = big.fork();
  small_into_big.merge(small);
  EXPECT_EQ(small_into_big.count(), xs.size());
  EXPECT_EQ(big_into_small.count(), xs.size());
  EXPECT_NEAR(small_into_big.value(), serial.value(), 0.05 * spread);
  EXPECT_NEAR(big_into_small.value(), serial.value(), 0.05 * spread);
}

TEST(P2QuantileMerge, ToleranceBoundedOnSummarizedHalves) {
  // Property bound for the approximate regime: two summarized halves merged
  // via the 5-marker inverse-CDF replay must land within a bounded fraction
  // of the p05–p95 spread of the exact quantile. The replay linearly
  // interpolates between markers, so the bound is looser on the heavy-tailed
  // exponential stream than on the near-symmetric normal one.
  util::Rng rng(41);
  Exponential expo(10e-3);
  std::vector<double> exp_xs(6000);
  for (auto& x : exp_xs) x = expo.sample(rng);
  const auto norm_xs = normal_sample(6000, 42);

  struct Case {
    const std::vector<double>* xs;
    double tolerance;  // fraction of the exact p05–p95 spread
  };
  for (const Case c : {Case{&norm_xs, 0.1}, Case{&exp_xs, 0.2}}) {
    const std::vector<double>& xs = *c.xs;
    const double spread = exact_quantile(xs, 0.95) - exact_quantile(xs, 0.05);
    for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      P2Quantile left(q), right(q);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        (i < xs.size() / 2 ? left : right).add(xs[i]);
      }
      left.merge(right);
      EXPECT_EQ(left.count(), xs.size());
      EXPECT_NEAR(left.value(), exact_quantile(xs, q), c.tolerance * spread)
          << q;
    }
  }
}

TEST(P2QuantileState, SnapshotRestoreContinuesBitIdentically) {
  // state()/from_state must capture the FULL marker state: a restored
  // sketch fed the same suffix as the original must stay bitwise equal —
  // the contract shard/checkpoint serialization (core/shard_io) rests on.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const std::size_t prefix = seed % 23;  // crosses the exact<=5 boundary
    const auto xs = normal_sample(prefix + 25, 600 + seed);

    P2Quantile original(0.95);
    for (std::size_t i = 0; i < prefix; ++i) original.add(xs[i]);
    P2Quantile restored = P2Quantile::from_state(original.state());

    for (std::size_t i = prefix; i < xs.size(); ++i) {
      original.add(xs[i]);
      restored.add(xs[i]);
    }
    EXPECT_EQ(original.value(), restored.value()) << "seed " << seed;
    const auto a = original.state();
    const auto b = restored.state();
    EXPECT_EQ(a.count, b.count);
    for (std::size_t m = 0; m < a.heights.size(); ++m) {
      EXPECT_EQ(a.heights[m], b.heights[m]) << "seed " << seed;
      EXPECT_EQ(a.positions[m], b.positions[m]) << "seed " << seed;
      EXPECT_EQ(a.desired[m], b.desired[m]) << "seed " << seed;
      EXPECT_EQ(a.rate[m], b.rate[m]) << "seed " << seed;
    }
  }
}

TEST(P2QuantileState, EmptySketchRoundTrips) {
  P2Quantile fresh(0.25);
  const auto state = fresh.state();
  EXPECT_EQ(state.count, 0u);
  P2Quantile restored = P2Quantile::from_state(state);
  for (double x : normal_sample(9, 77)) {
    fresh.add(x);
    restored.add(x);
  }
  EXPECT_EQ(fresh.value(), restored.value());
}

TEST(P2QuantileMerge, DeterministicAcrossRepeats) {
  // merge is a pure function of the two sketch states — a fixed-shape
  // reduction tree relies on replays being bit-identical.
  const auto xs = normal_sample(3000, 51);
  auto merged = [&] {
    P2Quantile left(0.75), right(0.75);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      (i % 2 == 0 ? left : right).add(xs[i]);
    }
    left.merge(right);
    return left.value();
  };
  EXPECT_EQ(merged(), merged());
}

}  // namespace
}  // namespace linkpad::stats
