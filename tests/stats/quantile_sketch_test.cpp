#include "stats/quantile_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Normal dist(10e-3, 10e-6);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

TEST(P2Quantile, ExactForFiveOrFewerSamples) {
  P2Quantile median(0.5);
  const std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    median.add(xs[i]);
    std::vector<double> prefix(xs.begin(), xs.begin() + i + 1);
    EXPECT_DOUBLE_EQ(median.value(), exact_quantile(prefix, 0.5)) << i;
  }
}

TEST(P2Quantile, TracksNormalQuantilesWithinDocumentedTolerance) {
  const auto xs = normal_sample(20000, 11);
  const double spread = exact_quantile(xs, 0.75) - exact_quantile(xs, 0.25);
  for (const double q : {0.25, 0.5, 0.75, 0.9}) {
    P2Quantile sketch(q);
    for (double x : xs) sketch.add(x);
    EXPECT_EQ(sketch.count(), xs.size());
    // quantile_sketch.hpp documents ~1% relative accuracy; assert a few
    // percent of the IQR so the test has margin without being vacuous.
    EXPECT_NEAR(sketch.value(), exact_quantile(xs, q), 0.05 * spread) << q;
  }
}

TEST(P2Quantile, TracksSkewedDataWithinTolerance) {
  util::Rng rng(12);
  Exponential dist(10e-3);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = dist.sample(rng);
  const double exact = exact_quantile(xs, 0.5);
  P2Quantile sketch(0.5);
  for (double x : xs) sketch.add(x);
  EXPECT_NEAR(sketch.value(), exact, 0.05 * exact);
}

TEST(P2Quantile, ResetForgetsSamplesButKeepsTarget) {
  P2Quantile sketch(0.25);
  for (double x : normal_sample(1000, 13)) sketch.add(x);
  sketch.reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(), 0.25);
  sketch.add(7.0);
  EXPECT_DOUBLE_EQ(sketch.value(), 7.0);
}

TEST(P2Quantile, RejectsDegenerateTargets) {
  EXPECT_THROW(P2Quantile(0.0), linkpad::ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), linkpad::ContractViolation);
  EXPECT_THROW(P2Quantile(0.5).value(), linkpad::ContractViolation);
}


TEST(P2Quantile, ForkResumesBitIdentically) {
  // Checkpoint contract: fork mid-stream, feed BOTH the same suffix, and
  // they stay exactly equal — while adds to the fork never touch the
  // original.
  const auto xs = normal_sample(5000, 99);
  P2Quantile original(0.5);
  for (std::size_t i = 0; i < 1234; ++i) original.add(xs[i]);

  P2Quantile fork = original.fork();
  EXPECT_EQ(fork.count(), original.count());
  EXPECT_EQ(fork.value(), original.value());

  const double before = original.value();
  P2Quantile scratch = original.fork();
  for (std::size_t i = 1234; i < xs.size(); ++i) scratch.add(xs[i]);
  EXPECT_EQ(original.value(), before);  // fork consumption is independent

  for (std::size_t i = 1234; i < xs.size(); ++i) {
    original.add(xs[i]);
    fork.add(xs[i]);
  }
  EXPECT_EQ(original.count(), fork.count());
  EXPECT_EQ(original.value(), fork.value());
  EXPECT_EQ(scratch.value(), original.value());
}

}  // namespace
}  // namespace linkpad::stats
