#include "stats/special_math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace linkpad::stats {
namespace {

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-16);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalCdf, Symmetry) {
  for (double x : {0.3, 1.1, 2.7, 4.0}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-14) << x;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.99), 2.3263478740408408, 1e-9);
}

TEST(NormalQuantile, DomainErrors) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
}

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << p;
}

INSTANTIATE_TEST_SUITE_P(SweepP, QuantileRoundTrip,
                         ::testing::Values(1e-10, 1e-6, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 1.0 - 1e-6,
                                           1.0 - 1e-10));

TEST(RegularizedGammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
  // P(0.5, x) = erf(sqrt(x))
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12)
        << x;
  }
}

TEST(RegularizedGammaP, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(2.0, 1e4), 1.0, 1e-12);
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::domain_error);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::domain_error);
}

TEST(RegularizedGammaQ, ComplementOfP) {
  for (double a : {0.5, 2.0, 7.5}) {
    for (double x : {0.5, 2.0, 20.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-13);
    }
  }
}

TEST(ChiSquaredCdf, MatchesTables) {
  // chi2(k=1): P(X <= 3.841) ~ 0.95
  EXPECT_NEAR(chi_squared_cdf(1.0, 3.841458820694124), 0.95, 1e-9);
  // chi2(k=5): P(X <= 11.0705) ~ 0.95
  EXPECT_NEAR(chi_squared_cdf(5.0, 11.070497693516351), 0.95, 1e-9);
  EXPECT_DOUBLE_EQ(chi_squared_cdf(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(chi_squared_cdf(3.0, -5.0), 0.0);
}

TEST(ChiSquaredCdf, MedianNearDof) {
  // Median of chi2(k) ~ k(1-2/(9k))^3; check CDF there is ~0.5.
  for (double k : {2.0, 10.0, 50.0}) {
    const double med = k * std::pow(1.0 - 2.0 / (9.0 * k), 3.0);
    EXPECT_NEAR(chi_squared_cdf(k, med), 0.5, 0.01) << k;
  }
}

TEST(LogGamma, MatchesFactorials) {
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-15);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-12);
}

}  // namespace
}  // namespace linkpad::stats
