#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::stats {
namespace {

TEST(BootstrapCi, MeanIntervalBracketsEstimate) {
  std::vector<double> xs;
  util::Xoshiro256pp rng(1);
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0.0, 10.0));

  util::Xoshiro256pp boot_rng(2);
  const auto r = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, 500, 0.95,
      boot_rng);
  EXPECT_LE(r.lo, r.estimate);
  EXPECT_GE(r.hi, r.estimate);
  EXPECT_NEAR(r.estimate, 5.0, 0.5);
  EXPECT_LT(r.hi - r.lo, 1.5);
}

TEST(BootstrapCi, DegenerateDataCollapsesInterval) {
  const std::vector<double> xs(100, 3.0);
  util::Xoshiro256pp rng(3);
  const auto r = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, 200, 0.9, rng);
  EXPECT_DOUBLE_EQ(r.lo, 3.0);
  EXPECT_DOUBLE_EQ(r.hi, 3.0);
}

TEST(BootstrapCi, PreconditionsFire) {
  util::Xoshiro256pp rng(4);
  const std::vector<double> empty;
  auto stat = [](std::span<const double> s) { return mean(s); };
  EXPECT_THROW(bootstrap_ci(empty, stat, 100, 0.95, rng), ContractViolation);
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(bootstrap_ci(xs, stat, 1, 0.95, rng), ContractViolation);
  EXPECT_THROW(bootstrap_ci(xs, stat, 100, 1.5, rng), ContractViolation);
}

TEST(ProportionCi, WilsonKnownCase) {
  // 80/100 at 95%: Wilson interval ~ [0.711, 0.867]
  const auto r = proportion_ci(80, 100, 0.95);
  EXPECT_DOUBLE_EQ(r.estimate, 0.8);
  EXPECT_NEAR(r.lo, 0.711, 0.005);
  EXPECT_NEAR(r.hi, 0.867, 0.005);
}

TEST(ProportionCi, ExtremesStayInUnitInterval) {
  const auto zero = proportion_ci(0, 50, 0.95);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = proportion_ci(50, 50, 0.95);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(ProportionCi, WiderAtHigherConfidence) {
  const auto a = proportion_ci(30, 60, 0.9);
  const auto b = proportion_ci(30, 60, 0.99);
  EXPECT_GT(b.hi - b.lo, a.hi - a.lo);
}

TEST(ProportionCi, ShrinksWithMoreTrials) {
  const auto small = proportion_ci(8, 10, 0.95);
  const auto big = proportion_ci(800, 1000, 0.95);
  EXPECT_GT(small.hi - small.lo, big.hi - big.lo);
}

TEST(ProportionCi, InvalidInputsRejected) {
  EXPECT_THROW(proportion_ci(1, 0, 0.95), ContractViolation);
  EXPECT_THROW(proportion_ci(5, 4, 0.95), ContractViolation);
  EXPECT_THROW(proportion_ci(1, 2, 0.0), ContractViolation);
}

}  // namespace
}  // namespace linkpad::stats
