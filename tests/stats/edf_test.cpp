#include "stats/edf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::stats {
namespace {

std::vector<double> sorted_normal(double mu, double sigma, int n,
                                  std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  Normal dist(mu, sigma);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  std::sort(xs.begin(), xs.end());
  return xs;
}

TEST(KsDistance, IdenticalSamplesAreZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_distance_sorted(xs, xs), 0.0);
}

TEST(KsDistance, DisjointSamplesAreOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0, 12.0};
  EXPECT_DOUBLE_EQ(ks_distance_sorted(a, b), 1.0);
}

TEST(KsDistance, HandComputedSmallCase) {
  // F_a steps at 1, 3; F_b steps at 2, 4. After x=1: |0.5-0| = 0.5.
  const std::vector<double> a = {1.0, 3.0};
  const std::vector<double> b = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_distance_sorted(a, b), 0.5);
}

TEST(KsDistance, SameDistributionSmall) {
  const auto a = sorted_normal(0.0, 1.0, 4000, 1);
  const auto b = sorted_normal(0.0, 1.0, 4000, 2);
  EXPECT_LT(ks_distance_sorted(a, b), 0.05);
}

TEST(KsDistance, MeanShiftDetected) {
  const auto a = sorted_normal(0.0, 1.0, 4000, 3);
  const auto b = sorted_normal(1.0, 1.0, 4000, 4);
  // True KS distance between N(0,1) and N(1,1) is 2*Phi(0.5)-1 ~ 0.383.
  EXPECT_NEAR(ks_distance_sorted(a, b), 0.383, 0.04);
}

TEST(KsDistance, VarianceRatioDetected) {
  const auto a = sorted_normal(0.0, 1.0, 8000, 5);
  const auto b = sorted_normal(0.0, 2.0, 8000, 6);
  // KS distance between N(0,1) and N(0,4): crossing at a = sqrt(r ln r/(r-1))
  // with r=4 => a = 1.3596; D = Phi(a) - Phi(a/2) = 0.9131 - 0.7517 = 0.161.
  EXPECT_NEAR(ks_distance_sorted(a, b), 0.161, 0.03);
}

TEST(KsDistance, UnsortedConvenienceWrapper) {
  const std::vector<double> a = {3.0, 1.0, 2.0};
  const std::vector<double> b = {2.5, 0.5, 1.5};
  std::vector<double> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_DOUBLE_EQ(ks_distance(a, b), ks_distance_sorted(sa, sb));
}

TEST(CvmDistance, ZeroForIdenticalSamples) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_NEAR(cvm_distance_sorted(xs, xs), 0.0, 1e-12);
}

TEST(CvmDistance, OrdersLikeKsOnLocationShifts) {
  const auto base = sorted_normal(0.0, 1.0, 3000, 7);
  const auto near = sorted_normal(0.3, 1.0, 3000, 8);
  const auto far = sorted_normal(1.5, 1.0, 3000, 9);
  EXPECT_LT(cvm_distance_sorted(base, near), cvm_distance_sorted(base, far));
}

TEST(CvmDistance, LessOutlierSensitiveThanKs) {
  // One far outlier: KS jumps by ~1/n at the tail; CvM moves ~1/n^2-ish.
  std::vector<double> a = sorted_normal(0.0, 1.0, 500, 10);
  std::vector<double> b = a;
  b.back() = 1e6;
  std::sort(b.begin(), b.end());
  const double ks = ks_distance_sorted(a, b);
  const double cvm = cvm_distance_sorted(a, b);
  EXPECT_LT(cvm, ks);  // same scale-free comparison used by the classifier
}

TEST(KolmogorovTail, KnownValues) {
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(kolmogorov_tail(1.36), 0.049, 0.002);
  EXPECT_NEAR(kolmogorov_tail(0.0), 1.0, 1e-12);
  EXPECT_LT(kolmogorov_tail(3.0), 1e-6);
}

TEST(KolmogorovTail, MonotoneDecreasing) {
  double prev = 1.0;
  for (double lam = 0.2; lam < 3.0; lam += 0.2) {
    const double q = kolmogorov_tail(lam);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(KsPvalue, SameDistributionGivesLargePvalue) {
  const auto a = sorted_normal(0.0, 1.0, 2000, 11);
  const auto b = sorted_normal(0.0, 1.0, 2000, 12);
  const double d = ks_distance_sorted(a, b);
  EXPECT_GT(ks_two_sample_pvalue(d, a.size(), b.size()), 0.01);
}

TEST(KsPvalue, DifferentDistributionsGiveTinyPvalue) {
  const auto a = sorted_normal(0.0, 1.0, 2000, 13);
  const auto b = sorted_normal(0.5, 1.0, 2000, 14);
  const double d = ks_distance_sorted(a, b);
  EXPECT_LT(ks_two_sample_pvalue(d, a.size(), b.size()), 1e-6);
}

TEST(Edf, EmptyInputsRejected) {
  const std::vector<double> empty;
  const std::vector<double> one = {1.0};
  EXPECT_THROW(ks_distance_sorted(empty, one), linkpad::ContractViolation);
  EXPECT_THROW(cvm_distance_sorted(one, empty), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::stats
