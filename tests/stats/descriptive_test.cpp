#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::stats {
namespace {

TEST(RunningStats, MatchesNaiveMeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.variance(), sample_variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  util::Xoshiro256pp rng(3);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.uniform(-5.0, 5.0);

  RunningStats all;
  for (double x : xs) all.add(x);

  RunningStats a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 1700 ? a : b).add(xs[i]);
  }
  a.merge(b);

  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-8);
  EXPECT_NEAR(a.excess_kurtosis(), all.excess_kurtosis(), 1e-8);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, SymmetricDataHasZeroSkew) {
  RunningStats rs;
  for (double x : {-2.0, -1.0, 0.0, 1.0, 2.0}) rs.add(x);
  EXPECT_NEAR(rs.skewness(), 0.0, 1e-12);
}

TEST(RunningStats, GaussianSampleMomentsMatchTheory) {
  util::Xoshiro256pp rng(5);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    // Box-Muller-free: sum of 12 uniforms minus 6 is near-normal; good
    // enough for moment sanity at this tolerance.
    double s = 0.0;
    for (int k = 0; k < 12; ++k) s += rng.uniform01();
    rs.add(s - 6.0);
  }
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.variance(), 1.0, 0.02);
  EXPECT_NEAR(rs.skewness(), 0.0, 0.05);
}

TEST(RunningStats, PreconditionsFire) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), ContractViolation);
  rs.add(1.0);
  EXPECT_THROW(rs.variance(), ContractViolation);
}

TEST(Descriptive, QuantileSortedInterpolates) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.625), 2.5);
}

TEST(Descriptive, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Descriptive, IqrOfUniformGrid) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(iqr(xs), 50.0, 1e-9);
}

TEST(Descriptive, SampleVarianceUsesUnbiasedDenominator) {
  // Var of {0, 2} with n-1 denominator is 2, not 1.
  EXPECT_DOUBLE_EQ(sample_variance(std::vector<double>{0.0, 2.0}), 2.0);
}

TEST(Descriptive, SummarizeAgreesWithPieces) {
  const std::vector<double> xs = {1.0, 5.0, 2.0, 8.0, 3.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_NEAR(s.variance, sample_variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST(Descriptive, EmptySpanViolatesContract) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), ContractViolation);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(sample_variance(one), ContractViolation);
}


TEST(RunningStats, ForkResumesBitIdentically) {
  // The prefix-replay engine forks the shared training moments at each
  // sample-size boundary; the snapshot must continue exactly like the
  // uninterrupted accumulator.
  std::vector<double> xs;
  util::Xoshiro256pp rng(17);
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.uniform(0.0, 2.0));

  RunningStats uninterrupted;
  RunningStats first_half;
  for (int i = 0; i < 1500; ++i) {
    uninterrupted.add(xs[static_cast<std::size_t>(i)]);
    first_half.add(xs[static_cast<std::size_t>(i)]);
  }
  RunningStats fork = first_half.fork();
  for (int i = 1500; i < 3000; ++i) {
    uninterrupted.add(xs[static_cast<std::size_t>(i)]);
    fork.add(xs[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(fork.count(), uninterrupted.count());
  EXPECT_EQ(fork.mean(), uninterrupted.mean());
  EXPECT_EQ(fork.variance(), uninterrupted.variance());
  EXPECT_EQ(fork.skewness(), uninterrupted.skewness());
  EXPECT_EQ(fork.excess_kurtosis(), uninterrupted.excess_kurtosis());
  // The snapshot did not disturb its source.
  EXPECT_EQ(first_half.count(), 1500u);
}

TEST(RunningStatsState, SnapshotRestoreContinuesBitIdentically) {
  // state()/from_state round-trips the full Welford state (count, mean,
  // central moments, extremes): a restored accumulator fed the identical
  // suffix stays exactly equal — what shard/checkpoint files depend on.
  util::Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t prefix = static_cast<std::size_t>(trial) % 11;
    RunningStats original;
    for (std::size_t i = 0; i < prefix; ++i) {
      original.add(rng.uniform(-5.0, 5.0));
    }
    RunningStats restored = RunningStats::from_state(original.state());
    for (int i = 0; i < 40; ++i) {
      const double x = rng.uniform(-5.0, 5.0);
      original.add(x);
      restored.add(x);
    }
    EXPECT_EQ(original.count(), restored.count());
    EXPECT_EQ(original.mean(), restored.mean());
    EXPECT_EQ(original.variance(), restored.variance());
    EXPECT_EQ(original.skewness(), restored.skewness());
    EXPECT_EQ(original.excess_kurtosis(), restored.excess_kurtosis());
    EXPECT_EQ(original.min(), restored.min());
    EXPECT_EQ(original.max(), restored.max());
  }
}

}  // namespace
}  // namespace linkpad::stats
