#include "stats/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::stats {
namespace {

TEST(HistogramEntropy, UniformOverKBinsIsLogK) {
  SparseHistogram h(1.0);
  for (int bin = 0; bin < 8; ++bin) {
    for (int i = 0; i < 10; ++i) h.add(bin + 0.5);
  }
  EXPECT_NEAR(histogram_entropy(h), std::log(8.0), 1e-12);
}

TEST(HistogramEntropy, SingleBinIsZero) {
  SparseHistogram h(1.0);
  for (int i = 0; i < 50; ++i) h.add(0.25);
  EXPECT_DOUBLE_EQ(histogram_entropy(h), 0.0);
}

TEST(SampleEntropy, ShiftInvariantForAlignedShifts) {
  // Shifting by whole bins must not change the estimate (eq. 25 depends
  // only on bin occupancies).
  const std::vector<double> xs = {0.1, 0.2, 1.1, 1.9, 2.5, 0.4};
  std::vector<double> shifted;
  for (double x : xs) shifted.push_back(x + 7.0);  // 7 = whole bins of 1.0
  EXPECT_NEAR(sample_entropy(xs, 1.0), sample_entropy(shifted, 1.0), 1e-12);
}

TEST(SampleEntropy, MoreSpreadMeansMoreEntropy) {
  util::Xoshiro256pp rng(4);
  Normal narrow(0.0, 1.0);
  Normal wide(0.0, 5.0);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(narrow.sample(rng));
    b.push_back(wide.sample(rng));
  }
  EXPECT_LT(sample_entropy(a, 0.25), sample_entropy(b, 0.25));
}

TEST(SampleEntropy, RobustToSingleOutlier) {
  // The paper's argument for the entropy feature: one far outlier shifts
  // sample variance massively but entropy only by ~(1/n)·log n.
  util::Xoshiro256pp rng(9);
  Normal base(0.0, 1.0);
  std::vector<double> clean;
  for (int i = 0; i < 2000; ++i) clean.push_back(base.sample(rng));
  std::vector<double> dirty = clean;
  dirty[100] = 1e3;

  const double h_clean = sample_entropy(clean, 0.25);
  const double h_dirty = sample_entropy(dirty, 0.25);
  EXPECT_NEAR(h_dirty, h_clean, 0.02);

  // ... while the variance explodes by orders of magnitude.
  const double v_clean = sample_variance(std::span<const double>(clean));
  const double v_dirty = sample_variance(std::span<const double>(dirty));
  EXPECT_GT(v_dirty / v_clean, 100.0);
}

TEST(DifferentialEntropy, ApproachesNormalClosedForm) {
  // Eq. (24) on a large normal sample ≈ ½ ln(2πeσ²).
  util::Xoshiro256pp rng(17);
  const double sigma = 2.0;
  Normal dist(0.0, sigma);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(dist.sample(rng));
  const double est = differential_entropy(xs, 0.05);
  const double truth = normal_differential_entropy(sigma * sigma);
  EXPECT_NEAR(est, truth, 0.02);
}

TEST(DifferentialEntropy, BinWidthTermCancels) {
  const std::vector<double> xs = {0.0, 0.3, 0.6, 1.2, 2.4, 3.1};
  EXPECT_NEAR(differential_entropy(xs, 0.5),
              sample_entropy(xs, 0.5) + std::log(0.5), 1e-12);
}

TEST(EntropyBias, MillerMadowAddsOccupiedBinTerm) {
  SparseHistogram h(1.0);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(2.6);
  const double plain = histogram_entropy(h, EntropyBias::kNone);
  const double mm = histogram_entropy(h, EntropyBias::kMillerMadow);
  EXPECT_NEAR(mm - plain, (3.0 - 1.0) / (2.0 * 4.0), 1e-12);
}

TEST(EntropyBias, ModdemeijerCountsResolvedCellsOnly) {
  SparseHistogram h(1.0);
  h.add(0.5);  // singleton
  h.add(1.5);
  h.add(1.6);  // resolved cell (2 samples)
  const double plain = histogram_entropy(h, EntropyBias::kNone);
  const double md = histogram_entropy(h, EntropyBias::kModdemeijer);
  EXPECT_NEAR(md - plain, (1.0 - 1.0) / (2.0 * 3.0), 1e-12);
}

TEST(NormalDifferentialEntropy, MonotoneInVariance) {
  EXPECT_LT(normal_differential_entropy(1.0), normal_differential_entropy(4.0));
  EXPECT_THROW(normal_differential_entropy(0.0), ContractViolation);
}

TEST(SampleEntropy, EmptyWindowRejected) {
  const std::vector<double> empty;
  EXPECT_THROW(sample_entropy(empty, 0.1), ContractViolation);
}

}  // namespace
}  // namespace linkpad::stats
