#include "classify/bayes.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

std::vector<double> normal_sample(double mu, double sigma, int n,
                                  std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  stats::Normal dist(mu, sigma);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(BayesClassifier, SeparableClassesClassifyPerfectly) {
  const auto a = normal_sample(0.0, 0.5, 2000, 1);
  const auto b = normal_sample(100.0, 0.5, 2000, 2);
  auto clf = BayesClassifier::train({a, b}, {0.5, 0.5});
  EXPECT_EQ(clf.classify(0.0), 0);
  EXPECT_EQ(clf.classify(100.0), 1);
  EXPECT_EQ(clf.classify(-3.0), 0);
  EXPECT_EQ(clf.classify(103.0), 1);
}

TEST(BayesClassifier, MidpointThresholdForSymmetricClasses) {
  const auto a = normal_sample(0.0, 1.0, 5000, 3);
  const auto b = normal_sample(4.0, 1.0, 5000, 4);
  auto clf = BayesClassifier::train({a, b}, {0.5, 0.5});
  const auto d = clf.decision_threshold();
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 2.0, 0.25);
}

TEST(BayesClassifier, PriorsShiftTheDecision) {
  const auto a = normal_sample(0.0, 1.0, 5000, 5);
  const auto b = normal_sample(2.0, 1.0, 5000, 6);
  auto equal = BayesClassifier::train({a, b}, {0.5, 0.5});
  auto skewed = BayesClassifier::train({a, b}, {0.95, 0.05});
  // At the midpoint, the skewed prior must favour class 0.
  EXPECT_EQ(skewed.classify(1.0), 0);
  const auto d_eq = equal.decision_threshold();
  const auto d_sk = skewed.decision_threshold();
  ASSERT_TRUE(d_eq && d_sk);
  EXPECT_GT(*d_sk, *d_eq);
}

TEST(BayesClassifier, PosteriorsSumToOne) {
  const auto a = normal_sample(0.0, 1.0, 1000, 7);
  const auto b = normal_sample(3.0, 1.0, 1000, 8);
  const auto c = normal_sample(6.0, 1.0, 1000, 9);
  auto clf = BayesClassifier::train({a, b, c},
                                    {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0});
  for (double s : {-1.0, 1.5, 4.5, 8.0}) {
    const auto post = clf.posteriors(s);
    double total = 0.0;
    for (double p : post) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(BayesClassifier, PosteriorPeaksAtOwnClassMean) {
  const auto a = normal_sample(0.0, 1.0, 2000, 10);
  const auto b = normal_sample(5.0, 1.0, 2000, 11);
  auto clf = BayesClassifier::train({a, b}, {0.5, 0.5});
  EXPECT_GT(clf.posteriors(0.0)[0], 0.9);
  EXPECT_GT(clf.posteriors(5.0)[1], 0.9);
}

TEST(BayesClassifier, GaussianModelMatchesKdeOnGaussians) {
  const auto a = normal_sample(0.0, 1.0, 4000, 12);
  const auto b = normal_sample(2.5, 1.0, 4000, 13);
  auto kde = BayesClassifier::train({a, b}, {0.5, 0.5}, DensityKind::kKde);
  auto gauss =
      BayesClassifier::train({a, b}, {0.5, 0.5}, DensityKind::kGaussian);
  int agreements = 0;
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    const double s = -3.0 + 8.5 * i / probes;
    if (kde.classify(s) == gauss.classify(s)) ++agreements;
  }
  EXPECT_GE(agreements, probes * 95 / 100);
}

TEST(BayesClassifier, EqualMeanDifferentVarianceHasNoSingleThreshold) {
  // The Fig 2 situation for sample-mean features: densities cross twice.
  const auto a = normal_sample(0.0, 1.0, 5000, 14);
  const auto b = normal_sample(0.0, 3.0, 5000, 15);
  auto clf = BayesClassifier::train({a, b}, {0.5, 0.5},
                                    DensityKind::kGaussian);
  EXPECT_FALSE(clf.decision_threshold().has_value());
  // Center belongs to the narrow class, tails to the wide one.
  EXPECT_EQ(clf.classify(0.0), 0);
  EXPECT_EQ(clf.classify(6.0), 1);
  EXPECT_EQ(clf.classify(-6.0), 1);
}

TEST(BayesClassifier, TrainingValidatesInputs) {
  const auto a = normal_sample(0.0, 1.0, 100, 16);
  EXPECT_THROW(BayesClassifier::train({a}, {1.0}), linkpad::ContractViolation);
  EXPECT_THROW(BayesClassifier::train({a, a}, {0.7, 0.7}),
               linkpad::ContractViolation);
  const std::vector<double> tiny = {1.0};
  EXPECT_THROW(BayesClassifier::train({a, tiny}, {0.5, 0.5}),
               linkpad::ContractViolation);
}

TEST(BayesClassifier, ThreeClassClassification) {
  const auto a = normal_sample(0.0, 0.8, 3000, 17);
  const auto b = normal_sample(4.0, 0.8, 3000, 18);
  const auto c = normal_sample(8.0, 0.8, 3000, 19);
  auto clf = BayesClassifier::train({a, b, c},
                                    {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0});
  EXPECT_EQ(clf.classify(0.0), 0);
  EXPECT_EQ(clf.classify(4.0), 1);
  EXPECT_EQ(clf.classify(8.0), 2);
  EXPECT_EQ(clf.num_classes(), 3u);
}

}  // namespace
}  // namespace linkpad::classify
