#include "classify/density_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

std::vector<double> normal_sample(double mu, double sigma, int n,
                                  std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  stats::Normal dist(mu, sigma);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(GaussianDensity, FitsSampleMoments) {
  const auto xs = normal_sample(3.0, 2.0, 50000, 1);
  GaussianDensity d(xs);
  EXPECT_NEAR(d.mean(), 3.0, 0.05);
  EXPECT_NEAR(d.sigma(), 2.0, 0.05);
}

TEST(GaussianDensity, PdfMatchesNormalClosedForm) {
  GaussianDensity d(1.0, 0.5);
  stats::Normal ref(1.0, 0.5);
  for (double x : {0.0, 1.0, 2.0}) {
    EXPECT_NEAR(d.pdf(x), ref.pdf(x), 1e-12);
    EXPECT_NEAR(d.log_pdf(x), ref.log_pdf(x), 1e-12);
  }
}

TEST(KdeDensity, ApproximatesTrueDensity) {
  const auto xs = normal_sample(0.0, 1.0, 20000, 2);
  KdeDensity d(xs);
  stats::Normal ref(0.0, 1.0);
  EXPECT_NEAR(d.pdf(0.0), ref.pdf(0.0), 0.03);
  EXPECT_NEAR(d.pdf(1.0), ref.pdf(1.0), 0.03);
}

TEST(HistogramDensity, PositiveEverywhereAfterSmoothing) {
  const auto xs = normal_sample(0.0, 1.0, 1000, 3);
  HistogramDensity d(xs, 32);
  EXPECT_GT(d.pdf(100.0), 0.0);        // outside training range
  EXPECT_TRUE(std::isfinite(d.log_pdf(100.0)));
  EXPECT_GT(d.pdf(0.0), d.pdf(100.0));  // still informative
}

TEST(HistogramDensity, RoughlyNormalizedOverRange) {
  const auto xs = normal_sample(0.0, 1.0, 50000, 4);
  HistogramDensity d(xs, 64);
  double mass = 0.0;
  const double lo = -6.0, hi = 6.0;
  const int steps = 2000;
  for (int i = 0; i < steps; ++i) {
    mass += d.pdf(lo + (i + 0.5) * (hi - lo) / steps) * (hi - lo) / steps;
  }
  EXPECT_NEAR(mass, 1.0, 0.02);
}

TEST(DensityFactory, ProducesRequestedKind) {
  const auto xs = normal_sample(0.0, 1.0, 100, 5);
  EXPECT_EQ(make_density(DensityKind::kKde, xs)->name(), "kde");
  EXPECT_EQ(make_density(DensityKind::kGaussian, xs)->name(), "gaussian");
  EXPECT_EQ(make_density(DensityKind::kHistogram, xs)->name(), "histogram");
}

TEST(GaussianDensity, RejectsTinySample) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(GaussianDensity{one}, linkpad::ContractViolation);
}

TEST(GaussianDensity, ConstantSampleStaysFinite) {
  const std::vector<double> xs(100, 2.5);
  GaussianDensity d(xs);
  EXPECT_TRUE(std::isfinite(d.log_pdf(2.5)));
  EXPECT_TRUE(std::isfinite(d.log_pdf(3.0)));
}

}  // namespace
}  // namespace linkpad::classify
