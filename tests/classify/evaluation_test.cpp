#include "classify/evaluation.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace linkpad::classify {
namespace {

TEST(ConfusionMatrix, CountsByTruthAndPrediction) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.count(0, 0), 1u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(1, 0), 0u);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.row_total(0), 2u);
}

TEST(ConfusionMatrix, PerClassRates) {
  ConfusionMatrix cm(2);
  for (int i = 0; i < 9; ++i) cm.add(0, 0);
  cm.add(0, 1);
  for (int i = 0; i < 6; ++i) cm.add(1, 1);
  for (int i = 0; i < 4; ++i) cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.per_class_rate(0), 0.9);
  EXPECT_DOUBLE_EQ(cm.per_class_rate(1), 0.6);
}

TEST(ConfusionMatrix, DetectionRateIsPriorWeighted) {
  ConfusionMatrix cm(2);
  for (int i = 0; i < 9; ++i) cm.add(0, 0);
  cm.add(0, 1);
  for (int i = 0; i < 6; ++i) cm.add(1, 1);
  for (int i = 0; i < 4; ++i) cm.add(1, 0);
  // Equal priors: (0.9 + 0.6) / 2 = 0.75  (paper eq. 7)
  EXPECT_DOUBLE_EQ(cm.detection_rate(), 0.75);
  // Skewed priors weigh class 0 more.
  EXPECT_DOUBLE_EQ(cm.detection_rate({0.9, 0.1}), 0.9 * 0.9 + 0.1 * 0.6);
}

TEST(ConfusionMatrix, EmptyClassContributesZero) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.per_class_rate(1), 0.0);
}

TEST(ConfusionMatrix, MergeAddsCounts) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 0);
  b.add(1, 0);
  a.merge(b);
  EXPECT_EQ(a.count(0, 0), 2u);
  EXPECT_EQ(a.count(1, 0), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(ConfusionMatrix, MergeRequiresSameShape) {
  ConfusionMatrix a(2), b(3);
  EXPECT_THROW(a.merge(b), linkpad::ContractViolation);
}

TEST(ConfusionMatrix, MergedShardsMatchWholeEvaluationUnderSkewedPriors) {
  // Parallel evaluation shards merge into the same prior-weighted rate the
  // whole test set would have produced — for ANY priors, not just uniform.
  ConfusionMatrix shard_a(2), shard_b(2), whole(2);
  const auto record = [&](ClassLabel truth, ClassLabel predicted,
                          ConfusionMatrix& shard, int times) {
    for (int i = 0; i < times; ++i) {
      shard.add(truth, predicted);
      whole.add(truth, predicted);
    }
  };
  record(0, 0, shard_a, 7);
  record(0, 1, shard_a, 1);
  record(1, 1, shard_a, 2);
  record(0, 0, shard_b, 2);
  record(0, 1, shard_b, 2);
  record(1, 1, shard_b, 5);
  record(1, 0, shard_b, 5);

  shard_a.merge(shard_b);
  const std::vector<double> priors = {0.8, 0.2};
  EXPECT_DOUBLE_EQ(shard_a.detection_rate(priors),
                   whole.detection_rate(priors));
  // Hand check: class 0 = 9/12 correct, class 1 = 7/12 correct.
  EXPECT_DOUBLE_EQ(shard_a.detection_rate(priors),
                   0.8 * (9.0 / 12.0) + 0.2 * (7.0 / 12.0));
  // Merging must not have disturbed the per-class row totals.
  EXPECT_EQ(shard_a.row_total(0), 12u);
  EXPECT_EQ(shard_a.row_total(1), 12u);
}

TEST(ConfusionMatrix, ThreeClassNonUniformPriors) {
  ConfusionMatrix cm(3);
  for (int i = 0; i < 4; ++i) cm.add(0, 0);
  cm.add(0, 2);                              // class 0: 4/5
  for (int i = 0; i < 3; ++i) cm.add(1, 1);  // class 1: 3/3
  cm.add(2, 0);
  cm.add(2, 2);                              // class 2: 1/2
  const std::vector<double> priors = {0.5, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(cm.detection_rate(priors),
                   0.5 * 0.8 + 0.3 * 1.0 + 0.2 * 0.5);
  // A class the priors ignore cannot move the rate.
  ConfusionMatrix ignored = cm;
  ignored.add(2, 1);
  EXPECT_DOUBLE_EQ(ignored.detection_rate({0.5, 0.5, 0.0}),
                   0.5 * 0.8 + 0.5 * 1.0);
}

TEST(ConfusionMatrix, BoundsChecked) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), linkpad::ContractViolation);
  EXPECT_THROW(cm.add(0, -1), linkpad::ContractViolation);
  EXPECT_THROW(cm.count(5, 0), linkpad::ContractViolation);
}

TEST(ConfusionMatrix, ToStringMentionsRates) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 1);
  const auto s = cm.to_string();
  EXPECT_NE(s.find("class 0"), std::string::npos);
  EXPECT_NE(s.find("rate"), std::string::npos);
}

TEST(ConfusionMatrix, DetectionRateValidatesPriors) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_THROW(cm.detection_rate({1.0}), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::classify
