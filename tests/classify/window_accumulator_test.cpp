// Streaming-vs-batch feature equivalence at the window level: for every
// FeatureKind, a WindowAccumulator fed sample by sample (in any batch
// chopping) must reproduce the batch FeatureExtractor — bit-identically for
// mean/variance/entropy and the exact-quantile MAD/IQR, and within the
// documented P² tolerance for the sketch-based MAD/IQR.
#include "classify/window_accumulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

constexpr double kBinWidth = 3e-6;

std::vector<double> piat_like_stream(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  stats::Normal dist(10e-3, 10e-6);
  std::vector<double> xs(count);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

AccumulatorOptions exact_options() {
  AccumulatorOptions options;
  options.entropy_bin_width = kBinWidth;
  return options;
}

const std::vector<FeatureKind> kAllFeatures = {
    FeatureKind::kSampleMean,          FeatureKind::kSampleVariance,
    FeatureKind::kSampleEntropy,       FeatureKind::kMedianAbsDeviation,
    FeatureKind::kInterquartileRange,
};

/// Chop `stream` into windows of `n`, but DELIVER it in batches of
/// `batch` — crossing window boundaries mid-batch, exactly like the
/// engine's backend pulls. Returns one feature value per complete window.
std::vector<double> streamed_features(WindowAccumulator& acc,
                                      const std::vector<double>& stream,
                                      std::size_t n, std::size_t batch) {
  std::vector<double> features;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t take = std::min(batch, stream.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      acc.add(stream[offset + i]);
      if (acc.count() == n) {
        features.push_back(acc.value());
        acc.reset();
      }
    }
    offset += take;
  }
  return features;
}

TEST(WindowAccumulator, BitIdenticalToBatchExtractorAtAnyBatchSize) {
  const std::size_t n = 500;
  const auto stream = piat_like_stream(8 * n + 123, 7);  // partial tail

  for (const auto kind : kAllFeatures) {
    const auto extractor = make_feature(kind, kBinWidth);
    auto acc = make_window_accumulator(kind, exact_options());
    // Batch sizes: tiny, engine default, and the whole stream at once.
    for (const std::size_t batch : {std::size_t{64}, std::size_t{8192},
                                    stream.size()}) {
      const auto streamed = streamed_features(*acc, stream, n, batch);
      ASSERT_EQ(streamed.size(), 8u) << extractor->name();
      for (std::size_t w = 0; w < streamed.size(); ++w) {
        const std::span<const double> window(stream.data() + w * n, n);
        // Bit-identical, not just close: streaming and batch share their
        // accumulation recurrences (window_accumulator.hpp).
        EXPECT_EQ(streamed[w], extractor->extract(window))
            << extractor->name() << " window " << w << " batch " << batch;
      }
      acc->reset();
    }
  }
}

TEST(WindowAccumulator, SketchedQuantilesWithinDocumentedTolerance) {
  const std::size_t n = 2000;
  const auto stream = piat_like_stream(4 * n, 8);

  AccumulatorOptions options = exact_options();
  options.quantile_mode = QuantileMode::kP2Sketch;

  for (const auto kind :
       {FeatureKind::kMedianAbsDeviation, FeatureKind::kInterquartileRange}) {
    const auto extractor = make_feature(kind, kBinWidth);
    auto acc = make_window_accumulator(kind, options);
    const auto streamed = streamed_features(*acc, stream, n, 8192);
    ASSERT_EQ(streamed.size(), 4u);
    for (std::size_t w = 0; w < streamed.size(); ++w) {
      const std::span<const double> window(stream.data() + w * n, n);
      const double exact = extractor->extract(window);
      EXPECT_GT(streamed[w], 0.0);
      // quantile_sketch.hpp documents ~1% P² accuracy; MAD adds the
      // running-median warm-up, so allow a few percent.
      EXPECT_NEAR(streamed[w], exact, 0.10 * exact)
          << extractor->name() << " window " << w;
    }
  }
}

TEST(WindowAccumulator, SketchModeUsesConstantMemoryAccumulators) {
  AccumulatorOptions options;
  options.quantile_mode = QuantileMode::kP2Sketch;
  auto mad = make_window_accumulator(FeatureKind::kMedianAbsDeviation, options);
  auto iqr = make_window_accumulator(FeatureKind::kInterquartileRange, options);
  EXPECT_EQ(mad->name(), "MAD (P2)");
  EXPECT_EQ(iqr->name(), "IQR (P2)");
}

TEST(WindowAccumulator, ResetIsolatesConsecutiveWindows) {
  // One accumulator reused across windows (the bank's hot path) must match
  // fresh per-window extraction — no state bleed.
  const auto stream = piat_like_stream(300, 9);
  auto acc = make_window_accumulator(FeatureKind::kSampleVariance);
  const auto extractor = make_feature(FeatureKind::kSampleVariance);
  const auto features = streamed_features(*acc, stream, 100, 77);
  ASSERT_EQ(features.size(), 3u);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(features[w],
              extractor->extract({stream.data() + w * 100, std::size_t{100}}));
  }
}

TEST(WindowAccumulator, EntropyRequiresBinWidth) {
  EXPECT_THROW(make_window_accumulator(FeatureKind::kSampleEntropy),
               linkpad::ContractViolation);
  try {
    (void)make_window_accumulator(FeatureKind::kSampleEntropy);
    FAIL() << "defaulted bin width must not be accepted";
  } catch (const linkpad::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("entropy_bin_width"),
              std::string::npos)
        << e.what();
  }
}

TEST(WindowAccumulator, CountTracksAddsAndReset) {
  auto acc = make_window_accumulator(FeatureKind::kSampleMean);
  EXPECT_EQ(acc->count(), 0u);
  acc->add_batch(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(acc->count(), 3u);
  EXPECT_DOUBLE_EQ(acc->value(), 2.0);
  acc->reset();
  EXPECT_EQ(acc->count(), 0u);
}

}  // namespace
}  // namespace linkpad::classify
