#include "classify/edf_classifier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

std::vector<double> synthetic_piats(double mu, double sigma, std::size_t n,
                                    std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  stats::Normal dist(mu, sigma);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(EdfClassifier, SeparatesVarianceRatioClasses) {
  // Same-mean, r = 2 streams — the paper's Fig 2 situation.
  const double mu = 10e-3, sl = 10e-6, sh = sl * std::sqrt(2.0);
  const auto clf = EdfClassifier::train(
      {synthetic_piats(mu, sl, 60000, 1), synthetic_piats(mu, sh, 60000, 2)});
  const auto cm = clf.evaluate(
      {synthetic_piats(mu, sl, 200 * 100, 3),
       synthetic_piats(mu, sh, 200 * 100, 4)},
      200);
  EXPECT_GT(cm.detection_rate(), 0.85);
}

TEST(EdfClassifier, BeatsChanceOnlyWhenClassesDiffer) {
  const double mu = 10e-3, s = 10e-6;
  const auto clf = EdfClassifier::train(
      {synthetic_piats(mu, s, 40000, 5), synthetic_piats(mu, s, 40000, 6)});
  const auto cm = clf.evaluate(
      {synthetic_piats(mu, s, 200 * 80, 7),
       synthetic_piats(mu, s, 200 * 80, 8)},
      200);
  EXPECT_NEAR(cm.detection_rate(), 0.5, 0.1);
}

TEST(EdfClassifier, DetectsMeanShiftsTooUnlikeDispersionFeatures) {
  // EDF sees location differences the variance/entropy features ignore.
  const double s = 10e-6;
  const auto clf = EdfClassifier::train(
      {synthetic_piats(10e-3, s, 40000, 9),
       synthetic_piats(10.003e-3, s, 40000, 10)});
  const auto cm = clf.evaluate(
      {synthetic_piats(10e-3, s, 200 * 80, 11),
       synthetic_piats(10.003e-3, s, 200 * 80, 12)},
      200);
  EXPECT_GT(cm.detection_rate(), 0.9);
}

TEST(EdfClassifier, CvmDistanceWorksAsWell) {
  const double mu = 10e-3, sl = 10e-6, sh = sl * std::sqrt(2.0);
  const auto clf = EdfClassifier::train(
      {synthetic_piats(mu, sl, 60000, 13), synthetic_piats(mu, sh, 60000, 14)},
      EdfDistance::kCramerVonMises);
  const auto cm = clf.evaluate(
      {synthetic_piats(mu, sl, 200 * 80, 15),
       synthetic_piats(mu, sh, 200 * 80, 16)},
      200);
  EXPECT_GT(cm.detection_rate(), 0.85);
  EXPECT_EQ(clf.distance_kind(), EdfDistance::kCramerVonMises);
}

TEST(EdfClassifier, DistancesOrderSensibly) {
  const double mu = 10e-3, sl = 10e-6, sh = 30e-6;
  const auto clf = EdfClassifier::train(
      {synthetic_piats(mu, sl, 40000, 17), synthetic_piats(mu, sh, 40000, 18)});
  const auto window = synthetic_piats(mu, sl, 500, 19);
  const auto ds = clf.distances(window);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_LT(ds[0], ds[1]);
  EXPECT_EQ(clf.classify_window(window), 0);
}

TEST(EdfClassifier, ReferenceThinningPreservesAccuracy) {
  const double mu = 10e-3, sl = 10e-6, sh = sl * std::sqrt(2.0);
  const auto full = EdfClassifier::train(
      {synthetic_piats(mu, sl, 50000, 20), synthetic_piats(mu, sh, 50000, 21)},
      EdfDistance::kKolmogorovSmirnov, 100000);
  const auto thinned = EdfClassifier::train(
      {synthetic_piats(mu, sl, 50000, 20), synthetic_piats(mu, sh, 50000, 21)},
      EdfDistance::kKolmogorovSmirnov, 2000);
  const std::vector<std::vector<double>> test = {
      synthetic_piats(mu, sl, 200 * 60, 22),
      synthetic_piats(mu, sh, 200 * 60, 23)};
  const double v_full = full.evaluate(test, 200).detection_rate();
  const double v_thin = thinned.evaluate(test, 200).detection_rate();
  EXPECT_NEAR(v_full, v_thin, 0.08);
}

TEST(EdfClassifier, ThreeClasses) {
  const double mu = 10e-3;
  const auto clf = EdfClassifier::train({
      synthetic_piats(mu, 10e-6, 40000, 24),
      synthetic_piats(mu, 20e-6, 40000, 25),
      synthetic_piats(mu, 40e-6, 40000, 26),
  });
  EXPECT_EQ(clf.num_classes(), 3u);
  const auto cm = clf.evaluate(
      {synthetic_piats(mu, 10e-6, 200 * 50, 27),
       synthetic_piats(mu, 20e-6, 200 * 50, 28),
       synthetic_piats(mu, 40e-6, 200 * 50, 29)},
      200);
  EXPECT_GT(cm.detection_rate(), 0.7);
}

TEST(EdfClassifier, InvalidInputsRejected) {
  const auto stream = synthetic_piats(0.0, 1.0, 100, 30);
  EXPECT_THROW(EdfClassifier::train({stream}), linkpad::ContractViolation);
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW(EdfClassifier::train({stream, tiny}),
               linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::classify
