// DetectorBank correctness: a bank fed the capture in streaming batches must
// reproduce the batch Adversary (features, classifier, confusion) bit for
// bit, for every feature and any batch chopping; EDF detectors must match
// EdfClassifier when no thinning is involved.
#include "classify/detector_bank.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "classify/adversary.hpp"
#include "classify/edf_classifier.hpp"
#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

/// Two synthetic PIAT classes with the paper's structure: equal means,
/// different variances.
std::vector<std::vector<double>> two_class_streams(std::size_t count,
                                                   std::uint64_t seed) {
  util::Rng rng_low(seed);
  util::Rng rng_high(seed + 1);
  stats::Normal low(10e-3, 10e-6);
  stats::Normal high(10e-3, 14e-6);
  std::vector<std::vector<double>> streams(2);
  streams[0].resize(count);
  streams[1].resize(count);
  for (auto& x : streams[0]) x = low.sample(rng_low);
  for (auto& x : streams[1]) x = high.sample(rng_high);
  return streams;
}

/// Feed per-class data through `consume` in batches of `batch`.
template <typename Consume>
void feed(const std::vector<std::vector<double>>& streams, std::size_t batch,
          const Consume& consume) {
  for (std::size_t c = 0; c < streams.size(); ++c) {
    const auto& stream = streams[c];
    for (std::size_t offset = 0; offset < stream.size(); offset += batch) {
      const std::size_t take = std::min(batch, stream.size() - offset);
      consume(c, std::span<const double>(stream.data() + offset, take));
    }
  }
}

void run_bank(DetectorBank& bank,
              const std::vector<std::vector<double>>& train,
              const std::vector<std::vector<double>>& test,
              std::size_t batch) {
  if (bank.needs_prepass()) {
    feed(train, batch, [&](std::size_t, std::span<const double> b) {
      bank.consume_prepass(b);
    });
    bank.finish_prepass();
  }
  feed(train, batch, [&](std::size_t c, std::span<const double> b) {
    bank.consume_training(c, b);
  });
  bank.train();
  feed(test, batch, [&](std::size_t c, std::span<const double> b) {
    bank.consume_test(c, b);
  });
}

const std::vector<FeatureKind> kAllFeatures = {
    FeatureKind::kSampleMean,          FeatureKind::kSampleVariance,
    FeatureKind::kSampleEntropy,       FeatureKind::kMedianAbsDeviation,
    FeatureKind::kInterquartileRange,
};

TEST(DetectorBank, ReproducesBatchAdversaryBitForBit) {
  const std::size_t n = 200;
  const std::size_t windows = 25;
  const auto train = two_class_streams(windows * n, 21);
  const auto test = two_class_streams(windows * n, 77);

  AdversaryConfig base;
  base.window_size = n;

  for (const std::size_t batch :
       {std::size_t{64}, std::size_t{8192}, windows * n}) {
    DetectorBank bank(base, kAllFeatures, 2);
    run_bank(bank, train, test, batch);

    for (std::size_t f = 0; f < kAllFeatures.size(); ++f) {
      AdversaryConfig cfg = base;
      cfg.feature = kAllFeatures[f];
      Adversary adversary(cfg);
      adversary.train(train);
      const auto cm = adversary.evaluate(test);

      const auto& detector = bank.detector(f);
      // Training features identical (same windows, same recurrences)...
      ASSERT_EQ(detector.training_features().size(), 2u);
      for (std::size_t c = 0; c < 2; ++c) {
        ASSERT_EQ(detector.training_features()[c].size(), windows);
        for (std::size_t w = 0; w < windows; ++w) {
          EXPECT_EQ(detector.training_features()[c][w],
                    adversary.training_features()[c][w])
              << detector.name() << " batch " << batch;
        }
      }
      // ...so the fitted rule and every verdict agree exactly.
      EXPECT_EQ(detector.confusion().total(), cm.total());
      for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
          EXPECT_EQ(detector.confusion().count(static_cast<ClassLabel>(i),
                                               static_cast<ClassLabel>(j)),
                    cm.count(static_cast<ClassLabel>(i),
                             static_cast<ClassLabel>(j)))
              << detector.name() << " batch " << batch;
        }
      }
      EXPECT_EQ(detector.detection_rate(), cm.detection_rate())
          << detector.name();
    }
  }
}

TEST(DetectorBank, AutoEntropyBinWidthMatchesAdversary) {
  const std::size_t n = 150;
  const auto train = two_class_streams(20 * n, 31);
  const auto test = two_class_streams(20 * n, 87);

  AdversaryConfig base;
  base.window_size = n;
  base.feature = FeatureKind::kSampleEntropy;  // entropy_bin_width left 0.0

  DetectorBank bank(base, {FeatureKind::kSampleEntropy}, 2);
  ASSERT_TRUE(bank.needs_prepass());
  run_bank(bank, train, test, 256);

  Adversary adversary(base);
  adversary.train(train);
  // Scott-rule Δh selected from the same pooled moments, in the same class
  // order: bit-identical.
  EXPECT_EQ(bank.detector(0).entropy_bin_width(),
            adversary.entropy_bin_width());
  EXPECT_EQ(bank.detector(0).detection_rate(),
            adversary.evaluate(test).detection_rate());
}

TEST(DetectorBank, EdfDetectorMatchesEdfClassifierWithoutThinning) {
  const std::size_t n = 100;
  const auto train = two_class_streams(12 * n, 41);
  const auto test = two_class_streams(12 * n, 97);

  for (const auto distance :
       {EdfDistance::kKolmogorovSmirnov, EdfDistance::kCramerVonMises}) {
    DetectorSpec spec;
    spec.adversary.window_size = n;
    spec.edf = distance;
    // References exceed the stream length: no thinning on either path, so
    // the streamed references equal the batch classifier's exactly.
    spec.edf_max_reference = 10 * 12 * n;

    DetectorBank bank({spec}, 2);
    run_bank(bank, train, test, 512);

    const auto clf =
        EdfClassifier::train(train, distance, spec.edf_max_reference);
    const auto cm = clf.evaluate(test, n);
    EXPECT_EQ(bank.detector(0).confusion().total(), cm.total());
    EXPECT_EQ(bank.detector(0).detection_rate(), cm.detection_rate());
  }
}

TEST(DetectorBank, EdfProgressiveThinningStaysClose) {
  const std::size_t n = 100;
  const auto train = two_class_streams(40 * n, 51);
  const auto test = two_class_streams(20 * n, 107);

  DetectorSpec spec;
  spec.adversary.window_size = n;
  spec.edf = EdfDistance::kKolmogorovSmirnov;
  spec.edf_max_reference = 500;  // forces progressive thinning

  DetectorBank bank({spec}, 2);
  run_bank(bank, train, test, 512);

  const auto clf = EdfClassifier::train(train, *spec.edf,
                                        spec.edf_max_reference);
  const auto batch_rate = clf.evaluate(test, n).detection_rate();
  // Thinned references approximate the full-sort thin; the verdict must
  // stay in the same regime (documented tolerance of the streaming EDF).
  EXPECT_NEAR(bank.detector(0).detection_rate(), batch_rate, 0.1);
}

TEST(DetectorBank, NonUniformPriorsReachEveryDetector) {
  const std::size_t n = 100;
  const auto train = two_class_streams(15 * n, 61);
  const auto test = two_class_streams(15 * n, 117);

  AdversaryConfig base;
  base.window_size = n;
  DetectorBank bank(base, {FeatureKind::kSampleVariance}, 2);
  if (bank.needs_prepass()) bank.finish_prepass();
  feed(train, 4096, [&](std::size_t c, std::span<const double> b) {
    bank.consume_training(c, b);
  });
  bank.train({0.9, 0.1});
  feed(test, 4096, [&](std::size_t c, std::span<const double> b) {
    bank.consume_test(c, b);
  });

  const auto& detector = bank.detector(0);
  EXPECT_DOUBLE_EQ(detector.detection_rate(),
                   detector.confusion().detection_rate({0.9, 0.1}));
}

TEST(DetectorBank, PhaseOrderEnforced) {
  AdversaryConfig base;
  base.window_size = 10;
  DetectorBank bank(base, {FeatureKind::kSampleVariance}, 2);
  const std::vector<double> data(25, 0.01);

  EXPECT_THROW(bank.consume_test(0, data), linkpad::ContractViolation);
  bank.consume_training(0, data);
  // Only one training window per class so far: train() must refuse.
  EXPECT_THROW(bank.train(), linkpad::ContractViolation);
}

TEST(DetectorBank, RejectsEmptyAndMalformedConfigs) {
  EXPECT_THROW(DetectorBank({}, 2), linkpad::ContractViolation);
  AdversaryConfig base;
  base.window_size = 1;  // windows need >= 2 samples
  EXPECT_THROW(DetectorBank(base, {FeatureKind::kSampleMean}, 2),
               linkpad::ContractViolation);
  // Undersized EDF references fail at construction (EdfClassifier's floor),
  // not deep inside train().
  DetectorSpec tiny;
  tiny.adversary.window_size = 10;
  tiny.edf = EdfDistance::kKolmogorovSmirnov;
  tiny.edf_max_reference = 8;
  EXPECT_THROW(DetectorBank({tiny}, 2), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::classify
