// Streaming change-point detector contract (DESIGN.md §2.12):
//
//  * a CPD detector's outcome is independent of test batch boundaries, and
//    cpd_outcome_at(prefix) after one ragged pass equals a fresh,
//    identically-trained bank fed only that prefix;
//  * checkpoint() forks the full mid-stream CPD state — fork and original
//    evolve independently, and a resumed fork matches an uninterrupted
//    detector exactly;
//  * Monte-Carlo ARL0 calibration is deterministic in its seed and meets
//    the false-alarm target on FRESH null replays (Wilson interval check);
//  * the experiment engine / population engine / shard pipeline thread the
//    time-to-detection outcomes end to end, bit-identically at any thread
//    count and across the shard-file round-trip.
#include "classify/cpd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "classify/detector_bank.hpp"
#include "core/experiment.hpp"
#include "core/population.hpp"
#include "core/scenarios.hpp"
#include "core/shard_io.hpp"
#include "stats/concentration.hpp"
#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::classify {
namespace {

constexpr std::size_t kTrainPerClass = 1500;
constexpr std::size_t kTestPerClass = 2500;

std::vector<double> synthetic_stream(double mean, double sigma,
                                     std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  const stats::Normal dist(mean, sigma);
  std::vector<double> out(count);
  for (auto& x : out) x = dist.sample(rng);
  return out;
}

struct Capture {
  std::vector<std::vector<double>> train;  // per class
  std::vector<std::vector<double>> test;
};

/// Two overlapping-but-distinct Gaussian PIAT populations: class 1 is both
/// shifted and wider, so the CUSUM and the adaptive-EWMA each have
/// something to key on.
const Capture& capture() {
  static const Capture c = [] {
    Capture out;
    out.train = {synthetic_stream(1.00, 0.10, 1, kTrainPerClass),
                 synthetic_stream(1.06, 0.14, 2, kTrainPerClass)};
    out.test = {synthetic_stream(1.00, 0.10, 3, kTestPerClass),
                synthetic_stream(1.06, 0.14, 4, kTestPerClass)};
    return out;
  }();
  return c;
}

std::vector<DetectorSpec> cpd_specs(double target_far = 0.0) {
  std::vector<DetectorSpec> specs;
  for (const auto kind : {CpdKind::kCusum, CpdKind::kAdaptiveEwma}) {
    DetectorSpec spec;
    spec.cpd.emplace();
    spec.cpd->kind = kind;
    if (target_far > 0.0) {
      spec.cpd->target_far = target_far;
      spec.cpd->horizon = 500;
      spec.cpd->trials = 80;
    } else {
      spec.cpd->threshold = 5.0;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

DetectorBank trained_bank(double target_far = 0.0) {
  DetectorBank bank(cpd_specs(target_far), 2);
  for (std::size_t c = 0; c < 2; ++c) {
    bank.consume_training(c, capture().train[c]);
  }
  bank.train();
  return bank;
}

void expect_same_outcome(const CpdOutcome& a, const CpdOutcome& b,
                         const std::string& label) {
  EXPECT_EQ(a.kind, b.kind) << label;
  EXPECT_EQ(a.threshold, b.threshold) << label;  // bitwise
  EXPECT_EQ(a.ttd.detected, b.ttd.detected) << label;
  EXPECT_EQ(a.ttd.n_at_detection, b.ttd.n_at_detection) << label;
  EXPECT_EQ(a.ttd.false_alarms, b.ttd.false_alarms) << label;
}

void feed_test_prefix(DetectorBank& bank, std::size_t prefix) {
  for (std::size_t c = 0; c < 2; ++c) {
    bank.consume_test(
        c, std::span<const double>(capture().test[c]).first(prefix));
  }
}

// ------------------------------------------------------- batch boundaries

TEST(CpdBank, OutcomeIndependentOfBatchBoundaries) {
  DetectorBank whole = trained_bank();
  feed_test_prefix(whole, kTestPerClass);

  DetectorBank ragged = trained_bank();
  for (std::size_t c = 0; c < 2; ++c) {
    std::span<const double> stream(capture().test[c]);
    for (const std::size_t piece : {7ul, 1ul, 24ul, 999ul}) {
      ragged.consume_test(c, stream.first(piece));
      stream = stream.subspan(piece);
    }
    ragged.consume_test(c, stream);
  }

  for (std::size_t d = 0; d < whole.size(); ++d) {
    expect_same_outcome(ragged.detector(d).cpd_outcome(),
                        whole.detector(d).cpd_outcome(),
                        whole.detector(d).name());
  }
}

// ------------------------------------------------------------ checkpoints

TEST(CpdBank, EvaluateAtMatchesFreshBankFedPrefix) {
  const std::vector<std::size_t> prefixes = {1, 100, 101, kTestPerClass};
  DetectorBank bank = trained_bank();
  bank.arm_checkpoints(prefixes);
  // Ragged batches across the checkpoint boundaries.
  for (std::size_t c = 0; c < 2; ++c) {
    std::span<const double> stream(capture().test[c]);
    for (const std::size_t piece : {99ul, 1ul, 3ul, 1500ul}) {
      bank.consume_test(c, stream.first(piece));
      stream = stream.subspan(piece);
    }
    bank.consume_test(c, stream);
  }

  for (const std::size_t prefix : prefixes) {
    DetectorBank reference = trained_bank();
    feed_test_prefix(reference, prefix);
    for (std::size_t d = 0; d < bank.size(); ++d) {
      expect_same_outcome(bank.detector(d).cpd_outcome_at(prefix),
                          reference.detector(d).cpd_outcome(),
                          bank.detector(d).name() + " prefix " +
                              std::to_string(prefix));
    }
  }
}

TEST(CpdBank, ForkedBankResumesAndDivergesIndependently) {
  DetectorBank original = trained_bank();
  feed_test_prefix(original, 137);  // mid-stream state

  DetectorBank fork = original.checkpoint();
  for (std::size_t c = 0; c < 2; ++c) {
    const std::span<const double> rest =
        std::span<const double>(capture().test[c]).subspan(137);
    original.consume_test(c, rest);
    fork.consume_test(c, rest);
  }
  for (std::size_t d = 0; d < original.size(); ++d) {
    expect_same_outcome(fork.detector(d).cpd_outcome(),
                        original.detector(d).cpd_outcome(), "resumed fork");
  }

  // An uninterrupted bank fed the identical stream agrees too.
  DetectorBank uninterrupted = trained_bank();
  feed_test_prefix(uninterrupted, kTestPerClass);
  for (std::size_t d = 0; d < original.size(); ++d) {
    expect_same_outcome(original.detector(d).cpd_outcome(),
                        uninterrupted.detector(d).cpd_outcome(),
                        "uninterrupted");
  }

  // Diverging continuations do not leak into each other: feed the fork's
  // class-0 stream the (shifted) class-1 capture and its CUSUM state must
  // part ways with the original's.
  DetectorBank diverged = uninterrupted.checkpoint();
  diverged.consume_test(0, capture().test[1]);
  EXPECT_NE(diverged.detector(0).cpd_outcome().ttd.false_alarms +
                diverged.detector(0).cpd_outcome().ttd.n_at_detection,
            uninterrupted.detector(0).cpd_outcome().ttd.false_alarms +
                uninterrupted.detector(0).cpd_outcome().ttd.n_at_detection);
}

// ------------------------------------------------------------ calibration

TEST(CpdCalibration, DeterministicInSeed) {
  CpdConfig config;
  config.kind = CpdKind::kCusum;
  config.target_far = 0.05;
  config.horizon = 1000;
  config.trials = 200;
  config.calibration_seed = 20030324;
  const auto a = CpdModel::train(config, capture().train);
  const auto b = CpdModel::train(config, capture().train);
  EXPECT_EQ(a.threshold(), b.threshold());  // bitwise

  config.calibration_seed = 20030325;
  const auto c = CpdModel::train(config, capture().train);
  EXPECT_NE(a.threshold(), c.threshold());
}

TEST(CpdCalibration, MeetsFalseAlarmTargetOnFreshNullReplays) {
  // Calibrate h for a 5% within-horizon false-alarm probability, then
  // measure the realized rate on FRESH bootstrap null replays (disjoint
  // RNG substreams). The Wilson 99% interval around the fresh estimate
  // must contain the target. Fully seeded: this test is deterministic.
  constexpr double kTargetFar = 0.05;
  constexpr std::size_t kHorizon = 1000;
  CpdConfig config;
  config.kind = CpdKind::kCusum;
  config.target_far = kTargetFar;
  config.horizon = kHorizon;
  config.trials = 600;
  config.calibration_seed = 20030324;
  const auto model = CpdModel::train(config, capture().train);
  ASSERT_GT(model.threshold(), 0.0);

  constexpr std::size_t kFreshTrials = 600;
  const util::RngFactory factory(0xf4e50524c0ffee01ULL);
  std::size_t alarms = 0;
  std::vector<double> stream(kHorizon);
  for (std::size_t t = 0; t < kFreshTrials; ++t) {
    auto rng = factory.make(t);
    bool fired = false;
    for (const std::size_t side :
         {CpdModel::kSideHigh, CpdModel::kSideLow}) {
      const auto& pool =
          capture().train[side == CpdModel::kSideHigh ? 0 : 1];
      const double size = static_cast<double>(pool.size());
      for (auto& x : stream) {
        x = pool[static_cast<std::size_t>(rng.uniform01() * size)];
      }
      if (model.max_statistic(side, stream) > model.threshold()) fired = true;
    }
    if (fired) ++alarms;
  }

  const auto ci = stats::wilson_interval(alarms, kFreshTrials, 0.99);
  EXPECT_LE(ci.lo, kTargetFar)
      << "fresh false-alarm rate " << ci.point << " too high";
  EXPECT_GE(ci.hi, kTargetFar)
      << "fresh false-alarm rate " << ci.point << " too low";
}

TEST(CpdModel, EqualTrainingMeansNeverFireEwma) {
  // A perfectly equalizing defense: both classes train to the SAME pool.
  // The adaptive-EWMA's presumed drift is then exactly zero and the
  // detector must honestly never fire, no matter the stream.
  const std::vector<std::vector<double>> pools = {capture().train[0],
                                                  capture().train[0]};
  CpdConfig config;
  config.kind = CpdKind::kAdaptiveEwma;
  config.threshold = 1e-9;
  const auto model = CpdModel::train(config, pools);
  auto state = model.initial_state();
  for (const double x : capture().test[1]) model.update(state, x);
  EXPECT_EQ(state.high.alarms, 0u);
  EXPECT_EQ(state.low.alarms, 0u);
  EXPECT_FALSE(model.time_to_detection(std::vector<CpdClassState>{
      state, state}).detected);
}

TEST(CpdModel, DetectsShiftedStreamQuickly) {
  CpdConfig config;
  config.kind = CpdKind::kCusum;
  config.threshold = 5.0;
  const auto model = CpdModel::train(config, capture().train);
  std::vector<CpdClassState> states(2, model.initial_state());
  for (std::size_t c = 0; c < 2; ++c) {
    for (const double x : capture().test[c]) model.update(states[c], x);
  }
  const auto ttd = model.time_to_detection(states);
  EXPECT_TRUE(ttd.detected);
  EXPECT_GT(ttd.n_at_detection, 0u);
  EXPECT_LT(ttd.n_at_detection, kTestPerClass);
}

// ------------------------------------------------------------- engine wiring

core::ExperimentSpec engine_spec() {
  core::ExperimentSpec spec;
  spec.scenario = core::lab_zero_cross(core::make_cit());
  spec.plan.adversary.feature = FeatureKind::kSampleVariance;
  spec.plan.adversary.window_size = 50;
  spec.plan.train_windows = 20;
  spec.plan.test_windows = 20;
  for (const auto kind : {CpdKind::kCusum, CpdKind::kAdaptiveEwma}) {
    CpdConfig config;
    config.kind = kind;
    config.target_far = 0.05;
    config.horizon = 400;
    config.trials = 40;
    spec.plan.cpd_detectors.push_back(config);
  }
  return spec;
}

TEST(CpdEngine, ExperimentResultCarriesOutcomes) {
  const auto result = core::run_experiment(engine_spec());
  ASSERT_EQ(result.cpd.size(), 2u);
  EXPECT_EQ(result.cpd[0].kind, CpdKind::kCusum);
  EXPECT_EQ(result.cpd[1].kind, CpdKind::kAdaptiveEwma);
  EXPECT_GT(result.cpd[0].threshold, 0.0);
  ASSERT_FALSE(result.by_sample_size.empty());
  for (const auto& point : result.by_sample_size) {
    ASSERT_EQ(point.cpd.size(), 2u);
  }
  // The top-level outcomes mirror the largest sample-size point.
  expect_same_outcome(result.cpd[0], result.by_sample_size.back().cpd[0],
                      "top mirror");

  // Re-running the identical spec is bit-identical (calibration included).
  const auto again = core::run_experiment(engine_spec());
  for (std::size_t j = 0; j < result.cpd.size(); ++j) {
    expect_same_outcome(again.cpd[j], result.cpd[j], "re-run");
  }
}

core::PopulationSpec population_spec() {
  core::PopulationSpec spec;
  spec.experiment = engine_spec();
  spec.flows = 6;
  spec.keep_per_flow = false;
  return spec;
}

TEST(CpdPopulation, AggregatesPresentAndBitIdenticalAcrossThreadCounts) {
  const auto reference_options = [] {
    core::SweepOptions options;
    options.execution = util::ExecutionPolicy::kSerial;
    return options;
  }();
  const auto reference =
      core::PopulationEngine(core::sim_backend(), reference_options)
          .run(population_spec());
  ASSERT_EQ(reference.cpd.size(), 2u);
  EXPECT_EQ(reference.cpd[0].kind, CpdKind::kCusum);
  EXPECT_GT(reference.cpd[0].mean_threshold, 0.0);
  EXPECT_GE(reference.cpd[0].detected_fraction, 0.0);
  EXPECT_LE(reference.cpd[0].detected_fraction, 1.0);
  if (reference.cpd[0].detected_fraction > 0.0) {
    EXPECT_GT(reference.cpd[0].min_n_at_detection, 0u);
    ASSERT_TRUE(reference.cpd[0].min_time_to_detection.has_value());
    EXPECT_GT(*reference.cpd[0].min_time_to_detection, 0.0);
  }
  const std::string reference_json = core::population_result_json(reference);
  EXPECT_NE(reference_json.find("\"cpd\""), std::string::npos);

  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{hw}}) {
    core::SweepOptions options;
    options.execution = util::ExecutionPolicy::kChunked;
    options.threads = threads;
    const auto run = core::PopulationEngine(core::sim_backend(), options)
                         .run(population_spec());
    EXPECT_EQ(core::population_result_json(run), reference_json)
        << "threads = " << threads;
  }
}

TEST(CpdShard, RoundTripAndMergeMatchSingleProcess) {
  const auto spec = population_spec();
  const auto reference = core::run_population(spec);

  std::vector<core::PopulationShard> shards;
  for (std::size_t index = 0; index < 2; ++index) {
    core::SweepOptions options;
    options.shard_index = index;
    options.shard_count = 2;
    core::PopulationShard shard =
        core::run_population_shard(spec, options);
    // Serialize → parse: the chunk CPD rows survive bit for bit.
    const core::PopulationShard parsed =
        core::parse_shard(core::serialize_shard(shard));
    ASSERT_EQ(parsed.chunks.size(), shard.chunks.size());
    for (std::size_t c = 0; c < shard.chunks.size(); ++c) {
      ASSERT_EQ(parsed.chunks[c].cpd_kinds, shard.chunks[c].cpd_kinds);
      ASSERT_EQ(parsed.chunks[c].cpd.size(), shard.chunks[c].cpd.size());
      for (std::size_t j = 0; j < shard.chunks[c].cpd.size(); ++j) {
        ASSERT_EQ(parsed.chunks[c].cpd[j].size(),
                  shard.chunks[c].cpd[j].size());
        for (std::size_t f = 0; f < shard.chunks[c].cpd[j].size(); ++f) {
          EXPECT_EQ(parsed.chunks[c].cpd[j][f].detected,
                    shard.chunks[c].cpd[j][f].detected);
          EXPECT_EQ(parsed.chunks[c].cpd[j][f].n_at_detection,
                    shard.chunks[c].cpd[j][f].n_at_detection);
          EXPECT_EQ(parsed.chunks[c].cpd[j][f].false_alarms,
                    shard.chunks[c].cpd[j][f].false_alarms);
          EXPECT_EQ(parsed.chunks[c].cpd[j][f].threshold,
                    shard.chunks[c].cpd[j][f].threshold);  // bitwise
        }
      }
    }
    shards.push_back(std::move(shard));
  }

  const auto merged = core::merge_shards(std::move(shards));
  EXPECT_EQ(core::population_result_json(merged),
            core::population_result_json(reference));
}

// --------------------------------------------------------------- validation

TEST(CpdConfigValidation, RejectsBadParameters) {
  // CPD + EDF on one detector is rejected.
  DetectorSpec bad;
  bad.cpd.emplace();
  bad.edf = EdfDistance::kKolmogorovSmirnov;
  EXPECT_THROW((DetectorBank({bad}, 2)), linkpad::ContractViolation);

  // CPD needs exactly two classes.
  DetectorSpec cpd_spec;
  cpd_spec.cpd.emplace();
  EXPECT_THROW((DetectorBank({cpd_spec}, 3)), linkpad::ContractViolation);

  // Bad EWMA smoothing / FAR targets are rejected at train().
  CpdConfig config;
  config.ewma_beta = 1.5;
  EXPECT_THROW((void)CpdModel::train(config, capture().train),
               linkpad::ContractViolation);
  config = {};
  config.target_far = 1.0;
  EXPECT_THROW((void)CpdModel::train(config, capture().train),
               linkpad::ContractViolation);
  config = {};
  config.threshold = 0.0;
  EXPECT_THROW((void)CpdModel::train(config, capture().train),
               linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::classify
