// DetectorSearchSpace expansion contract: candidate count, deterministic
// order (the tuner's tie-break identity), the quantile axis multiplying
// only the quantile features, and the candidate labels.
#include "classify/search.hpp"

#include <gtest/gtest.h>

namespace linkpad::classify {
namespace {

TEST(SearchSpace, DefaultSpaceSizeCountsQuantileAxisOnlyForQuantileFeatures) {
  DetectorSearchSpace space;
  // 5 features × 3 windows, one quantile mode, no EDF, no CPD.
  EXPECT_EQ(space.size(), 15u);
  EXPECT_EQ(space.expand().size(), 15u);

  // A second quantile mode multiplies ONLY the MAD / IQR candidates:
  // (3 plain + 2 quantile × 2 modes) × 3 windows.
  space.quantile_modes = {QuantileMode::kExact, QuantileMode::kP2Sketch};
  EXPECT_EQ(space.size(), 21u);
  EXPECT_EQ(space.expand().size(), 21u);

  space.edf_distances = {EdfDistance::kKolmogorovSmirnov,
                         EdfDistance::kCramerVonMises};
  space.cpd_target_fars = {0.01, 0.05};
  EXPECT_EQ(space.size(), 21u + 2u * 3u + 2u);
  EXPECT_EQ(space.expand().size(), space.size());
}

TEST(SearchSpace, ExpansionOrderIsFeaturesThenEdfThenCpd) {
  DetectorSearchSpace space;
  space.features = {FeatureKind::kSampleEntropy,
                    FeatureKind::kMedianAbsDeviation};
  space.window_sizes = {100, 300};
  space.quantile_modes = {QuantileMode::kExact, QuantileMode::kP2Sketch};
  space.edf_distances = {EdfDistance::kCramerVonMises};
  space.cpd_target_fars = {0.02};
  space.cpd_base.kind = CpdKind::kAdaptiveEwma;

  const auto candidates = space.expand();
  // entropy: 2 windows; MAD: 2 windows × 2 modes; EDF: 2; CPD: 1.
  ASSERT_EQ(candidates.size(), 2u + 4u + 2u + 1u);

  // Feature family first, features outer, windows inner, modes innermost.
  EXPECT_EQ(candidate_label(candidates[0]), "sample entropy @n=100");
  EXPECT_EQ(candidate_label(candidates[1]), "sample entropy @n=300");
  EXPECT_EQ(candidates[2].adversary.feature,
            FeatureKind::kMedianAbsDeviation);
  EXPECT_EQ(candidates[2].quantile_mode, QuantileMode::kExact);
  EXPECT_EQ(candidates[3].quantile_mode, QuantileMode::kP2Sketch);
  EXPECT_EQ(candidates[3].adversary.window_size, 100u);
  EXPECT_EQ(candidates[5].quantile_mode, QuantileMode::kP2Sketch);
  EXPECT_EQ(candidates[5].adversary.window_size, 300u);

  // Then EDF (distance outer × windows), then CPD (windowless).
  ASSERT_TRUE(candidates[6].edf.has_value());
  EXPECT_EQ(*candidates[6].edf, EdfDistance::kCramerVonMises);
  EXPECT_EQ(candidates[6].adversary.window_size, 100u);
  EXPECT_EQ(candidates[7].adversary.window_size, 300u);
  ASSERT_TRUE(candidates[8].cpd.has_value());
  EXPECT_EQ(candidates[8].cpd->kind, CpdKind::kAdaptiveEwma);
  EXPECT_DOUBLE_EQ(candidates[8].cpd->target_far, 0.02);
}

TEST(SearchSpace, BaseConfigRidesEveryCandidate) {
  DetectorSearchSpace space;
  space.base.entropy_bin_width = 0.25;
  space.features = {FeatureKind::kSampleMean};
  space.window_sizes = {64};
  space.edf_distances = {EdfDistance::kKolmogorovSmirnov};
  space.edf_max_reference = 123;
  space.cpd_target_fars = {0.1};

  const auto candidates = space.expand();
  ASSERT_EQ(candidates.size(), 3u);
  for (const auto& candidate : candidates) {
    EXPECT_DOUBLE_EQ(candidate.adversary.entropy_bin_width, 0.25);
  }
  EXPECT_EQ(candidates[1].edf_max_reference, 123u);
}

TEST(SearchSpace, LabelsPinTheKnobsTheNameAloneDoesNot) {
  DetectorSearchSpace space;
  space.features = {FeatureKind::kInterquartileRange};
  space.window_sizes = {200};
  space.quantile_modes = {QuantileMode::kP2Sketch};
  space.edf_distances = {EdfDistance::kKolmogorovSmirnov};
  space.cpd_target_fars = {0.01};

  const auto candidates = space.expand();
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidate_label(candidates[0]), "IQR @n=200 (p2)");
  EXPECT_EQ(candidate_label(candidates[1]), "EDF nearest (KS) @n=200");
  EXPECT_EQ(candidate_label(candidates[2]), "cusum @far=0.01");
}

}  // namespace
}  // namespace linkpad::classify
