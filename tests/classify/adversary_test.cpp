// End-to-end adversary tests on SYNTHETIC PIAT streams drawn directly from
// the paper's model X ~ N(µ, σ²): the classification machinery must
// reproduce the theory without any simulator in the loop.
#include "classify/adversary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/theory.hpp"
#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

std::vector<double> synthetic_piats(double mu, double sigma, std::size_t n,
                                    std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  stats::Normal dist(mu, sigma);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

// Same-mean streams with variance ratio r: the paper's eq. (12)/(14).
struct TwoClassStreams {
  std::vector<std::vector<double>> train;
  std::vector<std::vector<double>> test;
};

TwoClassStreams make_streams(double r, std::size_t piats, std::uint64_t seed) {
  const double mu = 10e-3;
  const double sigma_l = 10e-6;
  const double sigma_h = sigma_l * std::sqrt(r);
  TwoClassStreams s;
  s.train = {synthetic_piats(mu, sigma_l, piats, seed),
             synthetic_piats(mu, sigma_h, piats, seed + 1)};
  s.test = {synthetic_piats(mu, sigma_l, piats, seed + 2),
            synthetic_piats(mu, sigma_h, piats, seed + 3)};
  return s;
}

TEST(Adversary, WindowsOfChopsDisjointWindows) {
  std::vector<double> stream(10);
  for (std::size_t i = 0; i < 10; ++i) stream[i] = static_cast<double>(i);
  const auto windows = Adversary::windows_of(stream, 3);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[0][0], 0.0);
  EXPECT_DOUBLE_EQ(windows[1][0], 3.0);
  EXPECT_DOUBLE_EQ(windows[2][2], 8.0);
}

TEST(Adversary, VarianceFeatureDetectsVarianceRatio) {
  // r = 2 at n = 200: Theorem 2 predicts a high detection rate.
  const auto s = make_streams(2.0, 200 * 150, 1);
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleVariance;
  cfg.window_size = 200;
  Adversary adv(cfg);
  adv.train(s.train);
  const double v = adv.detection_rate(s.test);
  const double predicted = analysis::detection_rate_variance(2.0, 200.0);
  EXPECT_GT(v, 0.85);
  EXPECT_NEAR(v, predicted, 0.08);
}

TEST(Adversary, EntropyFeatureDetectsVarianceRatio) {
  const auto s = make_streams(2.0, 200 * 150, 2);
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleEntropy;
  cfg.window_size = 200;
  Adversary adv(cfg);
  adv.train(s.train);
  EXPECT_GT(adv.detection_rate(s.test), 0.8);
}

TEST(Adversary, MeanFeatureIsBlindToEqualMeans) {
  const auto s = make_streams(2.0, 200 * 150, 3);
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleMean;
  cfg.window_size = 200;
  Adversary adv(cfg);
  adv.train(s.train);
  EXPECT_NEAR(adv.detection_rate(s.test), 0.55, 0.12);
}

TEST(Adversary, NoRatioMeansCoinFlip) {
  const auto s = make_streams(1.0, 200 * 100, 4);
  for (auto feature : {FeatureKind::kSampleVariance,
                       FeatureKind::kSampleEntropy}) {
    AdversaryConfig cfg;
    cfg.feature = feature;
    cfg.window_size = 200;
    Adversary adv(cfg);
    adv.train(s.train);
    EXPECT_NEAR(adv.detection_rate(s.test), 0.5, 0.1)
        << feature_name(feature);
  }
}

TEST(Adversary, DetectionImprovesWithWindowSize) {
  double prev = 0.0;
  for (std::size_t n : {50u, 200u, 800u}) {
    const auto s = make_streams(1.6, n * 120, 5);
    AdversaryConfig cfg;
    cfg.feature = FeatureKind::kSampleVariance;
    cfg.window_size = n;
    Adversary adv(cfg);
    adv.train(s.train);
    const double v = adv.detection_rate(s.test);
    EXPECT_GE(v, prev - 0.05) << n;  // monotone up to Monte-Carlo noise
    prev = v;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(Adversary, AutoBinWidthIsSelectedOnce) {
  const auto s = make_streams(2.0, 200 * 60, 6);
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleEntropy;
  cfg.window_size = 200;
  Adversary adv(cfg);
  EXPECT_DOUBLE_EQ(adv.entropy_bin_width(), 0.0);
  adv.train(s.train);
  EXPECT_GT(adv.entropy_bin_width(), 0.0);
}

TEST(Adversary, ExplicitBinWidthIsRespected) {
  const auto s = make_streams(2.0, 200 * 60, 7);
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleEntropy;
  cfg.window_size = 200;
  cfg.entropy_bin_width = 2e-6;
  Adversary adv(cfg);
  adv.train(s.train);
  EXPECT_DOUBLE_EQ(adv.entropy_bin_width(), 2e-6);
}

TEST(Adversary, ClassifyWindowUsesLeadingWindow) {
  const auto s = make_streams(4.0, 200 * 100, 8);
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleVariance;
  cfg.window_size = 200;
  Adversary adv(cfg);
  adv.train(s.train);
  // A fresh low-variance window should classify as class 0 most of the time.
  int correct = 0;
  for (int i = 0; i < 50; ++i) {
    const auto w = synthetic_piats(10e-3, 10e-6, 200, 1000 + i);
    if (adv.classify_window(w) == 0) ++correct;
  }
  EXPECT_GE(correct, 40);
}

TEST(Adversary, MultiClassConfusionMatrixShape) {
  // Four variance levels — the paper's Sec 6 multi-rate extension.
  const double mu = 10e-3;
  std::vector<std::vector<double>> train, test;
  for (int c = 0; c < 4; ++c) {
    const double sigma = 10e-6 * std::pow(1.8, c);
    train.push_back(synthetic_piats(mu, sigma, 200 * 80, 100 + c));
    test.push_back(synthetic_piats(mu, sigma, 200 * 80, 200 + c));
  }
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleVariance;
  cfg.window_size = 200;
  Adversary adv(cfg);
  adv.train(train);
  const auto cm = adv.evaluate(test);
  EXPECT_EQ(cm.num_classes(), 4u);
  EXPECT_GT(cm.detection_rate(), 0.5);  // far above 4-way chance (0.25)
  // Extreme classes are easiest: their rates should beat the middle ones.
  EXPECT_GT(cm.per_class_rate(0), 0.6);
  EXPECT_GT(cm.per_class_rate(3), 0.6);
}

TEST(Adversary, UntrainedUseViolatesContract) {
  AdversaryConfig cfg;
  cfg.window_size = 100;
  Adversary adv(cfg);
  const std::vector<double> w(100, 0.01);
  EXPECT_THROW(adv.classify_window(w), linkpad::ContractViolation);
  EXPECT_THROW(adv.classifier(), linkpad::ContractViolation);
}

TEST(Adversary, TrainingFeatureCountsMatchWindows) {
  const auto s = make_streams(2.0, 200 * 50, 9);
  AdversaryConfig cfg;
  cfg.feature = FeatureKind::kSampleVariance;
  cfg.window_size = 200;
  Adversary adv(cfg);
  adv.train(s.train);
  ASSERT_EQ(adv.training_features().size(), 2u);
  EXPECT_EQ(adv.training_features()[0].size(), 50u);
}

}  // namespace
}  // namespace linkpad::classify
