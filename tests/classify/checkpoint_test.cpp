// Checkpoint contract of the detector bank (DESIGN.md §2.6):
//
//  * evaluate_at(n) after one ragged-batch test pass equals a fresh,
//    identically-trained bank fed ONLY the first n test PIATs per class —
//    for every FeatureKind and both EDF distances, at the boundary cases
//    n ∈ {1, window, window+1, whole stream};
//  * checkpoint() forks the full mid-stream state: the fork and the
//    original evolve independently and a resumed fork matches an
//    uninterrupted bank exactly;
//  * outcomes are identical no matter which thread pool evaluates them.
#include "classify/detector_bank.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::classify {
namespace {

constexpr std::size_t kWindow = 25;
constexpr std::size_t kTrainPerClass = 40 * kWindow;
constexpr std::size_t kTestPerClass = 80 * kWindow;

std::vector<double> synthetic_stream(double sigma, std::uint64_t seed,
                                     std::size_t count) {
  util::Rng rng(seed);
  const stats::Normal dist(1.0, sigma);
  std::vector<double> out(count);
  for (auto& x : out) x = dist.sample(rng);
  return out;
}

struct Capture {
  std::vector<std::vector<double>> train;  // per class
  std::vector<std::vector<double>> test;
};

const Capture& capture() {
  static const Capture c = [] {
    Capture out;
    out.train = {synthetic_stream(0.10, 1, kTrainPerClass),
                 synthetic_stream(0.14, 2, kTrainPerClass)};
    out.test = {synthetic_stream(0.10, 3, kTestPerClass),
                synthetic_stream(0.14, 4, kTestPerClass)};
    return out;
  }();
  return c;
}

/// Every detector flavour: the five features plus both EDF distances.
std::vector<DetectorSpec> all_detector_specs() {
  std::vector<DetectorSpec> specs;
  for (const auto kind :
       {FeatureKind::kSampleMean, FeatureKind::kSampleVariance,
        FeatureKind::kSampleEntropy, FeatureKind::kMedianAbsDeviation,
        FeatureKind::kInterquartileRange}) {
    DetectorSpec spec;
    spec.adversary.feature = kind;
    spec.adversary.window_size = kWindow;
    spec.adversary.entropy_bin_width = 0.02;
    specs.push_back(spec);
  }
  for (const auto distance :
       {EdfDistance::kKolmogorovSmirnov, EdfDistance::kCramerVonMises}) {
    DetectorSpec spec;
    spec.adversary.window_size = kWindow;
    spec.edf = distance;
    specs.push_back(spec);
  }
  return specs;
}

DetectorBank trained_bank() {
  DetectorBank bank(all_detector_specs(), 2);
  for (std::size_t c = 0; c < 2; ++c) {
    bank.consume_training(c, capture().train[c]);
  }
  bank.train();
  return bank;
}

void expect_same_confusion(const ConfusionMatrix& a, const ConfusionMatrix& b,
                           const std::string& label) {
  ASSERT_EQ(a.num_classes(), b.num_classes()) << label;
  for (std::size_t i = 0; i < a.num_classes(); ++i) {
    for (std::size_t j = 0; j < a.num_classes(); ++j) {
      EXPECT_EQ(a.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)),
                b.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)))
          << label << " cell (" << i << "," << j << ")";
    }
  }
}

/// Feed `bank` the first `prefix` test PIATs per class, in one span.
void feed_test_prefix(DetectorBank& bank, std::size_t prefix) {
  for (std::size_t c = 0; c < 2; ++c) {
    bank.consume_test(
        c, std::span<const double>(capture().test[c]).first(prefix));
  }
}

/// The armed prefixes of the satellite contract: 1, one window, one window
/// plus one partial sample, and the whole stream.
const std::vector<std::size_t> kPrefixes = {1, kWindow, kWindow + 1,
                                            kTestPerClass};

TEST(BankCheckpoints, EvaluateAtMatchesFreshBankFedPrefix) {
  DetectorBank bank = trained_bank();
  bank.arm_checkpoints(kPrefixes);
  // Ragged batches: checkpoint boundaries must not depend on batching.
  for (std::size_t c = 0; c < 2; ++c) {
    std::span<const double> stream(capture().test[c]);
    for (const std::size_t piece : {7ul, 1ul, 24ul, 999ul}) {
      bank.consume_test(c, stream.first(piece));
      stream = stream.subspan(piece);
    }
    bank.consume_test(c, stream);
  }

  for (const std::size_t prefix : kPrefixes) {
    DetectorBank reference = trained_bank();
    feed_test_prefix(reference, prefix);
    const auto at = bank.evaluate_at(prefix);
    ASSERT_EQ(at.size(), bank.size());
    for (std::size_t d = 0; d < bank.size(); ++d) {
      expect_same_confusion(at[d], reference.detector(d).confusion(),
                            bank.detector(d).name() + " prefix " +
                                std::to_string(prefix));
    }
  }
  // The final checkpoint is the live confusion itself.
  const auto whole = bank.evaluate_at(kTestPerClass);
  for (std::size_t d = 0; d < bank.size(); ++d) {
    expect_same_confusion(whole[d], bank.detector(d).confusion(), "whole");
  }
}

TEST(BankCheckpoints, UnreachedCheckpointReportsCurrentCounts) {
  DetectorBank bank = trained_bank();
  bank.arm_checkpoints({kWindow, 10 * kTestPerClass});  // never reached
  feed_test_prefix(bank, 3 * kWindow);
  const auto at = bank.evaluate_at(10 * kTestPerClass);
  for (std::size_t d = 0; d < bank.size(); ++d) {
    expect_same_confusion(at[d], bank.detector(d).confusion(), "short stream");
  }
}

TEST(BankCheckpoints, ForkedBankResumesAndDivergesIndependently) {
  DetectorBank original = trained_bank();
  feed_test_prefix(original, kWindow + 3);  // mid-window state

  DetectorBank fork = original.checkpoint();
  // Resume both with the same continuation: they stay identical.
  for (std::size_t c = 0; c < 2; ++c) {
    const std::span<const double> rest =
        std::span<const double>(capture().test[c]).subspan(kWindow + 3);
    original.consume_test(c, rest);
    fork.consume_test(c, rest);
  }
  for (std::size_t d = 0; d < original.size(); ++d) {
    expect_same_confusion(fork.detector(d).confusion(),
                          original.detector(d).confusion(), "resumed fork");
  }

  // An uninterrupted bank fed the identical stream agrees too (the fork
  // preserved partially-filled windows, not just completed ones).
  DetectorBank uninterrupted = trained_bank();
  feed_test_prefix(uninterrupted, kTestPerClass);
  for (std::size_t d = 0; d < original.size(); ++d) {
    expect_same_confusion(original.detector(d).confusion(),
                          uninterrupted.detector(d).confusion(),
                          "uninterrupted");
  }

  // Diverging continuations do not leak into each other.
  DetectorBank diverged = uninterrupted.checkpoint();
  diverged.consume_test(0, capture().test[1]);  // deliberately mislabeled
  EXPECT_NE(diverged.detector(0).confusion().total(),
            uninterrupted.detector(0).confusion().total());
}

TEST(BankCheckpoints, OutcomesIdenticalAcrossThreadPools) {
  // Reference outcomes, computed serially.
  DetectorBank reference = trained_bank();
  reference.arm_checkpoints(kPrefixes);
  feed_test_prefix(reference, kTestPerClass);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}}) {
    util::ThreadPool pool(threads);
    constexpr std::size_t kReplicas = 8;
    std::vector<std::vector<std::vector<ConfusionMatrix>>> outcomes(kReplicas);
    util::parallel_for(pool, kReplicas, [&](std::size_t r) {
      DetectorBank bank = trained_bank();
      bank.arm_checkpoints(kPrefixes);
      feed_test_prefix(bank, kTestPerClass);
      for (const std::size_t prefix : kPrefixes) {
        outcomes[r].push_back(bank.evaluate_at(prefix));
      }
    });
    for (std::size_t r = 0; r < kReplicas; ++r) {
      for (std::size_t p = 0; p < kPrefixes.size(); ++p) {
        const auto want = reference.evaluate_at(kPrefixes[p]);
        for (std::size_t d = 0; d < want.size(); ++d) {
          expect_same_confusion(outcomes[r][p][d], want[d],
                                "pool " + std::to_string(threads));
        }
      }
    }
  }
}

TEST(BankCheckpoints, ArmRejectsMisuse) {
  DetectorBank late = trained_bank();
  feed_test_prefix(late, kWindow);
  EXPECT_THROW(late.arm_checkpoints({kWindow}), linkpad::ContractViolation);

  DetectorBank bank = trained_bank();
  EXPECT_THROW(bank.arm_checkpoints({0}), linkpad::ContractViolation);

  DetectorBank unarmed = trained_bank();
  feed_test_prefix(unarmed, kWindow);
  EXPECT_THROW((void)unarmed.evaluate_at(kWindow), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::classify
