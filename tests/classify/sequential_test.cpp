#include "classify/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

std::vector<double> synthetic_piats(double mu, double sigma, std::size_t n,
                                    std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  stats::Normal dist(mu, sigma);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

struct Fixture {
  Adversary adversary;
  double sigma_l = 10e-6;
  double sigma_h;

  explicit Fixture(double r, std::size_t batch = 100)
      : adversary([batch] {
          AdversaryConfig cfg;
          cfg.feature = FeatureKind::kSampleVariance;
          cfg.window_size = batch;
          return cfg;
        }()),
        sigma_h(sigma_l * std::sqrt(r)) {
    adversary.train({synthetic_piats(10e-3, sigma_l, batch * 300, 1),
                     synthetic_piats(10e-3, sigma_h, batch * 300, 2)});
  }
};

TEST(SequentialDetector, ThresholdsFollowWald) {
  Fixture f(2.0);
  SequentialConfig cfg;
  cfg.alpha = 0.01;
  cfg.beta = 0.05;
  SequentialDetector det(f.adversary, cfg);
  EXPECT_NEAR(det.upper_threshold(), std::log(0.95 / 0.01), 1e-12);
  EXPECT_NEAR(det.lower_threshold(), std::log(0.05 / 0.99), 1e-12);
}

TEST(SequentialDetector, DecidesCorrectlyOnBothClasses) {
  Fixture f(2.0);
  SequentialDetector det(f.adversary, SequentialConfig{});
  int correct = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const bool truth_high = (t % 2) == 1;
    const double sigma = truth_high ? f.sigma_h : f.sigma_l;
    const auto stream = synthetic_piats(10e-3, sigma, 100 * 400, 100 + t);
    const auto out = det.decide(stream);
    ASSERT_TRUE(out.decided) << t;
    if (out.decision == (truth_high ? 1 : 0)) ++correct;
  }
  EXPECT_GE(correct, trials - 2);  // alpha = beta = 1%
}

TEST(SequentialDetector, UsesFewerSamplesThanFixedSizeTest) {
  // Fixed-sample adversary needs n ~ 400 for ~97% at r = 2 (Theorem 2).
  // The SPRT at 1% errors should decide with far fewer PIATs on average.
  Fixture f(2.0);
  SequentialDetector det(f.adversary, SequentialConfig{});
  double total_piats = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const double sigma = (t % 2) ? f.sigma_h : f.sigma_l;
    const auto stream = synthetic_piats(10e-3, sigma, 100 * 400, 500 + t);
    const auto out = det.decide(stream);
    ASSERT_TRUE(out.decided);
    total_piats += static_cast<double>(out.piats_used);
  }
  const double mean_piats = total_piats / trials;
  EXPECT_LT(mean_piats, 3000.0);  // far below a one-shot n of comparable power
  EXPECT_GE(mean_piats, 100.0);   // at least one batch
}

TEST(SequentialDetector, HarderProblemTakesLonger) {
  Fixture easy(4.0);
  Fixture hard(1.3);
  SequentialDetector det_easy(easy.adversary, SequentialConfig{});
  SequentialDetector det_hard(hard.adversary, SequentialConfig{});

  auto mean_batches = [&](Fixture& f, SequentialDetector& det) {
    double acc = 0.0;
    for (int t = 0; t < 20; ++t) {
      const double sigma = (t % 2) ? f.sigma_h : f.sigma_l;
      const auto stream = synthetic_piats(10e-3, sigma, 100 * 2000, 900 + t);
      const auto out = det.decide(stream);
      acc += static_cast<double>(out.batches_used);
    }
    return acc / 20.0;
  };
  EXPECT_LT(mean_batches(easy, det_easy), mean_batches(hard, det_hard));
}

TEST(SequentialDetector, WaldExpectationIsInTheRightBallpark) {
  Fixture f(2.0);
  SequentialDetector det(f.adversary, SequentialConfig{});
  const double expect_low = det.expected_batches(0);
  const double expect_high = det.expected_batches(1);
  EXPECT_GT(expect_low, 0.0);
  EXPECT_GT(expect_high, 0.0);

  double measured = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto stream = synthetic_piats(10e-3, f.sigma_l, 100 * 800, 2000 + t);
    measured += static_cast<double>(det.decide(stream).batches_used);
  }
  measured /= trials;
  // Wald's formula ignores overshoot; expect same order of magnitude.
  EXPECT_GT(measured, 0.3 * expect_low);
  EXPECT_LT(measured, 4.0 * expect_low);
}

TEST(SequentialDetector, UndecidedOnShortStream) {
  Fixture f(1.05);  // nearly indistinguishable classes
  SequentialDetector det(f.adversary, SequentialConfig{});
  const auto stream = synthetic_piats(10e-3, f.sigma_l, 100 * 3, 3000);
  const auto out = det.decide(stream);
  EXPECT_FALSE(out.decided);
  EXPECT_EQ(out.batches_used, 3u);
}

TEST(SequentialDetector, RespectsMaxBatches) {
  Fixture f(1.05);
  SequentialConfig cfg;
  cfg.max_batches = 5;
  SequentialDetector det(f.adversary, cfg);
  const auto stream = synthetic_piats(10e-3, f.sigma_l, 100 * 100, 3100);
  const auto out = det.decide(stream);
  EXPECT_LE(out.batches_used, 5u);
}

TEST(SequentialDetector, OverlappingClassesExpectNeverToDecide) {
  // Identical class distributions: a legitimate weak-adversary setup (e.g.
  // a perfectly-padded link). The trained densities cannot separate, so the
  // per-batch LLR drift is ~0 or of the wrong sign; Wald's expectation is
  // "never" — infinity — not a contract abort.
  Adversary adversary([] {
    AdversaryConfig cfg;
    cfg.feature = FeatureKind::kSampleVariance;
    cfg.window_size = 100;
    return cfg;
  }());
  adversary.train({synthetic_piats(10e-3, 10e-6, 100 * 300, 1),
                   synthetic_piats(10e-3, 10e-6, 100 * 300, 1)});
  SequentialDetector det(adversary, SequentialConfig{});
  EXPECT_TRUE(std::isinf(det.expected_batches(0)) ||
              std::isinf(det.expected_batches(1)));
  for (ClassLabel truth : {ClassLabel{0}, ClassLabel{1}}) {
    const double expect = det.expected_batches(truth);
    EXPECT_TRUE(expect > 0.0) << "truth=" << truth;
  }
}

TEST(SequentialDetector, ConfigValidation) {
  Fixture f(2.0);
  SequentialConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(SequentialDetector(f.adversary, bad),
               linkpad::ContractViolation);
  SequentialConfig mismatched;
  mismatched.batch_size = 999;  // != adversary window size
  EXPECT_THROW(SequentialDetector(f.adversary, mismatched),
               linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::classify
