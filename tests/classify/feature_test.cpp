#include "classify/feature.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::classify {
namespace {

const std::vector<double> kWindow = {1.0, 2.0, 3.0, 4.0, 10.0};

TEST(SampleMeanFeature, MatchesDescriptiveMean) {
  SampleMeanFeature f;
  EXPECT_DOUBLE_EQ(f.extract(kWindow), stats::mean(kWindow));
  EXPECT_EQ(f.name(), "sample mean");
}

TEST(SampleVarianceFeature, MatchesUnbiasedVariance) {
  SampleVarianceFeature f;
  EXPECT_DOUBLE_EQ(f.extract(kWindow), stats::sample_variance(kWindow));
}

TEST(SampleEntropyFeature, MatchesStatsEntropy) {
  SampleEntropyFeature f(0.5);
  EXPECT_DOUBLE_EQ(f.extract(kWindow), stats::sample_entropy(kWindow, 0.5));
  EXPECT_DOUBLE_EQ(f.bin_width(), 0.5);
}

TEST(SampleEntropyFeature, RequiresPositiveBinWidth) {
  EXPECT_THROW(SampleEntropyFeature(0.0), linkpad::ContractViolation);
}

TEST(MadFeature, KnownValue) {
  MadFeature f;
  // median = 3; |x - 3| = {2,1,0,1,7}; median of that = 1.
  EXPECT_DOUBLE_EQ(f.extract(kWindow), 1.0);
}

TEST(MadFeature, IgnoresSingleOutlier) {
  MadFeature f;
  std::vector<double> clean = {1, 2, 3, 4, 5, 6, 7};
  std::vector<double> dirty = clean;
  dirty[0] = 1e6;
  EXPECT_NEAR(f.extract(clean), f.extract(dirty), 1.0);
}

TEST(IqrFeature, MatchesDescriptiveIqr) {
  IqrFeature f;
  EXPECT_DOUBLE_EQ(f.extract(kWindow), stats::iqr(kWindow));
}

TEST(FeatureFactory, EntropyWithoutBinWidthFailsLoudly) {
  // Callers that forget entropy_bin_width used to hit a bare ctor
  // precondition; the factory must name the missing knob and the fix.
  EXPECT_THROW(make_feature(FeatureKind::kSampleEntropy),
               linkpad::ContractViolation);
  try {
    (void)make_feature(FeatureKind::kSampleEntropy, 0.0);
    FAIL() << "defaulted bin width must not be accepted";
  } catch (const linkpad::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("entropy_bin_width"), std::string::npos) << what;
    EXPECT_NE(what.find("auto-selection"), std::string::npos) << what;
  }
  EXPECT_THROW(make_feature(FeatureKind::kSampleEntropy, -1.0),
               linkpad::ContractViolation);
}

TEST(FeatureFactory, ProducesEveryKind) {
  EXPECT_NE(make_feature(FeatureKind::kSampleMean), nullptr);
  EXPECT_NE(make_feature(FeatureKind::kSampleVariance), nullptr);
  EXPECT_NE(make_feature(FeatureKind::kSampleEntropy, 0.1), nullptr);
  EXPECT_NE(make_feature(FeatureKind::kMedianAbsDeviation), nullptr);
  EXPECT_NE(make_feature(FeatureKind::kInterquartileRange), nullptr);
}

TEST(FeatureNames, AreHumanReadable) {
  EXPECT_EQ(feature_name(FeatureKind::kSampleMean), "sample mean");
  EXPECT_EQ(feature_name(FeatureKind::kSampleVariance), "sample variance");
  EXPECT_EQ(feature_name(FeatureKind::kSampleEntropy), "sample entropy");
  EXPECT_EQ(feature_name(FeatureKind::kMedianAbsDeviation), "MAD");
  EXPECT_EQ(feature_name(FeatureKind::kInterquartileRange), "IQR");
}

TEST(Features, ScaleDispersionNotLocation) {
  // Dispersion features must be unaffected by adding a constant.
  std::vector<double> shifted;
  for (double x : kWindow) shifted.push_back(x + 100.0);
  EXPECT_DOUBLE_EQ(SampleVarianceFeature{}.extract(kWindow),
                   SampleVarianceFeature{}.extract(shifted));
  EXPECT_DOUBLE_EQ(MadFeature{}.extract(kWindow),
                   MadFeature{}.extract(shifted));
  EXPECT_DOUBLE_EQ(IqrFeature{}.extract(kWindow),
                   IqrFeature{}.extract(shifted));
  EXPECT_DOUBLE_EQ(SampleMeanFeature{}.extract(shifted),
                   SampleMeanFeature{}.extract(kWindow) + 100.0);
}

}  // namespace
}  // namespace linkpad::classify
