// Property sweep: the streaming/batch bit-identity contract of
// window_accumulator.hpp, exercised over randomized inputs instead of
// hand-picked fixtures — 200 seeded random streams per FeatureKind, with
// randomized window sizes, randomized batch chunking, and adversarial
// value patterns (constants, duplicates, mixed scales, negatives). Seeded
// generation keeps every "fuzz" case replayable from its iteration index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "classify/feature.hpp"
#include "classify/window_accumulator.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {
namespace {

constexpr std::size_t kStreams = 200;

/// Random window with adversarial shapes: smooth normal-ish PIATs, heavy
/// duplicates (quantized values), exact constants, and scale mixtures.
std::vector<double> random_window(util::Rng& rng, std::size_t size) {
  std::vector<double> window(size);
  const double pick = rng.uniform01();
  if (pick < 0.25) {
    // Quantized: many exact duplicates (entropy's natural diet).
    const double quantum = rng.uniform(1e-6, 1e-3);
    for (auto& x : window) {
      x = quantum * std::floor(rng.uniform(0.0, 32.0));
    }
  } else if (pick < 0.35) {
    // Constant stream: zero variance, single occupied entropy bin.
    const double c = rng.uniform(-5e-3, 15e-3);
    std::fill(window.begin(), window.end(), c);
  } else if (pick < 0.5) {
    // Two scales, orders of magnitude apart (cancellation stress).
    for (auto& x : window) {
      x = rng.uniform01() < 0.5 ? rng.uniform(0.0, 1e-8)
                                : rng.uniform(0.1, 10.0);
    }
  } else {
    // Jittered timer-like PIATs, occasionally negative (clock skew).
    for (auto& x : window) {
      x = 10e-3 + rng.uniform(-2e-3, 2e-3);
      if (rng.uniform01() < 0.02) x = -x;
    }
  }
  return window;
}

void expect_bitwise(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << label << ": " << a << " vs " << b;
}

/// Feed `window` through a fresh accumulator in random-sized add_span
/// chunks (batch boundaries must be invisible) and compare bitwise with
/// the batch extractor.
void check_stream(FeatureKind kind, util::Rng& rng, std::size_t iteration) {
  const std::size_t size = 2 + static_cast<std::size_t>(
                                   rng.uniform(0.0, 398.0));
  const auto window = random_window(rng, size);

  AccumulatorOptions options;
  options.entropy_bin_width = rng.uniform(1e-7, 1e-3);
  auto accumulator = make_window_accumulator(kind, options);

  std::span<const double> rest(window);
  while (!rest.empty()) {
    const auto chunk = std::min<std::size_t>(
        rest.size(), 1 + static_cast<std::size_t>(rng.uniform(0.0, 63.0)));
    // Alternate the scalar and span entry points; both must agree.
    if (rng.uniform01() < 0.3) {
      for (const double x : rest.first(chunk)) accumulator->add(x);
    } else {
      accumulator->add_span(rest.first(chunk));
    }
    rest = rest.subspan(chunk);
  }
  ASSERT_EQ(accumulator->count(), window.size());

  const auto extractor = make_feature(kind, options.entropy_bin_width);
  expect_bitwise(accumulator->value(), extractor->extract(window),
                 feature_name(kind) + " stream " + std::to_string(iteration) +
                     " size " + std::to_string(size));
}

class FeatureFuzz : public ::testing::TestWithParam<FeatureKind> {};

TEST_P(FeatureFuzz, StreamingMatchesBatchOnRandomizedStreams) {
  // One deterministic generator per feature: failures name the iteration,
  // and replaying it regenerates the exact offending stream.
  util::Rng rng(0x5eedu + static_cast<std::uint64_t>(GetParam()));
  for (std::size_t i = 0; i < kStreams; ++i) {
    check_stream(GetParam(), rng, i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FeatureFuzz,
                         ::testing::Values(FeatureKind::kSampleMean,
                                           FeatureKind::kSampleVariance,
                                           FeatureKind::kSampleEntropy,
                                           FeatureKind::kMedianAbsDeviation,
                                           FeatureKind::kInterquartileRange),
                         [](const auto& info) {
                           std::string name = feature_name(info.param);
                           std::replace(name.begin(), name.end(), ' ', '_');
                           return name;
                         });

TEST(FeatureFuzz, SketchedQuantilesTrackExactOnRandomStreams) {
  // The P² MAD/IQR accumulators carry a documented ~1% relative tolerance
  // on smooth streams; verify it holds across random smooth windows (the
  // adversarial shapes above are exempt — the sketch's accuracy claim is
  // for smooth distributions).
  util::Rng rng(77);
  for (std::size_t i = 0; i < 40; ++i) {
    const std::size_t size = 600 + static_cast<std::size_t>(
                                       rng.uniform(0.0, 2000.0));
    std::vector<double> window(size);
    for (auto& x : window) x = 10e-3 + rng.uniform(-3e-3, 3e-3);

    for (const auto kind : {FeatureKind::kMedianAbsDeviation,
                            FeatureKind::kInterquartileRange}) {
      AccumulatorOptions options;
      options.quantile_mode = QuantileMode::kP2Sketch;
      auto sketched = make_window_accumulator(kind, options);
      sketched->add_span(window);
      const double exact = make_feature(kind)->extract(window);
      EXPECT_NEAR(sketched->value(), exact, 0.05 * exact)
          << feature_name(kind) << " stream " << i;
    }
  }
}

}  // namespace
}  // namespace linkpad::classify
