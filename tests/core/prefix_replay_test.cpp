// The prefix-replay contract of DESIGN.md §2.6:
//
//  1. Equivalence — a sample_size_axis point's outcome is bit-identical to
//     an INDEPENDENT engine run at that window size (same seed): the
//     independent run pulls the same stream keys and therefore consumes
//     exactly the prefix the collapsed axis clipped for it.
//  2. Work collapse — a k-point × f-feature detection-vs-n grid performs
//     ONE simulation: one train + one test stream per class, total PIATs
//     sized by the LARGEST n only (counting backend), even when the
//     entropy Δh prepass is needed (the training capture is materialized,
//     not re-simulated).
//  3. Scheduling independence — axis results are bit-identical across
//     sweep thread pools {1, 4, 16}.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/piat_source.hpp"

namespace linkpad::core {
namespace {

const std::vector<classify::FeatureKind> kPaperFeatures = {
    classify::FeatureKind::kSampleMean,
    classify::FeatureKind::kSampleVariance,
    classify::FeatureKind::kSampleEntropy,
};

/// Axis spec: capture sized by n_max = 500 with 4 windows per phase.
/// 300 does not divide the capture — its points consume a strict prefix.
ExperimentSpec axis_spec(std::uint64_t seed = 11) {
  ExperimentSpec spec;
  spec.scenario = lab_zero_cross(make_cit());
  spec.plan.adversary.feature = kPaperFeatures.front();
  spec.plan.extra_features.assign(kPaperFeatures.begin() + 1, kPaperFeatures.end());
  spec.sample_size_axis = {100, 250, 300, 500};
  spec.plan.adversary.window_size = 500;
  spec.plan.train_windows = 4;
  spec.plan.test_windows = 4;
  spec.seed = seed;
  return spec;
}

void expect_same_confusion(const classify::ConfusionMatrix& a,
                           const classify::ConfusionMatrix& b,
                           const std::string& label) {
  ASSERT_EQ(a.num_classes(), b.num_classes()) << label;
  for (std::size_t i = 0; i < a.num_classes(); ++i) {
    for (std::size_t j = 0; j < a.num_classes(); ++j) {
      EXPECT_EQ(a.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)),
                b.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)))
          << label;
    }
  }
}

void expect_bitwise_equal(double a, double b, const std::string& label) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << label << ": " << a << " vs " << b;
}

void run_axis_equivalence(const ExperimentSpec& spec,
                          const ExperimentResult& collapsed, std::size_t cap);

TEST(PrefixReplay, AxisPointsMatchIndependentRunsBitwise) {
  for (const std::size_t cap : {std::size_t{0}, std::size_t{6}}) {
    auto spec = axis_spec();
    spec.max_windows_per_point = cap;
    const auto collapsed = ExperimentEngine().run(spec);
    const auto ns = spec.sample_sizes();
    ASSERT_EQ(collapsed.by_sample_size.size(), ns.size());
    run_axis_equivalence(spec, collapsed, cap);
  }
}

void run_axis_equivalence(const ExperimentSpec& spec,
                          const ExperimentResult& collapsed,
                          std::size_t cap) {
  const auto ns = spec.sample_sizes();
  const std::size_t n_max = ns.back();
  for (const std::size_t n : ns) {
    // The independent evaluation of this prefix: a fresh single-size run
    // with the same seed and the window count the shared capture affords.
    ExperimentSpec single = spec;
    single.sample_size_axis.clear();
    single.max_windows_per_point = 0;
    single.plan.adversary.window_size = n;
    single.plan.train_windows = spec.plan.train_windows * n_max / n;
    single.plan.test_windows = spec.plan.test_windows * n_max / n;
    if (cap != 0) {
      single.plan.train_windows = std::min(single.plan.train_windows, cap);
      single.plan.test_windows = std::min(single.plan.test_windows, cap);
    }
    const auto reference = ExperimentEngine().run(single);

    const auto& point = collapsed.at_sample_size(n);
    const std::string tag = "n = " + std::to_string(n);
    EXPECT_EQ(point.train_windows, single.plan.train_windows) << tag;
    EXPECT_EQ(point.test_windows, single.plan.test_windows) << tag;
    expect_bitwise_equal(point.r_hat, reference.r_hat, tag + " r_hat");
    ASSERT_EQ(point.per_feature.size(), reference.per_feature.size()) << tag;
    for (std::size_t f = 0; f < point.per_feature.size(); ++f) {
      const auto& got = point.per_feature[f];
      const auto& want = reference.per_feature[f];
      const std::string label =
          tag + " " + classify::feature_name(got.feature);
      EXPECT_EQ(got.feature, want.feature) << label;
      expect_same_confusion(got.confusion, want.confusion, label);
      expect_bitwise_equal(got.detection_rate, want.detection_rate, label);
      ASSERT_EQ(got.predicted.has_value(), want.predicted.has_value()) << label;
      if (got.predicted) {
        expect_bitwise_equal(*got.predicted, *want.predicted, label);
      }
    }
  }

  // Top-level fields mirror the largest axis entry.
  const auto& top = collapsed.by_sample_size.back();
  EXPECT_EQ(top.sample_size, n_max);
  expect_bitwise_equal(collapsed.detection_rate,
                       top.per_feature.front().detection_rate, "top mirror");
  expect_bitwise_equal(collapsed.r_hat, top.r_hat, "top r_hat");
}

TEST(PrefixReplay, AxisInvariantToBatchSize) {
  const auto spec = axis_spec(23);
  const auto small = ExperimentEngine(sim_backend(), 137).run(spec);
  const auto big = ExperimentEngine(sim_backend(), 1 << 20).run(spec);
  ASSERT_EQ(small.by_sample_size.size(), big.by_sample_size.size());
  for (std::size_t i = 0; i < small.by_sample_size.size(); ++i) {
    const auto& a = small.by_sample_size[i];
    const auto& b = big.by_sample_size[i];
    expect_bitwise_equal(a.r_hat, b.r_hat, "r_hat");
    for (std::size_t f = 0; f < a.per_feature.size(); ++f) {
      expect_same_confusion(a.per_feature[f].confusion,
                            b.per_feature[f].confusion, "batch size");
    }
  }
}

TEST(PrefixReplay, LookupThrowsOffAxis) {
  const auto result = ExperimentEngine().run(axis_spec(29));
  EXPECT_NO_THROW(result.at_sample_size(100));
  EXPECT_THROW(result.at_sample_size(101), std::invalid_argument);
  EXPECT_THROW(result.by_sample_size.front().outcome(
                   classify::FeatureKind::kMedianAbsDeviation),
               std::invalid_argument);

  // The message must name the requested n and the available axis values.
  try {
    (void)result.at_sample_size(101);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("101"), std::string::npos) << what;
    for (const char* n : {"100", "250", "300", "500"}) {
      EXPECT_NE(what.find(n), std::string::npos) << what << " missing " << n;
    }
  }
}

// ---------------------------------------------------------------- probing

/// Wraps the sim backend and counts opens / pulled PIATs.
class CountingBackend final : public ExperimentBackend {
 public:
  [[nodiscard]] std::unique_ptr<PiatSource> open(
      const Scenario& scenario, std::size_t class_index, std::uint64_t seed,
      std::uint64_t salt) const override {
    ++opens_;
    return std::make_unique<CountingSource>(
        sim_backend().open(scenario, class_index, seed, salt), piats_);
  }
  [[nodiscard]] std::string name() const override { return "counting"; }

  [[nodiscard]] std::size_t opens() const { return opens_.load(); }
  [[nodiscard]] std::size_t piats() const { return piats_.load(); }

 private:
  class CountingSource final : public PiatSource {
   public:
    CountingSource(std::unique_ptr<PiatSource> inner,
                   std::atomic<std::size_t>& piats)
        : inner_(std::move(inner)), piats_(&piats) {}
    std::size_t collect(std::size_t count, std::vector<double>& out) override {
      const std::size_t got = inner_->collect(count, out);
      piats_->fetch_add(got);
      return got;
    }
    [[nodiscard]] std::string name() const override { return "counting"; }

   private:
    std::unique_ptr<PiatSource> inner_;
    std::atomic<std::size_t>* piats_;
  };

  mutable std::atomic<std::size_t> opens_{0};
  mutable std::atomic<std::size_t> piats_{0};
};

TEST(PrefixReplayWorkSharing, EightPointGridSimulatesOnce) {
  // The headline acceptance: an 8-point × 3-feature detection-vs-n grid
  // performs exactly ONE simulation — one train and one test stream per
  // class, sized by the largest n. Explicit Δh ⇒ no prepass at all.
  SweepGrid grid;
  grid.sample_sizes = {100, 200, 400, 700, 1000, 1500, 2000, 3000};
  grid.plan.set_features(kPaperFeatures);
  grid.plan.train_windows = 2;
  grid.plan.test_windows = 2;
  grid.seed = 77;
  EXPECT_EQ(grid.size(), 1u);  // the axis does NOT expand into points

  auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 1u);
  specs[0].plan.adversary.entropy_bin_width = 3e-6;
  EXPECT_EQ(specs[0].sample_sizes().size(), 8u);

  const std::size_t train_capacity = 2 * 3000;
  const std::size_t test_capacity = 2 * 3000;

  CountingBackend backend;
  const auto report = SweepRunner(backend).run(specs);
  ASSERT_TRUE(report.all_completed());
  EXPECT_EQ(report.results[0].by_sample_size.size(), 8u);
  EXPECT_EQ(backend.opens(), 4u);  // classes × {train, test} — once, total
  EXPECT_EQ(backend.piats(), 2 * (train_capacity + test_capacity));
}

TEST(PrefixReplayWorkSharing, AutoBinWidthAddsNoSimulationPass) {
  // With several axis points and the Scott-rule prepass, the engine
  // materializes the training capture instead of re-simulating it: still
  // one simulation, within the "at most 1 extra training pass" budget.
  SweepGrid grid;
  grid.sample_sizes = {100, 200, 400, 700, 1000, 1500, 2000, 3000};
  grid.plan.set_features(kPaperFeatures);  // entropy WITHOUT explicit Δh
  grid.plan.train_windows = 2;
  grid.plan.test_windows = 2;
  grid.seed = 78;

  CountingBackend backend;
  const auto report = SweepRunner(backend).run(grid.expand());
  ASSERT_TRUE(report.all_completed());
  EXPECT_EQ(backend.opens(), 4u);
  EXPECT_EQ(backend.piats(), 2 * (2 * 3000 + 2 * 3000));
}

TEST(PrefixReplay, BitIdenticalAcrossSweepThreadCounts) {
  SweepGrid grid;
  grid.sigma_timers = {0.0, 100e-6};
  grid.sample_sizes = {100, 200, 400};
  grid.plan.set_features(kPaperFeatures);
  grid.plan.train_windows = 3;
  grid.plan.test_windows = 3;
  grid.seed = 4242;
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 2u);

  SweepOptions serial;
  serial.threads = 1;
  const auto reference = SweepRunner(sim_backend(), serial).run(specs);
  ASSERT_TRUE(reference.all_completed());

  for (const std::size_t threads : {std::size_t{4}, std::size_t{16}}) {
    SweepOptions options;
    options.threads = threads;
    const auto report = SweepRunner(sim_backend(), options).run(specs);
    ASSERT_TRUE(report.all_completed());
    for (std::size_t p = 0; p < specs.size(); ++p) {
      const auto& a = reference.results[p].by_sample_size;
      const auto& b = report.results[p].by_sample_size;
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        expect_bitwise_equal(a[i].r_hat, b[i].r_hat, "r_hat");
        for (std::size_t f = 0; f < a[i].per_feature.size(); ++f) {
          expect_same_confusion(
              a[i].per_feature[f].confusion, b[i].per_feature[f].confusion,
              "threads " + std::to_string(threads));
        }
      }
    }
  }
}

}  // namespace
}  // namespace linkpad::core
