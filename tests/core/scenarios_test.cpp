#include "core/scenarios.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace linkpad::core {
namespace {

TEST(Scenarios, PaperConstants) {
  EXPECT_DOUBLE_EQ(constants::kTau, 10e-3);
  EXPECT_DOUBLE_EQ(constants::kRateLow, 10.0);
  EXPECT_DOUBLE_EQ(constants::kRateHigh, 40.0);
}

TEST(Scenarios, LabZeroCrossHasNoHops) {
  const auto s = lab_zero_cross(make_cit());
  EXPECT_TRUE(s.base.hops_before_tap.empty());
  ASSERT_EQ(s.payload_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(s.payload_rates[0], 10.0);
  EXPECT_DOUBLE_EQ(s.payload_rates[1], 40.0);
}

TEST(Scenarios, ConfigForOverridesOnlyRate) {
  const auto s = lab_zero_cross(make_cit());
  const auto low = s.config_for(0);
  const auto high = s.config_for(1);
  EXPECT_DOUBLE_EQ(low.payload_rate, 10.0);
  EXPECT_DOUBLE_EQ(high.payload_rate, 40.0);
  EXPECT_EQ(low.wire_bytes, high.wire_bytes);
  EXPECT_EQ(low.policy.get(), high.policy.get());
  EXPECT_THROW(s.config_for(2), linkpad::ContractViolation);
}

TEST(Scenarios, LabCrossTrafficHasOneMarconiHop) {
  const auto s = lab_cross_traffic(make_cit(), 0.3);
  ASSERT_EQ(s.base.hops_before_tap.size(), 1u);
  EXPECT_DOUBLE_EQ(s.base.hops_before_tap[0].cross_utilization, 0.3);
  EXPECT_NE(s.base.hops_before_tap[0].name.find("marconi"), std::string::npos);
}

TEST(Scenarios, CampusHasFourHops) {
  const auto s = campus(make_cit(), 12.0);
  EXPECT_EQ(s.base.hops_before_tap.size(), 4u);
}

TEST(Scenarios, WanSpansFifteenHops) {
  // "the path ... spans over 15 routers" (paper Sec 5.3)
  const auto s = wan(make_cit(), 12.0);
  EXPECT_EQ(s.base.hops_before_tap.size(), 15u);
}

TEST(Scenarios, DiurnalLoadPeaksInAfternoon) {
  const auto busy = wan(make_cit(), 15.0);
  const auto quiet = wan(make_cit(), 3.0);
  double busy_rho = 0.0, quiet_rho = 0.0;
  for (const auto& h : busy.base.hops_before_tap) busy_rho += h.cross_utilization;
  for (const auto& h : quiet.base.hops_before_tap) quiet_rho += h.cross_utilization;
  EXPECT_GT(busy_rho, 2.0 * quiet_rho);
}

TEST(Scenarios, WanLoadExceedsCampusLoad) {
  EXPECT_GT(wan_profile().peak(), campus_profile().peak());
  EXPECT_GT(wan_profile().quiet(), campus_profile().quiet());
}

TEST(Scenarios, PolicyMakersProduceExpectedTypes) {
  EXPECT_DOUBLE_EQ(make_cit()->mean_interval(), 10e-3);
  EXPECT_DOUBLE_EQ(make_cit()->interval_variance(), 0.0);
  const auto vit = make_vit(100e-6);
  EXPECT_NEAR(vit->interval_variance(), 1e-8, 1e-12);
}

TEST(Scenarios, MultirateSpansRequestedRange) {
  const auto s = lab_multirate(make_cit(), 4);
  ASSERT_EQ(s.payload_rates.size(), 4u);
  EXPECT_DOUBLE_EQ(s.payload_rates.front(), 10.0);
  EXPECT_DOUBLE_EQ(s.payload_rates.back(), 40.0);
  EXPECT_DOUBLE_EQ(s.payload_rates[1], 20.0);
  EXPECT_THROW(lab_multirate(make_cit(), 1), linkpad::ContractViolation);
}

TEST(Scenarios, CrossUtilizationValidated) {
  EXPECT_THROW(lab_cross_traffic(make_cit(), 1.0), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::core
