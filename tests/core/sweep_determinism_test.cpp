// Sweep determinism and the engine layer's backend seam.
//
// The contract every scaling PR builds on: a sweep's results are a pure
// function of its specs — bit-identical no matter how many threads shard
// the points, because every point derives its RNG streams from
// (seed, salt, class), never from schedule order.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/piat_source.hpp"
#include "util/check.hpp"

namespace linkpad::core {
namespace {

void expect_identical_confusion(const classify::ConfusionMatrix& a,
                                const classify::ConfusionMatrix& b) {
  ASSERT_EQ(a.num_classes(), b.num_classes());
  for (std::size_t i = 0; i < a.num_classes(); ++i) {
    for (std::size_t j = 0; j < a.num_classes(); ++j) {
      EXPECT_EQ(a.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)),
                b.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)));
    }
  }
}

/// Exact (bitwise) equality of two results, field by field, including every
/// per-feature outcome of the bank pass.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(std::memcmp(&a.detection_rate, &b.detection_rate, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.r_hat, &b.r_hat, sizeof(double)), 0);
  EXPECT_EQ(a.predicted.has_value(), b.predicted.has_value());
  if (a.predicted && b.predicted) {
    EXPECT_EQ(std::memcmp(&*a.predicted, &*b.predicted, sizeof(double)), 0);
  }
  EXPECT_EQ(std::memcmp(&a.piat_mean_low, &b.piat_mean_low, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.piat_mean_high, &b.piat_mean_high, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.piat_var_low, &b.piat_var_low, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.piat_var_high, &b.piat_var_high, sizeof(double)), 0);
  expect_identical_confusion(a.confusion, b.confusion);
  ASSERT_EQ(a.per_feature.size(), b.per_feature.size());
  for (std::size_t f = 0; f < a.per_feature.size(); ++f) {
    const auto& fa = a.per_feature[f];
    const auto& fb = b.per_feature[f];
    EXPECT_EQ(fa.feature, fb.feature);
    EXPECT_EQ(std::memcmp(&fa.detection_rate, &fb.detection_rate,
                          sizeof(double)), 0);
    EXPECT_EQ(fa.predicted.has_value(), fb.predicted.has_value());
    if (fa.predicted && fb.predicted) {
      EXPECT_EQ(std::memcmp(&*fa.predicted, &*fb.predicted, sizeof(double)), 0);
    }
    expect_identical_confusion(fa.confusion, fb.confusion);
  }
}

/// Small but non-trivial 8-point grid (sigma axis; every point detects two
/// features over its single simulated capture).
std::vector<ExperimentSpec> eight_point_grid() {
  SweepGrid grid;
  grid.sigma_timers = {0.0, 10e-6, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6, 1e-3};
  grid.plan.set_features({classify::FeatureKind::kSampleVariance,
                          classify::FeatureKind::kSampleEntropy});
  grid.plan.adversary.window_size = 100;
  grid.plan.train_windows = 10;
  grid.plan.test_windows = 10;
  grid.seed = 99;
  return grid.expand();
}

TEST(SweepDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto specs = eight_point_grid();
  ASSERT_GE(specs.size(), 8u);

  SweepOptions one_thread;
  one_thread.threads = 1;
  SweepOptions four_threads;
  four_threads.threads = 4;
  SweepOptions sixteen_threads;
  sixteen_threads.threads = 16;

  const auto serial = SweepRunner(sim_backend(), one_thread).run(specs);
  const auto par4 = SweepRunner(sim_backend(), four_threads).run(specs);
  const auto par16 = SweepRunner(sim_backend(), sixteen_threads).run(specs);

  ASSERT_TRUE(serial.all_completed());
  ASSERT_TRUE(par4.all_completed());
  ASSERT_TRUE(par16.all_completed());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(serial.results[i], par4.results[i]);
    expect_identical(serial.results[i], par16.results[i]);
  }
}

TEST(SweepDeterminism, SharedPoolMatchesDedicatedPools) {
  const auto specs = eight_point_grid();
  const auto shared = SweepRunner().run(specs);  // global pool
  SweepOptions two;
  two.threads = 2;
  const auto dedicated = SweepRunner(sim_backend(), two).run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(shared.results[i], dedicated.results[i]);
  }
}

TEST(SweepDeterminism, ExecutionPoliciesAgreeBitwise) {
  // The execution-policy seam only changes HOW points are dispatched —
  // inline loop, task-per-point, or grain-aligned chunks with per-slot
  // engines — never WHAT they compute.
  const auto specs = eight_point_grid();

  SweepOptions serial;
  serial.execution = util::ExecutionPolicy::kSerial;
  SweepOptions task_per_point;
  task_per_point.execution = util::ExecutionPolicy::kMultithread;
  task_per_point.threads = 4;
  SweepOptions chunked;
  chunked.execution = util::ExecutionPolicy::kChunked;
  chunked.threads = 4;
  chunked.grain = 3;  // ragged: 8 points -> chunks of 3, 3, 2

  const auto reference = SweepRunner(sim_backend(), serial).run(specs);
  const auto tasks = SweepRunner(sim_backend(), task_per_point).run(specs);
  const auto chunks = SweepRunner(sim_backend(), chunked).run(specs);

  ASSERT_TRUE(reference.all_completed());
  ASSERT_TRUE(tasks.all_completed());
  ASSERT_TRUE(chunks.all_completed());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(reference.results[i], tasks.results[i]);
    expect_identical(reference.results[i], chunks.results[i]);
  }
}

TEST(SweepDeterminism, LegacyRunSweepMatchesSingleRuns) {
  const auto specs = eight_point_grid();
  const auto swept = run_sweep(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(swept[i], run_experiment(specs[i]));
  }
}

TEST(SweepRunnerTest, ProgressCoversEveryPoint) {
  const auto specs = eight_point_grid();
  // Progress now fires OUTSIDE the runner's lock (so a slow observer can't
  // stall the sweep) — callbacks may arrive concurrently and the observer
  // owns its own synchronization.
  std::mutex mutex;
  std::vector<std::size_t> done_values;
  SweepOptions options;
  options.threads = 4;
  options.progress = [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, specs.size());
    const std::lock_guard<std::mutex> lock(mutex);
    done_values.push_back(done);
  };
  const auto report = SweepRunner(sim_backend(), options).run(specs);
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(done_values.size(), specs.size());
  // Every count 1..N is reported exactly once, though possibly out of order.
  std::sort(done_values.begin(), done_values.end());
  for (std::size_t i = 0; i < done_values.size(); ++i) {
    EXPECT_EQ(done_values[i], i + 1);
  }
}

TEST(SweepRunnerTest, EarlyStopSkipsRemainingPoints) {
  // Serial pool: points run in order, so stopping after point 2 must leave
  // later points un-run.
  const auto specs = eight_point_grid();
  SweepOptions options;
  options.threads = 1;
  options.early_stop = [](std::size_t index, const ExperimentResult&) {
    return index >= 2;
  };
  const auto report = SweepRunner(sim_backend(), options).run(specs);
  EXPECT_FALSE(report.all_completed());
  EXPECT_LT(report.completed_count, specs.size());
  EXPECT_GE(report.completed_count, 3u);  // points 0..2 ran
  std::size_t flagged = 0;
  for (const auto c : report.completed) flagged += c;
  EXPECT_EQ(flagged, report.completed_count);
}

TEST(SweepGridTest, ExpandsRowMajorWithDistinctSeeds) {
  SweepGrid grid;
  grid.environment = SweepGrid::Environment::kLabCrossTraffic;
  grid.sigma_timers = {0.0, 50e-6};
  grid.utilizations = {0.1, 0.3, 0.5};
  grid.plan.set_features({classify::FeatureKind::kSampleVariance,
                          classify::FeatureKind::kSampleMean});
  // The feature axis rides each point's DetectorBank instead of multiplying
  // the number of points (and simulations).
  EXPECT_EQ(grid.size(), 2u * 3u);
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), grid.size());

  // All per-point seeds distinct.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].seed, specs[j].seed) << i << "," << j;
    }
  }
  // Every point carries the full feature list, grid order preserved.
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.plan.adversary.feature, classify::FeatureKind::kSampleVariance);
    const auto features = spec.features();
    ASSERT_EQ(features.size(), 2u);
    EXPECT_EQ(features[0], classify::FeatureKind::kSampleVariance);
    EXPECT_EQ(features[1], classify::FeatureKind::kSampleMean);
  }
  // Expansion is deterministic.
  const auto again = grid.expand();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].seed, again[i].seed);
  }
}

TEST(SweepGridTest, TapHopsTruncateThePath) {
  SweepGrid grid;
  grid.environment = SweepGrid::Environment::kWan;
  grid.hours = {12.0};
  grid.tap_hops = {0, 4, 100};
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].scenario.base.hops_before_tap.size(), 0u);
  EXPECT_EQ(specs[1].scenario.base.hops_before_tap.size(), 4u);
  // Clamped to the WAN path's actual length (15 hops).
  EXPECT_EQ(specs[2].scenario.base.hops_before_tap.size(), 15u);
}

TEST(PiatSourceTest, BatchedPullsMatchOneBigPull) {
  // The backend streams contiguously: pulling 3 x 400 PIATs gives exactly
  // the same series as pulling 1200 at once.
  const auto scenario = lab_zero_cross(make_cit());
  auto batched_src = sim_backend().open(scenario, 0, /*seed=*/7, /*salt=*/1);
  std::vector<double> batched;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(batched_src->collect(400, batched), 400u);
  }

  auto oneshot_src = sim_backend().open(scenario, 0, 7, 1);
  std::vector<double> oneshot;
  EXPECT_EQ(oneshot_src->collect(1200, oneshot), 1200u);

  EXPECT_EQ(batched, oneshot);
}

TEST(PiatSourceTest, StreamsAreKeyedBySeedSaltAndClass) {
  const auto scenario = lab_zero_cross(make_cit());
  std::vector<double> base, other_seed, other_salt, other_class, same;
  sim_backend().open(scenario, 0, 7, 1)->collect(200, base);
  sim_backend().open(scenario, 0, 8, 1)->collect(200, other_seed);
  sim_backend().open(scenario, 0, 7, 2)->collect(200, other_salt);
  sim_backend().open(scenario, 1, 7, 1)->collect(200, other_class);
  sim_backend().open(scenario, 0, 7, 1)->collect(200, same);
  EXPECT_EQ(base, same);
  EXPECT_NE(base, other_seed);
  EXPECT_NE(base, other_salt);
  EXPECT_NE(base, other_class);
}

TEST(ExperimentEngineTest, BatchSizeDoesNotChangeResults) {
  ExperimentSpec spec;
  spec.scenario = lab_zero_cross(make_cit());
  spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.plan.adversary.window_size = 100;
  spec.plan.train_windows = 10;
  spec.plan.test_windows = 10;
  spec.seed = 3;

  const auto small_batches = ExperimentEngine(sim_backend(), 256).run(spec);
  const auto big_batches = ExperimentEngine(sim_backend(), 1 << 20).run(spec);
  expect_identical(small_batches, big_batches);
}

}  // namespace
}  // namespace linkpad::core
