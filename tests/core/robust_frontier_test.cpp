// The best-response-adversary contract suite (own ctest binary, label
// `robust`):
//  * run_robust_frontier byte-identical across thread counts {1, 2, hw}
//    (diffed on the canonical hex-double JSON);
//  * successive halving agrees with the exhaustive grid on a small space;
//  * held-out seed discipline: selection seeds are disjoint from scoring
//    seeds, and the fixed-bank column reproduces run_frontier bit-for-bit
//    (tuning happened on a different stream, scoring is unbiased by it);
//  * tuned detection ≥ fixed detection on every golden point;
//  * the early_stop misuse throws the named std::invalid_argument.
#include "core/robust_frontier.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/scenarios.hpp"

namespace linkpad::core {
namespace {

/// The golden robust spec: a 3-rung budget ladder against a 2-feature ×
/// 2-window attacker grid (small enough for the exhaustive path).
RobustFrontierSpec golden_spec() {
  RobustFrontierSpec spec;
  spec.frontier.scenario = lab_zero_cross(make_cit());
  spec.frontier.policies = budget_ladder({0.0, 70.0, 100.0});
  spec.frontier.plan.adversary.window_size = 200;
  spec.frontier.plan.train_windows = 12;
  spec.frontier.plan.test_windows = 12;
  spec.frontier.seed = 20030324;
  spec.space.features = {classify::FeatureKind::kSampleMean,
                         classify::FeatureKind::kSampleVariance};
  spec.space.window_sizes = {100, 200};
  return spec;
}

TEST(RobustGolden, TunedAtLeastFixedOnEveryPoint) {
  const auto spec = golden_spec();
  const auto robust = run_robust_frontier(spec);
  ASSERT_EQ(robust.points.size(), spec.frontier.policies.size());

  for (std::size_t i = 0; i < robust.points.size(); ++i) {
    SCOPED_TRACE(robust.points[i].policy);
    // The tuned attacker keeps the fixed bank in hand: never worse.
    EXPECT_GE(robust.points[i].tuned_detection,
              robust.points[i].fixed_detection);
    EXPECT_GE(robust.points[i].tuned_gain(), 0.0);
    EXPECT_LT(robust.points[i].winner, spec.space.size());
    EXPECT_FALSE(robust.points[i].winner_label.empty());
  }
  // Someone is on the front, and front() matches the flags.
  const auto front = robust.front();
  EXPECT_FALSE(front.empty());
  for (const std::size_t i : front) {
    EXPECT_TRUE(robust.points[i].pareto_efficient);
  }
}

TEST(RobustSeeds, SelectionDisjointFromScoringAndFixedColumnMatchesFrontier) {
  const auto spec = golden_spec();
  // Seed discipline: the tuner never sees a scoring stream.
  for (std::size_t i = 0; i < spec.frontier.policies.size(); ++i) {
    EXPECT_NE(spec.selection_seed(i), spec.scoring_seed(i));
    EXPECT_EQ(spec.scoring_seed(i), derive_point_seed(spec.frontier.seed, i));
    for (std::size_t j = 0; j < spec.frontier.policies.size(); ++j) {
      EXPECT_NE(spec.selection_seed(i), spec.scoring_seed(j));
    }
  }

  // The scoring sweep IS run_frontier's evaluation with one extra detector
  // tapping the capture: the fixed-bank column must reproduce
  // run_frontier's detection rates bit-for-bit. This is the held-out-seed
  // separation proof — if tuning perturbed the scoring streams in any way,
  // these doubles would differ.
  const auto robust = run_robust_frontier(spec);
  const auto fixed = run_frontier(spec.frontier);
  ASSERT_EQ(robust.points.size(), fixed.points.size());
  for (std::size_t i = 0; i < robust.points.size(); ++i) {
    SCOPED_TRACE(robust.points[i].policy);
    EXPECT_EQ(std::memcmp(&robust.points[i].fixed_detection,
                          &fixed.points[i].detection_rate, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&robust.points[i].overhead_bps,
                          &fixed.points[i].overhead_bps, sizeof(double)),
              0);
    // And the acceptance inequality against run_frontier itself.
    EXPECT_GE(robust.points[i].tuned_detection, fixed.points[i].detection_rate);
  }
}

TEST(RobustDeterminism, JsonByteIdenticalAcrossThreadCounts) {
  const auto spec = golden_spec();
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  auto run_at = [&](std::size_t threads) {
    SweepOptions options;
    options.threads = threads;
    return robust_frontier_json(run_robust_frontier(spec, sim_backend(),
                                                    options));
  };
  const std::string serial = run_at(1);
  EXPECT_EQ(serial, run_at(2));
  EXPECT_EQ(serial, run_at(hw));
  // The serialization carries hex bit patterns, not printf round-trips.
  EXPECT_NE(serial.find("\"tuned_detection\":\""), std::string::npos);
}

TEST(TuneAdversary, HalvingAgreesWithExhaustiveOnSmallSpace) {
  const Scenario scenario = lab_zero_cross(make_cit());
  AdversaryPlan plan;
  plan.train_windows = 16;
  plan.test_windows = 16;
  classify::DetectorSearchSpace space;
  space.features = {classify::FeatureKind::kSampleMean,
                    classify::FeatureKind::kSampleVariance,
                    classify::FeatureKind::kSampleEntropy};
  space.window_sizes = {50, 400};
  ASSERT_EQ(space.size(), 6u);
  const std::uint64_t seed = 41;

  TuneOptions exhaustive;
  exhaustive.exhaustive_limit = 8;  // 6 ≤ 8 → one full-budget round
  const auto grid = tune_adversary(scenario, plan, space, seed, sim_backend(),
                                   exhaustive);
  EXPECT_EQ(grid.rounds, 1u);
  EXPECT_EQ(grid.evaluations, 6u);
  ASSERT_EQ(grid.final_scores.size(), 6u);

  TuneOptions halving;
  halving.exhaustive_limit = 2;
  halving.min_windows = 4;  // 6 @4 → 3 @8 → 2 finalists @16
  const auto halved = tune_adversary(scenario, plan, space, seed,
                                     sim_backend(), halving);
  EXPECT_EQ(halved.rounds, 3u);
  EXPECT_EQ(halved.evaluations, 6u + 3u + 2u);
  EXPECT_EQ(halved.final_scores.size(), 2u);

  EXPECT_EQ(halved.winner, grid.winner);
  EXPECT_EQ(halved.winner_label, grid.winner_label);
  // Both final rounds scored the winner at the full budget on the same
  // seed: the score is the same double.
  EXPECT_EQ(std::memcmp(&halved.winner_score, &grid.winner_score,
                        sizeof(double)),
            0);
}

TEST(TuneAdversary, DeterministicAcrossThreadCountsAndTiesBreakLow) {
  const Scenario scenario = lab_zero_cross(make_cit());
  AdversaryPlan plan;
  plan.train_windows = 8;
  plan.test_windows = 8;
  classify::DetectorSearchSpace space;
  space.features = {classify::FeatureKind::kSampleVariance};
  space.window_sizes = {100, 200};
  const std::uint64_t seed = 7;

  auto tune_at = [&](std::size_t threads) {
    TuneOptions options;
    options.sweep.threads = threads;
    return tune_adversary(scenario, plan, space, seed, sim_backend(), options);
  };
  const auto serial = tune_at(1);
  const auto wide = tune_at(
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1));
  EXPECT_EQ(serial.winner, wide.winner);
  ASSERT_EQ(serial.final_scores.size(), wide.final_scores.size());
  for (std::size_t i = 0; i < serial.final_scores.size(); ++i) {
    EXPECT_EQ(serial.final_scores[i].candidate,
              wide.final_scores[i].candidate);
    EXPECT_EQ(std::memcmp(&serial.final_scores[i].attack_score,
                          &wide.final_scores[i].attack_score, sizeof(double)),
              0);
  }

  // A space of identical candidates ties exactly; the winner must be the
  // lowest candidate index, not an artifact of evaluation order.
  classify::DetectorSearchSpace tied;
  tied.features = {classify::FeatureKind::kSampleVariance};
  tied.window_sizes = {100, 100};  // two byte-identical candidates
  const auto tie = tune_adversary(scenario, plan, tied, seed, sim_backend());
  EXPECT_EQ(tie.winner, 0u);
}

TEST(TuneAdversary, CpdCandidateRidesTheBank) {
  const Scenario scenario = lab_zero_cross(make_cit());
  AdversaryPlan plan;
  plan.adversary.window_size = 100;
  plan.train_windows = 8;
  plan.test_windows = 8;
  classify::DetectorSearchSpace space;
  space.features = {classify::FeatureKind::kSampleVariance};
  space.window_sizes = {100};
  space.cpd_target_fars = {0.05};
  space.cpd_base.horizon = 200;  // keep the Monte-Carlo calibration cheap
  space.cpd_base.trials = 40;
  ASSERT_EQ(space.size(), 2u);

  const auto result =
      tune_adversary(scenario, plan, space, /*seed=*/11, sim_backend());
  ASSERT_EQ(result.final_scores.size(), 2u);
  EXPECT_EQ(result.final_scores[1].label, "cusum @far=0.05");
  // CPD scores live on the attack_score scale: 0.5 (undetected) or 1.0.
  const double cpd_score = result.final_scores[1].attack_score;
  EXPECT_TRUE(cpd_score == 0.5 || cpd_score == 1.0) << cpd_score;
}

TEST(RobustMisuse, EarlyStopThrowsNamedInvalidArgument) {
  const auto spec = golden_spec();
  SweepOptions options;
  options.early_stop = [](std::size_t, const ExperimentResult&) {
    return true;
  };
  try {
    (void)run_robust_frontier(spec, sim_backend(), options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("early_stop"), std::string::npos);
  }

  TuneOptions tune;
  tune.sweep.early_stop = options.early_stop;
  try {
    (void)tune_adversary(spec.frontier.scenario, spec.frontier.plan,
                         spec.space, 1, sim_backend(), tune);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("early_stop"), std::string::npos);
  }
}

}  // namespace
}  // namespace linkpad::core
