#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace linkpad::core {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("linkpad_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

Trace sample_trace() {
  Trace t;
  t.description = "lab zero-cross CIT 40pps";
  t.piats = {0.0100001, 0.0099998, 0.0100012, 0.0099971, 0.0100033};
  return t;
}

TEST_F(TraceIoTest, CsvRoundTripPreservesValues) {
  const auto original = sample_trace();
  save_trace_csv(path("t.csv"), original);
  const auto loaded = load_trace_csv(path("t.csv"));
  ASSERT_EQ(loaded.piats.size(), original.piats.size());
  for (std::size_t i = 0; i < original.piats.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.piats[i], original.piats[i]);
  }
  EXPECT_EQ(loaded.description, original.description);
}

TEST_F(TraceIoTest, BinaryRoundTripIsExact) {
  const auto original = sample_trace();
  save_trace_binary(path("t.lpt"), original);
  const auto loaded = load_trace_binary(path("t.lpt"));
  EXPECT_EQ(loaded.piats, original.piats);
  EXPECT_EQ(loaded.description, original.description);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  save_trace_binary(path("e.lpt"), empty);
  const auto loaded = load_trace_binary(path("e.lpt"));
  EXPECT_TRUE(loaded.piats.empty());
  EXPECT_TRUE(loaded.description.empty());
}

TEST_F(TraceIoTest, LargeTraceBinaryRoundTrip) {
  Trace big;
  big.description = "big";
  big.piats.reserve(100000);
  for (int i = 0; i < 100000; ++i) big.piats.push_back(1e-2 + i * 1e-9);
  save_trace_binary(path("big.lpt"), big);
  const auto loaded = load_trace_binary(path("big.lpt"));
  EXPECT_EQ(loaded.piats, big.piats);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv(path("missing.csv")), std::runtime_error);
  EXPECT_THROW(load_trace_binary(path("missing.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicRejected) {
  std::ofstream out(path("bad.lpt"), std::ios::binary);
  out << "NOPE-this-is-not-a-trace";
  out.close();
  EXPECT_THROW(load_trace_binary(path("bad.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBinaryRejected) {
  const auto original = sample_trace();
  save_trace_binary(path("t.lpt"), original);
  // Chop the file in half.
  const auto full =
      static_cast<std::size_t>(std::filesystem::file_size(path("t.lpt")));
  std::filesystem::resize_file(path("t.lpt"), full / 2);
  EXPECT_THROW(load_trace_binary(path("t.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, CsvSkipsCommentsAndBlankLines) {
  std::ofstream out(path("manual.csv"));
  out << "# banner\n\n# a description\n0.01\n\n0.02\n";
  out.close();
  const auto loaded = load_trace_csv(path("manual.csv"));
  ASSERT_EQ(loaded.piats.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.piats[0], 0.01);
  EXPECT_EQ(loaded.description, "a description");
}

}  // namespace
}  // namespace linkpad::core
