#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace linkpad::core {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("linkpad_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

Trace sample_trace() {
  Trace t;
  t.description = "lab zero-cross CIT 40pps";
  t.piats = {0.0100001, 0.0099998, 0.0100012, 0.0099971, 0.0100033};
  return t;
}

TEST_F(TraceIoTest, CsvRoundTripPreservesValues) {
  const auto original = sample_trace();
  save_trace_csv(path("t.csv"), original);
  const auto loaded = load_trace_csv(path("t.csv"));
  ASSERT_EQ(loaded.piats.size(), original.piats.size());
  for (std::size_t i = 0; i < original.piats.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.piats[i], original.piats[i]);
  }
  EXPECT_EQ(loaded.description, original.description);
}

TEST_F(TraceIoTest, BinaryRoundTripIsExact) {
  const auto original = sample_trace();
  save_trace_binary(path("t.lpt"), original);
  const auto loaded = load_trace_binary(path("t.lpt"));
  EXPECT_EQ(loaded.piats, original.piats);
  EXPECT_EQ(loaded.description, original.description);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  save_trace_binary(path("e.lpt"), empty);
  const auto loaded = load_trace_binary(path("e.lpt"));
  EXPECT_TRUE(loaded.piats.empty());
  EXPECT_TRUE(loaded.description.empty());
}

TEST_F(TraceIoTest, LargeTraceBinaryRoundTrip) {
  Trace big;
  big.description = "big";
  big.piats.reserve(100000);
  for (int i = 0; i < 100000; ++i) big.piats.push_back(1e-2 + i * 1e-9);
  save_trace_binary(path("big.lpt"), big);
  const auto loaded = load_trace_binary(path("big.lpt"));
  EXPECT_EQ(loaded.piats, big.piats);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv(path("missing.csv")), std::runtime_error);
  EXPECT_THROW(load_trace_binary(path("missing.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicRejected) {
  std::ofstream out(path("bad.lpt"), std::ios::binary);
  out << "NOPE-this-is-not-a-trace";
  out.close();
  EXPECT_THROW(load_trace_binary(path("bad.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBinaryRejected) {
  const auto original = sample_trace();
  save_trace_binary(path("t.lpt"), original);
  // Chop the file in half.
  const auto full =
      static_cast<std::size_t>(std::filesystem::file_size(path("t.lpt")));
  std::filesystem::resize_file(path("t.lpt"), full / 2);
  EXPECT_THROW(load_trace_binary(path("t.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, MalformedCsvValueNamesFileAndLine) {
  std::ofstream out(path("corrupt.csv"));
  out << "# banner\n0.01\n0.02\nbogus-not-a-number\n0.03\n";
  out.close();
  try {
    (void)load_trace_csv(path("corrupt.csv"));
    FAIL() << "corrupt CSV must not parse";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // The diagnostic must point at the offending file AND line, not
    // surface as a bare std::stod error or silent truncation.
    EXPECT_NE(what.find("corrupt.csv:4"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus-not-a-number"), std::string::npos) << what;
  }
}

TEST_F(TraceIoTest, CsvTrailingGarbageAfterNumberRejected) {
  // std::stod would silently accept "0.01abc" as 0.01; strict parsing
  // must flag the corruption instead.
  std::ofstream out(path("trailing.csv"));
  out << "0.01\n0.02abc\n";
  out.close();
  try {
    (void)load_trace_csv(path("trailing.csv"));
    FAIL() << "trailing garbage must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing.csv:2"), std::string::npos)
        << e.what();
  }
}

TEST_F(TraceIoTest, CsvAcceptsSurroundingWhitespace) {
  std::ofstream out(path("ws.csv"));
  out << "0.01 \n0.02\t\n";
  out.close();
  const auto loaded = load_trace_csv(path("ws.csv"));
  ASSERT_EQ(loaded.piats.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.piats[1], 0.02);
}

TEST_F(TraceIoTest, BinaryCountMismatchRejected) {
  // A count field larger than the payload means truncated data.
  const auto original = sample_trace();
  save_trace_binary(path("short.lpt"), original);
  const auto full =
      static_cast<std::size_t>(std::filesystem::file_size(path("short.lpt")));
  std::filesystem::resize_file(path("short.lpt"), full - sizeof(double));
  try {
    (void)load_trace_binary(path("short.lpt"));
    FAIL() << "short payload must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST_F(TraceIoTest, HugeCountFieldDiagnosedWithoutGiantAllocation) {
  // A corrupt count field below the sanity cap must produce the truncation
  // diagnostic, not a multi-gigabyte resize ending in bad_alloc.
  const auto original = sample_trace();
  save_trace_binary(path("huge.lpt"), original);
  std::fstream patch(path("huge.lpt"),
                     std::ios::binary | std::ios::in | std::ios::out);
  const auto count_offset = static_cast<std::streamoff>(
      4 + sizeof(std::uint64_t) + original.description.size());
  const std::uint64_t bogus = (1ull << 32) - 1;
  patch.seekp(count_offset);
  patch.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  patch.close();
  try {
    (void)load_trace_binary(path("huge.lpt"));
    FAIL() << "bogus count must not parse";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST_F(TraceIoTest, CsvAcceptsSubnormalValues) {
  // glibc strtod flags subnormals with ERANGE; they are representable and
  // must load, unlike genuine overflow.
  std::ofstream out(path("tiny.csv"));
  out << "1e-310\n1e+400\n";
  out.close();
  try {
    (void)load_trace_csv(path("tiny.csv"));
    FAIL() << "overflow line must be rejected";
  } catch (const std::runtime_error& e) {
    // Line 1 (the subnormal) parses; line 2 (overflow) is the error.
    EXPECT_NE(std::string(e.what()).find("tiny.csv:2"), std::string::npos)
        << e.what();
  }
}

TEST_F(TraceIoTest, BinaryTrailingBytesRejected) {
  const auto original = sample_trace();
  save_trace_binary(path("extra.lpt"), original);
  std::ofstream out(path("extra.lpt"), std::ios::binary | std::ios::app);
  out << "junk";
  out.close();
  EXPECT_THROW(load_trace_binary(path("extra.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedDescriptionRejected) {
  const auto original = sample_trace();
  save_trace_binary(path("desc.lpt"), original);
  // Chop inside the description bytes (magic 4 + length 8 + partial text).
  std::filesystem::resize_file(path("desc.lpt"), 4 + 8 + 3);
  EXPECT_THROW(load_trace_binary(path("desc.lpt")), std::runtime_error);
}

TEST_F(TraceIoTest, CsvSkipsCommentsAndBlankLines) {
  std::ofstream out(path("manual.csv"));
  out << "# banner\n\n# a description\n0.01\n\n0.02\n";
  out.close();
  const auto loaded = load_trace_csv(path("manual.csv"));
  ASSERT_EQ(loaded.piats.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.piats[0], 0.01);
  EXPECT_EQ(loaded.description, "a description");
}

// ------------------------------------------------------ round-trip fuzzing

/// Randomized trace: mixed magnitudes, exact duplicates (equal
/// timestamps), negatives, subnormals, and exact zeros — everything a real
/// capture or a clock glitch can produce except NaN (not a time).
Trace random_trace(util::Rng& rng, std::size_t count) {
  Trace t;
  if (rng.uniform01() < 0.7) {
    t.description = "fuzz trace " + std::to_string(count);
  }
  t.piats.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double pick = rng.uniform01();
    double x;
    if (pick < 0.15) {
      x = t.piats.empty() ? 0.01 : t.piats.back();  // duplicate timestamp
    } else if (pick < 0.25) {
      x = 0.0;
    } else if (pick < 0.3) {
      x = rng.uniform(-1e-3, 0.0);  // negative PIAT (clock skew artifact)
    } else if (pick < 0.35) {
      x = 5e-310 * rng.uniform01();  // subnormal territory
    } else if (pick < 0.45) {
      x = rng.uniform(1e8, 1e12);  // absurd magnitude, still finite
    } else {
      x = 10e-3 + rng.uniform(-3e-3, 3e-3);  // realistic padded PIAT
    }
    t.piats.push_back(x);
  }
  return t;
}

void expect_traces_bitwise_equal(const Trace& a, const Trace& b,
                                 const std::string& label) {
  EXPECT_EQ(a.description, b.description) << label;
  ASSERT_EQ(a.piats.size(), b.piats.size()) << label;
  for (std::size_t i = 0; i < a.piats.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.piats[i], &b.piats[i], sizeof(double)), 0)
        << label << " index " << i << ": " << a.piats[i] << " vs "
        << b.piats[i];
  }
}

TEST_F(TraceIoTest, RandomTracesRoundTripBitwiseInBothFormats) {
  // 17 significant digits uniquely identify a double, so BOTH formats owe
  // a bitwise round trip — CSV included. Edge sizes 0 (empty capture) and
  // 1 (single packet pair) are always in the sweep.
  util::Rng rng(20030324);
  for (std::size_t i = 0; i < 60; ++i) {
    const std::size_t count =
        i == 0 ? 0
               : (i == 1 ? 1
                         : static_cast<std::size_t>(rng.uniform(0.0, 300.0)));
    const auto original = random_trace(rng, count);
    const std::string tag = "iteration " + std::to_string(i);

    save_trace_csv(path("fuzz.csv"), original);
    expect_traces_bitwise_equal(load_trace_csv(path("fuzz.csv")), original,
                                tag + " csv");

    save_trace_binary(path("fuzz.lpt"), original);
    expect_traces_bitwise_equal(load_trace_binary(path("fuzz.lpt")), original,
                                tag + " binary");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(TraceIoTest, CrossFormatRoundTripPreservesTrace) {
  // CSV → load → binary → load must end bit-identical to the original:
  // the two formats describe one Trace, not two dialects of it.
  util::Rng rng(7);
  const auto original = random_trace(rng, 120);
  save_trace_csv(path("x.csv"), original);
  const auto via_csv = load_trace_csv(path("x.csv"));
  save_trace_binary(path("x.lpt"), via_csv);
  expect_traces_bitwise_equal(load_trace_binary(path("x.lpt")), original,
                              "csv->binary");
}

TEST_F(TraceIoTest, DuplicateTimestampRunsSurviveRoundTrip) {
  Trace t;
  t.description = "all equal";
  t.piats.assign(200, 0.0099999999999999985);  // not exactly representable
  save_trace_csv(path("dup.csv"), t);
  expect_traces_bitwise_equal(load_trace_csv(path("dup.csv")), t, "dup csv");
  save_trace_binary(path("dup.lpt"), t);
  expect_traces_bitwise_equal(load_trace_binary(path("dup.lpt")), t,
                              "dup binary");
}

}  // namespace
}  // namespace linkpad::core
