// Calibration regression tests: the analytic variance decomposition must
// keep matching what the simulator actually produces. If these fail, every
// "theory" curve in the figure benches silently drifts from the "experiment"
// curves — this is the repo's anchor to the paper's Fig 4.
#include "core/piat_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/scenarios.hpp"

namespace linkpad::core {
namespace {

TEST(PiatModel, PredictionMatchesMeasurementZeroCross) {
  const auto s = lab_zero_cross(make_cit());
  const auto predicted = predict_components(s.config_for(0), s.config_for(1));
  const auto measured =
      measure_components(s.config_for(0), s.config_for(1), 120000, 7);

  const double pred_low = predicted.sigma2_timer + predicted.sigma2_net +
                          predicted.sigma2_gw_low;
  const double pred_high = predicted.sigma2_timer + predicted.sigma2_net +
                           predicted.sigma2_gw_high;
  EXPECT_NEAR(measured.sigma2_low, pred_low, 0.05 * pred_low);
  EXPECT_NEAR(measured.sigma2_high, pred_high, 0.05 * pred_high);
  EXPECT_NEAR(measured.ratio, predicted.ratio(), 0.05);
}

TEST(PiatModel, CalibratedRatioNearPaperAnchor) {
  // DESIGN.md calibration target: r_CIT ~ 1.3 in the zero-cross lab.
  const auto s = lab_zero_cross(make_cit());
  const auto vc = predict_components(s.config_for(0), s.config_for(1));
  EXPECT_GT(vc.ratio(), 1.2);
  EXPECT_LT(vc.ratio(), 1.45);
}

TEST(PiatModel, CalibratedSpreadNearTenMicroseconds) {
  // Fig 4(a) anchor: PIAT std-dev ~ 10 us around the 10 ms mean.
  const auto s = lab_zero_cross(make_cit());
  const double var_low = predict_piat_variance(s.config_for(0));
  const double sd_us = std::sqrt(var_low) * 1e6;
  EXPECT_GT(sd_us, 6.0);
  EXPECT_LT(sd_us, 14.0);
}

TEST(PiatModel, VitTimerDominatesComponents) {
  const auto s = lab_zero_cross(make_vit(1e-3));
  const auto vc = predict_components(s.config_for(0), s.config_for(1));
  EXPECT_GT(vc.sigma2_timer, 100.0 * (vc.sigma2_gw_high - vc.sigma2_gw_low));
  EXPECT_LT(vc.ratio(), 1.0001);
}

TEST(PiatModel, CrossTrafficRaisesNetComponent) {
  const auto quiet = lab_cross_traffic(make_cit(), 0.05);
  const auto busy = lab_cross_traffic(make_cit(), 0.45);
  const auto vc_quiet =
      predict_components(quiet.config_for(0), quiet.config_for(1));
  const auto vc_busy =
      predict_components(busy.config_for(0), busy.config_for(1));
  EXPECT_GT(vc_busy.sigma2_net, 5.0 * vc_quiet.sigma2_net);
  // More ambient noise => ratio closer to 1 => harder detection (Fig 6).
  EXPECT_LT(vc_busy.ratio(), vc_quiet.ratio());
}

TEST(PiatModel, PredictionMatchesMeasurementWithCrossTraffic) {
  const auto s = lab_cross_traffic(make_cit(), 0.3);
  const auto predicted = predict_components(s.config_for(0), s.config_for(1));
  const auto measured =
      measure_components(s.config_for(0), s.config_for(1), 120000, 11);
  const double pred_low = predicted.sigma2_timer + predicted.sigma2_net +
                          predicted.sigma2_gw_low;
  EXPECT_NEAR(measured.sigma2_low, pred_low, 0.07 * pred_low);
  EXPECT_NEAR(measured.ratio, predicted.ratio(), 0.05);
}

TEST(PiatModel, WanPathNoisierThanCampus) {
  const auto c = campus(make_cit(), 14.0);
  const auto w = wan(make_cit(), 14.0);
  const auto vc_c = predict_components(c.config_for(0), c.config_for(1));
  const auto vc_w = predict_components(w.config_for(0), w.config_for(1));
  EXPECT_GT(vc_w.sigma2_net, vc_c.sigma2_net);
  EXPECT_LT(vc_w.ratio(), vc_c.ratio());
}

}  // namespace
}  // namespace linkpad::core
