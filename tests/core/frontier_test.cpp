// The defense-frontier contract suite (own ctest binary, label `frontier`):
//  * the golden budget-ladder table at the default seed — detection rate
//    monotone non-increasing as the overhead budget grows, endpoints pinned;
//  * bit-identity across thread counts {1, 2, hw} for EVERY payload-
//    reactive TimerPolicy (the population/sweep determinism wall extended
//    to the new policies);
//  * engine overhead accounting cross-checked against the analytic wire
//    rate and the budgeted cost model.
#include "core/frontier.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/overhead.hpp"
#include "core/scenarios.hpp"
#include "util/check.hpp"

namespace linkpad::core {
namespace {

/// Bitwise equality of the fields the frontier reads off a result,
/// including the overhead accounting.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(std::memcmp(&a.detection_rate, &b.detection_rate, sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&a.r_hat, &b.r_hat, sizeof(double)), 0);
  ASSERT_EQ(a.per_feature.size(), b.per_feature.size());
  for (std::size_t f = 0; f < a.per_feature.size(); ++f) {
    EXPECT_EQ(std::memcmp(&a.per_feature[f].detection_rate,
                          &b.per_feature[f].detection_rate, sizeof(double)),
              0);
  }
  ASSERT_EQ(a.overhead_per_class.size(), b.overhead_per_class.size());
  for (std::size_t c = 0; c < a.overhead_per_class.size(); ++c) {
    const StreamOverhead& oa = a.overhead_per_class[c];
    const StreamOverhead& ob = b.overhead_per_class[c];
    EXPECT_EQ(oa.payload_packets, ob.payload_packets);
    EXPECT_EQ(oa.dummy_packets, ob.dummy_packets);
    EXPECT_EQ(oa.suppressed_fires, ob.suppressed_fires);
    EXPECT_EQ(std::memcmp(&oa.wire_bps, &ob.wire_bps, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&oa.padding_bps, &ob.padding_bps, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&oa.delay_p95, &ob.delay_p95, sizeof(double)), 0);
  }
}

FrontierSpec golden_ladder_spec() {
  FrontierSpec spec;
  spec.scenario = lab_zero_cross(make_cit());
  // Peak payload 40 pps vs the 100 pps timer: only the last rung reaches
  // full coverage.
  spec.policies = budget_ladder({0.0, 40.0, 70.0, 85.0, 100.0});
  spec.plan.adversary.window_size = 200;
  spec.plan.train_windows = 12;
  spec.plan.test_windows = 12;
  spec.seed = 20030324;  // the default seed the golden values are pinned at
  return spec;
}

TEST(FrontierGolden, BudgetLadderMonotoneAtDefaultSeed) {
  const auto frontier = run_frontier(golden_ladder_spec());
  ASSERT_EQ(frontier.points.size(), 5u);

  // The acceptance contract: detection never rises as the budget grows.
  EXPECT_TRUE(detection_monotone_nonincreasing(frontier.points));

  // Partial budgets leave the wire rate itself readable: certainty.
  EXPECT_NEAR(frontier.points[0].detection_rate, 1.0, 0.015);
  EXPECT_NEAR(frontier.points[1].detection_rate, 1.0, 0.015);
  EXPECT_NEAR(frontier.points[2].detection_rate, 1.0, 0.015);
  // Full coverage shrinks the leak to the paper's CIT timing channel —
  // clearly below the partial-budget certainty, clearly above coin-flip.
  EXPECT_LT(frontier.points[4].detection_rate,
            frontier.points[0].detection_rate - 0.05);
  EXPECT_GT(frontier.points[4].detection_rate, 0.6);

  // Overhead strictly grows along the ladder until the full-padding cap.
  for (std::size_t i = 1; i < frontier.points.size(); ++i) {
    EXPECT_GE(frontier.points[i].overhead_bps,
              frontier.points[i - 1].overhead_bps - 1.0);
  }
  // Budget 0 (burst 5): essentially no padding bandwidth.
  EXPECT_LT(frontier.points[0].overhead_bps, 1e3);
  // Full padding: dummy bandwidth ≈ (1/τ − mean payload rate)·wire bytes.
  const double full = padded_wire_rate_bps(golden_ladder_spec().scenario);
  EXPECT_NEAR(frontier.points[4].wire_bps, full, 0.02 * full);

  // The endpoints are Pareto-efficient by construction: nothing is cheaper
  // than rung 0, nothing detects worse than the best rung.
  EXPECT_TRUE(frontier.points.front().pareto_efficient);
  EXPECT_TRUE(frontier.points.back().pareto_efficient);
}

TEST(FrontierDeterminism, BitIdenticalAcrossThreadCountsForEveryNewPolicy) {
  FrontierSpec spec;
  spec.scenario = lab_cross_traffic(make_cit(), 0.1);
  spec.policies = {
      make_onoff(/*hangover=*/20e-3),
      make_budgeted(/*dummy_budget_per_sec=*/25.0),
      make_adaptive(/*base_gap=*/25e-3, /*gain=*/1.0, /*min_gap=*/2.5e-3),
  };
  spec.plan.adversary.window_size = 100;
  spec.plan.train_windows = 6;
  spec.plan.test_windows = 6;
  spec.seed = 77;

  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  auto run_at = [&](std::size_t threads) {
    SweepOptions options;
    options.threads = threads;
    return run_frontier(spec, sim_backend(), options);
  };
  const auto serial = run_at(1);
  const auto two = run_at(2);
  const auto wide = run_at(hw);
  ASSERT_EQ(serial.points.size(), spec.policies.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    SCOPED_TRACE(serial.points[i].policy);
    expect_identical(serial.points[i].result, two.points[i].result);
    expect_identical(serial.points[i].result, wide.points[i].result);
    EXPECT_EQ(serial.points[i].pareto_efficient, two.points[i].pareto_efficient);
    EXPECT_EQ(serial.points[i].pareto_efficient,
              wide.points[i].pareto_efficient);
  }
}

TEST(FrontierOverhead, EngineAccountingTracksAnalyticRatesForCit) {
  ExperimentSpec spec;
  spec.scenario = lab_zero_cross(make_cit());
  spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.plan.adversary.window_size = 200;
  spec.plan.train_windows = 6;
  spec.plan.test_windows = 6;
  spec.seed = 5;
  const auto result = run_experiment(spec);

  ASSERT_EQ(result.overhead_per_class.size(), 2u);
  const double analytic = padded_wire_rate_bps(spec.scenario);
  ASSERT_TRUE(result.mean_wire_bps().has_value());
  EXPECT_NEAR(*result.mean_wire_bps(), analytic, 0.03 * analytic);
  // Dummy fraction per class complements the payload share: 1 − rate·τ.
  EXPECT_NEAR(result.overhead_per_class[0].dummy_fraction, 0.9, 0.02);
  EXPECT_NEAR(result.overhead_per_class[1].dummy_fraction, 0.6, 0.02);
  // Queueing-delay percentiles are populated, ordered and ≲ τ.
  for (const auto& oh : result.overhead_per_class) {
    EXPECT_GT(oh.delay_p50, 0.0);
    EXPECT_LE(oh.delay_p50, oh.delay_p95);
    EXPECT_LE(oh.delay_p95, oh.delay_p99);
    EXPECT_LT(oh.delay_p99, 1.5 * 10e-3);
    EXPECT_EQ(oh.suppressed_fires, 0u);
  }
}

TEST(FrontierOverhead, MeasuredBudgetedOverheadMatchesStaticModel) {
  const double budget = 30.0;
  ExperimentSpec spec;
  spec.scenario = lab_zero_cross(make_budgeted(budget));
  spec.plan.adversary.feature = classify::FeatureKind::kSampleMean;
  spec.plan.adversary.window_size = 200;
  spec.plan.train_windows = 6;
  spec.plan.test_windows = 6;
  spec.seed = 9;
  const auto result = run_experiment(spec);

  ASSERT_EQ(result.overhead_per_class.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    const double payload = spec.scenario.payload_rates[c];
    const auto model = analysis::budgeted_padding_cost(
        constants::kTau, payload, budget, constants::kWireBytes);
    const auto& oh = result.overhead_per_class[c];
    EXPECT_NEAR(oh.wire_bps, model.wire_bandwidth_bps,
                0.05 * model.wire_bandwidth_bps)
        << "class " << c;
    EXPECT_NEAR(oh.padding_bps, model.overhead_bps, 0.05 * model.overhead_bps)
        << "class " << c;
  }
}

TEST(FrontierSpecTest, PointSpecsDeriveDistinctSeedsAndCarryThePolicy) {
  const auto spec = golden_ladder_spec();
  for (std::size_t i = 0; i < spec.policies.size(); ++i) {
    const auto point = spec.point_spec(i);
    EXPECT_EQ(point.scenario.base.policy->name(), spec.policies[i]->name());
    EXPECT_EQ(point.seed, derive_point_seed(spec.seed, i));
    for (std::size_t j = i + 1; j < spec.policies.size(); ++j) {
      EXPECT_NE(point.seed, spec.point_spec(j).seed);
    }
  }
}

TEST(FrontierMonotone, ToleranceBoundsTotalRiseNotPerRungDrift) {
  auto ladder = [](std::initializer_list<double> rates) {
    std::vector<FrontierPoint> points;
    for (const double rate : rates) {
      FrontierPoint point;
      point.detection_rate = rate;
      points.push_back(point);
    }
    return points;
  };
  // Strictly non-increasing: fine at zero tolerance.
  EXPECT_TRUE(detection_monotone_nonincreasing(ladder({1.0, 1.0, 0.9, 0.6})));
  // One rung above the running minimum but inside tolerance: fine.
  EXPECT_TRUE(detection_monotone_nonincreasing(ladder({0.9, 0.88, 0.9, 0.6}),
                                               0.025));
  // Cumulative drift: each +0.02 step is inside a per-rung tolerance, but
  // the total rise over the floor is 0.08 — must FAIL.
  EXPECT_FALSE(detection_monotone_nonincreasing(
      ladder({0.80, 0.82, 0.84, 0.86, 0.88}), 0.025));
  // A genuine single jump beyond tolerance fails too.
  EXPECT_FALSE(detection_monotone_nonincreasing(ladder({0.9, 0.95}), 0.025));
}

TEST(FrontierMisuse, EarlyStopThrowsNamedInvalidArgumentBeforeSweeping) {
  // Regression: run_frontier used to trip a bare all_completed() assertion
  // deep in the run when early_stop skipped points; the misuse must be
  // named at the API boundary, before any simulation cost is paid.
  const auto spec = golden_ladder_spec();
  SweepOptions options;
  options.early_stop = [](std::size_t, const ExperimentResult&) {
    return true;
  };
  try {
    (void)run_frontier(spec, sim_backend(), options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("early_stop"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("run_frontier"), std::string::npos);
  }
}

/// Build a FrontierResult with the given (overhead, detection) coordinates
/// and mark Pareto efficiency exactly the way run_frontier does.
FrontierResult marked_result(
    const std::vector<std::pair<double, double>>& coords) {
  FrontierResult result;
  for (const auto& [overhead, detection] : coords) {
    FrontierPoint point;
    point.overhead_bps = overhead;
    point.detection_rate = detection;
    result.points.push_back(point);
  }
  for (const std::size_t i : analysis::pareto_front(coords)) {
    result.points[i].pareto_efficient = true;
  }
  return result;
}

TEST(FrontierFront, SinglePointFrontierIsItsOwnFront) {
  const auto result = marked_result({{100.0, 0.8}});
  EXPECT_EQ(result.front(), std::vector<std::size_t>({0}));
}

TEST(FrontierFront, TiedOverheadKeepsOnlyTheLowerDetection) {
  // Equal overhead, strictly lower detection: the cheaper-to-evade point
  // dominates its rung-mate.
  const auto result = marked_result({{100.0, 0.9}, {100.0, 0.8}, {50.0, 0.95}});
  EXPECT_EQ(result.front(), std::vector<std::size_t>({1, 2}));
}

TEST(FrontierFront, ExactDuplicateOperatingPointsAreBothKept) {
  // Dominance needs a STRICT improvement in one coordinate: two policies
  // landing on the same operating point do not knock each other out, and
  // both appear in input order.
  const auto result = marked_result({{100.0, 0.8}, {100.0, 0.8}, {200.0, 0.9}});
  EXPECT_EQ(result.front(), std::vector<std::size_t>({0, 1}));
}

TEST(FrontierFront, DominatedTieOnOneCoordinateIsDropped) {
  // (100, 0.8) vs (100, 0.8) vs (80, 0.8): the cheaper point dominates
  // both duplicates (overhead strictly better, detection tied).
  const auto result = marked_result({{100.0, 0.8}, {100.0, 0.8}, {80.0, 0.8}});
  EXPECT_EQ(result.front(), std::vector<std::size_t>({2}));
}

TEST(SweepGridPolicyAxis, PoliciesReplaceSigmaAxisPointForPoint) {
  SweepGrid grid;
  grid.environment = SweepGrid::Environment::kLabCrossTraffic;
  grid.policies = {make_cit(), make_budgeted(25.0), make_onoff(20e-3)};
  grid.utilizations = {0.1, 0.3};
  grid.plan.set_features({classify::FeatureKind::kSampleVariance});
  EXPECT_EQ(grid.size(), 3u * 2u);
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 6u);
  // Row-major: policy outermost; every spec carries its prototype.
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t u = 0; u < 2; ++u) {
      EXPECT_EQ(specs[p * 2 + u].scenario.base.policy->name(),
                grid.policies[p]->name());
    }
  }
  // Seeds all distinct.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].seed, specs[j].seed);
    }
  }
}

}  // namespace
}  // namespace linkpad::core
