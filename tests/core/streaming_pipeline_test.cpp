// The streaming engine contract of DESIGN.md §2.5:
//
//  1. Equivalence — for every FeatureKind, the streaming DetectorBank
//     pipeline inside ExperimentEngine::run reproduces the batch reference
//     path (materialize streams, classify::Adversary) bit for bit, at any
//     pull batch size and any sweep pool size.
//  2. Work sharing — an N-feature experiment opens each logical stream
//     once and pulls each PIAT once: the simulation cost is independent of
//     how many features are detected (verified by a counting backend).
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "classify/adversary.hpp"
#include "core/piat_source.hpp"
#include "util/check.hpp"

namespace linkpad::core {
namespace {

const std::vector<classify::FeatureKind> kAllFeatures = {
    classify::FeatureKind::kSampleMean,
    classify::FeatureKind::kSampleVariance,
    classify::FeatureKind::kSampleEntropy,
    classify::FeatureKind::kMedianAbsDeviation,
    classify::FeatureKind::kInterquartileRange,
};

ExperimentSpec small_spec(std::uint64_t seed = 5) {
  ExperimentSpec spec;
  spec.scenario = lab_zero_cross(make_cit());
  spec.plan.adversary.window_size = 100;
  spec.plan.train_windows = 12;
  spec.plan.test_windows = 12;
  spec.seed = seed;
  return spec;
}

/// The pre-streaming reference pipeline: materialize both captures, train a
/// batch Adversary, evaluate window by window.
classify::ConfusionMatrix batch_reference(const ExperimentSpec& spec,
                                          classify::FeatureKind kind) {
  const std::size_t n = spec.plan.adversary.window_size;
  std::vector<std::vector<double>> train(2), test(2);
  for (std::size_t c = 0; c < 2; ++c) {
    train[c] = pull_stream(sim_backend(), spec.scenario, c, spec.seed, 1,
                           spec.plan.train_windows * n);
    test[c] = pull_stream(sim_backend(), spec.scenario, c, spec.seed, 2,
                          spec.plan.test_windows * n);
  }
  classify::AdversaryConfig cfg = spec.plan.adversary;
  cfg.feature = kind;
  classify::Adversary adversary(cfg);
  adversary.train(train);
  return adversary.evaluate(test);
}

void expect_same_confusion(const classify::ConfusionMatrix& a,
                           const classify::ConfusionMatrix& b,
                           const std::string& label) {
  ASSERT_EQ(a.num_classes(), b.num_classes()) << label;
  for (std::size_t i = 0; i < a.num_classes(); ++i) {
    for (std::size_t j = 0; j < a.num_classes(); ++j) {
      EXPECT_EQ(a.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)),
                b.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)))
          << label;
    }
  }
}

TEST(StreamingEquivalence, EveryFeatureMatchesBatchPathAtEveryBatchSize) {
  const auto spec_base = small_spec();
  const std::size_t whole =
      spec_base.plan.train_windows * spec_base.plan.adversary.window_size;

  for (const auto kind : kAllFeatures) {
    const auto reference = batch_reference(spec_base, kind);
    for (const std::size_t batch : {std::size_t{64}, std::size_t{8192},
                                    whole}) {
      ExperimentSpec spec = spec_base;
      spec.plan.adversary.feature = kind;
      const auto result = ExperimentEngine(sim_backend(), batch).run(spec);
      const std::string label = classify::feature_name(kind) + " batch " +
                                std::to_string(batch);
      expect_same_confusion(result.confusion, reference, label);
      EXPECT_EQ(result.detection_rate, reference.detection_rate()) << label;
    }
  }
}

TEST(StreamingEquivalence, MultiFeatureRunMatchesPerFeatureBatchReferences) {
  ExperimentSpec spec = small_spec(9);
  spec.plan.adversary.feature = kAllFeatures.front();
  spec.plan.extra_features.assign(kAllFeatures.begin() + 1, kAllFeatures.end());

  const auto result = ExperimentEngine(sim_backend(), 256).run(spec);
  ASSERT_EQ(result.per_feature.size(), kAllFeatures.size());
  for (const auto kind : kAllFeatures) {
    const auto reference = batch_reference(spec, kind);
    const auto& outcome = result.outcome(kind);
    expect_same_confusion(outcome.confusion, reference,
                          classify::feature_name(kind));
    EXPECT_EQ(outcome.detection_rate, reference.detection_rate());
  }
  // Primary mirrors slot 0.
  EXPECT_EQ(result.detection_rate, result.per_feature.front().detection_rate);
}

TEST(StreamingEquivalence, SweepPoolsMatchBatchReferences) {
  // Pool sizes {1, 4, 16}: shard scheduling must never leak into the
  // streamed per-feature verdicts.
  SweepGrid grid;
  grid.sigma_timers = {0.0, 100e-6};
  grid.plan.set_features(kAllFeatures);
  grid.plan.adversary.window_size = 100;
  grid.plan.train_windows = 10;
  grid.plan.test_windows = 10;
  grid.seed = 4242;
  const auto specs = grid.expand();

  std::vector<std::vector<classify::ConfusionMatrix>> references;
  for (const auto& spec : specs) {
    std::vector<classify::ConfusionMatrix> per_feature;
    for (const auto kind : kAllFeatures) {
      per_feature.push_back(batch_reference(spec, kind));
    }
    references.push_back(std::move(per_feature));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}}) {
    SweepOptions options;
    options.threads = threads;
    const auto report = SweepRunner(sim_backend(), options).run(specs);
    ASSERT_TRUE(report.all_completed());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      for (std::size_t f = 0; f < kAllFeatures.size(); ++f) {
        expect_same_confusion(
            report.results[i].outcome(kAllFeatures[f]).confusion,
            references[i][f],
            classify::feature_name(kAllFeatures[f]) + " threads " +
                std::to_string(threads));
      }
    }
  }
}

// ---------------------------------------------------------------- probing

/// Wraps the sim backend and counts opens / pulled PIATs.
class CountingBackend final : public ExperimentBackend {
 public:
  [[nodiscard]] std::unique_ptr<PiatSource> open(
      const Scenario& scenario, std::size_t class_index, std::uint64_t seed,
      std::uint64_t salt) const override {
    ++opens_;
    return std::make_unique<CountingSource>(
        sim_backend().open(scenario, class_index, seed, salt), piats_);
  }
  [[nodiscard]] std::string name() const override { return "counting"; }

  [[nodiscard]] std::size_t opens() const { return opens_.load(); }
  [[nodiscard]] std::size_t piats() const { return piats_.load(); }

 private:
  class CountingSource final : public PiatSource {
   public:
    CountingSource(std::unique_ptr<PiatSource> inner,
                   std::atomic<std::size_t>& piats)
        : inner_(std::move(inner)), piats_(&piats) {}
    std::size_t collect(std::size_t count, std::vector<double>& out) override {
      const std::size_t got = inner_->collect(count, out);
      piats_->fetch_add(got);
      return got;
    }
    [[nodiscard]] std::string name() const override { return "counting"; }

   private:
    std::unique_ptr<PiatSource> inner_;
    std::atomic<std::size_t>* piats_;
  };

  mutable std::atomic<std::size_t> opens_{0};
  mutable std::atomic<std::size_t> piats_{0};
};

TEST(StreamingWorkSharing, FiveFeaturePointSimulatesOnce) {
  ExperimentSpec spec = small_spec(17);
  spec.plan.adversary.feature = kAllFeatures.front();
  spec.plan.extra_features.assign(kAllFeatures.begin() + 1, kAllFeatures.end());
  // Explicit Δh: no prepass, so the capture is pulled exactly once.
  spec.plan.adversary.entropy_bin_width = 3e-6;

  const std::size_t n = spec.plan.adversary.window_size;
  const std::size_t per_class =
      (spec.plan.train_windows + spec.plan.test_windows) * n;

  CountingBackend backend;
  const auto result = SweepRunner(backend).run({spec});
  ASSERT_TRUE(result.all_completed());
  EXPECT_EQ(result.results[0].per_feature.size(), 5u);

  // One train + one test stream per class — NOT multiplied by the five
  // features riding the bank.
  EXPECT_EQ(backend.opens(), 4u);
  EXPECT_EQ(backend.piats(), 2 * per_class);
}

TEST(StreamingWorkSharing, AutoBinWidthCostsExactlyOneExtraTrainingPass) {
  ExperimentSpec spec = small_spec(18);
  spec.plan.adversary.feature = classify::FeatureKind::kSampleEntropy;
  spec.plan.extra_features = {classify::FeatureKind::kSampleVariance};
  // entropy_bin_width left at 0.0: the Scott-rule prepass replays the
  // training streams once.
  const std::size_t n = spec.plan.adversary.window_size;
  const std::size_t train = spec.plan.train_windows * n;
  const std::size_t test = spec.plan.test_windows * n;

  CountingBackend backend;
  (void)ExperimentEngine(backend).run(spec);
  EXPECT_EQ(backend.opens(), 6u);  // 2x(prepass + train) + 2x test
  EXPECT_EQ(backend.piats(), 2 * (2 * train + test));
}

TEST(StreamingWorkSharing, CollapsedGridCutsSimulationByFeatureCount) {
  // The headline: a 5-feature sweep grid costs the same simulation work as
  // a 1-feature grid.
  SweepGrid grid;
  grid.sigma_timers = {0.0};
  grid.plan.set_features(kAllFeatures);
  grid.plan.adversary.window_size = 100;
  grid.plan.train_windows = 8;
  grid.plan.test_windows = 8;
  ASSERT_EQ(grid.size(), 1u);

  auto specs = grid.expand();
  for (auto& spec : specs) spec.plan.adversary.entropy_bin_width = 3e-6;

  CountingBackend backend;
  const auto report = SweepRunner(backend).run(specs);
  ASSERT_TRUE(report.all_completed());
  EXPECT_EQ(backend.opens(), 4u);  // classes x {train, test}, once per point
}

}  // namespace
}  // namespace linkpad::core
