// Shape tests for every reproduced figure, run at reduced effort. These
// encode what "the reproduction matches the paper" MEANS, mechanically:
// who wins, what is flat, what rises or falls, and roughly where.
#include "core/figures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace linkpad::core {
namespace {

FigureOptions quick() {
  FigureOptions o;
  o.effort = 0.15;
  o.seed = 5;
  return o;
}

TEST(Fig4a, BellShapedSameMeanDifferentVariance) {
  const auto fig = fig4a_piat_pdf(quick());
  // Same mean (tau = 10 ms) at both rates.
  EXPECT_NEAR(fig.summary_low.mean, 10e-3, 2e-5);
  EXPECT_NEAR(fig.summary_high.mean, fig.summary_low.mean, 5e-6);
  // Variance ratio near the calibrated r ~ 1.3.
  EXPECT_GT(fig.r_hat, 1.1);
  EXPECT_LT(fig.r_hat, 1.6);
  // Roughly symmetric around the mean (bell-shaped).
  EXPECT_NEAR(fig.summary_low.skewness, 0.0, 0.5);
  // KDE curves integrate to ~1 over the grid.
  double mass = 0.0;
  for (std::size_t i = 1; i < fig.grid.size(); ++i) {
    mass += fig.pdf_low[i] * (fig.grid[i] - fig.grid[i - 1]);
  }
  EXPECT_NEAR(mass, 1.0, 0.15);
}

TEST(Fig4b, MeanFlatVarianceAndEntropyRise) {
  const auto fig = fig4b_detection_vs_n(quick());
  const auto& mean_exp = fig.curve("sample mean experiment").y;
  const auto& var_exp = fig.curve("sample variance experiment").y;
  const auto& ent_exp = fig.curve("sample entropy experiment").y;
  const auto& var_thy = fig.curve("sample variance theory").y;

  // Sample mean hovers near 0.5 at every n.
  for (double v : mean_exp) EXPECT_NEAR(v, 0.5, 0.15);
  // Variance and entropy climb with n and end high.
  EXPECT_GT(var_exp.back(), 0.9);
  EXPECT_GT(ent_exp.back(), 0.9);
  EXPECT_GT(var_exp.back(), var_exp.front() - 0.05);
  // Experiment tracks theory (the paper's headline validation). Small n
  // sits in the regime where Theorem 2's Chebyshev-style estimate
  // undershoots the adversary (see theory.hpp) — with the prefix-replay
  // axis the small-n points get many more test windows from the shared
  // capture, so their rates are tight enough to expose that one-sided
  // undershoot; assert the direction there and closeness from n = 400 on.
  for (std::size_t i = 0; i < var_exp.size(); ++i) {
    if (fig.x[i] >= 400.0) {
      EXPECT_NEAR(var_exp[i], var_thy[i], 0.2) << "n = " << fig.x[i];
    } else {
      EXPECT_GT(var_exp[i], var_thy[i] - 0.1) << "n = " << fig.x[i];
    }
  }
}

TEST(Fig5a, DetectionCollapsesAsSigmaGrows) {
  const auto fig = fig5a_detection_vs_sigma(quick());
  const auto& var_exp = fig.curve("sample variance experiment").y;
  const auto& ent_exp = fig.curve("sample entropy experiment").y;
  // Small sigma_T: still detectable. Large sigma_T: near coin flip (the
  // handful of windows at quick effort leaves ~0.05 sampling noise on the
  // empirical rate, so "collapsed" is asserted with slack).
  EXPECT_GT(var_exp.front(), 0.8);
  EXPECT_LT(var_exp.back(), 0.65);
  EXPECT_GT(ent_exp.front(), 0.8);
  EXPECT_LT(ent_exp.back(), 0.65);
}

TEST(Fig5b, SampleSizeExplodesWithSigmaT) {
  const auto fig = fig5b_n99_vs_sigma(FigureOptions{});
  const auto& var_n = fig.curve("sample variance").y;
  const auto& ent_n = fig.curve("sample entropy").y;
  ASSERT_EQ(fig.x.size(), var_n.size());
  // Monotone increasing in sigma_T.
  for (std::size_t i = 1; i < var_n.size(); ++i) {
    EXPECT_GE(var_n[i], var_n[i - 1]);
    EXPECT_GE(ent_n[i], ent_n[i - 1]);
  }
  // Paper anchor: n(99%) > 1e11 at sigma_T = 1 ms (the last sweep point).
  EXPECT_NEAR(fig.x.back(), 1e-3, 1e-9);
  EXPECT_GT(var_n.back(), 1e11);
  EXPECT_GT(ent_n.back(), 1e11);
  // ... but tractable (< 1e6) at sigma_T ~ 1 us.
  EXPECT_LT(ent_n.front(), 1e6);
}

TEST(Fig5bEmpirical, MeasuredN99GrowsWithSigmaAndTracksTheoryDirection) {
  const auto fig = fig5b_n99_vs_sigma_empirical(quick());
  const auto& var_emp = fig.curve("sample variance empirical").y;
  const auto& var_thy = fig.curve("sample variance theory").y;
  ASSERT_EQ(fig.x.size(), var_emp.size());
  ASSERT_EQ(fig.x.size(), var_thy.size());

  // Weak padding (smallest sigma): the adversary reaches 99% within the
  // axis (granularity is coarse at quick effort — few windows per rate).
  ASSERT_TRUE(std::isfinite(var_emp.front()));
  EXPECT_LE(var_emp.front(), 3000.0);
  // Strong padding (largest sigma): theory demands more samples than weak
  // padding did — the n(99%) inversion the figure exists to show. The
  // empirical curve either grows too or goes off scale (NaN: never 99%).
  EXPECT_GT(var_thy.back(), var_thy.front());
  if (std::isfinite(var_emp.back())) {
    EXPECT_GE(var_emp.back(), var_emp.front());
  }
  // Finite measured points sit on the evaluated axis.
  for (const double v : var_emp) {
    if (std::isfinite(v)) EXPECT_GE(v, 100.0);
  }
}

TEST(Fig6, DetectionDecreasesWithUtilization) {
  const auto fig = fig6_detection_vs_utilization(quick());
  const auto& var = fig.curve("sample variance").y;
  const auto& ent = fig.curve("sample entropy").y;
  const auto& mean = fig.curve("sample mean").y;
  // Low utilization: strong detection; high: weakened substantially.
  EXPECT_GT(ent.front(), 0.85);
  EXPECT_LT(ent.back(), ent.front() - 0.1);
  EXPECT_LT(var.back(), var.front() - 0.1);
  // The mean feature hovers near chance (wider margin at quick effort:
  // few training windows make the KDE boundary noisy).
  for (double v : mean) EXPECT_NEAR(v, 0.5, 0.18);
}

TEST(Fig8, CampusStaysHotWanCoolsDown) {
  auto opts = quick();
  const auto campus_fig = fig8_detection_vs_hour(false, opts);
  const auto wan_fig = fig8_detection_vs_hour(true, opts);
  const auto& campus_ent = campus_fig.curve("sample entropy").y;
  const auto& wan_ent = wan_fig.curve("sample entropy").y;

  // Campus: high detection essentially all day (paper: don't use CIT there).
  double campus_min = 1.0;
  for (double v : campus_ent) campus_min = std::min(campus_min, v);
  EXPECT_GT(campus_min, 0.6);

  // WAN: clearly weaker than campus during the afternoon peak.
  double campus_avg = 0.0, wan_avg = 0.0;
  for (double v : campus_ent) campus_avg += v;
  for (double v : wan_ent) wan_avg += v;
  campus_avg /= static_cast<double>(campus_ent.size());
  wan_avg /= static_cast<double>(wan_ent.size());
  EXPECT_GT(campus_avg, wan_avg);

  // WAN at night (first slot, 0:00) beats WAN at the 15:00 peak: the
  // paper's "still over 65% at 2:00AM" observation, shape-wise.
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < wan_fig.x.size(); ++i) {
    if (std::abs(wan_fig.x[i] - 15.0) < std::abs(wan_fig.x[peak_idx] - 15.0)) {
      peak_idx = i;
    }
  }
  EXPECT_GT(wan_ent.front(), wan_ent[peak_idx] - 0.05);
}

TEST(FigureSeries, CurveLookupByNameThrowsOnMiss) {
  const auto fig = fig5b_n99_vs_sigma(FigureOptions{});
  EXPECT_NO_THROW(fig.curve("sample variance"));
  EXPECT_THROW(fig.curve("nonexistent"), std::invalid_argument);
}

TEST(SharedHelper, DetectionRatesOnScenarioOrdersFeatures) {
  const auto scenario = lab_zero_cross(make_cit());
  const auto rates = detection_rates_on_scenario(
      scenario,
      {classify::FeatureKind::kSampleMean,
       classify::FeatureKind::kSampleVariance},
      400, 50, 50, 3);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_LT(rates[0], rates[1]);  // mean is blind; variance detects
}

}  // namespace
}  // namespace linkpad::core
