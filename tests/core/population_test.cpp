// The population determinism wall (DESIGN.md §2.7):
//
//  1. Thread independence — an M-flow PopulationResult (per-flow results
//     AND the order-sensitive P²-sketch aggregates) is bit-identical
//     across sweep thread counts {1, 2, hardware}.
//  2. M-prefix contract — flows 0..k-1 of an M-flow run equal a
//     standalone k-flow run of the same spec with contention pinned to M;
//     flow f alone equals ExperimentEngine::run(flow_spec(f)).
//  3. Work accounting — an M-flow run opens exactly M streams per
//     (class, phase) and pulls exactly M × the per-flow PIAT budget
//     (counting backend): no hidden re-simulation, no sharing.
#include "core/population.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/piat_source.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::core {
namespace {

void expect_bitwise_equal(double a, double b, const std::string& label) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << label << ": " << a << " vs " << b;
}

void expect_same_confusion(const classify::ConfusionMatrix& a,
                           const classify::ConfusionMatrix& b,
                           const std::string& label) {
  ASSERT_EQ(a.num_classes(), b.num_classes()) << label;
  for (std::size_t i = 0; i < a.num_classes(); ++i) {
    for (std::size_t j = 0; j < a.num_classes(); ++j) {
      EXPECT_EQ(a.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)),
                b.count(static_cast<ClassLabel>(i), static_cast<ClassLabel>(j)))
          << label;
    }
  }
}

void expect_same_experiment(const ExperimentResult& a,
                            const ExperimentResult& b,
                            const std::string& label) {
  expect_bitwise_equal(a.detection_rate, b.detection_rate, label + " rate");
  expect_bitwise_equal(a.r_hat, b.r_hat, label + " r_hat");
  expect_same_confusion(a.confusion, b.confusion, label);
  ASSERT_EQ(a.by_sample_size.size(), b.by_sample_size.size()) << label;
  for (std::size_t i = 0; i < a.by_sample_size.size(); ++i) {
    const auto& pa = a.by_sample_size[i];
    const auto& pb = b.by_sample_size[i];
    EXPECT_EQ(pa.sample_size, pb.sample_size) << label;
    expect_bitwise_equal(pa.r_hat, pb.r_hat, label + " point r_hat");
    ASSERT_EQ(pa.per_feature.size(), pb.per_feature.size()) << label;
    for (std::size_t f = 0; f < pa.per_feature.size(); ++f) {
      expect_same_confusion(pa.per_feature[f].confusion,
                            pb.per_feature[f].confusion,
                            label + " n=" + std::to_string(pa.sample_size));
    }
  }
}

void expect_same_population_point(const PopulationPoint& a,
                                  const PopulationPoint& b,
                                  const std::string& label) {
  EXPECT_EQ(a.sample_size, b.sample_size) << label;
  EXPECT_EQ(a.worst_flow, b.worst_flow) << label;
  expect_bitwise_equal(a.detected_fraction, b.detected_fraction,
                       label + " detected_fraction");
  expect_bitwise_equal(a.mean_rate, b.mean_rate, label + " mean");
  expect_bitwise_equal(a.min_rate, b.min_rate, label + " min");
  expect_bitwise_equal(a.max_rate, b.max_rate, label + " max");
  expect_bitwise_equal(a.quantiles.p05, b.quantiles.p05, label + " p05");
  expect_bitwise_equal(a.quantiles.p25, b.quantiles.p25, label + " p25");
  expect_bitwise_equal(a.quantiles.median, b.quantiles.median,
                       label + " median");
  expect_bitwise_equal(a.quantiles.p75, b.quantiles.p75, label + " p75");
  expect_bitwise_equal(a.quantiles.p95, b.quantiles.p95, label + " p95");
}

/// Cheap population: shared cross-traffic lab path, variance adversary
/// (no entropy prepass), 2-point sample-size axis.
PopulationSpec small_spec(std::size_t flows, std::uint64_t seed = 99) {
  PopulationSpec spec;
  spec.experiment.scenario = lab_cross_traffic(make_cit(), 0.15);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.plan.adversary.window_size = 60;
  spec.experiment.sample_size_axis = {30, 60};
  spec.experiment.plan.train_windows = 3;
  spec.experiment.plan.test_windows = 3;
  spec.flows = flows;
  spec.seed = seed;
  return spec;
}

// ------------------------------------------------------- thread invariance

TEST(Population, BitIdenticalAcrossThreadCounts) {
  const auto spec = small_spec(8);

  SweepOptions serial;
  serial.threads = 1;
  const auto reference = PopulationEngine(sim_backend(), serial).run(spec);
  ASSERT_EQ(reference.flows(), 8u);
  ASSERT_EQ(reference.by_sample_size.size(), 2u);

  const std::size_t hardware = std::max<std::size_t>(
      std::thread::hardware_concurrency(), 2);
  for (const std::size_t threads : {std::size_t{2}, hardware}) {
    SweepOptions options;
    options.threads = threads;
    const auto run = PopulationEngine(sim_backend(), options).run(spec);
    ASSERT_EQ(run.flows(), reference.flows());
    const std::string tag = "threads " + std::to_string(threads);
    for (std::size_t f = 0; f < run.flows(); ++f) {
      expect_same_experiment(reference.per_flow[f], run.per_flow[f],
                             tag + " flow " + std::to_string(f));
    }
    ASSERT_EQ(run.by_sample_size.size(), reference.by_sample_size.size());
    for (std::size_t i = 0; i < run.by_sample_size.size(); ++i) {
      expect_same_population_point(reference.by_sample_size[i],
                                   run.by_sample_size[i], tag);
    }
    EXPECT_EQ(run.first_detection_n, reference.first_detection_n) << tag;
  }
}

// --------------------------------------------------------- prefix contract

TEST(Population, MPrefixEqualsStandaloneRunAtPinnedContention) {
  // Tapping only the first k flows of a deployed M-flow population (same
  // link load) must not perturb them: flow f is a pure function of
  // (template, contention, seed, f), never of how many flows are tapped.
  const std::size_t m = 6;
  const std::size_t k = 3;

  auto full = small_spec(m);
  full.contention_flows = m;  // pin explicitly: prefix runs must match it
  const auto all = PopulationEngine().run(full);
  ASSERT_EQ(all.flows(), m);

  auto prefix = full;
  prefix.flows = k;  // contention stays m
  const auto kept = PopulationEngine().run(prefix);
  ASSERT_EQ(kept.flows(), k);

  for (std::size_t f = 0; f < k; ++f) {
    expect_same_experiment(all.per_flow[f], kept.per_flow[f],
                           "prefix flow " + std::to_string(f));
  }
}

TEST(Population, FlowSpecReproducesPopulationSlotStandalone) {
  auto spec = small_spec(4);
  const auto population = PopulationEngine().run(spec);
  for (const std::size_t f : {std::size_t{0}, std::size_t{3}}) {
    const auto standalone = ExperimentEngine().run(spec.flow_spec(f));
    expect_same_experiment(population.per_flow[f], standalone,
                           "flow_spec " + std::to_string(f));
  }
}

TEST(Population, FlowsNeverShareSeeds) {
  const auto spec = small_spec(3, /*seed=*/7);
  EXPECT_EQ(spec.flow_spec(0).seed, derive_point_seed(7, 0));
  EXPECT_EQ(spec.flow_spec(1).seed, derive_point_seed(7, 1));
  EXPECT_NE(spec.flow_spec(0).seed, spec.flow_spec(1).seed);
  EXPECT_THROW((void)spec.flow_spec(3), ContractViolation);
}

// --------------------------------------------------------- work accounting

/// Wraps the sim backend and counts opens / pulled PIATs.
class CountingBackend final : public ExperimentBackend {
 public:
  [[nodiscard]] std::unique_ptr<PiatSource> open(
      const Scenario& scenario, std::size_t class_index, std::uint64_t seed,
      std::uint64_t salt) const override {
    ++opens_;
    return std::make_unique<CountingSource>(
        sim_backend().open(scenario, class_index, seed, salt), piats_);
  }
  [[nodiscard]] std::string name() const override { return "counting"; }

  [[nodiscard]] std::size_t opens() const { return opens_.load(); }
  [[nodiscard]] std::size_t piats() const { return piats_.load(); }

 private:
  class CountingSource final : public PiatSource {
   public:
    CountingSource(std::unique_ptr<PiatSource> inner,
                   std::atomic<std::size_t>& piats)
        : inner_(std::move(inner)), piats_(&piats) {}
    std::size_t collect(std::size_t count, std::vector<double>& out) override {
      const std::size_t got = inner_->collect(count, out);
      piats_->fetch_add(got);
      return got;
    }
    [[nodiscard]] std::string name() const override { return "counting"; }

   private:
    std::unique_ptr<PiatSource> inner_;
    std::atomic<std::size_t>* piats_;
  };

  mutable std::atomic<std::size_t> opens_{0};
  mutable std::atomic<std::size_t> piats_{0};
};

TEST(PopulationWorkSharing, MFlowRunOpensExactlyMStreamsPerClassAndPhase) {
  const std::size_t flows = 5;
  const auto spec = small_spec(flows);
  const std::size_t classes = spec.experiment.scenario.payload_rates.size();
  ASSERT_EQ(classes, 2u);

  // Per flow and class, the variance adversary (no Δh prepass) opens one
  // train and one test stream, each sized by the LARGEST axis entry:
  // train_windows × n_max PIATs.
  const std::size_t per_phase = spec.experiment.plan.train_windows * 60;

  CountingBackend backend;
  const auto result = PopulationEngine(backend).run(spec);
  ASSERT_EQ(result.flows(), flows);
  EXPECT_EQ(backend.opens(), flows * classes * 2);
  EXPECT_EQ(backend.piats(), flows * classes * 2 * per_phase);
}

// ------------------------------------------------------------- aggregation

TEST(Population, AggregatesMatchPerFlowResults) {
  const auto spec = small_spec(5, /*seed=*/123);
  const auto result = PopulationEngine().run(spec);
  ASSERT_EQ(result.flows(), 5u);

  for (const auto& point : result.by_sample_size) {
    std::vector<double> rates;
    for (const auto& flow : result.per_flow) {
      rates.push_back(flow.at_sample_size(point.sample_size)
                          .per_feature.front()
                          .detection_rate);
    }
    // worst_flow ties break to the LOWEST flow id — max_element semantics.
    const auto min_it = std::min_element(rates.begin(), rates.end());
    const auto max_it = std::max_element(rates.begin(), rates.end());
    expect_bitwise_equal(point.min_rate, *min_it, "min");
    expect_bitwise_equal(point.max_rate, *max_it, "max");
    EXPECT_EQ(point.worst_flow,
              static_cast<std::size_t>(max_it - rates.begin()));

    double sum = 0.0;
    std::size_t detected = 0;
    for (const double r : rates) {
      sum += r;
      if (r >= spec.detection_threshold) ++detected;
    }
    expect_bitwise_equal(point.mean_rate, sum / 5.0, "mean");
    expect_bitwise_equal(point.detected_fraction,
                         static_cast<double>(detected) / 5.0, "fraction");

    // With M ≤ 5 flows the P² sketches are exact sorted quantiles.
    std::sort(rates.begin(), rates.end());
    expect_bitwise_equal(point.quantiles.median,
                         stats::quantile_sorted(rates, 0.5), "median");
    expect_bitwise_equal(point.quantiles.p95,
                         stats::quantile_sorted(rates, 0.95), "p95");
    EXPECT_LE(point.quantiles.p05, point.quantiles.p25);
    EXPECT_LE(point.quantiles.p25, point.quantiles.median);
    EXPECT_LE(point.quantiles.median, point.quantiles.p75);
    EXPECT_LE(point.quantiles.p75, point.quantiles.p95);
    EXPECT_LE(point.min_rate, point.quantiles.p05);
    EXPECT_LE(point.quantiles.p95, point.max_rate);
  }
}

TEST(Population, FirstDetectionIsSmallestCrossedAxisEntry) {
  // CIT on a lightly loaded link: the variance adversary wins early.
  auto spec = small_spec(4);
  spec.detection_threshold = 0.6;
  const auto detected = PopulationEngine().run(spec);
  std::optional<std::size_t> expected;
  for (const auto& point : detected.by_sample_size) {
    if (point.max_rate >= spec.detection_threshold) {
      expected = point.sample_size;
      break;
    }
  }
  EXPECT_EQ(detected.first_detection_n, expected);
  if (detected.first_detection_n) {
    ASSERT_TRUE(detected.time_to_first_detection.has_value());
    // n PIATs ≈ n mean timer intervals (τ = 10 ms).
    EXPECT_DOUBLE_EQ(*detected.time_to_first_detection,
                     static_cast<double>(*detected.first_detection_n) * 10e-3);
  }

  // Strong VIT padding: nobody is detected at any axis entry.
  auto padded = small_spec(4);
  padded.experiment.scenario = lab_cross_traffic(make_vit(2e-3), 0.15);
  padded.detection_threshold = 0.999;
  const auto held = PopulationEngine().run(padded);
  EXPECT_FALSE(held.first_detection_n.has_value());
  EXPECT_FALSE(held.time_to_first_detection.has_value());
}

TEST(Population, LookupThrowsOffAxis) {
  const auto result = PopulationEngine().run(small_spec(2));
  EXPECT_NO_THROW((void)result.at_sample_size(30));
  EXPECT_THROW((void)result.at_sample_size(31), std::invalid_argument);

  // The error must be actionable: name the requested n AND the axis that
  // actually exists, so a figure driver typo is a one-glance fix.
  try {
    (void)result.at_sample_size(31);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("31"), std::string::npos) << what;
    EXPECT_NE(what.find("30"), std::string::npos) << what;
    EXPECT_NE(what.find("60"), std::string::npos) << what;
  }
}

// -------------------------------------------------------------- contention

TEST(Population, ContentionLoadsSharedHops) {
  const auto base = lab_cross_traffic(make_cit(), 0.15);
  // One padded flow offers 8 × wire_bytes / τ = 800 kbit/s.
  EXPECT_DOUBLE_EQ(padded_wire_rate_bps(base), 8.0 * 1000.0 / 10e-3);

  // 100 contending flows raise the 500 Mbit/s shared hop's utilization by
  // 99 × 0.8 Mbit/s / 500 Mbit/s = 0.1584.
  PopulationSpec spec;
  spec.experiment.scenario = base;
  spec.flows = 100;
  const auto loaded = spec.flow_spec(0).scenario;
  ASSERT_EQ(loaded.base.hops_before_tap.size(), 1u);
  EXPECT_NEAR(loaded.base.hops_before_tap[0].cross_utilization,
              0.15 + 99.0 * 800e3 / 500e6, 1e-12);

  // A population large enough to saturate the link (here ~625 flows fill
  // the 500 Mbit/s hop) clamps at the utilization cap.
  spec.flows = 2;
  spec.contention_flows = 10000;
  const auto saturated = spec.flow_spec(0).scenario;
  EXPECT_DOUBLE_EQ(saturated.base.hops_before_tap[0].cross_utilization, 0.95);

  // A zero-hop scenario (tap at GW1) has no shared link to contend on.
  PopulationSpec isolated;
  isolated.experiment.scenario = lab_zero_cross(make_cit());
  isolated.flows = 64;
  EXPECT_TRUE(isolated.flow_spec(0).scenario.base.hops_before_tap.empty());
}

TEST(Population, ReactivePolicyContendsAtItsMeasuredRateNotTheCeiling) {
  // A budgeted policy with a tiny dummy budget emits far below the 1/τ
  // ceiling; the population load every peer sees must be the MEASURED rate
  // (the constant-wire-rate invariant is gone), so the loaded hop sits well
  // under the analytic prediction — and stays deterministic in the seed.
  PopulationSpec spec;
  spec.experiment.scenario = lab_cross_traffic(make_budgeted(5.0), 0.15);
  spec.flows = 100;
  spec.seed = 2024;

  const double analytic = padded_wire_rate_bps(spec.experiment.scenario);
  const double measured = flow_wire_rate_bps(
      spec.experiment.scenario,
      derive_point_seed(spec.seed, PopulationSpec::kCalibrationSalt));
  // Mean payload 25 pps + ≤5 dummies/s against the 100 pps ceiling.
  EXPECT_LT(measured, 0.40 * analytic);
  EXPECT_GT(measured, 0.15 * analytic);

  const auto loaded = spec.loaded_scenario();
  ASSERT_EQ(loaded.base.hops_before_tap.size(), 1u);
  EXPECT_NEAR(loaded.base.hops_before_tap[0].cross_utilization,
              0.15 + 99.0 * measured / 500e6, 1e-12);

  // Same seed ⇒ bitwise identical calibration (it is a simulated capture).
  EXPECT_EQ(loaded.base.hops_before_tap[0].cross_utilization,
            spec.loaded_scenario().base.hops_before_tap[0].cross_utilization);
  // Non-reactive policies keep the exact analytic form.
  PopulationSpec cit_spec;
  cit_spec.experiment.scenario = lab_cross_traffic(make_cit(), 0.15);
  cit_spec.flows = 100;
  EXPECT_NEAR(
      cit_spec.loaded_scenario().base.hops_before_tap[0].cross_utilization,
      0.15 + 99.0 * analytic / 500e6, 1e-12);
}

TEST(Population, FlowSpecReproducesPopulationSlotForReactivePolicy) {
  // The engine resolves the loaded scenario once per run; flow_spec must
  // still be the literal per-flow contract even for measured-rate policies.
  PopulationSpec spec;
  spec.experiment.scenario = lab_cross_traffic(make_budgeted(20.0), 0.1);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleMean;
  spec.experiment.plan.adversary.window_size = 40;
  spec.experiment.plan.train_windows = 3;
  spec.experiment.plan.test_windows = 3;
  spec.flows = 3;
  spec.seed = 7;

  const auto population = PopulationEngine().run(spec);
  for (std::size_t f = 0; f < spec.flows; ++f) {
    const auto standalone = run_experiment(spec.flow_spec(f));
    EXPECT_EQ(standalone.detection_rate,
              population.per_flow[f].detection_rate);
    ASSERT_EQ(standalone.overhead_per_class.size(),
              population.per_flow[f].overhead_per_class.size());
    for (std::size_t c = 0; c < standalone.overhead_per_class.size(); ++c) {
      EXPECT_EQ(standalone.overhead_per_class[c].wire_bps,
                population.per_flow[f].overhead_per_class[c].wire_bps);
    }
  }
}

TEST(Population, MoreContentionWeakensTheAdversary) {
  // The population effect the engine exists to measure: a busier shared
  // link (more peers multiplexed into the path) adds queueing noise, which
  // pads the padded flow FOR free — mean detection cannot improve when
  // thousands of peers join the link (Fig 6's mechanism, population form).
  auto quiet = small_spec(3, /*seed=*/42);
  quiet.experiment.plan.train_windows = 6;
  quiet.experiment.plan.test_windows = 6;
  quiet.contention_flows = 3;
  auto busy = quiet;
  busy.contention_flows = 400000;  // ~0.8 utilization added

  const auto quiet_run = PopulationEngine().run(quiet);
  const auto busy_run = PopulationEngine().run(busy);
  const double quiet_mean = quiet_run.by_sample_size.back().mean_rate;
  const double busy_mean = busy_run.by_sample_size.back().mean_rate;
  EXPECT_LT(busy_mean, quiet_mean + 0.05);
}

// ----------------------------------------------------- reduction tree wall

void expect_same_optional(const std::optional<double>& a,
                          const std::optional<double>& b,
                          const std::string& label) {
  ASSERT_EQ(a.has_value(), b.has_value()) << label;
  if (a) expect_bitwise_equal(*a, *b, label);
}

/// Full-result comparison: per-flow detail, every aggregate point, first
/// detection, and the population-wide overhead fields.
void expect_same_population(const PopulationResult& a,
                            const PopulationResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.flows(), b.flows()) << label;
  ASSERT_EQ(a.per_flow.size(), b.per_flow.size()) << label;
  for (std::size_t f = 0; f < a.per_flow.size(); ++f) {
    expect_same_experiment(a.per_flow[f], b.per_flow[f],
                           label + " flow " + std::to_string(f));
  }
  ASSERT_EQ(a.by_sample_size.size(), b.by_sample_size.size()) << label;
  for (std::size_t i = 0; i < a.by_sample_size.size(); ++i) {
    expect_same_population_point(a.by_sample_size[i], b.by_sample_size[i],
                                 label);
  }
  EXPECT_EQ(a.first_detection_n, b.first_detection_n) << label;
  expect_same_optional(a.time_to_first_detection, b.time_to_first_detection,
                       label + " ttfd");
  expect_same_optional(a.mean_padding_bps, b.mean_padding_bps,
                       label + " padding");
  expect_same_optional(a.mean_wire_bps, b.mean_wire_bps, label + " wire");
  expect_same_optional(a.mean_dummy_fraction, b.mean_dummy_fraction,
                       label + " dummy");
  expect_same_optional(a.worst_delay_p95, b.worst_delay_p95, label + " delay");
}

/// Single-axis, small-window spec cheap enough to run 1000 flows in a test.
PopulationSpec wide_spec(std::size_t flows) {
  PopulationSpec spec;
  spec.experiment.scenario = lab_cross_traffic(make_cit(), 0.1);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.plan.adversary.window_size = 40;
  spec.experiment.plan.train_windows = 2;
  spec.experiment.plan.test_windows = 2;
  spec.flows = flows;
  spec.seed = 20030324;
  return spec;
}

TEST(PopulationReduction, TreeMatchesSerialReplayAcrossThreadAndFlowCounts) {
  // The chunked dispatch + fixed-shape tree reduction must reproduce the
  // inline serial schedule bit for bit — per-flow results, every aggregate
  // point (order-sensitive P² sketches included), and the overhead fields —
  // at thread counts {1, 2, hw} for flow counts spanning one chunk, a
  // partial chunk, a ragged multi-chunk run, and a wide run.
  const std::size_t hardware =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 2);
  for (const std::size_t flows :
       {std::size_t{1}, std::size_t{2}, std::size_t{33}, std::size_t{1000}}) {
    const auto spec = flows >= 1000 ? wide_spec(flows) : small_spec(flows);

    SweepOptions serial;
    serial.execution = util::ExecutionPolicy::kSerial;
    const auto reference = PopulationEngine(sim_backend(), serial).run(spec);
    ASSERT_EQ(reference.flows(), flows);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      hardware}) {
      SweepOptions options;
      options.threads = threads;
      const auto run = PopulationEngine(sim_backend(), options).run(spec);
      expect_same_population(reference, run,
                             "flows " + std::to_string(flows) + " threads " +
                                 std::to_string(threads));
    }
  }
}

TEST(PopulationReduction, GrainNeverPerturbsResults) {
  // Chunk merges are ordered concatenations, so the chunk partition — and
  // with it the reduction tree's leaf count — must not matter.
  const auto spec = small_spec(33);
  SweepOptions reference_options;
  reference_options.execution = util::ExecutionPolicy::kSerial;
  const auto reference =
      PopulationEngine(sim_backend(), reference_options).run(spec);
  for (const std::size_t grain :
       {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
    SweepOptions options;
    options.threads = 2;
    options.grain = grain;
    const auto run = PopulationEngine(sim_backend(), options).run(spec);
    expect_same_population(reference, run,
                           "grain " + std::to_string(grain));
  }
}

TEST(Population, KeepPerFlowFalseDropsDetailKeepsAggregates) {
  auto spec = small_spec(7);
  const auto full = PopulationEngine().run(spec);
  spec.keep_per_flow = false;
  const auto lean = PopulationEngine().run(spec);

  EXPECT_TRUE(lean.per_flow.empty());
  EXPECT_EQ(lean.flows(), 7u);  // flow count survives the drop
  ASSERT_EQ(lean.by_sample_size.size(), full.by_sample_size.size());
  for (std::size_t i = 0; i < full.by_sample_size.size(); ++i) {
    expect_same_population_point(full.by_sample_size[i],
                                 lean.by_sample_size[i], "lean");
  }
  EXPECT_EQ(lean.first_detection_n, full.first_detection_n);
  expect_same_optional(lean.mean_padding_bps, full.mean_padding_bps,
                       "lean padding");
  expect_same_optional(lean.worst_delay_p95, full.worst_delay_p95,
                       "lean delay");
}

TEST(Population, OverheadAggregatesMatchPerFlowRecompute) {
  const auto result = PopulationEngine().run(small_spec(6));
  ASSERT_EQ(result.flows(), 6u);

  // The simulated backend always accounts, so the aggregates must be
  // present and equal the flow-id-order fold of the per-flow summaries.
  double padding = 0.0, wire = 0.0, dummy = 0.0;
  Seconds worst = -std::numeric_limits<double>::infinity();
  for (const auto& flow : result.per_flow) {
    ASSERT_TRUE(flow.mean_padding_bps().has_value());
    padding += *flow.mean_padding_bps();
    wire += *flow.mean_wire_bps();
    dummy += *flow.mean_dummy_fraction();
    ASSERT_TRUE(flow.worst_delay_p95().has_value());
    if (*flow.worst_delay_p95() > worst) worst = *flow.worst_delay_p95();
  }
  ASSERT_TRUE(result.mean_padding_bps.has_value());
  expect_bitwise_equal(*result.mean_padding_bps, padding / 6.0, "padding");
  expect_bitwise_equal(*result.mean_wire_bps, wire / 6.0, "wire");
  expect_bitwise_equal(*result.mean_dummy_fraction, dummy / 6.0, "dummy");
  ASSERT_TRUE(result.worst_delay_p95.has_value());
  expect_bitwise_equal(*result.worst_delay_p95, worst, "delay");
}

TEST(PopulationPointDefaults, ExtremesStartAtFoldIdentities) {
  const PopulationPoint point;
  EXPECT_EQ(point.min_rate, std::numeric_limits<double>::infinity());
  EXPECT_EQ(point.max_rate, -std::numeric_limits<double>::infinity());
}

// -------------------------------------------------------------- validation

TEST(Population, RejectsMalformedSpecs) {
  auto spec = small_spec(4);
  spec.contention_flows = 2;  // fewer than tapped flows
  EXPECT_THROW((void)PopulationEngine().run(spec), ContractViolation);

  auto zero = small_spec(1);
  zero.flows = 0;
  EXPECT_THROW((void)PopulationEngine().run(zero), ContractViolation);

  SweepOptions early;
  early.early_stop = [](std::size_t, const ExperimentResult&) { return true; };
  EXPECT_THROW((void)PopulationEngine(sim_backend(), early),
               ContractViolation);
}

}  // namespace
}  // namespace linkpad::core
