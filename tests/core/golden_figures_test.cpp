// Golden-figure regression wall: the headline numbers of the reproduction,
// pinned at a fixed seed. The figure generators are deterministic (sim
// backend, fixed seed, fixed effort), so a refactor that silently shifts
// detection outcomes — a reordered stream pull, an off-by-one window, a
// classifier tweak — fails HERE, in ctest, instead of surviving until a
// reviewer eyeballs a plot diff.
//
// Tolerances are deliberately tight: at 75 test windows per class a ±0.015
// band is about two flipped windows. Numeric-identity refactors pass
// untouched; anything that re-routes a stream does not. If a change moves
// these numbers ON PURPOSE (recalibration, a different default), re-pin the
// constants in the same commit and say so in the commit message.
#include "core/figures.hpp"

#include <gtest/gtest.h>

#include "core/scenarios.hpp"

namespace linkpad::core {
namespace {

/// Effort 0.3 keeps the paper-grade axes (effort < 0.3 shrinks them) at
/// ~1 s of total runtime; the seed is the repo-wide default.
FigureOptions golden() {
  FigureOptions options;
  options.effort = 0.3;
  options.seed = 20030324;
  return options;
}

constexpr double kTol = 0.015;

TEST(GoldenFigures, Fig4bDetectionAtN3000) {
  const auto fig = fig4b_detection_vs_n(golden());
  ASSERT_EQ(fig.x.back(), 3000.0);

  // The paper's headline: at n = 3000 under CIT the variance and entropy
  // adversaries win outright while the mean stays blind.
  EXPECT_NEAR(fig.curve("sample variance experiment").y.back(), 1.0000, kTol);
  EXPECT_NEAR(fig.curve("sample entropy experiment").y.back(), 1.0000, kTol);
  EXPECT_NEAR(fig.curve("sample mean experiment").y.back(), 0.5333, kTol);
  EXPECT_NEAR(fig.curve("sample variance theory").y.back(), 0.9796, kTol);

  // Mid-curve anchor (n = 1000): catches shifts that the saturated
  // n = 3000 endpoint would mask.
  ASSERT_EQ(fig.x[5], 1000.0);
  EXPECT_NEAR(fig.curve("sample variance experiment").y[5], 0.9933, kTol);
  EXPECT_NEAR(fig.curve("sample entropy experiment").y[5], 0.9967, kTol);
}

TEST(GoldenFigures, Fig6DetectionAtUtilizationHalf) {
  const auto fig = fig6_detection_vs_utilization(golden());
  ASSERT_EQ(fig.x.back(), 0.5);

  // At 50% shared-link utilization the cross traffic has washed most of
  // the leak out — the Fig 6 endpoint.
  EXPECT_NEAR(fig.curve("sample variance").y.back(), 0.5267, kTol);
  EXPECT_NEAR(fig.curve("sample entropy").y.back(), 0.5867, kTol);

  // Low-utilization anchor: detection still near-certain at ρ = 0.05.
  ASSERT_EQ(fig.x.front(), 0.05);
  EXPECT_NEAR(fig.curve("sample variance").y.front(), 0.9733, kTol);
  EXPECT_NEAR(fig.curve("sample entropy").y.front(), 0.9800, kTol);
}

}  // namespace
}  // namespace linkpad::core
