// The sampled-population wall (DESIGN.md §2.11):
//
//  1. Permutation — sampled_flow_ids is a pure integer function of
//     (flows, m, round, seed); strata are disjoint, in range, and the
//     full-strata union is exactly the population (it IS a permutation,
//     cycle-walked onto non-power-of-two domains).
//  2. Pinned wall — every sampled flow is BITWISE identical to the same
//     flow id of the exhaustive run (contention stays at the full M), at
//     threads {1, 2, hw} × shards {1, 3} × flows {33, 1000}, including the
//     shard serialize/parse/merge path and checkpoint truncate + resume.
//  3. Adaptive driver — run_sampled_until terminates at the requested
//     half-width on the golden seed, honors max_rounds, and its
//     concatenated strata equal a single sampled(k·m) run byte for byte.
//  4. Coverage — 200 seeded without-replacement trials per bound
//     (Wilson / Hoeffding / Bernstein / DKW) against the brute-force
//     exhaustive truth at small M: measured coverage ≥ nominal (the
//     i.i.d. forms are conservative without replacement).
#include "core/population.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scenarios.hpp"
#include "core/shard_io.hpp"
#include "stats/concentration.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::core {
namespace {

void expect_bits(double a, double b, const std::string& label) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << label << ": " << a << " vs " << b;
}

/// Cheap per-flow experiment (the shard-wall workload): variance adversary,
/// 2-point axis, tiny window budgets — the test measures the sampling
/// machinery, not classifier arithmetic.
PopulationSpec cheap_spec(std::size_t flows, std::uint64_t seed = 20030324) {
  PopulationSpec spec;
  spec.experiment.scenario = lab_cross_traffic(make_cit(), 0.1);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.plan.adversary.window_size = 40;
  spec.experiment.sample_size_axis = {20, 40};
  spec.experiment.plan.train_windows = 2;
  spec.experiment.plan.test_windows = 2;
  spec.flows = flows;
  spec.seed = seed;
  return spec;
}

void expect_same_experiment(const ExperimentResult& a,
                            const ExperimentResult& b,
                            const std::string& label) {
  expect_bits(a.detection_rate, b.detection_rate, label + " rate");
  expect_bits(a.r_hat, b.r_hat, label + " r_hat");
  ASSERT_EQ(a.by_sample_size.size(), b.by_sample_size.size()) << label;
  for (std::size_t i = 0; i < a.by_sample_size.size(); ++i) {
    const auto& pa = a.by_sample_size[i];
    const auto& pb = b.by_sample_size[i];
    ASSERT_EQ(pa.per_feature.size(), pb.per_feature.size()) << label;
    for (std::size_t f = 0; f < pa.per_feature.size(); ++f) {
      expect_bits(pa.per_feature[f].detection_rate,
                  pb.per_feature[f].detection_rate,
                  label + " n=" + std::to_string(pa.sample_size));
    }
  }
}

PopulationResult run_with_threads(const PopulationSpec& spec,
                                  std::size_t threads) {
  SweepOptions options;
  options.threads = threads;
  return PopulationEngine(sim_backend(), options).run(spec);
}

std::vector<PopulationShard> run_all_shards(const PopulationSpec& spec,
                                            std::size_t shard_count,
                                            std::size_t threads) {
  std::vector<PopulationShard> shards;
  for (std::size_t i = 0; i < shard_count; ++i) {
    SweepOptions options;
    options.threads = threads;
    options.shard_index = i;
    options.shard_count = shard_count;
    shards.push_back(run_population_shard(spec, sim_backend(), options));
  }
  return shards;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ------------------------------------------------------------- permutation

TEST(SamplingPermutation, StrataAreDisjointAndTheirUnionIsThePopulation) {
  const std::size_t flows = 1000;
  const std::size_t m = 100;
  std::set<std::size_t> seen;
  for (std::size_t round = 0; round < flows / m; ++round) {
    const auto ids = sampled_flow_ids(flows, m, round, 42);
    ASSERT_EQ(ids.size(), m) << "round " << round;
    for (const std::size_t id : ids) {
      EXPECT_LT(id, flows);
      EXPECT_TRUE(seen.insert(id).second)
          << "flow " << id << " appears in two strata";
    }
  }
  EXPECT_EQ(seen.size(), flows);  // all strata together ARE the population
}

TEST(SamplingPermutation, CycleWalkCoversNonPowerOfTwoDomains) {
  // flows = 33 needs cycle-walking out of the 64-element Feistel domain;
  // one full-population stratum must still be a permutation of 0..32.
  auto ids = sampled_flow_ids(33, 33, 0, 7);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < 33; ++i) EXPECT_EQ(ids[i], i);
}

TEST(SamplingPermutation, PureFunctionOfItsArguments) {
  const auto a = sampled_flow_ids(500, 40, 2, 99);
  const auto b = sampled_flow_ids(500, 40, 2, 99);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, sampled_flow_ids(500, 40, 2, 100));  // seed re-keys
  EXPECT_NE(a, sampled_flow_ids(500, 40, 3, 99));   // round shifts stratum
}

TEST(SamplingPermutation, RejectsInvalidArguments) {
  EXPECT_THROW((void)sampled_flow_ids(10, 0, 0, 1), ContractViolation);
  EXPECT_THROW((void)sampled_flow_ids(10, 11, 0, 1), ContractViolation);
  EXPECT_THROW((void)sampled_flow_ids(10, 4, 2, 1), ContractViolation);
}

TEST(SampledSpec, ValidationIsLoud) {
  auto oversized = cheap_spec(4).sampled(5);
  EXPECT_THROW((void)run_population(oversized), ContractViolation);
  auto bad_round = cheap_spec(8).sampled(3, 2);  // stratum 2 needs 9 flows
  EXPECT_THROW((void)run_population(bad_round), ContractViolation);
  auto exhaustive = cheap_spec(8);
  exhaustive.sample_round = 1;  // a round without sampling is a spec bug
  EXPECT_THROW((void)run_population(exhaustive), ContractViolation);
}

// --------------------------------------------------------- the pinned wall

/// Sampled flows must be bitwise identical to their exhaustive twins, and
/// the sampled run itself must be byte-stable across thread counts and
/// across the shard serialize/parse/merge pipeline.
void check_pinned_wall(std::size_t flows, std::size_t m, std::size_t round) {
  const auto spec = cheap_spec(flows);
  const auto exhaustive = run_with_threads(spec, 0);

  const auto sampled_spec = spec.sampled(m, round);
  const auto reference = run_with_threads(sampled_spec, 1);
  ASSERT_EQ(reference.flows(), m);
  ASSERT_EQ(reference.sampled_from, flows);
  ASSERT_EQ(reference.sampled_ids,
            sampled_flow_ids(flows, m, round, spec.seed));
  ASSERT_EQ(reference.estimates.size(),
            spec.experiment.sample_size_axis.size());

  // Execution slot i is real flow sampled_ids[i] — bitwise equal to the
  // exhaustive run's flow, because contention is pinned at the full M.
  for (std::size_t i = 0; i < m; ++i) {
    expect_same_experiment(
        reference.per_flow[i], exhaustive.per_flow[reference.sampled_ids[i]],
        "M=" + std::to_string(flows) + " slot " + std::to_string(i));
  }

  const std::string json = population_result_json(reference);
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 2);
  for (const std::size_t threads : {std::size_t{2}, hw}) {
    EXPECT_EQ(population_result_json(run_with_threads(sampled_spec, threads)),
              json)
        << "threads " << threads;
  }

  auto shards = run_all_shards(sampled_spec, 3, 2);
  std::vector<PopulationShard> parsed;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.sample_flows, m);
    EXPECT_EQ(shard.sample_round, round);
    parsed.push_back(parse_shard(serialize_shard(shard)));
  }
  EXPECT_EQ(population_result_json(merge_shards(std::move(parsed))), json);
}

TEST(SampledExecution, PinnedWallSmallOddPopulation) {
  check_pinned_wall(/*flows=*/33, /*m=*/8, /*round=*/1);
}

TEST(SampledExecution, PinnedWallThousandFlows) {
  check_pinned_wall(/*flows=*/1000, /*m=*/50, /*round=*/2);
}

TEST(SampledExecution, SampledJsonCarriesTheEstimateBlock) {
  const auto result = run_with_threads(cheap_spec(64).sampled(16), 1);
  const std::string json = population_result_json(result);
  EXPECT_NE(json.find("\"sampled_from\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"estimates\": ["), std::string::npos);
  EXPECT_NE(json.find("\"dkw_epsilon\""), std::string::npos);
  // The exhaustive run of the same spec renders null estimate fields.
  const std::string exhaustive_json =
      population_result_json(run_with_threads(cheap_spec(64), 1));
  EXPECT_NE(exhaustive_json.find("\"estimates\": null"), std::string::npos);
}

// ------------------------------------------------- checkpoint truncate/resume

TEST(SampledResume, TruncatedSampledCheckpointConvergesToUninterruptedBytes) {
  const std::string path =
      testing::TempDir() + "linkpad_sampled_resume_test.shard";
  const auto spec = cheap_spec(40, 31).sampled(20);

  SweepOptions options;
  options.threads = 1;
  options.grain = 2;  // 10 chunks over the 20 EXECUTED flows; 0/2 owns 5
  options.shard_index = 0;
  options.shard_count = 2;
  ShardRunOptions durability;
  durability.checkpoint_path = path;

  (void)run_population_shard(spec, sim_backend(), options, durability);
  const std::string uninterrupted = read_file(path);
  ASSERT_FALSE(uninterrupted.empty());

  // SIGKILL mid-append: keep the header plus a torn chunk-line prefix.
  const std::size_t cut = uninterrupted.size() * 3 / 5;
  ASSERT_NE(uninterrupted[cut], '\n');
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(uninterrupted.data(), static_cast<std::streamsize>(cut));
  }
  const PopulationShard torn = read_shard_file(path, true);
  EXPECT_LT(torn.chunks.size(), 5u);
  EXPECT_EQ(torn.sample_flows, 20u);  // the header keeps the sample identity

  durability.resume = true;
  const PopulationShard resumed =
      run_population_shard(spec, sim_backend(), options, durability);
  EXPECT_EQ(resumed.chunks.size(), 5u);
  EXPECT_EQ(read_file(path), uninterrupted);
  EXPECT_EQ(serialize_shard(resumed), uninterrupted);
  std::remove(path.c_str());
}

// --------------------------------------------------------- adaptive driver

TEST(AdaptiveSampling, TerminatesAtTheRequestedHalfWidthOnTheGoldenSeed) {
  const auto spec = cheap_spec(200);  // golden seed 20030324

  // A 0.2 target is met by one 25-flow stratum (the worst-case Wilson
  // half-width at n = 25 is ~0.19), so the driver must stop immediately.
  AdaptiveSamplingOptions loose;
  loose.round_flows = 25;
  loose.target_half_width = 0.2;
  const auto one_round = run_sampled_until(spec, loose);
  EXPECT_TRUE(one_round.is_sampled());
  EXPECT_EQ(one_round.sampled_from, 200u);
  EXPECT_EQ(one_round.flows(), 25u);

  // A tighter target needs more strata; on stop either the widest interval
  // reached the target or the permutation ran out of whole strata.
  AdaptiveSamplingOptions tight;
  tight.round_flows = 25;
  tight.target_half_width = 0.1;
  const auto grown = run_sampled_until(spec, tight);
  EXPECT_GE(grown.flows(), 25u);
  EXPECT_EQ(grown.flows() % 25, 0u);
  if (grown.flows() < 200) {
    double widest = 0.0;
    for (const auto& est : grown.estimates) {
      widest = std::max(widest, est.detected_fraction.half_width());
    }
    EXPECT_LE(widest, 0.1);
  }

  // max_rounds caps growth even when the target is unreachable.
  AdaptiveSamplingOptions capped;
  capped.round_flows = 25;
  capped.target_half_width = 1e-6;
  capped.max_rounds = 2;
  EXPECT_EQ(run_sampled_until(spec, capped).flows(), 50u);
}

TEST(AdaptiveSampling, ConcatenatedStrataEqualASingleSampledRunByteForByte) {
  // Strata are permutation-position prefixes: rounds 0..k-1 at size m are
  // exactly positions [0, k·m), i.e. a single sampled(k·m) campaign.
  const auto spec = cheap_spec(200);
  AdaptiveSamplingOptions adaptive;
  adaptive.round_flows = 25;
  adaptive.target_half_width = 1e-6;  // unreachable: growth is max_rounds'
  adaptive.max_rounds = 3;
  const auto grown = run_sampled_until(spec, adaptive);
  ASSERT_EQ(grown.flows(), 75u);
  const auto single = run_with_threads(spec.sampled(75), 1);
  EXPECT_EQ(population_result_json(grown), population_result_json(single));

  // And the driver is thread-invariant like everything else.
  SweepOptions wide;
  wide.threads =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 2);
  const auto grown_wide =
      run_sampled_until(spec, adaptive, sim_backend(), wide);
  EXPECT_EQ(population_result_json(grown_wide),
            population_result_json(grown));
}

TEST(AdaptiveSampling, RejectsMisuse) {
  const auto spec = cheap_spec(100);
  AdaptiveSamplingOptions adaptive;
  adaptive.round_flows = 0;
  EXPECT_THROW((void)run_sampled_until(spec, adaptive), ContractViolation);
  adaptive.round_flows = 101;  // a stratum cannot exceed the population
  EXPECT_THROW((void)run_sampled_until(spec, adaptive), ContractViolation);
  adaptive.round_flows = 10;
  EXPECT_THROW((void)run_sampled_until(spec.sampled(10), adaptive),
               ContractViolation);  // the driver owns the sampling fields
}

// ------------------------------------------------------- coverage harness

/// 200 seeded without-replacement trials per bound against the brute-force
/// exhaustive truth. The sampled flows are bitwise equal to their
/// exhaustive twins (the pinned wall above), so each trial's statistics
/// are a pure function of the exhaustive per-flow rates and the trial's
/// sampled ids — no re-simulation per trial.
TEST(SampledEstimates, CoverageIsAtLeastNominalOverSeededTrials) {
  constexpr std::size_t kM = 48;
  constexpr std::size_t kSample = 12;
  constexpr std::size_t kTrials = 200;
  constexpr double kConfidence = 0.95;

  const auto spec = cheap_spec(kM);
  const auto exhaustive = run_with_threads(spec, 0);
  ASSERT_EQ(exhaustive.flows(), kM);

  // Truth at the first axis point: per-flow primary rates, the detected
  // fraction, the mean rate, and the population ECDF.
  std::vector<double> rates(kM);
  for (std::size_t f = 0; f < kM; ++f) {
    rates[f] = exhaustive.per_flow[f].by_sample_size[0].per_feature[0]
                   .detection_rate;
  }
  std::size_t true_detected = 0;
  double true_mean = 0.0;
  for (const double r : rates) {
    if (r >= spec.detection_threshold) ++true_detected;
    true_mean += r;
  }
  true_mean /= static_cast<double>(kM);
  const double true_fraction =
      static_cast<double>(true_detected) / static_cast<double>(kM);
  const auto population_cdf = [&](double x) {
    std::size_t at_most = 0;
    for (const double r : rates) at_most += r <= x ? 1 : 0;
    return static_cast<double>(at_most) / static_cast<double>(kM);
  };

  std::size_t wilson_covered = 0;
  std::size_t hoeffding_covered = 0;
  std::size_t bernstein_covered = 0;
  std::size_t dkw_covered = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const auto ids =
        sampled_flow_ids(kM, kSample, 0, util::SplitMix64::mix(trial));
    std::size_t detected = 0;
    double mean = 0.0;
    for (const std::size_t id : ids) {
      if (rates[id] >= spec.detection_threshold) ++detected;
      mean += rates[id];
    }
    mean /= static_cast<double>(kSample);
    double ss = 0.0;
    for (const std::size_t id : ids) {
      ss += (rates[id] - mean) * (rates[id] - mean);
    }
    const double variance = ss / static_cast<double>(kSample - 1);

    const auto wilson =
        stats::wilson_interval(detected, kSample, kConfidence);
    if (wilson.lo <= true_fraction && true_fraction <= wilson.hi) {
      ++wilson_covered;
    }
    const auto hoeffding =
        stats::hoeffding_interval(mean, kSample, 0.0, 1.0, kConfidence);
    if (hoeffding.lo <= true_mean && true_mean <= hoeffding.hi) {
      ++hoeffding_covered;
    }
    const auto bernstein = stats::bernstein_interval(mean, variance, kSample,
                                                     0.0, 1.0, kConfidence);
    if (bernstein.lo <= true_mean && true_mean <= bernstein.hi) {
      ++bernstein_covered;
    }

    // DKW: the sample ECDF within ±ε of the population ECDF simultaneously
    // at every population value (where the sup over step functions lives).
    const double eps = stats::dkw_epsilon(kSample, kConfidence);
    double sup = 0.0;
    for (const double x : rates) {
      std::size_t at_most = 0;
      for (const std::size_t id : ids) at_most += rates[id] <= x ? 1 : 0;
      const double sample_cdf =
          static_cast<double>(at_most) / static_cast<double>(kSample);
      sup = std::max(sup, std::abs(sample_cdf - population_cdf(x)));
    }
    if (sup <= eps) ++dkw_covered;
  }

  const double nominal = kConfidence * kTrials;  // 190 of 200
  EXPECT_GE(static_cast<double>(wilson_covered), nominal) << wilson_covered;
  EXPECT_GE(static_cast<double>(hoeffding_covered), nominal)
      << hoeffding_covered;
  EXPECT_GE(static_cast<double>(bernstein_covered), nominal)
      << bernstein_covered;
  EXPECT_GE(static_cast<double>(dkw_covered), nominal) << dkw_covered;
}

/// The estimates the engine itself reports agree with recomputing the
/// bounds from the executed flows — the JSON error bars are exactly the
/// stats/concentration functions applied to the sample.
TEST(SampledEstimates, EngineEstimatesMatchTheBoundsRecomputedByHand) {
  const auto spec = cheap_spec(64);
  const auto result = run_with_threads(spec.sampled(16), 1);
  ASSERT_EQ(result.estimates.size(), 2u);

  for (std::size_t a = 0; a < result.estimates.size(); ++a) {
    const auto& est = result.estimates[a];
    std::size_t detected = 0;
    double mean = 0.0;
    for (std::size_t i = 0; i < result.flows(); ++i) {
      const double rate = result.per_flow[i]
                              .by_sample_size[a]
                              .per_feature[0]
                              .detection_rate;
      if (rate >= spec.detection_threshold) ++detected;
      mean += rate;
    }
    mean /= static_cast<double>(result.flows());

    const auto wilson = stats::wilson_interval(
        detected, result.flows(), kDefaultEstimateConfidence);
    expect_bits(est.detected_fraction.point, wilson.point, "wilson point");
    expect_bits(est.detected_fraction.lo, wilson.lo, "wilson lo");
    expect_bits(est.detected_fraction.hi, wilson.hi, "wilson hi");
    EXPECT_EQ(est.detected_fraction.m, 16u);
    EXPECT_EQ(est.detected_fraction.M, 64u);

    const auto hoeffding = stats::hoeffding_interval(
        mean, result.flows(), 0.0, 1.0, kDefaultEstimateConfidence);
    expect_bits(est.mean_rate.point, hoeffding.point, "hoeffding point");
    expect_bits(est.mean_rate.lo, hoeffding.lo, "hoeffding lo");
    expect_bits(est.mean_rate.hi, hoeffding.hi, "hoeffding hi");

    expect_bits(
        est.dkw_epsilon,
        stats::dkw_epsilon(result.flows(), kDefaultEstimateConfidence),
        "dkw");
  }
}

}  // namespace
}  // namespace linkpad::core
