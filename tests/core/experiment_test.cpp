#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace linkpad::core {
namespace {

ExperimentSpec quick_spec(classify::FeatureKind feature, std::size_t n = 400) {
  ExperimentSpec spec;
  spec.scenario = lab_zero_cross(make_cit());
  spec.plan.adversary.feature = feature;
  spec.plan.adversary.window_size = n;
  spec.plan.train_windows = 60;
  spec.plan.test_windows = 60;
  spec.seed = 1;
  return spec;
}

TEST(Experiment, CitLeaksThroughVarianceFeature) {
  const auto r = run_experiment(quick_spec(classify::FeatureKind::kSampleVariance));
  EXPECT_GT(r.detection_rate, 0.75);
  EXPECT_GT(r.r_hat, 1.15);
  ASSERT_TRUE(r.predicted.has_value());
  EXPECT_NEAR(r.detection_rate, *r.predicted, 0.12);
}

TEST(Experiment, CitLeaksThroughEntropyFeature) {
  const auto r = run_experiment(quick_spec(classify::FeatureKind::kSampleEntropy));
  EXPECT_GT(r.detection_rate, 0.72);
}

TEST(Experiment, MeanFeatureStaysNearChance) {
  const auto r = run_experiment(quick_spec(classify::FeatureKind::kSampleMean));
  EXPECT_LT(r.detection_rate, 0.65);
}

TEST(Experiment, VitShutsTheLeakDown) {
  auto spec = quick_spec(classify::FeatureKind::kSampleVariance);
  spec.scenario = lab_zero_cross(make_vit(100e-6));
  const auto r = run_experiment(spec);
  EXPECT_LT(r.detection_rate, 0.62);
  EXPECT_LT(r.r_hat, 1.05);
}

TEST(Experiment, PiatMeansEqualAcrossRates) {
  const auto r = run_experiment(quick_spec(classify::FeatureKind::kSampleVariance));
  // Paper Sec 4.2 assumption: same mean at both rates.
  EXPECT_NEAR(r.piat_mean_low, r.piat_mean_high,
              0.002 * r.piat_mean_low);
  EXPECT_NEAR(r.piat_mean_low, 10e-3, 1e-4);
  // And the variance order that drives everything: sigma_h^2 > sigma_l^2.
  EXPECT_GT(r.piat_var_high, r.piat_var_low);
}

TEST(Experiment, ConfidenceIntervalBracketsEstimate) {
  const auto r = run_experiment(quick_spec(classify::FeatureKind::kSampleVariance));
  EXPECT_LE(r.ci.lo, r.detection_rate + 1e-12);
  EXPECT_GE(r.ci.hi, r.detection_rate - 1e-12);
  EXPECT_GT(r.ci.hi - r.ci.lo, 0.0);
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = run_experiment(quick_spec(classify::FeatureKind::kSampleEntropy));
  const auto b = run_experiment(quick_spec(classify::FeatureKind::kSampleEntropy));
  EXPECT_DOUBLE_EQ(a.detection_rate, b.detection_rate);
  EXPECT_DOUBLE_EQ(a.r_hat, b.r_hat);
}

TEST(Experiment, SeedChangesResultsSlightly) {
  auto spec_a = quick_spec(classify::FeatureKind::kSampleVariance);
  auto spec_b = spec_a;
  spec_b.seed = 2;
  const auto a = run_experiment(spec_a);
  const auto b = run_experiment(spec_b);
  EXPECT_NE(a.r_hat, b.r_hat);           // different noise realization
  EXPECT_NEAR(a.detection_rate, b.detection_rate, 0.15);  // same physics
}

TEST(Experiment, SweepPreservesOrderAndMatchesSingleRuns) {
  std::vector<ExperimentSpec> specs = {
      quick_spec(classify::FeatureKind::kSampleMean),
      quick_spec(classify::FeatureKind::kSampleVariance),
  };
  const auto sweep = run_sweep(specs);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_DOUBLE_EQ(sweep[0].detection_rate,
                   run_experiment(specs[0]).detection_rate);
  EXPECT_DOUBLE_EQ(sweep[1].detection_rate,
                   run_experiment(specs[1]).detection_rate);
}

TEST(Experiment, MultiRateScenarioProducesBiggerConfusionMatrix) {
  ExperimentSpec spec;
  spec.scenario = lab_multirate(make_cit(), 3);
  spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.plan.adversary.window_size = 400;
  spec.plan.train_windows = 40;
  spec.plan.test_windows = 40;
  const auto r = run_experiment(spec);
  EXPECT_EQ(r.confusion.num_classes(), 3u);
  EXPECT_GT(r.detection_rate, 1.0 / 3.0);  // above 3-way chance
  EXPECT_FALSE(r.predicted.has_value() && r.confusion.num_classes() != 2);
}

TEST(Experiment, GenerateClassStreamIsDeterministic) {
  const auto spec = quick_spec(classify::FeatureKind::kSampleVariance);
  EXPECT_EQ(generate_class_stream(spec, 0, 500, 1),
            generate_class_stream(spec, 0, 500, 1));
  EXPECT_NE(generate_class_stream(spec, 0, 500, 1),
            generate_class_stream(spec, 1, 500, 1));
}

TEST(Experiment, InvalidSpecRejected) {
  auto spec = quick_spec(classify::FeatureKind::kSampleVariance);
  spec.plan.train_windows = 1;
  EXPECT_THROW(run_experiment(spec), linkpad::ContractViolation);
}

}  // namespace
}  // namespace linkpad::core
