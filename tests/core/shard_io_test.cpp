// The shard serialization + merge wall (DESIGN.md §2.10):
//
//  1. Exact round-trip — serialize/parse of every aggregate is BITWISE
//     lossless: 200 seeded-random ChunkAggregates (full ExperimentResults,
//     confusion counts, optionals, ±inf/−0/NaN-payload doubles) survive a
//     text round trip with every bit intact, and re-serialization is
//     byte-identical (the format is canonical).
//  2. N-shard bit-identity — shards {1, 2, 3, 8} × flows {1, 2, 33, 1000}
//     × grains: run_population_shard per shard, merge_shards once, and the
//     result (including the order-sensitive P² finalize) equals the
//     1-process PopulationEngine::run byte for byte at any thread count.
//  3. Durability — a worker killed mid-chunk leaves a torn tail; parse
//     tolerates it, resume recomputes only the missing chunks, and the
//     resumed shard file converges to the uninterrupted bytes exactly.
//  4. Self-checking merges — missing chunks, foreign campaigns and format
//     version drift are loud errors, never quietly wrong numbers.
#include "core/shard_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/population.hpp"
#include "core/scenarios.hpp"
#include "util/rng.hpp"

namespace linkpad::core {
namespace {

void expect_bits(double a, double b, const std::string& label) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << label << ": " << a << " vs " << b;
}

// ------------------------------------------------------------- hex doubles

TEST(HexDouble, SpecialValuesSurviveExactly) {
  const double specials[] = {
      0.0,
      -0.0,
      1.0,
      -1.0 / 3.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
  };
  for (const double x : specials) {
    const std::string hex = encode_double(x);
    ASSERT_EQ(hex.size(), 16u);
    expect_bits(decode_double(hex), x, "hex " + hex);
  }
  // ±inf are the min/max fold identities of a default PopulationPoint —
  // they MUST cross the wire intact for empty-fold edges to merge right.
  EXPECT_EQ(encode_double(std::numeric_limits<double>::infinity()),
            "7ff0000000000000");
  EXPECT_EQ(encode_double(-std::numeric_limits<double>::infinity()),
            "fff0000000000000");
}

TEST(HexDouble, RandomBitPatternsRoundTrip) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t bits = util::SplitMix64::mix(i);
    double x;
    std::memcpy(&x, &bits, sizeof x);
    const double back = decode_double(encode_double(x));
    std::uint64_t back_bits;
    std::memcpy(&back_bits, &back, sizeof back_bits);
    EXPECT_EQ(back_bits, bits) << "pattern " << i;
  }
}

TEST(HexDouble, MalformedInputThrows) {
  EXPECT_THROW((void)decode_double(""), std::invalid_argument);
  EXPECT_THROW((void)decode_double("3fe"), std::invalid_argument);
  EXPECT_THROW((void)decode_double("3fe000000000000g"), std::invalid_argument);
  EXPECT_THROW((void)decode_double("3FE0000000000000"), std::invalid_argument);
  EXPECT_THROW((void)decode_double("3fe00000000000000"), std::invalid_argument);
}

// ----------------------------------------- random aggregate property wall

double random_double(util::Rng& rng) {
  // Mostly ordinary magnitudes, with a deliberate seasoning of the edge
  // values a printf-based format would mangle first.
  const double roll = rng.uniform01();
  if (roll < 0.05) return std::numeric_limits<double>::infinity();
  if (roll < 0.10) return -std::numeric_limits<double>::infinity();
  if (roll < 0.14) return -0.0;
  if (roll < 0.18) return std::numeric_limits<double>::denorm_min();
  if (roll < 0.22) return rng.uniform(-1.0, 1.0) * 1e-300;
  return rng.uniform(-1e6, 1e6);
}

stats::BootstrapResult random_ci(util::Rng& rng) {
  stats::BootstrapResult ci;
  ci.estimate = random_double(rng);
  ci.lo = random_double(rng);
  ci.hi = random_double(rng);
  return ci;
}

classify::ConfusionMatrix random_confusion(util::Rng& rng) {
  const std::size_t classes = 2 + static_cast<std::size_t>(rng.uniform01() * 2);
  classify::ConfusionMatrix cm(classes);
  for (std::size_t t = 0; t < classes; ++t) {
    for (std::size_t p = 0; p < classes; ++p) {
      cm.add_count(static_cast<int>(t), static_cast<int>(p),
                   static_cast<std::uint64_t>(rng.uniform(0.0, 40.0)));
    }
  }
  return cm;
}

FeatureOutcome random_feature_outcome(util::Rng& rng) {
  FeatureOutcome f;
  f.feature = static_cast<classify::FeatureKind>(
      static_cast<int>(rng.uniform(0.0, 4.999)));
  f.detection_rate = random_double(rng);
  f.ci = random_ci(rng);
  f.confusion = random_confusion(rng);
  if (rng.uniform01() < 0.5) f.predicted = random_double(rng);
  return f;
}

ExperimentResult random_experiment_result(util::Rng& rng,
                                          std::size_t axis_points) {
  ExperimentResult r;
  r.detection_rate = random_double(rng);
  r.ci = random_ci(rng);
  r.confusion = random_confusion(rng);
  r.r_hat = random_double(rng);
  if (rng.uniform01() < 0.5) r.predicted = random_double(rng);
  r.piat_mean_low = random_double(rng);
  r.piat_mean_high = random_double(rng);
  r.piat_var_low = random_double(rng);
  r.piat_var_high = random_double(rng);
  const std::size_t features = 1 + static_cast<std::size_t>(rng.uniform01() * 2);
  for (std::size_t i = 0; i < features; ++i) {
    r.per_feature.push_back(random_feature_outcome(rng));
  }
  for (std::size_t i = 0; i < axis_points; ++i) {
    SampleSizePoint p;
    p.sample_size = 10 * (i + 1);
    p.train_windows = static_cast<std::size_t>(rng.uniform(1.0, 50.0));
    p.test_windows = static_cast<std::size_t>(rng.uniform(1.0, 50.0));
    p.r_hat = random_double(rng);
    for (std::size_t f = 0; f < features; ++f) {
      p.per_feature.push_back(random_feature_outcome(rng));
    }
    r.by_sample_size.push_back(std::move(p));
  }
  if (rng.uniform01() < 0.7) {
    for (int c = 0; c < 2; ++c) {
      StreamOverhead o;
      o.payload_packets = static_cast<std::uint64_t>(rng.uniform(0.0, 1e6));
      o.dummy_packets = static_cast<std::uint64_t>(rng.uniform(0.0, 1e6));
      o.suppressed_fires = static_cast<std::uint64_t>(rng.uniform(0.0, 1e4));
      o.wire_bps = random_double(rng);
      o.padding_bps = random_double(rng);
      o.dummy_fraction = random_double(rng);
      o.delay_mean = random_double(rng);
      o.delay_p50 = random_double(rng);
      o.delay_p95 = random_double(rng);
      o.delay_p99 = random_double(rng);
      r.overhead_per_class.push_back(o);
    }
  }
  return r;
}

FlowOverhead random_flow_overhead(util::Rng& rng) {
  FlowOverhead o;
  o.has_cost = rng.uniform01() < 0.8;
  o.padding_bps = random_double(rng);
  o.wire_bps = random_double(rng);
  o.dummy_fraction = random_double(rng);
  o.has_delay = rng.uniform01() < 0.8;
  o.delay_p95 = random_double(rng);
  return o;
}

/// A random but internally consistent shard: header + every chunk the
/// shard owns, each sized by the (flows, grain) partition.
PopulationShard random_shard(util::Rng& rng) {
  PopulationShard shard;
  shard.shard_count = 1 + static_cast<std::size_t>(rng.uniform(0.0, 3.999));
  shard.shard_index =
      static_cast<std::size_t>(rng.uniform01() * static_cast<double>(shard.shard_count));
  shard.flows = 1 + static_cast<std::size_t>(rng.uniform(0.0, 20.0));
  shard.grain = 1 + static_cast<std::size_t>(rng.uniform(0.0, 4.999));
  const std::size_t axis_points = 1 + static_cast<std::size_t>(rng.uniform01() * 2);
  for (std::size_t i = 0; i < axis_points; ++i) {
    shard.sample_sizes.push_back(10 * (i + 1));
  }
  shard.detection_threshold = rng.uniform(0.5, 1.0);
  shard.mean_interval = random_double(rng);
  shard.seed = util::SplitMix64::mix(static_cast<std::uint64_t>(rng.uniform(0.0, 1e9)));
  shard.keep_per_flow = rng.uniform01() < 0.5;
  if (rng.uniform01() < 0.5) {
    // Sampled campaign: a valid (m, round) pair — chunks then live in the
    // executed (m-flow) index space, not the deployed M.
    shard.sample_flows =
        1 + static_cast<std::size_t>(rng.uniform01() *
                                     static_cast<double>(shard.flows - 1));
    const std::size_t max_round =
        (shard.flows - shard.sample_flows) / shard.sample_flows;
    shard.sample_round = static_cast<std::size_t>(
        rng.uniform01() * static_cast<double>(max_round + 1));
    if (shard.sample_round > max_round) shard.sample_round = max_round;
  }

  for (const std::size_t id : shard.owned_chunk_ids()) {
    ChunkAggregate chunk;
    chunk.first_flow = id * shard.grain;
    const std::size_t count =
        std::min(shard.executed_flows(), chunk.first_flow + shard.grain) -
        chunk.first_flow;
    chunk.rates.resize(axis_points);
    for (auto& row : chunk.rates) {
      for (std::size_t f = 0; f < count; ++f) row.push_back(random_double(rng));
    }
    for (std::size_t f = 0; f < count; ++f) {
      chunk.overhead.push_back(random_flow_overhead(rng));
      if (shard.keep_per_flow) {
        chunk.per_flow.push_back(random_experiment_result(rng, axis_points));
      }
    }
    shard.chunks.push_back(std::move(chunk));
  }
  return shard;
}

void expect_same_overhead(const FlowOverhead& a, const FlowOverhead& b,
                          const std::string& label) {
  EXPECT_EQ(a.has_cost, b.has_cost) << label;
  EXPECT_EQ(a.has_delay, b.has_delay) << label;
  expect_bits(a.padding_bps, b.padding_bps, label + " padding_bps");
  expect_bits(a.wire_bps, b.wire_bps, label + " wire_bps");
  expect_bits(a.dummy_fraction, b.dummy_fraction, label + " dummy_fraction");
  expect_bits(a.delay_p95, b.delay_p95, label + " delay_p95");
}

void expect_same_result_bits(const ExperimentResult& a,
                             const ExperimentResult& b,
                             const std::string& label) {
  expect_bits(a.detection_rate, b.detection_rate, label + " rate");
  expect_bits(a.ci.estimate, b.ci.estimate, label + " ci.estimate");
  expect_bits(a.ci.lo, b.ci.lo, label + " ci.lo");
  expect_bits(a.ci.hi, b.ci.hi, label + " ci.hi");
  expect_bits(a.r_hat, b.r_hat, label + " r_hat");
  ASSERT_EQ(a.predicted.has_value(), b.predicted.has_value()) << label;
  if (a.predicted) expect_bits(*a.predicted, *b.predicted, label + " predicted");
  expect_bits(a.piat_mean_low, b.piat_mean_low, label + " piat_mean_low");
  expect_bits(a.piat_var_high, b.piat_var_high, label + " piat_var_high");
  ASSERT_EQ(a.confusion.num_classes(), b.confusion.num_classes()) << label;
  EXPECT_EQ(a.confusion.total(), b.confusion.total()) << label;
  for (std::size_t t = 0; t < a.confusion.num_classes(); ++t) {
    for (std::size_t p = 0; p < a.confusion.num_classes(); ++p) {
      EXPECT_EQ(a.confusion.count(static_cast<int>(t), static_cast<int>(p)),
                b.confusion.count(static_cast<int>(t), static_cast<int>(p)))
          << label;
    }
  }
  ASSERT_EQ(a.per_feature.size(), b.per_feature.size()) << label;
  for (std::size_t i = 0; i < a.per_feature.size(); ++i) {
    EXPECT_EQ(a.per_feature[i].feature, b.per_feature[i].feature) << label;
    expect_bits(a.per_feature[i].detection_rate,
                b.per_feature[i].detection_rate, label + " feature rate");
  }
  ASSERT_EQ(a.by_sample_size.size(), b.by_sample_size.size()) << label;
  for (std::size_t i = 0; i < a.by_sample_size.size(); ++i) {
    EXPECT_EQ(a.by_sample_size[i].sample_size, b.by_sample_size[i].sample_size);
    EXPECT_EQ(a.by_sample_size[i].train_windows,
              b.by_sample_size[i].train_windows);
    expect_bits(a.by_sample_size[i].r_hat, b.by_sample_size[i].r_hat,
                label + " point r_hat");
  }
  ASSERT_EQ(a.overhead_per_class.size(), b.overhead_per_class.size()) << label;
  for (std::size_t i = 0; i < a.overhead_per_class.size(); ++i) {
    EXPECT_EQ(a.overhead_per_class[i].payload_packets,
              b.overhead_per_class[i].payload_packets)
        << label;
    expect_bits(a.overhead_per_class[i].delay_p99,
                b.overhead_per_class[i].delay_p99, label + " delay_p99");
  }
}

TEST(ShardRoundTrip, TwoHundredRandomAggregatesSurviveBitwise) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(9000 + seed);
    const PopulationShard original = random_shard(rng);
    const std::string text = serialize_shard(original);
    const PopulationShard back = parse_shard(text);

    const std::string tag = "seed " + std::to_string(seed);
    EXPECT_EQ(back.version, original.version) << tag;
    EXPECT_EQ(back.shard_index, original.shard_index) << tag;
    EXPECT_EQ(back.shard_count, original.shard_count) << tag;
    EXPECT_EQ(back.flows, original.flows) << tag;
    EXPECT_EQ(back.grain, original.grain) << tag;
    EXPECT_EQ(back.sample_sizes, original.sample_sizes) << tag;
    expect_bits(back.detection_threshold, original.detection_threshold,
                tag + " threshold");
    expect_bits(back.mean_interval, original.mean_interval, tag + " interval");
    EXPECT_EQ(back.seed, original.seed) << tag;
    EXPECT_EQ(back.keep_per_flow, original.keep_per_flow) << tag;

    ASSERT_EQ(back.chunks.size(), original.chunks.size()) << tag;
    for (std::size_t c = 0; c < back.chunks.size(); ++c) {
      const auto& oc = original.chunks[c];
      const auto& bc = back.chunks[c];
      const std::string ctag = tag + " chunk " + std::to_string(c);
      EXPECT_EQ(bc.first_flow, oc.first_flow) << ctag;
      ASSERT_EQ(bc.rates.size(), oc.rates.size()) << ctag;
      for (std::size_t i = 0; i < oc.rates.size(); ++i) {
        ASSERT_EQ(bc.rates[i].size(), oc.rates[i].size()) << ctag;
        for (std::size_t j = 0; j < oc.rates[i].size(); ++j) {
          expect_bits(bc.rates[i][j], oc.rates[i][j], ctag + " rate");
        }
      }
      ASSERT_EQ(bc.overhead.size(), oc.overhead.size()) << ctag;
      for (std::size_t i = 0; i < oc.overhead.size(); ++i) {
        expect_same_overhead(bc.overhead[i], oc.overhead[i], ctag);
      }
      ASSERT_EQ(bc.per_flow.size(), oc.per_flow.size()) << ctag;
      for (std::size_t i = 0; i < oc.per_flow.size(); ++i) {
        expect_same_result_bits(bc.per_flow[i], oc.per_flow[i], ctag);
      }
    }

    // Canonical bytes: parse∘serialize is the identity on the TEXT too.
    EXPECT_EQ(serialize_shard(back), text) << tag;
  }
}

// --------------------------------------------------- stats state round trip

TEST(StatsStateJson, QuantileSketchRoundTripsIncludingEmpty) {
  {
    const stats::P2Quantile empty(0.5);
    const auto state = parse_quantile_state(serialize_quantile_state(empty.state()));
    EXPECT_EQ(state.count, 0u);
    stats::P2Quantile a = stats::P2Quantile::from_state(state);
    stats::P2Quantile b(0.5);
    for (int i = 0; i < 9; ++i) {
      a.add(0.1 * i);
      b.add(0.1 * i);
    }
    expect_bits(a.value(), b.value(), "empty sketch continuation");
  }
  util::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    stats::P2Quantile original(0.95);
    const int samples = trial * 3;  // crosses the exact<=5 regime
    for (int i = 0; i < samples; ++i) original.add(rng.uniform(0.0, 1.0));
    const auto state =
        parse_quantile_state(serialize_quantile_state(original.state()));
    stats::P2Quantile restored = stats::P2Quantile::from_state(state);
    for (int i = 0; i < 30; ++i) {
      const double x = rng.uniform(0.0, 1.0);
      original.add(x);
      restored.add(x);
    }
    expect_bits(original.value(), restored.value(),
                "trial " + std::to_string(trial));
  }
}

TEST(StatsStateJson, RunningStatsRoundTripsInfinityFoldIdentities) {
  // The ±inf extremes a fold identity uses must survive the text format.
  stats::RunningStats::State state;
  state.count = 0;
  state.min = std::numeric_limits<double>::infinity();
  state.max = -std::numeric_limits<double>::infinity();
  const auto back = parse_running_stats(serialize_running_stats(state));
  expect_bits(back.min, state.min, "min identity");
  expect_bits(back.max, state.max, "max identity");

  util::Rng rng(4321);
  stats::RunningStats original;
  for (int i = 0; i < 17; ++i) original.add(rng.uniform(-3.0, 3.0));
  const auto restored = stats::RunningStats::from_state(
      parse_running_stats(serialize_running_stats(original.state())));
  EXPECT_EQ(restored.count(), original.count());
  expect_bits(restored.mean(), original.mean(), "mean");
  expect_bits(restored.variance(), original.variance(), "variance");
  expect_bits(restored.min(), original.min(), "min");
  expect_bits(restored.max(), original.max(), "max");
}

TEST(StatsStateJson, HistogramsRoundTripExactly) {
  util::Rng rng(5);
  stats::Histogram dense(-1.0, 2.0, 12);
  for (int i = 0; i < 400; ++i) dense.add(rng.uniform(-2.0, 3.0));
  const stats::Histogram dense_back =
      parse_histogram(serialize_histogram(dense));
  EXPECT_EQ(dense_back.counts(), dense.counts());
  EXPECT_EQ(dense_back.underflow(), dense.underflow());
  EXPECT_EQ(dense_back.overflow(), dense.overflow());
  EXPECT_EQ(dense_back.total(), dense.total());
  expect_bits(dense_back.lo(), dense.lo(), "lo");
  expect_bits(dense_back.hi(), dense.hi(), "hi");

  stats::SparseHistogram sparse(0.125);
  for (int i = 0; i < 300; ++i) sparse.add(rng.uniform(-20.0, 20.0));
  ASSERT_LT(sparse.cells().begin()->first, 0);  // negative bins exercised
  const stats::SparseHistogram sparse_back =
      parse_sparse_histogram(serialize_sparse_histogram(sparse));
  EXPECT_EQ(sparse_back.cells(), sparse.cells());
  EXPECT_EQ(sparse_back.total(), sparse.total());
  expect_bits(sparse_back.bin_width(), sparse.bin_width(), "bin_width");
}

// ------------------------------------------------- N-shard bit-identity

/// Cheap per-flow experiment (the bench workload): the wall measures the
/// SHARD machinery, not classifier arithmetic.
PopulationSpec shard_spec(std::size_t flows, std::uint64_t seed = 20030324) {
  PopulationSpec spec;
  spec.experiment.scenario = lab_cross_traffic(make_cit(), 0.1);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.plan.adversary.window_size = 40;
  spec.experiment.sample_size_axis = {20, 40};
  spec.experiment.plan.train_windows = 2;
  spec.experiment.plan.test_windows = 2;
  spec.flows = flows;
  spec.seed = seed;
  return spec;
}

void expect_same_population(const PopulationResult& a, const PopulationResult& b,
                            const std::string& label) {
  // The JSON rendering covers every aggregate bit (hex doubles) plus the
  // per-flow primary rates; byte equality IS the bit-identity check.
  EXPECT_EQ(population_result_json(a), population_result_json(b)) << label;
  ASSERT_EQ(a.per_flow.size(), b.per_flow.size()) << label;
  for (std::size_t f = 0; f < a.per_flow.size(); ++f) {
    expect_same_result_bits(a.per_flow[f], b.per_flow[f],
                            label + " flow " + std::to_string(f));
  }
}

std::vector<PopulationShard> run_all_shards(const PopulationSpec& spec,
                                            std::size_t shard_count,
                                            std::size_t grain,
                                            std::size_t threads) {
  std::vector<PopulationShard> shards;
  for (std::size_t i = 0; i < shard_count; ++i) {
    SweepOptions options;
    options.threads = threads;
    options.grain = grain;
    options.shard_index = i;
    options.shard_count = shard_count;
    shards.push_back(run_population_shard(spec, sim_backend(), options));
  }
  return shards;
}

TEST(ShardMerge, BitIdenticalToSingleProcessAcrossShardAndFlowCounts) {
  for (const std::size_t flows : {std::size_t{1}, std::size_t{2},
                                  std::size_t{33}}) {
    const auto spec = shard_spec(flows);
    SweepOptions reference_options;
    reference_options.threads = 1;
    const auto reference =
        PopulationEngine(sim_backend(), reference_options).run(spec);

    for (const std::size_t shard_count :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{8}}) {
      for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                      std::size_t{5}}) {
        // The file round trip is part of the wall: serialize + parse every
        // shard before merging, exactly what separate processes would do.
        auto shards = run_all_shards(spec, shard_count, grain, 2);
        std::vector<PopulationShard> parsed;
        for (const auto& shard : shards) {
          parsed.push_back(parse_shard(serialize_shard(shard)));
        }
        const auto merged = merge_shards(std::move(parsed));
        expect_same_population(reference, merged,
                               "flows " + std::to_string(flows) + " shards " +
                                   std::to_string(shard_count) + " grain " +
                                   std::to_string(grain));
      }
    }
  }
}

TEST(ShardMerge, ThousandFlowWallAtEightShards) {
  // The large rung of the wall: M = 1000 split 8 ways (aggregate-only, so
  // the test exercises the keep_per_flow = false serialization path too).
  auto spec = shard_spec(1000);
  spec.keep_per_flow = false;
  SweepOptions reference_options;
  reference_options.threads = 0;  // shared pool, whatever width
  const auto reference =
      PopulationEngine(sim_backend(), reference_options).run(spec);

  auto shards = run_all_shards(spec, 8, 0, 0);
  std::vector<PopulationShard> parsed;
  for (const auto& shard : shards) {
    parsed.push_back(parse_shard(serialize_shard(shard)));
  }
  const auto merged = merge_shards(std::move(parsed));
  expect_same_population(reference, merged, "1000x8");
  EXPECT_EQ(merged.flow_count, 1000u);
  EXPECT_TRUE(merged.per_flow.empty());
}

// ------------------------------------------------------ durability / resume

TEST(ShardResume, TruncatedCheckpointConvergesToUninterruptedBytes) {
  const std::string path = testing::TempDir() + "linkpad_resume_test.shard";
  const auto spec = shard_spec(10, 31);

  SweepOptions options;
  options.threads = 1;
  options.grain = 1;  // 10 chunks -> shard 0/2 owns 5
  options.shard_index = 0;
  options.shard_count = 2;
  ShardRunOptions durability;
  durability.checkpoint_path = path;

  (void)run_population_shard(spec, sim_backend(), options, durability);
  std::string uninterrupted;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    uninterrupted = buf.str();
  }
  ASSERT_FALSE(uninterrupted.empty());

  // Kill mid-append: keep the header and a torn prefix that ends inside a
  // chunk line (no trailing newline), as a SIGKILL during a write would.
  const std::size_t cut = uninterrupted.size() * 3 / 5;
  ASSERT_NE(uninterrupted[cut], '\n');
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(uninterrupted.data(), static_cast<std::streamsize>(cut));
  }

  // The torn file still parses (tolerated tail) with FEWER chunks...
  const PopulationShard torn = read_shard_file(path, /*tolerate_partial_tail=*/true);
  EXPECT_LT(torn.chunks.size(), 5u);
  // ...and strict parsing refuses it.
  EXPECT_THROW((void)read_shard_file(path), std::invalid_argument);

  // Resume recomputes only what is missing and converges exactly.
  durability.resume = true;
  const PopulationShard resumed =
      run_population_shard(spec, sim_backend(), options, durability);
  EXPECT_EQ(resumed.chunks.size(), 5u);
  std::string after;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    after = buf.str();
  }
  EXPECT_EQ(after, uninterrupted);
  EXPECT_EQ(serialize_shard(resumed), uninterrupted);
  std::remove(path.c_str());
}

TEST(ShardResume, CheckpointRefusesForeignCampaign) {
  const std::string path = testing::TempDir() + "linkpad_foreign_test.shard";
  SweepOptions options;
  options.threads = 1;
  options.shard_index = 0;
  options.shard_count = 2;
  ShardRunOptions durability;
  durability.checkpoint_path = path;
  (void)run_population_shard(shard_spec(6, 1), sim_backend(), options, durability);

  durability.resume = true;
  EXPECT_THROW((void)run_population_shard(shard_spec(6, 2), sim_backend(),
                                          options, durability),
               std::invalid_argument);
  std::remove(path.c_str());
}

// ------------------------------------------------------- loud merge errors

TEST(ShardMerge, MissingShardIsALoudError) {
  const auto spec = shard_spec(9, 5);
  auto shards = run_all_shards(spec, 3, 1, 1);
  shards.erase(shards.begin() + 1);
  try {
    (void)merge_shards(std::move(shards));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("missing or incomplete"),
              std::string::npos)
        << err.what();
  }
}

TEST(ShardMerge, ForeignCampaignIsALoudError) {
  auto a = run_all_shards(shard_spec(4, 1), 2, 1, 1);
  auto b = run_all_shards(shard_spec(4, 2), 2, 1, 1);
  std::vector<PopulationShard> mixed;
  mixed.push_back(std::move(a[0]));
  mixed.push_back(std::move(b[1]));
  EXPECT_THROW((void)merge_shards(std::move(mixed)), std::invalid_argument);
}

TEST(ShardParse, FormatVersionDriftIsALoudError) {
  const auto shards = run_all_shards(shard_spec(4, 3), 1, 1, 1);
  std::string text = serialize_shard(shards[0]);
  const std::string current =
      "{\"linkpad_shard\":" + std::to_string(kShardFormatVersion);
  ASSERT_EQ(text.rfind(current, 0), 0u);
  text.replace(0, current.size(),
               "{\"linkpad_shard\":" +
                   std::to_string(kShardFormatVersion + 1));
  try {
    (void)parse_shard(text);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("version"), std::string::npos)
        << err.what();
  }
}

TEST(ShardCheckpoint, BytesIndependentOfThreadCount) {
  // The checkpoint file is a pure function of (spec, shard coordinates):
  // thread count must not leak into the bytes.
  const auto spec = shard_spec(12, 9);
  std::vector<std::string> texts;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    SweepOptions options;
    options.threads = threads;
    options.grain = 2;
    options.shard_index = 1;
    options.shard_count = 2;
    texts.push_back(
        serialize_shard(run_population_shard(spec, sim_backend(), options)));
  }
  EXPECT_EQ(texts[0], texts[1]);
}

}  // namespace
}  // namespace linkpad::core
