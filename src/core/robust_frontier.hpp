// Best-response adversary and the robust defense frontier (DESIGN.md
// §2.13). run_frontier scores every policy point against one FIXED
// detector bank — the paper's adversary. A deployed attacker instead
// re-tunes per policy: pick the statistic, window and detector family that
// hurts THIS defense most. This subsystem closes that loop:
//
//   tune_adversary       seeded successive halving (exhaustive grid for
//                        small spaces) over a DetectorSearchSpace, every
//                        round sharded through SweepRunner — bit-identical
//                        at any thread count;
//   run_robust_frontier  per policy point, tune on a held-out SELECTION
//                        seed, then re-score the point with the winning
//                        detector riding the ordinary frontier evaluation
//                        on the SCORING seed — which is exactly
//                        run_frontier's per-point seed, so the fixed-bank
//                        column is bit-identical to run_frontier and the
//                        tuned rate is structurally ≥ it.
//
// Seed discipline: selection and scoring streams must never overlap, or
// the tuner would pick the candidate that got lucky on the very stream it
// is later scored on (selection bias). Scoring uses
// derive_point_seed(seed, point) — run_frontier's rule — while selection
// uses derive_point_seed(derive_point_seed(seed, point), kSelectionStage),
// a stage deeper in the tree, so every capture the tuner ranked candidates
// on is disjoint from the capture the reported detection rate comes from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "classify/search.hpp"
#include "core/frontier.hpp"

namespace linkpad::core {

/// Stage index of the held-out selection seed in the per-point seed tree
/// (scoring is the point seed itself; the engine's stream salts hang off
/// each seed one level further down).
inline constexpr std::uint64_t kSelectionStage = 1;

/// Knobs of the tuner's halving schedule.
struct TuneOptions {
  /// Spaces with at most this many candidates skip halving and run the
  /// exhaustive full-budget grid directly; halving also stops shrinking
  /// once the survivor set fits. Must be ≥ 1.
  std::size_t exhaustive_limit = 8;
  /// Train/test window budget (per class) of the FIRST halving round;
  /// doubles every round until it reaches the plan's full budget. Must be
  /// ≥ 2 (a window detector needs two training windows per class).
  std::size_t min_windows = 8;
  /// Sharding knobs for the per-round SweepRunner (threads / execution /
  /// grain / batch). `early_stop` must be unset — halving ranks every
  /// surviving candidate, a partial round ranks nothing.
  SweepOptions sweep;
};

/// One candidate's score in the tuner's final (full-budget) round.
struct TuneScore {
  std::size_t candidate = 0;  ///< index into DetectorSearchSpace::expand()
  std::string label;          ///< classify::candidate_label
  double attack_score = 0.0;  ///< DetectorOutcome::attack_score
};

/// Outcome of tuning one (scenario, plan, space) triple.
struct TuneResult {
  std::size_t winner = 0;     ///< candidate index (ties → lowest index)
  classify::DetectorSpec winner_spec;
  std::string winner_label;
  double winner_score = 0.0;  ///< winner's full-budget attack score
  std::size_t rounds = 0;       ///< evaluation rounds run (1 = exhaustive)
  std::size_t evaluations = 0;  ///< candidate-evaluations across all rounds
  /// Full-budget scores of the finalists, ascending candidate index.
  std::vector<TuneScore> final_scores;
};

/// Tune the attacker: find the candidate in `space` with the highest
/// attack score against `scenario`. Every candidate is evaluated as
/// `plan` with the candidate riding AdversaryPlan::extra_detectors on the
/// SAME scenario and seed (identical captures — the comparison is fair,
/// and a doubled budget extends the same stream by the prefix property,
/// it never re-rolls it). Successive halving: rounds double the window
/// budget from options.min_windows, each keeping the better half (ties →
/// lower candidate index), until the survivors fit options.exhaustive_limit
/// or the budget reaches the plan's; a final full-budget round ranks the
/// finalists. Deterministic: bit-identical winner and scores at any
/// thread count. Throws std::invalid_argument when
/// options.sweep.early_stop is set.
[[nodiscard]] TuneResult tune_adversary(
    const Scenario& scenario, const AdversaryPlan& plan,
    const classify::DetectorSearchSpace& space, std::uint64_t seed,
    const ExperimentBackend& backend = sim_backend(),
    const TuneOptions& options = {});

/// One robust-frontier evaluation: an ordinary FrontierSpec plus the
/// attacker's search space and tuning schedule.
struct RobustFrontierSpec {
  FrontierSpec frontier;
  classify::DetectorSearchSpace space;
  TuneOptions tune;

  /// Held-out seed the attacker is tuned on for `point` (never scored on).
  [[nodiscard]] std::uint64_t selection_seed(std::size_t point) const {
    return derive_point_seed(derive_point_seed(frontier.seed, point),
                             kSelectionStage);
  }
  /// Seed the reported rates come from — run_frontier's per-point rule,
  /// so the fixed-bank column matches run_frontier bit-for-bit.
  [[nodiscard]] std::uint64_t scoring_seed(std::size_t point) const {
    return derive_point_seed(frontier.seed, point);
  }
};

/// One policy's operating point on the robust frontier.
struct RobustFrontierPoint {
  std::string policy;            ///< TimerPolicy::name() of this point
  double overhead_bps = 0.0;     ///< measured padding (dummy) bandwidth
  double wire_bps = 0.0;         ///< measured on-wire bandwidth
  double dummy_fraction = 0.0;   ///< dummies / wire packets
  Seconds delay_p95 = 0.0;       ///< worst per-class p95 payload delay
  /// Best FIXED-bank feature at this point — bit-identical to
  /// run_frontier's detection_rate (same seed, same plan, same streams).
  double fixed_detection = 0.0;
  /// Best of {fixed bank, tuned attacker} on the scoring capture;
  /// structurally ≥ fixed_detection (the tuned attacker keeps the fixed
  /// bank in hand — tuning can only add a weapon, never drop one).
  double tuned_detection = 0.0;
  std::size_t winner = 0;        ///< tuned candidate index into the space
  std::string winner_label;      ///< classify::candidate_label of winner
  double selection_score = 0.0;  ///< winner's score on the SELECTION seed
  bool pareto_efficient = false; ///< on the (overhead, TUNED detection) front

  /// What re-tuning bought the attacker at this point (≥ 0).
  [[nodiscard]] double tuned_gain() const {
    return tuned_detection - fixed_detection;
  }
};

/// Robust-frontier outcome, one point per policy (in input order).
struct RobustFrontierResult {
  std::vector<RobustFrontierPoint> points;

  /// Indices of the Pareto-efficient points, in input order.
  [[nodiscard]] std::vector<std::size_t> front() const;
};

/// Run the robust frontier: per policy point, tune_adversary on the
/// held-out selection seed, then one ordinary frontier sweep on the
/// scoring seeds with each point's winning detector riding its bank.
/// `options` shapes the sharding of BOTH stages (tune.sweep's sharding
/// knobs are overridden by it so one flag drives the whole run); results
/// are bit-identical at any thread count. Throws std::invalid_argument
/// when options.early_stop is set or the backend provides no padding-cost
/// accounting.
[[nodiscard]] RobustFrontierResult run_robust_frontier(
    const RobustFrontierSpec& spec,
    const ExperimentBackend& backend = sim_backend(),
    SweepOptions options = {});

/// Canonical byte-diffable serialization of a robust-frontier result:
/// single-line JSON, every double as its 16-hex-digit IEEE-754 bit
/// pattern (shard_io::encode_double discipline). Two runs agree iff the
/// strings are equal — the thread-count bit-identity tests diff exactly
/// this.
[[nodiscard]] std::string robust_frontier_json(
    const RobustFrontierResult& result);

}  // namespace linkpad::core
