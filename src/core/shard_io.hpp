// Process sharding for population campaigns (DESIGN.md §2.10).
//
// PR 6 made the population reduction a fold over mergeable ChunkAggregates
// whose merge is ordered concatenation — exact, associative, and a pure
// function of the (flows, grain) chunk partition. That turns process-level
// scale-out into a serialization problem: a shard worker computes the
// chunks with id ≡ shard_index (mod shard_count), writes them to a durable
// shard file, and core::merge_shards reassembles ALL chunks in flow order
// and runs the order-sensitive finalize exactly once — bit-identical to
// the single-process run at any thread count, grain, or shard count.
//
// Shard file format (versioned, line-oriented so a killed worker's file is
// recoverable up to the last complete line):
//   line 1:  header object — format version, shard coordinates, the
//            partition parameters (flows, grain), and everything the merge
//            finalize needs (sample-size axis, detection threshold, the
//            policy's mean timer interval, seed, keep_per_flow);
//   line 2+: one object per completed ChunkAggregate, in chunk-id order.
// EVERY double crosses the file as the 16-hex-digit IEEE-754 bit pattern
// of its value (never printf'd as decimal), so deserialize(serialize(x))
// is bitwise == x — including ±inf fold identities and P²-grade values a
// %.17g round-trip could still perturb on exotic libcs. The file is only
// ever replaced atomically (write temp, fsync, rename), reusing the PR-3
// checkpoint discipline: a reader sees the previous complete file or the
// new complete file, never a torn one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/population.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile_sketch.hpp"

namespace linkpad::core {

/// Version stamp of the shard serialization format. Bump on ANY change to
/// the schema below; merge and resume refuse mismatched versions instead
/// of guessing. v2 added the sampled-subset fields (sample_flows,
/// sample_round) to the header; v3 added the change-point fields to chunk
/// lines (cpd_kinds + per-flow FlowCpd rows) and the `cpd` array to
/// serialized ExperimentResults / SampleSizePoints.
inline constexpr std::uint64_t kShardFormatVersion = 3;

// ------------------------------------------------------------ exact doubles

/// The 16-hex-digit bit pattern of `x` ("3fe0000000000000"). Total order on
/// the bits, not the value: NaN payloads, signed zeros and ±inf all survive.
[[nodiscard]] std::string encode_double(double x);

/// Inverse of encode_double. Throws std::invalid_argument on malformed hex.
[[nodiscard]] double decode_double(const std::string& hex);

// ------------------------------------------------------------- shard model

/// One worker's share of a population campaign: the shard coordinates, the
/// partition parameters, the finalize parameters, and the completed chunk
/// aggregates (ascending chunk id). A shard file deserializes to exactly
/// this struct.
struct PopulationShard {
  std::uint64_t version = kShardFormatVersion;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t flows = 0;
  std::size_t grain = 1;
  /// Sampled-subset coordinates (PopulationSpec::sample_flows /
  /// sample_round): 0/0 for an exhaustive campaign. Part of the campaign
  /// identity — a sampled shard never merges with an exhaustive one.
  std::size_t sample_flows = 0;
  std::size_t sample_round = 0;
  std::vector<std::size_t> sample_sizes;
  double detection_threshold = 0.75;
  Seconds mean_interval = 0.0;
  std::uint64_t seed = 0;
  bool keep_per_flow = true;
  std::vector<ChunkAggregate> chunks;

  /// Flows the campaign executes — the index space of the chunk partition:
  /// sample_flows when sampled, flows when exhaustive.
  [[nodiscard]] std::size_t executed_flows() const {
    return sample_flows == 0 ? flows : sample_flows;
  }

  /// Chunk ids this shard is responsible for: {c : c ≡ shard_index (mod
  /// shard_count)} over the (executed_flows, grain) partition, ascending.
  [[nodiscard]] std::vector<std::size_t> owned_chunk_ids() const;

  /// True when `other` describes the same campaign (all header fields
  /// except shard_index equal) — the merge compatibility check.
  [[nodiscard]] bool same_campaign(const PopulationShard& other) const;
};

/// Header for a (spec, options) pair — chunk list empty. `options` supplies
/// shard_index / shard_count / grain.
[[nodiscard]] PopulationShard make_shard_header(const PopulationSpec& spec,
                                                const SweepOptions& options);

// ---------------------------------------------------------- serialization

/// One-line JSON of the shard header (no trailing newline).
[[nodiscard]] std::string serialize_shard_header(const PopulationShard& shard);

/// One-line JSON of one chunk aggregate (no trailing newline). `chunk_id`
/// is recorded explicitly so resume bookkeeping never re-derives it.
[[nodiscard]] std::string serialize_chunk(std::size_t chunk_id,
                                          const ChunkAggregate& chunk);

/// Whole shard file body: header line + chunk lines (ascending chunk id) +
/// trailing newline. Byte-deterministic: a pure function of the shard's
/// contents, never of completion order or wall clock.
[[nodiscard]] std::string serialize_shard(const PopulationShard& shard);

/// Parse a whole shard file body (header line + chunk lines). With
/// `tolerate_partial_tail`, a final line that does not parse — the torn
/// write of a killed worker — is dropped instead of raising; every complete
/// line before it is kept. Chunks are returned sorted by chunk id.
[[nodiscard]] PopulationShard parse_shard(const std::string& text,
                                          bool tolerate_partial_tail = false);

/// Atomically replace `path` with the serialized shard (write `path`.tmp,
/// flush, rename). The rename is the commit point.
void write_shard_file(const std::string& path, const PopulationShard& shard);

/// Read + parse a shard file. See parse_shard for `tolerate_partial_tail`.
[[nodiscard]] PopulationShard read_shard_file(const std::string& path,
                                              bool tolerate_partial_tail = false);

// -------------------------------------------------------------- execution

/// Durability knobs for a shard worker.
struct ShardRunOptions {
  /// When non-empty, completed chunks are checkpointed here: after each
  /// chunk the file is atomically rewritten as header + all completed
  /// chunks in chunk-id order, so the on-disk bytes are a deterministic
  /// function of the completed set (a resumed file converges to the
  /// uninterrupted file bit for bit).
  std::string checkpoint_path;
  /// Reuse completed chunks already in checkpoint_path (tolerating a torn
  /// tail) instead of recomputing them. The existing header must describe
  /// the same campaign + shard coordinates; a mismatch throws rather than
  /// silently merging foreign chunks.
  bool resume = false;
  /// Invoked after each chunk completes (and, when checkpointing, after its
  /// checkpoint committed) with (chunks done, chunks owned by this shard) —
  /// resumed chunks count as done from the start, so a restarted worker
  /// reports where it really is. Runs UNDER the internal chunk lock; keep
  /// it to counter updates and emit heartbeat lines from
  /// SweepOptions::progress, which runs outside every lock.
  std::function<void(std::size_t, std::size_t)> chunk_progress;
};

/// Run shard (options.shard_index / options.shard_count) of the population:
/// computes this shard's chunks (all of them, minus checkpointed ones under
/// resume) with the usual thread-level parallelism inside the process, and
/// returns the complete shard. Chunk c of shard runs is the identical pure
/// function of (spec, c) that PopulationEngine::run computes, so shards
/// never perturb results — they only split the chunk list.
[[nodiscard]] PopulationShard run_population_shard(
    const PopulationSpec& spec, const ExperimentBackend& backend,
    const SweepOptions& options, const ShardRunOptions& durability = {});

/// Convenience overload on the default simulated backend.
[[nodiscard]] PopulationShard run_population_shard(
    const PopulationSpec& spec, const SweepOptions& options,
    const ShardRunOptions& durability = {});

// ------------------------------------------------------------------ merge

/// Merge N shards of one campaign into the final PopulationResult: verify
/// the headers agree and the chunk union covers the (executed_flows, grain)
/// partition exactly once, tree-reduce the deserialized ChunkAggregates in
/// chunk order (ordered concatenation — the same fixed-shape reduction the
/// single-process run uses), and run the order-sensitive finalize exactly
/// once (with the sampled-estimate view when the campaign is sampled).
/// Bit-identical to PopulationEngine::run of the same spec.
[[nodiscard]] PopulationResult merge_shards(std::vector<PopulationShard> shards);

/// read_shard_file over every path, then merge_shards.
[[nodiscard]] PopulationResult merge_shard_files(
    const std::vector<std::string>& paths);

// ------------------------------------------------------- stats state JSON

// One-line JSON round-trips of the checkpointable statistics state — the
// same hex-double discipline as the shard format, exposed for tests and
// for tools that persist partially-fed accumulators. parse(serialize(x))
// is bitwise-equal to x for every reachable state, including empty
// sketches and the ±inf min/max fold identities.

[[nodiscard]] std::string serialize_quantile_state(
    const stats::P2Quantile::State& state);
[[nodiscard]] stats::P2Quantile::State parse_quantile_state(
    const std::string& text);

[[nodiscard]] std::string serialize_running_stats(
    const stats::RunningStats::State& state);
[[nodiscard]] stats::RunningStats::State parse_running_stats(
    const std::string& text);

[[nodiscard]] std::string serialize_histogram(const stats::Histogram& h);
[[nodiscard]] stats::Histogram parse_histogram(const std::string& text);

[[nodiscard]] std::string serialize_sparse_histogram(
    const stats::SparseHistogram& h);
[[nodiscard]] stats::SparseHistogram parse_sparse_histogram(
    const std::string& text);

// ------------------------------------------------------------- result JSON

/// Deterministic JSON rendering of a PopulationResult: every double carried
/// as its hex bit pattern (plus a human-readable echo derived from the same
/// bits), per-flow primary detection rates included when present. Two
/// bit-identical results render to byte-identical JSON — the CI shard-smoke
/// diff compares these bytes.
[[nodiscard]] std::string population_result_json(const PopulationResult& result);

}  // namespace linkpad::core
