#include "core/scenarios.hpp"

#include "util/check.hpp"

namespace linkpad::core {

sim::TestbedConfig Scenario::config_for(std::size_t c) const {
  LINKPAD_EXPECTS(c < payload_rates.size());
  sim::TestbedConfig cfg = base;
  cfg.payload_rate = payload_rates[c];
  return cfg;
}

std::shared_ptr<const sim::TimerPolicy> make_cit(Seconds tau) {
  return std::make_shared<sim::ConstantIntervalTimer>(tau);
}

std::shared_ptr<const sim::TimerPolicy> make_vit(Seconds sigma, Seconds tau) {
  return std::make_shared<sim::NormalIntervalTimer>(tau, sigma);
}

std::shared_ptr<const sim::TimerPolicy> make_onoff(Seconds hangover,
                                                   Seconds tau) {
  return std::make_shared<sim::OnOffTimer>(
      std::make_unique<sim::ConstantIntervalTimer>(tau), hangover);
}

std::shared_ptr<const sim::TimerPolicy> make_budgeted(
    double dummy_budget_per_sec, double burst, Seconds tau) {
  return std::make_shared<sim::TokenBucketTimer>(
      std::make_unique<sim::ConstantIntervalTimer>(tau), dummy_budget_per_sec,
      burst);
}

std::shared_ptr<const sim::TimerPolicy> make_adaptive(Seconds base_gap,
                                                      double gain,
                                                      Seconds min_gap) {
  return std::make_shared<sim::AdaptiveGapTimer>(base_gap, gain, min_gap);
}

namespace {

sim::TestbedConfig base_config(std::shared_ptr<const sim::TimerPolicy> policy) {
  sim::TestbedConfig cfg;
  cfg.policy = std::move(policy);
  cfg.payload_kind = sim::PayloadKind::kCbr;
  cfg.payload_bytes = 512;
  cfg.wire_bytes = constants::kWireBytes;
  // TimeSys Linux/RT gateway host: calibrated in DESIGN.md so that the
  // zero-cross padded PIAT spread and variance ratio match Fig 4.
  cfg.jitter.sigma_context_switch = 10e-6;
  cfg.jitter.sigma_irq_block = 6.4e-6;
  return cfg;
}

/// The Marconi ESR-5000 output link shared with the cross-traffic subnets
/// (Fig 3): 500 Mbit/s (OC-12-class) shared uplink, constant 1500-B cross
/// packets (service ≈ 24 µs). Calibrated so entropy detection at n = 1000
/// falls from ≈0.95+ (ρ=0.05) to ≈0.65–0.75 (ρ=0.4–0.5) — the Fig 6 shape
/// including the "entropy still ~70% at 40% utilization" observation.
sim::HopConfig marconi_hop(double utilization) {
  sim::HopConfig hop;
  hop.name = "marconi-esr5000";
  hop.bandwidth_bps = 500e6;
  hop.cross_utilization = utilization;
  hop.cross_packet_bytes = 1500;
  hop.service_model = sim::ServiceModel::kDeterministic;
  hop.propagation_delay = 20e-6;
  return hop;
}

}  // namespace

Scenario lab_zero_cross(std::shared_ptr<const sim::TimerPolicy> policy) {
  Scenario s;
  s.name = "lab-zero-cross";
  s.payload_rates = {constants::kRateLow, constants::kRateHigh};
  s.base = base_config(std::move(policy));
  // Tap directly at GW1's output: no hops, σ_net = 0.
  return s;
}

Scenario lab_cross_traffic(std::shared_ptr<const sim::TimerPolicy> policy,
                           double utilization) {
  LINKPAD_EXPECTS(utilization >= 0.0 && utilization < 1.0);
  Scenario s;
  s.name = "lab-cross-traffic";
  s.payload_rates = {constants::kRateLow, constants::kRateHigh};
  s.base = base_config(std::move(policy));
  s.base.hops_before_tap = {marconi_hop(utilization)};
  return s;
}

const sim::DiurnalProfile& campus_profile() {
  // Texas A&M enterprise network: light load, afternoon peak.
  static const sim::DiurnalProfile profile(/*quiet=*/0.03, /*peak=*/0.18,
                                           /*peak_hour=*/15.0,
                                           /*width_hours=*/5.0);
  return profile;
}

const sim::DiurnalProfile& wan_profile() {
  // Internet path Ohio → Texas: substantially loaded during the day,
  // clearly quieter (but never idle) around 02:00–05:00. Calibrated so the
  // bottleneck hop gives entropy detection ≈0.68 at the nightly trough and
  // ≈0.5 at the afternoon peak (Fig 8b shape).
  static const sim::DiurnalProfile profile(/*quiet=*/0.13, /*peak=*/0.45,
                                           /*peak_hour=*/15.0,
                                           /*width_hours=*/6.0);
  return profile;
}

Scenario campus(std::shared_ptr<const sim::TimerPolicy> policy, double hour) {
  Scenario s;
  s.name = "campus";
  s.payload_rates = {constants::kRateLow, constants::kRateHigh};
  s.base = base_config(std::move(policy));

  const double rho = campus_profile().utilization_at(hour);
  // Four switched gigabit hops across the campus backbone. Per-hop noise is
  // small (Var(W) ≈ 1.6–3.5 µs² over the diurnal range), keeping r ≈ 1.22+
  // — detection stays high all day, the paper's Fig 8(a) observation.
  for (int i = 0; i < 4; ++i) {
    sim::HopConfig hop;
    hop.name = "campus-hop-" + std::to_string(i);
    hop.bandwidth_bps = 1e9;
    hop.cross_utilization = rho;
    hop.cross_packet_bytes = 800;
    hop.service_model = sim::ServiceModel::kDeterministic;
    hop.propagation_delay = 50e-6;
    s.base.hops_before_tap.push_back(hop);
  }
  return s;
}

Scenario wan(std::shared_ptr<const sim::TimerPolicy> policy, double hour) {
  Scenario s;
  s.name = "wan-ohio-texas";
  s.payload_rates = {constants::kRateLow, constants::kRateHigh};
  s.base = base_config(std::move(policy));

  const double rho = wan_profile().utilization_at(hour);

  // Campus egress at Ohio State.
  sim::HopConfig edge;
  edge.name = "wan-edge";
  edge.bandwidth_bps = 1e9;
  edge.cross_utilization = rho * 0.5;
  edge.cross_packet_bytes = 800;
  edge.service_model = sim::ServiceModel::kDeterministic;
  edge.propagation_delay = 100e-6;
  s.base.hops_before_tap.push_back(edge);

  // One congested peering/regional bottleneck dominates δ_net — the usual
  // shape of a 2003 Internet path.
  sim::HopConfig peering;
  peering.name = "wan-peering-bottleneck";
  peering.bandwidth_bps = 250e6;
  peering.cross_utilization = rho;
  peering.cross_packet_bytes = 1000;
  peering.service_model = sim::ServiceModel::kDeterministic;
  peering.propagation_delay = 2e-3;
  s.base.hops_before_tap.push_back(peering);

  // Thirteen fast backbone hops: individually tiny noise, long latency.
  for (int i = 0; i < 13; ++i) {
    sim::HopConfig hop;
    hop.name = "wan-backbone-" + std::to_string(i);
    hop.bandwidth_bps = 10e9;
    hop.cross_utilization = rho * 0.6;
    hop.cross_packet_bytes = 1000;
    hop.service_model = sim::ServiceModel::kDeterministic;
    hop.propagation_delay = 1.5e-3;
    s.base.hops_before_tap.push_back(hop);
  }
  return s;
}

double padded_wire_rate_bps(const Scenario& scenario) {
  return sim::padded_wire_rate_bps(scenario.base);
}

double flow_wire_rate_bps(const Scenario& scenario, std::uint64_t measure_seed,
                          std::size_t piats_per_class) {
  LINKPAD_EXPECTS(scenario.base.policy != nullptr);
  LINKPAD_EXPECTS(!scenario.payload_rates.empty());
  if (!scenario.base.policy->payload_reactive()) {
    return sim::padded_wire_rate_bps(scenario.base);
  }
  // Reactive policy: the wire rate depends on the (hidden) payload class, so
  // measure each class with its own derived substream and average.
  const util::RngFactory factory(measure_seed);
  double sum = 0.0;
  for (std::size_t c = 0; c < scenario.payload_rates.size(); ++c) {
    auto rng = factory.make(c);
    sum += sim::measured_wire_rate_bps(scenario.config_for(c), rng,
                                       piats_per_class);
  }
  return sum / static_cast<double>(scenario.payload_rates.size());
}

Scenario with_population_load(Scenario scenario, std::size_t other_flows,
                              double max_hop_utilization,
                              double per_flow_bps) {
  if (per_flow_bps < 0.0) {
    // The analytic constant rate only exists while the constant-wire-rate
    // invariant holds; reactive policies must pass a measured rate.
    LINKPAD_EXPECTS(scenario.base.policy != nullptr &&
                    !scenario.base.policy->payload_reactive());
    per_flow_bps = sim::padded_wire_rate_bps(scenario.base);
  }
  sim::add_cross_load(scenario.base,
                      static_cast<double>(other_flows) * per_flow_bps,
                      max_hop_utilization);
  return scenario;
}

Scenario lab_multirate(std::shared_ptr<const sim::TimerPolicy> policy,
                       std::size_t m, PacketsPerSecond rate_lo,
                       PacketsPerSecond rate_hi) {
  LINKPAD_EXPECTS(m >= 2);
  LINKPAD_EXPECTS(rate_hi > rate_lo);
  Scenario s;
  s.name = "lab-multirate-" + std::to_string(m);
  s.base = base_config(std::move(policy));
  for (std::size_t i = 0; i < m; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(m - 1);
    s.payload_rates.push_back(rate_lo + f * (rate_hi - rate_lo));
  }
  return s;
}

}  // namespace linkpad::core
