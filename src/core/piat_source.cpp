#include "core/piat_source.hpp"

#include <algorithm>

#include "sim/testbed.hpp"
#include "util/rng.hpp"

namespace linkpad::core {

namespace {

/// Thin adapter: one sim::Testbed streaming PIATs contiguously. The engine
/// owns the RNG so the testbed's reference stays valid for its lifetime.
class SimPiatSource final : public PiatSource {
 public:
  SimPiatSource(const sim::TestbedConfig& config, util::Rng rng)
      : rng_(rng), testbed_(config, rng_) {}

  std::size_t collect(std::size_t count, std::vector<double>& out) override {
    if (count == 0) return 0;
    return testbed_.collect_piats(count, out);
  }

  [[nodiscard]] std::optional<StreamOverhead> overhead() const override {
    const sim::GatewayStats& gs = testbed_.gateway_stats();
    StreamOverhead oh;
    oh.payload_packets = gs.payload_out;
    oh.dummy_packets = gs.dummy_out;
    oh.suppressed_fires = gs.suppressed_fires;
    oh.wire_bps = testbed_.measured_wire_bps();
    const std::uint64_t wire_packets = gs.payload_out + gs.dummy_out;
    if (wire_packets > 0) {
      oh.dummy_fraction =
          static_cast<double>(gs.dummy_out) / static_cast<double>(wire_packets);
      oh.padding_bps = oh.wire_bps * static_cast<double>(gs.padding_bytes) /
                       static_cast<double>(gs.payload_bytes + gs.padding_bytes);
    }
    if (gs.queueing_delay.count() > 0) {
      oh.delay_mean = gs.queueing_delay.mean();
      oh.delay_p50 = gs.delay_p50.value();
      oh.delay_p95 = gs.delay_p95.value();
      oh.delay_p99 = gs.delay_p99.value();
    }
    return oh;
  }

  [[nodiscard]] std::string name() const override { return "sim"; }

 private:
  util::Rng rng_;
  sim::Testbed testbed_;
};

class SimBackend final : public ExperimentBackend {
 public:
  [[nodiscard]] std::unique_ptr<PiatSource> open(
      const Scenario& scenario, std::size_t class_index, std::uint64_t seed,
      std::uint64_t salt) const override {
    const util::RngFactory factory(seed);
    return std::make_unique<SimPiatSource>(scenario.config_for(class_index),
                                           factory.make(salt, class_index));
  }

  [[nodiscard]] std::string name() const override { return "sim"; }
};

}  // namespace

std::vector<double> pull_stream(const ExperimentBackend& backend,
                                const Scenario& scenario,
                                std::size_t class_index, std::uint64_t seed,
                                std::uint64_t salt, std::size_t count,
                                std::size_t batch_piats) {
  batch_piats = std::max<std::size_t>(batch_piats, 1);
  std::vector<double> out;
  out.reserve(count);
  auto source = backend.open(scenario, class_index, seed, salt);
  while (out.size() < count) {
    const std::size_t want = std::min(batch_piats, count - out.size());
    if (source->collect(want, out) < want) break;  // backend exhausted
  }
  return out;
}

std::size_t stream_batches(
    const ExperimentBackend& backend, const Scenario& scenario,
    std::size_t class_index, std::uint64_t seed, std::uint64_t salt,
    std::size_t count, std::size_t batch_piats,
    const std::function<void(std::span<const double>)>& sink) {
  auto source = backend.open(scenario, class_index, seed, salt);
  return stream_batches(*source, count, batch_piats, sink);
}

std::size_t stream_batches(
    PiatSource& source, std::size_t count, std::size_t batch_piats,
    const std::function<void(std::span<const double>)>& sink) {
  batch_piats = std::max<std::size_t>(batch_piats, 1);
  std::vector<double> buffer;
  buffer.reserve(std::min(batch_piats, count));
  std::size_t delivered = 0;
  while (delivered < count) {
    buffer.clear();
    const std::size_t want = std::min(batch_piats, count - delivered);
    const std::size_t got = source.collect(want, buffer);
    if (got > 0) {
      sink(std::span<const double>(buffer.data(), got));
      delivered += got;
    }
    if (got < want) break;  // backend exhausted
  }
  return delivered;
}

const ExperimentBackend& sim_backend() {
  static const SimBackend backend;
  return backend;
}

std::unique_ptr<ExperimentBackend> make_sim_backend() {
  return std::make_unique<SimBackend>();
}

}  // namespace linkpad::core
