#include "core/piat_source.hpp"

#include <algorithm>

#include "sim/testbed.hpp"
#include "util/rng.hpp"

namespace linkpad::core {

namespace {

/// Thin adapter: one sim::Testbed streaming PIATs contiguously. The engine
/// owns the RNG so the testbed's reference stays valid for its lifetime.
class SimPiatSource final : public PiatSource {
 public:
  SimPiatSource(const sim::TestbedConfig& config, util::Rng rng)
      : rng_(rng), testbed_(config, rng_) {}

  std::size_t collect(std::size_t count, std::vector<double>& out) override {
    if (count == 0) return 0;
    return testbed_.collect_piats(count, out);
  }

  [[nodiscard]] std::string name() const override { return "sim"; }

 private:
  util::Rng rng_;
  sim::Testbed testbed_;
};

class SimBackend final : public ExperimentBackend {
 public:
  [[nodiscard]] std::unique_ptr<PiatSource> open(
      const Scenario& scenario, std::size_t class_index, std::uint64_t seed,
      std::uint64_t salt) const override {
    const util::RngFactory factory(seed);
    return std::make_unique<SimPiatSource>(scenario.config_for(class_index),
                                           factory.make(salt, class_index));
  }

  [[nodiscard]] std::string name() const override { return "sim"; }
};

}  // namespace

std::vector<double> pull_stream(const ExperimentBackend& backend,
                                const Scenario& scenario,
                                std::size_t class_index, std::uint64_t seed,
                                std::uint64_t salt, std::size_t count,
                                std::size_t batch_piats) {
  batch_piats = std::max<std::size_t>(batch_piats, 1);
  std::vector<double> out;
  out.reserve(count);
  auto source = backend.open(scenario, class_index, seed, salt);
  while (out.size() < count) {
    const std::size_t want = std::min(batch_piats, count - out.size());
    if (source->collect(want, out) < want) break;  // backend exhausted
  }
  return out;
}

std::size_t stream_batches(
    const ExperimentBackend& backend, const Scenario& scenario,
    std::size_t class_index, std::uint64_t seed, std::uint64_t salt,
    std::size_t count, std::size_t batch_piats,
    const std::function<void(std::span<const double>)>& sink) {
  batch_piats = std::max<std::size_t>(batch_piats, 1);
  auto source = backend.open(scenario, class_index, seed, salt);
  std::vector<double> buffer;
  buffer.reserve(std::min(batch_piats, count));
  std::size_t delivered = 0;
  while (delivered < count) {
    buffer.clear();
    const std::size_t want = std::min(batch_piats, count - delivered);
    const std::size_t got = source->collect(want, buffer);
    if (got > 0) {
      sink(std::span<const double>(buffer.data(), got));
      delivered += got;
    }
    if (got < want) break;  // backend exhausted
  }
  return delivered;
}

const ExperimentBackend& sim_backend() {
  static const SimBackend backend;
  return backend;
}

std::unique_ptr<ExperimentBackend> make_sim_backend() {
  return std::make_unique<SimBackend>();
}

}  // namespace linkpad::core
