// The engine layer's backend seam: every consumer of measured PIATs
// (experiments, figures, benches, examples) pulls them through `PiatSource`,
// so the attack pipeline is agnostic to WHERE the padded stream came from —
// the discrete-event testbed (sim::Testbed), the real loopback gateway
// (live::run_live_experiment), or any future backend (trace replay, remote
// capture).
//
// A backend is a stream factory: `ExperimentBackend::open` names one logical
// PIAT stream by (scenario, class, seed, salt). Sim backends derive a
// deterministic RNG substream from the key — two opens of the same key give
// bit-identical streams regardless of thread count or call order. Live
// backends run real captures; the key only feeds designed randomness (VIT
// intervals), the rest is the host's genuine jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/scenarios.hpp"

namespace linkpad::core {

/// Padding cost measured on ONE stream's capture so far — the overhead half
/// of the defense frontier (DESIGN.md §2.8). Backends that cannot account
/// (a passive live tap never sees the gateway's queue) report nothing.
struct StreamOverhead {
  std::uint64_t payload_packets = 0;  ///< payload packets on the wire
  std::uint64_t dummy_packets = 0;    ///< dummies on the wire
  std::uint64_t suppressed_fires = 0; ///< timer fires that emitted nothing
  double wire_bps = 0.0;              ///< measured on-wire bandwidth
  double padding_bps = 0.0;           ///< dummy share of wire_bps
  double dummy_fraction = 0.0;        ///< dummies / wire packets
  Seconds delay_mean = 0.0;           ///< payload queueing delay in GW1
  Seconds delay_p50 = 0.0;            ///< P² percentiles of that delay
  Seconds delay_p95 = 0.0;
  Seconds delay_p99 = 0.0;
};

/// Pull-based stream of padded inter-arrival times at the adversary's tap.
class PiatSource {
 public:
  virtual ~PiatSource() = default;

  /// Append up to `count` further PIATs (seconds) to `out`; returns the
  /// number appended. A short count means the backend is exhausted (e.g. a
  /// finite live capture); simulated streams never exhaust.
  virtual std::size_t collect(std::size_t count, std::vector<double>& out) = 0;

  /// Padding-cost accounting over everything collected so far, when the
  /// backend can see the gateway (sim, trace replay with metadata). The
  /// default — and a passive live capture — reports nothing.
  [[nodiscard]] virtual std::optional<StreamOverhead> overhead() const {
    return std::nullopt;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory of PIAT streams for a scenario — the pluggable backend.
class ExperimentBackend {
 public:
  virtual ~ExperimentBackend() = default;

  /// Open the PIAT stream of `scenario`'s class `class_index` for logical
  /// substream (seed, salt). Must be callable concurrently from sweep
  /// worker threads; each returned source is independently owned.
  [[nodiscard]] virtual std::unique_ptr<PiatSource> open(
      const Scenario& scenario, std::size_t class_index, std::uint64_t seed,
      std::uint64_t salt) const = 0;

  /// True when two opens of the same key yield bit-identical streams (sim,
  /// trace replay). Live captures return false; multi-pass consumers (e.g.
  /// the entropy bin-width prepass) must materialize such streams instead
  /// of re-opening them.
  [[nodiscard]] virtual bool replayable() const { return true; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Open one stream and pull `count` PIATs in bounded batches. May return
/// fewer when a finite (live) backend exhausts.
[[nodiscard]] std::vector<double> pull_stream(const ExperimentBackend& backend,
                                              const Scenario& scenario,
                                              std::size_t class_index,
                                              std::uint64_t seed,
                                              std::uint64_t salt,
                                              std::size_t count,
                                              std::size_t batch_piats = 8192);

/// Open one stream and push up to `count` PIATs through `sink` in bounded
/// batches — the streaming counterpart of pull_stream: resident memory is
/// O(batch_piats) regardless of `count`. Returns the number of PIATs
/// delivered (short when a finite backend exhausts). Batch boundaries are
/// an implementation detail; sinks must be boundary-agnostic.
std::size_t stream_batches(
    const ExperimentBackend& backend, const Scenario& scenario,
    std::size_t class_index, std::uint64_t seed, std::uint64_t salt,
    std::size_t count, std::size_t batch_piats,
    const std::function<void(std::span<const double>)>& sink);

/// Same, over an already-opened source — for callers that need the source
/// afterwards (e.g. to read its StreamOverhead accounting). Batch sequence
/// is identical to the backend-opening overload.
std::size_t stream_batches(
    PiatSource& source, std::size_t count, std::size_t batch_piats,
    const std::function<void(std::span<const double>)>& sink);

/// Process-wide default backend: the simulated testbed.
[[nodiscard]] const ExperimentBackend& sim_backend();

/// Owned simulated backend (for symmetry with make_live_backend).
[[nodiscard]] std::unique_ptr<ExperimentBackend> make_sim_backend();

}  // namespace linkpad::core
