#include "core/population.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "stats/quantile_sketch.hpp"
#include "util/check.hpp"

namespace linkpad::core {

ExperimentSpec PopulationSpec::flow_spec(std::size_t flow_id) const {
  LINKPAD_EXPECTS(flow_id < flows);
  ExperimentSpec out = experiment;
  out.scenario = with_population_load(experiment.scenario,
                                      effective_contention() - 1,
                                      max_hop_utilization);
  out.seed = derive_point_seed(seed, flow_id);
  return out;
}

const PopulationPoint& PopulationResult::at_sample_size(std::size_t n) const {
  for (const auto& point : by_sample_size) {
    if (point.sample_size == n) return point;
  }
  throw std::invalid_argument("PopulationResult: sample size not on axis: " +
                              std::to_string(n));
}

PopulationEngine::PopulationEngine(const ExperimentBackend& backend,
                                   SweepOptions options)
    : backend_(&backend), options_(std::move(options)) {
  // Skipped flows would leave default-initialized holes in the population
  // aggregates; a run is all flows or nothing.
  LINKPAD_EXPECTS(!options_.early_stop);
}

PopulationResult PopulationEngine::run(const PopulationSpec& spec) const {
  LINKPAD_EXPECTS(spec.flows >= 1);
  LINKPAD_EXPECTS(spec.contention_flows == 0 ||
                  spec.contention_flows >= spec.flows);
  LINKPAD_EXPECTS(spec.detection_threshold > 0.0 &&
                  spec.detection_threshold <= 1.0);

  PopulationResult result;
  {
    // Each worker materializes its flow's spec on demand (the lazy
    // SweepRunner form): M scenario copies never coexist, and flow_spec is
    // the single source of truth for scenario loading + seed derivation.
    auto report = SweepRunner(*backend_, options_)
                      .run(spec.flows,
                           [&](std::size_t f) { return spec.flow_spec(f); });
    LINKPAD_ENSURES(report.all_completed());
    result.per_flow = std::move(report.results);
  }

  // Aggregate AFTER the join, replaying flows in id order: P² marker state
  // is feed-order-dependent, so a fixed order is what keeps population
  // metrics bit-identical across thread counts.
  const auto ns = spec.experiment.sample_sizes();
  result.by_sample_size.reserve(ns.size());
  for (const std::size_t n : ns) {
    PopulationPoint point;
    point.sample_size = n;
    stats::P2Quantile q05(0.05), q25(0.25), q50(0.5), q75(0.75), q95(0.95);
    double sum = 0.0;
    std::size_t detected = 0;
    for (std::size_t f = 0; f < result.per_flow.size(); ++f) {
      const double rate = result.per_flow[f]
                              .at_sample_size(n)
                              .per_feature.front()
                              .detection_rate;
      q05.add(rate);
      q25.add(rate);
      q50.add(rate);
      q75.add(rate);
      q95.add(rate);
      sum += rate;
      if (rate >= spec.detection_threshold) ++detected;
      if (f == 0 || rate < point.min_rate) point.min_rate = rate;
      if (f == 0 || rate > point.max_rate) {
        point.max_rate = rate;
        point.worst_flow = f;
      }
    }
    const double m = static_cast<double>(result.per_flow.size());
    point.detected_fraction = static_cast<double>(detected) / m;
    point.mean_rate = sum / m;
    point.quantiles = {q05.value(), q25.value(), q50.value(), q75.value(),
                       q95.value()};
    result.by_sample_size.push_back(point);

    if (!result.first_detection_n && detected > 0) {
      result.first_detection_n = n;
      result.time_to_first_detection =
          static_cast<double>(n) *
          spec.experiment.scenario.base.policy->mean_interval();
    }
  }
  return result;
}

PopulationResult run_population(const PopulationSpec& spec) {
  return PopulationEngine().run(spec);
}

}  // namespace linkpad::core
