#include "core/population.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "stats/concentration.hpp"
#include "stats/quantile_sketch.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

Scenario PopulationSpec::loaded_scenario() const {
  const std::size_t others = effective_contention() - 1;
  if (others == 0) return experiment.scenario;
  const double per_flow_bps = flow_wire_rate_bps(
      experiment.scenario, derive_point_seed(seed, kCalibrationSalt));
  return with_population_load(experiment.scenario, others,
                              max_hop_utilization, per_flow_bps);
}

ExperimentSpec PopulationSpec::flow_spec(std::size_t flow_id) const {
  LINKPAD_EXPECTS(flow_id < flows);
  ExperimentSpec out = experiment;
  out.scenario = loaded_scenario();
  out.seed = derive_point_seed(seed, flow_id);
  return out;
}

const PopulationPoint& PopulationResult::at_sample_size(std::size_t n) const {
  // by_sample_size is ascending in n (spec.sample_sizes() order).
  const auto it = std::lower_bound(
      by_sample_size.begin(), by_sample_size.end(), n,
      [](const PopulationPoint& point, std::size_t key) {
        return point.sample_size < key;
      });
  if (it == by_sample_size.end() || it->sample_size != n) {
    // Merge-mismatch diagnostics hit this first: name what was asked AND
    // what the axis actually holds, so a shard merged against the wrong
    // spec is identifiable from the message alone.
    std::ostringstream msg;
    msg << "PopulationResult::at_sample_size: requested n = " << n
        << " is not on the axis; available sample sizes:";
    if (by_sample_size.empty()) {
      msg << " (none)";
    } else {
      for (const auto& point : by_sample_size) msg << ' ' << point.sample_size;
    }
    throw std::invalid_argument(msg.str());
  }
  return *it;
}

std::size_t resolved_flow_grain(std::size_t flows, std::size_t grain_option) {
  if (grain_option != 0) return grain_option;
  // Chunk size for the flow axis: large enough that chunk claims are
  // amortized against ~100 µs+ per-flow pipelines, small enough that
  // M = 1000 still load-balances across a wide machine. Derives from M
  // alone — the chunk partition is part of the determinism contract, so it
  // must not depend on the pool (or the shard count).
  return std::clamp<std::size_t>(flows / 128, 1, 32);
}

std::size_t population_chunk_count(std::size_t flows, std::size_t grain) {
  LINKPAD_EXPECTS(grain >= 1);
  return (flows + grain - 1) / grain;
}

namespace {

/// Salt separating the sampling permutation's key schedule from every flow
/// substream (flow ids and kCalibrationSalt both feed derive_point_seed on
/// the raw seed; the permutation keys derive from seed ^ salt).
constexpr std::uint64_t kSampleSalt = 0x73616d706c656431ULL;  // "sampled1"

}  // namespace

std::vector<std::size_t> sampled_flow_ids(std::size_t flows, std::size_t m,
                                          std::size_t round,
                                          std::uint64_t seed) {
  LINKPAD_EXPECTS(flows >= 1);
  LINKPAD_EXPECTS(m >= 1 && m <= flows);
  LINKPAD_EXPECTS(round <= (flows - m) / m);  // (round+1)·m ≤ flows, no overflow

  // Feistel domain: the smallest even-bit power of two covering `flows`
  // (even so the two halves are the same width). At most 4·flows, so the
  // cycle walk below terminates in ~4 expected steps.
  int bits = 2;
  while ((std::uint64_t{1} << bits) < flows) bits += 2;
  const int half_bits = bits / 2;
  const std::uint64_t mask = (std::uint64_t{1} << half_bits) - 1;

  std::uint64_t keys[4];
  for (std::uint64_t r = 0; r < 4; ++r) {
    keys[r] = derive_point_seed(seed ^ kSampleSalt, r);
  }
  const auto permute = [&](std::uint64_t x) {
    std::uint64_t left = x >> half_bits;
    std::uint64_t right = x & mask;
    for (const std::uint64_t key : keys) {
      const std::uint64_t next = left ^ (derive_point_seed(key, right) & mask);
      left = right;
      right = next;
    }
    return (left << half_bits) | right;
  };

  std::vector<std::size_t> ids;
  ids.reserve(m);
  for (std::size_t p = round * m; p < round * m + m; ++p) {
    // Cycle-walk: the permutation is a bijection on [0, 2^bits); following
    // the orbit from a position < flows must re-enter [0, flows) — and the
    // first re-entry point is itself a bijection of the position, so
    // distinct positions (hence distinct rounds) select distinct flows.
    std::uint64_t x = permute(p);
    while (x >= flows) x = permute(x);
    ids.push_back(static_cast<std::size_t>(x));
  }
  return ids;
}

namespace {

void validate_spec(const PopulationSpec& spec) {
  LINKPAD_EXPECTS(spec.flows >= 1);
  LINKPAD_EXPECTS(spec.contention_flows == 0 ||
                  spec.contention_flows >= spec.flows);
  LINKPAD_EXPECTS(spec.detection_threshold > 0.0 &&
                  spec.detection_threshold <= 1.0);
  if (spec.is_sampled()) {
    LINKPAD_EXPECTS(spec.sample_flows <= spec.flows);
    LINKPAD_EXPECTS(spec.sample_round <=
                    (spec.flows - spec.sample_flows) / spec.sample_flows);
  } else {
    LINKPAD_EXPECTS(spec.sample_round == 0);
  }
}

}  // namespace

PopulationEngine::PopulationEngine(const ExperimentBackend& backend,
                                   SweepOptions options)
    : backend_(&backend), options_(std::move(options)) {
  // Skipped flows would leave default-initialized holes in the population
  // aggregates; a run is all flows or nothing.
  LINKPAD_EXPECTS(!options_.early_stop);
}

std::vector<ChunkAggregate> PopulationEngine::run_chunks(
    const PopulationSpec& spec, const std::vector<std::size_t>& chunk_ids,
    const std::function<void(std::size_t, const ChunkAggregate&)>& on_chunk)
    const {
  validate_spec(spec);
  // Everything below runs in the EXECUTED index space: m slots when
  // sampled, M when exhaustive. The chunk partition, shard ownership and
  // progress totals all live there; only the per-flow seed (and the
  // contention model, which resolves from spec.flows regardless) sees the
  // real flow ids.
  const std::size_t flows = spec.executed_flows();
  const std::size_t grain = resolved_flow_grain(flows, options_.grain);
  const std::size_t total_chunks = population_chunk_count(flows, grain);
  std::vector<std::size_t> sampled_ids;
  if (spec.is_sampled()) {
    sampled_ids = sampled_flow_ids(spec.flows, spec.sample_flows,
                                   spec.sample_round, spec.seed);
  }
  for (std::size_t i = 0; i < chunk_ids.size(); ++i) {
    LINKPAD_EXPECTS(chunk_ids[i] < total_chunks);
    LINKPAD_EXPECTS(i == 0 || chunk_ids[i - 1] < chunk_ids[i]);
  }
  if (chunk_ids.empty()) return {};

  // The loaded scenario is flow-independent: resolve it ONCE (a reactive
  // policy's rate calibration runs a capture — per-flow recomputation
  // would re-simulate it M times) and stamp each flow's seed in-worker.
  // flow_spec(f) stays the contract: it resolves to exactly this spec.
  const Scenario loaded = spec.loaded_scenario();
  const auto ns = spec.experiment.sample_sizes();
  const std::size_t n_cpd = spec.experiment.plan.cpd_detectors.size();
  std::vector<classify::CpdKind> cpd_kinds;
  cpd_kinds.reserve(n_cpd);
  for (const auto& config : spec.experiment.plan.cpd_detectors) {
    cpd_kinds.push_back(config.kind);
  }
  const ExperimentEngine engine(*backend_, options_.batch_piats);

  std::size_t shard_flows = 0;  // flows this call executes (progress total)
  for (const std::size_t c : chunk_ids) {
    shard_flows += std::min(flows, (c + 1) * grain) - c * grain;
  }

  std::vector<ChunkAggregate> chunks(chunk_ids.size());
  std::atomic<std::size_t> done{0};
  std::mutex chunk_mutex;  // serializes on_chunk (checkpoint appends)

  // Per worker slot: ONE spec whose scenario (and its shared policy
  // prototype) is copied once per slot, then re-seeded per flow — instead
  // of a Scenario copy per flow whose shared_ptr refcounts ping-pong
  // between threads. Dispatch is over chunk-id slots (grain 1 in chunk
  // space): one atomic claim per chunk, exactly like the full run.
  auto make_body = [&](std::vector<std::optional<ExperimentSpec>>& slot_specs) {
    return [&](std::size_t slot, std::size_t chunk_begin,
               std::size_t chunk_end) {
      if (!slot_specs[slot]) {
        slot_specs[slot] = spec.experiment;
        slot_specs[slot]->scenario = loaded;
      }
      ExperimentSpec& flow_spec = *slot_specs[slot];
      for (std::size_t slot_idx = chunk_begin; slot_idx < chunk_end;
           ++slot_idx) {
        const std::size_t chunk_id = chunk_ids[slot_idx];
        const std::size_t begin = chunk_id * grain;
        const std::size_t end = std::min(flows, begin + grain);
        ChunkAggregate& chunk = chunks[slot_idx];
        chunk.first_flow = begin;
        const std::size_t count = end - begin;
        chunk.rates.resize(ns.size());
        for (auto& r : chunk.rates) r.reserve(count);
        chunk.overhead.reserve(count);
        chunk.cpd_kinds = cpd_kinds;
        chunk.cpd.resize(n_cpd);
        for (auto& row : chunk.cpd) row.reserve(count);
        if (spec.keep_per_flow) chunk.per_flow.reserve(count);

        for (std::size_t f = begin; f < end; ++f) {
          const std::size_t flow_id = spec.is_sampled() ? sampled_ids[f] : f;
          flow_spec.seed = derive_point_seed(spec.seed, flow_id);
          ExperimentResult result = engine.run(flow_spec);
          LINKPAD_ENSURES(result.by_sample_size.size() == ns.size());
          LINKPAD_ENSURES(result.cpd.size() == n_cpd);
          for (std::size_t i = 0; i < ns.size(); ++i) {
            chunk.rates[i].push_back(
                result.by_sample_size[i].per_feature.front().detection_rate);
          }
          for (std::size_t j = 0; j < n_cpd; ++j) {
            const classify::CpdOutcome& out = result.cpd[j];
            chunk.cpd[j].push_back({out.ttd.detected, out.ttd.n_at_detection,
                                    out.ttd.false_alarms, out.threshold});
          }
          FlowOverhead oh;
          if (const auto padding = result.mean_padding_bps()) {
            oh.has_cost = true;
            oh.padding_bps = *padding;
            oh.wire_bps = result.mean_wire_bps().value_or(0.0);
            oh.dummy_fraction = result.mean_dummy_fraction().value_or(0.0);
          }
          if (const auto delay = result.worst_delay_p95()) {
            oh.has_delay = true;
            oh.delay_p95 = *delay;
          }
          chunk.overhead.push_back(oh);
          if (spec.keep_per_flow) chunk.per_flow.push_back(std::move(result));
          const std::size_t finished = done.fetch_add(1) + 1;
          if (options_.progress) options_.progress(finished, shard_flows);
        }
        if (on_chunk) {
          const std::lock_guard<std::mutex> lock(chunk_mutex);
          on_chunk(chunk_id, chunk);
        }
      }
    };
  };

  const std::size_t n_chunks = chunk_ids.size();
  if (options_.execution == util::ExecutionPolicy::kSerial) {
    std::vector<std::optional<ExperimentSpec>> slot_specs(1);
    auto body = make_body(slot_specs);
    for (std::size_t c = 0; c < n_chunks; ++c) body(0, c, c + 1);
  } else if (options_.threads == 0) {
    util::ThreadPool& pool = util::ThreadPool::global();
    std::vector<std::optional<ExperimentSpec>> slot_specs(
        util::chunk_slots(pool, n_chunks, 1));
    util::parallel_for_chunks(pool, n_chunks, 1, make_body(slot_specs));
  } else {
    util::ThreadPool pool(options_.threads);
    std::vector<std::optional<ExperimentSpec>> slot_specs(
        util::chunk_slots(pool, n_chunks, 1));
    util::parallel_for_chunks(pool, n_chunks, 1, make_body(slot_specs));
  }
  LINKPAD_ENSURES(done.load() == shard_flows);
  return chunks;
}

PopulationResult finalize_population(ChunkAggregate all, std::size_t flows,
                                     const std::vector<std::size_t>& sample_sizes,
                                     double detection_threshold,
                                     Seconds mean_interval,
                                     const SampledFinalize* sampled) {
  LINKPAD_EXPECTS(flows >= 1);
  LINKPAD_EXPECTS(all.first_flow == 0);
  LINKPAD_EXPECTS(all.flow_count() == flows);
  LINKPAD_EXPECTS(all.rates.size() == sample_sizes.size());
  if (sampled != nullptr) {
    LINKPAD_EXPECTS(sampled->flow_ids.size() == flows);
    LINKPAD_EXPECTS(sampled->population >= flows);
  }

  PopulationResult result;
  result.flow_count = flows;
  result.per_flow = std::move(all.per_flow);
  if (sampled != nullptr) {
    result.sampled_from = sampled->population;
    result.sampled_ids = sampled->flow_ids;
  }

  // Finalize the order-sensitive aggregates over the merged flow-order
  // rates: P² marker state depends on feed order, so the fixed order is
  // what keeps population metrics bit-identical across thread counts.
  const double m = static_cast<double>(flows);
  result.by_sample_size.reserve(sample_sizes.size());
  for (std::size_t i = 0; i < sample_sizes.size(); ++i) {
    PopulationPoint point;
    point.sample_size = sample_sizes[i];
    stats::P2Quantile q05(0.05), q25(0.25), q50(0.5), q75(0.75), q95(0.95);
    double sum = 0.0;
    std::size_t detected = 0;
    for (std::size_t f = 0; f < flows; ++f) {
      const double rate = all.rates[i][f];
      q05.add(rate);
      q25.add(rate);
      q50.add(rate);
      q75.add(rate);
      q95.add(rate);
      sum += rate;
      if (rate >= detection_threshold) ++detected;
      if (rate < point.min_rate) point.min_rate = rate;
      if (rate > point.max_rate) {
        point.max_rate = rate;
        // worst_flow names the REAL flow id so a sampled campaign's worst
        // case is actionable against the deployed population.
        point.worst_flow = sampled != nullptr ? sampled->flow_ids[f] : f;
      }
    }
    point.detected_fraction = static_cast<double>(detected) / m;
    point.mean_rate = sum / m;
    point.quantiles = {q05.value(), q25.value(), q50.value(), q75.value(),
                       q95.value()};
    result.by_sample_size.push_back(point);

    if (sampled != nullptr) {
      SampledEstimates est;
      est.sample_size = sample_sizes[i];
      const stats::ConfidenceInterval det = stats::wilson_interval(
          detected, flows, sampled->confidence);
      est.detected_fraction = {det.point, det.lo, det.hi, flows,
                               sampled->population};
      const stats::ConfidenceInterval mean = stats::hoeffding_interval(
          point.mean_rate, flows, 0.0, 1.0, sampled->confidence);
      est.mean_rate = {mean.point, mean.lo, mean.hi, flows,
                       sampled->population};
      est.dkw_epsilon = stats::dkw_epsilon(flows, sampled->confidence);
      result.estimates.push_back(est);
    }

    if (!result.first_detection_n && detected > 0) {
      result.first_detection_n = sample_sizes[i];
      result.time_to_first_detection =
          static_cast<double>(sample_sizes[i]) * mean_interval;
    }
  }

  // Change-point aggregates: one fold per configured detector, flow-id
  // order (pure sums and min — but the fixed order keeps the float sums
  // bit-identical across thread counts and shard layouts too).
  result.cpd.reserve(all.cpd_kinds.size());
  for (std::size_t j = 0; j < all.cpd_kinds.size(); ++j) {
    LINKPAD_EXPECTS(all.cpd[j].size() == flows);
    CpdPopulationPoint point;
    point.kind = all.cpd_kinds[j];
    double threshold_sum = 0.0, alarm_sum = 0.0, n_sum = 0.0;
    std::size_t detected = 0;
    std::size_t min_n = std::numeric_limits<std::size_t>::max();
    for (std::size_t f = 0; f < flows; ++f) {
      const FlowCpd& fc = all.cpd[j][f];
      threshold_sum += fc.threshold;
      alarm_sum += static_cast<double>(fc.false_alarms);
      if (fc.detected) {
        ++detected;
        n_sum += static_cast<double>(fc.n_at_detection);
        if (fc.n_at_detection < min_n) {
          min_n = fc.n_at_detection;
          // The REAL flow id, so a sampled campaign's most exposed user is
          // actionable against the deployed population.
          point.first_exposed_flow =
              sampled != nullptr ? sampled->flow_ids[f] : f;
        }
      }
    }
    point.mean_threshold = threshold_sum / m;
    point.mean_false_alarms = alarm_sum / m;
    point.detected_fraction = static_cast<double>(detected) / m;
    if (detected > 0) {
      point.mean_n_at_detection = n_sum / static_cast<double>(detected);
      point.min_n_at_detection = min_n;
      point.min_time_to_detection =
          static_cast<double>(min_n) * mean_interval;
    }
    result.cpd.push_back(point);
  }

  // Population-wide overhead, folded in flow-id order for the same
  // bit-identity reason. All flows must have accounting for the means to
  // be meaningful (the simulated backend always accounts; live captures
  // never do).
  bool all_cost = true;
  bool all_delay = true;
  double padding_sum = 0.0, wire_sum = 0.0, dummy_sum = 0.0;
  Seconds worst_delay = -std::numeric_limits<double>::infinity();
  for (const FlowOverhead& oh : all.overhead) {
    all_cost = all_cost && oh.has_cost;
    all_delay = all_delay && oh.has_delay;
    padding_sum += oh.padding_bps;
    wire_sum += oh.wire_bps;
    dummy_sum += oh.dummy_fraction;
    if (oh.delay_p95 > worst_delay) worst_delay = oh.delay_p95;
  }
  if (all_cost) {
    result.mean_padding_bps = padding_sum / m;
    result.mean_wire_bps = wire_sum / m;
    result.mean_dummy_fraction = dummy_sum / m;
    if (sampled != nullptr) {
      // Empirical Bernstein needs the SAMPLE variance: second pass over the
      // per-flow dummy fractions (still flow-order, still deterministic).
      double ss = 0.0;
      for (const FlowOverhead& oh : all.overhead) {
        const double d = oh.dummy_fraction - *result.mean_dummy_fraction;
        ss += d * d;
      }
      const double variance = flows >= 2 ? ss / (m - 1.0) : 0.0;
      const stats::ConfidenceInterval dummy = stats::bernstein_interval(
          *result.mean_dummy_fraction, variance, flows, 0.0, 1.0,
          sampled->confidence);
      result.dummy_fraction_estimate = PopulationEstimate{
          dummy.point, dummy.lo, dummy.hi, flows, sampled->population};
    }
  }
  if (all_delay) result.worst_delay_p95 = worst_delay;

  return result;
}

PopulationResult PopulationEngine::run(const PopulationSpec& spec) const {
  validate_spec(spec);
  // A sharded worker must go through run_population_shard + merge_shards —
  // run() silently computing 1/Nth of the population would corrupt every
  // aggregate.
  LINKPAD_EXPECTS(options_.shard_count <= 1);
  const std::size_t executed = spec.executed_flows();
  const std::size_t grain = resolved_flow_grain(executed, options_.grain);
  std::vector<std::size_t> all_chunks(population_chunk_count(executed, grain));
  std::iota(all_chunks.begin(), all_chunks.end(), std::size_t{0});
  std::vector<ChunkAggregate> chunks = run_chunks(spec, all_chunks);

  // Deterministic fixed-shape binary tree over the per-chunk partials.
  // Every merge is an ordered concatenation, so the reduced aggregate is
  // the flow-id-ordered sequence no matter how many threads ran.
  ChunkAggregate all = util::tree_reduce(
      std::move(chunks),
      [](ChunkAggregate& left, ChunkAggregate& right) { left.merge(right); });

  std::optional<SampledFinalize> sampled;
  if (spec.is_sampled()) {
    sampled.emplace();
    sampled->population = spec.flows;
    sampled->flow_ids = sampled_flow_ids(spec.flows, spec.sample_flows,
                                         spec.sample_round, spec.seed);
  }
  return finalize_population(
      std::move(all), executed, spec.experiment.sample_sizes(),
      spec.detection_threshold,
      spec.experiment.scenario.base.policy->mean_interval(),
      sampled ? &*sampled : nullptr);
}

PopulationResult run_population(const PopulationSpec& spec) {
  return PopulationEngine().run(spec);
}

PopulationResult run_sampled_until(const PopulationSpec& spec,
                                   const AdaptiveSamplingOptions& adaptive,
                                   const ExperimentBackend& backend,
                                   SweepOptions options) {
  LINKPAD_EXPECTS(!spec.is_sampled());  // the driver owns the sampling fields
  LINKPAD_EXPECTS(adaptive.round_flows >= 1 &&
                  adaptive.round_flows <= spec.flows);
  LINKPAD_EXPECTS(adaptive.target_half_width > 0.0);
  LINKPAD_EXPECTS(options.shard_count <= 1);
  const PopulationEngine engine(backend, std::move(options));

  // Accumulated strata, rebased to permutation-position space: round r's
  // chunk at local first_flow x covers positions r·m + x, so consecutive
  // rounds concatenate into exactly the prefix a single (k·m)-flow sampled
  // run would execute — the aggregates are bit-identical to it.
  std::vector<ChunkAggregate> accumulated;
  SampledFinalize view;
  view.population = spec.flows;
  view.confidence = adaptive.confidence;

  const std::size_t available_rounds = spec.flows / adaptive.round_flows;
  PopulationResult result;
  for (std::size_t round = 0; round < available_rounds; ++round) {
    if (adaptive.max_rounds != 0 && round >= adaptive.max_rounds) break;
    const PopulationSpec round_spec =
        spec.sampled(adaptive.round_flows, round);
    const std::size_t grain =
        resolved_flow_grain(adaptive.round_flows, engine.options().grain);
    std::vector<std::size_t> chunk_ids(
        population_chunk_count(adaptive.round_flows, grain));
    std::iota(chunk_ids.begin(), chunk_ids.end(), std::size_t{0});
    std::vector<ChunkAggregate> chunks = engine.run_chunks(round_spec,
                                                           chunk_ids);
    for (ChunkAggregate& chunk : chunks) {
      chunk.first_flow += round * adaptive.round_flows;
      accumulated.push_back(std::move(chunk));
    }
    const std::vector<std::size_t> round_ids = sampled_flow_ids(
        spec.flows, adaptive.round_flows, round, spec.seed);
    view.flow_ids.insert(view.flow_ids.end(), round_ids.begin(),
                         round_ids.end());

    // Re-finalize over a COPY: later rounds keep extending the accumulated
    // sequence, and the tree reduction consumes its input.
    std::vector<ChunkAggregate> partials = accumulated;
    ChunkAggregate all = util::tree_reduce(
        std::move(partials),
        [](ChunkAggregate& left, ChunkAggregate& right) { left.merge(right); });
    result = finalize_population(
        std::move(all), view.flow_ids.size(), spec.experiment.sample_sizes(),
        spec.detection_threshold,
        spec.experiment.scenario.base.policy->mean_interval(), &view);

    double worst_half_width = 0.0;
    for (const SampledEstimates& est : result.estimates) {
      worst_half_width =
          std::max(worst_half_width, est.detected_fraction.half_width());
    }
    if (worst_half_width <= adaptive.target_half_width) break;
  }
  return result;
}

}  // namespace linkpad::core
