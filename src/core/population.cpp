#include "core/population.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "stats/quantile_sketch.hpp"
#include "util/check.hpp"

namespace linkpad::core {

Scenario PopulationSpec::loaded_scenario() const {
  const std::size_t others = effective_contention() - 1;
  if (others == 0) return experiment.scenario;
  const double per_flow_bps = flow_wire_rate_bps(
      experiment.scenario, derive_point_seed(seed, kCalibrationSalt));
  return with_population_load(experiment.scenario, others,
                              max_hop_utilization, per_flow_bps);
}

ExperimentSpec PopulationSpec::flow_spec(std::size_t flow_id) const {
  LINKPAD_EXPECTS(flow_id < flows);
  ExperimentSpec out = experiment;
  out.scenario = loaded_scenario();
  out.seed = derive_point_seed(seed, flow_id);
  return out;
}

const PopulationPoint& PopulationResult::at_sample_size(std::size_t n) const {
  for (const auto& point : by_sample_size) {
    if (point.sample_size == n) return point;
  }
  throw std::invalid_argument("PopulationResult: sample size not on axis: " +
                              std::to_string(n));
}

PopulationEngine::PopulationEngine(const ExperimentBackend& backend,
                                   SweepOptions options)
    : backend_(&backend), options_(std::move(options)) {
  // Skipped flows would leave default-initialized holes in the population
  // aggregates; a run is all flows or nothing.
  LINKPAD_EXPECTS(!options_.early_stop);
}

PopulationResult PopulationEngine::run(const PopulationSpec& spec) const {
  LINKPAD_EXPECTS(spec.flows >= 1);
  LINKPAD_EXPECTS(spec.contention_flows == 0 ||
                  spec.contention_flows >= spec.flows);
  LINKPAD_EXPECTS(spec.detection_threshold > 0.0 &&
                  spec.detection_threshold <= 1.0);

  PopulationResult result;
  {
    // The loaded scenario is flow-independent: resolve it ONCE (a reactive
    // policy's rate calibration runs a capture — per-flow recomputation
    // would re-simulate it M times) and stamp each flow's seed in-worker.
    // flow_spec(f) stays the contract: it resolves to exactly this spec.
    const Scenario loaded = spec.loaded_scenario();
    auto report = SweepRunner(*backend_, options_)
                      .run(spec.flows, [&](std::size_t f) {
                        ExperimentSpec flow = spec.experiment;
                        flow.scenario = loaded;
                        flow.seed = derive_point_seed(spec.seed, f);
                        return flow;
                      });
    LINKPAD_ENSURES(report.all_completed());
    result.per_flow = std::move(report.results);
  }

  // Aggregate AFTER the join, replaying flows in id order: P² marker state
  // is feed-order-dependent, so a fixed order is what keeps population
  // metrics bit-identical across thread counts.
  const auto ns = spec.experiment.sample_sizes();
  result.by_sample_size.reserve(ns.size());
  for (const std::size_t n : ns) {
    PopulationPoint point;
    point.sample_size = n;
    stats::P2Quantile q05(0.05), q25(0.25), q50(0.5), q75(0.75), q95(0.95);
    double sum = 0.0;
    std::size_t detected = 0;
    for (std::size_t f = 0; f < result.per_flow.size(); ++f) {
      const double rate = result.per_flow[f]
                              .at_sample_size(n)
                              .per_feature.front()
                              .detection_rate;
      q05.add(rate);
      q25.add(rate);
      q50.add(rate);
      q75.add(rate);
      q95.add(rate);
      sum += rate;
      if (rate >= spec.detection_threshold) ++detected;
      if (f == 0 || rate < point.min_rate) point.min_rate = rate;
      if (f == 0 || rate > point.max_rate) {
        point.max_rate = rate;
        point.worst_flow = f;
      }
    }
    const double m = static_cast<double>(result.per_flow.size());
    point.detected_fraction = static_cast<double>(detected) / m;
    point.mean_rate = sum / m;
    point.quantiles = {q05.value(), q25.value(), q50.value(), q75.value(),
                       q95.value()};
    result.by_sample_size.push_back(point);

    if (!result.first_detection_n && detected > 0) {
      result.first_detection_n = n;
      result.time_to_first_detection =
          static_cast<double>(n) *
          spec.experiment.scenario.base.policy->mean_interval();
    }
  }
  return result;
}

PopulationResult run_population(const PopulationSpec& spec) {
  return PopulationEngine().run(spec);
}

}  // namespace linkpad::core
