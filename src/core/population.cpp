#include "core/population.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "stats/quantile_sketch.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

Scenario PopulationSpec::loaded_scenario() const {
  const std::size_t others = effective_contention() - 1;
  if (others == 0) return experiment.scenario;
  const double per_flow_bps = flow_wire_rate_bps(
      experiment.scenario, derive_point_seed(seed, kCalibrationSalt));
  return with_population_load(experiment.scenario, others,
                              max_hop_utilization, per_flow_bps);
}

ExperimentSpec PopulationSpec::flow_spec(std::size_t flow_id) const {
  LINKPAD_EXPECTS(flow_id < flows);
  ExperimentSpec out = experiment;
  out.scenario = loaded_scenario();
  out.seed = derive_point_seed(seed, flow_id);
  return out;
}

const PopulationPoint& PopulationResult::at_sample_size(std::size_t n) const {
  // by_sample_size is ascending in n (spec.sample_sizes() order).
  const auto it = std::lower_bound(
      by_sample_size.begin(), by_sample_size.end(), n,
      [](const PopulationPoint& point, std::size_t key) {
        return point.sample_size < key;
      });
  if (it == by_sample_size.end() || it->sample_size != n) {
    // Merge-mismatch diagnostics hit this first: name what was asked AND
    // what the axis actually holds, so a shard merged against the wrong
    // spec is identifiable from the message alone.
    std::ostringstream msg;
    msg << "PopulationResult::at_sample_size: requested n = " << n
        << " is not on the axis; available sample sizes:";
    if (by_sample_size.empty()) {
      msg << " (none)";
    } else {
      for (const auto& point : by_sample_size) msg << ' ' << point.sample_size;
    }
    throw std::invalid_argument(msg.str());
  }
  return *it;
}

std::size_t resolved_flow_grain(std::size_t flows, std::size_t grain_option) {
  if (grain_option != 0) return grain_option;
  // Chunk size for the flow axis: large enough that chunk claims are
  // amortized against ~100 µs+ per-flow pipelines, small enough that
  // M = 1000 still load-balances across a wide machine. Derives from M
  // alone — the chunk partition is part of the determinism contract, so it
  // must not depend on the pool (or the shard count).
  return std::clamp<std::size_t>(flows / 128, 1, 32);
}

std::size_t population_chunk_count(std::size_t flows, std::size_t grain) {
  LINKPAD_EXPECTS(grain >= 1);
  return (flows + grain - 1) / grain;
}

namespace {

void validate_spec(const PopulationSpec& spec) {
  LINKPAD_EXPECTS(spec.flows >= 1);
  LINKPAD_EXPECTS(spec.contention_flows == 0 ||
                  spec.contention_flows >= spec.flows);
  LINKPAD_EXPECTS(spec.detection_threshold > 0.0 &&
                  spec.detection_threshold <= 1.0);
}

}  // namespace

PopulationEngine::PopulationEngine(const ExperimentBackend& backend,
                                   SweepOptions options)
    : backend_(&backend), options_(std::move(options)) {
  // Skipped flows would leave default-initialized holes in the population
  // aggregates; a run is all flows or nothing.
  LINKPAD_EXPECTS(!options_.early_stop);
}

std::vector<ChunkAggregate> PopulationEngine::run_chunks(
    const PopulationSpec& spec, const std::vector<std::size_t>& chunk_ids,
    const std::function<void(std::size_t, const ChunkAggregate&)>& on_chunk)
    const {
  validate_spec(spec);
  const std::size_t flows = spec.flows;
  const std::size_t grain = resolved_flow_grain(flows, options_.grain);
  const std::size_t total_chunks = population_chunk_count(flows, grain);
  for (std::size_t i = 0; i < chunk_ids.size(); ++i) {
    LINKPAD_EXPECTS(chunk_ids[i] < total_chunks);
    LINKPAD_EXPECTS(i == 0 || chunk_ids[i - 1] < chunk_ids[i]);
  }
  if (chunk_ids.empty()) return {};

  // The loaded scenario is flow-independent: resolve it ONCE (a reactive
  // policy's rate calibration runs a capture — per-flow recomputation
  // would re-simulate it M times) and stamp each flow's seed in-worker.
  // flow_spec(f) stays the contract: it resolves to exactly this spec.
  const Scenario loaded = spec.loaded_scenario();
  const auto ns = spec.experiment.sample_sizes();
  const ExperimentEngine engine(*backend_, options_.batch_piats);

  std::size_t shard_flows = 0;  // flows this call executes (progress total)
  for (const std::size_t c : chunk_ids) {
    shard_flows += std::min(flows, (c + 1) * grain) - c * grain;
  }

  std::vector<ChunkAggregate> chunks(chunk_ids.size());
  std::atomic<std::size_t> done{0};
  std::mutex chunk_mutex;  // serializes on_chunk (checkpoint appends)

  // Per worker slot: ONE spec whose scenario (and its shared policy
  // prototype) is copied once per slot, then re-seeded per flow — instead
  // of a Scenario copy per flow whose shared_ptr refcounts ping-pong
  // between threads. Dispatch is over chunk-id slots (grain 1 in chunk
  // space): one atomic claim per chunk, exactly like the full run.
  auto make_body = [&](std::vector<std::optional<ExperimentSpec>>& slot_specs) {
    return [&](std::size_t slot, std::size_t chunk_begin,
               std::size_t chunk_end) {
      if (!slot_specs[slot]) {
        slot_specs[slot] = spec.experiment;
        slot_specs[slot]->scenario = loaded;
      }
      ExperimentSpec& flow_spec = *slot_specs[slot];
      for (std::size_t slot_idx = chunk_begin; slot_idx < chunk_end;
           ++slot_idx) {
        const std::size_t chunk_id = chunk_ids[slot_idx];
        const std::size_t begin = chunk_id * grain;
        const std::size_t end = std::min(flows, begin + grain);
        ChunkAggregate& chunk = chunks[slot_idx];
        chunk.first_flow = begin;
        const std::size_t count = end - begin;
        chunk.rates.resize(ns.size());
        for (auto& r : chunk.rates) r.reserve(count);
        chunk.overhead.reserve(count);
        if (spec.keep_per_flow) chunk.per_flow.reserve(count);

        for (std::size_t f = begin; f < end; ++f) {
          flow_spec.seed = derive_point_seed(spec.seed, f);
          ExperimentResult result = engine.run(flow_spec);
          LINKPAD_ENSURES(result.by_sample_size.size() == ns.size());
          for (std::size_t i = 0; i < ns.size(); ++i) {
            chunk.rates[i].push_back(
                result.by_sample_size[i].per_feature.front().detection_rate);
          }
          FlowOverhead oh;
          if (const auto padding = result.mean_padding_bps()) {
            oh.has_cost = true;
            oh.padding_bps = *padding;
            oh.wire_bps = result.mean_wire_bps().value_or(0.0);
            oh.dummy_fraction = result.mean_dummy_fraction().value_or(0.0);
          }
          if (const auto delay = result.worst_delay_p95()) {
            oh.has_delay = true;
            oh.delay_p95 = *delay;
          }
          chunk.overhead.push_back(oh);
          if (spec.keep_per_flow) chunk.per_flow.push_back(std::move(result));
          const std::size_t finished = done.fetch_add(1) + 1;
          if (options_.progress) options_.progress(finished, shard_flows);
        }
        if (on_chunk) {
          const std::lock_guard<std::mutex> lock(chunk_mutex);
          on_chunk(chunk_id, chunk);
        }
      }
    };
  };

  const std::size_t n_chunks = chunk_ids.size();
  if (options_.execution == util::ExecutionPolicy::kSerial) {
    std::vector<std::optional<ExperimentSpec>> slot_specs(1);
    auto body = make_body(slot_specs);
    for (std::size_t c = 0; c < n_chunks; ++c) body(0, c, c + 1);
  } else if (options_.threads == 0) {
    util::ThreadPool& pool = util::ThreadPool::global();
    std::vector<std::optional<ExperimentSpec>> slot_specs(
        util::chunk_slots(pool, n_chunks, 1));
    util::parallel_for_chunks(pool, n_chunks, 1, make_body(slot_specs));
  } else {
    util::ThreadPool pool(options_.threads);
    std::vector<std::optional<ExperimentSpec>> slot_specs(
        util::chunk_slots(pool, n_chunks, 1));
    util::parallel_for_chunks(pool, n_chunks, 1, make_body(slot_specs));
  }
  LINKPAD_ENSURES(done.load() == shard_flows);
  return chunks;
}

PopulationResult finalize_population(ChunkAggregate all, std::size_t flows,
                                     const std::vector<std::size_t>& sample_sizes,
                                     double detection_threshold,
                                     Seconds mean_interval) {
  LINKPAD_EXPECTS(flows >= 1);
  LINKPAD_EXPECTS(all.first_flow == 0);
  LINKPAD_EXPECTS(all.flow_count() == flows);
  LINKPAD_EXPECTS(all.rates.size() == sample_sizes.size());

  PopulationResult result;
  result.flow_count = flows;
  result.per_flow = std::move(all.per_flow);

  // Finalize the order-sensitive aggregates over the merged flow-order
  // rates: P² marker state depends on feed order, so the fixed order is
  // what keeps population metrics bit-identical across thread counts.
  const double m = static_cast<double>(flows);
  result.by_sample_size.reserve(sample_sizes.size());
  for (std::size_t i = 0; i < sample_sizes.size(); ++i) {
    PopulationPoint point;
    point.sample_size = sample_sizes[i];
    stats::P2Quantile q05(0.05), q25(0.25), q50(0.5), q75(0.75), q95(0.95);
    double sum = 0.0;
    std::size_t detected = 0;
    for (std::size_t f = 0; f < flows; ++f) {
      const double rate = all.rates[i][f];
      q05.add(rate);
      q25.add(rate);
      q50.add(rate);
      q75.add(rate);
      q95.add(rate);
      sum += rate;
      if (rate >= detection_threshold) ++detected;
      if (rate < point.min_rate) point.min_rate = rate;
      if (rate > point.max_rate) {
        point.max_rate = rate;
        point.worst_flow = f;
      }
    }
    point.detected_fraction = static_cast<double>(detected) / m;
    point.mean_rate = sum / m;
    point.quantiles = {q05.value(), q25.value(), q50.value(), q75.value(),
                       q95.value()};
    result.by_sample_size.push_back(point);

    if (!result.first_detection_n && detected > 0) {
      result.first_detection_n = sample_sizes[i];
      result.time_to_first_detection =
          static_cast<double>(sample_sizes[i]) * mean_interval;
    }
  }

  // Population-wide overhead, folded in flow-id order for the same
  // bit-identity reason. All flows must have accounting for the means to
  // be meaningful (the simulated backend always accounts; live captures
  // never do).
  bool all_cost = true;
  bool all_delay = true;
  double padding_sum = 0.0, wire_sum = 0.0, dummy_sum = 0.0;
  Seconds worst_delay = -std::numeric_limits<double>::infinity();
  for (const FlowOverhead& oh : all.overhead) {
    all_cost = all_cost && oh.has_cost;
    all_delay = all_delay && oh.has_delay;
    padding_sum += oh.padding_bps;
    wire_sum += oh.wire_bps;
    dummy_sum += oh.dummy_fraction;
    if (oh.delay_p95 > worst_delay) worst_delay = oh.delay_p95;
  }
  if (all_cost) {
    result.mean_padding_bps = padding_sum / m;
    result.mean_wire_bps = wire_sum / m;
    result.mean_dummy_fraction = dummy_sum / m;
  }
  if (all_delay) result.worst_delay_p95 = worst_delay;

  return result;
}

PopulationResult PopulationEngine::run(const PopulationSpec& spec) const {
  validate_spec(spec);
  // A sharded worker must go through run_population_shard + merge_shards —
  // run() silently computing 1/Nth of the population would corrupt every
  // aggregate.
  LINKPAD_EXPECTS(options_.shard_count <= 1);
  const std::size_t grain = resolved_flow_grain(spec.flows, options_.grain);
  std::vector<std::size_t> all_chunks(
      population_chunk_count(spec.flows, grain));
  std::iota(all_chunks.begin(), all_chunks.end(), std::size_t{0});
  std::vector<ChunkAggregate> chunks = run_chunks(spec, all_chunks);

  // Deterministic fixed-shape binary tree over the per-chunk partials.
  // Every merge is an ordered concatenation, so the reduced aggregate is
  // the flow-id-ordered sequence no matter how many threads ran.
  ChunkAggregate all = util::tree_reduce(
      std::move(chunks),
      [](ChunkAggregate& left, ChunkAggregate& right) { left.merge(right); });

  return finalize_population(
      std::move(all), spec.flows, spec.experiment.sample_sizes(),
      spec.detection_threshold,
      spec.experiment.scenario.base.policy->mean_interval());
}

PopulationResult run_population(const PopulationSpec& spec) {
  return PopulationEngine().run(spec);
}

}  // namespace linkpad::core
