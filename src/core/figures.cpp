#include "core/figures.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "analysis/theory.hpp"
#include "core/experiment.hpp"
#include "core/piat_model.hpp"
#include "stats/kde.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

const Curve& FigureSeries::curve(const std::string& name) const {
  for (const auto& c : curves) {
    if (c.name == name) return c;
  }
  throw std::invalid_argument("FigureSeries: no curve named '" + name + "'");
}

namespace {

std::size_t scaled(std::size_t base, double effort) {
  return std::max<std::size_t>(8, static_cast<std::size_t>(
                                      std::llround(base * effort)));
}

const ExperimentBackend& backend_of(const FigureOptions& options) {
  return options.backend ? *options.backend : sim_backend();
}

/// Shared worker: one streaming DetectorBank pass per point — every feature
/// AND every sample size is detected over the SAME simulated capture (one
/// simulation, axis × features verdicts, DESIGN.md §2.6). Returns
/// {empirical rate, theory prediction} per (axis entry, feature); theory is
/// evaluated at the prefix's measured r̂ (NaN for extension features
/// without a closed form).
struct FeaturePoint {
  double empirical = 0.5;
  double theory = 0.5;
};

std::vector<std::vector<FeaturePoint>> evaluate_axis(
    const ExperimentBackend& backend, const Scenario& scenario,
    const std::vector<classify::FeatureKind>& features,
    const std::vector<std::size_t>& sample_sizes, std::size_t train_windows,
    std::size_t test_windows, std::uint64_t seed) {
  ExperimentSpec spec;
  spec.scenario = scenario;
  spec.plan.adversary.feature = features.front();
  spec.plan.extra_features.assign(features.begin() + 1, features.end());
  spec.sample_size_axis = sample_sizes;
  spec.plan.adversary.window_size = sample_sizes.back();
  spec.plan.train_windows = train_windows;
  spec.plan.test_windows = test_windows;
  // Small-n points still get up to 2× the window budget of the largest
  // point (tighter rate estimates, free simulation-wise) without letting
  // the quadratic KDE classification cost of a 30×-window point dominate
  // the figure's wall-clock.
  spec.max_windows_per_point =
      2 * std::max(train_windows, test_windows);
  spec.seed = seed;
  const auto result = ExperimentEngine(backend).run(spec);

  std::vector<std::vector<FeaturePoint>> out;
  out.reserve(sample_sizes.size());
  for (const std::size_t n : sample_sizes) {
    const auto& point = result.at_sample_size(n);
    std::vector<FeaturePoint> row;
    row.reserve(features.size());
    for (const auto kind : features) {
      const auto& outcome = point.outcome(kind);
      FeaturePoint fp;
      fp.empirical = outcome.detection_rate;
      fp.theory =
          outcome.predicted.value_or(std::numeric_limits<double>::quiet_NaN());
      row.push_back(fp);
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<FeaturePoint> evaluate_point(
    const ExperimentBackend& backend, const Scenario& scenario,
    const std::vector<classify::FeatureKind>& features, std::size_t n,
    std::size_t train_windows, std::size_t test_windows, std::uint64_t seed) {
  return evaluate_axis(backend, scenario, features, {n}, train_windows,
                       test_windows, seed)
      .front();
}

const std::vector<classify::FeatureKind> kPaperFeatures = {
    classify::FeatureKind::kSampleMean,
    classify::FeatureKind::kSampleVariance,
    classify::FeatureKind::kSampleEntropy,
};

}  // namespace

std::vector<double> detection_rates_on_scenario(
    const Scenario& scenario, const std::vector<classify::FeatureKind>& features,
    std::size_t window_size, std::size_t train_windows,
    std::size_t test_windows, std::uint64_t seed,
    const ExperimentBackend* backend) {
  const auto points =
      evaluate_point(backend != nullptr ? *backend : sim_backend(), scenario,
                     features, window_size, train_windows, test_windows, seed);
  std::vector<double> rates;
  rates.reserve(points.size());
  for (const auto& p : points) rates.push_back(p.empirical);
  return rates;
}

// --------------------------------------------------------------- Fig 4(a)

Fig4aResult fig4a_piat_pdf(const FigureOptions& options) {
  const auto scenario = lab_zero_cross(make_cit());
  const std::size_t count = scaled(40000, options.effort);

  const auto& backend = backend_of(options);
  const auto low = pull_stream(backend, scenario, 0, options.seed, 1, count);
  const auto high = pull_stream(backend, scenario, 1, options.seed, 1, count);

  Fig4aResult result;
  result.summary_low = stats::summarize(low);
  result.summary_high = stats::summarize(high);
  result.r_hat = result.summary_high.variance / result.summary_low.variance;

  const double lo =
      std::min(result.summary_low.min, result.summary_high.min);
  const double hi =
      std::max(result.summary_low.max, result.summary_high.max);
  const stats::GaussianKde kde_low(low);
  const stats::GaussianKde kde_high(high);
  constexpr std::size_t kGrid = 161;
  result.grid.reserve(kGrid);
  for (std::size_t i = 0; i < kGrid; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (kGrid - 1);
    result.grid.push_back(x);
    result.pdf_low.push_back(kde_low.pdf(x));
    result.pdf_high.push_back(kde_high.pdf(x));
  }
  return result;
}

// --------------------------------------------------------------- Fig 4(b)

FigureSeries fig4b_detection_vs_n(const FigureOptions& options) {
  FigureSeries fig;
  fig.title = "Fig 4(b): CIT, zero cross traffic — detection rate vs sample size";
  fig.x_label = "sample size n";
  fig.y_label = "detection rate";
  // The whole n axis rides ONE simulated capture (prefix replay), so a
  // denser curve than the paper's is essentially free: marginal cost per
  // extra point is detector work only, never a new simulation.
  fig.x = {100, 200, 400, 500, 700, 1000, 1500, 2000, 2500, 3000};
  if (options.effort < 0.3) fig.x = {100, 400, 1000, 2000};

  const std::size_t train_w = scaled(250, options.effort);
  const std::size_t test_w = scaled(250, options.effort);
  const auto scenario = lab_zero_cross(make_cit());

  std::vector<std::size_t> axis;
  axis.reserve(fig.x.size());
  for (const double n : fig.x) axis.push_back(static_cast<std::size_t>(n));
  // One capture, one seed: every n evaluates a prefix of the same stream.
  // (The pre-replay figure simulated each point with its own derived seed;
  // sharing the capture is the collapsed axis's documented contract.)
  const auto points =
      evaluate_axis(backend_of(options), scenario, kPaperFeatures, axis,
                    train_w, test_w, options.seed);

  const char* names[] = {"sample mean", "sample variance", "sample entropy"};
  for (std::size_t f = 0; f < 3; ++f) {
    Curve emp{std::string(names[f]) + " experiment", {}};
    Curve thy{std::string(names[f]) + " theory", {}};
    for (const auto& p : points) {
      emp.y.push_back(p[f].empirical);
      thy.y.push_back(p[f].theory);
    }
    fig.curves.push_back(std::move(emp));
    fig.curves.push_back(std::move(thy));
  }
  return fig;
}

// --------------------------------------------------------------- Fig 5(a)

FigureSeries fig5a_detection_vs_sigma(const FigureOptions& options) {
  FigureSeries fig;
  fig.title = "Fig 5(a): VIT — detection rate vs sigma_T (n = 2000)";
  fig.x_label = "sigma_T (s)";
  fig.y_label = "detection rate";
  using namespace units;
  fig.x = {1.0_us, 2.0_us, 5.0_us, 10.0_us, 20.0_us,
           50.0_us, 100.0_us, 300.0_us, 1.0_ms};
  if (options.effort < 0.3) fig.x = {1.0_us, 10.0_us, 100.0_us, 1.0_ms};

  const std::size_t n = 2000;
  const std::size_t train_w = scaled(150, options.effort);
  const std::size_t test_w = scaled(150, options.effort);

  const std::vector<classify::FeatureKind> features = {
      classify::FeatureKind::kSampleVariance,
      classify::FeatureKind::kSampleEntropy,
  };

  // The σ_T axis changes the SCENARIO, so it cannot collapse into one
  // capture; each sigma keeps its own simulation with a canonically
  // derived seed (the n axis within a sigma point is where prefix replay
  // applies — see fig5b_n99_vs_sigma_empirical).
  std::vector<std::vector<FeaturePoint>> points(fig.x.size());
  util::parallel_for(fig.x.size(), [&](std::size_t i) {
    const auto scenario = lab_zero_cross(make_vit(fig.x[i]));
    points[i] = evaluate_point(backend_of(options), scenario, features, n,
                               train_w, test_w,
                               derive_point_seed(options.seed, i));
  });

  const char* names[] = {"sample variance", "sample entropy"};
  for (std::size_t f = 0; f < 2; ++f) {
    Curve emp{std::string(names[f]) + " experiment", {}};
    Curve thy{std::string(names[f]) + " theory", {}};
    for (const auto& p : points) {
      emp.y.push_back(p[f].empirical);
      thy.y.push_back(p[f].theory);
    }
    fig.curves.push_back(std::move(emp));
    fig.curves.push_back(std::move(thy));
  }
  return fig;
}

// --------------------------------------------------------------- Fig 5(b)

FigureSeries fig5b_n99_vs_sigma(const FigureOptions& options) {
  FigureSeries fig;
  fig.title = "Fig 5(b): theoretical sample size for 99% detection vs sigma_T";
  fig.x_label = "sigma_T (s)";
  fig.y_label = "n(99%)";

  // Calibrated effective gateway variances of the lab system (predicted
  // from the scenario constants — no simulation needed for this figure).
  const auto scenario = lab_zero_cross(make_cit());
  const auto components =
      predict_components(scenario.config_for(0), scenario.config_for(1));

  constexpr int kPoints = 25;
  Curve var_curve{"sample variance", {}};
  Curve ent_curve{"sample entropy", {}};
  (void)options;
  for (int i = 0; i < kPoints; ++i) {
    // log sweep 1 µs … 1 ms
    const double sigma =
        1e-6 * std::pow(10.0, 3.0 * static_cast<double>(i) / (kPoints - 1));
    analysis::VarianceComponents vc = components;
    vc.sigma2_timer = sigma * sigma;
    const double r = vc.ratio();
    fig.x.push_back(sigma);
    var_curve.y.push_back(analysis::sample_size_for_detection(
        classify::FeatureKind::kSampleVariance, r, 0.99));
    ent_curve.y.push_back(analysis::sample_size_for_detection(
        classify::FeatureKind::kSampleEntropy, r, 0.99));
  }
  fig.curves.push_back(std::move(var_curve));
  fig.curves.push_back(std::move(ent_curve));
  return fig;
}

FigureSeries fig5b_n99_vs_sigma_empirical(const FigureOptions& options) {
  FigureSeries fig;
  fig.title =
      "Fig 5(b) empirical: measured sample size for 99% detection vs sigma_T";
  fig.x_label = "sigma_T (s)";
  fig.y_label = "n(99%)";
  using namespace units;
  // Sigma range where n(99%) is reachable within the axis below; beyond
  // ~50 us the theoretical requirement explodes past any finite capture
  // (the paper's security argument) and the empirical curve goes off scale.
  fig.x = {1.0_us, 2.0_us, 5.0_us, 10.0_us, 20.0_us, 50.0_us};
  if (options.effort < 0.3) fig.x = {1.0_us, 10.0_us, 50.0_us};

  // The n axis of EVERY sigma point rides one capture via prefix replay —
  // this whole figure costs |sigma| simulations, not |sigma| × |n|.
  const std::vector<std::size_t> axis = {100,  200,  400,  700, 1000,
                                         1500, 2000, 2500, 3000};
  const std::size_t train_w = scaled(60, options.effort);
  const std::size_t test_w = scaled(60, options.effort);

  const std::vector<classify::FeatureKind> features = {
      classify::FeatureKind::kSampleVariance,
      classify::FeatureKind::kSampleEntropy,
  };

  std::vector<std::vector<std::vector<FeaturePoint>>> points(fig.x.size());
  util::parallel_for(fig.x.size(), [&](std::size_t i) {
    const auto scenario = lab_zero_cross(make_vit(fig.x[i]));
    points[i] =
        evaluate_axis(backend_of(options), scenario, features, axis, train_w,
                      test_w, derive_point_seed(options.seed, i));
  });

  // Theory companion curves: Theorem 2/3 inversion at the calibrated
  // effective variance ratio, exactly as fig5b_n99_vs_sigma.
  const auto cit_scenario = lab_zero_cross(make_cit());
  const auto components =
      predict_components(cit_scenario.config_for(0), cit_scenario.config_for(1));

  const double off_scale = std::numeric_limits<double>::quiet_NaN();
  const char* names[] = {"sample variance", "sample entropy"};
  for (std::size_t f = 0; f < 2; ++f) {
    const auto kind = features[f];
    Curve emp{std::string(names[f]) + " empirical", {}};
    Curve thy{std::string(names[f]) + " theory", {}};
    for (std::size_t i = 0; i < fig.x.size(); ++i) {
      // Smallest axis n whose measured rate reaches 99% (NaN = off scale,
      // i.e. padding defeats the adversary within this capture).
      double n99 = off_scale;
      for (std::size_t a = 0; a < axis.size(); ++a) {
        if (points[i][a][f].empirical >= 0.99) {
          n99 = static_cast<double>(axis[a]);
          break;
        }
      }
      emp.y.push_back(n99);

      analysis::VarianceComponents vc = components;
      vc.sigma2_timer = fig.x[i] * fig.x[i];
      thy.y.push_back(
          analysis::sample_size_for_detection(kind, vc.ratio(), 0.99));
    }
    fig.curves.push_back(std::move(emp));
    fig.curves.push_back(std::move(thy));
  }
  return fig;
}

// ------------------------------------------------------------------ Fig 6

FigureSeries fig6_detection_vs_utilization(const FigureOptions& options) {
  FigureSeries fig;
  fig.title = "Fig 6: CIT with cross traffic — detection rate vs utilization (n = 1000)";
  fig.x_label = "shared link utilization";
  fig.y_label = "detection rate";
  fig.x = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
  if (options.effort < 0.3) fig.x = {0.05, 0.2, 0.4};

  const std::size_t n = 1000;
  const std::size_t train_w = scaled(250, options.effort);
  const std::size_t test_w = scaled(250, options.effort);

  std::vector<std::vector<FeaturePoint>> points(fig.x.size());
  util::parallel_for(fig.x.size(), [&](std::size_t i) {
    const auto scenario = lab_cross_traffic(make_cit(), fig.x[i]);
    points[i] = evaluate_point(backend_of(options), scenario, kPaperFeatures, n,
                               train_w, test_w,
                               derive_point_seed(options.seed, i));
  });

  const char* names[] = {"sample mean", "sample variance", "sample entropy"};
  for (std::size_t f = 0; f < 3; ++f) {
    Curve emp{names[f], {}};
    for (const auto& p : points) emp.y.push_back(p[f].empirical);
    fig.curves.push_back(std::move(emp));
  }
  return fig;
}

// ------------------------------------------------------------------ Fig 8

FigureSeries fig8_detection_vs_hour(bool wan_path,
                                    const FigureOptions& options) {
  FigureSeries fig;
  fig.title = wan_path
                  ? "Fig 8(b): WAN Ohio -> Texas — detection rate vs time of day (n = 1000)"
                  : "Fig 8(a): Texas A&M campus — detection rate vs time of day (n = 1000)";
  fig.x_label = "hour of day";
  fig.y_label = "detection rate";

  const double step = options.effort >= 1.0 ? 1.0 : 3.0;
  for (double h = 0.0; h < 24.0; h += step) fig.x.push_back(h);

  const std::size_t n = 1000;
  const std::size_t train_w = scaled(150, options.effort);
  const std::size_t test_w = scaled(150, options.effort);

  std::vector<std::vector<FeaturePoint>> points(fig.x.size());
  util::parallel_for(fig.x.size(), [&](std::size_t i) {
    const auto scenario = wan_path ? wan(make_cit(), fig.x[i])
                                   : campus(make_cit(), fig.x[i]);
    points[i] = evaluate_point(backend_of(options), scenario, kPaperFeatures, n,
                               train_w, test_w,
                               derive_point_seed(options.seed, i));
  });

  const char* names[] = {"sample mean", "sample variance", "sample entropy"};
  for (std::size_t f = 0; f < 3; ++f) {
    Curve emp{names[f], {}};
    for (const auto& p : points) emp.y.push_back(p[f].empirical);
    fig.curves.push_back(std::move(emp));
  }
  return fig;
}

}  // namespace linkpad::core
