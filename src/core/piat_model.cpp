#include "core/piat_model.hpp"

#include "analysis/theory.hpp"
#include "sim/hop.hpp"
#include "sim/jitter.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::core {

namespace {

/// Effective (per-PIAT) gateway jitter variance with the mean payload
/// arrivals per timer interval a = rate · E[T]; see
/// GatewayJitterModel::effective_piat_variance for the derivation.
double effective_gateway_variance(const sim::TestbedConfig& cfg) {
  const sim::GatewayJitterModel model(cfg.jitter);
  const double arrivals =
      cfg.payload_rate * cfg.policy->mean_interval();
  return model.effective_piat_variance(arrivals);
}

/// Effective network noise: 2 · Σ_hop Var(W_hop).
double effective_net_variance(const sim::TestbedConfig& cfg) {
  sim::PathModel path(cfg.hops_before_tap, cfg.wire_bytes);
  return 2.0 * path.total_wait_variance();
}

}  // namespace

analysis::VarianceComponents predict_components(const sim::TestbedConfig& low,
                                                const sim::TestbedConfig& high) {
  LINKPAD_EXPECTS(low.policy != nullptr && high.policy != nullptr);
  LINKPAD_EXPECTS(low.payload_rate <= high.payload_rate);

  analysis::VarianceComponents vc;
  vc.sigma2_timer = low.policy->interval_variance();
  vc.sigma2_net = effective_net_variance(low);
  vc.sigma2_gw_low = effective_gateway_variance(low);
  vc.sigma2_gw_high = effective_gateway_variance(high);
  return vc;
}

double predict_piat_variance(const sim::TestbedConfig& cfg) {
  LINKPAD_EXPECTS(cfg.policy != nullptr);
  return cfg.policy->interval_variance() + effective_gateway_variance(cfg) +
         effective_net_variance(cfg);
}

MeasuredComponents measure_components(const sim::TestbedConfig& low,
                                      const sim::TestbedConfig& high,
                                      std::size_t piats_per_class,
                                      std::uint64_t seed) {
  LINKPAD_EXPECTS(piats_per_class >= 2);
  const util::RngFactory factory(seed);

  auto run = [&](const sim::TestbedConfig& cfg, std::uint64_t stream) {
    auto rng = factory.make(stream);
    return sim::collect_piats(cfg, rng, piats_per_class);
  };
  const auto piats_low = run(low, 0);
  const auto piats_high = run(high, 1);

  MeasuredComponents mc;
  mc.sigma2_low = stats::sample_variance(piats_low);
  mc.sigma2_high = stats::sample_variance(piats_high);
  mc.ratio = mc.sigma2_high / mc.sigma2_low;
  return mc;
}

}  // namespace linkpad::core
