// PopulationEngine: the flow-count axis. The paper evaluates ONE padded
// flow against one adversary; its Sec 6 guidelines, however, are about
// deploying link padding for whole user populations — and population-scale
// adversaries are the norm in the related literature (statistical
// disclosure aggregates rounds across many users; throughput
// fingerprinting exploits many concurrent flows sharing a bottleneck).
//
// A population run simulates M concurrent padded flows through one shared
// scenario. Flows contend for the same router path: every flow's hops
// carry the mutual cross traffic of the other padded flows
// (with_population_load — each padded stream offers a payload-independent
// constant wire rate, so the aggregate load is analytic), and the
// adversary taps every flow, running one full detection pipeline
// (ExperimentEngine → DetectorBank per feature) per tapped flow.
//
// Determinism contract (the population analogue of prefix replay,
// DESIGN.md §2.7):
//  * flow f's streams derive from core::derive_point_seed(seed, f) — flows
//    never share RNG streams, and flow f's outcome is a pure function of
//    (spec template, contention, seed, f);
//  * results are bit-identical at ANY thread count: flows dispatch in
//    grain-aligned chunks (util::parallel_for_chunks; chunk boundaries
//    derive from M alone), each chunk folds its flows' rates and overhead
//    into a mergeable accumulator in flow order, and the per-chunk partials
//    reduce in a deterministic fixed-shape binary tree (util::tree_reduce)
//    whose merges are exact concatenations — so the order-sensitive P²
//    sketches still see the full flow-id feed order at finalize;
//  * M-prefix: flows 0..k-1 of an M-flow run are bit-identical to a
//    standalone k-flow run of the same spec with contention_flows pinned
//    to M — shrinking the tapped set never perturbs the flows kept.
//
// Memory: per-flow results are O(features × axis); transient per-worker
// state is O(batch + axis · features × window) per in-flight flow, so a
// 10k-flow run needs O(threads) flow pipelines resident, never O(M).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace linkpad::core {

/// One population experiment: M flows × one per-flow experiment template.
struct PopulationSpec {
  /// Per-flow experiment (scenario, adversary, features, sample-size axis,
  /// window budgets). `experiment.seed` is ignored: flow f runs with
  /// derive_point_seed(seed, f) so flows never share streams.
  ExperimentSpec experiment;

  /// Number of tapped flows M (each gets its own adversary pipeline).
  std::size_t flows = 1;

  /// Sampled execution mode (DESIGN.md §2.11): when non-zero, the engine
  /// simulates only this many flows — stratum `sample_round` of a
  /// seed-derived pseudorandom permutation of [0, flows) — while the
  /// contention model stays at the FULL population (effective_contention()
  /// still resolves from `flows`). Cross-load is analytic per flow, so each
  /// sampled flow's capture is bitwise identical to the same flow_id in the
  /// exhaustive run; aggregates over the sample carry concentration-bound
  /// error bars (PopulationResult::estimates). 0 ⇒ exhaustive.
  std::size_t sample_flows = 0;

  /// Which disjoint stratum of the sampling permutation to execute:
  /// positions [round·m, (round+1)·m). Rounds never overlap, which is what
  /// lets run_sampled_until grow the sample by whole strata.
  std::size_t sample_round = 0;

  /// Number of flows loading the shared path. 0 ⇒ `flows` (every tapped
  /// flow is also on the link). Each flow's hops then carry the wire rate
  /// of the OTHER contention_flows - 1 padded streams as cross traffic.
  /// The M-prefix contract compares runs at EQUAL contention: tapping
  /// fewer flows of the same deployed population (contention pinned) keeps
  /// the kept flows bit-identical.
  std::size_t contention_flows = 0;

  /// Per-hop utilization cap under population load (sim::add_cross_load).
  double max_hop_utilization = 0.95;

  /// A flow counts as "detected" at a sample size when its primary-feature
  /// detection rate reaches this threshold. 0.75 is halfway between
  /// coin-flipping and certainty — past it the adversary is clearly
  /// winning on that flow.
  double detection_threshold = 0.75;

  /// Materialize per-flow ExperimentResults in PopulationResult::per_flow.
  /// true keeps the full per-flow detail (memory O(M × features × axis));
  /// false drops each flow's result right after its rates and overhead are
  /// folded into the chunk aggregates, shrinking a run to O(M × axis)
  /// doubles — the knob for the millions-of-flows regime. Aggregates are
  /// bit-identical either way.
  bool keep_per_flow = true;

  std::uint64_t seed = 20030324;

  /// contention_flows, with 0 resolved to `flows`. Sampling never changes
  /// this: a sampled run keeps the full M flows on the link.
  [[nodiscard]] std::size_t effective_contention() const {
    return contention_flows == 0 ? flows : contention_flows;
  }

  /// A copy of this spec in sampled mode: simulate stratum `round` (m flows)
  /// of the deployed population of `flows`.
  [[nodiscard]] PopulationSpec sampled(std::size_t m,
                                       std::size_t round = 0) const {
    PopulationSpec out = *this;
    out.sample_flows = m;
    out.sample_round = round;
    return out;
  }

  [[nodiscard]] bool is_sampled() const { return sample_flows != 0; }

  /// Number of flows a run of this spec actually simulates: m when sampled,
  /// M when exhaustive. The chunk partition (and the shard ownership map)
  /// lives in this executed index space.
  [[nodiscard]] std::size_t executed_flows() const {
    return sample_flows == 0 ? flows : sample_flows;
  }

  /// The shared scenario under population cross-load. Each contention flow
  /// offers flow_wire_rate_bps: the analytic constant rate for the paper's
  /// policies, a MEASURED calibration rate for payload-reactive policies
  /// (whose wire load tracks the payload instead of the timer — the
  /// constant-wire-rate invariant the analytic form needs is gone). The
  /// calibration substream derives from (seed, kCalibrationSalt), so every
  /// flow sees the identical loaded path. Flow-independent; the engine
  /// computes it ONCE per run.
  [[nodiscard]] Scenario loaded_scenario() const;

  /// The fully resolved per-flow spec of flow `flow_id`: the shared
  /// scenario under population load, the template's adversary/axis, and
  /// the flow's derived seed. A standalone ExperimentEngine::run of this
  /// spec is bit-identical to slot `flow_id` of the population run.
  [[nodiscard]] ExperimentSpec flow_spec(std::size_t flow_id) const;

  /// Salt of the calibration substream — far outside any flow id, so the
  /// measurement never shares streams with a tapped flow.
  static constexpr std::uint64_t kCalibrationSalt = 0x63616c6962726174ULL;
};

/// One flow's overhead summary, recorded in-worker so the population
/// aggregates survive keep_per_flow = false.
struct FlowOverhead {
  bool has_cost = false;  ///< padding/wire/dummy accounting present
  double padding_bps = 0.0;
  double wire_bps = 0.0;
  double dummy_fraction = 0.0;
  bool has_delay = false;
  Seconds delay_p95 = 0.0;
};

/// One flow's outcome for ONE configured change-point detector, recorded
/// in-worker (like FlowOverhead) so the population CPD aggregates survive
/// keep_per_flow = false.
struct FlowCpd {
  bool detected = false;           ///< every class stream tripped its side
  std::size_t n_at_detection = 0;  ///< worst first-crossing; 0 if undetected
  std::size_t false_alarms = 0;    ///< wrong-side crossings, all streams
  double threshold = 0.0;          ///< h in use (post-calibration)
};

/// Mergeable per-chunk aggregation state (DESIGN.md §2.9). A chunk covers a
/// contiguous, grain-aligned run of flow ids and stores, in flow order: one
/// detection rate per (axis point, flow), one overhead summary per flow,
/// and (optionally) the flows' full ExperimentResults. Merging adjacent
/// chunks is ordered concatenation — exact and associative — so the
/// reduction tree's shape can never perturb a bit; the order-sensitive
/// parts of the aggregation (P² sketches, float sums) run over the merged
/// flow-order sequence at finalize. Because the merge is pure
/// concatenation, a chunk is also the unit of process sharding: shard
/// files carry serialized ChunkAggregates (core/shard_io), and N-shard
/// merges reassemble exactly the sequence a single process would have
/// reduced.
struct ChunkAggregate {
  std::size_t first_flow = 0;
  std::vector<std::vector<double>> rates;  ///< [axis point][flow - first_flow]
  std::vector<FlowOverhead> overhead;      ///< [flow - first_flow]
  /// Configured change-point schemes (identical in every chunk of a run —
  /// carried so finalize and shard validation know the detector layout).
  std::vector<classify::CpdKind> cpd_kinds;
  std::vector<std::vector<FlowCpd>> cpd;   ///< [cpd detector][flow - first_flow]
  std::vector<ExperimentResult> per_flow;  ///< kept only when requested

  /// Flows this chunk covers (overhead has exactly one entry per flow).
  [[nodiscard]] std::size_t flow_count() const { return overhead.size(); }

  void merge(ChunkAggregate& right) {
    LINKPAD_EXPECTS(first_flow + overhead.size() == right.first_flow);
    LINKPAD_EXPECTS(cpd_kinds == right.cpd_kinds);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      rates[i].insert(rates[i].end(), right.rates[i].begin(),
                      right.rates[i].end());
    }
    overhead.insert(overhead.end(), right.overhead.begin(),
                    right.overhead.end());
    for (std::size_t j = 0; j < cpd.size(); ++j) {
      cpd[j].insert(cpd[j].end(), right.cpd[j].begin(), right.cpd[j].end());
    }
    per_flow.insert(per_flow.end(),
                    std::make_move_iterator(right.per_flow.begin()),
                    std::make_move_iterator(right.per_flow.end()));
  }
};

/// The grain actually used for `flows` when SweepOptions::grain is
/// `grain_option` (0 ⇒ the flow-count-derived default clamp(M/128, 1, 32)).
/// The chunk partition is a pure function of (flows, grain) — never the
/// pool width or process count — which is what makes N-shard merges
/// bit-identical to the single-process run (DESIGN.md §2.10).
[[nodiscard]] std::size_t resolved_flow_grain(std::size_t flows,
                                              std::size_t grain_option);

/// Number of grain-aligned chunks in the (flows, grain) partition. Chunk c
/// covers flows [c·grain, min(flows, (c+1)·grain)).
[[nodiscard]] std::size_t population_chunk_count(std::size_t flows,
                                                 std::size_t grain);

/// The flow ids stratum `round` of the sampling permutation selects:
/// positions [round·m, (round+1)·m) of a seed-keyed pseudorandom
/// permutation of [0, flows), in permutation order. Implemented as a
/// 4-round Feistel network over the smallest even-bit power-of-two domain
/// covering `flows`, cycle-walked back into range — a bijection evaluated
/// in O(1) memory, so selecting 1k of 10M flows never materializes the
/// population. Pure integer function of (flows, m, round, seed): identical
/// on every thread, shard, and platform. Distinct rounds are disjoint by
/// construction. Requires 1 ≤ m ≤ flows and (round+1)·m ≤ flows.
[[nodiscard]] std::vector<std::size_t> sampled_flow_ids(std::size_t flows,
                                                        std::size_t m,
                                                        std::size_t round,
                                                        std::uint64_t seed);

/// Detection-rate quantiles over the population (stats::P2Quantile; exact
/// for M ≤ 5, documented ~1% sketch accuracy beyond).
struct RateQuantiles {
  double p05 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Population-level aggregation at one sample size (primary feature).
struct PopulationPoint {
  std::size_t sample_size = 0;
  /// Fraction of flows at or above the detection threshold.
  double detected_fraction = 0.0;
  double mean_rate = 0.0;
  /// Extremes start at the identity of min/max so a default-constructed
  /// point is safe to fold rates into (and obviously unfed if read early).
  double min_rate = std::numeric_limits<double>::infinity();
  double max_rate = -std::numeric_limits<double>::infinity();
  /// Flow with the highest detection rate — the deployment's worst case
  /// (ties break to the lowest flow id).
  std::size_t worst_flow = 0;
  RateQuantiles quantiles;
};

/// Population-level aggregation of ONE configured change-point detector
/// over all tapped flows (folded in flow-id order, so bit-identical at any
/// thread count or shard layout).
struct CpdPopulationPoint {
  classify::CpdKind kind = classify::CpdKind::kCusum;
  /// Mean calibrated threshold across flows (per-flow thresholds differ:
  /// each flow calibrates on its own training capture).
  double mean_threshold = 0.0;
  /// Fraction of flows whose every class stream tripped its targeting side.
  double detected_fraction = 0.0;
  /// Mean worst first-crossing PIAT count over the DETECTED flows
  /// (0 when no flow was detected).
  double mean_n_at_detection = 0.0;
  /// Fastest detection across the population; 0 when no flow was detected.
  std::size_t min_n_at_detection = 0;
  /// REAL flow id of the fastest-detected flow (ties break to the lowest
  /// execution slot) — the deployment's most exposed user.
  std::size_t first_exposed_flow = 0;
  /// min_n_at_detection as observation time: PIATs × mean timer interval.
  /// nullopt when no flow was detected.
  std::optional<Seconds> min_time_to_detection;
  /// Mean wrong-side alarm count per flow.
  double mean_false_alarms = 0.0;
};

/// Two-sided confidence level every sampled-mode estimate is computed at
/// unless a caller (run_sampled_until) asks otherwise. A constant, not a
/// spec knob: merge_shards must finalize with the same level as the
/// single-process run for the byte-diffed JSON to agree.
inline constexpr double kDefaultEstimateConfidence = 0.95;

/// A population-level estimate extrapolated from a sample: the point value
/// measured over the m executed flows plus a finite-sample [lo, hi] bound
/// on the corresponding exhaustive-M value (stats/concentration).
struct PopulationEstimate {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  std::size_t m = 0;  ///< flows the estimate was measured on
  std::size_t M = 0;  ///< deployed population it speaks for

  [[nodiscard]] double half_width() const { return (hi - lo) / 2.0; }
};

/// Per-sample-size error bars of a sampled run, parallel to
/// PopulationResult::by_sample_size.
struct SampledEstimates {
  std::size_t sample_size = 0;
  /// Wilson score interval on the population detected fraction.
  PopulationEstimate detected_fraction;
  /// Hoeffding interval on the population mean detection rate (rates are
  /// bounded in [0, 1], so the bound needs no variance estimate).
  PopulationEstimate mean_rate;
  /// DKW band half-width: the sample's rate ECDF (hence each reported
  /// quantile's plotting position) is within ±dkw_epsilon of the
  /// population ECDF, simultaneously over the whole curve.
  double dkw_epsilon = 0.0;
};

/// Outcome of a population run: per-flow experiment results (slot = flow
/// id; empty when PopulationSpec::keep_per_flow is false) plus one
/// aggregated point per sample size (ascending, mirroring
/// ExperimentResult::by_sample_size) and population-wide overhead
/// aggregates.
struct PopulationResult {
  std::vector<ExperimentResult> per_flow;
  std::vector<PopulationPoint> by_sample_size;
  /// One aggregate per configured change-point detector
  /// (PopulationSpec::experiment.cpd_detectors order); empty without CPD.
  std::vector<CpdPopulationPoint> cpd;

  /// Smallest axis sample size at which ANY flow crosses the detection
  /// threshold; empty when the whole population holds at every n.
  std::optional<std::size_t> first_detection_n;
  /// first_detection_n expressed as observation time: n PIATs ≈ n mean
  /// timer intervals of capture on the weakest flow.
  std::optional<Seconds> time_to_first_detection;

  /// Padding-cost aggregates across the population (equal priors, like the
  /// per-flow ExperimentResult::mean_* accessors): means over flows of each
  /// flow's expected overhead, and the worst per-flow p95 payload queueing
  /// delay (ties break to the lowest flow id). nullopt when any flow lacks
  /// backend accounting (live captures). Folded in flow-id order, so they
  /// are bit-identical at any thread count — and they survive
  /// keep_per_flow = false.
  std::optional<double> mean_padding_bps;
  std::optional<double> mean_wire_bps;
  std::optional<double> mean_dummy_fraction;
  std::optional<Seconds> worst_delay_p95;

  /// Number of flows the run executed (per_flow.size() when per-flow
  /// results were kept; the executed count when they were dropped).
  std::size_t flow_count = 0;

  /// Sampled-mode provenance: the deployed population M the executed flows
  /// were drawn from (0 ⇒ exhaustive run), the real flow ids executed (slot
  /// i of per_flow / of each rates row is flow sampled_ids[i]), and one
  /// error-bar block per sample size. All empty/zero when exhaustive.
  std::size_t sampled_from = 0;
  std::vector<std::size_t> sampled_ids;
  std::vector<SampledEstimates> estimates;
  /// Empirical-Bernstein interval on the population mean dummy fraction
  /// (per-flow dummy fractions concentrate tightly under a common policy,
  /// where Bernstein beats Hoeffding); absent when overhead accounting is
  /// (or exhaustive mode makes estimates) unavailable.
  std::optional<PopulationEstimate> dummy_fraction_estimate;

  [[nodiscard]] bool is_sampled() const { return sampled_from != 0; }

  [[nodiscard]] std::size_t flows() const { return flow_count; }

  /// Point at sample size `n`; throws if `n` was not on the axis.
  [[nodiscard]] const PopulationPoint& at_sample_size(std::size_t n) const;
};

/// Runs M per-flow experiments sharded across util::thread_pool and
/// aggregates them. Accepts SweepOptions (threads / batch_piats / grain /
/// progress, where progress counts finished flows); early_stop must be
/// unset — skipping flows would break the population aggregates.
/// Dispatch is chunked by construction (flows are many and cheap):
/// execution = kSerial forces the inline reference schedule, every other
/// policy runs grain-aligned chunks over the pool with one spec copy per
/// worker slot. grain = 0 picks a flow-count-derived default; any grain
/// yields bit-identical results.
class PopulationEngine {
 public:
  explicit PopulationEngine(const ExperimentBackend& backend = sim_backend(),
                            SweepOptions options = {});

  [[nodiscard]] PopulationResult run(const PopulationSpec& spec) const;

  /// Compute the chunk aggregates of a SUBSET of the (flows, grain)
  /// partition — the shard execution mode (core/shard_io). `chunk_ids`
  /// selects chunks (each < population_chunk_count, strictly ascending);
  /// slot i of the returned vector is chunk chunk_ids[i]. Every chunk is
  /// the identical pure function of (spec, chunk id) the full run
  /// computes, so reassembling all chunks of all shards and running the
  /// finalize once reproduces run() bit for bit. `on_chunk`, when set, is
  /// invoked under an internal lock — serialized, possibly out of chunk
  /// order — right after each chunk completes, with (chunk id, aggregate):
  /// the checkpoint hook a durable shard file hangs off.
  [[nodiscard]] std::vector<ChunkAggregate> run_chunks(
      const PopulationSpec& spec, const std::vector<std::size_t>& chunk_ids,
      const std::function<void(std::size_t, const ChunkAggregate&)>& on_chunk =
          {}) const;

  [[nodiscard]] const SweepOptions& options() const { return options_; }

 private:
  const ExperimentBackend* backend_;
  SweepOptions options_;
};

/// The order-sensitive tail of a population run: P² feeds, float sums,
/// min/max/worst-flow and the population-wide overhead fold over the merged
/// flow-order aggregate. Runs EXACTLY once per population — at the end of
/// PopulationEngine::run, or once in core::merge_shards after the last
/// shard is concatenated (running it per shard would feed the sketches
/// partial sequences). `all` must cover flows [0, flows) in order;
/// `mean_interval` is the padding policy's mean timer interval (converts
/// first_detection_n to observation time).
///
/// For a sampled run, pass a SampledFinalize: `flows` is then the executed
/// count m, execution slot i is real flow `sampled.flow_ids[i]` (worst_flow
/// reports real ids), and the result carries concentration-bound estimates
/// for the population of `sampled.population` flows.
struct SampledFinalize {
  std::size_t population = 0;          ///< deployed M behind the sample
  std::vector<std::size_t> flow_ids;   ///< executed ids, execution order
  double confidence = kDefaultEstimateConfidence;
};

[[nodiscard]] PopulationResult finalize_population(ChunkAggregate all,
                                                   std::size_t flows,
                                                   const std::vector<std::size_t>& sample_sizes,
                                                   double detection_threshold,
                                                   Seconds mean_interval,
                                                   const SampledFinalize* sampled = nullptr);

/// Run one population experiment on the default simulated backend.
PopulationResult run_population(const PopulationSpec& spec);

/// Adaptive sampling driver: add disjoint strata of `round_flows` flows
/// until the widest per-sample-size Wilson half-width on the detected
/// fraction reaches `target_half_width` (or the permutation runs out of
/// whole strata, or `max_rounds` caps the loop).
struct AdaptiveSamplingOptions {
  std::size_t round_flows = 256;
  double target_half_width = 0.05;
  double confidence = kDefaultEstimateConfidence;
  std::size_t max_rounds = 0;  ///< 0 ⇒ only stratum exhaustion stops growth
};

/// Runs spec.sampled(round_flows, r) for r = 0, 1, … — each round's chunks
/// computed by the normal chunked/threaded path — concatenating rounds via
/// the same ChunkAggregate/tree_reduce machinery and re-finalizing after
/// each, until the stopping rule fires. `spec` must be exhaustive (the
/// driver owns the sampling fields); requires round_flows ≤ spec.flows.
/// The result is bit-identical to a single spec.sampled(k·round_flows)-
/// style run over the same k strata at any thread count or grain.
[[nodiscard]] PopulationResult run_sampled_until(
    const PopulationSpec& spec, const AdaptiveSamplingOptions& adaptive,
    const ExperimentBackend& backend = sim_backend(), SweepOptions options = {});

}  // namespace linkpad::core
