// PopulationEngine: the flow-count axis. The paper evaluates ONE padded
// flow against one adversary; its Sec 6 guidelines, however, are about
// deploying link padding for whole user populations — and population-scale
// adversaries are the norm in the related literature (statistical
// disclosure aggregates rounds across many users; throughput
// fingerprinting exploits many concurrent flows sharing a bottleneck).
//
// A population run simulates M concurrent padded flows through one shared
// scenario. Flows contend for the same router path: every flow's hops
// carry the mutual cross traffic of the other padded flows
// (with_population_load — each padded stream offers a payload-independent
// constant wire rate, so the aggregate load is analytic), and the
// adversary taps every flow, running one full detection pipeline
// (ExperimentEngine → DetectorBank per feature) per tapped flow.
//
// Determinism contract (the population analogue of prefix replay,
// DESIGN.md §2.7):
//  * flow f's streams derive from core::derive_point_seed(seed, f) — flows
//    never share RNG streams, and flow f's outcome is a pure function of
//    (spec template, contention, seed, f);
//  * results are bit-identical at ANY thread count: flows dispatch in
//    grain-aligned chunks (util::parallel_for_chunks; chunk boundaries
//    derive from M alone), each chunk folds its flows' rates and overhead
//    into a mergeable accumulator in flow order, and the per-chunk partials
//    reduce in a deterministic fixed-shape binary tree (util::tree_reduce)
//    whose merges are exact concatenations — so the order-sensitive P²
//    sketches still see the full flow-id feed order at finalize;
//  * M-prefix: flows 0..k-1 of an M-flow run are bit-identical to a
//    standalone k-flow run of the same spec with contention_flows pinned
//    to M — shrinking the tapped set never perturbs the flows kept.
//
// Memory: per-flow results are O(features × axis); transient per-worker
// state is O(batch + axis · features × window) per in-flight flow, so a
// 10k-flow run needs O(threads) flow pipelines resident, never O(M).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace linkpad::core {

/// One population experiment: M flows × one per-flow experiment template.
struct PopulationSpec {
  /// Per-flow experiment (scenario, adversary, features, sample-size axis,
  /// window budgets). `experiment.seed` is ignored: flow f runs with
  /// derive_point_seed(seed, f) so flows never share streams.
  ExperimentSpec experiment;

  /// Number of tapped flows M (each gets its own adversary pipeline).
  std::size_t flows = 1;

  /// Number of flows loading the shared path. 0 ⇒ `flows` (every tapped
  /// flow is also on the link). Each flow's hops then carry the wire rate
  /// of the OTHER contention_flows - 1 padded streams as cross traffic.
  /// The M-prefix contract compares runs at EQUAL contention: tapping
  /// fewer flows of the same deployed population (contention pinned) keeps
  /// the kept flows bit-identical.
  std::size_t contention_flows = 0;

  /// Per-hop utilization cap under population load (sim::add_cross_load).
  double max_hop_utilization = 0.95;

  /// A flow counts as "detected" at a sample size when its primary-feature
  /// detection rate reaches this threshold. 0.75 is halfway between
  /// coin-flipping and certainty — past it the adversary is clearly
  /// winning on that flow.
  double detection_threshold = 0.75;

  /// Materialize per-flow ExperimentResults in PopulationResult::per_flow.
  /// true keeps the full per-flow detail (memory O(M × features × axis));
  /// false drops each flow's result right after its rates and overhead are
  /// folded into the chunk aggregates, shrinking a run to O(M × axis)
  /// doubles — the knob for the millions-of-flows regime. Aggregates are
  /// bit-identical either way.
  bool keep_per_flow = true;

  std::uint64_t seed = 20030324;

  /// contention_flows, with 0 resolved to `flows`.
  [[nodiscard]] std::size_t effective_contention() const {
    return contention_flows == 0 ? flows : contention_flows;
  }

  /// The shared scenario under population cross-load. Each contention flow
  /// offers flow_wire_rate_bps: the analytic constant rate for the paper's
  /// policies, a MEASURED calibration rate for payload-reactive policies
  /// (whose wire load tracks the payload instead of the timer — the
  /// constant-wire-rate invariant the analytic form needs is gone). The
  /// calibration substream derives from (seed, kCalibrationSalt), so every
  /// flow sees the identical loaded path. Flow-independent; the engine
  /// computes it ONCE per run.
  [[nodiscard]] Scenario loaded_scenario() const;

  /// The fully resolved per-flow spec of flow `flow_id`: the shared
  /// scenario under population load, the template's adversary/axis, and
  /// the flow's derived seed. A standalone ExperimentEngine::run of this
  /// spec is bit-identical to slot `flow_id` of the population run.
  [[nodiscard]] ExperimentSpec flow_spec(std::size_t flow_id) const;

  /// Salt of the calibration substream — far outside any flow id, so the
  /// measurement never shares streams with a tapped flow.
  static constexpr std::uint64_t kCalibrationSalt = 0x63616c6962726174ULL;
};

/// One flow's overhead summary, recorded in-worker so the population
/// aggregates survive keep_per_flow = false.
struct FlowOverhead {
  bool has_cost = false;  ///< padding/wire/dummy accounting present
  double padding_bps = 0.0;
  double wire_bps = 0.0;
  double dummy_fraction = 0.0;
  bool has_delay = false;
  Seconds delay_p95 = 0.0;
};

/// Mergeable per-chunk aggregation state (DESIGN.md §2.9). A chunk covers a
/// contiguous, grain-aligned run of flow ids and stores, in flow order: one
/// detection rate per (axis point, flow), one overhead summary per flow,
/// and (optionally) the flows' full ExperimentResults. Merging adjacent
/// chunks is ordered concatenation — exact and associative — so the
/// reduction tree's shape can never perturb a bit; the order-sensitive
/// parts of the aggregation (P² sketches, float sums) run over the merged
/// flow-order sequence at finalize. Because the merge is pure
/// concatenation, a chunk is also the unit of process sharding: shard
/// files carry serialized ChunkAggregates (core/shard_io), and N-shard
/// merges reassemble exactly the sequence a single process would have
/// reduced.
struct ChunkAggregate {
  std::size_t first_flow = 0;
  std::vector<std::vector<double>> rates;  ///< [axis point][flow - first_flow]
  std::vector<FlowOverhead> overhead;      ///< [flow - first_flow]
  std::vector<ExperimentResult> per_flow;  ///< kept only when requested

  /// Flows this chunk covers (overhead has exactly one entry per flow).
  [[nodiscard]] std::size_t flow_count() const { return overhead.size(); }

  void merge(ChunkAggregate& right) {
    LINKPAD_EXPECTS(first_flow + overhead.size() == right.first_flow);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      rates[i].insert(rates[i].end(), right.rates[i].begin(),
                      right.rates[i].end());
    }
    overhead.insert(overhead.end(), right.overhead.begin(),
                    right.overhead.end());
    per_flow.insert(per_flow.end(),
                    std::make_move_iterator(right.per_flow.begin()),
                    std::make_move_iterator(right.per_flow.end()));
  }
};

/// The grain actually used for `flows` when SweepOptions::grain is
/// `grain_option` (0 ⇒ the flow-count-derived default clamp(M/128, 1, 32)).
/// The chunk partition is a pure function of (flows, grain) — never the
/// pool width or process count — which is what makes N-shard merges
/// bit-identical to the single-process run (DESIGN.md §2.10).
[[nodiscard]] std::size_t resolved_flow_grain(std::size_t flows,
                                              std::size_t grain_option);

/// Number of grain-aligned chunks in the (flows, grain) partition. Chunk c
/// covers flows [c·grain, min(flows, (c+1)·grain)).
[[nodiscard]] std::size_t population_chunk_count(std::size_t flows,
                                                 std::size_t grain);

/// Detection-rate quantiles over the population (stats::P2Quantile; exact
/// for M ≤ 5, documented ~1% sketch accuracy beyond).
struct RateQuantiles {
  double p05 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Population-level aggregation at one sample size (primary feature).
struct PopulationPoint {
  std::size_t sample_size = 0;
  /// Fraction of flows at or above the detection threshold.
  double detected_fraction = 0.0;
  double mean_rate = 0.0;
  /// Extremes start at the identity of min/max so a default-constructed
  /// point is safe to fold rates into (and obviously unfed if read early).
  double min_rate = std::numeric_limits<double>::infinity();
  double max_rate = -std::numeric_limits<double>::infinity();
  /// Flow with the highest detection rate — the deployment's worst case
  /// (ties break to the lowest flow id).
  std::size_t worst_flow = 0;
  RateQuantiles quantiles;
};

/// Outcome of a population run: per-flow experiment results (slot = flow
/// id; empty when PopulationSpec::keep_per_flow is false) plus one
/// aggregated point per sample size (ascending, mirroring
/// ExperimentResult::by_sample_size) and population-wide overhead
/// aggregates.
struct PopulationResult {
  std::vector<ExperimentResult> per_flow;
  std::vector<PopulationPoint> by_sample_size;

  /// Smallest axis sample size at which ANY flow crosses the detection
  /// threshold; empty when the whole population holds at every n.
  std::optional<std::size_t> first_detection_n;
  /// first_detection_n expressed as observation time: n PIATs ≈ n mean
  /// timer intervals of capture on the weakest flow.
  std::optional<Seconds> time_to_first_detection;

  /// Padding-cost aggregates across the population (equal priors, like the
  /// per-flow ExperimentResult::mean_* accessors): means over flows of each
  /// flow's expected overhead, and the worst per-flow p95 payload queueing
  /// delay (ties break to the lowest flow id). nullopt when any flow lacks
  /// backend accounting (live captures). Folded in flow-id order, so they
  /// are bit-identical at any thread count — and they survive
  /// keep_per_flow = false.
  std::optional<double> mean_padding_bps;
  std::optional<double> mean_wire_bps;
  std::optional<double> mean_dummy_fraction;
  std::optional<Seconds> worst_delay_p95;

  /// Number of flows the run executed (per_flow.size() when per-flow
  /// results were kept, still M when they were dropped).
  std::size_t flow_count = 0;

  [[nodiscard]] std::size_t flows() const { return flow_count; }

  /// Point at sample size `n`; throws if `n` was not on the axis.
  [[nodiscard]] const PopulationPoint& at_sample_size(std::size_t n) const;
};

/// Runs M per-flow experiments sharded across util::thread_pool and
/// aggregates them. Accepts SweepOptions (threads / batch_piats / grain /
/// progress, where progress counts finished flows); early_stop must be
/// unset — skipping flows would break the population aggregates.
/// Dispatch is chunked by construction (flows are many and cheap):
/// execution = kSerial forces the inline reference schedule, every other
/// policy runs grain-aligned chunks over the pool with one spec copy per
/// worker slot. grain = 0 picks a flow-count-derived default; any grain
/// yields bit-identical results.
class PopulationEngine {
 public:
  explicit PopulationEngine(const ExperimentBackend& backend = sim_backend(),
                            SweepOptions options = {});

  [[nodiscard]] PopulationResult run(const PopulationSpec& spec) const;

  /// Compute the chunk aggregates of a SUBSET of the (flows, grain)
  /// partition — the shard execution mode (core/shard_io). `chunk_ids`
  /// selects chunks (each < population_chunk_count, strictly ascending);
  /// slot i of the returned vector is chunk chunk_ids[i]. Every chunk is
  /// the identical pure function of (spec, chunk id) the full run
  /// computes, so reassembling all chunks of all shards and running the
  /// finalize once reproduces run() bit for bit. `on_chunk`, when set, is
  /// invoked under an internal lock — serialized, possibly out of chunk
  /// order — right after each chunk completes, with (chunk id, aggregate):
  /// the checkpoint hook a durable shard file hangs off.
  [[nodiscard]] std::vector<ChunkAggregate> run_chunks(
      const PopulationSpec& spec, const std::vector<std::size_t>& chunk_ids,
      const std::function<void(std::size_t, const ChunkAggregate&)>& on_chunk =
          {}) const;

  [[nodiscard]] const SweepOptions& options() const { return options_; }

 private:
  const ExperimentBackend* backend_;
  SweepOptions options_;
};

/// The order-sensitive tail of a population run: P² feeds, float sums,
/// min/max/worst-flow and the population-wide overhead fold over the merged
/// flow-order aggregate. Runs EXACTLY once per population — at the end of
/// PopulationEngine::run, or once in core::merge_shards after the last
/// shard is concatenated (running it per shard would feed the sketches
/// partial sequences). `all` must cover flows [0, flows) in order;
/// `mean_interval` is the padding policy's mean timer interval (converts
/// first_detection_n to observation time).
[[nodiscard]] PopulationResult finalize_population(ChunkAggregate all,
                                                   std::size_t flows,
                                                   const std::vector<std::size_t>& sample_sizes,
                                                   double detection_threshold,
                                                   Seconds mean_interval);

/// Run one population experiment on the default simulated backend.
PopulationResult run_population(const PopulationSpec& spec);

}  // namespace linkpad::core
