// PIAT trace persistence: record captures to disk and replay them later —
// the workflow the paper's Agilent analyzer dumps supported (capture once,
// analyze offline many times).
//
// Two formats:
//  * CSV  — one value per line, `#`-prefixed header comments; diff-able.
//  * LPT1 — little-endian binary: magic "LPT1", u64 count, f64[count];
//           compact and exact for large traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace linkpad::core {

/// A captured PIAT trace plus its provenance.
struct Trace {
  std::string description;          ///< free-form provenance line
  std::vector<double> piats;        ///< seconds
};

/// Write as CSV (overwrites). Throws std::runtime_error on I/O failure.
void save_trace_csv(const std::string& path, const Trace& trace);

/// Read CSV written by save_trace_csv (or any one-number-per-line file).
Trace load_trace_csv(const std::string& path);

/// Write the binary LPT1 format.
void save_trace_binary(const std::string& path, const Trace& trace);

/// Read the binary LPT1 format; validates the magic and count.
Trace load_trace_binary(const std::string& path);

}  // namespace linkpad::core
