#include "core/shard_io.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "classify/adversary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {
namespace {

// ------------------------------------------------------------ JSON writing
//
// The writer emits everything by hand: the schema is tiny, the output must
// be byte-deterministic, and no double ever goes through printf — numeric
// values are either exact integers or hex bit patterns.

constexpr char kHexDigits[] = "0123456789abcdef";

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c); break;
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

void append_hex_double(std::string& out, double x) {
  out.push_back('"');
  out += encode_double(x);
  out.push_back('"');
}

void append_bool(std::string& out, bool b) { out += b ? "true" : "false"; }

// ------------------------------------------------------------ JSON parsing
//
// A recursive-descent parser for the subset the shard format emits:
// objects, arrays, strings (basic escapes), integers (optional sign),
// true/false/null. Doubles never appear as JSON numbers — they are hex
// strings — so no float parsing exists to disagree across libcs.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  bool negative = false;
  std::uint64_t magnitude = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }

  [[nodiscard]] bool as_bool() const {
    require(Kind::kBool, "bool");
    return boolean;
  }

  [[nodiscard]] std::uint64_t as_u64() const {
    require(Kind::kNumber, "unsigned integer");
    if (negative) throw std::invalid_argument("shard_io: negative where unsigned expected");
    return magnitude;
  }

  [[nodiscard]] std::int64_t as_i64() const {
    require(Kind::kNumber, "integer");
    if (!negative) {
      if (magnitude > 0x7fffffffffffffffULL) {
        throw std::invalid_argument("shard_io: integer out of int64 range");
      }
      return static_cast<std::int64_t>(magnitude);
    }
    if (magnitude > 0x8000000000000000ULL) {
      throw std::invalid_argument("shard_io: integer out of int64 range");
    }
    return static_cast<std::int64_t>(~magnitude + 1ULL);
  }

  [[nodiscard]] std::size_t as_size() const {
    return static_cast<std::size_t>(as_u64());
  }

  [[nodiscard]] const std::string& as_string() const {
    require(Kind::kString, "string");
    return text;
  }

  [[nodiscard]] double as_hex_double() const { return decode_double(as_string()); }

  [[nodiscard]] const std::vector<JsonValue>& as_array() const {
    require(Kind::kArray, "array");
    return items;
  }

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    require(Kind::kObject, "object");
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] const JsonValue& at(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr) {
      throw std::invalid_argument("shard_io: missing key \"" + std::string(key) +
                                  "\"");
    }
    return *v;
  }

 private:
  void require(Kind expected, const char* what) const {
    if (kind != expected) {
      throw std::invalid_argument(std::string("shard_io: expected ") + what);
    }
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (i_ != s_.size()) {
      throw std::invalid_argument("shard_io: trailing characters after JSON value");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    std::ostringstream msg;
    msg << "shard_io: JSON parse error at offset " << i_ << ": " << what;
    throw std::invalid_argument(msg.str());
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (i_ >= s_.size() || s_[i_] != c) fail("unexpected character");
    ++i_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) return false;
    i_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f':
      case 'n': return parse_literal();
      default: return parse_number();
    }
  }

  JsonValue parse_literal() {
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
    } else if (consume_literal("null")) {
      v.kind = JsonValue::Kind::kNull;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    if (peek() == '-') {
      v.negative = true;
      ++i_;
    }
    if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9') fail("bad number");
    std::uint64_t mag = 0;
    while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') {
      std::uint64_t digit = static_cast<std::uint64_t>(s_[i_] - '0');
      if (mag > (0xffffffffffffffffULL - digit) / 10) fail("integer overflow");
      mag = mag * 10 + digit;
      ++i_;
    }
    if (i_ < s_.size() && (s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E')) {
      fail("float literal (doubles must be hex strings)");
    }
    v.magnitude = mag;
    return v;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      char c = s_[i_++];
      if (c == '"') break;
      if (c == '\\') {
        if (i_ >= s_.size()) fail("unterminated escape");
        char e = s_[i_++];
        switch (e) {
          case '"': v.text.push_back('"'); break;
          case '\\': v.text.push_back('\\'); break;
          case '/': v.text.push_back('/'); break;
          case 'n': v.text.push_back('\n'); break;
          case 't': v.text.push_back('\t'); break;
          case 'r': v.text.push_back('\r'); break;
          default: fail("unsupported escape");
        }
      } else {
        v.text.push_back(c);
      }
    }
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++i_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      JsonValue val = parse_value();
      v.members.emplace_back(std::move(key.text), std::move(val));
      skip_ws();
      char c = peek();
      ++i_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

// ---------------------------------------------- aggregate <-> JSON pieces

void append_bootstrap(std::string& out, const stats::BootstrapResult& ci) {
  out += "{\"estimate\":";
  append_hex_double(out, ci.estimate);
  out += ",\"lo\":";
  append_hex_double(out, ci.lo);
  out += ",\"hi\":";
  append_hex_double(out, ci.hi);
  out.push_back('}');
}

stats::BootstrapResult parse_bootstrap(const JsonValue& v) {
  stats::BootstrapResult ci;
  ci.estimate = v.at("estimate").as_hex_double();
  ci.lo = v.at("lo").as_hex_double();
  ci.hi = v.at("hi").as_hex_double();
  return ci;
}

void append_confusion(std::string& out, const classify::ConfusionMatrix& cm) {
  out += "{\"classes\":";
  append_u64(out, cm.num_classes());
  out += ",\"counts\":[";
  const auto n = static_cast<int>(cm.num_classes());
  bool first = true;
  for (int t = 0; t < n; ++t) {
    for (int p = 0; p < n; ++p) {
      if (!first) out.push_back(',');
      first = false;
      append_u64(out, cm.count(t, p));
    }
  }
  out += "]}";
}

classify::ConfusionMatrix parse_confusion(const JsonValue& v) {
  const auto classes = v.at("classes").as_size();
  if (classes == 0) throw std::invalid_argument("shard_io: confusion with 0 classes");
  classify::ConfusionMatrix cm(classes);
  const auto& counts = v.at("counts").as_array();
  if (counts.size() != classes * classes) {
    throw std::invalid_argument("shard_io: confusion counts size mismatch");
  }
  for (std::size_t t = 0; t < classes; ++t) {
    for (std::size_t p = 0; p < classes; ++p) {
      std::uint64_t c = counts[t * classes + p].as_u64();
      if (c != 0) {
        cm.add_count(static_cast<int>(t), static_cast<int>(p), c);
      }
    }
  }
  return cm;
}

void append_optional_hex(std::string& out, const std::optional<double>& x) {
  if (x.has_value()) {
    append_hex_double(out, *x);
  } else {
    out += "null";
  }
}

std::optional<double> parse_optional_hex(const JsonValue& v) {
  if (v.is_null()) return std::nullopt;
  return v.as_hex_double();
}

void append_feature_outcome(std::string& out, const FeatureOutcome& f) {
  out += "{\"feature\":";
  append_u64(out, static_cast<std::uint64_t>(f.feature));
  out += ",\"rate\":";
  append_hex_double(out, f.detection_rate);
  out += ",\"ci\":";
  append_bootstrap(out, f.ci);
  out += ",\"confusion\":";
  append_confusion(out, f.confusion);
  out += ",\"predicted\":";
  append_optional_hex(out, f.predicted);
  out.push_back('}');
}

FeatureOutcome parse_feature_outcome(const JsonValue& v) {
  FeatureOutcome f;
  const auto kind = v.at("feature").as_u64();
  if (kind > static_cast<std::uint64_t>(classify::FeatureKind::kInterquartileRange)) {
    throw std::invalid_argument("shard_io: unknown feature kind");
  }
  f.feature = static_cast<classify::FeatureKind>(kind);
  f.detection_rate = v.at("rate").as_hex_double();
  f.ci = parse_bootstrap(v.at("ci"));
  f.confusion = parse_confusion(v.at("confusion"));
  f.predicted = parse_optional_hex(v.at("predicted"));
  return f;
}

void append_cpd_outcome(std::string& out, const classify::CpdOutcome& c) {
  out += "{\"kind\":";
  append_u64(out, static_cast<std::uint64_t>(c.kind));
  out += ",\"threshold\":";
  append_hex_double(out, c.threshold);
  out += ",\"detected\":";
  append_bool(out, c.ttd.detected);
  out += ",\"n_at_detection\":";
  append_u64(out, c.ttd.n_at_detection);
  out += ",\"false_alarms\":";
  append_u64(out, c.ttd.false_alarms);
  out.push_back('}');
}

classify::CpdOutcome parse_cpd_outcome(const JsonValue& v) {
  classify::CpdOutcome c;
  const auto kind = v.at("kind").as_u64();
  if (kind > static_cast<std::uint64_t>(classify::CpdKind::kAdaptiveEwma)) {
    throw std::invalid_argument("shard_io: unknown cpd kind");
  }
  c.kind = static_cast<classify::CpdKind>(kind);
  c.threshold = v.at("threshold").as_hex_double();
  c.ttd.detected = v.at("detected").as_bool();
  c.ttd.n_at_detection = v.at("n_at_detection").as_size();
  c.ttd.false_alarms = v.at("false_alarms").as_size();
  return c;
}

void append_sample_point(std::string& out, const SampleSizePoint& p) {
  out += "{\"n\":";
  append_u64(out, p.sample_size);
  out += ",\"train\":";
  append_u64(out, p.train_windows);
  out += ",\"test\":";
  append_u64(out, p.test_windows);
  out += ",\"r_hat\":";
  append_hex_double(out, p.r_hat);
  out += ",\"per_feature\":[";
  for (std::size_t i = 0; i < p.per_feature.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_feature_outcome(out, p.per_feature[i]);
  }
  out += "],\"cpd\":[";
  for (std::size_t i = 0; i < p.cpd.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_cpd_outcome(out, p.cpd[i]);
  }
  out += "]}";
}

SampleSizePoint parse_sample_point(const JsonValue& v) {
  SampleSizePoint p;
  p.sample_size = v.at("n").as_size();
  p.train_windows = v.at("train").as_size();
  p.test_windows = v.at("test").as_size();
  p.r_hat = v.at("r_hat").as_hex_double();
  for (const auto& f : v.at("per_feature").as_array()) {
    p.per_feature.push_back(parse_feature_outcome(f));
  }
  for (const auto& c : v.at("cpd").as_array()) {
    p.cpd.push_back(parse_cpd_outcome(c));
  }
  return p;
}

void append_stream_overhead(std::string& out, const StreamOverhead& o) {
  out += "{\"payload\":";
  append_u64(out, o.payload_packets);
  out += ",\"dummy\":";
  append_u64(out, o.dummy_packets);
  out += ",\"suppressed\":";
  append_u64(out, o.suppressed_fires);
  out += ",\"wire_bps\":";
  append_hex_double(out, o.wire_bps);
  out += ",\"padding_bps\":";
  append_hex_double(out, o.padding_bps);
  out += ",\"dummy_fraction\":";
  append_hex_double(out, o.dummy_fraction);
  out += ",\"delay_mean\":";
  append_hex_double(out, o.delay_mean);
  out += ",\"delay_p50\":";
  append_hex_double(out, o.delay_p50);
  out += ",\"delay_p95\":";
  append_hex_double(out, o.delay_p95);
  out += ",\"delay_p99\":";
  append_hex_double(out, o.delay_p99);
  out.push_back('}');
}

StreamOverhead parse_stream_overhead(const JsonValue& v) {
  StreamOverhead o;
  o.payload_packets = v.at("payload").as_u64();
  o.dummy_packets = v.at("dummy").as_u64();
  o.suppressed_fires = v.at("suppressed").as_u64();
  o.wire_bps = v.at("wire_bps").as_hex_double();
  o.padding_bps = v.at("padding_bps").as_hex_double();
  o.dummy_fraction = v.at("dummy_fraction").as_hex_double();
  o.delay_mean = v.at("delay_mean").as_hex_double();
  o.delay_p50 = v.at("delay_p50").as_hex_double();
  o.delay_p95 = v.at("delay_p95").as_hex_double();
  o.delay_p99 = v.at("delay_p99").as_hex_double();
  return o;
}

void append_experiment_result(std::string& out, const ExperimentResult& r) {
  out += "{\"rate\":";
  append_hex_double(out, r.detection_rate);
  out += ",\"ci\":";
  append_bootstrap(out, r.ci);
  out += ",\"confusion\":";
  append_confusion(out, r.confusion);
  out += ",\"r_hat\":";
  append_hex_double(out, r.r_hat);
  out += ",\"predicted\":";
  append_optional_hex(out, r.predicted);
  out += ",\"piat\":[";
  append_hex_double(out, r.piat_mean_low);
  out.push_back(',');
  append_hex_double(out, r.piat_mean_high);
  out.push_back(',');
  append_hex_double(out, r.piat_var_low);
  out.push_back(',');
  append_hex_double(out, r.piat_var_high);
  out += "],\"per_feature\":[";
  for (std::size_t i = 0; i < r.per_feature.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_feature_outcome(out, r.per_feature[i]);
  }
  out += "],\"cpd\":[";
  for (std::size_t i = 0; i < r.cpd.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_cpd_outcome(out, r.cpd[i]);
  }
  out += "],\"by_sample_size\":[";
  for (std::size_t i = 0; i < r.by_sample_size.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_sample_point(out, r.by_sample_size[i]);
  }
  out += "],\"overhead_per_class\":[";
  for (std::size_t i = 0; i < r.overhead_per_class.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_stream_overhead(out, r.overhead_per_class[i]);
  }
  out += "]}";
}

ExperimentResult parse_experiment_result(const JsonValue& v) {
  ExperimentResult r;
  r.detection_rate = v.at("rate").as_hex_double();
  r.ci = parse_bootstrap(v.at("ci"));
  r.confusion = parse_confusion(v.at("confusion"));
  r.r_hat = v.at("r_hat").as_hex_double();
  r.predicted = parse_optional_hex(v.at("predicted"));
  const auto& piat = v.at("piat").as_array();
  if (piat.size() != 4) throw std::invalid_argument("shard_io: bad piat tuple");
  r.piat_mean_low = piat[0].as_hex_double();
  r.piat_mean_high = piat[1].as_hex_double();
  r.piat_var_low = piat[2].as_hex_double();
  r.piat_var_high = piat[3].as_hex_double();
  r.per_feature.clear();
  for (const auto& f : v.at("per_feature").as_array()) {
    r.per_feature.push_back(parse_feature_outcome(f));
  }
  for (const auto& c : v.at("cpd").as_array()) {
    r.cpd.push_back(parse_cpd_outcome(c));
  }
  for (const auto& p : v.at("by_sample_size").as_array()) {
    r.by_sample_size.push_back(parse_sample_point(p));
  }
  for (const auto& o : v.at("overhead_per_class").as_array()) {
    r.overhead_per_class.push_back(parse_stream_overhead(o));
  }
  return r;
}

void append_flow_overhead(std::string& out, const FlowOverhead& o) {
  out += "{\"has_cost\":";
  append_bool(out, o.has_cost);
  out += ",\"padding_bps\":";
  append_hex_double(out, o.padding_bps);
  out += ",\"wire_bps\":";
  append_hex_double(out, o.wire_bps);
  out += ",\"dummy_fraction\":";
  append_hex_double(out, o.dummy_fraction);
  out += ",\"has_delay\":";
  append_bool(out, o.has_delay);
  out += ",\"delay_p95\":";
  append_hex_double(out, o.delay_p95);
  out.push_back('}');
}

FlowOverhead parse_flow_overhead(const JsonValue& v) {
  FlowOverhead o;
  o.has_cost = v.at("has_cost").as_bool();
  o.padding_bps = v.at("padding_bps").as_hex_double();
  o.wire_bps = v.at("wire_bps").as_hex_double();
  o.dummy_fraction = v.at("dummy_fraction").as_hex_double();
  o.has_delay = v.at("has_delay").as_bool();
  o.delay_p95 = v.at("delay_p95").as_hex_double();
  return o;
}

void append_flow_cpd(std::string& out, const FlowCpd& c) {
  out += "{\"detected\":";
  append_bool(out, c.detected);
  out += ",\"n_at_detection\":";
  append_u64(out, c.n_at_detection);
  out += ",\"false_alarms\":";
  append_u64(out, c.false_alarms);
  out += ",\"threshold\":";
  append_hex_double(out, c.threshold);
  out.push_back('}');
}

FlowCpd parse_flow_cpd(const JsonValue& v) {
  FlowCpd c;
  c.detected = v.at("detected").as_bool();
  c.n_at_detection = v.at("n_at_detection").as_size();
  c.false_alarms = v.at("false_alarms").as_size();
  c.threshold = v.at("threshold").as_hex_double();
  return c;
}

ChunkAggregate parse_chunk_line(const JsonValue& v, std::size_t* chunk_id) {
  *chunk_id = v.at("chunk").as_size();
  ChunkAggregate chunk;
  chunk.first_flow = v.at("first_flow").as_size();
  for (const auto& row : v.at("rates").as_array()) {
    std::vector<double> rates;
    for (const auto& r : row.as_array()) rates.push_back(r.as_hex_double());
    chunk.rates.push_back(std::move(rates));
  }
  for (const auto& o : v.at("overhead").as_array()) {
    chunk.overhead.push_back(parse_flow_overhead(o));
  }
  for (const auto& k : v.at("cpd_kinds").as_array()) {
    const auto kind = k.as_u64();
    if (kind > static_cast<std::uint64_t>(classify::CpdKind::kAdaptiveEwma)) {
      throw std::invalid_argument("shard_io: unknown cpd kind in chunk");
    }
    chunk.cpd_kinds.push_back(static_cast<classify::CpdKind>(kind));
  }
  for (const auto& row : v.at("cpd").as_array()) {
    std::vector<FlowCpd> flows;
    for (const auto& c : row.as_array()) flows.push_back(parse_flow_cpd(c));
    chunk.cpd.push_back(std::move(flows));
  }
  for (const auto& r : v.at("per_flow").as_array()) {
    chunk.per_flow.push_back(parse_experiment_result(r));
  }
  return chunk;
}

// Validate one chunk against the (executed_flows, grain) partition and the
// header's axis; `chunk_id` must be the partition slot its first_flow
// implies. A sampled campaign partitions the m executed slots, not the
// deployed M.
void validate_chunk(const PopulationShard& header, std::size_t chunk_id,
                    const ChunkAggregate& chunk) {
  const std::size_t executed = header.executed_flows();
  const std::size_t total = population_chunk_count(executed, header.grain);
  if (chunk_id >= total) {
    throw std::invalid_argument("shard_io: chunk id beyond partition");
  }
  const std::size_t begin = chunk_id * header.grain;
  const std::size_t end = std::min(executed, begin + header.grain);
  if (chunk.first_flow != begin || chunk.flow_count() != end - begin) {
    throw std::invalid_argument("shard_io: chunk does not match the (flows, grain) partition");
  }
  if (chunk.rates.size() != header.sample_sizes.size()) {
    throw std::invalid_argument("shard_io: chunk rates axis mismatch");
  }
  for (const auto& row : chunk.rates) {
    if (row.size() != chunk.flow_count()) {
      throw std::invalid_argument("shard_io: chunk rates row size mismatch");
    }
  }
  if (chunk.cpd.size() != chunk.cpd_kinds.size()) {
    throw std::invalid_argument("shard_io: chunk cpd rows do not match cpd_kinds");
  }
  for (const auto& row : chunk.cpd) {
    if (row.size() != chunk.flow_count()) {
      throw std::invalid_argument("shard_io: chunk cpd row size mismatch");
    }
  }
  if (!chunk.per_flow.empty() && chunk.per_flow.size() != chunk.flow_count()) {
    throw std::invalid_argument("shard_io: chunk per_flow size mismatch");
  }
  if (header.keep_per_flow != !chunk.per_flow.empty()) {
    throw std::invalid_argument("shard_io: chunk keep_per_flow disagrees with header");
  }
}

PopulationShard parse_shard_header_line(const JsonValue& v) {
  PopulationShard shard;
  shard.version = v.at("linkpad_shard").as_u64();
  if (shard.version != kShardFormatVersion) {
    std::ostringstream msg;
    msg << "shard_io: shard format version " << shard.version
        << " is not the supported version " << kShardFormatVersion;
    throw std::invalid_argument(msg.str());
  }
  shard.shard_index = v.at("shard_index").as_size();
  shard.shard_count = v.at("shard_count").as_size();
  shard.flows = v.at("flows").as_size();
  shard.grain = v.at("grain").as_size();
  shard.sample_flows = v.at("sample_flows").as_size();
  shard.sample_round = v.at("sample_round").as_size();
  for (const auto& n : v.at("sample_sizes").as_array()) {
    shard.sample_sizes.push_back(n.as_size());
  }
  shard.detection_threshold = v.at("detection_threshold").as_hex_double();
  shard.mean_interval = v.at("mean_interval").as_hex_double();
  shard.seed = v.at("seed").as_u64();
  shard.keep_per_flow = v.at("keep_per_flow").as_bool();
  if (shard.shard_count == 0 || shard.shard_index >= shard.shard_count) {
    throw std::invalid_argument("shard_io: bad shard coordinates in header");
  }
  if (shard.flows == 0 || shard.grain == 0) {
    throw std::invalid_argument("shard_io: bad partition parameters in header");
  }
  if (shard.sample_flows == 0) {
    if (shard.sample_round != 0) {
      throw std::invalid_argument(
          "shard_io: exhaustive header carries a sample round");
    }
  } else if (shard.sample_flows > shard.flows ||
             shard.sample_round >
                 (shard.flows - shard.sample_flows) / shard.sample_flows) {
    throw std::invalid_argument("shard_io: bad sampled-subset fields in header");
  }
  return shard;
}

// Atomically replace `path` with `text`: write to `path`.tmp, flush, close,
// rename over the target. The rename is the commit point, so a reader (or a
// resume after SIGKILL) sees either the previous complete file or the new
// one — never a torn hybrid.
void atomic_write_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("shard_io: cannot open " + tmp + " for writing");
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("shard_io: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("shard_io: rename " + tmp + " -> " + path + " failed");
  }
}

}  // namespace

// ------------------------------------------------------------ exact doubles

std::string encode_double(double x) {
  auto bits = std::bit_cast<std::uint64_t>(x);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[bits & 0xF];
    bits >>= 4;
  }
  return out;
}

double decode_double(const std::string& hex) {
  if (hex.size() != 16) {
    throw std::invalid_argument("shard_io: hex double must be 16 digits, got \"" +
                                hex + "\"");
  }
  std::uint64_t bits = 0;
  for (char c : hex) {
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      throw std::invalid_argument("shard_io: bad hex digit in double \"" + hex +
                                  "\"");
    }
    bits = (bits << 4) | nibble;
  }
  return std::bit_cast<double>(bits);
}

// ------------------------------------------------------------- shard model

std::vector<std::size_t> PopulationShard::owned_chunk_ids() const {
  const std::size_t total = population_chunk_count(executed_flows(), grain);
  std::vector<std::size_t> ids;
  for (std::size_t c = shard_index; c < total; c += shard_count) ids.push_back(c);
  return ids;
}

bool PopulationShard::same_campaign(const PopulationShard& other) const {
  return version == other.version && shard_count == other.shard_count &&
         flows == other.flows && grain == other.grain &&
         sample_flows == other.sample_flows &&
         sample_round == other.sample_round &&
         sample_sizes == other.sample_sizes &&
         std::bit_cast<std::uint64_t>(detection_threshold) ==
             std::bit_cast<std::uint64_t>(other.detection_threshold) &&
         std::bit_cast<std::uint64_t>(mean_interval) ==
             std::bit_cast<std::uint64_t>(other.mean_interval) &&
         seed == other.seed && keep_per_flow == other.keep_per_flow;
}

PopulationShard make_shard_header(const PopulationSpec& spec,
                                  const SweepOptions& options) {
  LINKPAD_EXPECTS(options.shard_count >= 1);
  LINKPAD_EXPECTS(options.shard_index < options.shard_count);
  PopulationShard shard;
  shard.shard_index = options.shard_index;
  shard.shard_count = options.shard_count;
  shard.flows = spec.flows;
  shard.grain = resolved_flow_grain(spec.executed_flows(), options.grain);
  shard.sample_flows = spec.sample_flows;
  shard.sample_round = spec.sample_round;
  shard.sample_sizes = spec.experiment.sample_sizes();
  shard.detection_threshold = spec.detection_threshold;
  shard.mean_interval = spec.experiment.scenario.base.policy->mean_interval();
  shard.seed = spec.seed;
  shard.keep_per_flow = spec.keep_per_flow;
  return shard;
}

// ---------------------------------------------------------- serialization

std::string serialize_shard_header(const PopulationShard& shard) {
  std::string out = "{\"linkpad_shard\":";
  append_u64(out, shard.version);
  out += ",\"shard_index\":";
  append_u64(out, shard.shard_index);
  out += ",\"shard_count\":";
  append_u64(out, shard.shard_count);
  out += ",\"flows\":";
  append_u64(out, shard.flows);
  out += ",\"grain\":";
  append_u64(out, shard.grain);
  out += ",\"sample_flows\":";
  append_u64(out, shard.sample_flows);
  out += ",\"sample_round\":";
  append_u64(out, shard.sample_round);
  out += ",\"sample_sizes\":[";
  for (std::size_t i = 0; i < shard.sample_sizes.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_u64(out, shard.sample_sizes[i]);
  }
  out += "],\"detection_threshold\":";
  append_hex_double(out, shard.detection_threshold);
  out += ",\"mean_interval\":";
  append_hex_double(out, shard.mean_interval);
  out += ",\"seed\":";
  append_u64(out, shard.seed);
  out += ",\"keep_per_flow\":";
  append_bool(out, shard.keep_per_flow);
  out.push_back('}');
  return out;
}

std::string serialize_chunk(std::size_t chunk_id, const ChunkAggregate& chunk) {
  std::string out = "{\"chunk\":";
  append_u64(out, chunk_id);
  out += ",\"first_flow\":";
  append_u64(out, chunk.first_flow);
  out += ",\"rates\":[";
  for (std::size_t i = 0; i < chunk.rates.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('[');
    for (std::size_t j = 0; j < chunk.rates[i].size(); ++j) {
      if (j != 0) out.push_back(',');
      append_hex_double(out, chunk.rates[i][j]);
    }
    out.push_back(']');
  }
  out += "],\"overhead\":[";
  for (std::size_t i = 0; i < chunk.overhead.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_flow_overhead(out, chunk.overhead[i]);
  }
  out += "],\"cpd_kinds\":[";
  for (std::size_t i = 0; i < chunk.cpd_kinds.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_u64(out, static_cast<std::uint64_t>(chunk.cpd_kinds[i]));
  }
  out += "],\"cpd\":[";
  for (std::size_t i = 0; i < chunk.cpd.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('[');
    for (std::size_t j = 0; j < chunk.cpd[i].size(); ++j) {
      if (j != 0) out.push_back(',');
      append_flow_cpd(out, chunk.cpd[i][j]);
    }
    out.push_back(']');
  }
  out += "],\"per_flow\":[";
  for (std::size_t i = 0; i < chunk.per_flow.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_experiment_result(out, chunk.per_flow[i]);
  }
  out += "]}";
  return out;
}

std::string serialize_shard(const PopulationShard& shard) {
  std::string out = serialize_shard_header(shard);
  out.push_back('\n');
  for (const auto& chunk : shard.chunks) {
    out += serialize_chunk(chunk.first_flow / shard.grain, chunk);
    out.push_back('\n');
  }
  return out;
}

PopulationShard parse_shard(const std::string& text, bool tolerate_partial_tail) {
  // Split into lines; a file killed mid-append may lack the final newline.
  std::vector<std::string_view> lines;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    if (nl == std::string_view::npos) {
      lines.push_back(rest);
      break;
    }
    lines.push_back(rest.substr(0, nl));
    rest.remove_prefix(nl + 1);
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    throw std::invalid_argument("shard_io: empty shard file");
  }

  PopulationShard shard =
      parse_shard_header_line(JsonParser(lines.front()).parse());

  std::map<std::size_t, ChunkAggregate> chunks;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    std::size_t chunk_id = 0;
    ChunkAggregate chunk;
    try {
      chunk = parse_chunk_line(JsonParser(lines[i]).parse(), &chunk_id);
      validate_chunk(shard, chunk_id, chunk);
    } catch (const std::invalid_argument&) {
      if (tolerate_partial_tail && last) break;  // torn tail of a killed worker
      throw;
    }
    if (chunk_id % shard.shard_count != shard.shard_index) {
      throw std::invalid_argument("shard_io: chunk does not belong to this shard");
    }
    if (!chunks.emplace(chunk_id, std::move(chunk)).second) {
      throw std::invalid_argument("shard_io: duplicate chunk in shard file");
    }
  }

  shard.chunks.reserve(chunks.size());
  for (auto& [id, chunk] : chunks) shard.chunks.push_back(std::move(chunk));
  return shard;
}

void write_shard_file(const std::string& path, const PopulationShard& shard) {
  atomic_write_file(path, serialize_shard(shard));
}

PopulationShard read_shard_file(const std::string& path,
                                bool tolerate_partial_tail) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("shard_io: cannot open shard file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_shard(buf.str(), tolerate_partial_tail);
}

// -------------------------------------------------------------- execution

PopulationShard run_population_shard(const PopulationSpec& spec,
                                     const ExperimentBackend& backend,
                                     const SweepOptions& options,
                                     const ShardRunOptions& durability) {
  PopulationShard shard = make_shard_header(spec, options);

  // Chunks already durable from a previous (possibly killed) run, plus
  // their serialized lines so checkpoint rewrites reuse identical bytes.
  std::map<std::size_t, ChunkAggregate> completed;
  std::map<std::size_t, std::string> lines;
  if (durability.resume && !durability.checkpoint_path.empty()) {
    std::ifstream probe(durability.checkpoint_path, std::ios::binary);
    if (probe) {
      probe.close();
      PopulationShard prev =
          read_shard_file(durability.checkpoint_path, /*tolerate_partial_tail=*/true);
      if (!prev.same_campaign(shard) || prev.shard_index != shard.shard_index) {
        throw std::invalid_argument(
            "shard_io: checkpoint " + durability.checkpoint_path +
            " belongs to a different campaign or shard — refusing to resume");
      }
      for (auto& chunk : prev.chunks) {
        const std::size_t id = chunk.first_flow / shard.grain;
        lines.emplace(id, serialize_chunk(id, chunk));
        completed.emplace(id, std::move(chunk));
      }
    }
  }

  std::vector<std::size_t> missing;
  for (std::size_t id : shard.owned_chunk_ids()) {
    if (completed.find(id) == completed.end()) missing.push_back(id);
  }

  const std::string header_line = serialize_shard_header(shard);
  const std::size_t owned_total = shard.owned_chunk_ids().size();
  std::size_t chunks_done = completed.size();  // resumed chunks count as done
  std::function<void(std::size_t, const ChunkAggregate&)> on_chunk;
  if (!durability.checkpoint_path.empty() || durability.chunk_progress) {
    // run_chunks serializes on_chunk invocations, so the maps need no lock.
    // Rewriting the whole file per chunk keeps the on-disk bytes a pure
    // function of the completed set: sorted by chunk id, independent of
    // completion order, so kill + resume converges to the uninterrupted
    // file byte for byte. chunk_progress fires AFTER the checkpoint commit,
    // so a reported count is always durable.
    on_chunk = [&](std::size_t id, const ChunkAggregate& chunk) {
      if (!durability.checkpoint_path.empty()) {
        lines.emplace(id, serialize_chunk(id, chunk));
        std::string text = header_line;
        text.push_back('\n');
        for (const auto& [cid, line] : lines) {
          (void)cid;
          text += line;
          text.push_back('\n');
        }
        atomic_write_file(durability.checkpoint_path, text);
      }
      ++chunks_done;
      if (durability.chunk_progress) {
        durability.chunk_progress(chunks_done, owned_total);
      }
    };
  }
  if (durability.chunk_progress) {
    // Report the resumed baseline immediately so a restarted worker is
    // never silent before its first fresh chunk.
    durability.chunk_progress(chunks_done, owned_total);
  }

  SweepOptions engine_options = options;
  engine_options.shard_index = 0;  // run_chunks takes explicit ids
  engine_options.shard_count = 1;
  PopulationEngine engine(backend, std::move(engine_options));
  std::vector<ChunkAggregate> fresh = engine.run_chunks(spec, missing, on_chunk);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    completed.emplace(missing[i], std::move(fresh[i]));
  }

  shard.chunks.reserve(completed.size());
  for (auto& [id, chunk] : completed) {
    (void)id;
    shard.chunks.push_back(std::move(chunk));
  }
  if (!durability.checkpoint_path.empty()) {
    // Cover the nothing-missing path (pure resume) and guarantee the final
    // file exists even for a shard that owns zero chunks.
    write_shard_file(durability.checkpoint_path, shard);
  }
  return shard;
}

PopulationShard run_population_shard(const PopulationSpec& spec,
                                     const SweepOptions& options,
                                     const ShardRunOptions& durability) {
  return run_population_shard(spec, sim_backend(), options, durability);
}

// ------------------------------------------------------------------ merge

PopulationResult merge_shards(std::vector<PopulationShard> shards) {
  LINKPAD_EXPECTS(!shards.empty());
  const PopulationShard& head = shards.front();
  for (const auto& shard : shards) {
    if (!shard.same_campaign(head)) {
      throw std::invalid_argument(
          "shard_io: shards describe different campaigns — refusing to merge");
    }
  }

  // Reassemble the full chunk sequence in execution order and check it
  // covers the (executed_flows, grain) partition exactly once.
  std::vector<ChunkAggregate> chunks;
  for (auto& shard : shards) {
    for (auto& chunk : shard.chunks) chunks.push_back(std::move(chunk));
  }
  std::sort(chunks.begin(), chunks.end(),
            [](const ChunkAggregate& a, const ChunkAggregate& b) {
              return a.first_flow < b.first_flow;
            });
  std::size_t expect_flow = 0;
  for (const auto& chunk : chunks) {
    if (chunk.first_flow != expect_flow) {
      std::ostringstream msg;
      msg << "shard_io: merge needs the chunk starting at flow " << expect_flow
          << " but the next chunk starts at flow " << chunk.first_flow
          << " — a shard is missing or incomplete";
      throw std::invalid_argument(msg.str());
    }
    expect_flow += chunk.flow_count();
  }
  const std::size_t executed = head.executed_flows();
  if (expect_flow != executed) {
    std::ostringstream msg;
    msg << "shard_io: merged chunks cover " << expect_flow << " of "
        << executed << " flows — a shard is missing or incomplete";
    throw std::invalid_argument(msg.str());
  }

  // Same deterministic reduction + single finalize as the 1-process run.
  ChunkAggregate all = util::tree_reduce(
      std::move(chunks),
      [](ChunkAggregate& left, ChunkAggregate& right) { left.merge(right); });
  std::optional<SampledFinalize> sampled;
  if (head.sample_flows != 0) {
    sampled.emplace();
    sampled->population = head.flows;
    sampled->flow_ids = sampled_flow_ids(head.flows, head.sample_flows,
                                         head.sample_round, head.seed);
  }
  return finalize_population(std::move(all), executed, head.sample_sizes,
                             head.detection_threshold, head.mean_interval,
                             sampled ? &*sampled : nullptr);
}

PopulationResult merge_shard_files(const std::vector<std::string>& paths) {
  std::vector<PopulationShard> shards;
  shards.reserve(paths.size());
  for (const auto& path : paths) shards.push_back(read_shard_file(path));
  return merge_shards(std::move(shards));
}

// ------------------------------------------------------- stats state JSON

std::string serialize_quantile_state(const stats::P2Quantile::State& state) {
  std::string out = "{\"q\":";
  append_hex_double(out, state.quantile);
  out += ",\"count\":";
  append_u64(out, state.count);
  const std::pair<const char*, const std::array<double, 5>*> arrays[] = {
      {"heights", &state.heights},
      {"positions", &state.positions},
      {"desired", &state.desired},
      {"rate", &state.rate},
  };
  for (const auto& [name, values] : arrays) {
    out += ",\"";
    out += name;
    out += "\":[";
    for (std::size_t i = 0; i < values->size(); ++i) {
      if (i != 0) out.push_back(',');
      append_hex_double(out, (*values)[i]);
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

stats::P2Quantile::State parse_quantile_state(const std::string& text) {
  const JsonValue v = JsonParser(text).parse();
  stats::P2Quantile::State state;
  state.quantile = v.at("q").as_hex_double();
  state.count = v.at("count").as_size();
  const auto fill = [&v](const char* key, std::array<double, 5>& dst) {
    const auto& arr = v.at(key).as_array();
    if (arr.size() != dst.size()) {
      throw std::invalid_argument("shard_io: P2 marker array size mismatch");
    }
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = arr[i].as_hex_double();
  };
  fill("heights", state.heights);
  fill("positions", state.positions);
  fill("desired", state.desired);
  fill("rate", state.rate);
  return state;
}

std::string serialize_running_stats(const stats::RunningStats::State& state) {
  std::string out = "{\"count\":";
  append_u64(out, state.count);
  out += ",\"mean\":";
  append_hex_double(out, state.mean);
  out += ",\"m2\":";
  append_hex_double(out, state.m2);
  out += ",\"m3\":";
  append_hex_double(out, state.m3);
  out += ",\"m4\":";
  append_hex_double(out, state.m4);
  out += ",\"min\":";
  append_hex_double(out, state.min);
  out += ",\"max\":";
  append_hex_double(out, state.max);
  out.push_back('}');
  return out;
}

stats::RunningStats::State parse_running_stats(const std::string& text) {
  const JsonValue v = JsonParser(text).parse();
  stats::RunningStats::State state;
  state.count = v.at("count").as_size();
  state.mean = v.at("mean").as_hex_double();
  state.m2 = v.at("m2").as_hex_double();
  state.m3 = v.at("m3").as_hex_double();
  state.m4 = v.at("m4").as_hex_double();
  state.min = v.at("min").as_hex_double();
  state.max = v.at("max").as_hex_double();
  return state;
}

std::string serialize_histogram(const stats::Histogram& h) {
  std::string out = "{\"lo\":";
  append_hex_double(out, h.lo());
  out += ",\"hi\":";
  append_hex_double(out, h.hi());
  out += ",\"counts\":[";
  for (std::size_t i = 0; i < h.bins(); ++i) {
    if (i != 0) out.push_back(',');
    append_u64(out, h.count(i));
  }
  out += "],\"underflow\":";
  append_u64(out, h.underflow());
  out += ",\"overflow\":";
  append_u64(out, h.overflow());
  out.push_back('}');
  return out;
}

stats::Histogram parse_histogram(const std::string& text) {
  const JsonValue v = JsonParser(text).parse();
  std::vector<std::uint64_t> counts;
  for (const auto& c : v.at("counts").as_array()) counts.push_back(c.as_u64());
  return stats::Histogram::from_state(
      v.at("lo").as_hex_double(), v.at("hi").as_hex_double(), std::move(counts),
      v.at("underflow").as_u64(), v.at("overflow").as_u64());
}

std::string serialize_sparse_histogram(const stats::SparseHistogram& h) {
  std::string out = "{\"bin_width\":";
  append_hex_double(out, h.bin_width());
  out += ",\"cells\":[";
  bool first = true;
  for (const auto& [bin, count] : h.cells()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('[');
    append_i64(out, bin);
    out.push_back(',');
    append_u64(out, count);
    out.push_back(']');
  }
  out += "]}";
  return out;
}

stats::SparseHistogram parse_sparse_histogram(const std::string& text) {
  const JsonValue v = JsonParser(text).parse();
  std::vector<std::pair<std::int64_t, std::uint64_t>> cells;
  for (const auto& cell : v.at("cells").as_array()) {
    const auto& pair = cell.as_array();
    if (pair.size() != 2) {
      throw std::invalid_argument("shard_io: sparse histogram cell must be [bin, count]");
    }
    cells.emplace_back(pair[0].as_i64(), pair[1].as_u64());
  }
  return stats::SparseHistogram::from_cells(v.at("bin_width").as_hex_double(),
                                            cells);
}

// ------------------------------------------------------------- result JSON

namespace {

// Hex bits (authoritative) + a short decimal echo derived from the same
// bits (readable). The echo uses a fixed %.17g so equal bits always render
// equal bytes within one build.
void append_result_double(std::string& out, double x) {
  out += "{\"bits\":";
  append_hex_double(out, x);
  out += ",\"value\":";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  append_json_string(out, buf);
  out.push_back('}');
}

void append_optional_result_double(std::string& out,
                                   const std::optional<double>& x) {
  if (x.has_value()) {
    append_result_double(out, *x);
  } else {
    out += "null";
  }
}

void append_population_estimate(std::string& out,
                                const PopulationEstimate& est) {
  out += "{\"point\": ";
  append_result_double(out, est.point);
  out += ", \"lo\": ";
  append_result_double(out, est.lo);
  out += ", \"hi\": ";
  append_result_double(out, est.hi);
  out += ", \"m\": ";
  append_u64(out, est.m);
  out += ", \"M\": ";
  append_u64(out, est.M);
  out.push_back('}');
}

}  // namespace

std::string population_result_json(const PopulationResult& result) {
  std::string out = "{\n  \"flows\": ";
  append_u64(out, result.flow_count);
  out += ",\n  \"first_detection_n\": ";
  if (result.first_detection_n.has_value()) {
    append_u64(out, *result.first_detection_n);
  } else {
    out += "null";
  }
  out += ",\n  \"time_to_first_detection\": ";
  append_optional_result_double(out, result.time_to_first_detection);
  out += ",\n  \"mean_padding_bps\": ";
  append_optional_result_double(out, result.mean_padding_bps);
  out += ",\n  \"mean_wire_bps\": ";
  append_optional_result_double(out, result.mean_wire_bps);
  out += ",\n  \"mean_dummy_fraction\": ";
  append_optional_result_double(out, result.mean_dummy_fraction);
  out += ",\n  \"worst_delay_p95\": ";
  append_optional_result_double(out, result.worst_delay_p95);
  out += ",\n  \"sampled_from\": ";
  append_u64(out, result.sampled_from);
  out += ",\n  \"estimates\": ";
  if (result.estimates.empty()) {
    out += "null";
  } else {
    out.push_back('[');
    for (std::size_t i = 0; i < result.estimates.size(); ++i) {
      const SampledEstimates& est = result.estimates[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"n\": ";
      append_u64(out, est.sample_size);
      out += ", \"detected_fraction\": ";
      append_population_estimate(out, est.detected_fraction);
      out += ", \"mean_rate\": ";
      append_population_estimate(out, est.mean_rate);
      out += ", \"dkw_epsilon\": ";
      append_result_double(out, est.dkw_epsilon);
      out.push_back('}');
    }
    out += "\n  ]";
  }
  out += ",\n  \"dummy_fraction_estimate\": ";
  if (result.dummy_fraction_estimate.has_value()) {
    append_population_estimate(out, *result.dummy_fraction_estimate);
  } else {
    out += "null";
  }
  out += ",\n  \"by_sample_size\": [";
  for (std::size_t i = 0; i < result.by_sample_size.size(); ++i) {
    const PopulationPoint& p = result.by_sample_size[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"n\": ";
    append_u64(out, p.sample_size);
    out += ", \"detected_fraction\": ";
    append_result_double(out, p.detected_fraction);
    out += ", \"mean_rate\": ";
    append_result_double(out, p.mean_rate);
    out += ", \"min_rate\": ";
    append_result_double(out, p.min_rate);
    out += ", \"max_rate\": ";
    append_result_double(out, p.max_rate);
    out += ", \"worst_flow\": ";
    append_u64(out, p.worst_flow);
    out += ", \"quantiles\": [";
    const double qs[] = {p.quantiles.p05, p.quantiles.p25, p.quantiles.median,
                         p.quantiles.p75, p.quantiles.p95};
    for (std::size_t j = 0; j < 5; ++j) {
      if (j != 0) out += ", ";
      append_result_double(out, qs[j]);
    }
    out += "]}";
  }
  out += result.by_sample_size.empty() ? "]" : "\n  ]";
  out += ",\n  \"cpd\": ";
  if (result.cpd.empty()) {
    out += "null";
  } else {
    out.push_back('[');
    for (std::size_t i = 0; i < result.cpd.size(); ++i) {
      const CpdPopulationPoint& p = result.cpd[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"kind\": \"";
      out += classify::cpd_kind_name(p.kind);
      out += "\", \"mean_threshold\": ";
      append_result_double(out, p.mean_threshold);
      out += ", \"detected_fraction\": ";
      append_result_double(out, p.detected_fraction);
      out += ", \"mean_n_at_detection\": ";
      append_result_double(out, p.mean_n_at_detection);
      out += ", \"min_n_at_detection\": ";
      append_u64(out, p.min_n_at_detection);
      out += ", \"first_exposed_flow\": ";
      append_u64(out, p.first_exposed_flow);
      out += ", \"min_time_to_detection\": ";
      append_optional_result_double(out, p.min_time_to_detection);
      out += ", \"mean_false_alarms\": ";
      append_result_double(out, p.mean_false_alarms);
      out.push_back('}');
    }
    out += "\n  ]";
  }
  out += ",\n  \"per_flow_rates\": ";
  if (result.per_flow.empty()) {
    out += "null";
  } else {
    out.push_back('[');
    for (std::size_t i = 0; i < result.per_flow.size(); ++i) {
      if (i != 0) out.push_back(',');
      out.push_back('"');
      out += encode_double(result.per_flow[i].detection_rate);
      out.push_back('"');
    }
    out.push_back(']');
  }
  out += "\n}\n";
  return out;
}

}  // namespace linkpad::core
