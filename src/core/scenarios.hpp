// Calibrated scenario presets reproducing the paper's four experimental
// environments (Sec 5). All constants trace to the calibration section of
// DESIGN.md; the paper-visible anchors are:
//   * timer mean τ = 10 ms, payload rates {10, 40} pps, equal priors;
//   * zero-cross lab: σ(PIAT) ≈ 10 µs, r_CIT ≈ 1.3 (Fig 4);
//   * lab + cross traffic: shared 1 Gbit/s output link, utilization is the
//     Fig 6 x-axis;
//   * campus: 4 routers, light diurnal load (Fig 8a);
//   * WAN: 15 routers, one congested peering hop, strong diurnal load
//     (Fig 8b, path "spans over 15 routers").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/diurnal.hpp"
#include "sim/testbed.hpp"
#include "sim/timer_policy.hpp"

namespace linkpad::core {

/// Paper-wide constants.
namespace constants {
/// Mean timer interval E(T) = 10 ms (Sec 5).
inline constexpr Seconds kTau = 10e-3;
/// Low / high payload rates (Sec 5).
inline constexpr PacketsPerSecond kRateLow = 10.0;
inline constexpr PacketsPerSecond kRateHigh = 40.0;
/// Constant wire packet size for the padded stream.
inline constexpr int kWireBytes = 1000;
}  // namespace constants

/// A named experimental environment: one TestbedConfig template plus the
/// payload-rate classes the adversary must distinguish.
struct Scenario {
  std::string name;
  std::vector<PacketsPerSecond> payload_rates;  ///< one class per rate
  sim::TestbedConfig base;  ///< payload_rate is overwritten per class

  /// TestbedConfig for class index c.
  [[nodiscard]] sim::TestbedConfig config_for(std::size_t c) const;
};

/// CIT policy at the paper's τ.
std::shared_ptr<const sim::TimerPolicy> make_cit(Seconds tau = constants::kTau);

/// VIT-normal policy at the paper's τ with interval std-dev sigma.
std::shared_ptr<const sim::TimerPolicy> make_vit(Seconds sigma,
                                                 Seconds tau = constants::kTau);

/// Laboratory, no cross traffic, tap right at GW1's output (Sec 5.1.1) —
/// the adversary's best case.
Scenario lab_zero_cross(std::shared_ptr<const sim::TimerPolicy> policy);

/// Laboratory with cross traffic through the shared router output link at
/// the given utilization (Sec 5.2 / Fig 6). Tap after the router.
Scenario lab_cross_traffic(std::shared_ptr<const sim::TimerPolicy> policy,
                           double utilization);

/// Texas A&M campus path at a given hour of day (Sec 5.3 / Fig 8a):
/// 4 enterprise hops with a light diurnal load.
Scenario campus(std::shared_ptr<const sim::TimerPolicy> policy, double hour);

/// Ohio State → Texas A&M Internet path at a given hour (Sec 5.3 / Fig 8b):
/// 15 hops — edge, one congested peering bottleneck, fast backbone.
Scenario wan(std::shared_ptr<const sim::TimerPolicy> policy, double hour);

/// The diurnal profiles used by campus()/wan() (exposed for plots/tests).
const sim::DiurnalProfile& campus_profile();
const sim::DiurnalProfile& wan_profile();

/// Multi-rate extension (paper Sec 6): m equally spaced rates in
/// [rate_lo, rate_hi] on the zero-cross lab setup.
Scenario lab_multirate(std::shared_ptr<const sim::TimerPolicy> policy,
                       std::size_t m, PacketsPerSecond rate_lo = 10.0,
                       PacketsPerSecond rate_hi = 40.0);

/// Offered wire rate (bits/sec) of one padded flow of this scenario —
/// constant across classes because the padding timer, not the payload,
/// paces the wire (sim::padded_wire_rate_bps).
[[nodiscard]] double padded_wire_rate_bps(const Scenario& scenario);

/// `scenario` with the mutual cross traffic of `other_flows` further padded
/// flows multiplexed into every hop before the tap — the population view of
/// the paper's Sec 6 deployment guidelines: each user's flow crosses a path
/// also carrying everyone else's constant-rate padded streams. Per-hop
/// utilization saturates at `max_hop_utilization` (see sim::add_cross_load).
/// A scenario without hops (tap at GW1's output) is returned unchanged:
/// there is no shared link for the population to contend on.
[[nodiscard]] Scenario with_population_load(Scenario scenario,
                                            std::size_t other_flows,
                                            double max_hop_utilization = 0.95);

}  // namespace linkpad::core
