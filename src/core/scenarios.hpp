// Calibrated scenario presets reproducing the paper's four experimental
// environments (Sec 5). All constants trace to the calibration section of
// DESIGN.md; the paper-visible anchors are:
//   * timer mean τ = 10 ms, payload rates {10, 40} pps, equal priors;
//   * zero-cross lab: σ(PIAT) ≈ 10 µs, r_CIT ≈ 1.3 (Fig 4);
//   * lab + cross traffic: shared 1 Gbit/s output link, utilization is the
//     Fig 6 x-axis;
//   * campus: 4 routers, light diurnal load (Fig 8a);
//   * WAN: 15 routers, one congested peering hop, strong diurnal load
//     (Fig 8b, path "spans over 15 routers").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/diurnal.hpp"
#include "sim/testbed.hpp"
#include "sim/timer_policy.hpp"

namespace linkpad::core {

/// Paper-wide constants.
namespace constants {
/// Mean timer interval E(T) = 10 ms (Sec 5).
inline constexpr Seconds kTau = 10e-3;
/// Low / high payload rates (Sec 5).
inline constexpr PacketsPerSecond kRateLow = 10.0;
inline constexpr PacketsPerSecond kRateHigh = 40.0;
/// Constant wire packet size for the padded stream.
inline constexpr int kWireBytes = 1000;
}  // namespace constants

/// A named experimental environment: one TestbedConfig template plus the
/// payload-rate classes the adversary must distinguish.
struct Scenario {
  std::string name;
  std::vector<PacketsPerSecond> payload_rates;  ///< one class per rate
  sim::TestbedConfig base;  ///< payload_rate is overwritten per class

  /// TestbedConfig for class index c.
  [[nodiscard]] sim::TestbedConfig config_for(std::size_t c) const;
};

/// CIT policy at the paper's τ.
std::shared_ptr<const sim::TimerPolicy> make_cit(Seconds tau = constants::kTau);

/// VIT-normal policy at the paper's τ with interval std-dev sigma.
std::shared_ptr<const sim::TimerPolicy> make_vit(Seconds sigma,
                                                 Seconds tau = constants::kTau);

// Defense-frontier policies (payload-reactive; DESIGN.md §2.8). All pace
// like CIT at τ — what changes is WHEN a fire may put a dummy on the wire.

/// On/off (idle-stop) padding: dummies only within `hangover` of payload
/// activity.
std::shared_ptr<const sim::TimerPolicy> make_onoff(
    Seconds hangover, Seconds tau = constants::kTau);

/// Token-bucket budgeted padding: emitted dummies capped at
/// `dummy_budget_per_sec` (burst `burst`).
std::shared_ptr<const sim::TimerPolicy> make_budgeted(
    double dummy_budget_per_sec, double burst = 5.0,
    Seconds tau = constants::kTau);

/// Adaptive-gap padding: designed gap shrinks from `base_gap` toward
/// `min_gap` as the gateway queue builds.
std::shared_ptr<const sim::TimerPolicy> make_adaptive(
    Seconds base_gap, double gain, Seconds min_gap);

/// Laboratory, no cross traffic, tap right at GW1's output (Sec 5.1.1) —
/// the adversary's best case.
Scenario lab_zero_cross(std::shared_ptr<const sim::TimerPolicy> policy);

/// Laboratory with cross traffic through the shared router output link at
/// the given utilization (Sec 5.2 / Fig 6). Tap after the router.
Scenario lab_cross_traffic(std::shared_ptr<const sim::TimerPolicy> policy,
                           double utilization);

/// Texas A&M campus path at a given hour of day (Sec 5.3 / Fig 8a):
/// 4 enterprise hops with a light diurnal load.
Scenario campus(std::shared_ptr<const sim::TimerPolicy> policy, double hour);

/// Ohio State → Texas A&M Internet path at a given hour (Sec 5.3 / Fig 8b):
/// 15 hops — edge, one congested peering bottleneck, fast backbone.
Scenario wan(std::shared_ptr<const sim::TimerPolicy> policy, double hour);

/// The diurnal profiles used by campus()/wan() (exposed for plots/tests).
const sim::DiurnalProfile& campus_profile();
const sim::DiurnalProfile& wan_profile();

/// Multi-rate extension (paper Sec 6): m equally spaced rates in
/// [rate_lo, rate_hi] on the zero-cross lab setup.
Scenario lab_multirate(std::shared_ptr<const sim::TimerPolicy> policy,
                       std::size_t m, PacketsPerSecond rate_lo = 10.0,
                       PacketsPerSecond rate_hi = 40.0);

/// Offered wire rate (bits/sec) of one padded flow of this scenario —
/// constant across classes because the padding timer, not the payload,
/// paces the wire (sim::padded_wire_rate_bps). For a payload-reactive
/// policy this is only the DESIGNED idle pacing — the realized rate can
/// land on either side (budgeted/on-off emit less, adaptive-gap emits
/// MORE whenever bursts shrink the gap); use flow_wire_rate_bps then.
[[nodiscard]] double padded_wire_rate_bps(const Scenario& scenario);

/// Offered wire rate (bits/sec) of one padded flow, truthful for EVERY
/// policy: the analytic 1/τ rate when the policy keeps the constant-wire-
/// rate invariant, otherwise MEASURED from a short calibration capture per
/// class and averaged across classes (a contention flow's payload class is
/// hidden; equal priors). Deterministic in `measure_seed`.
[[nodiscard]] double flow_wire_rate_bps(const Scenario& scenario,
                                        std::uint64_t measure_seed,
                                        std::size_t piats_per_class = 2000);

/// `scenario` with the mutual cross traffic of `other_flows` further padded
/// flows multiplexed into every hop before the tap — the population view of
/// the paper's Sec 6 deployment guidelines: each user's flow crosses a path
/// also carrying everyone else's padded streams. Per-hop utilization
/// saturates at `max_hop_utilization` (see sim::add_cross_load). A scenario
/// without hops (tap at GW1's output) is returned unchanged: there is no
/// shared link for the population to contend on.
///
/// `per_flow_bps` is the load each of the other flows offers; negative ⇒
/// derive the analytic constant rate, which REQUIRES a non-reactive policy
/// (payload-reactive policies broke that invariant — pass
/// flow_wire_rate_bps explicitly, as PopulationSpec does).
[[nodiscard]] Scenario with_population_load(Scenario scenario,
                                            std::size_t other_flows,
                                            double max_hop_utilization = 0.95,
                                            double per_flow_bps = -1.0);

}  // namespace linkpad::core
