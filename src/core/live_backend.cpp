#include "core/live_backend.hpp"

#include <algorithm>
#include <cmath>

#include "live/live_testbed.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::core {

namespace {

class LivePiatSource final : public PiatSource {
 public:
  LivePiatSource(live::LiveGatewayConfig config, LiveBackendOptions options)
      : config_(config), options_(options) {}

  std::size_t collect(std::size_t count, std::vector<double>& out) override {
    std::size_t appended = 0;
    while (appended < count) {
      const std::size_t want = count - appended;
      live::LiveGatewayConfig run = config_;
      // One capture of p packets yields at most p-1 PIATs.
      run.packet_count = options_.batch_packets != 0
                             ? std::max<std::size_t>(options_.batch_packets, 2)
                             : want + 1;
      // Each capture must draw fresh designed randomness (VIT intervals).
      run.seed = util::SplitMix64::mix(config_.seed + capture_index_++);
      const auto result = live::run_live_experiment(run, options_.timeout_ms);
      if (result.piats.empty()) break;  // host refused to deliver; exhausted
      const std::size_t take = std::min(want, result.piats.size());
      out.insert(out.end(), result.piats.begin(),
                 result.piats.begin() + static_cast<std::ptrdiff_t>(take));
      appended += take;
      if (result.piats.size() < run.packet_count - 1 && take == result.piats.size()) {
        // Short capture (timeout / drops): serve what arrived, then stop
        // rather than spin on a degraded host.
        break;
      }
    }
    return appended;
  }

  [[nodiscard]] std::string name() const override { return "live"; }

 private:
  live::LiveGatewayConfig config_;
  LiveBackendOptions options_;
  std::uint64_t capture_index_ = 0;
};

class LiveBackend final : public ExperimentBackend {
 public:
  explicit LiveBackend(LiveBackendOptions options) : options_(options) {
    LINKPAD_EXPECTS(options.tau_scale > 0.0);
    LINKPAD_EXPECTS(options.wire_bytes > 0);
    LINKPAD_EXPECTS(options.timeout_ms > 0);
  }

  [[nodiscard]] std::unique_ptr<PiatSource> open(
      const Scenario& scenario, std::size_t class_index, std::uint64_t seed,
      std::uint64_t salt) const override {
    const auto config = scenario.config_for(class_index);
    LINKPAD_EXPECTS(config.policy != nullptr);

    live::LiveGatewayConfig live_config;
    live_config.tau = config.policy->mean_interval() * options_.tau_scale;
    live_config.sigma_timer =
        std::sqrt(config.policy->interval_variance()) * options_.tau_scale;
    live_config.payload_rate = config.payload_rate / options_.tau_scale;
    live_config.wire_bytes = options_.wire_bytes;
    live_config.seed =
        util::SplitMix64::mix(seed ^ util::SplitMix64::mix(salt)) + class_index;
    return std::make_unique<LivePiatSource>(live_config, options_);
  }

  /// Real captures: two opens of the same key observe different host
  /// jitter, so multi-pass consumers must materialize the stream.
  [[nodiscard]] bool replayable() const override { return false; }

  [[nodiscard]] std::string name() const override { return "live"; }

 private:
  LiveBackendOptions options_;
};

}  // namespace

std::unique_ptr<ExperimentBackend> make_live_backend(
    const LiveBackendOptions& options) {
  return std::make_unique<LiveBackend>(options);
}

}  // namespace linkpad::core
