#include "core/frontier.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "analysis/overhead.hpp"
#include "util/check.hpp"

namespace linkpad::core {

ExperimentSpec FrontierSpec::point_spec(std::size_t point) const {
  LINKPAD_EXPECTS(point < policies.size());
  LINKPAD_EXPECTS(policies[point] != nullptr);
  ExperimentSpec spec;
  spec.scenario = scenario;
  spec.scenario.base.policy = policies[point];
  spec.plan = plan;
  spec.seed = derive_point_seed(seed, point);
  return spec;
}

std::vector<std::size_t> FrontierResult::front() const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].pareto_efficient) indices.push_back(i);
  }
  return indices;
}

namespace {

/// Fail fast when the backend cannot account padding cost: probe one
/// stream's overhead() BEFORE the sweep runs, so an unusable backend (a
/// passive live tap) is rejected without paying for the whole capture.
void require_overhead_accounting(const ExperimentBackend& backend,
                                 const ExperimentSpec& probe_spec) {
  const auto source = backend.open(probe_spec.scenario, /*class_index=*/0,
                                   probe_spec.seed, /*salt=*/1);
  if (!source->overhead().has_value()) {
    throw std::invalid_argument(
        "run_frontier: backend '" + backend.name() +
        "' provides no padding-cost accounting (PiatSource::overhead) — "
        "the overhead/detectability frontier needs a gateway-visible "
        "backend such as the simulated testbed");
  }
}

}  // namespace

FrontierResult run_frontier(const FrontierSpec& spec,
                            const ExperimentBackend& backend,
                            SweepOptions options) {
  LINKPAD_EXPECTS(!spec.policies.empty());
  // A partial sweep would leave default-initialized (zero-overhead,
  // zero-detection) points on the Pareto front; previously this tripped a
  // bare all_completed() assertion deep in the run. Name the misuse here.
  if (options.early_stop) {
    throw std::invalid_argument(
        "run_frontier: SweepOptions::early_stop must be unset — the "
        "frontier needs every policy point completed, and a partial sweep "
        "would silently mark skipped points Pareto-efficient at zero cost");
  }
  require_overhead_accounting(backend, spec.point_spec(0));

  const auto report =
      SweepRunner(backend, std::move(options))
          .run(spec.policies.size(),
               [&](std::size_t i) { return spec.point_spec(i); });
  LINKPAD_ENSURES(report.all_completed());

  FrontierResult result;
  result.points.reserve(spec.policies.size());
  for (std::size_t i = 0; i < spec.policies.size(); ++i) {
    FrontierPoint point;
    point.policy = spec.policies[i]->name();
    point.result = report.results[i];
    for (const auto& outcome : point.result.per_feature) {
      point.detection_rate =
          std::max(point.detection_rate, outcome.detection_rate);
    }
    // The frontier IS the (overhead, detection) plane: scoring a point
    // without accounting as 0 would silently rank full CIT padding as
    // free. The pre-sweep probe above makes this unreachable for uniform
    // backends; keep it as the safety net.
    if (!point.result.mean_padding_bps().has_value()) {
      throw std::invalid_argument(
          "run_frontier: backend '" + backend.name() +
          "' stopped providing padding-cost accounting mid-sweep");
    }
    point.overhead_bps = *point.result.mean_padding_bps();
    point.wire_bps = *point.result.mean_wire_bps();
    point.dummy_fraction = *point.result.mean_dummy_fraction();
    point.delay_p95 = *point.result.worst_delay_p95();
    result.points.push_back(std::move(point));
  }

  std::vector<std::pair<double, double>> coords;
  coords.reserve(result.points.size());
  for (const auto& point : result.points) {
    coords.emplace_back(point.overhead_bps, point.detection_rate);
  }
  for (const std::size_t i : analysis::pareto_front(coords)) {
    result.points[i].pareto_efficient = true;
  }
  return result;
}

std::vector<std::shared_ptr<const sim::TimerPolicy>> budget_ladder(
    const std::vector<double>& dummy_budgets, Seconds tau, double burst) {
  std::vector<std::shared_ptr<const sim::TimerPolicy>> ladder;
  ladder.reserve(dummy_budgets.size());
  for (const double budget : dummy_budgets) {
    ladder.push_back(make_budgeted(budget, burst, tau));
  }
  return ladder;
}

bool detection_monotone_nonincreasing(const std::vector<FrontierPoint>& points,
                                      double tolerance) {
  LINKPAD_EXPECTS(tolerance >= 0.0);
  // Compare against the running minimum, not the previous point: adjacent
  // checks would let detection drift upward by the tolerance PER RUNG, so
  // a slow cumulative rise — a real "more budget helped the adversary"
  // violation — could pass. The running minimum bounds the total rise.
  double floor = std::numeric_limits<double>::infinity();
  for (const FrontierPoint& point : points) {
    if (point.detection_rate > floor + tolerance) return false;
    floor = std::min(floor, point.detection_rate);
  }
  return true;
}

}  // namespace linkpad::core
