// Experiment runner: the full attack pipeline of Sec 3.3 executed on a
// Scenario — stream per-class PIATs from a pluggable backend (simulated
// testbed by default, real loopback gateway via make_live_backend), train
// the adversary off-line, classify held-out windows, and compare the
// empirical detection rate with the Theorem 1–3 predictions.
//
// Sweeps (over sample size, σ_T, utilization, time of day, tap position)
// shard their points across a thread pool; every point derives its RNG
// streams from (seed, salt, class), so results are bit-identical at any
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "classify/adversary.hpp"
#include "classify/cpd.hpp"
#include "classify/detector_bank.hpp"
#include "core/piat_source.hpp"
#include "core/scenarios.hpp"
#include "stats/bootstrap.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

/// Canonical derivation of a per-point RNG seed from a root seed and a
/// point index. EVERY expanded axis (SweepGrid::expand, the figure sweeps,
/// ad-hoc benches) must derive per-point seeds through this rule: naive
/// `root + i` arithmetic makes adjacent points reuse streams as soon as two
/// axes interleave (point 3 of one sweep == point 0 of a sweep rooted 3
/// later), which silently correlates Monte-Carlo points. Collapsed axes
/// (features, sample sizes) intentionally share ONE point seed — sharing
/// the capture is their contract; distinct points must never share.
[[nodiscard]] constexpr std::uint64_t derive_point_seed(std::uint64_t root,
                                                        std::uint64_t point) {
  return util::SplitMix64::mix(root ^ util::SplitMix64::mix(point + 1));
}

/// The adversary half of an experiment, shared verbatim by every spec kind
/// that runs the attack pipeline (ExperimentSpec, SweepGrid, FrontierSpec
/// and the robust-frontier tuner): which detectors watch the stream and how
/// much capture they train/test on. Extracting it into one struct keeps the
/// knobs from drifting apart across the spec kinds and gives the attacker
/// optimizer (core/robust_frontier) a single seam to mutate.
struct AdversaryPlan {
  /// Primary detector: feature, window size, entropy / density knobs.
  classify::AdversaryConfig adversary;
  /// Further features detected in the same pass (window size / entropy /
  /// density knobs are shared with `adversary`). Duplicates are ignored.
  std::vector<classify::FeatureKind> extra_features;
  /// Fully-specified extra detectors (their OWN window size, quantile
  /// backend, EDF distance or CPD config) riding the same capture pass,
  /// appended after the feature and cpd detectors in the LARGEST-sample-
  /// size bank only (they do not re-window along a sample_size_axis).
  /// Results land in ExperimentResult::per_detector, in this order. This
  /// is the seam the best-response tuner evaluates candidates through. A
  /// CPD entry's calibration_seed is overwritten by the engine with
  /// derive_point_seed(seed, 3 + cpd_detectors.size() + j).
  std::vector<classify::DetectorSpec> extra_detectors;
  /// Streaming change-point detectors (CUSUM / adaptive-EWMA) riding the
  /// same capture pass, appended after the feature detectors in every
  /// bank. Two-class scenarios only. Each config's calibration_seed is
  /// OVERWRITTEN by the engine with derive_point_seed(seed, 3 + j) for
  /// detector j, so calibrated thresholds are reproducible per point and
  /// never collide with the training (salt 1) or test (salt 2) streams.
  std::vector<classify::CpdConfig> cpd_detectors;
  std::size_t train_windows = 300;  ///< per class, at the largest axis entry
  std::size_t test_windows = 300;   ///< per class, at the largest axis entry

  /// Primary feature followed by the (deduplicated) extra features.
  [[nodiscard]] std::vector<classify::FeatureKind> features() const;

  /// Inverse of features(): first entry becomes the primary
  /// (adversary.feature), the rest become extra_features.
  void set_features(const std::vector<classify::FeatureKind>& all);
};

/// One experiment = one scenario × one adversary plan. When the plan has
/// extra features/detectors, a DetectorBank evaluates the primary feature
/// (`plan.adversary.feature`) AND every extra over the same single stream
/// pass — one simulation, N detection verdicts.
struct ExperimentSpec {
  Scenario scenario;
  AdversaryPlan plan;
  /// Sample-size (window-size) axis, collapsed into ONE capture. Empty ⇒
  /// the single window size `plan.adversary.window_size`. Non-empty ⇒
  /// prefix-replay: the engine simulates one capture sized by the LARGEST
  /// axis entry (train_windows / test_windows count ITS windows) and every
  /// smaller n re-chops the same capture into floor(windows·n_max/n)
  /// windows of size n — a k-point detection-vs-n curve costs ~1 simulation
  /// instead of k. Each point consumes a prefix of the shared capture, so
  /// its outcome is bit-identical to an independent run of the engine at
  /// that window size / window count with the same seed (DESIGN.md §2.6).
  std::vector<std::size_t> sample_size_axis;
  /// Cap on the windows any one axis point chops from the shared capture
  /// (0 = unlimited). Small-n points naturally get n_max/n × more windows
  /// than the largest point — statistically welcome, but classifier cost
  /// grows quadratically with window count (KDE training set × KDE
  /// evaluations), so figure-grade axes bound it. Capped points still
  /// consume a prefix; the bit-identity contract is unchanged.
  std::size_t max_windows_per_point = 0;
  std::uint64_t seed = 20030324;    ///< date of the paper's campus capture

  /// Primary feature followed by the (deduplicated) extra features.
  [[nodiscard]] std::vector<classify::FeatureKind> features() const {
    return plan.features();
  }

  /// The effective axis: sample_size_axis sorted ascending and
  /// deduplicated, or {plan.adversary.window_size} when the axis is empty.
  [[nodiscard]] std::vector<std::size_t> sample_sizes() const;
};

/// One feature's verdict inside an experiment.
struct FeatureOutcome {
  classify::FeatureKind feature = classify::FeatureKind::kSampleVariance;
  double detection_rate = 0.5;          ///< empirical, eq. (7)
  stats::BootstrapResult ci{};          ///< Wilson interval on the rate
  classify::ConfusionMatrix confusion{2};
  std::optional<double> predicted;      ///< Theorems 1–3 at r_hat (2-class)
};

/// One sample-size point of a prefix-replay experiment: every feature's
/// verdict at window size `sample_size`, evaluated over the shared capture.
struct SampleSizePoint {
  std::size_t sample_size = 0;       ///< window size n of this point
  std::size_t train_windows = 0;     ///< windows chopped at this n, per class
  std::size_t test_windows = 0;
  double r_hat = 1.0;                ///< variance ratio over THIS prefix
  std::vector<FeatureOutcome> per_feature;  ///< primary first
  /// One outcome per spec.plan.cpd_detectors (same order), evaluated over
  /// this point's prefix of the shared capture.
  std::vector<classify::CpdOutcome> cpd;

  /// Outcome of `kind`; throws if the point did not evaluate it.
  [[nodiscard]] const FeatureOutcome& outcome(classify::FeatureKind kind) const;
};

/// One extra (fully-specified) detector's verdict, evaluated at the
/// largest sample size. `attack_score` is the tuner's common currency on
/// [0, 1]: the confusion-matrix detection rate for window (feature / EDF)
/// detectors, and the conservative chance-floor mapping
/// `ttd.detected ? 1.0 : 0.5` for change-point detectors — a CPD verdict
/// is binary per run, and 0.5 keeps an undetected CPD comparable to a
/// coin-flip window detector instead of ranking below it.
struct DetectorOutcome {
  std::string name;                         ///< Detector::name()
  double attack_score = 0.5;
  classify::ConfusionMatrix confusion{2};   ///< window detectors only
  std::optional<classify::CpdOutcome> cpd;  ///< CPD detectors only
};

/// Outcome of one experiment. The top-level fields describe the PRIMARY
/// feature (spec.plan.adversary.feature); `per_feature` carries one outcome per
/// spec.features(), primary first. `by_sample_size` carries one point per
/// spec.sample_sizes() (ascending n); the top-level fields mirror the
/// LARGEST sample size — the point whose capture the axis shares.
struct ExperimentResult {
  double detection_rate = 0.5;          ///< empirical, eq. (7)
  stats::BootstrapResult ci{};          ///< Wilson interval on the rate
  classify::ConfusionMatrix confusion{2};
  double r_hat = 1.0;                   ///< measured variance ratio (2-class)
  std::optional<double> predicted;      ///< Theorems 1–3 at r_hat (2-class)
  double piat_mean_low = 0.0;           ///< padded PIAT means (sanity: equal)
  double piat_mean_high = 0.0;
  double piat_var_low = 0.0;            ///< padded PIAT variances
  double piat_var_high = 0.0;
  std::vector<FeatureOutcome> per_feature;
  /// One outcome per spec.plan.cpd_detectors (same order), at the largest
  /// sample size — scheme, calibrated threshold, time-to-detection.
  std::vector<classify::CpdOutcome> cpd;
  /// One outcome per spec.plan.extra_detectors (same order). Extra
  /// detectors ride only the largest-sample-size bank, so there is no
  /// per-SampleSizePoint mirror of this field.
  std::vector<DetectorOutcome> per_detector;
  std::vector<SampleSizePoint> by_sample_size;
  /// Padding-cost accounting of the run-time (test) capture, one entry per
  /// class in class order — empty when the backend cannot account (live).
  std::vector<StreamOverhead> overhead_per_class;

  /// Expected padding bandwidth under equal priors: mean of padding_bps
  /// across classes. nullopt without accounting.
  [[nodiscard]] std::optional<double> mean_padding_bps() const;
  /// Expected on-wire bandwidth under equal priors.
  [[nodiscard]] std::optional<double> mean_wire_bps() const;
  /// Expected dummy fraction under equal priors.
  [[nodiscard]] std::optional<double> mean_dummy_fraction() const;
  /// Worst per-class p95 payload queueing delay — the QoS half of the
  /// overhead/detectability frontier.
  [[nodiscard]] std::optional<Seconds> worst_delay_p95() const;

  /// Outcome of `kind` at the largest sample size; throws if the
  /// experiment did not evaluate it.
  [[nodiscard]] const FeatureOutcome& outcome(classify::FeatureKind kind) const;

  /// Point at window size `n`; throws if `n` was not on the axis.
  [[nodiscard]] const SampleSizePoint& at_sample_size(std::size_t n) const;
};

/// Runs the attack pipeline against any ExperimentBackend, streaming PIAT
/// batches straight into per-feature window accumulators (DetectorBank):
/// resident memory is O(batch_piats + features × window), independent of
/// capture length, and every configured feature is detected in one pass.
///
/// With a sample_size_axis, ONE capture pass feeds one DetectorBank per
/// axis entry (each clipped to its prefix budget), so a k-point
/// detection-vs-n curve costs one simulation. Memory grows to
/// O(batch + k · features × window); when the axis has several entries AND
/// an entropy Δh prepass is needed, the engine additionally materializes
/// the training capture once (O(train capture)) instead of re-simulating
/// it for the second pass.
class ExperimentEngine {
 public:
  /// Engine over the default simulated backend.
  ExperimentEngine() : ExperimentEngine(sim_backend()) {}

  /// The backend must outlive the engine. `batch_piats` is the pull size
  /// per PiatSource::collect call.
  explicit ExperimentEngine(const ExperimentBackend& backend,
                            std::size_t batch_piats = 8192);

  /// Run one experiment end to end.
  [[nodiscard]] ExperimentResult run(const ExperimentSpec& spec) const;

  /// One class's PIAT stream, pulled in batches through the backend. May
  /// return fewer than `piats` if a finite (live) backend exhausts.
  [[nodiscard]] std::vector<double> class_stream(const ExperimentSpec& spec,
                                                 std::size_t class_index,
                                                 std::size_t piats,
                                                 std::uint64_t stream_salt) const;

  [[nodiscard]] const ExperimentBackend& backend() const { return *backend_; }

 private:
  const ExperimentBackend* backend_;
  std::size_t batch_piats_;
};

/// Run one experiment on the default simulated backend.
ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Run many experiments concurrently (order of results == order of specs).
std::vector<ExperimentResult> run_sweep(const std::vector<ExperimentSpec>& specs);

/// Generate one class's PIAT stream for a spec (exposed for examples/tests).
std::vector<double> generate_class_stream(const ExperimentSpec& spec,
                                          std::size_t class_index,
                                          std::size_t piats,
                                          std::uint64_t stream_salt);

// ------------------------------------------------------------------ sweeps

/// Knobs for a sharded sweep.
struct SweepOptions {
  /// 0 = the process-wide shared pool; otherwise a dedicated pool of this
  /// many threads is used for the sweep. Results are identical either way.
  std::size_t threads = 0;
  /// PIAT pull size per PiatSource::collect call.
  std::size_t batch_piats = 8192;
  /// Dispatch shape (util::ExecutionPolicy): kSerial runs every point
  /// inline on the caller, kMultithread submits one pool task per point,
  /// kChunked drains grain-sized runs of points per pool task with one
  /// ExperimentEngine per worker slot. Results are bit-identical under
  /// every policy — the choice selects a schedule, not a computation.
  util::ExecutionPolicy execution = util::ExecutionPolicy::kChunked;
  /// Points handed to a worker per claim under kChunked (and the
  /// parallel_for grain under kMultithread). 0 = policy default: 1 for
  /// sweeps, a flow-count-derived grain for PopulationEngine. The chunk
  /// partition derives from (count, grain) only, so grain never perturbs
  /// results either.
  std::size_t grain = 0;
  /// Process-sharding of a population campaign (DESIGN.md §2.10): this
  /// process claims chunk c of the (flows, grain) partition iff
  /// c % shard_count == shard_index. The partition itself never changes
  /// with the shard count — shards select chunks, they do not re-cut them —
  /// so merging all shards' ChunkAggregates (core::merge_shards) is
  /// bit-identical to the 1-process run at any thread count. Consumed by
  /// core::run_population_shard; SweepRunner ignores both fields, and
  /// PopulationEngine::run requires the full population (shard_count ≤ 1).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Called after every finished point with (points done, points total).
  /// Invoked OUTSIDE the runner's callback lock so a slow observer cannot
  /// serialize the workers: invocations may arrive concurrently and out of
  /// order (each carries its own snapshot of the done count), so the
  /// callback must be thread-safe.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Early stop: called (serialized) with (point index, its result) after
  /// each point; returning true stops points that have not yet STARTED —
  /// running points finish. Skipped points keep default-initialized results
  /// and are reported via SweepReport::completed.
  std::function<bool(std::size_t, const ExperimentResult&)> early_stop;
};

/// Results of a sweep plus per-point completion flags (for early stop).
struct SweepReport {
  std::vector<ExperimentResult> results;  ///< slot i belongs to specs[i]
  std::vector<std::uint8_t> completed;    ///< 1 if specs[i] actually ran
  std::size_t completed_count = 0;

  [[nodiscard]] bool all_completed() const {
    return completed_count == results.size();
  }
};

/// Shards sweep points across a thread pool, one RNG substream tree per
/// point. Deterministic: bit-identical results at any thread count (when
/// the backend is deterministic and early_stop is unset).
class SweepRunner {
 public:
  explicit SweepRunner(const ExperimentBackend& backend = sim_backend(),
                       SweepOptions options = {});

  [[nodiscard]] SweepReport run(const std::vector<ExperimentSpec>& specs) const;

  /// Lazy form for very large sweeps (e.g. a PopulationEngine's flows):
  /// point i runs spec_for(i), constructed inside the worker that executes
  /// it, so the full spec set never materializes at once. `spec_for` must
  /// be pure (same i → same spec) and thread-safe; it may be called from
  /// any worker. Results are identical to run(expanded vector).
  [[nodiscard]] SweepReport run(
      std::size_t count,
      const std::function<ExperimentSpec(std::size_t)>& spec_for) const;

 private:
  const ExperimentBackend* backend_;
  SweepOptions options_;
};

/// Scenario grid: padding policy (CIT / VIT σ_T) × environment axis
/// (utilization or diurnal hour) × tap position, expanded in deterministic
/// row-major order. The adversary-feature axis is NOT expanded into
/// separate points: all `features` ride one ExperimentSpec (primary +
/// extra_features), so an N-feature grid performs each simulation once and
/// reports N per-feature outcomes per point.
struct SweepGrid {
  enum class Environment { kLabZeroCross, kLabCrossTraffic, kCampus, kWan };

  Environment environment = Environment::kLabZeroCross;
  /// Sample-size axis: like the feature axis, NOT expanded into separate
  /// points. All entries ride each point's single capture via
  /// ExperimentSpec::sample_size_axis (prefix replay), so a k-point
  /// detection-vs-n grid still performs one simulation per (policy, env,
  /// tap) point. Empty ⇒ the single `window_size`.
  std::vector<std::size_t> sample_sizes;
  /// Policy axis: 0 ⇒ CIT at the paper's τ, σ > 0 ⇒ VIT-normal(τ, σ).
  /// Ignored when `policies` is non-empty.
  std::vector<Seconds> sigma_timers = {0.0};
  /// First-class policy axis (defense frontier): when non-empty it REPLACES
  /// sigma_timers — one point (one simulation) per policy prototype, cloned
  /// into the environment scenario. Any TimerPolicy rides here, including
  /// the payload-reactive on/off, budgeted and adaptive-gap defenses.
  std::vector<std::shared_ptr<const sim::TimerPolicy>> policies;
  /// kLabCrossTraffic axis: shared-link utilization.
  std::vector<double> utilizations = {0.25};
  /// kCampus / kWan axis: diurnal phase (hour of day).
  std::vector<double> hours = {12.0};
  /// Tap-position axis: number of hops BEFORE the adversary's tap (clamped
  /// to the scenario's path length). Empty ⇒ the scenario default.
  std::vector<std::size_t> tap_hops;
  /// The adversary half, copied into every expanded spec: all of
  /// plan.features() are evaluated per point in one stream pass, and the
  /// plan's cpd/extra detectors ride the same pass (like the feature axis,
  /// NOT expanded into separate points). plan.adversary.window_size is the
  /// single window size when `sample_sizes` is empty; otherwise the axis
  /// overrides it per spec.
  AdversaryPlan plan = {
      .adversary = {.feature = classify::FeatureKind::kSampleVariance,
                    .window_size = 1000},
      .train_windows = 150,
      .test_windows = 150};
  std::uint64_t seed = 20030324;

  /// Number of points the grid expands to.
  [[nodiscard]] std::size_t size() const;

  /// Expand to specs (row-major: sigma, env axis, tap; features collapsed
  /// into each spec). Each point gets its own derived seed so streams never
  /// collide across points.
  [[nodiscard]] std::vector<ExperimentSpec> expand() const;
};

}  // namespace linkpad::core
