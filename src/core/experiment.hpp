// Experiment runner: the full attack pipeline of Sec 3.3 executed on a
// Scenario — generate per-class PIAT streams on the simulated testbed,
// train the adversary off-line, classify held-out windows, and compare the
// empirical detection rate with the Theorem 1–3 predictions.
//
// Sweeps (over sample size, σ_T, utilization, time of day) run their points
// in parallel on the project thread pool; every point derives its RNG
// streams from (seed, point index, class), so results are identical at any
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "classify/adversary.hpp"
#include "core/scenarios.hpp"
#include "stats/bootstrap.hpp"

namespace linkpad::core {

/// One experiment = one scenario × one adversary configuration.
struct ExperimentSpec {
  Scenario scenario;
  classify::AdversaryConfig adversary;
  std::size_t train_windows = 300;  ///< per class
  std::size_t test_windows = 300;   ///< per class
  std::uint64_t seed = 20030324;    ///< date of the paper's campus capture
};

/// Outcome of one experiment.
struct ExperimentResult {
  double detection_rate = 0.5;          ///< empirical, eq. (7)
  stats::BootstrapResult ci{};          ///< Wilson interval on the rate
  classify::ConfusionMatrix confusion{2};
  double r_hat = 1.0;                   ///< measured variance ratio (2-class)
  std::optional<double> predicted;      ///< Theorems 1–3 at r_hat (2-class)
  double piat_mean_low = 0.0;           ///< padded PIAT means (sanity: equal)
  double piat_mean_high = 0.0;
  double piat_var_low = 0.0;            ///< padded PIAT variances
  double piat_var_high = 0.0;
};

/// Run one experiment end to end.
ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Run many experiments concurrently (order of results == order of specs).
std::vector<ExperimentResult> run_sweep(const std::vector<ExperimentSpec>& specs);

/// Generate one class's PIAT stream for a spec (exposed for examples/tests).
std::vector<double> generate_class_stream(const ExperimentSpec& spec,
                                          std::size_t class_index,
                                          std::size_t piats,
                                          std::uint64_t stream_salt);

}  // namespace linkpad::core
