// Defense-frontier subsystem (DESIGN.md §2.8): the paper's countermeasure
// space is two points — CIT and distribution-drawn VIT — but its central
// trade-off (padding overhead vs. detection resistance) is a FRONTIER. A
// frontier run evaluates a set of TimerPolicy operating points (including
// the payload-reactive on/off, budgeted and adaptive-gap defenses) on one
// scenario with one adversary, one full simulation per policy point sharded
// via SweepRunner, and reports each point's measured padding cost next to
// the adversary's best detection rate — the overhead/detectability Pareto
// frontier a deployment engineer actually picks from.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace linkpad::core {

/// One frontier evaluation: a set of policy prototypes × one scenario
/// template × one adversary configuration.
struct FrontierSpec {
  /// Scenario template; `scenario.base.policy` is overwritten per point
  /// with each prototype from `policies`.
  Scenario scenario;
  /// The policy operating points. Labels come from TimerPolicy::name() —
  /// the single naming accessor tables, benches and JSON records share.
  std::vector<std::shared_ptr<const sim::TimerPolicy>> policies;
  /// Adversary template. Every feature in `plan.features()` is detected in
  /// one stream pass per point (DetectorBank); the frontier scores each
  /// point by the BEST of them — the adversary picks the strongest weapon.
  AdversaryPlan plan = {
      .adversary = {.feature = classify::FeatureKind::kSampleMean,
                    .window_size = 400},
      .extra_features = {classify::FeatureKind::kSampleVariance},
      .train_windows = 40,
      .test_windows = 40};
  std::uint64_t seed = 20030324;

  /// The per-point ExperimentSpec (policy cloned into the scenario, seed
  /// derived per point — streams never collide across points).
  [[nodiscard]] ExperimentSpec point_spec(std::size_t point) const;
};

/// One policy's measured operating point on the frontier.
struct FrontierPoint {
  std::string policy;            ///< TimerPolicy::name() of this point
  double overhead_bps = 0.0;     ///< measured padding (dummy) bandwidth
  double wire_bps = 0.0;         ///< measured on-wire bandwidth
  double dummy_fraction = 0.0;   ///< dummies / wire packets
  Seconds delay_p95 = 0.0;       ///< worst per-class p95 payload delay
  double detection_rate = 0.0;   ///< adversary's best feature at this point
  bool pareto_efficient = false; ///< on the (overhead, detection) front
  ExperimentResult result;       ///< the full per-point experiment outcome
};

/// Frontier outcome, one point per FrontierSpec::policies entry (in order).
struct FrontierResult {
  std::vector<FrontierPoint> points;

  /// Indices of the Pareto-efficient points, in input order.
  [[nodiscard]] std::vector<std::size_t> front() const;
};

/// Run the frontier: one ExperimentEngine run per policy point, sharded
/// across the thread pool (SweepRunner semantics: bit-identical at any
/// thread count). Throws std::invalid_argument when options.early_stop is
/// set (a partial sweep has no meaningful Pareto front) or when the
/// backend provides no padding-cost accounting (e.g. a passive live tap) —
/// the frontier has no overhead coordinate without it.
[[nodiscard]] FrontierResult run_frontier(const FrontierSpec& spec,
                                          const ExperimentBackend& backend =
                                              sim_backend(),
                                          SweepOptions options = {});

/// The canonical budget ladder: TokenBucket(CIT(τ)) at each dummy budget
/// (pps), in the order given. frontier_study, fig_frontier and the golden
/// frontier test all build their ladder here so their points agree.
[[nodiscard]] std::vector<std::shared_ptr<const sim::TimerPolicy>>
budget_ladder(const std::vector<double>& dummy_budgets,
              Seconds tau = constants::kTau, double burst = 5.0);

/// True when `points` (in the order given) has detection rates that never
/// increase from one point to the next — the monotonicity contract of a
/// budget ladder: more padding budget must never make the adversary's job
/// easier. Exposed so frontier_study, fig_frontier and the golden test
/// apply the exact same check.
[[nodiscard]] bool detection_monotone_nonincreasing(
    const std::vector<FrontierPoint>& points, double tolerance = 0.0);

}  // namespace linkpad::core
