#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "analysis/theory.hpp"
#include "classify/detector_bank.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

namespace {

std::optional<double> theory_prediction(classify::FeatureKind kind,
                                        double r_hat, double n) {
  switch (kind) {
    case classify::FeatureKind::kSampleMean:
      return analysis::detection_rate_mean_exact(r_hat);
    case classify::FeatureKind::kSampleVariance:
      return analysis::detection_rate_variance(r_hat, n);
    case classify::FeatureKind::kSampleEntropy:
      return analysis::detection_rate_entropy(r_hat, n);
    default:
      return std::nullopt;  // extension features: no closed form
  }
}

stats::BootstrapResult rate_ci(const classify::ConfusionMatrix& confusion) {
  const double rate = confusion.detection_rate();
  return stats::proportion_ci(
      static_cast<std::size_t>(
          std::llround(rate * static_cast<double>(confusion.total()))),
      confusion.total(), 0.95);
}

}  // namespace

std::vector<classify::FeatureKind> AdversaryPlan::features() const {
  std::vector<classify::FeatureKind> out;
  out.reserve(1 + extra_features.size());
  out.push_back(adversary.feature);
  for (const auto kind : extra_features) {
    if (std::find(out.begin(), out.end(), kind) == out.end()) {
      out.push_back(kind);
    }
  }
  return out;
}

void AdversaryPlan::set_features(
    const std::vector<classify::FeatureKind>& all) {
  LINKPAD_EXPECTS(!all.empty());
  adversary.feature = all.front();
  extra_features.assign(all.begin() + 1, all.end());
}

std::vector<std::size_t> ExperimentSpec::sample_sizes() const {
  std::vector<std::size_t> ns = sample_size_axis;
  if (ns.empty()) ns.push_back(plan.adversary.window_size);
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
  LINKPAD_EXPECTS(ns.front() >= 2);
  return ns;
}

const FeatureOutcome& SampleSizePoint::outcome(
    classify::FeatureKind kind) const {
  for (const auto& o : per_feature) {
    if (o.feature == kind) return o;
  }
  throw std::invalid_argument("SampleSizePoint: feature not evaluated: " +
                              classify::feature_name(kind));
}

const FeatureOutcome& ExperimentResult::outcome(
    classify::FeatureKind kind) const {
  for (const auto& o : per_feature) {
    if (o.feature == kind) return o;
  }
  throw std::invalid_argument("ExperimentResult: feature not evaluated: " +
                              classify::feature_name(kind));
}

const SampleSizePoint& ExperimentResult::at_sample_size(std::size_t n) const {
  // by_sample_size is ascending in n (spec.sample_sizes() order).
  const auto it = std::lower_bound(
      by_sample_size.begin(), by_sample_size.end(), n,
      [](const SampleSizePoint& point, std::size_t key) {
        return point.sample_size < key;
      });
  if (it == by_sample_size.end() || it->sample_size != n) {
    // First stop of a shard/merge axis mismatch: say what was requested AND
    // what the result actually carries, not just that the lookup failed.
    std::ostringstream msg;
    msg << "ExperimentResult::at_sample_size: requested n = " << n
        << " is not on the axis; available sample sizes:";
    if (by_sample_size.empty()) {
      msg << " (none)";
    } else {
      for (const auto& point : by_sample_size) msg << ' ' << point.sample_size;
    }
    throw std::invalid_argument(msg.str());
  }
  return *it;
}

namespace {

/// Mean of one StreamOverhead field across classes (equal priors).
template <typename Fn>
std::optional<double> mean_over_classes(
    const std::vector<StreamOverhead>& per_class, Fn&& field) {
  if (per_class.empty()) return std::nullopt;
  double sum = 0.0;
  for (const auto& oh : per_class) sum += field(oh);
  return sum / static_cast<double>(per_class.size());
}

}  // namespace

std::optional<double> ExperimentResult::mean_padding_bps() const {
  return mean_over_classes(overhead_per_class,
                           [](const StreamOverhead& oh) { return oh.padding_bps; });
}

std::optional<double> ExperimentResult::mean_wire_bps() const {
  return mean_over_classes(overhead_per_class,
                           [](const StreamOverhead& oh) { return oh.wire_bps; });
}

std::optional<double> ExperimentResult::mean_dummy_fraction() const {
  return mean_over_classes(
      overhead_per_class,
      [](const StreamOverhead& oh) { return oh.dummy_fraction; });
}

std::optional<Seconds> ExperimentResult::worst_delay_p95() const {
  if (overhead_per_class.empty()) return std::nullopt;
  Seconds worst = 0.0;
  for (const auto& oh : overhead_per_class) {
    worst = std::max(worst, oh.delay_p95);
  }
  return worst;
}

// --------------------------------------------------------- ExperimentEngine

ExperimentEngine::ExperimentEngine(const ExperimentBackend& backend,
                                   std::size_t batch_piats)
    : backend_(&backend), batch_piats_(std::max<std::size_t>(batch_piats, 1)) {}

std::vector<double> ExperimentEngine::class_stream(
    const ExperimentSpec& spec, std::size_t class_index, std::size_t piats,
    std::uint64_t stream_salt) const {
  return pull_stream(*backend_, spec.scenario, class_index, spec.seed,
                     stream_salt, piats, batch_piats_);
}

namespace {

/// One sample-size point's streaming state inside ExperimentEngine::run:
/// its bank, its per-class prefix budgets, and its training moments.
struct PrefixPoint {
  std::size_t n = 0;
  std::size_t train_windows = 0;
  std::size_t test_windows = 0;
  std::size_t train_limit = 0;  ///< per-class training PIAT budget
  std::size_t test_limit = 0;   ///< per-class test PIAT budget
  std::vector<stats::RunningStats> train_stats;  ///< per class, over prefix
};

/// The part of `batch` (starting at stream offset `offset`) that falls
/// inside a point's prefix budget `limit`.
std::span<const double> clip_to_limit(std::span<const double> batch,
                                      std::size_t offset, std::size_t limit) {
  if (offset >= limit) return {};
  return batch.first(std::min(batch.size(), limit - offset));
}

}  // namespace

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec) const {
  const std::size_t num_classes = spec.scenario.payload_rates.size();
  LINKPAD_EXPECTS(num_classes >= 2);
  LINKPAD_EXPECTS(spec.plan.train_windows >= 2 && spec.plan.test_windows >= 1);

  // Prefix-replay setup (DESIGN.md §2.6): the capture is sized by the
  // LARGEST sample size; every axis entry n gets its own DetectorBank with
  // window size n and consumes floor(windows·n_max/n)·n PIATs — a prefix
  // of the shared capture, so each point is bit-identical to running the
  // engine at that window size alone. A single-entry axis (the default) is
  // exactly the pre-axis pipeline.
  const auto ns = spec.sample_sizes();
  const std::size_t k = ns.size();
  const std::size_t n_max = ns.back();
  const auto features = spec.features();

  std::vector<PrefixPoint> points(k);
  std::vector<classify::DetectorBank> banks;
  banks.reserve(k);
  const std::size_t window_cap = spec.max_windows_per_point == 0
                                     ? static_cast<std::size_t>(-1)
                                     : spec.max_windows_per_point;
  std::size_t train_capacity = 0;  // longest prefix any point consumes
  std::size_t test_capacity = 0;
  for (std::size_t i = 0; i < k; ++i) {
    PrefixPoint& p = points[i];
    p.n = ns[i];
    p.train_windows =
        std::min(spec.plan.train_windows * n_max / p.n, window_cap);
    p.test_windows = std::min(spec.plan.test_windows * n_max / p.n, window_cap);
    p.train_limit = p.train_windows * p.n;
    p.test_limit = p.test_windows * p.n;
    train_capacity = std::max(train_capacity, p.train_limit);
    test_capacity = std::max(test_capacity, p.test_limit);
    p.train_stats.resize(num_classes);
    classify::AdversaryConfig adversary = spec.plan.adversary;
    adversary.window_size = p.n;
    // Feature detectors first (detector f == features()[f], the indexing
    // the result assembly relies on), then the change-point detectors
    // appended after. Each CPD config gets its calibration seed derived
    // here — salts 1 and 2 are the training/test streams, so 3 + j can
    // never collide with a capture stream.
    std::vector<classify::DetectorSpec> detector_specs;
    detector_specs.reserve(features.size() + spec.plan.cpd_detectors.size() +
                           spec.plan.extra_detectors.size());
    for (const auto kind : features) {
      classify::DetectorSpec ds;
      ds.adversary = adversary;
      ds.adversary.feature = kind;
      detector_specs.push_back(std::move(ds));
    }
    for (std::size_t j = 0; j < spec.plan.cpd_detectors.size(); ++j) {
      LINKPAD_EXPECTS(num_classes == 2);
      classify::DetectorSpec ds;
      ds.adversary = adversary;
      ds.cpd = spec.plan.cpd_detectors[j];
      ds.cpd->calibration_seed = derive_point_seed(spec.seed, 3 + j);
      detector_specs.push_back(std::move(ds));
    }
    // Fully-specified extra detectors (each with its OWN window size /
    // quantile / EDF / CPD config) ride ONLY the largest-sample-size bank:
    // they do not re-window along the axis, so smaller points stay exactly
    // what an extra-detector-free run would compute. Their calibration
    // seeds continue the 3 + j ladder after the cpd_detectors.
    if (i + 1 == k) {
      for (std::size_t j = 0; j < spec.plan.extra_detectors.size(); ++j) {
        classify::DetectorSpec ds = spec.plan.extra_detectors[j];
        if (ds.cpd) {
          LINKPAD_EXPECTS(num_classes == 2);
          ds.cpd->calibration_seed = derive_point_seed(
              spec.seed, 3 + spec.plan.cpd_detectors.size() + j);
        } else {
          // A window detector needs ≥ 2 training windows and ≥ 1 test
          // window of ITS size inside the shared capture budget.
          LINKPAD_EXPECTS(p.train_limit >= 2 * ds.adversary.window_size);
          LINKPAD_EXPECTS(p.test_limit >= ds.adversary.window_size);
        }
        detector_specs.push_back(std::move(ds));
      }
    }
    banks.emplace_back(std::move(detector_specs), num_classes);
  }

  // Training feed for one class: every bank gets its clipped share of the
  // batch, and the shared Welford moments are forked at each point's
  // prefix boundary — the snapshot IS that point's training moments, with
  // the exact adds an independent run would have performed.
  std::vector<std::size_t> train_got(num_classes, 0);
  auto feed_training = [&](std::size_t c, auto&& for_each_batch) {
    stats::RunningStats running;
    std::size_t offset = 0;
    std::size_t snapshots_taken = 0;  // points are ascending in n, so their
                                      // train limits are NOT sorted; track
                                      // crossings per point instead.
    std::vector<std::uint8_t> crossed(k, 0);
    const std::size_t got = for_each_batch([&](std::span<const double> batch) {
      for (std::size_t i = 0; i < k; ++i) {
        const auto piece = clip_to_limit(batch, offset, points[i].train_limit);
        if (!piece.empty()) banks[i].consume_training(c, piece);
      }
      // Advance the shared moments, snapshotting exactly at boundaries.
      std::span<const double> rest = batch;
      while (!rest.empty()) {
        std::size_t next_boundary = static_cast<std::size_t>(-1);
        for (std::size_t i = 0; i < k; ++i) {
          if (!crossed[i] && points[i].train_limit > offset) {
            next_boundary = std::min(next_boundary, points[i].train_limit);
          }
        }
        const std::size_t take =
            std::min(rest.size(), next_boundary - offset);
        for (const double x : rest.first(take)) running.add(x);
        offset += take;
        rest = rest.subspan(take);
        for (std::size_t i = 0; i < k; ++i) {
          if (!crossed[i] && points[i].train_limit <= offset) {
            points[i].train_stats[c] = running.fork();
            crossed[i] = 1;
            ++snapshots_taken;
          }
        }
      }
      return offset;
    });
    train_got[c] = got;
    // A finite (live) backend may exhaust before a boundary: the prefix a
    // fresh run would see is everything delivered, i.e. the current state.
    if (snapshots_taken < k) {
      for (std::size_t i = 0; i < k; ++i) {
        if (!crossed[i]) points[i].train_stats[c] = running.fork();
      }
    }
  };

  // Off-line phase: the adversary replicates the system per class and
  // streams HIS replica through the banks in bounded batches. An entropy
  // detector without an explicit Δh first needs the pooled training
  // moments of ITS prefix (Scott's rule), which costs one extra pass:
  // a single-point replayable run simply re-opens the identical streams;
  // a live capture cannot be replayed, and a multi-point axis would
  // re-simulate the whole capture, so both materialize the training
  // capture once and run the two passes from memory.
  // Any bank may need the pooled-Δh prepass: the banks share a feature set,
  // but extra detectors ride only the top bank, so probe all of them.
  bool prepass = false;
  for (const auto& bank : banks) prepass = prepass || bank.needs_prepass();
  if (prepass && (!backend_->replayable() || k > 1)) {
    std::vector<std::vector<double>> train(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
      train[c] = class_stream(spec, c, train_capacity, /*salt=*/1);
    }
    // Pooled prepass moments per DISTINCT prefix budget: the first class
    // is one shared Welford stream forked at each budget boundary; later
    // classes resume each fork with their clipped adds. Bit-identical to
    // k independent clipped streams — banks sharing a budget share the
    // whole pooled state.
    std::vector<std::size_t> budgets;
    budgets.reserve(k);
    for (const PrefixPoint& p : points) budgets.push_back(p.train_limit);
    std::sort(budgets.begin(), budgets.end());
    budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

    std::vector<stats::RunningStats> pooled(budgets.size());
    {
      stats::RunningStats running;
      std::size_t consumed = 0;
      std::size_t next = 0;
      for (const double x : train[0]) {
        running.add(x);
        ++consumed;
        while (next < budgets.size() && budgets[next] == consumed) {
          pooled[next++] = running.fork();
        }
      }
      while (next < budgets.size()) pooled[next++] = running.fork();
    }
    for (std::size_t c = 1; c < num_classes; ++c) {
      for (std::size_t b = 0; b < budgets.size(); ++b) {
        for (const double x : clip_to_limit(std::span<const double>(train[c]),
                                            0, budgets[b])) {
          pooled[b].add(x);
        }
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      const auto it = std::find(budgets.begin(), budgets.end(),
                                points[i].train_limit);
      banks[i].finish_prepass(
          pooled[static_cast<std::size_t>(std::distance(budgets.begin(), it))]);
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      feed_training(c, [&](auto&& sink) {
        sink(std::span<const double>(train[c]));
        return train[c].size();
      });
    }
  } else {
    if (prepass) {  // single point, replayable: stream both passes
      for (std::size_t c = 0; c < num_classes; ++c) {
        stream_batches(*backend_, spec.scenario, c, spec.seed, /*salt=*/1,
                       train_capacity, batch_piats_,
                       [&](std::span<const double> batch) {
                         banks.front().consume_prepass(batch);
                       });
      }
      for (auto& bank : banks) bank.finish_prepass();
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      feed_training(c, [&](auto&& sink) {
        return stream_batches(*backend_, spec.scenario, c, spec.seed,
                              /*salt=*/1, train_capacity, batch_piats_, sink);
      });
    }
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    // A finite backend (live capture) may come up short; the adversary
    // still needs at least two training windows per class at every point.
    for (const PrefixPoint& p : points) {
      LINKPAD_ENSURES(std::min(train_got[c], p.train_limit) >= 2 * p.n);
    }
  }
  for (auto& bank : banks) bank.train();

  // Run-time phase: observe the live system (fresh randomness, salt 2) and
  // classify its windows with every detector of every point as the batches
  // arrive — the axis shares this single observed capture too. The source
  // is held open past the stream so its padding-cost accounting (the
  // overhead half of the defense frontier) can be read off afterwards.
  std::vector<StreamOverhead> overheads;
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::size_t offset = 0;
    auto source = backend_->open(spec.scenario, c, spec.seed, /*salt=*/2);
    const std::size_t got = stream_batches(
        *source, test_capacity, batch_piats_,
        [&](std::span<const double> batch) {
          for (std::size_t i = 0; i < k; ++i) {
            const auto piece =
                clip_to_limit(batch, offset, points[i].test_limit);
            if (!piece.empty()) banks[i].consume_test(c, piece);
          }
          offset += batch.size();
        });
    for (const PrefixPoint& p : points) {
      LINKPAD_ENSURES(std::min(got, p.test_limit) >= p.n);
    }
    if (const auto oh = source->overhead()) overheads.push_back(*oh);
  }

  ExperimentResult result;
  if (overheads.size() == num_classes) {
    result.overhead_per_class = std::move(overheads);
  }
  const PrefixPoint& top = points.back();  // n_max: the full capture
  result.piat_mean_low = top.train_stats.front().mean();
  result.piat_mean_high = top.train_stats.back().mean();
  result.piat_var_low = top.train_stats.front().variance();
  result.piat_var_high = top.train_stats.back().variance();

  result.by_sample_size.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    SampleSizePoint sp;
    sp.sample_size = points[i].n;
    sp.train_windows = points[i].train_windows;
    sp.test_windows = points[i].test_windows;
    if (num_classes == 2) {
      sp.r_hat = analysis::variance_ratio(points[i].train_stats[0].variance(),
                                          points[i].train_stats[1].variance());
    }
    sp.per_feature.reserve(features.size());
    for (std::size_t f = 0; f < features.size(); ++f) {
      FeatureOutcome out;
      out.feature = features[f];
      out.confusion = banks[i].detector(f).confusion();
      out.detection_rate = out.confusion.detection_rate();
      out.ci = rate_ci(out.confusion);
      if (num_classes == 2) {
        out.predicted = theory_prediction(features[f], sp.r_hat,
                                          static_cast<double>(points[i].n));
      }
      sp.per_feature.push_back(std::move(out));
    }
    sp.cpd.reserve(spec.plan.cpd_detectors.size());
    for (std::size_t j = 0; j < spec.plan.cpd_detectors.size(); ++j) {
      sp.cpd.push_back(
          banks[i].detector(features.size() + j).cpd_outcome());
    }
    result.by_sample_size.push_back(std::move(sp));
  }

  // Extra detectors live only in the top (n_max) bank, after the feature
  // and cpd detectors. attack_score: confusion detection rate for window
  // detectors, the chance-floor binary mapping for CPD (see DetectorOutcome).
  result.per_detector.reserve(spec.plan.extra_detectors.size());
  for (std::size_t j = 0; j < spec.plan.extra_detectors.size(); ++j) {
    const classify::Detector& det = banks.back().detector(
        features.size() + spec.plan.cpd_detectors.size() + j);
    DetectorOutcome out;
    out.name = det.name();
    if (det.is_cpd()) {
      out.cpd = det.cpd_outcome();
      out.attack_score = out.cpd->ttd.detected ? 1.0 : 0.5;
    } else {
      out.confusion = det.confusion();
      out.attack_score = out.confusion.detection_rate();
    }
    result.per_detector.push_back(std::move(out));
  }

  const SampleSizePoint& top_point = result.by_sample_size.back();
  result.r_hat = top_point.r_hat;
  result.per_feature = top_point.per_feature;
  result.cpd = top_point.cpd;
  const FeatureOutcome& primary = result.per_feature.front();
  result.detection_rate = primary.detection_rate;
  result.ci = primary.ci;
  result.confusion = primary.confusion;
  result.predicted = primary.predicted;
  return result;
}

// ----------------------------------------------------------------- legacy

std::vector<double> generate_class_stream(const ExperimentSpec& spec,
                                          std::size_t class_index,
                                          std::size_t piats,
                                          std::uint64_t stream_salt) {
  return ExperimentEngine().class_stream(spec, class_index, piats, stream_salt);
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  return ExperimentEngine().run(spec);
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentSpec>& specs) {
  return SweepRunner().run(specs).results;
}

// -------------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(const ExperimentBackend& backend, SweepOptions options)
    : backend_(&backend), options_(std::move(options)) {}

SweepReport SweepRunner::run(const std::vector<ExperimentSpec>& specs) const {
  return run(specs.size(), [&](std::size_t i) { return specs[i]; });
}

SweepReport SweepRunner::run(
    std::size_t count,
    const std::function<ExperimentSpec(std::size_t)>& spec_for) const {
  SweepReport report;
  report.results.resize(count);
  report.completed.assign(count, 0);
  if (count == 0) return report;

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> done{0};
  std::mutex callback_mutex;

  // Runs point i on `engine`. early_stop stays serialized (its contract);
  // progress is invoked OUTSIDE the lock with its own snapshot of the done
  // count, so a slow observer never serializes the workers.
  auto run_point = [&](const ExperimentEngine& engine, std::size_t i) {
    if (stop.load(std::memory_order_relaxed)) return;  // early-stopped
    report.results[i] = engine.run(spec_for(i));
    report.completed[i] = 1;
    const std::size_t finished = done.fetch_add(1) + 1;
    if (options_.early_stop) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      if (options_.early_stop(i, report.results[i])) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
    if (options_.progress) options_.progress(finished, count);
  };

  const std::size_t grain = std::max<std::size_t>(options_.grain, 1);
  auto dispatch = [&](util::ThreadPool& pool) {
    switch (options_.execution) {
      case util::ExecutionPolicy::kSerial: {
        const ExperimentEngine engine(*backend_, options_.batch_piats);
        for (std::size_t i = 0; i < count; ++i) run_point(engine, i);
        return;
      }
      case util::ExecutionPolicy::kMultithread: {
        const ExperimentEngine engine(*backend_, options_.batch_piats);
        util::parallel_for(
            pool, count, [&](std::size_t i) { run_point(engine, i); }, grain);
        return;
      }
      case util::ExecutionPolicy::kChunked: {
        // One engine per worker slot, alive across every chunk the slot
        // drains — the scratch-reuse shape PopulationEngine builds on.
        std::vector<ExperimentEngine> engines(
            util::chunk_slots(pool, count, grain),
            ExperimentEngine(*backend_, options_.batch_piats));
        util::parallel_for_chunks(
            pool, count, grain,
            [&](std::size_t slot, std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                run_point(engines[slot], i);
              }
            });
        return;
      }
    }
  };

  if (options_.execution == util::ExecutionPolicy::kSerial ||
      options_.threads == 0) {
    dispatch(util::ThreadPool::global());
  } else {
    util::ThreadPool pool(options_.threads);
    dispatch(pool);
  }

  report.completed_count = done.load();
  return report;
}

// ---------------------------------------------------------------- SweepGrid

namespace {

/// The environment axis that actually varies for a grid's environment kind.
std::vector<double> environment_axis(const SweepGrid& grid) {
  switch (grid.environment) {
    case SweepGrid::Environment::kLabCrossTraffic:
      return grid.utilizations.empty() ? std::vector<double>{0.25}
                                       : grid.utilizations;
    case SweepGrid::Environment::kCampus:
    case SweepGrid::Environment::kWan:
      return grid.hours.empty() ? std::vector<double>{12.0} : grid.hours;
    case SweepGrid::Environment::kLabZeroCross:
      break;
  }
  return {0.0};  // zero-cross lab has no environment axis
}

Scenario make_scenario(SweepGrid::Environment environment,
                       std::shared_ptr<const sim::TimerPolicy> policy,
                       double axis_value) {
  switch (environment) {
    case SweepGrid::Environment::kLabCrossTraffic:
      return lab_cross_traffic(std::move(policy), axis_value);
    case SweepGrid::Environment::kCampus:
      return campus(std::move(policy), axis_value);
    case SweepGrid::Environment::kWan:
      return wan(std::move(policy), axis_value);
    case SweepGrid::Environment::kLabZeroCross:
      break;
  }
  return lab_zero_cross(std::move(policy));
}

/// The grid's policy axis: explicit prototypes when given, otherwise the
/// paper's σ_T parameterization (0 ⇒ CIT, σ > 0 ⇒ VIT-normal).
std::vector<std::shared_ptr<const sim::TimerPolicy>> policy_axis(
    const SweepGrid& grid) {
  if (!grid.policies.empty()) return grid.policies;
  std::vector<std::shared_ptr<const sim::TimerPolicy>> axis;
  axis.reserve(grid.sigma_timers.size());
  for (const Seconds sigma : grid.sigma_timers) {
    axis.push_back(sigma > 0.0 ? make_vit(sigma) : make_cit());
  }
  return axis;
}

}  // namespace

std::size_t SweepGrid::size() const {
  // The feature axis rides each point's DetectorBank instead of expanding
  // into extra points (and extra simulations).
  const std::size_t taps = tap_hops.empty() ? 1 : tap_hops.size();
  const std::size_t policy_points =
      policies.empty() ? sigma_timers.size() : policies.size();
  return policy_points * environment_axis(*this).size() * taps;
}

std::vector<ExperimentSpec> SweepGrid::expand() const {
  LINKPAD_EXPECTS(!sigma_timers.empty() || !policies.empty());

  const auto axis = environment_axis(*this);
  // One sentinel keeps the loop structure uniform; it is never read when
  // tap_hops is empty.
  const std::vector<std::size_t> taps =
      tap_hops.empty() ? std::vector<std::size_t>{static_cast<std::size_t>(-1)}
                       : tap_hops;

  std::vector<ExperimentSpec> specs;
  specs.reserve(size());
  for (const auto& policy : policy_axis(*this)) {
    LINKPAD_EXPECTS(policy != nullptr);
    for (const double axis_value : axis) {
      Scenario scenario = make_scenario(environment, policy, axis_value);
      for (const std::size_t tap : taps) {
        ExperimentSpec spec;
        spec.scenario = scenario;
        if (tap != static_cast<std::size_t>(-1)) {
          auto& hops = spec.scenario.base.hops_before_tap;
          hops.resize(std::min(tap, hops.size()));
        }
        // All of plan.features() share this point's single simulation: the
        // first is the primary, the rest ride the DetectorBank pass — and
        // so does the whole sample-size axis (prefix replay, one capture).
        spec.plan = plan;
        if (!sample_sizes.empty()) {
          spec.plan.adversary.window_size =
              *std::max_element(sample_sizes.begin(), sample_sizes.end());
        }
        spec.sample_size_axis = sample_sizes;
        // Per-point seed: streams never collide across grid points, and
        // the mapping depends only on (root seed, point index).
        spec.seed = derive_point_seed(seed, specs.size());
        specs.push_back(spec);
      }
    }
  }
  LINKPAD_ENSURES(specs.size() == size());
  return specs;
}

}  // namespace linkpad::core
