#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "analysis/theory.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

namespace {

std::optional<double> theory_prediction(classify::FeatureKind kind,
                                        double r_hat, double n) {
  switch (kind) {
    case classify::FeatureKind::kSampleMean:
      return analysis::detection_rate_mean_exact(r_hat);
    case classify::FeatureKind::kSampleVariance:
      return analysis::detection_rate_variance(r_hat, n);
    case classify::FeatureKind::kSampleEntropy:
      return analysis::detection_rate_entropy(r_hat, n);
    default:
      return std::nullopt;  // extension features: no closed form
  }
}

}  // namespace

// --------------------------------------------------------- ExperimentEngine

ExperimentEngine::ExperimentEngine(const ExperimentBackend& backend,
                                   std::size_t batch_piats)
    : backend_(&backend), batch_piats_(std::max<std::size_t>(batch_piats, 1)) {}

std::vector<double> ExperimentEngine::class_stream(
    const ExperimentSpec& spec, std::size_t class_index, std::size_t piats,
    std::uint64_t stream_salt) const {
  return pull_stream(*backend_, spec.scenario, class_index, spec.seed,
                     stream_salt, piats, batch_piats_);
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec) const {
  const std::size_t num_classes = spec.scenario.payload_rates.size();
  LINKPAD_EXPECTS(num_classes >= 2);
  LINKPAD_EXPECTS(spec.train_windows >= 2 && spec.test_windows >= 1);

  const std::size_t n = spec.adversary.window_size;
  const std::size_t train_piats = spec.train_windows * n;
  const std::size_t test_piats = spec.test_windows * n;

  // Off-line phase: the adversary replicates the system per class.
  std::vector<std::vector<double>> train_streams(num_classes);
  std::vector<std::vector<double>> test_streams(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    // Separate streams for training and run-time capture: the adversary
    // trains on HIS replica, then observes the live system (fresh
    // randomness).
    train_streams[c] = class_stream(spec, c, train_piats, /*salt=*/1);
    test_streams[c] = class_stream(spec, c, test_piats, /*salt=*/2);
    // A finite backend (live capture) may come up short; the adversary
    // still needs at least two training windows and one test window.
    LINKPAD_ENSURES(train_streams[c].size() >= 2 * n);
    LINKPAD_ENSURES(test_streams[c].size() >= n);
  }

  classify::Adversary adversary(spec.adversary);
  adversary.train(train_streams);

  ExperimentResult result;
  result.confusion = adversary.evaluate(test_streams);
  result.detection_rate = result.confusion.detection_rate();
  result.ci = stats::proportion_ci(
      static_cast<std::size_t>(std::llround(
          result.detection_rate * static_cast<double>(result.confusion.total()))),
      result.confusion.total(), 0.95);

  const auto sum_low = stats::summarize(train_streams.front());
  const auto sum_high = stats::summarize(train_streams.back());
  result.piat_mean_low = sum_low.mean;
  result.piat_mean_high = sum_high.mean;
  result.piat_var_low = sum_low.variance;
  result.piat_var_high = sum_high.variance;

  if (num_classes == 2) {
    result.r_hat = analysis::estimate_variance_ratio(train_streams[0],
                                                     train_streams[1]);
    result.predicted = theory_prediction(spec.adversary.feature, result.r_hat,
                                         static_cast<double>(n));
  }
  return result;
}

// ----------------------------------------------------------------- legacy

std::vector<double> generate_class_stream(const ExperimentSpec& spec,
                                          std::size_t class_index,
                                          std::size_t piats,
                                          std::uint64_t stream_salt) {
  return ExperimentEngine().class_stream(spec, class_index, piats, stream_salt);
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  return ExperimentEngine().run(spec);
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentSpec>& specs) {
  return SweepRunner().run(specs).results;
}

// -------------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(const ExperimentBackend& backend, SweepOptions options)
    : backend_(&backend), options_(std::move(options)) {}

SweepReport SweepRunner::run(const std::vector<ExperimentSpec>& specs) const {
  SweepReport report;
  report.results.resize(specs.size());
  report.completed.assign(specs.size(), 0);
  if (specs.empty()) return report;

  const ExperimentEngine engine(*backend_, options_.batch_piats);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> done{0};
  std::mutex callback_mutex;

  auto body = [&](std::size_t i) {
    if (stop.load(std::memory_order_relaxed)) return;  // early-stopped
    report.results[i] = engine.run(specs[i]);
    report.completed[i] = 1;
    const std::size_t finished = done.fetch_add(1) + 1;
    if (options_.early_stop || options_.progress) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      if (options_.early_stop && options_.early_stop(i, report.results[i])) {
        stop.store(true, std::memory_order_relaxed);
      }
      if (options_.progress) options_.progress(finished, specs.size());
    }
  };

  if (options_.threads == 0) {
    util::parallel_for(specs.size(), body);
  } else {
    util::ThreadPool pool(options_.threads);
    util::parallel_for(pool, specs.size(), body);
  }

  report.completed_count = done.load();
  return report;
}

// ---------------------------------------------------------------- SweepGrid

namespace {

/// The environment axis that actually varies for a grid's environment kind.
std::vector<double> environment_axis(const SweepGrid& grid) {
  switch (grid.environment) {
    case SweepGrid::Environment::kLabCrossTraffic:
      return grid.utilizations.empty() ? std::vector<double>{0.25}
                                       : grid.utilizations;
    case SweepGrid::Environment::kCampus:
    case SweepGrid::Environment::kWan:
      return grid.hours.empty() ? std::vector<double>{12.0} : grid.hours;
    case SweepGrid::Environment::kLabZeroCross:
      break;
  }
  return {0.0};  // zero-cross lab has no environment axis
}

Scenario make_scenario(SweepGrid::Environment environment, Seconds sigma,
                       double axis_value) {
  auto policy = sigma > 0.0 ? make_vit(sigma) : make_cit();
  switch (environment) {
    case SweepGrid::Environment::kLabCrossTraffic:
      return lab_cross_traffic(std::move(policy), axis_value);
    case SweepGrid::Environment::kCampus:
      return campus(std::move(policy), axis_value);
    case SweepGrid::Environment::kWan:
      return wan(std::move(policy), axis_value);
    case SweepGrid::Environment::kLabZeroCross:
      break;
  }
  return lab_zero_cross(std::move(policy));
}

}  // namespace

std::size_t SweepGrid::size() const {
  const std::size_t taps = tap_hops.empty() ? 1 : tap_hops.size();
  return sigma_timers.size() * environment_axis(*this).size() * taps *
         features.size();
}

std::vector<ExperimentSpec> SweepGrid::expand() const {
  LINKPAD_EXPECTS(!sigma_timers.empty());
  LINKPAD_EXPECTS(!features.empty());

  const auto axis = environment_axis(*this);
  // One sentinel keeps the loop structure uniform; it is never read when
  // tap_hops is empty.
  const std::vector<std::size_t> taps =
      tap_hops.empty() ? std::vector<std::size_t>{static_cast<std::size_t>(-1)}
                       : tap_hops;

  std::vector<ExperimentSpec> specs;
  specs.reserve(size());
  for (const Seconds sigma : sigma_timers) {
    for (const double axis_value : axis) {
      Scenario scenario = make_scenario(environment, sigma, axis_value);
      for (const std::size_t tap : taps) {
        ExperimentSpec spec;
        spec.scenario = scenario;
        if (tap != static_cast<std::size_t>(-1)) {
          auto& hops = spec.scenario.base.hops_before_tap;
          hops.resize(std::min(tap, hops.size()));
        }
        for (const auto feature : features) {
          spec.adversary.feature = feature;
          spec.adversary.window_size = window_size;
          spec.train_windows = train_windows;
          spec.test_windows = test_windows;
          // Per-point seed: streams never collide across grid points, and
          // the mapping depends only on (root seed, point index).
          spec.seed = util::SplitMix64::mix(
              seed ^ util::SplitMix64::mix(specs.size() + 1));
          specs.push_back(spec);
        }
      }
    }
  }
  LINKPAD_ENSURES(specs.size() == size());
  return specs;
}

}  // namespace linkpad::core
