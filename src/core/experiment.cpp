#include "core/experiment.hpp"

#include <cmath>

#include "analysis/theory.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

namespace {

std::optional<double> theory_prediction(classify::FeatureKind kind,
                                        double r_hat, double n) {
  switch (kind) {
    case classify::FeatureKind::kSampleMean:
      return analysis::detection_rate_mean_exact(r_hat);
    case classify::FeatureKind::kSampleVariance:
      return analysis::detection_rate_variance(r_hat, n);
    case classify::FeatureKind::kSampleEntropy:
      return analysis::detection_rate_entropy(r_hat, n);
    default:
      return std::nullopt;  // extension features: no closed form
  }
}

}  // namespace

std::vector<double> generate_class_stream(const ExperimentSpec& spec,
                                          std::size_t class_index,
                                          std::size_t piats,
                                          std::uint64_t stream_salt) {
  const util::RngFactory factory(spec.seed);
  auto rng = factory.make(stream_salt, class_index);
  return sim::collect_piats(spec.scenario.config_for(class_index), rng, piats);
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  const std::size_t num_classes = spec.scenario.payload_rates.size();
  LINKPAD_EXPECTS(num_classes >= 2);
  LINKPAD_EXPECTS(spec.train_windows >= 2 && spec.test_windows >= 1);

  const std::size_t n = spec.adversary.window_size;
  const std::size_t train_piats = spec.train_windows * n;
  const std::size_t test_piats = spec.test_windows * n;

  // Off-line phase: the adversary replicates the system per class.
  std::vector<std::vector<double>> train_streams(num_classes);
  std::vector<std::vector<double>> test_streams(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    // Separate runs for training and run-time capture: the adversary trains
    // on HIS replica, then observes the live system (fresh randomness).
    train_streams[c] = generate_class_stream(spec, c, train_piats, /*salt=*/1);
    test_streams[c] = generate_class_stream(spec, c, test_piats, /*salt=*/2);
  }

  classify::Adversary adversary(spec.adversary);
  adversary.train(train_streams);

  ExperimentResult result;
  result.confusion = adversary.evaluate(test_streams);
  result.detection_rate = result.confusion.detection_rate();
  result.ci = stats::proportion_ci(
      static_cast<std::size_t>(std::llround(
          result.detection_rate * static_cast<double>(result.confusion.total()))),
      result.confusion.total(), 0.95);

  const auto sum_low = stats::summarize(train_streams.front());
  const auto sum_high = stats::summarize(train_streams.back());
  result.piat_mean_low = sum_low.mean;
  result.piat_mean_high = sum_high.mean;
  result.piat_var_low = sum_low.variance;
  result.piat_var_high = sum_high.variance;

  if (num_classes == 2) {
    result.r_hat = analysis::estimate_variance_ratio(train_streams[0],
                                                     train_streams[1]);
    result.predicted = theory_prediction(spec.adversary.feature, result.r_hat,
                                         static_cast<double>(n));
  }
  return result;
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentSpec>& specs) {
  std::vector<ExperimentResult> results(specs.size());
  util::parallel_for(specs.size(), [&](std::size_t i) {
    results[i] = run_experiment(specs[i]);
  });
  return results;
}

}  // namespace linkpad::core
