#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "analysis/theory.hpp"
#include "classify/detector_bank.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace linkpad::core {

namespace {

std::optional<double> theory_prediction(classify::FeatureKind kind,
                                        double r_hat, double n) {
  switch (kind) {
    case classify::FeatureKind::kSampleMean:
      return analysis::detection_rate_mean_exact(r_hat);
    case classify::FeatureKind::kSampleVariance:
      return analysis::detection_rate_variance(r_hat, n);
    case classify::FeatureKind::kSampleEntropy:
      return analysis::detection_rate_entropy(r_hat, n);
    default:
      return std::nullopt;  // extension features: no closed form
  }
}

stats::BootstrapResult rate_ci(const classify::ConfusionMatrix& confusion) {
  const double rate = confusion.detection_rate();
  return stats::proportion_ci(
      static_cast<std::size_t>(
          std::llround(rate * static_cast<double>(confusion.total()))),
      confusion.total(), 0.95);
}

}  // namespace

std::vector<classify::FeatureKind> ExperimentSpec::features() const {
  std::vector<classify::FeatureKind> out;
  out.reserve(1 + extra_features.size());
  out.push_back(adversary.feature);
  for (const auto kind : extra_features) {
    if (std::find(out.begin(), out.end(), kind) == out.end()) {
      out.push_back(kind);
    }
  }
  return out;
}

const FeatureOutcome& ExperimentResult::outcome(
    classify::FeatureKind kind) const {
  for (const auto& o : per_feature) {
    if (o.feature == kind) return o;
  }
  throw std::invalid_argument("ExperimentResult: feature not evaluated: " +
                              classify::feature_name(kind));
}

// --------------------------------------------------------- ExperimentEngine

ExperimentEngine::ExperimentEngine(const ExperimentBackend& backend,
                                   std::size_t batch_piats)
    : backend_(&backend), batch_piats_(std::max<std::size_t>(batch_piats, 1)) {}

std::vector<double> ExperimentEngine::class_stream(
    const ExperimentSpec& spec, std::size_t class_index, std::size_t piats,
    std::uint64_t stream_salt) const {
  return pull_stream(*backend_, spec.scenario, class_index, spec.seed,
                     stream_salt, piats, batch_piats_);
}

ExperimentResult ExperimentEngine::run(const ExperimentSpec& spec) const {
  const std::size_t num_classes = spec.scenario.payload_rates.size();
  LINKPAD_EXPECTS(num_classes >= 2);
  LINKPAD_EXPECTS(spec.train_windows >= 2 && spec.test_windows >= 1);

  const std::size_t n = spec.adversary.window_size;
  const std::size_t train_piats = spec.train_windows * n;
  const std::size_t test_piats = spec.test_windows * n;

  const auto features = spec.features();
  classify::DetectorBank bank(spec.adversary, features, num_classes);

  // Per-class training-capture moments (Welford, in stream order) feed the
  // sanity summaries and r_hat without ever materializing the capture.
  std::vector<stats::RunningStats> train_stats(num_classes);
  std::vector<std::size_t> train_got(num_classes, 0);

  // Off-line phase: the adversary replicates the system per class and
  // streams HIS replica through the bank in bounded batches. An entropy
  // detector without an explicit Δh first needs the pooled training
  // moments (Scott's rule), which costs one extra pass: replayable
  // backends simply re-open the identical streams; a live capture cannot
  // be replayed, so it is materialized once and both passes run in memory.
  if (bank.needs_prepass() && !backend_->replayable()) {
    std::vector<std::vector<double>> train(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
      train[c] = class_stream(spec, c, train_piats, /*salt=*/1);
      bank.consume_prepass(train[c]);
    }
    bank.finish_prepass();
    for (std::size_t c = 0; c < num_classes; ++c) {
      bank.consume_training(c, train[c]);
      for (const double x : train[c]) train_stats[c].add(x);
      train_got[c] = train[c].size();
    }
  } else {
    if (bank.needs_prepass()) {
      for (std::size_t c = 0; c < num_classes; ++c) {
        stream_batches(*backend_, spec.scenario, c, spec.seed, /*salt=*/1,
                       train_piats, batch_piats_,
                       [&](std::span<const double> batch) {
                         bank.consume_prepass(batch);
                       });
      }
      bank.finish_prepass();
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      train_got[c] = stream_batches(
          *backend_, spec.scenario, c, spec.seed, /*salt=*/1, train_piats,
          batch_piats_, [&](std::span<const double> batch) {
            bank.consume_training(c, batch);
            for (const double x : batch) train_stats[c].add(x);
          });
    }
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    // A finite backend (live capture) may come up short; the adversary
    // still needs at least two training windows per class.
    LINKPAD_ENSURES(train_got[c] >= 2 * n);
  }
  bank.train();

  // Run-time phase: observe the live system (fresh randomness, salt 2) and
  // classify its windows with every detector as the batches arrive.
  for (std::size_t c = 0; c < num_classes; ++c) {
    const std::size_t got = stream_batches(
        *backend_, spec.scenario, c, spec.seed, /*salt=*/2, test_piats,
        batch_piats_,
        [&](std::span<const double> batch) { bank.consume_test(c, batch); });
    LINKPAD_ENSURES(got >= n);
  }

  ExperimentResult result;
  result.piat_mean_low = train_stats.front().mean();
  result.piat_mean_high = train_stats.back().mean();
  result.piat_var_low = train_stats.front().variance();
  result.piat_var_high = train_stats.back().variance();

  if (num_classes == 2) {
    result.r_hat = analysis::variance_ratio(train_stats[0].variance(),
                                            train_stats[1].variance());
  }

  result.per_feature.reserve(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    FeatureOutcome out;
    out.feature = features[i];
    out.confusion = bank.detector(i).confusion();
    out.detection_rate = out.confusion.detection_rate();
    out.ci = rate_ci(out.confusion);
    if (num_classes == 2) {
      out.predicted = theory_prediction(features[i], result.r_hat,
                                        static_cast<double>(n));
    }
    result.per_feature.push_back(std::move(out));
  }

  const FeatureOutcome& primary = result.per_feature.front();
  result.detection_rate = primary.detection_rate;
  result.ci = primary.ci;
  result.confusion = primary.confusion;
  result.predicted = primary.predicted;
  return result;
}

// ----------------------------------------------------------------- legacy

std::vector<double> generate_class_stream(const ExperimentSpec& spec,
                                          std::size_t class_index,
                                          std::size_t piats,
                                          std::uint64_t stream_salt) {
  return ExperimentEngine().class_stream(spec, class_index, piats, stream_salt);
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  return ExperimentEngine().run(spec);
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentSpec>& specs) {
  return SweepRunner().run(specs).results;
}

// -------------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(const ExperimentBackend& backend, SweepOptions options)
    : backend_(&backend), options_(std::move(options)) {}

SweepReport SweepRunner::run(const std::vector<ExperimentSpec>& specs) const {
  SweepReport report;
  report.results.resize(specs.size());
  report.completed.assign(specs.size(), 0);
  if (specs.empty()) return report;

  const ExperimentEngine engine(*backend_, options_.batch_piats);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> done{0};
  std::mutex callback_mutex;

  auto body = [&](std::size_t i) {
    if (stop.load(std::memory_order_relaxed)) return;  // early-stopped
    report.results[i] = engine.run(specs[i]);
    report.completed[i] = 1;
    const std::size_t finished = done.fetch_add(1) + 1;
    if (options_.early_stop || options_.progress) {
      std::lock_guard<std::mutex> lock(callback_mutex);
      if (options_.early_stop && options_.early_stop(i, report.results[i])) {
        stop.store(true, std::memory_order_relaxed);
      }
      if (options_.progress) options_.progress(finished, specs.size());
    }
  };

  if (options_.threads == 0) {
    util::parallel_for(specs.size(), body);
  } else {
    util::ThreadPool pool(options_.threads);
    util::parallel_for(pool, specs.size(), body);
  }

  report.completed_count = done.load();
  return report;
}

// ---------------------------------------------------------------- SweepGrid

namespace {

/// The environment axis that actually varies for a grid's environment kind.
std::vector<double> environment_axis(const SweepGrid& grid) {
  switch (grid.environment) {
    case SweepGrid::Environment::kLabCrossTraffic:
      return grid.utilizations.empty() ? std::vector<double>{0.25}
                                       : grid.utilizations;
    case SweepGrid::Environment::kCampus:
    case SweepGrid::Environment::kWan:
      return grid.hours.empty() ? std::vector<double>{12.0} : grid.hours;
    case SweepGrid::Environment::kLabZeroCross:
      break;
  }
  return {0.0};  // zero-cross lab has no environment axis
}

Scenario make_scenario(SweepGrid::Environment environment, Seconds sigma,
                       double axis_value) {
  auto policy = sigma > 0.0 ? make_vit(sigma) : make_cit();
  switch (environment) {
    case SweepGrid::Environment::kLabCrossTraffic:
      return lab_cross_traffic(std::move(policy), axis_value);
    case SweepGrid::Environment::kCampus:
      return campus(std::move(policy), axis_value);
    case SweepGrid::Environment::kWan:
      return wan(std::move(policy), axis_value);
    case SweepGrid::Environment::kLabZeroCross:
      break;
  }
  return lab_zero_cross(std::move(policy));
}

}  // namespace

std::size_t SweepGrid::size() const {
  // The feature axis rides each point's DetectorBank instead of expanding
  // into extra points (and extra simulations).
  const std::size_t taps = tap_hops.empty() ? 1 : tap_hops.size();
  return sigma_timers.size() * environment_axis(*this).size() * taps;
}

std::vector<ExperimentSpec> SweepGrid::expand() const {
  LINKPAD_EXPECTS(!sigma_timers.empty());
  LINKPAD_EXPECTS(!features.empty());

  const auto axis = environment_axis(*this);
  // One sentinel keeps the loop structure uniform; it is never read when
  // tap_hops is empty.
  const std::vector<std::size_t> taps =
      tap_hops.empty() ? std::vector<std::size_t>{static_cast<std::size_t>(-1)}
                       : tap_hops;

  std::vector<ExperimentSpec> specs;
  specs.reserve(size());
  for (const Seconds sigma : sigma_timers) {
    for (const double axis_value : axis) {
      Scenario scenario = make_scenario(environment, sigma, axis_value);
      for (const std::size_t tap : taps) {
        ExperimentSpec spec;
        spec.scenario = scenario;
        if (tap != static_cast<std::size_t>(-1)) {
          auto& hops = spec.scenario.base.hops_before_tap;
          hops.resize(std::min(tap, hops.size()));
        }
        // All features share this point's single simulation: the first is
        // the primary, the rest ride the DetectorBank pass.
        spec.adversary.feature = features.front();
        spec.extra_features.assign(features.begin() + 1, features.end());
        spec.adversary.window_size = window_size;
        spec.train_windows = train_windows;
        spec.test_windows = test_windows;
        // Per-point seed: streams never collide across grid points, and
        // the mapping depends only on (root seed, point index).
        spec.seed = util::SplitMix64::mix(
            seed ^ util::SplitMix64::mix(specs.size() + 1));
        specs.push_back(spec);
      }
    }
  }
  LINKPAD_ENSURES(specs.size() == size());
  return specs;
}

}  // namespace linkpad::core
