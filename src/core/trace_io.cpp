#include "core/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace linkpad::core {

namespace {
constexpr std::array<char, 4> kMagic = {'L', 'P', 'T', '1'};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}
}  // namespace

void save_trace_csv(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) fail("save_trace_csv: cannot open", path);
  out << "# linkpad PIAT trace\n";
  if (!trace.description.empty()) out << "# " << trace.description << '\n';
  out << std::setprecision(17);
  for (double x : trace.piats) out << x << '\n';
  if (!out) fail("save_trace_csv: write error", path);
}

Trace load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("load_trace_csv: cannot open", path);
  Trace trace;
  std::string line;
  bool first_comment = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // First comment is the format banner; the second carries description.
      if (!first_comment && trace.description.empty() && line.size() > 2) {
        trace.description = line.substr(2);
      }
      first_comment = false;
      continue;
    }
    trace.piats.push_back(std::stod(line));
  }
  return trace;
}

void save_trace_binary(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("save_trace_binary: cannot open", path);
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t desc_len = trace.description.size();
  out.write(reinterpret_cast<const char*>(&desc_len), sizeof(desc_len));
  out.write(trace.description.data(),
            static_cast<std::streamsize>(desc_len));
  const std::uint64_t count = trace.piats.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(trace.piats.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
  if (!out) fail("save_trace_binary: write error", path);
}

Trace load_trace_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("load_trace_binary: cannot open", path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) fail("load_trace_binary: bad magic", path);

  Trace trace;
  std::uint64_t desc_len = 0;
  in.read(reinterpret_cast<char*>(&desc_len), sizeof(desc_len));
  if (!in || desc_len > (1u << 20)) fail("load_trace_binary: bad header", path);
  trace.description.resize(desc_len);
  in.read(trace.description.data(), static_cast<std::streamsize>(desc_len));

  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count > (1ull << 32)) fail("load_trace_binary: bad count", path);
  trace.piats.resize(count);
  in.read(reinterpret_cast<char*>(trace.piats.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) fail("load_trace_binary: truncated data", path);
  return trace;
}

}  // namespace linkpad::core
