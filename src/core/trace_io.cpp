#include "core/trace_io.hpp"

#include <array>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace linkpad::core {

namespace {
constexpr std::array<char, 4> kMagic = {'L', 'P', 'T', '1'};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

/// Malformed content gets a file:line diagnostic plus the offending text,
/// so a corrupt multi-gigabyte trace names the exact line instead of
/// producing silent zeros or a bare std::stod error.
[[noreturn]] void fail_at(const std::string& what, const std::string& path,
                          std::size_t line_number, const std::string& line) {
  throw std::runtime_error(what + " at " + path + ":" +
                           std::to_string(line_number) + ": '" + line + "'");
}

/// Strict full-line double parse; std::stod would silently accept trailing
/// garbage ("1.5abc") and truncated corruption would read as data.
bool parse_full_double(const std::string& line, double& out) {
  const char* begin = line.c_str();
  char* end = nullptr;
  errno = 0;
  out = std::strtod(begin, &end);
  if (end == begin) return false;
  // ERANGE also fires on harmless underflow to subnormals (e.g. "1e-310");
  // only genuine overflow is unrepresentable corruption.
  if (errno == ERANGE && (out == HUGE_VAL || out == -HUGE_VAL)) return false;
  while (*end != '\0') {
    if (std::isspace(static_cast<unsigned char>(*end)) == 0) return false;
    ++end;
  }
  return true;
}
}  // namespace

void save_trace_csv(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) fail("save_trace_csv: cannot open", path);
  out << "# linkpad PIAT trace\n";
  if (!trace.description.empty()) out << "# " << trace.description << '\n';
  out << std::setprecision(17);
  for (double x : trace.piats) out << x << '\n';
  if (!out) fail("save_trace_csv: write error", path);
}

Trace load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("load_trace_csv: cannot open", path);
  Trace trace;
  std::string line;
  std::size_t line_number = 0;
  bool first_comment = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // First comment is the format banner; the second carries description.
      if (!first_comment && trace.description.empty() && line.size() > 2) {
        trace.description = line.substr(2);
      }
      first_comment = false;
      continue;
    }
    double value = 0.0;
    if (!parse_full_double(line, value)) {
      fail_at("load_trace_csv: malformed value", path, line_number, line);
    }
    trace.piats.push_back(value);
  }
  if (in.bad()) fail("load_trace_csv: read error", path);
  return trace;
}

void save_trace_binary(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("save_trace_binary: cannot open", path);
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t desc_len = trace.description.size();
  out.write(reinterpret_cast<const char*>(&desc_len), sizeof(desc_len));
  out.write(trace.description.data(),
            static_cast<std::streamsize>(desc_len));
  const std::uint64_t count = trace.piats.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(trace.piats.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
  if (!out) fail("save_trace_binary: write error", path);
}

Trace load_trace_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("load_trace_binary: cannot open", path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) fail("load_trace_binary: bad magic", path);

  Trace trace;
  std::uint64_t desc_len = 0;
  in.read(reinterpret_cast<char*>(&desc_len), sizeof(desc_len));
  if (!in || desc_len > (1u << 20)) fail("load_trace_binary: bad header", path);
  trace.description.resize(desc_len);
  in.read(trace.description.data(), static_cast<std::streamsize>(desc_len));
  if (!in) fail("load_trace_binary: truncated description", path);

  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count > (1ull << 32)) fail("load_trace_binary: bad count", path);
  // Validate the count against the bytes actually present BEFORE resizing:
  // a corrupt count field must produce a diagnostic, not a giant
  // allocation / bad_alloc.
  const auto payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(payload_start);
  if (payload_start < 0 || file_end < payload_start ||
      static_cast<std::uint64_t>(file_end - payload_start) <
          count * sizeof(double)) {
    fail("load_trace_binary: truncated data (count field says " +
             std::to_string(count) + " PIATs)",
         path);
  }
  trace.piats.resize(count);
  in.read(reinterpret_cast<char*>(trace.piats.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in || static_cast<std::uint64_t>(in.gcount()) != count * sizeof(double)) {
    fail("load_trace_binary: truncated data (count field says " +
             std::to_string(count) + " PIATs)",
         path);
  }
  // A well-formed trace ends exactly after the payload; trailing bytes mean
  // the count field and the file disagree.
  in.peek();
  if (!in.eof()) fail("load_trace_binary: trailing bytes after payload", path);
  return trace;
}

}  // namespace linkpad::core
