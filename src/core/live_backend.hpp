// Live adapter for the engine layer: serves PIATs captured from the real
// loopback gateway (live::run_live_experiment) through the same PiatSource
// interface the simulated backend uses, so every consumer of the experiment
// stack can run against real OS timers and sockets unchanged.
//
// The scenario's padding policy and payload rate are mapped onto
// LiveGatewayConfig: tau = E[T] of the policy (optionally scaled down so
// tests finish quickly), sigma_timer = sqrt(Var(T)). Hop models cannot be
// reproduced on loopback and are ignored — the live tap sits right at the
// gateway output, the paper's Sec 5.1.1 observation point.
#pragma once

#include <cstdint>
#include <memory>

#include "core/piat_source.hpp"
#include "util/types.hpp"

namespace linkpad::core {

struct LiveBackendOptions {
  /// Multiplies the scenario policy's tau (and sigma) before driving the
  /// real clock; 0.1 turns the paper's 10 ms timer into 1 ms so captures
  /// finish 10x faster with the same relative design.
  double tau_scale = 1.0;
  /// Constant datagram size on the wire.
  int wire_bytes = 256;
  /// Per-capture hard deadline handed to run_live_experiment.
  int timeout_ms = 30000;
  /// Wire packets per capture batch; 0 sizes each batch to the pull.
  std::size_t batch_packets = 0;
};

/// Backend running real loopback captures. Each open() maps the scenario
/// class onto a LiveGatewayConfig; collect() runs as many captures as the
/// pull needs and concatenates their PIAT series.
[[nodiscard]] std::unique_ptr<ExperimentBackend> make_live_backend(
    const LiveBackendOptions& options = {});

}  // namespace linkpad::core
