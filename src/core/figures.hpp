// Figure-series generators: one function per quantitative figure of the
// paper, returning exactly the rows/curves the figure plots. The bench
// drivers print these; tests assert their shapes.
//
//   Fig 4(a) — PIAT pdf under CIT at 10/40 pps (zero cross traffic)
//   Fig 4(b) — detection rate vs sample size, experiment + theory
//              (the whole n axis rides ONE capture via prefix replay)
//   Fig 5(a) — VIT: detection rate vs σ_T (n = 2000)
//   Fig 5(b) — theoretical n(99%) vs σ_T, plus its EMPIRICAL counterpart
//   Fig 6    — CIT: detection rate vs shared-link utilization (n = 1000)
//   Fig 8    — campus / WAN: detection rate vs time of day (n = 1000)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "classify/feature.hpp"
#include "core/piat_source.hpp"
#include "core/scenarios.hpp"
#include "stats/descriptive.hpp"

namespace linkpad::core {

/// Common knobs for every figure generator.
struct FigureOptions {
  std::uint64_t seed = 20030324;
  /// Scales the number of train/test windows (and, for Fig 8, the number of
  /// time slots). 1.0 = paper-grade resolution; tests use ~0.1.
  double effort = 1.0;
  /// PIAT backend; null = the simulated testbed. Figures are pure functions
  /// of (options) whenever the backend is deterministic.
  std::shared_ptr<const ExperimentBackend> backend;
};

/// One named curve y(x) in a detection figure.
struct Curve {
  std::string name;
  std::vector<double> y;
};

/// A figure's worth of series sharing one x axis.
struct FigureSeries {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<double> x;
  std::vector<Curve> curves;

  [[nodiscard]] const Curve& curve(const std::string& name) const;
};

// ------------------------------------------------------------- Fig 4(a) --

struct Fig4aResult {
  stats::Summary summary_low;   ///< padded PIAT stats at 10 pps
  stats::Summary summary_high;  ///< padded PIAT stats at 40 pps
  double r_hat = 1.0;           ///< σ̂_h² / σ̂_l²
  /// Gaussian-KDE densities on a common grid (x in seconds).
  std::vector<double> grid;
  std::vector<double> pdf_low;
  std::vector<double> pdf_high;
};

/// CIT, zero cross traffic, tap at GW1 (paper Fig 4a).
Fig4aResult fig4a_piat_pdf(const FigureOptions& options);

// ----------------------------------------------------------- Fig 4(b)+ --

/// Detection rate vs sample size n for the three features, empirical and
/// theoretical (curves named "<feature> experiment" / "<feature> theory").
FigureSeries fig4b_detection_vs_n(const FigureOptions& options);

/// VIT sweep: detection rate vs σ_T at fixed n = 2000 (paper Fig 5a).
FigureSeries fig5a_detection_vs_sigma(const FigureOptions& options);

/// Theoretical sample size for 99% detection vs σ_T (paper Fig 5b).
FigureSeries fig5b_n99_vs_sigma(const FigureOptions& options);

/// EMPIRICAL n(99%) vs σ_T next to the Theorem 2/3 inversion — the
/// measured counterpart of Fig 5(b), affordable because each sigma's whole
/// sample-size axis rides ONE simulated capture (prefix replay, DESIGN.md
/// §2.6). Curves "<feature> empirical" (NaN where 99% is never reached
/// within the axis — padding wins) and "<feature> theory".
FigureSeries fig5b_n99_vs_sigma_empirical(const FigureOptions& options);

/// CIT with cross traffic: detection rate vs link utilization (paper Fig 6).
FigureSeries fig6_detection_vs_utilization(const FigureOptions& options);

/// Time-of-day sweep (paper Fig 8a campus = false, Fig 8b wan = true).
FigureSeries fig8_detection_vs_hour(bool wan, const FigureOptions& options);

// ------------------------------------------------------------- shared ---

/// Empirical detection rates of several features on one scenario at window
/// size n, sharing the generated PIAT streams across features (exposed for
/// ablation benches). Returns one rate per feature, in order.
std::vector<double> detection_rates_on_scenario(
    const Scenario& scenario, const std::vector<classify::FeatureKind>& features,
    std::size_t window_size, std::size_t train_windows,
    std::size_t test_windows, std::uint64_t seed,
    const ExperimentBackend* backend = nullptr);

}  // namespace linkpad::core
