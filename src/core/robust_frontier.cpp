#include "core/robust_frontier.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "analysis/overhead.hpp"
#include "core/shard_io.hpp"
#include "util/check.hpp"

namespace linkpad::core {

namespace {

/// The candidate's evaluation spec: `plan` stripped to the candidate
/// alone. The engine requires a primary feature detector, so a sample-mean
/// probe at the candidate's own window size rides along (cheapest
/// accumulator; its verdict is never read) while the candidate itself
/// rides extra_detectors and its DetectorOutcome::attack_score is the only
/// number the tuner consumes. Matching the probe window to the candidate
/// sizes the capture exactly: train/test limits scale with the candidate's
/// window, so small-window candidates are not charged for large-window
/// captures.
ExperimentSpec candidate_spec(const Scenario& scenario,
                              const AdversaryPlan& plan,
                              const classify::DetectorSpec& candidate,
                              std::uint64_t seed, std::size_t train_windows,
                              std::size_t test_windows) {
  ExperimentSpec spec;
  spec.scenario = scenario;
  spec.plan = plan;
  spec.plan.extra_features.clear();
  spec.plan.cpd_detectors.clear();
  spec.plan.adversary = candidate.adversary;
  spec.plan.adversary.feature = classify::FeatureKind::kSampleMean;
  spec.plan.extra_detectors = {candidate};
  spec.plan.train_windows = train_windows;
  spec.plan.test_windows = test_windows;
  spec.seed = seed;
  return spec;
}

/// Fail fast when the backend cannot account padding cost (same probe as
/// run_frontier): reject a passive live tap BEFORE paying for tuning.
void require_overhead_accounting(const ExperimentBackend& backend,
                                 const ExperimentSpec& probe_spec,
                                 const char* who) {
  const auto source = backend.open(probe_spec.scenario, /*class_index=*/0,
                                   probe_spec.seed, /*salt=*/1);
  if (!source->overhead().has_value()) {
    throw std::invalid_argument(
        std::string(who) + ": backend '" + backend.name() +
        "' provides no padding-cost accounting (PiatSource::overhead) — "
        "the overhead/detectability frontier needs a gateway-visible "
        "backend such as the simulated testbed");
  }
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c); break;
    }
  }
  out.push_back('"');
}

void append_hex_double(std::string& out, double x) {
  out.push_back('"');
  out += encode_double(x);
  out.push_back('"');
}

}  // namespace

TuneResult tune_adversary(const Scenario& scenario, const AdversaryPlan& plan,
                          const classify::DetectorSearchSpace& space,
                          std::uint64_t seed, const ExperimentBackend& backend,
                          const TuneOptions& options) {
  LINKPAD_EXPECTS(options.exhaustive_limit >= 1);
  LINKPAD_EXPECTS(options.min_windows >= 2);
  LINKPAD_EXPECTS(plan.train_windows >= 2);
  LINKPAD_EXPECTS(plan.test_windows >= 1);
  if (options.sweep.early_stop) {
    throw std::invalid_argument(
        "tune_adversary: SweepOptions::early_stop must be unset — "
        "successive halving ranks every surviving candidate, and a partial "
        "round ranks nothing");
  }
  const auto candidates = space.expand();

  TuneResult result;
  // One round = one SweepRunner sweep over the survivors, every candidate
  // an independent point of the same (scenario, seed): identical captures,
  // so a round is a fair race, and the runner's determinism contract makes
  // the ranking bit-identical at any thread count.
  const auto evaluate = [&](const std::vector<std::size_t>& survivors,
                            std::size_t train_windows,
                            std::size_t test_windows) {
    const auto report =
        SweepRunner(backend, options.sweep)
            .run(survivors.size(), [&](std::size_t i) {
              return candidate_spec(scenario, plan, candidates[survivors[i]],
                                    seed, train_windows, test_windows);
            });
    LINKPAD_ENSURES(report.all_completed());
    std::vector<double> scores(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      scores[i] = report.results[i].per_detector.at(0).attack_score;
    }
    result.rounds += 1;
    result.evaluations += survivors.size();
    return scores;
  };

  std::vector<std::size_t> survivors(candidates.size());
  std::iota(survivors.begin(), survivors.end(), std::size_t{0});

  // Halving rounds: budget doubles from min_windows, each round keeps the
  // better half. The prefix property makes the schedule cheap — a doubled
  // budget EXTENDS the previous round's capture (same scenario, same seed)
  // rather than re-rolling it, so survivors are re-scored on strictly more
  // of the same evidence, never on a different draw.
  std::size_t budget = options.min_windows;
  while (survivors.size() > options.exhaustive_limit &&
         budget < plan.train_windows) {
    const auto scores =
        evaluate(survivors, std::min(budget, plan.train_windows),
                 std::min(budget, plan.test_windows));
    std::vector<std::size_t> order(survivors.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    // stable_sort on descending score + ascending survivors ⇒ ties break
    // toward the lower candidate index, deterministically.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return scores[a] > scores[b];
                     });
    const std::size_t keep = (survivors.size() + 1) / 2;
    std::vector<std::size_t> next;
    next.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) next.push_back(survivors[order[i]]);
    std::sort(next.begin(), next.end());
    survivors = std::move(next);
    budget *= 2;
  }

  // Final round: the finalists (or, for small spaces, the whole grid) at
  // the plan's full budget.
  const auto final_scores =
      evaluate(survivors, plan.train_windows, plan.test_windows);
  std::size_t best = 0;
  for (std::size_t i = 1; i < survivors.size(); ++i) {
    if (final_scores[i] > final_scores[best]) best = i;
  }
  result.winner = survivors[best];
  result.winner_spec = candidates[result.winner];
  result.winner_label = classify::candidate_label(result.winner_spec);
  result.winner_score = final_scores[best];
  result.final_scores.reserve(survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    result.final_scores.push_back(
        {survivors[i], classify::candidate_label(candidates[survivors[i]]),
         final_scores[i]});
  }
  return result;
}

std::vector<std::size_t> RobustFrontierResult::front() const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].pareto_efficient) indices.push_back(i);
  }
  return indices;
}

RobustFrontierResult run_robust_frontier(const RobustFrontierSpec& spec,
                                         const ExperimentBackend& backend,
                                         SweepOptions options) {
  LINKPAD_EXPECTS(!spec.frontier.policies.empty());
  if (options.early_stop) {
    throw std::invalid_argument(
        "run_robust_frontier: SweepOptions::early_stop must be unset — the "
        "frontier needs every policy point completed, and a partial sweep "
        "would silently mark skipped points Pareto-efficient at zero cost");
  }
  require_overhead_accounting(backend, spec.frontier.point_spec(0),
                              "run_robust_frontier");

  const std::size_t count = spec.frontier.policies.size();

  // Stage 1 — selection: tune the attacker per policy point on the
  // held-out seed. Points run in sequence; each tuning round is itself a
  // sharded sweep, so the pool stays busy and the outer order carries no
  // nondeterminism.
  std::vector<TuneResult> tuned;
  tuned.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Scenario scenario = spec.frontier.scenario;
    scenario.base.policy = spec.frontier.policies[i];
    TuneOptions tune = spec.tune;
    tune.sweep = options;  // one sharding knob drives both stages
    tuned.push_back(tune_adversary(scenario, spec.frontier.plan, spec.space,
                                   spec.selection_seed(i), backend, tune));
  }

  // Stage 2 — scoring: one ordinary frontier sweep on run_frontier's
  // per-point seeds, each point's winner riding its bank. The fixed
  // detectors see streams bit-identical to run_frontier's (same seed, same
  // plan; the extra detector taps the capture without perturbing it), so
  // fixed_detection reproduces run_frontier exactly.
  const auto report = SweepRunner(backend, std::move(options))
                          .run(count, [&](std::size_t i) {
                            ExperimentSpec point = spec.frontier.point_spec(i);
                            point.plan.extra_detectors.push_back(
                                tuned[i].winner_spec);
                            return point;
                          });
  LINKPAD_ENSURES(report.all_completed());

  RobustFrontierResult result;
  result.points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ExperimentResult& scored = report.results[i];
    RobustFrontierPoint point;
    point.policy = spec.frontier.policies[i]->name();
    for (const auto& outcome : scored.per_feature) {
      point.fixed_detection =
          std::max(point.fixed_detection, outcome.detection_rate);
    }
    // The tuned attacker keeps the fixed bank in hand: its rate is the
    // best of the fixed features AND the tuned detector, so the tuned
    // column is ≥ the fixed column by construction.
    point.tuned_detection = std::max(
        point.fixed_detection, scored.per_detector.back().attack_score);
    if (!scored.mean_padding_bps().has_value()) {
      throw std::invalid_argument(
          "run_robust_frontier: backend '" + backend.name() +
          "' stopped providing padding-cost accounting mid-sweep");
    }
    point.overhead_bps = *scored.mean_padding_bps();
    point.wire_bps = *scored.mean_wire_bps();
    point.dummy_fraction = *scored.mean_dummy_fraction();
    point.delay_p95 = *scored.worst_delay_p95();
    point.winner = tuned[i].winner;
    point.winner_label = tuned[i].winner_label;
    point.selection_score = tuned[i].winner_score;
    result.points.push_back(std::move(point));
  }

  // Re-mark Pareto efficiency on the (overhead, TUNED detection) plane —
  // the frontier the defender actually faces.
  std::vector<std::pair<double, double>> coords;
  coords.reserve(result.points.size());
  for (const auto& point : result.points) {
    coords.emplace_back(point.overhead_bps, point.tuned_detection);
  }
  for (const std::size_t i : analysis::pareto_front(coords)) {
    result.points[i].pareto_efficient = true;
  }
  return result;
}

std::string robust_frontier_json(const RobustFrontierResult& result) {
  std::string out;
  out += "{\"version\":1,\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const RobustFrontierPoint& p = result.points[i];
    if (i > 0) out.push_back(',');
    out += "{\"policy\":";
    append_json_string(out, p.policy);
    out += ",\"overhead_bps\":";
    append_hex_double(out, p.overhead_bps);
    out += ",\"wire_bps\":";
    append_hex_double(out, p.wire_bps);
    out += ",\"dummy_fraction\":";
    append_hex_double(out, p.dummy_fraction);
    out += ",\"delay_p95\":";
    append_hex_double(out, p.delay_p95);
    out += ",\"fixed_detection\":";
    append_hex_double(out, p.fixed_detection);
    out += ",\"tuned_detection\":";
    append_hex_double(out, p.tuned_detection);
    out += ",\"winner\":";
    out += std::to_string(p.winner);
    out += ",\"winner_label\":";
    append_json_string(out, p.winner_label);
    out += ",\"selection_score\":";
    append_hex_double(out, p.selection_score);
    out += ",\"pareto\":";
    out += p.pareto_efficient ? "true" : "false";
    out.push_back('}');
  }
  out += "],\"front\":[";
  const auto front = result.front();
  for (std::size_t i = 0; i < front.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(front[i]);
  }
  out += "]}";
  return out;
}

}  // namespace linkpad::core
