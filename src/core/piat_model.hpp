// Bridge between the simulator's physical parameters and the paper's
// variance decomposition X = T + δ_gw + δ_net (eq. 8).
//
// One modelling subtlety the closed forms gloss over: the gateway jitter and
// hop waits enter each INTER-arrival as a difference of two consecutive
// per-packet terms (X_k = t_k − t_{k−1}), so their variance appears DOUBLED
// in Var(PIAT) (and consecutive PIATs are MA(1)-correlated — harmless for
// the marginal-feature classifiers studied here). The paper's σ_gw², σ_net²
// are therefore the *effective* per-PIAT quantities: σ² = 2·Var(per-packet).
// This module computes those effective components from a TestbedConfig so
// theory curves can be predicted before running a single packet.
#pragma once

#include "analysis/theory.hpp"
#include "sim/testbed.hpp"

namespace linkpad::core {

/// Effective variance components of eq. (16) predicted from two testbed
/// configurations (low / high payload rate). The configs must differ only
/// in payload rate.
analysis::VarianceComponents predict_components(const sim::TestbedConfig& low,
                                                const sim::TestbedConfig& high);

/// Predicted Var(PIAT) for one config (σ_T² + 2Var(δ_gw) + 2Var(W_net)).
double predict_piat_variance(const sim::TestbedConfig& cfg);

/// Measure variance components empirically: runs the testbed at both rates
/// and estimates (σ_l², σ_h²) from `piats_per_class` samples; the split
/// into timer/gateway/net parts follows the config's known σ_T² and hop
/// theory. Used by calibration tests and the guidelines example.
struct MeasuredComponents {
  double sigma2_low = 0.0;   ///< Var(PIAT) at ω_l
  double sigma2_high = 0.0;  ///< Var(PIAT) at ω_h
  double ratio = 1.0;        ///< r̂ = σ̂_h²/σ̂_l²
};
MeasuredComponents measure_components(const sim::TestbedConfig& low,
                                      const sim::TestbedConfig& high,
                                      std::size_t piats_per_class,
                                      std::uint64_t seed);

}  // namespace linkpad::core
