// Orchestrates a full live loopback experiment: receiver (the adversary's
// capture device) + gateway sender, returning the measured PIAT series.
//
// This is the empirical counterpart of sim::Testbed running against the
// real kernel: the captured PIATs contain genuine scheduler wake-up jitter,
// NIC-loopback queueing and clock granularity. Absolute numbers depend on
// the host; the structural claims (same PIAT mean across payload rates,
// VIT variance ≫ CIT variance) are what the live tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "live/live_gateway.hpp"
#include "stats/descriptive.hpp"

namespace linkpad::live {

/// Result of one live run.
struct LiveResult {
  std::vector<double> piats;        ///< measured at the receiver (seconds)
  stats::Summary piat_summary;      ///< summarize(piats)
  LiveGatewayStats gateway;         ///< payload/dummy accounting
  std::uint64_t received = 0;       ///< datagrams captured
  std::uint64_t payload_received = 0;
};

/// Run gateway + receiver on loopback; blocks until the configured packet
/// count was sent and the receiver drained (or `timeout_ms` passed).
LiveResult run_live_experiment(const LiveGatewayConfig& config,
                               int timeout_ms = 30000);

}  // namespace linkpad::live
