#include "live/live_gateway.hpp"

#include <chrono>
#include <optional>
#include <cstring>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace linkpad::live {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration to_duration(Seconds s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

LiveGatewayStats run_live_gateway(const LiveGatewayConfig& config,
                                  std::uint16_t destination_port,
                                  const std::atomic<bool>* cancel) {
  LINKPAD_EXPECTS(config.tau > 0.0);
  LINKPAD_EXPECTS(config.wire_bytes >=
                  static_cast<int>(sizeof(WireHeader)));
  LINKPAD_EXPECTS(config.packet_count > 0);

  UdpSocket socket = UdpSocket::connect_loopback(destination_port);

  // Payload producer: a token counter incremented at payload_rate.
  std::atomic<std::int64_t> payload_queue{0};
  std::atomic<bool> stop_payload{false};
  std::thread payload_thread([&] {
    const auto period = to_duration(1.0 / config.payload_rate);
    auto next = Clock::now() + period;
    while (!stop_payload.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_until(next);
      next += period;
      payload_queue.fetch_add(1, std::memory_order_relaxed);
    }
  });

  util::Rng rng(config.seed);
  // VIT intervals truncated at tau/100, mirroring sim::NormalIntervalTimer.
  std::optional<stats::TruncatedNormal> vit;
  if (config.sigma_timer > 0.0) {
    vit.emplace(config.tau, config.sigma_timer, config.tau / 100.0);
  }

  std::vector<std::byte> datagram(static_cast<std::size_t>(config.wire_bytes));
  LiveGatewayStats stats;

  auto deadline = Clock::now() + to_duration(config.tau);
  for (std::uint64_t seq = 0; seq < config.packet_count; ++seq) {
    std::this_thread::sleep_until(deadline);
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;

    WireHeader header;
    header.sequence = seq;
    // Claim one queued payload token if available.
    std::int64_t tokens = payload_queue.load(std::memory_order_relaxed);
    bool is_payload = false;
    while (tokens > 0) {
      if (payload_queue.compare_exchange_weak(tokens, tokens - 1,
                                              std::memory_order_relaxed)) {
        is_payload = true;
        break;
      }
    }
    header.is_payload = is_payload ? 1 : 0;
    if (is_payload) {
      ++stats.payload_sent;
    } else {
      ++stats.dummy_sent;
    }

    std::memcpy(datagram.data(), &header, sizeof(header));
    socket.send(datagram);

    const Seconds interval = vit ? vit->sample(rng) : config.tau;
    deadline += to_duration(interval);
    // If we overran past the next deadline (scheduler stall), push it out:
    // real periodic timers coalesce rather than burst.
    const auto now = Clock::now();
    if (deadline <= now) deadline = now + to_duration(config.tau / 100.0);
  }

  stop_payload.store(true, std::memory_order_relaxed);
  payload_thread.join();
  return stats;
}

}  // namespace linkpad::live
