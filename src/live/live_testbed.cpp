#include "live/live_testbed.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "util/check.hpp"

namespace linkpad::live {

LiveResult run_live_experiment(const LiveGatewayConfig& config,
                               int timeout_ms) {
  LINKPAD_EXPECTS(timeout_ms > 0);

  UdpSocket receiver = UdpSocket::bind_loopback();
  const std::uint16_t port = receiver.port();

  LiveResult result;
  std::vector<double> arrivals;
  arrivals.reserve(config.packet_count);

  std::atomic<bool> cancel{false};
  std::thread capture([&] {
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    std::vector<std::byte> buffer(
        static_cast<std::size_t>(config.wire_bytes) + 64);
    const auto hard_deadline =
        t0 + std::chrono::milliseconds(timeout_ms);
    while (arrivals.size() < config.packet_count) {
      const auto now = Clock::now();
      if (now >= hard_deadline) break;
      const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
          hard_deadline - now);
      const auto got = receiver.recv(
          buffer, std::min<std::chrono::milliseconds>(
                      budget, std::chrono::milliseconds(250)));
      if (!got) continue;
      const auto stamp =
          std::chrono::duration<double>(Clock::now() - t0).count();
      arrivals.push_back(stamp);
      if (*got >= sizeof(WireHeader)) {
        WireHeader header;
        std::memcpy(&header, buffer.data(), sizeof(header));
        if (header.is_payload != 0) ++result.payload_received;
      }
    }
  });

  result.gateway = run_live_gateway(config, port, &cancel);

  capture.join();

  result.received = arrivals.size();
  result.piats.reserve(arrivals.size() > 0 ? arrivals.size() - 1 : 0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    result.piats.push_back(arrivals[i] - arrivals[i - 1]);
  }
  if (!result.piats.empty()) {
    result.piat_summary = stats::summarize(result.piats);
  }
  return result;
}

}  // namespace linkpad::live
