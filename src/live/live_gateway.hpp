// Real-time padding gateway: the paper's GW1 timer loop executed against
// the actual OS clock, emitting real UDP datagrams on loopback.
//
// A payload thread produces "user packets" (a counter) at the configured
// rate; the gateway thread sleeps to absolute deadlines S_k = S_{k−1} + T_k
// (drift-free, like a kernel periodic timer) and on each wake-up sends one
// constant-size datagram — payload if the queue is non-empty, dummy
// otherwise. Scheduler wake-up latency plays the role of δ_gw here, for
// real: no simulation involved.
#pragma once

#include <atomic>
#include <cstdint>

#include "live/udp_channel.hpp"
#include "stats/distributions.hpp"
#include "util/types.hpp"

namespace linkpad::live {

/// Wire header of a live padded datagram (remaining bytes are padding).
struct WireHeader {
  std::uint64_t sequence = 0;
  std::uint8_t is_payload = 0;  ///< instrumentation only; a real deployment
                                ///< encrypts this away (the receiver-side
                                ///< sniffer never reads it for detection)
};

/// Gateway configuration.
struct LiveGatewayConfig {
  Seconds tau = 1e-3;            ///< timer mean interval (1 ms default so
                                 ///< tests finish quickly; paper uses 10 ms)
  Seconds sigma_timer = 0.0;     ///< 0 ⇒ CIT, > 0 ⇒ VIT(normal, truncated)
  PacketsPerSecond payload_rate = 100.0;
  std::size_t packet_count = 1000;  ///< wire packets to emit, then stop
  int wire_bytes = 256;             ///< constant datagram size
  std::uint64_t seed = 1;           ///< VIT interval randomness
};

/// Emission statistics after a run.
struct LiveGatewayStats {
  std::uint64_t payload_sent = 0;
  std::uint64_t dummy_sent = 0;
};

/// Run the gateway loop synchronously (blocks until packet_count datagrams
/// were sent to 127.0.0.1:`destination_port`). Thread-safe to run while a
/// receiver thread drains the socket.
LiveGatewayStats run_live_gateway(const LiveGatewayConfig& config,
                                  std::uint16_t destination_port,
                                  const std::atomic<bool>* cancel = nullptr);

}  // namespace linkpad::live
