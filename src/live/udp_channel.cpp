#include "live/udp_channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace linkpad::live {

namespace {
[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

UdpSocket UdpSocket::bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) fail("socket");
  UdpSocket sock(fd);

  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    fail("bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail("getsockname");
  }
  sock.port_ = ntohs(bound.sin_port);
  return sock;
}

UdpSocket UdpSocket::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) fail("socket");
  UdpSocket sock(fd);

  sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    fail("connect");
  }
  sock.port_ = port;
  return sock;
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocket::send(std::span<const std::byte> payload) {
  const ssize_t n = ::send(fd_, payload.data(), payload.size(), 0);
  if (n < 0) fail("send");
  if (static_cast<std::size_t>(n) != payload.size()) {
    throw std::runtime_error("UdpSocket::send: short datagram write");
  }
}

std::optional<std::size_t> UdpSocket::recv(std::span<std::byte> buffer,
                                           std::chrono::milliseconds timeout) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready < 0) fail("poll");
  if (ready == 0) return std::nullopt;

  const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
  if (n < 0) fail("recv");
  return static_cast<std::size_t>(n);
}

}  // namespace linkpad::live
