// Thin RAII wrapper over a POSIX UDP socket bound/connected on loopback.
//
// The live testbed sends the padded stream as real UDP datagrams through
// the kernel network stack so that the measured PIATs contain genuine OS
// scheduler + network-stack jitter — the physical phenomenon the paper's
// gateway experiments measure on TimeSys Linux.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace linkpad::live {

/// Movable, non-copyable UDP socket handle.
class UdpSocket {
 public:
  /// Bind to 127.0.0.1:`port` (0 = kernel-assigned; read back via port()).
  static UdpSocket bind_loopback(std::uint16_t port = 0);

  /// Create an unbound socket "connected" to 127.0.0.1:`port`.
  static UdpSocket connect_loopback(std::uint16_t port);

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  /// Send one datagram (connected sockets only). Throws on error.
  void send(std::span<const std::byte> payload);

  /// Receive one datagram with a timeout. Returns the byte count, or
  /// std::nullopt if the timeout expired.
  std::optional<std::size_t> recv(std::span<std::byte> buffer,
                                  std::chrono::milliseconds timeout);

  /// Locally bound port (bound sockets only).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  explicit UdpSocket(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace linkpad::live
