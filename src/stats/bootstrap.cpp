#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/special_math.hpp"
#include "util/check.hpp"

namespace linkpad::stats {

BootstrapResult bootstrap_ci(
    std::span<const double> data,
    const std::function<double(std::span<const double>)>& statistic,
    int resamples, double confidence, util::Xoshiro256pp& rng) {
  LINKPAD_EXPECTS(!data.empty());
  LINKPAD_EXPECTS(resamples > 1);
  LINKPAD_EXPECTS(confidence > 0.0 && confidence < 1.0);

  BootstrapResult result;
  result.estimate = statistic(data);

  const std::size_t n = data.size();
  std::vector<double> resample(n);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = static_cast<std::size_t>(rng() % n);
      resample[i] = data[j];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = 1.0 - confidence;
  result.lo = quantile_sorted(stats, alpha / 2.0);
  result.hi = quantile_sorted(stats, 1.0 - alpha / 2.0);
  return result;
}

BootstrapResult proportion_ci(std::size_t successes, std::size_t trials,
                              double confidence) {
  LINKPAD_EXPECTS(trials > 0);
  LINKPAD_EXPECTS(successes <= trials);
  LINKPAD_EXPECTS(confidence > 0.0 && confidence < 1.0);

  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;

  BootstrapResult result;
  result.estimate = p;
  result.lo = std::max(0.0, center - margin);
  result.hi = std::min(1.0, center + margin);
  return result;
}

}  // namespace linkpad::stats
