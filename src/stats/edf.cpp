#include "stats/edf.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace linkpad::stats {

double ks_distance_sorted(std::span<const double> a_sorted,
                          std::span<const double> b_sorted) {
  LINKPAD_EXPECTS(!a_sorted.empty() && !b_sorted.empty());
  const double na = static_cast<double>(a_sorted.size());
  const double nb = static_cast<double>(b_sorted.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a_sorted.size() && j < b_sorted.size()) {
    // Advance past ALL pooled points with the current smallest value before
    // measuring: ties in both samples step the two EDFs simultaneously.
    const double x = std::min(a_sorted[i], b_sorted[j]);
    while (i < a_sorted.size() && a_sorted[i] <= x) ++i;
    while (j < b_sorted.size() && b_sorted[j] <= x) ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double cvm_distance_sorted(std::span<const double> a_sorted,
                           std::span<const double> b_sorted) {
  LINKPAD_EXPECTS(!a_sorted.empty() && !b_sorted.empty());
  const double na = static_cast<double>(a_sorted.size());
  const double nb = static_cast<double>(b_sorted.size());
  const double total = na + nb;
  std::size_t i = 0, j = 0;
  double acc = 0.0;
  // Integrate (F_a − F_b)² against the pooled EDF: each pooled point
  // contributes weight 1/(n+m); ties advance both EDFs together.
  while (i < a_sorted.size() || j < b_sorted.size()) {
    double x;
    if (j >= b_sorted.size()) {
      x = a_sorted[i];
    } else if (i >= a_sorted.size()) {
      x = b_sorted[j];
    } else {
      x = std::min(a_sorted[i], b_sorted[j]);
    }
    std::size_t advanced = 0;
    while (i < a_sorted.size() && a_sorted[i] <= x) {
      ++i;
      ++advanced;
    }
    while (j < b_sorted.size() && b_sorted[j] <= x) {
      ++j;
      ++advanced;
    }
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    acc += (fa - fb) * (fa - fb) * static_cast<double>(advanced) / total;
  }
  return acc;
}

double kolmogorov_tail(double lambda) {
  LINKPAD_EXPECTS(lambda >= 0.0);
  if (lambda < 1e-3) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double ks_two_sample_pvalue(double d, std::size_t n, std::size_t m) {
  LINKPAD_EXPECTS(d >= 0.0 && d <= 1.0);
  LINKPAD_EXPECTS(n > 0 && m > 0);
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    static_cast<double>(n + m);
  const double root = std::sqrt(ne);
  // Stephens' finite-sample correction.
  const double lambda = (root + 0.12 + 0.11 / root) * d;
  return kolmogorov_tail(lambda);
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return ks_distance_sorted(sa, sb);
}

}  // namespace linkpad::stats
