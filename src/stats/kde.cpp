#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::stats {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
// Kernels beyond 8 bandwidths contribute < 1e-14 relative mass.
constexpr double kWindowSigmas = 8.0;
constexpr double kLogFloor = -745.0;  // ~ log(DBL_MIN)
}  // namespace

double select_bandwidth(std::span<const double> data, BandwidthRule rule,
                        double fixed_bandwidth) {
  LINKPAD_EXPECTS(!data.empty());
  if (rule == BandwidthRule::kFixed) {
    LINKPAD_EXPECTS(fixed_bandwidth > 0.0);
    return fixed_bandwidth;
  }

  const double n = static_cast<double>(data.size());
  const double sd = data.size() > 1 ? sample_stddev(data) : 0.0;
  double spread = sd;
  if (rule == BandwidthRule::kSilverman) {
    const double robust = iqr(data) / 1.34;
    if (robust > 0.0) spread = (sd > 0.0) ? std::min(sd, robust) : robust;
  }
  if (spread <= 0.0) {
    // Degenerate (constant) sample: fall back to a sliver of the magnitude
    // so pdf() stays finite and integrates to ~1.
    spread = std::max(std::abs(data[0]) * 1e-9, 1e-12);
  }
  const double factor = (rule == BandwidthRule::kSilverman) ? 0.9 : 1.06;
  return factor * spread * std::pow(n, -0.2);
}

GaussianKde::GaussianKde(std::span<const double> data, BandwidthRule rule,
                         double fixed_bandwidth)
    : sorted_(data.begin(), data.end()) {
  LINKPAD_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
  bandwidth_ = select_bandwidth(sorted_, rule, fixed_bandwidth);
  LINKPAD_ENSURES(bandwidth_ > 0.0);
}

double GaussianKde::pdf(double x) const {
  const double h = bandwidth_;
  const double lo = x - kWindowSigmas * h;
  const double hi = x + kWindowSigmas * h;
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  const auto last = std::upper_bound(first, sorted_.end(), hi);

  double acc = 0.0;
  for (auto it = first; it != last; ++it) {
    const double z = (x - *it) / h;
    acc += std::exp(-0.5 * z * z);
  }
  return acc * kInvSqrt2Pi / (static_cast<double>(sorted_.size()) * h);
}

double GaussianKde::log_pdf(double x) const {
  const double p = pdf(x);
  if (p > 0.0) return std::log(p);
  // Query far outside the training support: exp() underflowed. Use the
  // nearest kernel's log-density directly — finite for any finite x — so
  // Bayes comparisons between classes still order by distance instead of
  // comparing -inf against -inf.
  const double nearest =
      std::min(std::abs(x - sorted_.front()), std::abs(x - sorted_.back()));
  const double z = nearest / bandwidth_;
  return -0.5 * z * z -
         std::log(static_cast<double>(sorted_.size()) * bandwidth_) -
         0.5 * std::log(2.0 * M_PI);
}

std::vector<std::pair<double, double>> GaussianKde::evaluate_grid(
    double lo, double hi, std::size_t points) const {
  LINKPAD_EXPECTS(points >= 2);
  LINKPAD_EXPECTS(hi > lo);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  const double h = bandwidth_;
  // Both edges of the ±8h window only ever move right as x ascends, so two
  // persistent cursors land on exactly the iterators pdf()'s lower_bound /
  // upper_bound would find — same kernels, same summation order, the same
  // doubles bit for bit.
  auto first = sorted_.begin();
  auto last = sorted_.begin();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    const double window_lo = x - kWindowSigmas * h;
    const double window_hi = x + kWindowSigmas * h;
    while (first != sorted_.end() && *first < window_lo) ++first;
    if (last < first) last = first;
    while (last != sorted_.end() && *last <= window_hi) ++last;

    double acc = 0.0;
    for (auto it = first; it != last; ++it) {
      const double z = (x - *it) / h;
      acc += std::exp(-0.5 * z * z);
    }
    out.emplace_back(
        x, acc * kInvSqrt2Pi / (static_cast<double>(sorted_.size()) * h));
  }
  return out;
}

}  // namespace linkpad::stats
