#include "stats/entropy.hpp"

#include <cmath>

#include "util/check.hpp"

namespace linkpad::stats {

double histogram_entropy(const SparseHistogram& hist, EntropyBias bias) {
  const double n = static_cast<double>(hist.total());
  LINKPAD_EXPECTS(n > 0);

  double h = 0.0;
  for (const auto& [bin, count] : hist.cells()) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }

  const double k = static_cast<double>(hist.occupied_bins());
  switch (bias) {
    case EntropyBias::kNone:
      break;
    case EntropyBias::kMillerMadow:
      h += (k - 1.0) / (2.0 * n);
      break;
    case EntropyBias::kModdemeijer:
      // Moddemeijer (1989) applies the same first-order (K−1)/(2n) cell
      // correction but counts only cells with ≥ 2 samples as "resolved";
      // singleton cells carry no curvature information.
      {
        double resolved = 0.0;
        for (const auto& [bin, count] : hist.cells()) {
          if (count >= 2) resolved += 1.0;
        }
        h += (resolved - 1.0) / (2.0 * n);
      }
      break;
  }
  return h;
}

double sample_entropy(std::span<const double> xs, double bin_width,
                      EntropyBias bias) {
  LINKPAD_EXPECTS(!xs.empty());
  SparseHistogram hist(bin_width);
  hist.add_all(xs);
  return histogram_entropy(hist, bias);
}

double differential_entropy(std::span<const double> xs, double bin_width,
                            EntropyBias bias) {
  return sample_entropy(xs, bin_width, bias) + std::log(bin_width);
}

double normal_differential_entropy(double sigma_squared) {
  LINKPAD_EXPECTS(sigma_squared > 0.0);
  return 0.5 * std::log(2.0 * M_PI * M_E * sigma_squared);
}

}  // namespace linkpad::stats
