// Percentile bootstrap confidence intervals.
//
// Empirical detection rates in the figure drivers are Monte-Carlo estimates;
// EXPERIMENTS.md reports them with bootstrap CIs so "paper shape vs measured
// shape" comparisons are honest about noise.
#pragma once

#include <functional>
#include <span>

#include "util/rng.hpp"

namespace linkpad::stats {

/// Point estimate plus a [lo, hi] percentile confidence interval.
struct BootstrapResult {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile bootstrap for an arbitrary statistic of a 1-D sample.
/// `confidence` is the two-sided level (e.g. 0.95).
BootstrapResult bootstrap_ci(
    std::span<const double> data,
    const std::function<double(std::span<const double>)>& statistic,
    int resamples, double confidence, util::Xoshiro256pp& rng);

/// Special case used by the evaluation harness: CI for a Bernoulli success
/// probability from `successes` out of `trials` (Wilson score interval —
/// cheaper and better behaved than resampling for proportions).
BootstrapResult proportion_ci(std::size_t successes, std::size_t trials,
                              double confidence);

}  // namespace linkpad::stats
