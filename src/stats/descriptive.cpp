#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace linkpad::stats {

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n_ + other.n_;
}

double RunningStats::mean() const {
  LINKPAD_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  LINKPAD_EXPECTS(n_ > 1);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  LINKPAD_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  LINKPAD_EXPECTS(n_ > 0);
  return max_;
}

double RunningStats::skewness() const {
  LINKPAD_EXPECTS(n_ > 2);
  if (m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::excess_kurtosis() const {
  LINKPAD_EXPECTS(n_ > 3);
  if (m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double mean(std::span<const double> xs) {
  LINKPAD_EXPECTS(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  LINKPAD_EXPECTS(xs.size() >= 2);
  // One definition of sample variance repo-wide: the Welford recurrence of
  // RunningStats, so batch routines, streaming accumulators, and r_hat
  // estimates agree bit for bit on the same data.
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.variance();
}

double sample_stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double quantile_sorted(std::span<const double> sorted, double q) {
  LINKPAD_EXPECTS(!sorted.empty());
  LINKPAD_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, 0.5);
}

double iqr(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, 0.75) - quantile_sorted(copy, 0.25);
}

double mad(std::span<const double> xs) {
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    dev[i] = std::abs(xs[i] - med);
  }
  return median(dev);
}

Summary summarize(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  Summary s;
  s.count = rs.count();
  if (s.count > 0) {
    s.mean = rs.mean();
    s.min = rs.min();
    s.max = rs.max();
  }
  if (s.count > 1) {
    s.variance = rs.variance();
    s.stddev = rs.stddev();
  }
  if (s.count > 2) s.skewness = rs.skewness();
  if (s.count > 3) s.excess_kurtosis = rs.excess_kurtosis();
  return s;
}

}  // namespace linkpad::stats
