#include "stats/concentration.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special_math.hpp"
#include "util/check.hpp"

namespace linkpad::stats {
namespace {

/// ln(2/δ) for the two-sided bounds; validates confidence ∈ (0, 1).
double log_two_over_delta(double confidence) {
  LINKPAD_EXPECTS(confidence > 0.0 && confidence < 1.0);
  return std::log(2.0 / (1.0 - confidence));
}

ConfidenceInterval clamped(double mean, double eps, double lo, double hi) {
  ConfidenceInterval ci;
  ci.point = mean;
  ci.lo = std::max(lo, mean - eps);
  ci.hi = std::min(hi, mean + eps);
  return ci;
}

}  // namespace

ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double confidence) {
  LINKPAD_EXPECTS(trials >= 1 && successes <= trials);
  LINKPAD_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ConfidenceInterval ci;
  ci.point = p;
  ci.lo = std::max(0.0, center - spread);
  ci.hi = std::min(1.0, center + spread);
  // center - spread is 0 (resp. 1) in exact arithmetic at p̂ = 0 (resp. 1);
  // snap away the sqrt rounding so the interval always contains p̂.
  if (successes == 0) ci.lo = 0.0;
  if (successes == trials) ci.hi = 1.0;
  return ci;
}

double hoeffding_epsilon(std::size_t n, double range, double confidence) {
  LINKPAD_EXPECTS(n >= 1 && range >= 0.0);
  return range *
         std::sqrt(log_two_over_delta(confidence) / (2.0 * static_cast<double>(n)));
}

ConfidenceInterval hoeffding_interval(double sample_mean, std::size_t n,
                                      double bound_lo, double bound_hi,
                                      double confidence) {
  LINKPAD_EXPECTS(bound_hi >= bound_lo);
  const double eps = hoeffding_epsilon(n, bound_hi - bound_lo, confidence);
  return clamped(sample_mean, eps, bound_lo, bound_hi);
}

double bernstein_epsilon(double sample_variance, std::size_t n, double range,
                         double confidence) {
  LINKPAD_EXPECTS(n >= 1 && range >= 0.0 && sample_variance >= 0.0);
  const double log_term = log_two_over_delta(confidence);
  if (n < 2) return range;  // no variance estimate possible: trivial bound
  const double nd = static_cast<double>(n);
  return std::sqrt(2.0 * sample_variance * log_term / nd) +
         7.0 * range * log_term / (3.0 * (nd - 1.0));
}

ConfidenceInterval bernstein_interval(double sample_mean,
                                      double sample_variance, std::size_t n,
                                      double bound_lo, double bound_hi,
                                      double confidence) {
  LINKPAD_EXPECTS(bound_hi >= bound_lo);
  const double eps =
      bernstein_epsilon(sample_variance, n, bound_hi - bound_lo, confidence);
  return clamped(sample_mean, eps, bound_lo, bound_hi);
}

double dkw_epsilon(std::size_t n, double confidence) {
  LINKPAD_EXPECTS(n >= 1);
  return std::sqrt(log_two_over_delta(confidence) /
                   (2.0 * static_cast<double>(n)));
}

}  // namespace linkpad::stats
