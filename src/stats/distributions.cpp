#include "stats/distributions.hpp"

#include <array>
#include <atomic>
#include <cmath>

#include "stats/special_math.hpp"
#include "util/check.hpp"

namespace linkpad::stats {

namespace {
constexpr double kTwoPi = 6.283185307179586;

std::atomic<bool> g_ziggurat{false};

// ------------------------------------------------------------- Ziggurat --
//
// 256-layer Ziggurat rejection (Marsaglia & Tsang 2000, in the double-based
// formulation of Doornik 2005). The density is covered by 255 equal-area
// horizontal strips plus a base strip holding the tail; a draw picks a
// strip, accepts immediately when it lands inside the strip's rectangle
// core (~98.8% of draws: one uniform, one table compare), and otherwise
// falls back to an edge/tail test. Tables are built once at first use from
// the published (R, V) constants, not transcribed, so they are exact to
// double precision.

constexpr int kZigLayers = 256;

struct ZigTables {
  // x[0] > R is the pseudo-edge of the base strip; x[1] = R; x[256] = 0.
  std::array<double, kZigLayers + 1> x;
  std::array<double, kZigLayers + 1> f;  // density at x[i]
};

/// Build strip edges for a monotone density `pdf` with strip area `v` and
/// tail cut `r` (pdf unnormalized such that pdf(0) == 1).
template <typename Pdf, typename PdfInv>
ZigTables build_zig(double r, double v, Pdf pdf, PdfInv pdf_inv) {
  ZigTables t;
  t.x[0] = v / pdf(r);  // base strip: rectangle of width V/f(R) + the tail
  t.x[1] = r;
  t.x[kZigLayers] = 0.0;
  for (int i = 2; i < kZigLayers; ++i) {
    // Strip i sits on top of strip i-1: area V = x_i · (f(x_i) − f(x_{i−1}))
    t.x[i] = pdf_inv(v / t.x[i - 1] + pdf(t.x[i - 1]));
  }
  for (int i = 0; i <= kZigLayers; ++i) t.f[i] = pdf(t.x[i]);
  // Strip edges must descend strictly to 0 — anything else means the
  // (R, V) constants do not match the layer count.
  for (int i = 1; i <= kZigLayers; ++i) {
    LINKPAD_ENSURES(std::isfinite(t.x[i]) && t.x[i] < t.x[i - 1]);
  }
  return t;
}

const ZigTables& normal_zig() {
  // Doornik 2005, table for 256 blocks of the standard normal half-density.
  static const ZigTables t = build_zig(
      3.6541528853610088, 0.00492867323399,
      [](double x) { return std::exp(-0.5 * x * x); },
      [](double y) { return std::sqrt(-2.0 * std::log(y)); });
  return t;
}

const ZigTables& exponential_zig() {
  // Doornik 2005, 256 blocks of exp(−x).
  static const ZigTables t = build_zig(
      7.69711747013104972, 0.0039496598225815571993,
      [](double x) { return std::exp(-x); },
      [](double y) { return -std::log(y); });
  return t;
}

/// Uniform in (0, 1]: safe to pass to log().
inline double uniform_open0(Rng& rng) { return 1.0 - rng.uniform01(); }

/// Exact normal tail beyond `r` (Marsaglia 1964), sign applied by caller.
double normal_tail(Rng& rng, double r) {
  for (;;) {
    const double x = std::log(uniform_open0(rng)) / r;  // x <= 0
    const double y = std::log(uniform_open0(rng));
    if (-2.0 * y >= x * x) return r - x;
  }
}

}  // namespace

void set_ziggurat_sampling(bool enabled) {
  g_ziggurat.store(enabled, std::memory_order_relaxed);
}

bool ziggurat_sampling() { return g_ziggurat.load(std::memory_order_relaxed); }

double sample_standard_normal_ziggurat(Rng& rng) {
  const ZigTables& t = normal_zig();
  for (;;) {
    const std::uint64_t bits = rng();
    const int i = static_cast<int>(bits & 0xff);
    const double u = 2.0 * rng.uniform01() - 1.0;
    const double x = u * t.x[i];
    // Inside the strip's rectangle core: accept without evaluating exp().
    if (std::abs(x) < t.x[i + 1]) return x;
    if (i == 0) {
      // Base strip: the rectangle part was rejected, so draw from the tail.
      const double tail = normal_tail(rng, t.x[1]);
      return u < 0.0 ? -tail : tail;
    }
    // Strip edge: accept against the density wedge.
    const double fx = std::exp(-0.5 * x * x);
    if (t.f[i + 1] + rng.uniform01() * (t.f[i] - t.f[i + 1]) < fx) return x;
  }
}

double sample_standard_exponential_ziggurat(Rng& rng) {
  const ZigTables& t = exponential_zig();
  for (;;) {
    const std::uint64_t bits = rng();
    const int i = static_cast<int>(bits & 0xff);
    const double u = rng.uniform01();
    const double x = u * t.x[i];
    if (x < t.x[i + 1]) return x;
    if (i == 0) {
      // Tail beyond R: memorylessness makes the tail draw exact.
      return t.x[1] + sample_standard_exponential_ziggurat(rng);
    }
    const double fx = std::exp(-x);
    if (t.f[i + 1] + rng.uniform01() * (t.f[i] - t.f[i + 1]) < fx) return x;
  }
}

double sample_standard_normal(Rng& rng) {
  if (ziggurat_sampling()) return sample_standard_normal_ziggurat(rng);
  // Marsaglia polar method; we deliberately do not cache the second deviate
  // so that the distribution objects stay stateless/shareable.
  for (;;) {
    const double u = 2.0 * rng.uniform01() - 1.0;
    const double v = 2.0 * rng.uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

// ---------------------------------------------------------------- Normal --

Normal::Normal(double mean_value, double sigma) : mean_(mean_value), sigma_(sigma) {
  LINKPAD_EXPECTS(sigma > 0.0);
}

double Normal::pdf(double x) const {
  const double z = (x - mean_) / sigma_;
  return std::exp(-0.5 * z * z) / (sigma_ * std::sqrt(kTwoPi));
}

double Normal::log_pdf(double x) const {
  const double z = (x - mean_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) - 0.5 * std::log(kTwoPi);
}

double Normal::cdf(double x) const {
  return normal_cdf((x - mean_) / sigma_);
}

double Normal::quantile(double p) const {
  return mean_ + sigma_ * normal_quantile(p);
}

double Normal::sample(Rng& rng) const {
  return mean_ + sigma_ * sample_standard_normal(rng);
}

// ------------------------------------------------------------ HalfNormal --

HalfNormal::HalfNormal(double sigma) : sigma_(sigma) {
  LINKPAD_EXPECTS(sigma > 0.0);
}

double HalfNormal::mean() const { return sigma_ * std::sqrt(2.0 / M_PI); }

double HalfNormal::variance() const {
  return sigma_ * sigma_ * (1.0 - 2.0 / M_PI);
}

double HalfNormal::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const double z = x / sigma_;
  return std::sqrt(2.0 / M_PI) / sigma_ * std::exp(-0.5 * z * z);
}

double HalfNormal::sample(Rng& rng) const {
  return std::abs(sample_standard_normal(rng)) * sigma_;
}

// ------------------------------------------------------- TruncatedNormal --

TruncatedNormal::TruncatedNormal(double mean_value, double sigma, double lower)
    : mean_(mean_value), sigma_(sigma), lower_(lower) {
  LINKPAD_EXPECTS(sigma > 0.0);
  alpha_ = (lower_ - mean_) / sigma_;
  z_ = 1.0 - normal_cdf(alpha_);
  LINKPAD_EXPECTS(z_ > 0.0);
}

double TruncatedNormal::mean() const {
  const double lambda = normal_pdf(alpha_) / z_;
  return mean_ + sigma_ * lambda;
}

double TruncatedNormal::variance() const {
  const double lambda = normal_pdf(alpha_) / z_;
  const double delta = lambda * (lambda - alpha_);
  return sigma_ * sigma_ * (1.0 - delta);
}

double TruncatedNormal::pdf(double x) const {
  if (x < lower_) return 0.0;
  const double z = (x - mean_) / sigma_;
  return normal_pdf(z) / (sigma_ * z_);
}

double TruncatedNormal::sample(Rng& rng) const {
  if (alpha_ < -8.0) {
    // Truncation point is >8σ below the mean: the constraint is
    // statistically invisible; plain normal sampling is exact in practice.
    return mean_ + sigma_ * sample_standard_normal(rng);
  }
  if (z_ > 0.25) {
    // Cheap rejection: expected <4 iterations.
    for (;;) {
      const double x = mean_ + sigma_ * sample_standard_normal(rng);
      if (x >= lower_) return x;
    }
  }
  // Deep truncation: inverse-CDF on the conditioned uniform range.
  const double u_lo = normal_cdf(alpha_);
  const double u = u_lo + (1.0 - u_lo) * rng.uniform01();
  const double clipped = std::min(std::max(u, 1e-300), 1.0 - 1e-16);
  return mean_ + sigma_ * normal_quantile(clipped);
}

// ----------------------------------------------------------- Exponential --

Exponential::Exponential(double mean_value) : mean_(mean_value) {
  LINKPAD_EXPECTS(mean_value > 0.0);
}

double Exponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return std::exp(-x / mean_) / mean_;
}

double Exponential::cdf(double x) const {
  if (x < 0.0) return 0.0;
  return 1.0 - std::exp(-x / mean_);
}

double Exponential::sample(Rng& rng) const {
  if (ziggurat_sampling()) {
    return mean_ * sample_standard_exponential_ziggurat(rng);
  }
  // Inversion: -mean * log(1 - U) with U in [0,1) never takes log(0).
  return -mean_ * std::log1p(-rng.uniform01());
}

// --------------------------------------------------------------- Uniform --

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  LINKPAD_EXPECTS(hi > lo);
}

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

double Uniform::pdf(double x) const {
  return (x >= lo_ && x < hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

// ---------------------------------------------------------------- Pareto --

Pareto::Pareto(double scale, double shape) : scale_(scale), shape_(shape) {
  LINKPAD_EXPECTS(scale > 0.0);
  LINKPAD_EXPECTS(shape > 0.0);
}

double Pareto::mean() const {
  LINKPAD_EXPECTS(shape_ > 1.0);
  return shape_ * scale_ / (shape_ - 1.0);
}

double Pareto::sample(Rng& rng) const {
  // Inversion of the survival function.
  const double u = 1.0 - rng.uniform01();  // in (0, 1]
  return scale_ * std::pow(u, -1.0 / shape_);
}

// --------------------------------------------------------------- Poisson --

std::uint64_t sample_poisson(Rng& rng, double lambda) {
  LINKPAD_EXPECTS(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double prod = rng.uniform01();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= rng.uniform01();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction, rejected below zero;
  // adequate for the traffic-volume draws we use it for (lambda >= 30).
  for (;;) {
    const double x = lambda + std::sqrt(lambda) * sample_standard_normal(rng);
    if (x >= -0.5) return static_cast<std::uint64_t>(std::llround(std::max(0.0, x)));
  }
}

// ------------------------------------------------------------ ChiSquared --

ChiSquared::ChiSquared(double dof) : dof_(dof) { LINKPAD_EXPECTS(dof > 0.0); }

double ChiSquared::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double k2 = 0.5 * dof_;
  return std::exp((k2 - 1.0) * std::log(x) - 0.5 * x - k2 * std::log(2.0) -
                  log_gamma(k2));
}

double ChiSquared::cdf(double x) const { return chi_squared_cdf(dof_, x); }

}  // namespace linkpad::stats
