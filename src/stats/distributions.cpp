#include "stats/distributions.hpp"

#include <cmath>

#include "stats/special_math.hpp"
#include "util/check.hpp"

namespace linkpad::stats {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

double sample_standard_normal(Rng& rng) {
  // Marsaglia polar method; we deliberately do not cache the second deviate
  // so that the distribution objects stay stateless/shareable.
  for (;;) {
    const double u = 2.0 * rng.uniform01() - 1.0;
    const double v = 2.0 * rng.uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

// ---------------------------------------------------------------- Normal --

Normal::Normal(double mean_value, double sigma) : mean_(mean_value), sigma_(sigma) {
  LINKPAD_EXPECTS(sigma > 0.0);
}

double Normal::pdf(double x) const {
  const double z = (x - mean_) / sigma_;
  return std::exp(-0.5 * z * z) / (sigma_ * std::sqrt(kTwoPi));
}

double Normal::log_pdf(double x) const {
  const double z = (x - mean_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) - 0.5 * std::log(kTwoPi);
}

double Normal::cdf(double x) const {
  return normal_cdf((x - mean_) / sigma_);
}

double Normal::quantile(double p) const {
  return mean_ + sigma_ * normal_quantile(p);
}

double Normal::sample(Rng& rng) const {
  return mean_ + sigma_ * sample_standard_normal(rng);
}

// ------------------------------------------------------------ HalfNormal --

HalfNormal::HalfNormal(double sigma) : sigma_(sigma) {
  LINKPAD_EXPECTS(sigma > 0.0);
}

double HalfNormal::mean() const { return sigma_ * std::sqrt(2.0 / M_PI); }

double HalfNormal::variance() const {
  return sigma_ * sigma_ * (1.0 - 2.0 / M_PI);
}

double HalfNormal::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const double z = x / sigma_;
  return std::sqrt(2.0 / M_PI) / sigma_ * std::exp(-0.5 * z * z);
}

double HalfNormal::sample(Rng& rng) const {
  return std::abs(sample_standard_normal(rng)) * sigma_;
}

// ------------------------------------------------------- TruncatedNormal --

TruncatedNormal::TruncatedNormal(double mean_value, double sigma, double lower)
    : mean_(mean_value), sigma_(sigma), lower_(lower) {
  LINKPAD_EXPECTS(sigma > 0.0);
  alpha_ = (lower_ - mean_) / sigma_;
  z_ = 1.0 - normal_cdf(alpha_);
  LINKPAD_EXPECTS(z_ > 0.0);
}

double TruncatedNormal::mean() const {
  const double lambda = normal_pdf(alpha_) / z_;
  return mean_ + sigma_ * lambda;
}

double TruncatedNormal::variance() const {
  const double lambda = normal_pdf(alpha_) / z_;
  const double delta = lambda * (lambda - alpha_);
  return sigma_ * sigma_ * (1.0 - delta);
}

double TruncatedNormal::pdf(double x) const {
  if (x < lower_) return 0.0;
  const double z = (x - mean_) / sigma_;
  return normal_pdf(z) / (sigma_ * z_);
}

double TruncatedNormal::sample(Rng& rng) const {
  if (alpha_ < -8.0) {
    // Truncation point is >8σ below the mean: the constraint is
    // statistically invisible; plain normal sampling is exact in practice.
    return mean_ + sigma_ * sample_standard_normal(rng);
  }
  if (z_ > 0.25) {
    // Cheap rejection: expected <4 iterations.
    for (;;) {
      const double x = mean_ + sigma_ * sample_standard_normal(rng);
      if (x >= lower_) return x;
    }
  }
  // Deep truncation: inverse-CDF on the conditioned uniform range.
  const double u_lo = normal_cdf(alpha_);
  const double u = u_lo + (1.0 - u_lo) * rng.uniform01();
  const double clipped = std::min(std::max(u, 1e-300), 1.0 - 1e-16);
  return mean_ + sigma_ * normal_quantile(clipped);
}

// ----------------------------------------------------------- Exponential --

Exponential::Exponential(double mean_value) : mean_(mean_value) {
  LINKPAD_EXPECTS(mean_value > 0.0);
}

double Exponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return std::exp(-x / mean_) / mean_;
}

double Exponential::cdf(double x) const {
  if (x < 0.0) return 0.0;
  return 1.0 - std::exp(-x / mean_);
}

double Exponential::sample(Rng& rng) const {
  // Inversion: -mean * log(1 - U) with U in [0,1) never takes log(0).
  return -mean_ * std::log1p(-rng.uniform01());
}

// --------------------------------------------------------------- Uniform --

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  LINKPAD_EXPECTS(hi > lo);
}

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

double Uniform::pdf(double x) const {
  return (x >= lo_ && x < hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

// ---------------------------------------------------------------- Pareto --

Pareto::Pareto(double scale, double shape) : scale_(scale), shape_(shape) {
  LINKPAD_EXPECTS(scale > 0.0);
  LINKPAD_EXPECTS(shape > 0.0);
}

double Pareto::mean() const {
  LINKPAD_EXPECTS(shape_ > 1.0);
  return shape_ * scale_ / (shape_ - 1.0);
}

double Pareto::sample(Rng& rng) const {
  // Inversion of the survival function.
  const double u = 1.0 - rng.uniform01();  // in (0, 1]
  return scale_ * std::pow(u, -1.0 / shape_);
}

// --------------------------------------------------------------- Poisson --

std::uint64_t sample_poisson(Rng& rng, double lambda) {
  LINKPAD_EXPECTS(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double prod = rng.uniform01();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= rng.uniform01();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction, rejected below zero;
  // adequate for the traffic-volume draws we use it for (lambda >= 30).
  for (;;) {
    const double x = lambda + std::sqrt(lambda) * sample_standard_normal(rng);
    if (x >= -0.5) return static_cast<std::uint64_t>(std::llround(std::max(0.0, x)));
  }
}

// ------------------------------------------------------------ ChiSquared --

ChiSquared::ChiSquared(double dof) : dof_(dof) { LINKPAD_EXPECTS(dof > 0.0); }

double ChiSquared::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double k2 = 0.5 * dof_;
  return std::exp((k2 - 1.0) * std::log(x) - 0.5 * x - k2 * std::log(2.0) -
                  log_gamma(k2));
}

double ChiSquared::cdf(double x) const { return chi_squared_cdf(dof_, x); }

}  // namespace linkpad::stats
