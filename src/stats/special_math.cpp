#include "stats/special_math.hpp"

#include <cmath>
#include <stdexcept>

namespace linkpad::stats {

namespace {
constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}  // namespace

double normal_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_cdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile: p must lie in (0,1)");
  }

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e / normal_pdf(x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

namespace {

// Series expansion of P(a,x), valid/fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a,x), valid/fast for x >= a + 1.
double gamma_q_cf(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::domain_error("regularized_gamma_p: need a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double regularized_gamma_q(double a, double x) {
  return 1.0 - regularized_gamma_p(a, x);
}

double chi_squared_cdf(double dof, double x) {
  if (!(dof > 0.0)) throw std::domain_error("chi_squared_cdf: dof must be > 0");
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(0.5 * dof, 0.5 * x);
}

double log_gamma(double x) { return std::lgamma(x); }

}  // namespace linkpad::stats
