// Descriptive statistics: Welford running moments (mergeable, for parallel
// reduction) and free functions over contiguous samples.
//
// Sample mean and sample variance here are exactly the adversary's feature
// statistics of the paper (eqs. 17 and 19): variance uses the unbiased n−1
// denominator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace linkpad::stats {

/// Numerically stable running moments (Welford / Chan et al. merge).
/// Tracks up to 4th central moment so skewness / kurtosis are available.
class RunningStats {
 public:
  // Inline: this is the innermost operation of the streaming detection
  // pipeline (every PIAT of every capture passes through it at least once).
  void add(double x) {
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    const double n1 = static_cast<double>(n_);
    ++n_;
    const double n = static_cast<double>(n_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;
    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
           4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;
  }

  /// Combine with another accumulator (parallel reduction step).
  void merge(const RunningStats& other);

  /// O(1) snapshot of the partially-consumed state. Resuming the original
  /// and the fork with the same suffix yields bit-identical moments — the
  /// checkpoint primitive behind the prefix-replay engine (each sample-size
  /// prefix forks the shared training moments at its boundary instead of
  /// re-consuming the stream). Plain copies carry the same guarantee;
  /// fork() exists so call sites read as intent.
  [[nodiscard]] RunningStats fork() const { return *this; }

  /// The complete moment state for serialization (core/shard_io):
  /// from_state(x.state()) == x bit for bit, mid-stream included.
  struct State {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double m3 = 0.0;
    double m4 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] State state() const {
    return State{n_, mean_, m2_, m3_, m4_, min_, max_};
  }
  [[nodiscard]] static RunningStats from_state(const State& state) {
    RunningStats out;
    out.n_ = state.count;
    out.mean_ = state.mean;
    out.m2_ = state.m2;
    out.m3_ = state.m3;
    out.m4_ = state.m4;
    out.min_ = state.min;
    out.max_ = state.max;
    return out;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n−1 denominator), eq. (19).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// g1 skewness (0 for symmetric data).
  [[nodiscard]] double skewness() const;
  /// Excess kurtosis (0 for a normal distribution).
  [[nodiscard]] double excess_kurtosis() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample mean, eq. (17). Expects a non-empty sample.
double mean(std::span<const double> xs);

/// Unbiased sample variance, eq. (19). Expects at least two points.
double sample_variance(std::span<const double> xs);

/// Square root of sample_variance().
double sample_stddev(std::span<const double> xs);

/// Linear-interpolated quantile of an ALREADY SORTED sample, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Median (copies + sorts internally).
double median(std::span<const double> xs);

/// Interquartile range Q3 − Q1 (copies + sorts internally).
double iqr(std::span<const double> xs);

/// Median absolute deviation about the median (copies internally).
double mad(std::span<const double> xs);

/// Summary of one sample: handy for test diagnostics and figure drivers.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double variance = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double skewness = 0;
  double excess_kurtosis = 0;
};

/// Compute the full Summary in one pass.
Summary summarize(std::span<const double> xs);

}  // namespace linkpad::stats
