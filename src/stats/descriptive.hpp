// Descriptive statistics: Welford running moments (mergeable, for parallel
// reduction) and free functions over contiguous samples.
//
// Sample mean and sample variance here are exactly the adversary's feature
// statistics of the paper (eqs. 17 and 19): variance uses the unbiased n−1
// denominator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace linkpad::stats {

/// Numerically stable running moments (Welford / Chan et al. merge).
/// Tracks up to 4th central moment so skewness / kurtosis are available.
class RunningStats {
 public:
  void add(double x);

  /// Combine with another accumulator (parallel reduction step).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n−1 denominator), eq. (19).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// g1 skewness (0 for symmetric data).
  [[nodiscard]] double skewness() const;
  /// Excess kurtosis (0 for a normal distribution).
  [[nodiscard]] double excess_kurtosis() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample mean, eq. (17). Expects a non-empty sample.
double mean(std::span<const double> xs);

/// Unbiased sample variance, eq. (19). Expects at least two points.
double sample_variance(std::span<const double> xs);

/// Square root of sample_variance().
double sample_stddev(std::span<const double> xs);

/// Linear-interpolated quantile of an ALREADY SORTED sample, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Median (copies + sorts internally).
double median(std::span<const double> xs);

/// Interquartile range Q3 − Q1 (copies + sorts internally).
double iqr(std::span<const double> xs);

/// Median absolute deviation about the median (copies internally).
double mad(std::span<const double> xs);

/// Summary of one sample: handy for test diagnostics and figure drivers.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double variance = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double skewness = 0;
  double excess_kurtosis = 0;
};

/// Compute the full Summary in one pass.
Summary summarize(std::span<const double> xs);

}  // namespace linkpad::stats
