#include "stats/quantile_sketch.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::stats {

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  LINKPAD_EXPECTS(quantile > 0.0 && quantile < 1.0);
  reset();
}

void P2Quantile::reset() {
  n_ = 0;
  heights_ = {};
  pos_ = {1.0, 2.0, 3.0, 4.0, 5.0};
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  rate_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++n_;

  // Locate the marker cell containing x, extending the extremes if needed.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && heights_[k + 1] <= x) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rate_[i];

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) height update.
      const double np = pos_[i + 1];
      const double nm = pos_[i - 1];
      const double n0 = pos_[i];
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h0 = heights_[i];
      double candidate =
          h0 + s / (np - nm) *
                   ((n0 - nm + s) * (hp - h0) / (np - n0) +
                    (np - n0 - s) * (h0 - hm) / (n0 - nm));
      if (candidate <= hm || candidate >= hp) {
        // Parabolic step would break monotonicity; fall back to linear.
        const std::size_t j = s > 0.0 ? i + 1 : i - 1;
        candidate = h0 + s * (heights_[j] - h0) / (pos_[j] - n0);
      }
      heights_[i] = candidate;
      pos_[i] += s;
    }
  }
}

void P2Quantile::merge(const P2Quantile& other) {
  LINKPAD_EXPECTS(q_ == other.q_);
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  if (other.n_ <= 5) {
    // The other side still holds its raw samples: replay them. Exact in
    // multiset terms (and exactly feed(a∥b) while our own state is raw too).
    for (std::size_t i = 0; i < other.n_; ++i) add(other.heights_[i]);
    return;
  }
  if (n_ <= 5) {
    // Keep the bigger marker state as the base and replay our raw samples
    // into a copy of it (the branch above), then adopt the result.
    P2Quantile base = other;
    base.merge(*this);
    *this = base;
    return;
  }
  // Both sides are summarized. Reconstruct the other side's empirical
  // distribution as the piecewise-linear inverse CDF through its five
  // markers — marker i sits at cumulative rank pos_[i] of other.n_ samples
  // — and replay other.n_ equi-spaced deterministic draws from it. The
  // draw order (ascending u) is fixed, so the merge is deterministic.
  std::array<double, 5> t{};  // marker ranks mapped to [0, 1]
  const double denom = other.pos_[4] - other.pos_[0];
  for (std::size_t i = 0; i < 5; ++i) {
    t[i] = (other.pos_[i] - other.pos_[0]) / denom;
  }
  const std::size_t m = other.n_;
  for (std::size_t k = 0; k < m; ++k) {
    const double u =
        (static_cast<double>(k) + 0.5) / static_cast<double>(m);
    std::size_t seg = 0;
    while (seg < 3 && u > t[seg + 1]) ++seg;
    const double span = t[seg + 1] - t[seg];
    const double w = span > 0.0 ? (u - t[seg]) / span : 0.0;
    add(other.heights_[seg] +
        w * (other.heights_[seg + 1] - other.heights_[seg]));
  }
}

P2Quantile::State P2Quantile::state() const {
  State out;
  out.quantile = q_;
  out.count = n_;
  out.heights = heights_;
  out.positions = pos_;
  out.desired = desired_;
  out.rate = rate_;
  return out;
}

P2Quantile P2Quantile::from_state(const State& state) {
  P2Quantile sketch(state.quantile);
  sketch.n_ = state.count;
  sketch.heights_ = state.heights;
  sketch.pos_ = state.positions;
  sketch.desired_ = state.desired;
  sketch.rate_ = state.rate;
  return sketch;
}

double P2Quantile::value() const {
  LINKPAD_EXPECTS(n_ > 0);
  if (n_ <= 5) {
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n_));
    return quantile_sorted({sorted.data(), n_}, q_);
  }
  return heights_[2];
}

}  // namespace linkpad::stats
