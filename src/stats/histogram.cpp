#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace linkpad::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  LINKPAD_EXPECTS(bins > 0);
  LINKPAD_EXPECTS(hi > lo);
}

Histogram Histogram::from_data(std::span<const double> xs, std::size_t bins) {
  LINKPAD_EXPECTS(!xs.empty());
  auto [mn_it, mx_it] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn_it;
  double hi = *mx_it;
  if (hi - lo < 1e-300) {
    // Degenerate sample: widen artificially so every point lands in range.
    const double pad = std::max(std::abs(lo) * 1e-9, 1e-12);
    lo -= pad;
    hi += pad;
  } else {
    const double pad = (hi - lo) * 1e-9;
    hi += pad;  // make the max value fall inside the last bin
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

Histogram Histogram::from_state(double lo, double hi,
                                std::vector<std::uint64_t> counts,
                                std::uint64_t underflow,
                                std::uint64_t overflow) {
  Histogram h(lo, hi, counts.size());
  h.counts_ = std::move(counts);
  h.underflow_ = underflow;
  h.overflow_ = overflow;
  h.total_ = underflow + overflow;
  for (const std::uint64_t c : h.counts_) h.total_ += c;
  return h;
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard rounding at the top edge
  ++counts_[idx];
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void Histogram::merge(const Histogram& other) {
  LINKPAD_EXPECTS(other.lo_ == lo_ && other.hi_ == hi_ &&
                  other.counts_.size() == counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_center(std::size_t i) const {
  LINKPAD_EXPECTS(i < counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::density(std::size_t i) const {
  LINKPAD_EXPECTS(i < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total_) * width_);
}

SparseHistogram::SparseHistogram(double bin_width) : width_(bin_width) {
  LINKPAD_EXPECTS(bin_width > 0.0);
}

void SparseHistogram::add(double x) {
  const auto bin = static_cast<std::int64_t>(std::floor(x / width_));
  ++counts_[bin];
  ++total_;
}

void SparseHistogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void SparseHistogram::add_cell(std::int64_t bin, std::uint64_t count) {
  if (count == 0) return;
  counts_[bin] += count;
  total_ += count;
}

SparseHistogram SparseHistogram::from_cells(
    double bin_width,
    const std::vector<std::pair<std::int64_t, std::uint64_t>>& cells) {
  SparseHistogram h(bin_width);
  for (const auto& [bin, count] : cells) h.add_cell(bin, count);
  return h;
}

void SparseHistogram::merge(const SparseHistogram& other) {
  LINKPAD_EXPECTS(other.width_ == width_);
  for (const auto& [bin, count] : other.counts_) counts_[bin] += count;
  total_ += other.total_;
}

}  // namespace linkpad::stats
