// Finite-sample concentration bounds for sampled population aggregates.
//
// When the population axis runs in sampled mode (DESIGN.md §2.11) the engine
// simulates only m of M flows and must report aggregate metrics with honest
// error bars. Everything here is a *non-asymptotic* bound:
//
//  - Wilson score interval for proportions (detected fraction). Not a
//    concentration inequality in the strict sense, but the standard
//    small-sample proportion interval with far better coverage than Wald.
//  - Hoeffding's inequality for means of values bounded in a known range
//    (detection rates live in [0, 1]).
//  - The empirical-Bernstein bound (Maurer & Pontil 2009) for bounded means
//    with small sample variance — strictly tighter than Hoeffding when the
//    population is concentrated (e.g. per-flow dummy fractions under a
//    common policy), at the cost of a 1/(m−1) additive term.
//  - The Dvoretzky–Kiefer–Wolfowitz band for the whole empirical CDF, which
//    turns the per-sample quantile sketches into a simultaneous band on the
//    population distribution.
//
// The engine samples WITHOUT replacement from a finite population of M.
// All four bounds are stated for i.i.d. sampling; by Hoeffding's reduction
// (1963, §6) the without-replacement versions concentrate at least as fast,
// so using the i.i.d. forms (no finite-population correction) is
// conservative: measured coverage ≥ nominal. The coverage harness in
// tests/core/sampling_test.cpp checks exactly that against brute-force
// exhaustive runs.
#pragma once

#include <cstddef>

namespace linkpad::stats {

/// A two-sided confidence interval [lo, hi] around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double half_width() const { return (hi - lo) / 2.0; }
};

/// Wilson score interval for a Bernoulli proportion from `successes` out of
/// `trials` (trials ≥ 1) at two-sided level `confidence` in (0, 1).
ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double confidence);

/// Hoeffding deviation ε(n, δ) = range · sqrt(ln(2/δ) / (2n)) for the mean
/// of n values spanning at most `range`; δ = 1 − confidence.
double hoeffding_epsilon(std::size_t n, double range, double confidence);

/// Two-sided Hoeffding interval for the mean of n values known to lie in
/// [bound_lo, bound_hi]; the interval is clamped to those bounds.
ConfidenceInterval hoeffding_interval(double sample_mean, std::size_t n,
                                      double bound_lo, double bound_hi,
                                      double confidence);

/// Empirical-Bernstein deviation (Maurer–Pontil):
///   ε = sqrt(2 V ln(2/δ) / n) + 7 · range · ln(2/δ) / (3 (n − 1))
/// where V is the *sample* variance (n−1 denominator). Requires n ≥ 2;
/// n = 1 falls back to the trivial full-range bound.
double bernstein_epsilon(double sample_variance, std::size_t n, double range,
                         double confidence);

/// Two-sided empirical-Bernstein interval for the mean of n values in
/// [bound_lo, bound_hi] with sample variance `sample_variance`; clamped.
ConfidenceInterval bernstein_interval(double sample_mean,
                                      double sample_variance, std::size_t n,
                                      double bound_lo, double bound_hi,
                                      double confidence);

/// Dvoretzky–Kiefer–Wolfowitz band half-width: with probability ≥
/// `confidence`, sup_x |F_n(x) − F(x)| ≤ sqrt(ln(2/δ) / (2n)).
double dkw_epsilon(std::size_t n, double confidence);

}  // namespace linkpad::stats
