// Special functions needed by the detection-rate theory and the
// distribution substrate: standard normal pdf/cdf/quantile and the
// regularized incomplete gamma function (for chi-squared CDFs).
//
// Implemented from scratch (no external deps): the normal quantile uses
// Acklam's rational approximation refined with one Halley step (|err| below
// 1e-13 over (0,1)), and the incomplete gamma follows the classic
// series / continued-fraction split at x = a + 1.
#pragma once

namespace linkpad::stats {

/// Standard normal density φ(x).
double normal_pdf(double x);

/// Standard normal CDF Φ(x), accurate to double precision via erfc.
double normal_cdf(double x);

/// Inverse standard normal CDF Φ⁻¹(p) for p in (0, 1).
/// Throws std::domain_error outside (0, 1).
double normal_quantile(double p);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x ≥ 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
double regularized_gamma_q(double a, double x);

/// Chi-squared CDF with `dof` degrees of freedom evaluated at x ≥ 0.
double chi_squared_cdf(double dof, double x);

/// Natural log of the gamma function (thin wrapper, kept for discoverability).
double log_gamma(double x);

}  // namespace linkpad::stats
