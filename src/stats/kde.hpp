// Gaussian kernel density estimation.
//
// The paper's adversary does not trust raw histograms for the conditional
// feature densities f(s|ω): "we assume that the adversary uses the Gaussian
// kernel estimator of PDF [Silverman 1986]" (Sec 3.3). This class implements
// exactly that, with Silverman's rule-of-thumb bandwidth as the default and
// Scott's rule / fixed bandwidth for the ablation bench.
//
// Evaluation sorts the training points once and only visits kernels within
// ±8h of the query, so pdf() is O(log N + window) instead of O(N).
#pragma once

#include <span>
#include <vector>

namespace linkpad::stats {

/// Bandwidth selection rule for GaussianKde.
enum class BandwidthRule {
  kSilverman,  ///< 0.9 · min(σ̂, IQR/1.34) · n^(−1/5)   (Silverman 1986)
  kScott,      ///< 1.06 · σ̂ · n^(−1/5)
  kFixed,      ///< caller-supplied bandwidth
};

/// Gaussian KDE over a 1-D sample.
class GaussianKde {
 public:
  /// Fits the estimator; `fixed_bandwidth` is used only with kFixed.
  explicit GaussianKde(std::span<const double> data,
                       BandwidthRule rule = BandwidthRule::kSilverman,
                       double fixed_bandwidth = 0.0);

  [[nodiscard]] double bandwidth() const { return bandwidth_; }
  [[nodiscard]] std::size_t sample_size() const { return sorted_.size(); }

  /// Density estimate f̂(x) ≥ 0.
  [[nodiscard]] double pdf(double x) const;

  /// log f̂(x); returns a very negative floor (not −inf) far from the data so
  /// Bayes comparisons stay well-defined.
  [[nodiscard]] double log_pdf(double x) const;

  /// Evaluate on a grid of `points` equally spaced over [lo, hi]
  /// (for plotting, e.g. Fig 4a). Grid points ascend, so the ±8h kernel
  /// window slides monotonically: one sweep over the sorted sample replaces
  /// a fresh binary search per grid point (O(n + m) window management for n
  /// samples / m points), with results bit-identical to calling pdf() at
  /// every grid point.
  [[nodiscard]] std::vector<std::pair<double, double>> evaluate_grid(
      double lo, double hi, std::size_t points) const;

 private:
  std::vector<double> sorted_;
  double bandwidth_ = 0.0;
};

/// Compute the bandwidth a rule would choose for a sample (exposed for the
/// bandwidth ablation and for tests).
double select_bandwidth(std::span<const double> data, BandwidthRule rule,
                        double fixed_bandwidth = 0.0);

}  // namespace linkpad::stats
