// Histograms.
//
// Two flavours are needed by the paper's pipeline:
//  * `Histogram` — dense, fixed range/bin count; used for density plots
//    (Fig 4a) and for the histogram density model.
//  * `SparseHistogram` — fixed bin WIDTH anchored at zero with unbounded
//    range; this is the structure behind the robust entropy estimator of
//    eq. (25): the paper requires a constant Δh across the whole experiment,
//    and outliers must land in their own far-away bins rather than being
//    clamped.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

namespace linkpad::stats {

/// Dense histogram over [lo, hi) with `bins` equal-width bins.
/// Out-of-range samples are tallied in underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Build from data with range [min(data), max(data)] padded slightly.
  static Histogram from_data(std::span<const double> xs, std::size_t bins);

  /// Rebuild from serialized state (core/shard_io): the exact counts of a
  /// partially-filled histogram. `total` is recomputed (it is always the
  /// sum of bin counts plus under/overflow), so counts are the whole state.
  static Histogram from_state(double lo, double hi,
                              std::vector<std::uint64_t> counts,
                              std::uint64_t underflow, std::uint64_t overflow);

  void add(double x);
  void add_all(std::span<const double> xs);

  /// Combine with another histogram of the SAME [lo, hi) range and bin
  /// count (parallel reduction step). Counts are integers, so the merge is
  /// exact: merge(a, b) equals feeding a's and b's samples into one
  /// histogram, in any order.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::uint64_t count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  /// Total samples added, including under/overflow.
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Probability density estimate at bin i: count / (total * bin_width).
  [[nodiscard]] double density(std::size_t i) const;

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Unbounded histogram with fixed bin width Δh anchored at 0:
/// bin(x) = floor(x / Δh). Sparse storage, ordered by bin index.
class SparseHistogram {
 public:
  explicit SparseHistogram(double bin_width);

  void add(double x);
  void add_all(std::span<const double> xs);

  /// Tally `count` samples directly into bin index `bin` — equivalent to
  /// `count` add() calls with values in that bin (checkpoint restore and
  /// the flat-counter → histogram handoff of the entropy accumulator).
  void add_cell(std::int64_t bin, std::uint64_t count);

  /// Combine with another histogram of the SAME bin width (parallel
  /// reduction step for the streaming entropy accumulator).
  void merge(const SparseHistogram& other);

  /// Snapshot of the partially-filled histogram, O(occupied_bins). Counts
  /// are integers, so a fork resumed with the same suffix stays exactly
  /// equal to the uninterrupted original — entropy checkpoints are lossless.
  [[nodiscard]] SparseHistogram fork() const { return *this; }

  /// Rebuild from serialized (bin, count) cells (core/shard_io) — the
  /// inverse of iterating cells(); exact because counts are integers.
  static SparseHistogram from_cells(
      double bin_width,
      const std::vector<std::pair<std::int64_t, std::uint64_t>>& cells);

  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t occupied_bins() const { return counts_.size(); }

  /// (bin index, count) pairs in increasing bin order.
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& cells() const {
    return counts_;
  }

 private:
  double width_;
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace linkpad::stats
