// Empirical distribution function (EDF) statistics: two-sample
// Kolmogorov–Smirnov and Cramér–von Mises distances and the Kolmogorov
// asymptotic distribution.
//
// These power the EDF adversary extension (classify/edf_classifier.hpp):
// instead of compressing a PIAT window to one scalar feature, the attacker
// compares the window's whole empirical CDF against per-class references —
// an upper-envelope attack the paper's scalar features approximate.
#pragma once

#include <span>
#include <vector>

namespace linkpad::stats {

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) − F_b(x)|.
/// Both inputs MUST be sorted ascending.
double ks_distance_sorted(std::span<const double> a_sorted,
                          std::span<const double> b_sorted);

/// Two-sample Cramér–von Mises-style distance:
/// ∫ (F_a − F_b)² d F_pooled — more weight on the body of the
/// distributions, less on single-tail excursions than KS.
/// Both inputs MUST be sorted ascending.
double cvm_distance_sorted(std::span<const double> a_sorted,
                           std::span<const double> b_sorted);

/// Kolmogorov distribution tail Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}
/// (the asymptotic p-value scale of the KS statistic).
double kolmogorov_tail(double lambda);

/// Asymptotic two-sample KS p-value for statistic d with sample sizes
/// (n, m), using the effective size ne = n·m/(n+m) and the standard
/// finite-sample correction.
double ks_two_sample_pvalue(double d, std::size_t n, std::size_t m);

/// Convenience: copies + sorts both samples, then ks_distance_sorted.
double ks_distance(std::span<const double> a, std::span<const double> b);

}  // namespace linkpad::stats
