// Streaming quantile estimation for the one-pass detection pipeline.
//
// `P2Quantile` is the P² algorithm of Jain & Chlamtac (CACM 1985): five
// markers track a single quantile of an unbounded stream in O(1) memory and
// O(1) per sample, adjusting marker heights by piecewise-parabolic
// interpolation. It is exact for the first five samples and typically
// within ~1% relative error of the true quantile for smooth distributions
// once a few hundred samples have been seen — the documented tolerance the
// sketch-based MAD/IQR window accumulators inherit.
//
// Merging: marker state is order-dependent, so P² has no exact merge in
// general. `merge` folds another sketch in APPROXIMATELY — exactly while
// both sides still hold raw samples (combined count ≤ 5), otherwise by
// replaying the other side's five-marker summary through a piecewise-linear
// inverse CDF. The result carries the documented ~1% marker error plus the
// interpolation error of the summary; reductions that must be exact should
// use `RunningStats` (moments) or `SparseHistogram` (entropy) instead.
// Deterministic: merge(a, b) is a pure function of the two sketch states,
// so a fixed-shape reduction tree yields identical bits on every run.
#pragma once

#include <array>
#include <cstddef>

namespace linkpad::stats {

/// Single-quantile streaming estimator (P² algorithm), O(1) memory.
class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double quantile);

  void add(double x);

  /// Current estimate. Exact (sorted interpolation) while count() <= 5.
  /// Expects at least one sample.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double quantile() const { return q_; }

  /// Forget all samples (the target quantile is kept).
  void reset();

  /// Fold `other` (same target quantile) into this sketch. Exact — equal to
  /// feeding the concatenated samples — while the combined count is ≤ 5;
  /// beyond that the smaller-state side is replayed into the larger: raw
  /// samples directly when it still holds them, otherwise `other.count()`
  /// deterministic draws off the piecewise-linear inverse CDF through its
  /// five markers (cost O(other.count())). Tolerance-bounded, not exact:
  /// see the header comment.
  void merge(const P2Quantile& other);

  /// O(1) snapshot of the partially-consumed sketch (five markers + their
  /// positions). The fork and the original evolve independently; feeding
  /// both the same suffix keeps them bit-identical — so a streaming
  /// MAD/IQR detector can be checkpointed mid-window and resumed.
  [[nodiscard]] P2Quantile fork() const { return *this; }

  /// The complete marker state — every field a bitwise round-trip needs.
  /// `state()`/`from_state` are the serialization hooks behind shard
  /// checkpoint files (core/shard_io): from_state(x.state()) == x bit for
  /// bit, including a mid-stream sketch whose markers have drifted.
  struct State {
    double quantile = 0.5;
    std::size_t count = 0;
    std::array<double, 5> heights{};
    std::array<double, 5> positions{};
    std::array<double, 5> desired{};
    std::array<double, 5> rate{};
  };
  [[nodiscard]] State state() const;

  /// Rebuild a sketch from a snapshot. Expects state.quantile in (0, 1).
  [[nodiscard]] static P2Quantile from_state(const State& state);

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> heights_{};  // marker heights (sample values)
  std::array<double, 5> pos_{};      // actual marker positions (1-based)
  std::array<double, 5> desired_{};  // desired marker positions
  std::array<double, 5> rate_{};     // desired-position increments
};

}  // namespace linkpad::stats
