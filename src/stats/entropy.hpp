// Entropy estimators.
//
// The adversary's third feature statistic is the histogram-based entropy
// estimator of eq. (25): Ĥ = −Σ (k_i/n) log(k_i/n) over bins of constant
// width Δh (the `+ log Δh` differential term of eq. (24) is constant across
// the experiment and dropped, exactly as the paper argues). The estimator is
// robust against outliers because each sample contributes with probability
// weight k_i/n.
//
// Extensions beyond the paper (used by the ablation benches):
//  * Miller–Madow bias correction Ĥ + (K−1)/(2n),
//  * the Moddemeijer-style correction from his 1989 Signal Processing paper,
//  * the closed-form differential entropy of a normal, ½·ln(2πeσ²).
#pragma once

#include <span>

#include "stats/histogram.hpp"

namespace linkpad::stats {

/// Bias-correction variants for the histogram entropy estimator.
enum class EntropyBias {
  kNone,        ///< plain plug-in estimator, eq. (25)
  kMillerMadow, ///< + (occupied_bins − 1) / (2n)
  kModdemeijer, ///< + (occupied_bins) / (2n) − 1/(2n) ... small-cell correction
};

/// Discrete (bin-probability) entropy in nats from a sparse histogram;
/// this is eq. (25).
double histogram_entropy(const SparseHistogram& hist,
                         EntropyBias bias = EntropyBias::kNone);

/// Convenience: bins `xs` with constant width `bin_width` and applies
/// histogram_entropy. This is the paper's feature statistic end to end.
double sample_entropy(std::span<const double> xs, double bin_width,
                      EntropyBias bias = EntropyBias::kNone);

/// Differential entropy estimate, eq. (24): histogram_entropy + log Δh.
double differential_entropy(std::span<const double> xs, double bin_width,
                            EntropyBias bias = EntropyBias::kNone);

/// Closed-form differential entropy of N(μ, σ²): ½ ln(2π e σ²).
double normal_differential_entropy(double sigma_squared);

}  // namespace linkpad::stats
