// Probability distributions with pdf/cdf/quantile/sampling, bound to the
// project's deterministic xoshiro engine.
//
// These are the building blocks of both sides of the study:
//  * the SIMULATOR samples from them (timer intervals, jitter, cross
//    traffic), and
//  * the THEORY evaluates their pdfs/cdfs (Bayes error integrals,
//    Theorems 1–3).
//
// Sampling functions take the engine by reference and are `const` on the
// distribution object, so one distribution can be shared across threads with
// per-thread engines.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace linkpad::stats {

using Rng = util::Rng;

/// Opt-in fast sampling: when enabled, sample_standard_normal (and with it
/// Normal / HalfNormal / TruncatedNormal) and Exponential::sample switch to
/// 256-layer Ziggurat rejection instead of the polar / inverse-CDF
/// reference paths. Default OFF: the Ziggurat consumes a different
/// (seed-reproducible) sequence of engine draws, so every shipped figure
/// stays bit-reproducible unless a caller explicitly opts in. The flag is a
/// process-wide atomic; flip it only between experiments, not mid-sweep.
void set_ziggurat_sampling(bool enabled);
[[nodiscard]] bool ziggurat_sampling();

/// Draw one standard normal via the Marsaglia polar method (deterministic:
/// consumes a variable but seed-reproducible number of uniforms). With
/// set_ziggurat_sampling(true), dispatches to the Ziggurat instead.
double sample_standard_normal(Rng& rng);

/// Direct 256-layer Ziggurat draws (flag-independent; exposed for the
/// acceptance tests and micro_perf).
double sample_standard_normal_ziggurat(Rng& rng);
double sample_standard_exponential_ziggurat(Rng& rng);

/// Normal N(mean, sigma²).
class Normal {
 public:
  Normal(double mean, double sigma);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] double variance() const { return sigma_ * sigma_; }

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double log_pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double mean_;
  double sigma_;
};

/// Half-normal: |Z|·sigma for Z ~ N(0,1). Models one-sided blocking delays
/// (an interrupt can only POSTPONE the timer, never advance it).
class HalfNormal {
 public:
  explicit HalfNormal(double sigma);

  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double sigma_;
};

/// Normal truncated to [lower, +inf). Used for VIT timer intervals, which
/// must stay positive no matter how large σ_T is pushed in the sweeps.
class TruncatedNormal {
 public:
  TruncatedNormal(double mean, double sigma, double lower);

  [[nodiscard]] double mean_parameter() const { return mean_; }
  [[nodiscard]] double sigma_parameter() const { return sigma_; }
  [[nodiscard]] double lower() const { return lower_; }

  /// Actual mean of the truncated law (≥ mean_parameter when truncating
  /// from below).
  [[nodiscard]] double mean() const;
  /// Actual variance of the truncated law (≤ σ²).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double mean_;
  double sigma_;
  double lower_;
  double alpha_;      // standardized truncation point
  double z_;          // normalizing mass 1 - Phi(alpha)
};

/// Exponential with given mean (rate = 1/mean).
class Exponential {
 public:
  explicit Exponential(double mean);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const { return mean_ * mean_; }
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double mean_;
};

/// Uniform on [lo, hi).
class Uniform {
 public:
  Uniform(double lo, double hi);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double mean() const { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double lo_;
  double hi_;
};

/// Pareto (Lomax-style, x ≥ scale) — heavy-tailed ON periods for the bursty
/// cross-traffic generator (self-similar aggregate traffic).
class Pareto {
 public:
  Pareto(double scale, double shape);

  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double shape() const { return shape_; }
  /// Mean (finite only for shape > 1).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double scale_;
  double shape_;
};

/// Poisson counts with mean lambda (inversion for small lambda, PTRD-style
/// normal-approximation rejection fallback for large).
std::uint64_t sample_poisson(Rng& rng, double lambda);

/// Chi-squared distribution with k degrees of freedom (theory only; the
/// exact law of (n−1)·S²/σ² for normal samples).
class ChiSquared {
 public:
  explicit ChiSquared(double dof);

  [[nodiscard]] double dof() const { return dof_; }
  [[nodiscard]] double mean() const { return dof_; }
  [[nodiscard]] double variance() const { return 2.0 * dof_; }
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;

 private:
  double dof_;
};

}  // namespace linkpad::stats
