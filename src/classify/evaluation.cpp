#include "classify/evaluation.hpp"

#include <sstream>

#include "util/check.hpp"

namespace linkpad::classify {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), counts_(num_classes * num_classes, 0) {
  LINKPAD_EXPECTS(num_classes >= 2);
}

void ConfusionMatrix::add(ClassLabel truth, ClassLabel predicted) {
  LINKPAD_EXPECTS(truth >= 0 && static_cast<std::size_t>(truth) < n_);
  LINKPAD_EXPECTS(predicted >= 0 && static_cast<std::size_t>(predicted) < n_);
  ++counts_[static_cast<std::size_t>(truth) * n_ +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::add_count(ClassLabel truth, ClassLabel predicted,
                                std::uint64_t count) {
  LINKPAD_EXPECTS(truth >= 0 && static_cast<std::size_t>(truth) < n_);
  LINKPAD_EXPECTS(predicted >= 0 && static_cast<std::size_t>(predicted) < n_);
  counts_[static_cast<std::size_t>(truth) * n_ +
          static_cast<std::size_t>(predicted)] += count;
  total_ += count;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  LINKPAD_EXPECTS(other.n_ == n_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::uint64_t ConfusionMatrix::count(ClassLabel truth,
                                     ClassLabel predicted) const {
  LINKPAD_EXPECTS(truth >= 0 && static_cast<std::size_t>(truth) < n_);
  LINKPAD_EXPECTS(predicted >= 0 && static_cast<std::size_t>(predicted) < n_);
  return counts_[static_cast<std::size_t>(truth) * n_ +
                 static_cast<std::size_t>(predicted)];
}

std::uint64_t ConfusionMatrix::row_total(ClassLabel truth) const {
  std::uint64_t acc = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    acc += counts_[static_cast<std::size_t>(truth) * n_ + j];
  }
  return acc;
}

double ConfusionMatrix::per_class_rate(ClassLabel c) const {
  const std::uint64_t row = row_total(c);
  if (row == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(row);
}

double ConfusionMatrix::detection_rate(
    const std::vector<double>& priors) const {
  LINKPAD_EXPECTS(priors.size() == n_);
  double v = 0.0;
  for (std::size_t c = 0; c < n_; ++c) {
    v += priors[c] * per_class_rate(static_cast<ClassLabel>(c));
  }
  return v;
}

double ConfusionMatrix::detection_rate() const {
  return detection_rate(std::vector<double>(n_, 1.0 / static_cast<double>(n_)));
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  out << "confusion matrix (rows = truth, cols = predicted):\n";
  for (std::size_t i = 0; i < n_; ++i) {
    out << "  class " << i << ":";
    for (std::size_t j = 0; j < n_; ++j) {
      out << ' ' << counts_[i * n_ + j];
    }
    out << "  (rate " << per_class_rate(static_cast<ClassLabel>(i)) << ")\n";
  }
  return out.str();
}

}  // namespace linkpad::classify
