// The complete adversary of paper Sec 3.3: off-line training followed by
// run-time classification.
//
// Off-line phase ("the adversary reconstructs the entire link padding
// system"): he feeds per-class PIAT streams — produced by HIS replica of the
// gateways — through the chosen feature statistic over windows of size n,
// then fits a Gaussian-KDE density per class and derives Bayes rules.
//
// Run-time phase: a captured window of n PIATs is reduced to its feature
// value and classified by maximum posterior.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "classify/bayes.hpp"
#include "classify/evaluation.hpp"
#include "classify/feature.hpp"
#include "util/types.hpp"

namespace linkpad::classify {

/// Adversary hyper-parameters.
struct AdversaryConfig {
  FeatureKind feature = FeatureKind::kSampleEntropy;
  std::size_t window_size = 1000;  ///< n, the PIAT sample size

  /// Entropy bin width Δh; 0 selects automatically from pooled training
  /// data via Scott's histogram rule (constant thereafter, per the paper).
  double entropy_bin_width = 0.0;
  stats::EntropyBias entropy_bias = stats::EntropyBias::kNone;

  DensityKind density = DensityKind::kKde;
  stats::BandwidthRule bandwidth = stats::BandwidthRule::kSilverman;
  double fixed_bandwidth = 0.0;  ///< used with BandwidthRule::kFixed
};

/// Trainable + evaluable adversary.
class Adversary {
 public:
  explicit Adversary(const AdversaryConfig& config);

  /// Off-line training. `class_streams[i]` is a long PIAT stream recorded
  /// at payload rate ω_i on the adversary's replica; it is chopped into
  /// disjoint windows of `window_size`. Priors default to equal.
  void train(const std::vector<std::vector<double>>& class_streams,
             std::vector<double> priors = {});

  /// Run-time classification of one captured window (size ≥ window_size;
  /// only the first window_size entries are used).
  [[nodiscard]] ClassLabel classify_window(std::span<const double> window) const;

  /// Feature value of a window (for inspection / plots).
  [[nodiscard]] double feature_of(std::span<const double> window) const;

  /// Chop per-class test streams into windows and classify each; returns
  /// the confusion matrix.
  [[nodiscard]] ConfusionMatrix evaluate(
      const std::vector<std::vector<double>>& class_test_streams) const;

  /// evaluate().detection_rate() with the training priors.
  [[nodiscard]] double detection_rate(
      const std::vector<std::vector<double>>& class_test_streams) const;

  [[nodiscard]] bool trained() const { return classifier_.has_value(); }
  [[nodiscard]] const BayesClassifier& classifier() const;
  [[nodiscard]] const AdversaryConfig& config() const { return config_; }

  /// The Δh actually in use (after auto-selection).
  [[nodiscard]] double entropy_bin_width() const { return bin_width_; }

  /// Training features per class (for plotting the f(s|ω) of Fig 2).
  [[nodiscard]] const std::vector<std::vector<double>>& training_features() const {
    return training_features_;
  }

  /// Chop a stream into disjoint windows of `n` (shared helper).
  static std::vector<std::span<const double>> windows_of(
      std::span<const double> stream, std::size_t n);

 private:
  AdversaryConfig config_;
  double bin_width_ = 0.0;
  std::unique_ptr<FeatureExtractor> extractor_;
  std::optional<BayesClassifier> classifier_;
  std::vector<double> priors_;
  std::vector<std::vector<double>> training_features_;
};

}  // namespace linkpad::classify
