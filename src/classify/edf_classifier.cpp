#include "classify/edf_classifier.hpp"

#include <algorithm>
#include <limits>

#include "classify/adversary.hpp"
#include "stats/edf.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

void thin_reference_sorted(std::vector<double>& sample,
                           std::size_t max_reference) {
  std::sort(sample.begin(), sample.end());
  if (sample.size() <= max_reference) return;
  std::vector<double> thinned;
  thinned.reserve(max_reference);
  const double step = static_cast<double>(sample.size()) /
                      static_cast<double>(max_reference);
  for (std::size_t k = 0; k < max_reference; ++k) {
    const auto idx =
        static_cast<std::size_t>((static_cast<double>(k) + 0.5) * step);
    thinned.push_back(sample[std::min(idx, sample.size() - 1)]);
  }
  sample = std::move(thinned);
}

EdfClassifier EdfClassifier::train(
    const std::vector<std::vector<double>>& class_streams, EdfDistance distance,
    std::size_t max_reference) {
  LINKPAD_EXPECTS(class_streams.size() >= 2);
  LINKPAD_EXPECTS(max_reference >= 16);

  EdfClassifier clf;
  clf.distance_ = distance;
  clf.references_.reserve(class_streams.size());
  for (const auto& stream : class_streams) {
    LINKPAD_EXPECTS(stream.size() >= 16);
    std::vector<double> reference(stream.begin(), stream.end());
    thin_reference_sorted(reference, max_reference);
    clf.references_.push_back(std::move(reference));
  }
  return clf;
}

std::vector<double> EdfClassifier::distances(
    std::span<const double> window) const {
  LINKPAD_EXPECTS(!window.empty());
  std::vector<double> sorted(window.begin(), window.end());
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> out;
  out.reserve(references_.size());
  for (const auto& reference : references_) {
    out.push_back(distance_ == EdfDistance::kKolmogorovSmirnov
                      ? stats::ks_distance_sorted(sorted, reference)
                      : stats::cvm_distance_sorted(sorted, reference));
  }
  return out;
}

ClassLabel EdfClassifier::classify_window(
    std::span<const double> window) const {
  const auto ds = distances(window);
  ClassLabel best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < ds.size(); ++c) {
    if (ds[c] < best_d) {
      best_d = ds[c];
      best = static_cast<ClassLabel>(c);
    }
  }
  return best;
}

ConfusionMatrix EdfClassifier::evaluate(
    const std::vector<std::vector<double>>& class_test_streams,
    std::size_t window_size) const {
  LINKPAD_EXPECTS(class_test_streams.size() == references_.size());
  ConfusionMatrix cm(references_.size());
  for (std::size_t c = 0; c < class_test_streams.size(); ++c) {
    for (const auto& w :
         Adversary::windows_of(class_test_streams[c], window_size)) {
      cm.add(static_cast<ClassLabel>(c), classify_window(w));
    }
  }
  return cm;
}

}  // namespace linkpad::classify
