#include "classify/cpd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {

namespace {

/// Mean / variance of a training pool (population variance, matching the
/// GaussianDensity fit the CUSUM side uses).
struct Moments {
  double mean = 0.0;
  double var = 0.0;
};

Moments moments_of(const std::vector<double>& xs) {
  Moments m;
  const double n = static_cast<double>(xs.size());
  for (double x : xs) m.mean += x;
  m.mean /= n;
  for (double x : xs) m.var += (x - m.mean) * (x - m.mean);
  m.var /= n;
  return m;
}

/// Variance floor: a jitter-free CIT capture is CONSTANT, and the EWMA
/// statistic divides by σ². Relative to the mean so the floor scales with
/// the PIAT magnitude; the absolute term keeps a zero-mean pool safe.
double floored_var(const Moments& m) {
  return std::max(m.var, 1e-12 * m.mean * m.mean +
                             std::numeric_limits<double>::min());
}

}  // namespace

std::string cpd_kind_name(CpdKind kind) {
  return kind == CpdKind::kCusum ? "cusum" : "adaptive-ewma";
}

CpdModel CpdModel::train(const CpdConfig& config,
                         const std::vector<std::vector<double>>& class_samples) {
  LINKPAD_EXPECTS(class_samples.size() == 2);
  for (const auto& pool : class_samples) LINKPAD_EXPECTS(pool.size() >= 2);
  LINKPAD_EXPECTS(config.ewma_alpha > 0.0);
  LINKPAD_EXPECTS(config.ewma_beta > 0.0 && config.ewma_beta < 1.0);
  LINKPAD_EXPECTS(config.target_far >= 0.0 && config.target_far < 1.0);
  if (config.target_far > 0.0) {
    LINKPAD_EXPECTS(config.horizon >= 1);
    LINKPAD_EXPECTS(config.trials >= 1);
  } else {
    LINKPAD_EXPECTS(config.threshold > 0.0);
  }

  CpdModel model;
  model.config_ = config;
  model.threshold_ = config.threshold;

  const Moments low = moments_of(class_samples[0]);
  const Moments high = moments_of(class_samples[1]);
  if (config.kind == CpdKind::kCusum) {
    model.classifier_ = BayesClassifier::train(
        class_samples, {0.5, 0.5}, config.density, config.bandwidth,
        config.fixed_bandwidth);
  } else {
    // Each side starts its EWMA at ITS null class's moments and presumes a
    // drift of ±alpha·μ toward the target class. sign(0) = 0: when the
    // trained means coincide (a perfectly equalizing defense) the side's
    // increment is identically zero — the detector honestly never fires.
    const double direction =
        high.mean > low.mean ? 1.0 : (high.mean < low.mean ? -1.0 : 0.0);
    model.ewma_[kSideHigh] = {low.mean, floored_var(low),
                              config.ewma_alpha * direction};
    model.ewma_[kSideLow] = {high.mean, floored_var(high),
                             -config.ewma_alpha * direction};
  }

  if (config.target_far > 0.0) {
    model.threshold_ =
        calibrate_threshold(model, class_samples, config.target_far,
                            config.horizon, config.trials,
                            config.calibration_seed);
  }
  return model;
}

CpdClassState CpdModel::initial_state() const {
  CpdClassState state;
  state.high.mean = ewma_[kSideHigh].mean0;
  state.low.mean = ewma_[kSideLow].mean0;
  return state;
}

void CpdModel::advance(std::size_t side, CpdSideState& state, double x) const {
  double inc = 0.0;
  if (config_.kind == CpdKind::kCusum) {
    const auto& clf = *classifier_;
    const double llr = clf.density(1).log_pdf(x) - clf.density(0).log_pdf(x);
    inc = side == kSideHigh ? llr : -llr;
  } else {
    const auto& params = ewma_[side];
    const double mu = state.mean;
    const double delta = params.drift * mu;  // presumed post-change shift
    inc = (delta / params.var) * (x - mu - 0.5 * delta);
    state.mean = config_.ewma_beta * mu + (1.0 - config_.ewma_beta) * x;
  }
  state.g = std::max(0.0, state.g + inc);
}

void CpdModel::update(CpdClassState& state, double x) const {
  ++state.n;
  const auto step = [&](std::size_t side, CpdSideState& s) {
    advance(side, s, x);
    if (s.g > threshold_) {
      ++s.alarms;
      if (s.first_alarm == 0) s.first_alarm = state.n;
      s.g = 0.0;  // Page's reset: keep watching for the next change
    }
  };
  step(kSideHigh, state.high);
  step(kSideLow, state.low);
}

double CpdModel::max_statistic(std::size_t side,
                               std::span<const double> stream) const {
  LINKPAD_EXPECTS(side == kSideHigh || side == kSideLow);
  CpdSideState state;
  state.mean = ewma_[side].mean0;
  double peak = 0.0;
  for (double x : stream) {
    advance(side, state, x);
    peak = std::max(peak, state.g);
  }
  return peak;
}

TimeToDetection CpdModel::time_to_detection(
    std::span<const CpdClassState> per_class) const {
  LINKPAD_EXPECTS(per_class.size() == 2);
  TimeToDetection out;
  out.detected = true;
  std::size_t worst = 0;
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    const auto& state = per_class[c];
    const CpdSideState& detecting = c == 1 ? state.high : state.low;
    const CpdSideState& opposite = c == 1 ? state.low : state.high;
    if (detecting.first_alarm == 0) out.detected = false;
    worst = std::max(worst, detecting.first_alarm);
    out.false_alarms += opposite.alarms;
  }
  out.n_at_detection = out.detected ? worst : 0;
  return out;
}

double calibrate_threshold(const CpdModel& model,
                           const std::vector<std::vector<double>>& class_samples,
                           double target_far, std::size_t horizon,
                           std::size_t trials, std::uint64_t seed) {
  LINKPAD_EXPECTS(class_samples.size() == 2);
  for (const auto& pool : class_samples) LINKPAD_EXPECTS(!pool.empty());
  LINKPAD_EXPECTS(target_far > 0.0 && target_far < 1.0);
  LINKPAD_EXPECTS(horizon >= 1 && trials >= 1);

  // Per trial: bootstrap-replay each side's NULL class over the horizon
  // and keep the worst of the two side maxima — the first alarm at
  // threshold h happens within the horizon iff that max exceeds h
  // (resets only matter after the first crossing). Trials draw their RNG
  // substreams by index, so the estimate is order- and thread-independent.
  const util::RngFactory factory(seed);
  std::vector<double> maxima;
  maxima.reserve(trials);
  std::vector<double> stream(horizon);
  for (std::size_t t = 0; t < trials; ++t) {
    auto rng = factory.make(t);
    double worst = 0.0;
    for (const std::size_t side :
         {CpdModel::kSideHigh, CpdModel::kSideLow}) {
      const auto& pool =
          class_samples[side == CpdModel::kSideHigh ? 0 : 1];
      const double size = static_cast<double>(pool.size());
      for (auto& x : stream) {
        x = pool[static_cast<std::size_t>(rng.uniform01() * size)];
      }
      worst = std::max(worst, model.max_statistic(side, stream));
    }
    maxima.push_back(worst);
  }
  std::sort(maxima.begin(), maxima.end());
  // h = the empirical (1 − far) quantile: with a strict > alarm rule, the
  // fraction of trials whose max EXCEEDS h is ≈ target_far (≤ it on ties).
  const auto rank = static_cast<std::size_t>(
      std::ceil((1.0 - target_far) * static_cast<double>(trials)));
  const std::size_t index = std::min(trials - 1, std::max<std::size_t>(rank, 1) - 1);
  return maxima[index];
}

}  // namespace linkpad::classify
