// Bayes decision rule over m payload-rate classes (paper eq. 1–2).
//
// classify(s) = argmax_i  P(ω_i) · f(s|ω_i), evaluated in log space.
// For the two-class case the decision threshold d of eq. (3)/Fig 2 — the
// feature value where the weighted densities cross — is recovered
// numerically for inspection and for the numeric Bayes-error integral.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "classify/density_model.hpp"
#include "util/types.hpp"

namespace linkpad::classify {

/// Trained Bayes classifier: priors + one density model per class.
class BayesClassifier {
 public:
  /// Train from per-class feature samples. `priors` must sum to ~1 and
  /// match the number of classes; each class needs ≥ 2 training features.
  static BayesClassifier train(
      const std::vector<std::vector<double>>& class_features,
      std::vector<double> priors, DensityKind kind = DensityKind::kKde,
      stats::BandwidthRule rule = stats::BandwidthRule::kSilverman,
      double fixed_bandwidth = 0.0);

  // Deep-copyable (density models are cloned) so a trained detector bank
  // can be checkpointed; moves stay cheap.
  BayesClassifier(const BayesClassifier& other);
  BayesClassifier& operator=(const BayesClassifier& other);
  BayesClassifier(BayesClassifier&&) noexcept = default;
  BayesClassifier& operator=(BayesClassifier&&) noexcept = default;
  ~BayesClassifier() = default;

  /// Maximum-a-posteriori class of feature value s.
  [[nodiscard]] ClassLabel classify(double s) const;

  /// Posterior probabilities P(ω_i | s) (normalized).
  [[nodiscard]] std::vector<double> posteriors(double s) const;

  [[nodiscard]] std::size_t num_classes() const { return models_.size(); }
  [[nodiscard]] double prior(ClassLabel c) const { return priors_[c]; }
  [[nodiscard]] const DensityModel& density(ClassLabel c) const {
    return *models_[c];
  }

  /// Two-class only: the decision threshold d where
  /// P(ω_0)f(s|ω_0) = P(ω_1)f(s|ω_1) within the observed feature range,
  /// found by scanning + bisection. Empty if no single crossing exists
  /// (e.g. equal-mean Gaussians cross twice).
  [[nodiscard]] std::optional<double> decision_threshold() const;

 private:
  BayesClassifier() = default;

  std::vector<double> priors_;
  std::vector<std::unique_ptr<DensityModel>> models_;
  double feature_lo_ = 0.0;  // training feature range (for threshold scan)
  double feature_hi_ = 0.0;
};

}  // namespace linkpad::classify
