// Sequential adversary (extension): Wald's SPRT on feature batches.
//
// The paper's Fig 5(b) argument is that VIT forces the fixed-sample-size
// adversary to capture astronomically many PIATs. A sharper attacker does
// not fix n in advance: he accumulates the log-likelihood ratio of small
// feature batches and stops the moment Wald's thresholds are crossed —
// reaching the same error rates with (often several times) fewer packets
// on average. `bench/abl_sequential` quantifies how much of the paper's
// sample-size security margin this recovers for the attacker, which is why
// the design guideline recommends budgeting n_max generously.
#pragma once

#include <optional>
#include <span>

#include "classify/adversary.hpp"
#include "util/types.hpp"

namespace linkpad::classify {

/// SPRT configuration.
struct SequentialConfig {
  double alpha = 0.01;        ///< tolerated P(decide ω_h | truth ω_l)
  double beta = 0.01;         ///< tolerated P(decide ω_l | truth ω_h)
  std::size_t batch_size = 100;   ///< PIATs reduced to one feature per step
  std::size_t max_batches = 10000;  ///< give up (undecided) after this many
};

/// Outcome of one sequential run.
struct SequentialOutcome {
  bool decided = false;       ///< false = ran out of data/budget
  ClassLabel decision = 0;    ///< valid when decided
  std::size_t batches_used = 0;
  std::size_t piats_used = 0; ///< batches_used * batch_size
  double final_llr = 0.0;     ///< log-likelihood ratio at stopping time
};

/// Wald sequential probability ratio test on top of a trained two-class
/// Adversary (its per-class feature densities provide the likelihoods).
class SequentialDetector {
 public:
  /// `adversary` must be trained with exactly two classes and with
  /// window_size == config.batch_size. Keeps a reference — the adversary
  /// must outlive the detector.
  SequentialDetector(const Adversary& adversary, const SequentialConfig& config);

  /// Consume consecutive batches from `stream` until a decision or the
  /// stream/budget is exhausted.
  [[nodiscard]] SequentialOutcome decide(std::span<const double> stream) const;

  /// Wald's decision thresholds (log scale): accept ω_h above `upper`,
  /// accept ω_l below `lower`.
  [[nodiscard]] double upper_threshold() const { return upper_; }
  [[nodiscard]] double lower_threshold() const { return lower_; }

  /// Wald's approximation of the expected number of BATCHES to decide,
  /// given the true class's mean and variance of the per-batch LLR
  /// increment (measured from training features).
  [[nodiscard]] double expected_batches(ClassLabel truth) const;

 private:
  const Adversary& adversary_;
  SequentialConfig config_;
  double upper_ = 0.0;
  double lower_ = 0.0;
  double mean_llr_low_ = 0.0;   ///< E[increment | ω_l] (negative drift)
  double mean_llr_high_ = 0.0;  ///< E[increment | ω_h] (positive drift)
};

}  // namespace linkpad::classify
