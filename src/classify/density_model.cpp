#include "classify/density_model.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

namespace {
constexpr double kLogFloor = -745.0;
}

// -------------------------------------------------------------- KdeDensity

KdeDensity::KdeDensity(std::span<const double> data, stats::BandwidthRule rule,
                       double fixed_bandwidth)
    : kde_(data, rule, fixed_bandwidth) {}

double KdeDensity::log_pdf(double x) const { return kde_.log_pdf(x); }
double KdeDensity::pdf(double x) const { return kde_.pdf(x); }

// --------------------------------------------------------- GaussianDensity

GaussianDensity::GaussianDensity(std::span<const double> data) {
  LINKPAD_EXPECTS(data.size() >= 2);
  mean_ = stats::mean(data);
  sigma_ = std::max(stats::sample_stddev(data),
                    std::max(std::abs(mean_) * 1e-12, 1e-300));
}

GaussianDensity::GaussianDensity(double mean, double sigma)
    : mean_(mean), sigma_(sigma) {
  LINKPAD_EXPECTS(sigma > 0.0);
}

double GaussianDensity::log_pdf(double x) const {
  const double z = (x - mean_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) - 0.5 * std::log(2.0 * M_PI);
}

double GaussianDensity::pdf(double x) const { return std::exp(log_pdf(x)); }

// -------------------------------------------------------- HistogramDensity

HistogramDensity::HistogramDensity(std::span<const double> data,
                                   std::size_t bins)
    : hist_(stats::Histogram::from_data(data, bins)) {
  // One pseudo-count spread over the whole range keeps log_pdf finite in
  // empty bins without visibly distorting populated ones.
  smoothing_mass_ =
      1.0 / (static_cast<double>(hist_.total() + 1) * (hist_.hi() - hist_.lo()));
}

double HistogramDensity::pdf(double x) const {
  if (x < hist_.lo() || x >= hist_.hi()) return smoothing_mass_;
  const auto bin = std::min(
      static_cast<std::size_t>((x - hist_.lo()) / hist_.bin_width()),
      hist_.bins() - 1);
  return std::max(hist_.density(bin), smoothing_mass_);
}

double HistogramDensity::log_pdf(double x) const {
  const double p = pdf(x);
  return p > 0.0 ? std::log(p) : kLogFloor;
}

// ----------------------------------------------------------------- factory

std::unique_ptr<DensityModel> make_density(DensityKind kind,
                                           std::span<const double> data,
                                           stats::BandwidthRule rule,
                                           double fixed_bandwidth,
                                           std::size_t histogram_bins) {
  switch (kind) {
    case DensityKind::kKde:
      return std::make_unique<KdeDensity>(data, rule, fixed_bandwidth);
    case DensityKind::kGaussian:
      return std::make_unique<GaussianDensity>(data);
    case DensityKind::kHistogram:
      return std::make_unique<HistogramDensity>(data, histogram_bins);
  }
  return nullptr;
}

}  // namespace linkpad::classify
