// Class-conditional density models f(s|ω) for the Bayes adversary.
//
// The paper's adversary fits a Gaussian-kernel density estimate to the
// training features of each payload rate ("histograms are usually too
// coarse", Sec 3.3 step 2). We provide the KDE model plus a parametric
// Gaussian fit and a plain histogram model so the design choice can be
// ablated — the histogram model is exactly what the paper warns against.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "stats/histogram.hpp"
#include "stats/kde.hpp"

namespace linkpad::classify {

/// Density model selection.
enum class DensityKind { kKde, kGaussian, kHistogram };

/// One-dimensional density with log-pdf evaluation.
class DensityModel {
 public:
  virtual ~DensityModel() = default;
  [[nodiscard]] virtual double log_pdf(double x) const = 0;
  [[nodiscard]] virtual double pdf(double x) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Deep copy — lets a trained classifier (and with it a whole detector
  /// bank) be checkpointed/forked.
  [[nodiscard]] virtual std::unique_ptr<DensityModel> clone() const = 0;
};

/// Gaussian kernel density estimator (the paper's choice).
class KdeDensity final : public DensityModel {
 public:
  explicit KdeDensity(std::span<const double> data,
                      stats::BandwidthRule rule = stats::BandwidthRule::kSilverman,
                      double fixed_bandwidth = 0.0);

  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] std::string name() const override { return "kde"; }
  [[nodiscard]] std::unique_ptr<DensityModel> clone() const override {
    return std::make_unique<KdeDensity>(*this);
  }
  [[nodiscard]] const stats::GaussianKde& kde() const { return kde_; }

 private:
  stats::GaussianKde kde_;
};

/// Maximum-likelihood Gaussian fit.
class GaussianDensity final : public DensityModel {
 public:
  explicit GaussianDensity(std::span<const double> data);
  GaussianDensity(double mean, double sigma);

  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] std::string name() const override { return "gaussian"; }
  [[nodiscard]] std::unique_ptr<DensityModel> clone() const override {
    return std::make_unique<GaussianDensity>(*this);
  }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mean_;
  double sigma_;
};

/// Dense histogram density with Laplace smoothing for empty bins.
class HistogramDensity final : public DensityModel {
 public:
  HistogramDensity(std::span<const double> data, std::size_t bins);

  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] std::string name() const override { return "histogram"; }
  [[nodiscard]] std::unique_ptr<DensityModel> clone() const override {
    return std::make_unique<HistogramDensity>(*this);
  }

 private:
  stats::Histogram hist_;
  double smoothing_mass_;  // pseudo-density assigned outside/empty bins
};

/// Factory used by the classifier trainer.
std::unique_ptr<DensityModel> make_density(
    DensityKind kind, std::span<const double> data,
    stats::BandwidthRule rule = stats::BandwidthRule::kSilverman,
    double fixed_bandwidth = 0.0, std::size_t histogram_bins = 32);

}  // namespace linkpad::classify
