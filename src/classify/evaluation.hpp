// Classifier evaluation: confusion matrix and the paper's security metric.
//
// Detection rate (paper Sec 4.1.1, eq. 7):
//     v = Σ_i P(ω_i) · P(classified as ω_i | true class ω_i),
// i.e. prior-weighted per-class accuracy. With the paper's equal priors and
// balanced test sets this equals plain accuracy; the prior-weighted form is
// kept so unbalanced extensions stay correct.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace linkpad::classify {

/// Counts of (true class, predicted class) pairs.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(ClassLabel truth, ClassLabel predicted);

  /// Tally `count` occurrences at once (checkpoint restore / bulk merges).
  void add_count(ClassLabel truth, ClassLabel predicted, std::uint64_t count);

  /// Merge counts (parallel evaluation shards).
  void merge(const ConfusionMatrix& other);

  [[nodiscard]] std::size_t num_classes() const { return n_; }
  [[nodiscard]] std::uint64_t count(ClassLabel truth, ClassLabel predicted) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t row_total(ClassLabel truth) const;

  /// P(correct | true class c); 0 when the class has no test samples.
  [[nodiscard]] double per_class_rate(ClassLabel c) const;

  /// Prior-weighted detection rate, eq. (7).
  [[nodiscard]] double detection_rate(const std::vector<double>& priors) const;

  /// Detection rate with equal priors.
  [[nodiscard]] double detection_rate() const;

  /// Pretty-print for logs/examples.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t n_;
  std::vector<std::uint64_t> counts_;  // row-major [truth][predicted]
  std::uint64_t total_ = 0;
};

}  // namespace linkpad::classify
