#include "classify/window_accumulator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile_sketch.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace linkpad::classify {

namespace {

class MeanAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override {
    sum_ += x;
    ++n_;
  }
  void add_span(std::span<const double> xs) override {
    // In-order running sum, exactly as add() — just without a virtual call
    // per sample.
    for (double x : xs) sum_ += x;
    n_ += xs.size();
  }
  [[nodiscard]] double value() const override {
    LINKPAD_EXPECTS(n_ > 0);
    return sum_ / static_cast<double>(n_);
  }
  void reset() override {
    sum_ = 0.0;
    n_ = 0;
  }
  [[nodiscard]] std::size_t count() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "sample mean"; }
  [[nodiscard]] std::unique_ptr<WindowAccumulator> clone() const override {
    return std::make_unique<MeanAccumulator>(*this);
  }

 private:
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

class VarianceAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override { rs_.add(x); }
  void add_span(std::span<const double> xs) override {
    for (double x : xs) rs_.add(x);
  }
  [[nodiscard]] double value() const override { return rs_.variance(); }
  void reset() override { rs_ = stats::RunningStats{}; }
  [[nodiscard]] std::size_t count() const override { return rs_.count(); }
  [[nodiscard]] std::string name() const override { return "sample variance"; }
  [[nodiscard]] std::unique_ptr<WindowAccumulator> clone() const override {
    return std::make_unique<VarianceAccumulator>(*this);
  }

 private:
  stats::RunningStats rs_;
};

/// Open-addressing (bin index → count) table: the entropy accumulator's hot
/// store. SparseHistogram's std::map costs a pointer-chasing insert per
/// PIAT; this flat table makes the per-sample step a hash + linear probe,
/// which matters because the prefix-replay engine streams every capture
/// through one entropy accumulator per sample-size point. Counts are
/// integers, so the content — and any entropy derived from it — is exactly
/// the histogram a SparseHistogram would hold.
class FlatBinCounter {
 public:
  FlatBinCounter() { cells_.resize(kInitialSlots); }

  void add(std::int64_t bin) {
    ++total_;
    std::size_t idx = slot_of(bin);
    for (;;) {
      Cell& cell = cells_[idx];
      if (cell.count == 0) {
        cell.bin = bin;
        cell.count = 1;
        if (++used_ * 3 >= cells_.size() * 2) grow();
        return;
      }
      if (cell.bin == bin) {
        ++cell.count;
        return;
      }
      idx = (idx + 1) & (cells_.size() - 1);
    }
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t occupied() const { return used_; }

  /// Occupied (bin, count) cells in ascending bin order.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>> sorted_cells()
      const {
    std::vector<std::pair<std::int64_t, std::uint64_t>> out;
    out.reserve(used_);
    for (const Cell& cell : cells_) {
      if (cell.count != 0) out.emplace_back(cell.bin, cell.count);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void clear() {
    // Keep the capacity: windows of one detector are all the same size, so
    // the table reaches steady state after the first window.
    std::fill(cells_.begin(), cells_.end(), Cell{});
    used_ = 0;
    total_ = 0;
  }

 private:
  struct Cell {
    std::int64_t bin = 0;
    std::uint64_t count = 0;  // 0 == empty slot
  };
  static constexpr std::size_t kInitialSlots = 64;  // power of two

  [[nodiscard]] std::size_t slot_of(std::int64_t bin) const {
    return static_cast<std::size_t>(
               util::SplitMix64::mix(static_cast<std::uint64_t>(bin))) &
           (cells_.size() - 1);
  }

  void grow() {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.size() * 2, Cell{});
    for (const Cell& cell : old) {
      if (cell.count == 0) continue;
      std::size_t idx = slot_of(cell.bin);
      while (cells_[idx].count != 0) idx = (idx + 1) & (cells_.size() - 1);
      cells_[idx] = cell;
    }
  }

  std::vector<Cell> cells_;
  std::size_t used_ = 0;
  std::uint64_t total_ = 0;
};

class EntropyAccumulator final : public WindowAccumulator {
 public:
  EntropyAccumulator(double bin_width, stats::EntropyBias bias)
      : bias_(bias), bin_width_(bin_width) {
    LINKPAD_EXPECTS(bin_width > 0.0);
  }

  void add(double x) override {
    // Same binning as SparseHistogram::add: bin(x) = floor(x / Δh).
    counter_.add(static_cast<std::int64_t>(std::floor(x / bin_width_)));
  }
  void add_span(std::span<const double> xs) override {
    // Two-phase SoA batch: the divide+floor pass has no loop-carried
    // dependence and auto-vectorizes into a stack buffer of bin indices;
    // only the hash-table inserts stay scalar. Bins are inserted in sample
    // order, so the counter content is bit-identical to per-sample add().
    std::array<std::int64_t, 256> bins;
    while (!xs.empty()) {
      const std::size_t take = std::min(xs.size(), bins.size());
      for (std::size_t i = 0; i < take; ++i) {
        bins[i] = static_cast<std::int64_t>(std::floor(xs[i] / bin_width_));
      }
      for (std::size_t i = 0; i < take; ++i) counter_.add(bins[i]);
      xs = xs.subspan(take);
    }
  }
  [[nodiscard]] double value() const override {
    // Rebuild the canonical SparseHistogram (ascending-bin inserts, a few
    // dozen cells — negligible next to the window's adds) and evaluate the
    // one histogram_entropy implementation. Identical cell contents mean an
    // identical estimate bit for bit, with zero duplicated estimator logic.
    stats::SparseHistogram hist(bin_width_);
    for (const auto& [bin, count] : counter_.sorted_cells()) {
      hist.add_cell(bin, count);
    }
    return stats::histogram_entropy(hist, bias_);
  }
  void reset() override { counter_.clear(); }
  [[nodiscard]] std::size_t count() const override {
    return static_cast<std::size_t>(counter_.total());
  }
  [[nodiscard]] std::string name() const override { return "sample entropy"; }
  [[nodiscard]] std::unique_ptr<WindowAccumulator> clone() const override {
    return std::make_unique<EntropyAccumulator>(*this);
  }

 private:
  stats::EntropyBias bias_;
  double bin_width_;
  FlatBinCounter counter_;
};

/// Exact dispersion accumulators: buffer the window (bounded by the window
/// size) and run the very same sorted-quantile code as the batch features.
class BufferedMadAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override { buffer_.push_back(x); }
  void add_span(std::span<const double> xs) override {
    buffer_.insert(buffer_.end(), xs.begin(), xs.end());
  }
  [[nodiscard]] double value() const override { return stats::mad(buffer_); }
  void reset() override { buffer_.clear(); }
  [[nodiscard]] std::size_t count() const override { return buffer_.size(); }
  [[nodiscard]] std::string name() const override { return "MAD"; }
  [[nodiscard]] std::unique_ptr<WindowAccumulator> clone() const override {
    return std::make_unique<BufferedMadAccumulator>(*this);
  }

 private:
  std::vector<double> buffer_;
};

class BufferedIqrAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override { buffer_.push_back(x); }
  void add_span(std::span<const double> xs) override {
    buffer_.insert(buffer_.end(), xs.begin(), xs.end());
  }
  [[nodiscard]] double value() const override { return stats::iqr(buffer_); }
  void reset() override { buffer_.clear(); }
  [[nodiscard]] std::size_t count() const override { return buffer_.size(); }
  [[nodiscard]] std::string name() const override { return "IQR"; }
  [[nodiscard]] std::unique_ptr<WindowAccumulator> clone() const override {
    return std::make_unique<BufferedIqrAccumulator>(*this);
  }

 private:
  std::vector<double> buffer_;
};

/// Sketched MAD: a P² median of the samples plus a P² median of the
/// absolute deviations from the RUNNING median estimate. The deviation
/// stream uses the current (not final) median, so on top of the P² marker
/// error this adds a warm-up bias that fades as the window grows — fine
/// for the large windows the sketch mode exists for.
class SketchMadAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override {
    median_.add(x);
    deviation_.add(std::abs(x - median_.value()));
  }
  void add_span(std::span<const double> xs) override {
    // Same update sequence as add(), minus one virtual dispatch per sample.
    for (double x : xs) {
      median_.add(x);
      deviation_.add(std::abs(x - median_.value()));
    }
  }
  [[nodiscard]] double value() const override { return deviation_.value(); }
  void reset() override {
    median_.reset();
    deviation_.reset();
  }
  [[nodiscard]] std::size_t count() const override { return median_.count(); }
  [[nodiscard]] std::string name() const override { return "MAD (P2)"; }
  [[nodiscard]] std::unique_ptr<WindowAccumulator> clone() const override {
    return std::make_unique<SketchMadAccumulator>(*this);
  }

 private:
  stats::P2Quantile median_{0.5};
  stats::P2Quantile deviation_{0.5};
};

class SketchIqrAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override {
    q1_.add(x);
    q3_.add(x);
  }
  void add_span(std::span<const double> xs) override {
    for (double x : xs) {
      q1_.add(x);
      q3_.add(x);
    }
  }
  [[nodiscard]] double value() const override {
    return std::max(0.0, q3_.value() - q1_.value());
  }
  void reset() override {
    q1_.reset();
    q3_.reset();
  }
  [[nodiscard]] std::size_t count() const override { return q1_.count(); }
  [[nodiscard]] std::string name() const override { return "IQR (P2)"; }
  [[nodiscard]] std::unique_ptr<WindowAccumulator> clone() const override {
    return std::make_unique<SketchIqrAccumulator>(*this);
  }

 private:
  stats::P2Quantile q1_{0.25};
  stats::P2Quantile q3_{0.75};
};

}  // namespace

std::unique_ptr<WindowAccumulator> make_window_accumulator(
    FeatureKind kind, const AccumulatorOptions& options) {
  switch (kind) {
    case FeatureKind::kSampleMean:
      return std::make_unique<MeanAccumulator>();
    case FeatureKind::kSampleVariance:
      return std::make_unique<VarianceAccumulator>();
    case FeatureKind::kSampleEntropy:
      LINKPAD_EXPECTS(options.entropy_bin_width > 0.0 &&
                      "kSampleEntropy needs entropy_bin_width > 0 (set "
                      "AccumulatorOptions::entropy_bin_width or train via "
                      "DetectorBank for Scott-rule auto-selection)");
      return std::make_unique<EntropyAccumulator>(options.entropy_bin_width,
                                                  options.entropy_bias);
    case FeatureKind::kMedianAbsDeviation:
      if (options.quantile_mode == QuantileMode::kP2Sketch) {
        return std::make_unique<SketchMadAccumulator>();
      }
      return std::make_unique<BufferedMadAccumulator>();
    case FeatureKind::kInterquartileRange:
      if (options.quantile_mode == QuantileMode::kP2Sketch) {
        return std::make_unique<SketchIqrAccumulator>();
      }
      return std::make_unique<BufferedIqrAccumulator>();
  }
  return nullptr;
}

}  // namespace linkpad::classify
