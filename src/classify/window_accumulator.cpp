#include "classify/window_accumulator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile_sketch.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

namespace {

class MeanAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override {
    sum_ += x;
    ++n_;
  }
  [[nodiscard]] double value() const override {
    LINKPAD_EXPECTS(n_ > 0);
    return sum_ / static_cast<double>(n_);
  }
  void reset() override {
    sum_ = 0.0;
    n_ = 0;
  }
  [[nodiscard]] std::size_t count() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "sample mean"; }

 private:
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

class VarianceAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override { rs_.add(x); }
  [[nodiscard]] double value() const override { return rs_.variance(); }
  void reset() override { rs_ = stats::RunningStats{}; }
  [[nodiscard]] std::size_t count() const override { return rs_.count(); }
  [[nodiscard]] std::string name() const override { return "sample variance"; }

 private:
  stats::RunningStats rs_;
};

class EntropyAccumulator final : public WindowAccumulator {
 public:
  EntropyAccumulator(double bin_width, stats::EntropyBias bias)
      : bias_(bias), hist_(bin_width) {}

  void add(double x) override { hist_.add(x); }
  [[nodiscard]] double value() const override {
    return stats::histogram_entropy(hist_, bias_);
  }
  void reset() override { hist_ = stats::SparseHistogram(hist_.bin_width()); }
  [[nodiscard]] std::size_t count() const override {
    return static_cast<std::size_t>(hist_.total());
  }
  [[nodiscard]] std::string name() const override { return "sample entropy"; }

 private:
  stats::EntropyBias bias_;
  stats::SparseHistogram hist_;
};

/// Exact dispersion accumulators: buffer the window (bounded by the window
/// size) and run the very same sorted-quantile code as the batch features.
class BufferedMadAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override { buffer_.push_back(x); }
  [[nodiscard]] double value() const override { return stats::mad(buffer_); }
  void reset() override { buffer_.clear(); }
  [[nodiscard]] std::size_t count() const override { return buffer_.size(); }
  [[nodiscard]] std::string name() const override { return "MAD"; }

 private:
  std::vector<double> buffer_;
};

class BufferedIqrAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override { buffer_.push_back(x); }
  [[nodiscard]] double value() const override { return stats::iqr(buffer_); }
  void reset() override { buffer_.clear(); }
  [[nodiscard]] std::size_t count() const override { return buffer_.size(); }
  [[nodiscard]] std::string name() const override { return "IQR"; }

 private:
  std::vector<double> buffer_;
};

/// Sketched MAD: a P² median of the samples plus a P² median of the
/// absolute deviations from the RUNNING median estimate. The deviation
/// stream uses the current (not final) median, so on top of the P² marker
/// error this adds a warm-up bias that fades as the window grows — fine
/// for the large windows the sketch mode exists for.
class SketchMadAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override {
    median_.add(x);
    deviation_.add(std::abs(x - median_.value()));
  }
  [[nodiscard]] double value() const override { return deviation_.value(); }
  void reset() override {
    median_.reset();
    deviation_.reset();
  }
  [[nodiscard]] std::size_t count() const override { return median_.count(); }
  [[nodiscard]] std::string name() const override { return "MAD (P2)"; }

 private:
  stats::P2Quantile median_{0.5};
  stats::P2Quantile deviation_{0.5};
};

class SketchIqrAccumulator final : public WindowAccumulator {
 public:
  void add(double x) override {
    q1_.add(x);
    q3_.add(x);
  }
  [[nodiscard]] double value() const override {
    return std::max(0.0, q3_.value() - q1_.value());
  }
  void reset() override {
    q1_.reset();
    q3_.reset();
  }
  [[nodiscard]] std::size_t count() const override { return q1_.count(); }
  [[nodiscard]] std::string name() const override { return "IQR (P2)"; }

 private:
  stats::P2Quantile q1_{0.25};
  stats::P2Quantile q3_{0.75};
};

}  // namespace

std::unique_ptr<WindowAccumulator> make_window_accumulator(
    FeatureKind kind, const AccumulatorOptions& options) {
  switch (kind) {
    case FeatureKind::kSampleMean:
      return std::make_unique<MeanAccumulator>();
    case FeatureKind::kSampleVariance:
      return std::make_unique<VarianceAccumulator>();
    case FeatureKind::kSampleEntropy:
      LINKPAD_EXPECTS(options.entropy_bin_width > 0.0 &&
                      "kSampleEntropy needs entropy_bin_width > 0 (set "
                      "AccumulatorOptions::entropy_bin_width or train via "
                      "DetectorBank for Scott-rule auto-selection)");
      return std::make_unique<EntropyAccumulator>(options.entropy_bin_width,
                                                  options.entropy_bias);
    case FeatureKind::kMedianAbsDeviation:
      if (options.quantile_mode == QuantileMode::kP2Sketch) {
        return std::make_unique<SketchMadAccumulator>();
      }
      return std::make_unique<BufferedMadAccumulator>();
    case FeatureKind::kInterquartileRange:
      if (options.quantile_mode == QuantileMode::kP2Sketch) {
        return std::make_unique<SketchIqrAccumulator>();
      }
      return std::make_unique<BufferedIqrAccumulator>();
  }
  return nullptr;
}

}  // namespace linkpad::classify
