// Detector search space: the declarative half of the best-response
// adversary (DESIGN.md §2.13). The paper fixes the attacker's statistic and
// window; a deployed attacker instead picks the strongest detector per
// padding policy. This header describes WHAT the attacker may choose from —
// a cross product of feature kinds × window sizes × quantile backends, plus
// EDF-distance and change-point families — and expands it into concrete
// DetectorSpec candidates in a deterministic order. The optimization loop
// over the candidates (seeded successive halving, sharded via SweepRunner)
// lives in core/robust_frontier; keeping the space itself in classify means
// anything that can build a DetectorBank can also enumerate candidates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "classify/cpd.hpp"
#include "classify/detector_bank.hpp"

namespace linkpad::classify {

/// Axes of candidate detectors. Expansion order (and therefore candidate
/// indices, which the tuner uses as the deterministic tie-break) is:
///   1. feature candidates — features (outer) × window_sizes × the
///      quantile_modes axis, which multiplies ONLY the quantile features
///      (MAD / IQR; the other accumulators ignore the mode, and expanding
///      it for them would enumerate byte-identical duplicates);
///   2. EDF candidates — edf_distances (outer) × window_sizes;
///   3. CPD candidates — cpd_target_fars (windowless; one per target FAR,
///      calibrated by the engine with its usual derived seed).
/// Empty `edf_distances` / `cpd_target_fars` simply switch that family off;
/// `features` and `window_sizes` must be non-empty.
struct DetectorSearchSpace {
  /// Knobs shared by every candidate (entropy Δh, density model,
  /// bandwidth rule ...). `base.feature` and `base.window_size` are
  /// overwritten per candidate.
  AdversaryConfig base;
  std::vector<FeatureKind> features = {
      FeatureKind::kSampleMean, FeatureKind::kSampleVariance,
      FeatureKind::kSampleEntropy, FeatureKind::kMedianAbsDeviation,
      FeatureKind::kInterquartileRange};
  std::vector<std::size_t> window_sizes = {200, 400, 800};
  /// Quantile backend axis for the MAD / IQR candidates only.
  std::vector<QuantileMode> quantile_modes = {QuantileMode::kExact};
  /// Whole-window nearest-reference-EDF candidates; empty = none.
  std::vector<EdfDistance> edf_distances;
  std::size_t edf_max_reference = 20000;
  /// Streaming change-point candidates, one per target false-alarm rate;
  /// empty = none. kind / horizon / trials ride `cpd_base`.
  std::vector<double> cpd_target_fars;
  CpdConfig cpd_base;

  /// Number of candidates expand() yields.
  [[nodiscard]] std::size_t size() const;

  /// Expand the axes into concrete candidates, in the documented order.
  /// Every candidate is a fully-specified DetectorSpec ready to ride
  /// AdversaryPlan::extra_detectors.
  [[nodiscard]] std::vector<DetectorSpec> expand() const;
};

/// Human-readable label of one candidate: the detector-bank display name
/// plus the knobs the name alone does not pin down, e.g.
/// "sample variance @n=400", "IQR @n=200 (p2)", "EDF nearest (KS) @n=800",
/// "cusum @far=0.01".
[[nodiscard]] std::string candidate_label(const DetectorSpec& spec);

}  // namespace linkpad::classify
